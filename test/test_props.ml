(* Cross-cutting properties and edge cases that belong to no single
   subsystem suite. *)

open Sc_geom
open Sc_tech
open Sc_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* every property draws from a fixed-seed state so failures reproduce
   across runs and machines *)
let seeded test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x51C0; 42 |]) test

let tile w h =
  Cell.make ~name:(Printf.sprintf "t%dx%d" w h)
    [ Cell.box Layer.Metal (Rect.make 0 0 w h) ]

(* --- composition algebra --- *)

let prop_row_width_is_sum =
  let gen = QCheck.Gen.(pair (list_size (int_range 1 6) (int_range 1 20)) (int_range 0 5)) in
  seeded
    (QCheck.Test.make ~name:"row width = sum of widths + separations" ~count:100
       (QCheck.make gen) (fun (widths, sep) ->
         let cells = List.map (fun w -> tile w 5) widths in
         let r = Compose.row ~name:"r" ~sep cells in
         Cell.width r
         = List.fold_left ( + ) 0 widths + (sep * (List.length widths - 1))))

let prop_col_height_is_sum =
  let gen = QCheck.Gen.(list_size (int_range 1 6) (int_range 1 20)) in
  seeded
    (QCheck.Test.make ~name:"col height = sum of heights" ~count:100
       (QCheck.make gen) (fun heights ->
         let cells = List.map (fun h -> tile 5 h) heights in
         Cell.height (Compose.col ~name:"c" cells)
         = List.fold_left ( + ) 0 heights))

let prop_array_flat_count =
  let gen = QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)) in
  seeded
    (QCheck.Test.make ~name:"array flattens to nx*ny copies" ~count:60
       (QCheck.make gen) (fun (nx, ny) ->
         let a = Compose.array ~name:"a" ~nx ~ny (tile 4 4) in
         List.length (Flatten.run a) = nx * ny
         && Cell.flat_rect_count a = nx * ny))

let prop_flatten_transform_invariant =
  (* flattening a translated instance equals translating flattened boxes *)
  let gen = QCheck.Gen.(pair (int_range (-30) 30) (int_range (-30) 30)) in
  seeded
    (QCheck.Test.make ~name:"flatten commutes with translation" ~count:80
       (QCheck.make gen) (fun (dx, dy) ->
         let inner = Sc_stdcell.Nmos.inv () in
         let moved =
           Cell.make ~name:"m"
             ~instances:
               [ Cell.instantiate ~name:"i" ~trans:(Transform.translation dx dy)
                   inner
               ]
             []
         in
         let d = Point.make dx dy in
         let expected =
           List.map
             (fun (fb : Flatten.flat_box) ->
               { fb with Flatten.rect = Rect.translate d fb.rect })
             (Flatten.run inner)
         in
         let got = Flatten.run moved in
         let key (fb : Flatten.flat_box) =
           (Layer.index fb.layer, fb.rect.Rect.xmin, fb.rect.Rect.ymin,
            fb.rect.Rect.xmax, fb.rect.Rect.ymax)
         in
         List.sort compare (List.map key expected)
         = List.sort compare (List.map key got)))

let prop_area_invariant_under_orientation =
  seeded
    (QCheck.Test.make ~name:"cell area invariant under all orientations"
       ~count:50
       (QCheck.make (QCheck.Gen.oneofl Transform.all_orients))
       (fun o ->
         let inner = Sc_stdcell.Nmos.nand 2 in
         let c =
           Cell.make ~name:"o"
             ~instances:
               [ Cell.instantiate ~name:"i"
                   ~trans:(Transform.make ~orient:o Point.origin)
                   inner
               ]
             []
         in
         Cell.area c = Cell.area inner
         && Stats.transistor_count c = Stats.transistor_count inner))

(* --- DRC is orientation-blind --- *)

let prop_drc_invariant_under_orientation =
  seeded
    (QCheck.Test.make ~name:"DRC verdict invariant under orientation" ~count:30
       (QCheck.make (QCheck.Gen.oneofl Transform.all_orients))
       (fun o ->
         let inner = Sc_stdcell.Nmos.nor2 () in
         let c =
           Cell.make ~name:"o"
             ~instances:
               [ Cell.instantiate ~name:"i"
                   ~trans:(Transform.make ~orient:o Point.origin)
                   inner
               ]
             []
         in
         Sc_drc.Checker.is_clean c))

(* --- ROM edge cases --- *)

let test_rom_sparse_addresses_read_zero () =
  (* addresses past the programmed words, and all-zero words, read 0 *)
  let rom = Sc_rom.Rom.generate ~bits:4 [| 5; 0; 7 |] in
  let eng = Sc_sim.Engine.create (Sc_rom.Rom.netlist rom) in
  List.iter
    (fun (addr, expect) ->
      Sc_sim.Engine.set_input_int eng "in" addr;
      check_int
        (Printf.sprintf "addr %d" addr)
        expect
        (Option.get (Sc_sim.Engine.get_output_int eng "out")))
    [ (0, 5); (1, 0); (2, 7); (3, 0) ]

(* --- timing with a custom delay model --- *)

let test_timing_custom_delay () =
  let open Sc_netlist in
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let x = Builder.not_ b a in
  let y = Builder.and2 b x a in
  Builder.output b "y" [| y |];
  let c = Builder.finish b in
  check_int "default" 3 (Timing.critical_path c);
  check_int "all gates cost 10" 20
    (Timing.critical_path ~delay:(fun _ -> 10) c)

(* --- pads distribute round-robin --- *)

let test_pad_distribution () =
  let core = tile 100 100 in
  let a = Sc_chip.Assemble.assemble ~name:"c" ~core ~pads:10 () in
  (* 10 pads: bottom 3, right 3, top 2, left 2 *)
  let chip = a.Sc_chip.Assemble.chip in
  let pads =
    List.filter
      (fun (i : Cell.inst) -> i.inst_name <> "core")
      chip.Cell.instances
  in
  check_int "ten pads" 10 (List.length pads);
  let h = Cell.height chip and w = Cell.width chip in
  let side (i : Cell.inst) =
    let b = Cell.bbox_or_zero i.cell in
    let r = Transform.apply_rect i.trans b in
    if r.Rect.ymin = 0 then `Bottom
    else if r.Rect.ymax = h then `Top
    else if r.Rect.xmin = 0 then `Left
    else if r.Rect.xmax = w then `Right
    else `Middle
  in
  let count s = List.length (List.filter (fun i -> side i = s) pads) in
  check_int "bottom" 3 (count `Bottom);
  check_int "right" 3 (count `Right);
  check_int "top" 2 (count `Top);
  check_int "left" 2 (count `Left)

(* --- lang evaluation budget --- *)

let test_lang_budget () =
  (* a gigantic loop trips the step budget instead of hanging *)
  match
    Sc_lang.Lang.compile
      "cell main() { for i = 0 to 99999999 { box metal i i i+2 i+2; } }"
  with
  | Error e ->
    check_bool "budget error" true
      (let msg = Sc_lang.Lang.error_to_string e in
       String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected budget exhaustion"

(* --- optimizer vs formal checker, registers included --- *)

let prop_optimize_preserves_sequential =
  (* random gate DAGs with flip-flops mixed in; the optimizer's output
     must be formally equivalent over a bounded unrolling.  Guards the
     CSE-merges-registers regression: two registers sharing a D input
     are distinct state and must not be folded into one. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 3 20)
        (triple (int_range 0 10) (int_range 0 10) (int_range 0 5)))
  in
  seeded
    (QCheck.Test.make ~name:"simplify preserves sequential behaviour"
       ~count:40 (QCheck.make gen) (fun spec ->
         let open Sc_netlist in
         let b = Builder.create "r" in
         let ins = Builder.input b "x" 3 in
         (* at least one register is always present *)
         let pool = ref (Builder.dff b ins.(0) :: Array.to_list ins) in
         let pick k = List.nth !pool (k mod List.length !pool) in
         List.iter
           (fun (i, j, op) ->
             let a = pick i and c = pick j in
             let n =
               match op with
               | 0 -> Builder.and2 b a c
               | 1 -> Builder.or2 b a c
               | 2 -> Builder.xor2 b a c
               | 3 -> Builder.not_ b a
               | _ -> Builder.dff b a
             in
             pool := n :: !pool)
           spec;
         Builder.output b "y"
           (Array.of_list (List.filteri (fun i _ -> i < 2) !pool));
         let c = Builder.finish b in
         match Sc_equiv.Checker.check ~k:5 c (Optimize.simplify c) with
         | Sc_equiv.Checker.Equivalent -> true
         | Sc_equiv.Checker.Not_equivalent _ -> false))

let suite =
  [ prop_row_width_is_sum
  ; prop_col_height_is_sum
  ; prop_array_flat_count
  ; prop_flatten_transform_invariant
  ; prop_area_invariant_under_orientation
  ; prop_drc_invariant_under_orientation
  ; Alcotest.test_case "ROM sparse addresses" `Quick test_rom_sparse_addresses_read_zero
  ; Alcotest.test_case "timing custom delay" `Quick test_timing_custom_delay
  ; Alcotest.test_case "pad distribution" `Quick test_pad_distribution
  ; Alcotest.test_case "lang budget" `Quick test_lang_budget
  ; prop_optimize_preserves_sequential
  ]
