(* The compile daemon: wire protocol codecs, frame handling on real
   file descriptors, and a live in-process server exercised over its
   Unix-domain socket — including the in-flight dedup guarantee. *)

module P = Sc_serve.Protocol
module Json = Sc_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- codecs: every variant survives encode -> decode --- *)

let spec =
  { P.design = "counter"
  ; source = "module counter; inputs a[1]; end"
  ; style = "gates"
  ; restarts = 3
  ; certify = false
  }

let requests : (string * P.request) list =
  [ ("compile", P.Compile spec)
  ; ("compile certified", P.Compile { spec with P.certify = true })
  ; ("report", P.Report { spec with P.style = "pla"; restarts = 0 })
  ; ( "diff"
    , P.Diff
        { spec
        ; baseline =
            Json.Obj [ ("qor", Json.Obj [ ("area", Json.Num 84000.) ]) ]
        } )
  ; ("equiv", P.Equiv { a = "isp:counter"; b = "hand:counter"; k = 8 })
  ; ("stats", P.Stats)
  ; ("shutdown", P.Shutdown)
  ]

let responses : (string * P.response) list =
  [ ( "compiled"
    , P.Compiled
        { snapshot = Json.Obj [ ("design", Json.Str "counter") ]
        ; cif_bytes = 18880
        ; gates = 22
        ; flipflops = 4
        ; transistors = 250
        ; area = 84000
        ; drc_violations = 0
        ; passes = [ ("parse", "ran"); ("emit", "hit (memory)") ]
        } )
  ; ("reported", P.Reported "a table\nwith lines\n")
  ; ("diffed", P.Diffed { report = "all neutral"; regressed = false })
  ; ("equiv", P.Equiv_verdict { equivalent = true; detail = "equivalent" })
  ; ( "stats"
    , P.Stats_reply
        { counters = [ ("serve.requests", 7); ("cache.hits", 40) ]
        ; uptime_s = Some 12
        ; server_version = Some "serve/2"
        ; verbs = [ ("compile", 5); ("stats", 2) ]
        } )
  ; ( "stats without telemetry"
    , P.Stats_reply
        { counters = [ ("serve.requests", 7) ]
        ; uptime_s = None
        ; server_version = None
        ; verbs = []
        } )
  ; ("bye", P.Bye)
  ; ("error", P.Error_reply { stage = "parse"; message = "line 3: nope" })
  ]

let test_request_roundtrip () =
  List.iter
    (fun (name, req) ->
      match P.request_of_string (P.string_of_request req) with
      | Ok got -> check_bool (name ^ " roundtrips") true (got = req)
      | Error e -> Alcotest.failf "%s failed to decode: %s" name e)
    requests

let test_response_roundtrip () =
  List.iter
    (fun (name, resp) ->
      match P.response_of_string (P.string_of_response resp) with
      | Ok got -> check_bool (name ^ " roundtrips") true (got = resp)
      | Error e -> Alcotest.failf "%s failed to decode: %s" name e)
    responses

let test_decode_rejects_garbage () =
  let bad s =
    match (P.request_of_string s, P.response_of_string s) with
    | Error _, Error _ -> ()
    | _ -> Alcotest.failf "decoded garbage %S" s
  in
  bad "not json at all";
  bad "{\"t\": \"launch_missiles\"}";
  bad "{\"no\": \"tag\"}";
  (* a request with the right tag but a missing field *)
  bad "{\"t\": \"compile\", \"design\": \"counter\"}"

(* --- framing on real file descriptors --- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with _ -> ());
      try Unix.close w with _ -> ())
    (fun () -> f r w)

let write_all w s =
  let b = Bytes.of_string s in
  let n = Unix.write w b 0 (Bytes.length b) in
  check_int "short write in test rig" (Bytes.length b) n

let test_frame_roundtrip () =
  with_pipe @@ fun r w ->
  P.write_frame w "hello frames";
  P.write_frame w "";
  (match P.read_frame r with
  | Ok (Some "hello frames") -> ()
  | _ -> Alcotest.fail "first frame lost");
  (match P.read_frame r with
  | Ok (Some "") -> ()
  | _ -> Alcotest.fail "empty frame is legal");
  Unix.close w;
  match P.read_frame r with
  | Ok None -> ()
  | _ -> Alcotest.fail "closing between frames is a clean EOF"

let test_frame_truncated_header () =
  with_pipe @@ fun r w ->
  write_all w "\x00\x00";
  Unix.close w;
  match P.read_frame r with
  | Error e ->
    check_bool "mentions truncation" true
      (String.length e > 0 && String.sub e 0 9 = "truncated")
  | _ -> Alcotest.fail "a torn header must be an error, not EOF"

let test_frame_truncated_payload () =
  with_pipe @@ fun r w ->
  (* header promises 10 bytes, the stream dies after 3 *)
  write_all w "\x00\x00\x00\x0aabc";
  Unix.close w;
  match P.read_frame r with
  | Error _ -> ()
  | _ -> Alcotest.fail "a torn payload must be an error"

let test_frame_oversized () =
  with_pipe @@ fun r w ->
  (* 4 GiB - 1 claimed: rejected from the header alone, nothing read *)
  write_all w "\xff\xff\xff\xff";
  match P.read_frame r with
  | Error e ->
    check_bool "mentions the limit" true
      (String.length e >= 9 && String.sub e 0 9 = "oversized")
  | _ -> Alcotest.fail "an oversized length must be rejected"

(* --- the live daemon --- *)

let with_server ?log ?log_level ?trace_dir ?trace_sample f =
  let socket =
    Filename.temp_file "scc-test-serve" ".sock"
  in
  Sys.remove socket;
  let exit_code = ref (-1) in
  let server =
    Thread.create
      (fun () ->
        exit_code :=
          Sc_serve.Server.run ~jobs:1 ~handle_signals:false ?log ?log_level
            ?trace_dir ?trace_sample ~socket ())
      ()
  in
  let rec await n =
    if n = 0 then Alcotest.fail "daemon did not come up"
    else if not (Sys.file_exists socket) then begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 100;
  Fun.protect
    ~finally:(fun () ->
      (match Sc_serve.Client.one_shot socket P.Shutdown with
      | Ok P.Bye | Ok _ | Error _ -> ());
      Thread.join server;
      check_int "daemon exits 0" 0 !exit_code;
      check_bool "socket unlinked on shutdown" false (Sys.file_exists socket);
      (* the daemon enables the process-global stage cache; put the
         world back for whatever test runs next *)
      Sc_pipeline.Pipeline.disable_cache ();
      Sc_pipeline.Pipeline.clear_caches ())
    (fun () -> f socket)

let rpc socket req =
  match Sc_serve.Client.one_shot socket req with
  | Ok r -> r
  | Error e -> Alcotest.failf "rpc failed: %s" e

let stats socket =
  match rpc socket P.Stats with
  | P.Stats_reply s -> s
  | _ -> Alcotest.fail "expected Stats_reply"

let stat socket key =
  match List.assoc_opt key (stats socket).P.counters with
  | Some v -> v
  | None -> Alcotest.failf "no %s counter" key

let counter_spec =
  match Sc_core.Designs.builtin "counter" with
  | Some source ->
    { P.design = "counter"; source; style = "gates"; restarts = 0
    ; certify = false
    }
  | None -> assert false

let pdp8_spec =
  match Sc_core.Designs.builtin "pdp8" with
  | Some source ->
    { P.design = "pdp8"; source; style = "gates"; restarts = 0
    ; certify = false
    }
  | None -> assert false

let test_two_client_dedup () =
  with_server @@ fun socket ->
  (* two clients, one slow cold compile in flight: exactly one pipeline
     execution, the second rides along as a dedup hit *)
  let replies = Array.make 2 None in
  let threads =
    List.init 2 (fun i ->
        Thread.create
          (fun () ->
            replies.(i) <- Some (rpc socket (P.Compile pdp8_spec)))
          ())
  in
  List.iter Thread.join threads;
  let snapshots =
    Array.to_list replies
    |> List.map (function
         | Some (P.Compiled c) -> Json.to_string c.P.snapshot
         | Some (P.Error_reply { stage; message }) ->
           Alcotest.failf "compile failed: %s: %s" stage message
         | _ -> Alcotest.fail "expected Compiled")
  in
  (match snapshots with
  | [ a; b ] -> check_bool "both clients share one snapshot" true (a = b)
  | _ -> assert false);
  check_int "one pipeline execution" 1 (stat socket "serve.executions");
  check_bool "dedup hit counted" true (stat socket "serve.dedup_hits" >= 1);
  (* a later identical request is warm: it executes, but every pass is
     served from the shared stage cache *)
  match rpc socket (P.Compile pdp8_spec) with
  | P.Compiled c ->
    check_bool "warm request: all passes hit" true
      (c.P.passes <> []
      && List.for_all (fun (_, st) -> st = "hit (memory)") c.P.passes)
  | _ -> Alcotest.fail "expected Compiled"

let test_server_verbs_and_errors () =
  with_server @@ fun socket ->
  (* report renders the same compile as a table *)
  (match rpc socket (P.Report counter_spec) with
  | P.Reported text -> check_bool "report has content" true (String.length text > 0)
  | _ -> Alcotest.fail "expected Reported");
  (* equiv through the daemon *)
  (match rpc socket (P.Equiv { a = "isp:counter"; b = "hand:counter"; k = 8 }) with
  | P.Equiv_verdict { equivalent = true; _ } -> ()
  | _ -> Alcotest.fail "counter should be equivalent to its hand baseline");
  (match rpc socket (P.Equiv { a = "isp:nonsuch"; b = "hand:counter"; k = 8 }) with
  | P.Error_reply _ -> ()
  | _ -> Alcotest.fail "unknown design must be a structured error");
  (* a broken source is a Diag error carried as a value *)
  (match
     rpc socket (P.Compile { counter_spec with P.source = "not ISP at all" })
   with
  | P.Error_reply { stage; _ } ->
    check_bool "error carries its stage" true (String.length stage > 0)
  | _ -> Alcotest.fail "expected Error_reply");
  (* an unknown style is rejected without touching the pipeline *)
  (match rpc socket (P.Compile { counter_spec with P.style = "quantum" }) with
  | P.Error_reply { stage = "serve"; _ } -> ()
  | _ -> Alcotest.fail "unknown style must be rejected");
  (* a frame that is not JSON gets a protocol error back on the same
     connection rather than killing the daemon *)
  match
    Sc_serve.Client.with_connection socket (fun fd ->
        P.write_frame fd "this is not a request";
        match P.read_frame fd with
        | Ok (Some payload) -> P.response_of_string payload
        | _ -> Error "no reply to garbage frame")
  with
  | Ok (P.Error_reply { stage = "protocol"; _ }) -> ()
  | _ -> Alcotest.fail "garbage frame must yield a protocol error"

(* certify rides the wire: a certified request compiles, its snapshot
   carries the certificate counters, and the uncertified variant of the
   same design is a distinct dedup key (its snapshot has no
   certificates) *)
let test_certified_compile_via_daemon () =
  with_server @@ fun socket ->
  let certified_passes c =
    match Json.member "qor" c.P.snapshot with
    | Some qor -> (
      match Json.member "equiv.certified_passes" qor with
      | Some (Json.Num n) -> int_of_float n
      | _ -> 0)
    | None -> 0
  in
  (match rpc socket (P.Compile { counter_spec with P.certify = true }) with
  | P.Compiled c ->
    check_bool "certified request proves a pass" true (certified_passes c >= 1)
  | P.Error_reply { stage; message } ->
    Alcotest.failf "certified compile failed: %s: %s" stage message
  | _ -> Alcotest.fail "expected Compiled");
  match rpc socket (P.Compile counter_spec) with
  | P.Compiled c ->
    check_int "uncertified request carries no certificate" 0
      (certified_passes c)
  | _ -> Alcotest.fail "expected Compiled"

let verilog_spec =
  { P.design = "blinker"
  ; source =
      "module blinker(input clk, output reg q);\n\
      \  always @(posedge clk) q <= ~q;\nendmodule\n"
  ; style = "verilog"
  ; restarts = 0
  ; certify = false
  }

let test_verilog_style () =
  with_server @@ fun socket ->
  (* the verilog style compiles through the same daemon... *)
  (match rpc socket (P.Compile verilog_spec) with
  | P.Compiled c ->
    check_bool "flip-flop synthesized" true (c.P.flipflops >= 1);
    check_bool "layout measured" true (c.P.area > 0)
  | P.Error_reply { stage; message } ->
    Alcotest.failf "verilog compile failed: %s: %s" stage message
  | _ -> Alcotest.fail "expected Compiled");
  (* ...shares the stage cache on a repeat... *)
  (match rpc socket (P.Compile verilog_spec) with
  | P.Compiled c ->
    check_bool "warm verilog request: all passes hit" true
      (c.P.passes <> []
      && List.for_all (fun (_, st) -> st = "hit (memory)") c.P.passes)
  | _ -> Alcotest.fail "expected Compiled");
  (* ...and a frontend error comes back as a positioned Diag value *)
  match
    rpc socket
      (P.Compile { verilog_spec with P.source = "module t(input a endmodule" })
  with
  | P.Error_reply { stage = "verilog.parse"; message } ->
    check_bool "error is positioned" true (String.contains message ':')
  | P.Error_reply { stage; _ } -> Alcotest.failf "wrong stage %S" stage
  | _ -> Alcotest.fail "expected Error_reply"

(* --- daemon telemetry: stats fields, structured log, sampled traces --- *)

let test_stats_telemetry () =
  with_server @@ fun socket ->
  (match rpc socket (P.Compile counter_spec) with
  | P.Compiled _ -> ()
  | _ -> Alcotest.fail "expected Compiled");
  (match rpc socket (P.Compile counter_spec) with
  | P.Compiled _ -> ()
  | _ -> Alcotest.fail "expected Compiled");
  let s = stats socket in
  (match s.P.server_version with
  | Some v ->
    Alcotest.(check string) "version" Sc_serve.Server.server_version v
  | None -> Alcotest.fail "stats reply missing version");
  (match s.P.uptime_s with
  | Some u -> check_bool "uptime non-negative" true (u >= 0)
  | None -> Alcotest.fail "stats reply missing uptime");
  (* the verb counts, the latency histogram and the request counter all
     agree on how many compiles were answered *)
  (match List.assoc_opt "compile" s.P.verbs with
  | Some n -> check_int "verb count matches requests sent" 2 n
  | None -> Alcotest.fail "no per-verb count for compile");
  (match List.assoc_opt "latency.compile.count" s.P.counters with
  | Some n -> check_int "histogram count matches verb count" 2 n
  | None -> Alcotest.fail "no latency histogram for compile");
  List.iter
    (fun q ->
      match List.assoc_opt ("latency.compile." ^ q) s.P.counters with
      | Some v -> check_bool ("compile " ^ q ^ " positive") true (v > 0)
      | None -> Alcotest.failf "no latency.compile.%s" q)
    [ "p50_us"; "p95_us"; "p99_us" ];
  check_bool "peak_executions served" true
    (stat socket "serve.peak_executions" >= 1)

(* a pre-telemetry daemon's stats reply — counters only — must still
   decode: the new fields are absent-tolerant like compile_spec.certify *)
let test_stats_decode_compat () =
  let wire =
    {|{"t": "stats", "counters": {"serve.requests": 3, "cache.hits": 9}}|}
  in
  match P.response_of_string wire with
  | Ok (P.Stats_reply s) ->
    check_int "counters decoded" 2 (List.length s.P.counters);
    check_bool "uptime absent" true (s.P.uptime_s = None);
    check_bool "version absent" true (s.P.server_version = None);
    check_bool "verbs absent" true (s.P.verbs = []);
    check_int "counter value" 9
      (Option.value ~default:0 (List.assoc_opt "cache.hits" s.P.counters))
  | Ok _ -> Alcotest.fail "decoded to the wrong response"
  | Error e -> Alcotest.failf "pre-telemetry stats failed to decode: %s" e

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_log_and_trace () =
  let log = Filename.temp_file "scc-test-serve" ".jsonl" in
  let trace_dir = Filename.temp_file "scc-test-serve" ".traces" in
  Sys.remove trace_dir;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove log with Sys_error _ -> ());
      rm_rf trace_dir)
    (fun () ->
      with_server ~log ~log_level:Sc_obs.Slog.Debug ~trace_dir
        ~trace_sample:(1, 1)
      @@ fun socket ->
      (match rpc socket (P.Compile counter_spec) with
      | P.Compiled _ -> ()
      | _ -> Alcotest.fail "expected Compiled");
      ignore (stats socket);
      (* every line written so far is a complete JSON object *)
      let lines = read_lines log in
      check_bool "log has lines" true (List.length lines >= 2);
      let parsed =
        List.map
          (fun line ->
            match Json.parse line with
            | Ok v -> v
            | Error e ->
              Alcotest.failf "log line is not valid JSON: %s (%s)" line e)
          lines
      in
      let by_event name =
        List.filter (fun v -> Json.member "event" v = Some (Json.Str name)) parsed
      in
      check_int "one start event" 1 (List.length (by_event "start"));
      let requests = by_event "request" in
      check_bool "request lines present" true (List.length requests >= 2);
      let compile_line =
        List.find_opt
          (fun v -> Json.member "verb" v = Some (Json.Str "compile"))
          requests
      in
      (match compile_line with
      | Some v ->
        check_bool "request line names the design" true
          (Json.member "design" v = Some (Json.Str "counter"));
        check_bool "request line has a status" true
          (Json.member "status" v = Some (Json.Str "ok"));
        (match Json.member "dur_us" v with
        | Some (Json.Num d) -> check_bool "duration recorded" true (d >= 0.0)
        | _ -> Alcotest.fail "request line missing dur_us")
      | None -> Alcotest.fail "no request line for the compile");
      check_bool "debug connect lines pass the Debug filter" true
        (by_event "connect" <> []);
      (* the execution wrote its sampled Chrome trace *)
      let traces =
        Sys.readdir trace_dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".trace.json")
      in
      check_int "one trace for one execution" 1 (List.length traces);
      let trace_file = Filename.concat trace_dir (List.hd traces) in
      check_bool "trace file names the design" true
        (let base = Filename.basename trace_file in
         let re = "counter" in
         let found = ref false in
         let n = String.length base and m = String.length re in
         for i = 0 to n - m do
           if String.sub base i m = re then found := true
         done;
         !found);
      match Json.parse (String.concat "\n" (read_lines trace_file)) with
      | Ok v -> (
        match Json.member "traceEvents" v with
        | Some (Json.Arr evs) ->
          check_bool "trace has span events" true
            (List.exists
               (fun e -> Json.member "ph" e = Some (Json.Str "X"))
               evs)
        | _ -> Alcotest.fail "trace missing traceEvents")
      | Error e -> Alcotest.failf "trace does not parse: %s" e)

(* one request's --certify must not leak into a concurrent plain
   compile: run them together and check the snapshots disagree about
   certificates the way the flags do *)
let test_certify_isolation_concurrent () =
  with_server @@ fun socket ->
  let traffic_spec =
    match Sc_core.Designs.builtin "traffic" with
    | Some source ->
      { P.design = "traffic"; source; style = "gates"; restarts = 0
      ; certify = false
      }
    | None -> assert false
  in
  let certified_passes c =
    match Json.member "qor" c.P.snapshot with
    | Some qor -> (
      match Json.member "equiv.certified_passes" qor with
      | Some (Json.Num n) -> int_of_float n
      | _ -> 0)
    | None -> 0
  in
  let results = Array.make 2 None in
  let reqs =
    [| P.Compile { counter_spec with P.certify = true }
     ; P.Compile traffic_spec
    |]
  in
  let threads =
    List.init 2 (fun i ->
        Thread.create (fun () -> results.(i) <- Some (rpc socket reqs.(i))) ())
  in
  List.iter Thread.join threads;
  (match results.(0) with
  | Some (P.Compiled c) ->
    check_bool "certified compile proves passes" true (certified_passes c >= 1)
  | Some (P.Error_reply { stage; message }) ->
    Alcotest.failf "certified compile failed: %s: %s" stage message
  | _ -> Alcotest.fail "expected Compiled");
  match results.(1) with
  | Some (P.Compiled c) ->
    check_int "concurrent plain compile stays uncertified" 0
      (certified_passes c)
  | Some (P.Error_reply { stage; message }) ->
    Alcotest.failf "plain compile failed: %s: %s" stage message
  | _ -> Alcotest.fail "expected Compiled"

(* a modular (chip-block) source compiles through the daemon: the
   per-module pass rows ride the reply, the snapshot carries per-module
   QoR, and a warm repeat is all-hit including the module rows *)
let test_modular_via_daemon () =
  with_server @@ fun socket ->
  let spec =
    match Sc_core.Designs.builtin "system" with
    | Some source ->
      { P.design = "system"; source; style = "gates"; restarts = 0
      ; certify = false
      }
    | None -> assert false
  in
  (match rpc socket (P.Compile spec) with
  | P.Compiled c ->
    let passes = List.map fst c.P.passes in
    check_bool "per-module pass rows" true
      (List.mem "mixer:place" passes && List.mem "accum:place" passes
      && List.mem "assemble" passes);
    let snap = Json.to_string c.P.snapshot in
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i =
        i + n <= h && (String.sub hay i n = needle || go (i + 1))
      in
      go 0
    in
    check_bool "per-module QoR in snapshot" true
      (contains "module.mixer.area" snap && contains "module.accum.area" snap)
  | P.Error_reply { stage; message } ->
    Alcotest.failf "modular compile failed: %s: %s" stage message
  | _ -> Alcotest.fail "expected Compiled");
  match rpc socket (P.Compile spec) with
  | P.Compiled c ->
    check_bool "warm modular request: all passes hit" true
      (c.P.passes <> []
      && List.for_all (fun (_, st) -> st = "hit (memory)") c.P.passes)
  | _ -> Alcotest.fail "expected Compiled"

let suite =
  [ Alcotest.test_case "request codecs roundtrip" `Quick test_request_roundtrip
  ; Alcotest.test_case "response codecs roundtrip" `Quick
      test_response_roundtrip
  ; Alcotest.test_case "decode rejects garbage" `Quick
      test_decode_rejects_garbage
  ; Alcotest.test_case "frame roundtrip and clean EOF" `Quick
      test_frame_roundtrip
  ; Alcotest.test_case "truncated header rejected" `Quick
      test_frame_truncated_header
  ; Alcotest.test_case "truncated payload rejected" `Quick
      test_frame_truncated_payload
  ; Alcotest.test_case "oversized length rejected" `Quick test_frame_oversized
  ; Alcotest.test_case "two-client dedup" `Quick test_two_client_dedup
  ; Alcotest.test_case "verbs and structured errors" `Quick
      test_server_verbs_and_errors
  ; Alcotest.test_case "certified compile via daemon" `Quick
      test_certified_compile_via_daemon
  ; Alcotest.test_case "verilog style" `Quick test_verilog_style
  ; Alcotest.test_case "stats telemetry fields" `Quick test_stats_telemetry
  ; Alcotest.test_case "pre-telemetry stats decode" `Quick
      test_stats_decode_compat
  ; Alcotest.test_case "structured log and sampled traces" `Quick
      test_log_and_trace
  ; Alcotest.test_case "certify isolation under concurrency" `Quick
      test_certify_isolation_concurrent
  ; Alcotest.test_case "modular design via daemon" `Quick
      test_modular_via_daemon
  ]
