(* lib/verilog: the Verilog frontend — lexer positions, the
   recursive-descent parser (including every rejected construct from
   docs/VERILOG.md), elaboration into the sc_rtl IR, value-exactness of
   the width coercions, and the counter12 reference design end to end:
   interpreter behaviour, formal equivalence against a hand-written ISP
   twin, and warm/cold QoR byte-identity through the shared pipeline. *)

open Sc_verilog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* the committed reference design (a dune dep of this test); [dune
   runtest] runs in the build's test directory, [dune exec] from the
   project root *)
let counter12_src =
  let path =
    if Sys.file_exists "../examples/counter12.v" then
      "../examples/counter12.v"
    else "examples/counter12.v"
  in
  In_channel.with_open_text path In_channel.input_all

(* the same machine, written directly in ISP: the formal twin *)
let counter12_isp =
  {|
-- 12-bit loadable up-counter, hand-written twin of examples/counter12.v
module counter12;
inputs rst[1], en[1], load[1], d[12];
outputs q[12], tc[1];
registers count[12];
behavior
  q := count;
  tc := count == 4095;
  if rst == 1 then count := 0;
  else
    if load == 1 then count := d;
    else
      if en == 1 then count := count + 1;
      end
    end
  end
end
|}

let parse_ok src =
  match Parse.parse src with
  | Ok m -> m
  | Error e -> Alcotest.failf "parse error: %s" e

let elab_ok src =
  match Elaborate.design_of_source src with
  | Ok d -> d
  | Error e -> Alcotest.failf "elaboration error: %s" e

(* --- lexer --- *)

let test_lexer_positions () =
  match Lexer.tokenize "wire a;\n  assign b = 2'd3;" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
    let nth n = List.nth toks n in
    (match (nth 0).Lexer.tok with
    | Lexer.Id "wire" -> ()
    | t -> Alcotest.failf "token 0: %s" (Lexer.token_to_string t));
    check_int "line of 'assign'" 2 (nth 3).Lexer.pos.Lexer.line;
    check_int "col of 'assign'" 3 (nth 3).Lexer.pos.Lexer.col;
    (match (nth 6).Lexer.tok with
    | Lexer.Number { value = 3; width = Some 2 } -> ()
    | t -> Alcotest.failf "sized literal: %s" (Lexer.token_to_string t));
    match List.rev toks with
    | { Lexer.tok = Lexer.Eof; _ } :: _ -> ()
    | _ -> Alcotest.fail "stream must end with Eof"

let test_lexer_literals () =
  let value s =
    match Lexer.tokenize s with
    | Ok ({ Lexer.tok = Lexer.Number { value; _ }; _ } :: _) -> value
    | Ok _ | Error _ -> Alcotest.failf "expected a number for %S" s
  in
  check_int "12'hfff" 4095 (value "12'hfff");
  check_int "4'b10_10" 10 (value "4'b10_10");
  check_int "8'o17" 15 (value "8'o17");
  check_int "unsized 42" 42 (value "42");
  List.iter
    (fun s ->
      match Lexer.tokenize s with
      | Error e ->
        check_bool (s ^ " error is positioned") true
          (String.contains e ':')
      | Ok _ -> Alcotest.failf "lexer must reject %S" s)
    [ "2'd9" (* value does not fit *)
    ; "31'd0" (* width out of range *)
    ; "0'd0"
    ; "4'q3" (* bad base *)
    ; "/* unterminated"
    ; "\"strings are not in the subset\""
    ]

(* --- parser: accepted shapes --- *)

let test_parse_counter12 () =
  let m = parse_ok counter12_src in
  check_string "module name" "counter12" m.Ast.mname;
  Alcotest.(check (list string))
    "port order" [ "clk"; "rst"; "en"; "load"; "d"; "q"; "tc" ] m.Ast.ports;
  let decls =
    List.filter_map (function Ast.Decl d -> Some d | _ -> None) m.Ast.items
  in
  check_int "seven declarations" 7 (List.length decls);
  check_int "one assign"
    1
    (List.length
       (List.filter (function Ast.Assign _ -> true | _ -> false) m.Ast.items));
  match
    List.find_map
      (function
        | Ast.Always { edges; body; _ } -> Some (edges, body)
        | _ -> None)
      m.Ast.items
  with
  | Some (edges, body) ->
    Alcotest.(check (list string)) "two posedges" [ "clk"; "rst" ]
      (List.map fst edges);
    check_int "one top statement" 1 (List.length body)
  | None -> Alcotest.fail "no always block"

let non_ansi_src =
  {|module t(clk, a, y);
      input clk;
      input [3:0] a;
      output reg [3:0] y;
      always @(posedge clk) y <= a;
    endmodule|}

let test_parse_non_ansi_header () =
  let m = parse_ok non_ansi_src in
  Alcotest.(check (list string)) "ports" [ "clk"; "a"; "y" ] m.Ast.ports;
  ignore (elab_ok non_ansi_src)

let test_parse_expr_shapes () =
  (match Parse.parse_expr "a + b & c" with
  | Ok (Ast.Binop (Ast.And, Ast.Binop (Ast.Add, _, _, _), _, _)) -> ()
  | Ok e -> Alcotest.failf "wrong tree: %s" (Format.asprintf "%a" Ast.pp_expr e)
  | Error e -> Alcotest.fail e);
  (match Parse.parse_expr "a == b ? x : y" with
  | Ok (Ast.Cond { cond = Ast.Binop (Ast.Eq, _, _, _); _ }) -> ()
  | _ -> Alcotest.fail "?: over ==");
  (match Parse.parse_expr "{a, b[3:0], 2'b01}" with
  | Ok (Ast.Concat ([ _; Ast.Slice ("b", 3, 0, _); _ ], _)) -> ()
  | _ -> Alcotest.fail "concat parts");
  match Parse.parse_expr "-a" with
  | Ok (Ast.Binop (Ast.Sub, Ast.Number { value = 0; _ }, Ast.Id ("a", _), _))
    -> ()
  | _ -> Alcotest.fail "unary minus lowers to 0 - a"

(* --- parser: every rejection is a positioned Error, never raised --- *)

let expect_error ~sub src =
  match Parse.parse src with
  | Ok _ -> Alcotest.failf "parser accepted %S" src
  | Error e ->
    (* "line:col: message" *)
    (match String.split_on_char ':' e with
    | l :: c :: _ ->
      check_bool
        (Printf.sprintf "%S: position in %S" sub e)
        true
        (int_of_string_opt l <> None && int_of_string_opt c <> None)
    | _ -> Alcotest.failf "unpositioned error %S" e);
    let has_sub =
      let n = String.length sub and m = String.length e in
      let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
      go 0
    in
    check_bool (Printf.sprintf "%S mentions %S" e sub) true has_sub

let always_wrap body =
  "module t(input clk, input a, output reg q);\n  always @(posedge clk) "
  ^ body ^ "\nendmodule"

let test_parse_errors () =
  List.iter
    (fun (sub, src) -> expect_error ~sub src)
    [ ("expected", "module ;")
    ; ("expected", "module t(input a, output q); assign q = a;")
      (* truncated: no endmodule *)
    ; ("end of input", "module t(input a")
    ; ("initial", "module t(output reg q); initial q = 0; endmodule")
    ; ("delays", always_wrap "#5 q <= a;")
    ; ("negedge",
       "module t(input c, output reg q);\n\
       \  always @(negedge c) q <= 1'b0;\nendmodule")
    ; ("'@*'",
       "module t(input a, output reg q); always @* q <= a; endmodule")
    ; ("blocking assignment", always_wrap "q = a;")
    ; ("'&&'", "module t(input a, input b, output w); assign w = a && b; endmodule")
    ; ("multiplication", "module t(input a, output w); assign w = a * a; endmodule")
    ; ("'!'", "module t(input a, output w); assign w = !a; endmodule")
    ; ("reduction", "module t(input [3:0] a, output w); assign w = &a; endmodule")
    ; ("replication",
       "module t(input a, output [3:0] w); assign w = {4{a}}; endmodule")
    ; ("inout", "module t(inout a); assign a = 0; endmodule")
    ; ("system task",
       "module t(input a, output reg q); always @(posedge a) $display(q); endmodule")
    ; ("[N:0]",
       "module t(input [7:4] a, output w); assign w = a; endmodule")
    ; ("one module", "module a(input x, output y); assign y = x; endmodule\n\
                      module b(input x, output y); assign y = x; endmodule")
    ; ("instantiation",
       "module t(input a, output w); inv u0 (.y(w), .a(a)); endmodule")
    ; ("loops", always_wrap "for (q = 0; q < 4; q = q + 1) q <= a;")
    ; ("non-constant bit select",
       "module t(input [3:0] a, input [1:0] i, output w); assign w = a[i]; endmodule")
    ]

(* --- elaboration: the happy path --- *)

let test_elaborate_counter12 () =
  let d = elab_ok counter12_src in
  let module R = Sc_rtl.Ast in
  (* the clock is structure, not data: dropped from the inputs *)
  let names ds = List.map (fun d -> d.R.dname) ds in
  let width name ds =
    (List.find (fun d -> d.R.dname = name) ds).R.width
  in
  Alcotest.(check (list string))
    "inputs (clock dropped)" [ "rst"; "en"; "load"; "d" ] (names d.R.inputs);
  Alcotest.(check (list string))
    "outputs in port order" [ "q"; "tc" ] (names d.R.outputs);
  check_int "d is 12 bits" 12 (width "d" d.R.inputs);
  check_int "q is 12 bits" 12 (width "q" d.R.outputs);
  Alcotest.(check (list string)) "sc_rtl checks clean" [] (Sc_rtl.Check.check d)

let test_elaborate_errors () =
  List.iter
    (fun (sub, src) ->
      match Elaborate.design_of_source src with
      | Ok _ -> Alcotest.failf "elaborator accepted %S" src
      | Error e ->
        let has_sub =
          let n = String.length sub and m = String.length e in
          let rec go i =
            i + n <= m && (String.sub e i n = sub || go (i + 1))
          in
          go 0
        in
        check_bool (Printf.sprintf "%S mentions %S" e sub) true has_sub)
    [ ("undeclared", "module t(input a, output w); assign w = a | b; endmodule")
    ; ("multiple drivers",
       "module t(input a, output w); assign w = a; assign w = ~a; endmodule")
    ; ("combinational cycle",
       "module t(input a, output w);\n\
       \  wire x; wire y;\n\
       \  assign x = y | a; assign y = x; assign w = x;\nendmodule")
    ; ("clock",
       "module t(input clk, output reg q);\n\
       \  always @(posedge clk) q <= clk;\nendmodule")
    ; ("1-bit input",
       "module t(input [1:0] clk, input a, output reg q);\n\
       \  always @(posedge clk) q <= a;\nendmodule")
    ; ("an always block",
       "module t(input clk, input a, output reg q);\n\
       \  assign q = a;\nendmodule")
    ; ("declare it reg",
       "module t(input clk, input a, output q);\n\
       \  always @(posedge clk) q <= a;\nendmodule")
    ; ("one always block",
       "module t(input clk, input a, output reg q);\n\
       \  always @(posedge clk) q <= a;\n\
       \  always @(posedge clk) q <= ~a;\nendmodule")
    ; ("share one clock",
       "module t(input c1, input c2, input a, output reg q, output reg r);\n\
       \  always @(posedge c1) q <= a;\n\
       \  always @(posedge c2) r <= a;\nendmodule")
    ; ("exactly",
       "module t(input clk, input rst, input a, output reg q);\n\
       \  always @(posedge clk or posedge rst) q <= a;\nendmodule")
    ; ("shift amount",
       "module t(input [3:0] a, input [1:0] n, output [3:0] w);\n\
       \  assign w = a << n;\nendmodule")
    ; ("does not fit",
       "module t(input clk, input [1:0] s, output reg q);\n\
       \  always @(posedge clk)\n\
       \    case (s) 2'd0: q <= 1'b0; 3'd7: q <= 1'b1; default: q <= 1'b0;\n\
       \    endcase\nendmodule")
    ; ("never assigned",
       "module t(input a, output w); wire x; assign w = x; endmodule")
    ; ("no outputs", "module t(input a); wire w; assign w = a; endmodule")
    ; ("never driven", "module t(input a, output w); endmodule")
    ]

(* --- width semantics: lowered designs compute exact Verilog values --- *)

let test_width_exactness () =
  (* (a >> 2) + 1 on 8 bits: sc_rtl would mask the add at the shifted
     width (6 bits) without the frontend's widening; 0xfc >> 2 = 0x3f,
     + 1 = 0x40 needs bit 6 *)
  let d =
    elab_ok
      {|module t(input [7:0] a, output [7:0] w);
          assign w = (a >> 2) + 8'd1;
        endmodule|}
  in
  let t = Sc_rtl.Interp.create d in
  Sc_rtl.Interp.set_input t "a" 0xfc;
  Sc_rtl.Interp.step t;
  check_int "(0xfc >> 2) + 1" 0x40 (Sc_rtl.Interp.output t "w");
  (* concat places the rightmost part at bit 0 *)
  let d =
    elab_ok
      {|module t(input [3:0] a, input [3:0] b, output [7:0] w);
          assign w = {a, b};
        endmodule|}
  in
  let t = Sc_rtl.Interp.create d in
  Sc_rtl.Interp.set_input t "a" 0xA;
  Sc_rtl.Interp.set_input t "b" 0x5;
  Sc_rtl.Interp.step t;
  check_int "{4'hA, 4'h5}" 0xA5 (Sc_rtl.Interp.output t "w");
  (* ~ is width-bounded negation *)
  let d =
    elab_ok
      {|module t(input [3:0] a, output [3:0] w);
          assign w = ~a;
        endmodule|}
  in
  let t = Sc_rtl.Interp.create d in
  Sc_rtl.Interp.set_input t "a" 0b0101;
  Sc_rtl.Interp.step t;
  check_int "~4'b0101" 0b1010 (Sc_rtl.Interp.output t "w");
  (* <= / >= lower through Not *)
  let d =
    elab_ok
      {|module t(input [3:0] a, input [3:0] b, output le, output ge);
          assign le = a <= b;
          assign ge = a >= b;
        endmodule|}
  in
  let t = Sc_rtl.Interp.create d in
  List.iter
    (fun (a, b, le, ge) ->
      Sc_rtl.Interp.set_input t "a" a;
      Sc_rtl.Interp.set_input t "b" b;
      Sc_rtl.Interp.step t;
      check_int (Printf.sprintf "%d <= %d" a b) le (Sc_rtl.Interp.output t "le");
      check_int (Printf.sprintf "%d >= %d" a b) ge (Sc_rtl.Interp.output t "ge"))
    [ (3, 5, 1, 0); (5, 3, 0, 1); (4, 4, 1, 1) ]

(* --- counter12 behaviour through the reference interpreter --- *)

let test_counter12_behaviour () =
  let t = Sc_rtl.Interp.create (elab_ok counter12_src) in
  let cycle ?(rst = 0) ?(en = 0) ?(load = 0) ?(d = 0) () =
    Sc_rtl.Interp.set_input t "rst" rst;
    Sc_rtl.Interp.set_input t "en" en;
    Sc_rtl.Interp.set_input t "load" load;
    Sc_rtl.Interp.set_input t "d" d;
    Sc_rtl.Interp.step t
  in
  cycle ~en:1 ();
  check_int "count to 1" 1 (Sc_rtl.Interp.reg t "$q");
  cycle ~en:1 ();
  check_int "count to 2" 2 (Sc_rtl.Interp.reg t "$q");
  cycle ~load:1 ~en:1 ~d:0xabc ();
  check_int "load wins over en" 0xabc (Sc_rtl.Interp.reg t "$q");
  cycle ();
  check_int "hold without en" 0xabc (Sc_rtl.Interp.reg t "$q");
  cycle ~rst:1 ~load:1 ~d:0xfff ();
  check_int "reset wins over all" 0 (Sc_rtl.Interp.reg t "$q");
  (* terminal count: combinational on the current state *)
  Sc_rtl.Interp.set_reg t "$q" 0xfff;
  cycle ~en:1 ();
  check_int "tc at 12'hfff" 1 (Sc_rtl.Interp.output t "tc");
  check_int "q output mirrors the state" 0xfff (Sc_rtl.Interp.output t "q");
  check_int "wraps to zero" 0 (Sc_rtl.Interp.reg t "$q")

(* --- formal equivalence against the hand-written ISP twin --- *)

let test_counter12_equiv_isp () =
  let from_verilog =
    (Sc_synth.Synth.gates (elab_ok counter12_src)).Sc_synth.Synth.circuit
  in
  let isp_design =
    match Sc_rtl.Parser.parse counter12_isp with
    | Ok d -> d
    | Error e -> Alcotest.failf "ISP twin parse: %s" e
  in
  let from_isp = (Sc_synth.Synth.gates isp_design).Sc_synth.Synth.circuit in
  match Sc_equiv.Checker.check ~k:8 from_verilog from_isp with
  | Sc_equiv.Checker.Equivalent -> ()
  | v ->
    Alcotest.failf "counter12.v is not equivalent to its ISP twin: %s"
      (Format.asprintf "%a" Sc_equiv.Checker.pp_verdict v)

(* --- the shared pipeline: pass identity, warm/cold and j1/j4 QoR --- *)

module P = Sc_pipeline.Pipeline
module M = Sc_metrics.Metrics
module Obs = Sc_obs.Obs

let with_clean_pipeline f =
  P.disable_cache ();
  P.clear_caches ();
  P.reset_log ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_cache ();
      P.clear_caches ();
      P.reset_log ())
    f

let capture_counter12 () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      (match Sc_core.Compiler.compile_verilog counter12_src with
      | Ok _ -> ()
      | Error d ->
        Alcotest.failf "compile failed: %s" (Sc_pipeline.Diag.to_string d));
      M.capture ~design:"counter12" ())

let test_pipeline_pass_and_diag () =
  with_clean_pipeline @@ fun () ->
  (match Sc_core.Compiler.compile_verilog counter12_src with
  | Ok (compiled, circuit) ->
    check_bool "gates synthesized" true
      ((Sc_netlist.Circuit.stats circuit).Sc_netlist.Circuit.gate_total > 0);
    check_bool "layout produced" true (compiled.Sc_core.Compiler.area > 0)
  | Error d ->
    Alcotest.failf "compile failed: %s" (Sc_pipeline.Diag.to_string d));
  check_bool "verilog.parse ran as a pipeline pass" true
    (List.exists (fun (n, _) -> n = "verilog.parse") (P.log ()));
  (* a frontend error surfaces as a Diag tagged with the pass name *)
  match Sc_core.Compiler.compile_verilog "module t(input a endmodule" with
  | Ok _ -> Alcotest.fail "malformed source must not compile"
  | Error d ->
    check_string "diag stage" "verilog.parse" d.Sc_pipeline.Diag.stage

let test_warm_and_parallel_qor_identity () =
  with_clean_pipeline @@ fun () ->
  P.enable_cache ();
  let saved = Sc_par.Pool.default_size () in
  Fun.protect ~finally:(fun () -> Sc_par.Pool.set_default_size saved)
  @@ fun () ->
  Sc_par.Pool.set_default_size 1;
  let cold = capture_counter12 () in
  Sc_par.Pool.set_default_size 4;
  let warm = capture_counter12 () in
  check_string "warm -j4 QoR bytes = cold -j1 QoR bytes" (M.qor_string cold)
    (M.qor_string warm);
  let rt key =
    match List.assoc_opt key warm.M.runtime with Some v -> v | None -> 0.
  in
  check_bool "warm verilog.parse hit" true
    (rt "pipeline.verilog.parse.hit" >= 1.);
  check_bool "no warm frontend miss" true
    (rt "cache.verilog.parse.miss" = 0.)

let suite =
  [ Alcotest.test_case "lexer positions" `Quick test_lexer_positions
  ; Alcotest.test_case "lexer literals" `Quick test_lexer_literals
  ; Alcotest.test_case "parse counter12" `Quick test_parse_counter12
  ; Alcotest.test_case "parse non-ANSI header" `Quick test_parse_non_ansi_header
  ; Alcotest.test_case "expression shapes" `Quick test_parse_expr_shapes
  ; Alcotest.test_case "rejections are positioned errors" `Quick
      test_parse_errors
  ; Alcotest.test_case "elaborate counter12" `Quick test_elaborate_counter12
  ; Alcotest.test_case "elaboration errors" `Quick test_elaborate_errors
  ; Alcotest.test_case "width exactness" `Quick test_width_exactness
  ; Alcotest.test_case "counter12 behaviour" `Quick test_counter12_behaviour
  ; Alcotest.test_case "counter12 equivalent to ISP twin" `Quick
      test_counter12_equiv_isp
  ; Alcotest.test_case "pipeline pass and diag" `Quick
      test_pipeline_pass_and_diag
  ; Alcotest.test_case "warm and -j QoR identity" `Quick
      test_warm_and_parallel_qor_identity
  ]
