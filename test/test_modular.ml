(* Separate compilation: interface signatures, macro assembly, and the
   modular driver. *)

open Sc_netlist
module Sig = Signature

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- signatures --- *)

let alu_like name ow =
  let b = Builder.create name in
  let a = Builder.input b "a" 4 in
  let c = Builder.input b "b" 4 in
  let y = Array.init ow (fun i -> Builder.xor2 b a.(i mod 4) c.(i mod 4)) in
  Builder.output b "y" y;
  Builder.finish b

let clocked_circuit () =
  let b = Builder.create "reg1" in
  let d = Builder.input b "d" 1 in
  let q = Builder.dff b d.(0) in
  Builder.output b "q" [| q |];
  Builder.finish b

let test_signature_extract () =
  let s = Sig.of_circuit (alu_like "alu" 4) in
  check_string "name" "alu" s.Sig.mname;
  check_int "ports" 3 (List.length s.Sig.sports);
  check_bool "comb" false s.Sig.clocked;
  check_string "canonical" "module alu (in a[4], in b[4], out y[4]) comb"
    (Sig.to_string s);
  let r = Sig.of_circuit (clocked_circuit ()) in
  check_bool "clocked" true r.Sig.clocked

let test_signature_digest_stability () =
  let s1 = Sig.of_circuit (alu_like "alu" 4) in
  let s2 = Sig.of_circuit (alu_like "alu" 4) in
  check_string "same interface, same digest" (Sig.digest s1) (Sig.digest s2);
  let s3 = Sig.of_circuit (alu_like "alu" 8) in
  check_bool "width change, new digest" true (Sig.digest s1 <> Sig.digest s3)

let test_signature_compatible () =
  let a4 = Sig.of_circuit (alu_like "alu_ref" 4) in
  let b4 = Sig.of_circuit (alu_like "alu" 4) in
  (match Sig.compatible ~expected:a4 ~got:b4 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected compatible: %s" e);
  match Sig.compatible ~expected:a4 ~got:(Sig.of_circuit (alu_like "alu" 8)) with
  | Ok () -> Alcotest.fail "width mismatch accepted"
  | Error e ->
    (* the Diag material must name both modules and the port *)
    List.iter
      (fun needle ->
        check_bool (needle ^ " named") true (contains ~needle e))
      [ "alu_ref"; "alu"; "y" ]

let test_signature_missing_port () =
  let b = Builder.create "half" in
  let a = Builder.input b "a" 4 in
  Builder.output b "y" (Array.map (fun n -> n) a);
  let half = Sig.of_circuit (Builder.finish b) in
  let full = Sig.of_circuit (alu_like "alu" 4) in
  match Sig.compatible ~expected:full ~got:half with
  | Ok () -> Alcotest.fail "missing port accepted"
  | Error e ->
    check_bool "names the port" true (contains ~needle:"b" e)

(* --- macro assembly --- *)

open Sc_layout
open Sc_chip

let block name w h =
  Cell.make ~name [ Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 w h) ]

let test_macro_wrapper () =
  let m = Assemble.macro ~name:"macro_b" ~pins:[ "x[0]"; "x[1]"; "q" ] (block "b" 60 40) in
  check_int "ports" 3 (List.length m.Cell.ports);
  let p1 = Cell.find_port m "x[1]" in
  check_int "pin on grid" 14 p1.Cell.rect.Sc_geom.Rect.xmin;
  check_bool "clean" true (Sc_drc.Checker.is_clean m)

let pack_two () =
  Assemble.pack ~name:"two"
    ~macros:
      [ { Assemble.mi_name = "u0"; mi_pins = [ "a"; "y" ]; mi_cell = block "ba" 60 40 }
      ; { Assemble.mi_name = "u1"; mi_pins = [ "p"; "q" ]; mi_cell = block "bb" 90 70 }
      ]
    ~chip_ports:[ "in0"; "out0" ]
    ~nets:
      [ { Assemble.net_name = "in0"; ends = [ Assemble.Chip "in0"; Pin ("u0", "a") ] }
      ; { Assemble.net_name = "mid"; ends = [ Pin ("u0", "y"); Pin ("u1", "p") ] }
      ; { Assemble.net_name = "out0"; ends = [ Pin ("u1", "q"); Chip "out0" ] }
      ]
    ()

let test_pack_structure () =
  let p = pack_two () in
  check_int "macros" 2 p.Assemble.macro_count;
  check_int "chip ports" 2 (List.length p.Assemble.core.Cell.ports);
  (* two macros + the channel *)
  check_int "instances" 3 (List.length p.Assemble.core.Cell.instances);
  check_bool "routed some tracks" true (p.Assemble.channel_tracks >= 1)

let test_pack_drc_clean () =
  let p = pack_two () in
  Alcotest.(check (list string)) "clean" []
    (List.map
       (Format.asprintf "%a" Sc_drc.Checker.pp_violation)
       (Sc_drc.Checker.check p.Assemble.core))

let test_pack_shares_wrappers () =
  let b = block "same" 60 40 in
  let p =
    Assemble.pack ~name:"twins"
      ~macros:
        [ { Assemble.mi_name = "u0"; mi_pins = [ "a" ]; mi_cell = b }
        ; { Assemble.mi_name = "u1"; mi_pins = [ "a" ]; mi_cell = b }
        ]
      ~chip_ports:[] ~nets:[] ()
  in
  let wrappers =
    List.filter_map
      (fun (i : Cell.inst) ->
        if i.inst_name = "channel" then None else Some i.cell.Cell.id)
      p.Assemble.core.Cell.instances
  in
  match wrappers with
  | [ a; b ] -> check_int "one shared wrapper cell" a b
  | _ -> Alcotest.fail "expected two macro instances"

let test_pack_framed_drc_clean () =
  let p = pack_two () in
  let a =
    Assemble.assemble ~name:"chip" ~core:p.Assemble.core ~pads:6 ()
  in
  check_bool "framed clean" true (Sc_drc.Checker.is_clean a.Assemble.chip)

let test_pack_rejects_unknown () =
  let reject f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "unknown pin" true
    (reject (fun () ->
         Assemble.pack ~name:"bad"
           ~macros:[ { Assemble.mi_name = "u"; mi_pins = [ "a" ]; mi_cell = block "b" 20 20 } ]
           ~chip_ports:[]
           ~nets:[ { Assemble.net_name = "n"; ends = [ Assemble.Pin ("u", "zz") ] } ]
           ()));
  check_bool "duplicate instance" true
    (reject (fun () ->
         Assemble.pack ~name:"bad"
           ~macros:
             [ { Assemble.mi_name = "u"; mi_pins = []; mi_cell = block "b" 20 20 }
             ; { Assemble.mi_name = "u"; mi_pins = []; mi_cell = block "c" 20 20 }
             ]
           ~chip_ports:[] ~nets:[] ()))

(* --- the modular driver: compile_behavior on a [chip] source --- *)

module Compiler = Sc_core.Compiler
module Chipdesc = Sc_core.Chipdesc
module Designs = Sc_core.Designs

let compile_system () =
  match Compiler.compile_behavior Designs.system_src with
  | Ok r -> r
  | Error d -> Alcotest.failf "modular compile failed: %s" (Sc_pipeline.Diag.to_string d)

let test_modular_compile () =
  let c, circuit = compile_system () in
  check_int "whole chip DRC clean" 0 c.Compiler.drc_violations;
  check_bool "nonzero area" true (c.Compiler.area > 0);
  check_string "stitched top" "system" circuit.Circuit.cname;
  (* the stitched circuit has the chip's interface *)
  let port n =
    List.find (fun (p : Circuit.port) -> p.port_name = n) circuit.Circuit.ports
  in
  check_int "q width" 4 (Array.length (port "q").Circuit.bits);
  check_int "insts" 2 (List.length circuit.Circuit.insts)

let test_modular_detect () =
  check_bool "system is modular" true (Chipdesc.is_modular Designs.system_src);
  check_bool "counter is flat" false (Chipdesc.is_modular Designs.counter_src)

let replace ~sub ~by s =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then Alcotest.failf "no %s in source" sub
    else if String.sub s i n = sub then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

let test_chip_split_errors () =
  let expect_err ~needles src =
    match Chipdesc.split src with
    | Ok _ -> Alcotest.failf "accepted: %s" (String.concat "/" needles)
    | Error e ->
      List.iter
        (fun needle ->
          check_bool (needle ^ " named in " ^ e) true (contains ~needle e))
        needles
  in
  let base = Designs.system_src in
  expect_err ~needles:[ "duplicate module"; "mixer" ]
    (base ^ "\nmodule mixer;\ninputs a[1];\noutputs y[1];\nbehavior\n"
   ^ "  y := a;\nend\n");
  expect_err ~needles:[ "u_mix" ]
    (replace ~sub:"u_acc : accum" ~by:"u_mix : accum" base);
  expect_err ~needles:[ "unknown module"; "nosuch" ]
    (replace ~sub:"u_acc : accum" ~by:"u_acc : nosuch" base);
  expect_err ~needles:[ "chip" ]
    (base ^ "\nchip second;\ninputs a[1];\noutputs y[1];\nend\n");
  (* chip-block syntax errors carry the offending token *)
  expect_err ~needles:[ "=" ]
    (replace ~sub:"u_mix.a = a" ~by:"u_mix.a a" base)

(* interface mismatches surface as Diags through the compile path,
   naming the instances and ports involved *)
let test_modular_resolve_diags () =
  let expect_diag ~needles src =
    match Compiler.compile_behavior src with
    | Ok _ -> Alcotest.failf "compiled: %s" (String.concat "/" needles)
    | Error d ->
      let e = Sc_pipeline.Diag.to_string d in
      List.iter
        (fun needle ->
          check_bool (needle ^ " named in " ^ e) true (contains ~needle e))
        needles
  in
  let base = Designs.system_src in
  (* width mismatch: 4-wide mixer output into the 1-wide reset pin *)
  expect_diag ~needles:[ "width"; "u_acc.reset"; "u_mix.y" ]
    (replace ~sub:"u_acc.reset = reset" ~by:"u_acc.reset = u_mix.y"
       (replace ~sub:"inputs a[4], b[4], reset[1];" ~by:"inputs a[4], b[4];"
          base));
  (* direction abuse: an instance output used as a sink *)
  expect_diag ~needles:[ "u_mix.y"; "driver" ]
    (base |> replace ~sub:"u_acc.d = u_mix.y" ~by:"u_mix.y = u_acc.q");
  (* completeness: an undriven instance input names instance + port *)
  expect_diag ~needles:[ "u_acc"; "reset" ]
    (replace ~sub:"  u_acc.reset = reset;\n" ~by:"" base);
  (* an unknown pin on an instance *)
  expect_diag ~needles:[ "u_mix"; "zz" ]
    (replace ~sub:"u_mix.a = a" ~by:"u_mix.zz = a" base)

(* module errors surface with the module name on the stage *)
let test_modular_module_diag () =
  let bad =
    replace ~sub:"y := a ^ b;" ~by:"y := a ^ nosuchnet;" Designs.system_src
  in
  match Compiler.compile_behavior bad with
  | Ok _ -> Alcotest.fail "bad module body compiled"
  | Error d ->
    let e = Sc_pipeline.Diag.to_string d in
    check_bool ("module stage in " ^ e) true (contains ~needle:"module:" e)

(* determinism: -j1 and -j4 fan-outs produce byte-identical QoR *)
let qor_at ~jobs src =
  Sc_par.Pool.set_default_size jobs;
  Sc_obs.Obs.reset ();
  Sc_obs.Obs.enable ();
  let r = Compiler.compile_behavior src in
  Sc_obs.Obs.disable ();
  Sc_par.Pool.set_default_size 1;
  match r with
  | Error d -> Alcotest.failf "compile: %s" (Sc_pipeline.Diag.to_string d)
  | Ok (c, _) ->
    let s =
      Sc_metrics.Metrics.qor_string
        (Sc_metrics.Metrics.capture ~design:"system" ())
    in
    Sc_obs.Obs.reset ();
    (c.Compiler.cif, s)

let test_modular_determinism () =
  let cif1, qor1 = qor_at ~jobs:1 Designs.system_src in
  let cif4, qor4 = qor_at ~jobs:4 Designs.system_src in
  check_string "CIF identical at -j1/-j4" cif1 cif4;
  check_string "QoR identical at -j1/-j4" qor1 qor4;
  check_bool "per-module QoR present" true
    (contains ~needle:"module.mixer.area" qor1
    && contains ~needle:"module.accum.area" qor1)

(* the incremental matrix: editing one module re-runs exactly that
   module's sub-pipeline plus assembly; the other module is all-hit *)
let test_modular_incremental () =
  let module P = Sc_pipeline.Pipeline in
  P.disable_cache ();
  P.clear_caches ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_cache ();
      P.clear_caches ();
      P.reset_log ())
    (fun () ->
      P.enable_cache ();
      let compile src =
        P.reset_log ();
        match Compiler.compile_behavior src with
        | Ok _ -> P.log ()
        | Error d -> Alcotest.failf "%s" (Sc_pipeline.Diag.to_string d)
      in
      let ran lg =
        List.filter_map
          (fun (n, st) -> if st = P.Ran then Some n else None)
          lg
      in
      let _cold = compile Designs.system_src in
      let warm = compile Designs.system_src in
      Alcotest.(check (list string)) "warm all-hit" [] (ran warm);
      let edited =
        replace ~sub:"y := a ^ b" ~by:"y := a | b" Designs.system_src
      in
      Alcotest.(check (list string))
        "mixer edit re-runs mixer + assembly only"
        [ "mixer:parse"; "mixer:compile"; "mixer:optimize"; "mixer:place"
        ; "mixer:route"; "mixer:drc"; "mixer:emit"; "mixer:measure"
        ; "assemble"; "drc"; "emit"; "measure"
        ]
        (ran (compile edited)))

(* concurrent compiles of the same modular source share in-flight
   module runs and agree on the result *)
let test_modular_concurrent_dedup () =
  let n = 4 in
  let results = Array.make n None in
  let domains =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            results.(i) <- Some (Compiler.compile_behavior Designs.system_src)))
  in
  List.iter Domain.join domains;
  let cifs =
    Array.to_list results
    |> List.map (function
         | Some (Ok (c, _)) -> c.Compiler.cif
         | Some (Error d) ->
           Alcotest.failf "concurrent compile: %s"
             (Sc_pipeline.Diag.to_string d)
         | None -> Alcotest.fail "missing result")
  in
  match cifs with
  | first :: rest ->
    List.iteri
      (fun i c -> check_string (Printf.sprintf "cif %d identical" (i + 1)) first c)
      rest
  | [] -> Alcotest.fail "no results"

let test_modular_rejects_pla () =
  match
    Compiler.compile_behavior ~style:Compiler.Pla_control Designs.system_src
  with
  | Ok _ -> Alcotest.fail "pla style accepted for modular source"
  | Error d ->
    check_bool "mentions gates style" true
      (contains ~needle:"gates" (Sc_pipeline.Diag.to_string d))

let suite =
  [ Alcotest.test_case "signature extract" `Quick test_signature_extract
  ; Alcotest.test_case "signature digest stability" `Quick
      test_signature_digest_stability
  ; Alcotest.test_case "signature compatibility" `Quick test_signature_compatible
  ; Alcotest.test_case "signature missing port" `Quick test_signature_missing_port
  ; Alcotest.test_case "macro wrapper" `Quick test_macro_wrapper
  ; Alcotest.test_case "pack structure" `Quick test_pack_structure
  ; Alcotest.test_case "pack DRC clean" `Quick test_pack_drc_clean
  ; Alcotest.test_case "pack shares wrappers" `Quick test_pack_shares_wrappers
  ; Alcotest.test_case "pack + pad frame DRC clean" `Quick
      test_pack_framed_drc_clean
  ; Alcotest.test_case "pack rejects bad nets" `Quick test_pack_rejects_unknown
  ; Alcotest.test_case "modular detect" `Quick test_modular_detect
  ; Alcotest.test_case "modular compile" `Quick test_modular_compile
  ; Alcotest.test_case "modular rejects pla" `Quick test_modular_rejects_pla
  ; Alcotest.test_case "chip split errors" `Quick test_chip_split_errors
  ; Alcotest.test_case "resolve diagnostics" `Quick test_modular_resolve_diags
  ; Alcotest.test_case "module diagnostics" `Quick test_modular_module_diag
  ; Alcotest.test_case "j1/j4 determinism" `Quick test_modular_determinism
  ; Alcotest.test_case "incremental matrix" `Quick test_modular_incremental
  ; Alcotest.test_case "concurrent dedup" `Quick test_modular_concurrent_dedup
  ]
