open Sc_rtl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Parser.parse src with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse error: %s" e

let counter_src =
  {|
module counter;
inputs reset[1], load[1], data[4];
outputs q[4];
registers count[4];
behavior
  if reset == 1 then count := 0;
  else
    if load == 1 then count := data;
    else count := count + 1;
    end
  end
  q := count;
end
|}

let traffic_src =
  {|
-- two-street traffic light with a car sensor on the side street
module traffic;
inputs car[1], reset[1];
outputs ns[3], ew[3];
registers state[2], timer[2];
behavior
  if reset == 1 then state := 0; timer := 0;
  else
    decode state
      0: if car == 1 then state := 1; end
      1: state := 2; timer := 0;
      2: if timer == 3 then state := 3; else timer := timer + 1; end
      3: state := 0;
    end
  end
  decode state
    0: ns := 1; ew := 4;
    1: ns := 2; ew := 4;
    2: ns := 4; ew := 1;
    3: ns := 4; ew := 2;
  end
end
|}

let alu_src =
  {|
module alu4;
inputs op[2], a[4], b[4];
outputs y[4], z[1];
registers acc[4];
behavior
  decode op
    0: acc := a + b;
    1: acc := a - b;
    2: acc := a & b;
    3: acc := a ^ b;
  end
  y := acc;
  z := acc == 0;
end
|}

let stim_counter cyc =
  [ ("reset", if cyc = 0 then 1 else 0)
  ; ("load", if cyc = 7 then 1 else 0)
  ; ("data", cyc land 15)
  ]

let stim_traffic cyc =
  [ ("reset", if cyc = 0 then 1 else 0); ("car", (cyc / 3) land 1) ]

let stim_alu cyc = [ ("op", cyc land 3); ("a", cyc land 15); ("b", (cyc * 7) land 15) ]

let test_gates_counter_matches_interp () =
  let d = parse_ok counter_src in
  let r = Sc_synth.Synth.gates d in
  Alcotest.(check (list string)) "circuit clean" []
    (Sc_netlist.Circuit.check r.Sc_synth.Synth.circuit);
  check_bool "matches interpreter" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 40
       stim_counter)

let test_gates_traffic_matches_interp () =
  let d = parse_ok traffic_src in
  let r = Sc_synth.Synth.gates d in
  check_bool "matches interpreter" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 60
       stim_traffic)

let test_gates_alu_matches_interp () =
  let d = parse_ok alu_src in
  let r = Sc_synth.Synth.gates d in
  (* the ALU has no reset, but every register is written each cycle *)
  check_bool "matches interpreter" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 40 stim_alu)

let test_pla_counter_matches_interp () =
  let d = parse_ok counter_src in
  let r, pla = Sc_synth.Synth.pla_fsm d in
  check_bool "matches interpreter" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 40
       stim_counter);
  check_bool "pla layout DRC clean" true
    (Sc_drc.Checker.is_clean pla.Sc_pla.Generator.layout)

let test_pla_traffic_matches_interp () =
  let d = parse_ok traffic_src in
  let r, _ = Sc_synth.Synth.pla_fsm d in
  check_bool "matches interpreter" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 60
       stim_traffic)

let test_pla_rejects_large_state () =
  (* the ALU (op+a+b+acc = 14 bits) exceeds the 12-bit cap *)
  let d = parse_ok alu_src in
  check_bool "alu rejected" true
    (try
       ignore (Sc_synth.Synth.pla_fsm d);
       false
     with Sc_pipeline.Diag.Error _ -> true);
  let big =
    parse_ok
      {|
module big;
inputs a[10], b[8];
outputs y[1];
behavior
  y := a[0] & b[0];
end
|}
  in
  check_bool "rejected" true
    (try
       ignore (Sc_synth.Synth.pla_fsm big);
       false
     with Sc_pipeline.Diag.Error _ -> true)

let test_results_carry_metrics () =
  let d = parse_ok traffic_src in
  let g = Sc_synth.Synth.gates d in
  let p, _ = Sc_synth.Synth.pla_fsm d in
  check_bool "gates area positive" true (g.Sc_synth.Synth.cell_area > 0);
  check_bool "pla area positive" true (p.Sc_synth.Synth.cell_area > 0);
  check_bool "gates path positive" true (g.Sc_synth.Synth.critical_path > 0);
  check_int "traffic has 4 state ffs" 4 g.Sc_synth.Synth.stats.Sc_netlist.Circuit.flipflops

let test_sub_and_compare_bits () =
  (* subtraction/comparison corner cases through the full path *)
  let src =
    {|
module cmp;
inputs a[3], b[3];
outputs lt[1], gt[1], d[3];
behavior
  lt := a < b;
  gt := a > b;
  d := a - b;
end
|}
  in
  let d = parse_ok src in
  let r = Sc_synth.Synth.gates d in
  let stim cyc = [ ("a", cyc land 7); ("b", (cyc lsr 3) land 7) ] in
  check_bool "all 64 combinations" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 64 stim)

let test_shift_bitselect () =
  let src =
    {|
module sh;
inputs a[4];
outputs up[4], down[4], msb[1];
behavior
  up := a << 2;
  down := a >> 1;
  msb := a[3];
end
|}
  in
  let d = parse_ok src in
  let r = Sc_synth.Synth.gates d in
  let stim cyc = [ ("a", cyc land 15) ] in
  check_bool "all values" true
    (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit 16 stim)


let test_wires_synthesize () =
  (* the wire-sharing idiom compiles correctly on both backends *)
  let src =
    {|
module shared;
inputs sel[1], rst[1], a[3];
outputs y[3];
registers acc[3];
wires operand[3];
behavior
  if sel == 1 then operand := a; else operand := acc; end
  if rst == 1 then acc := 0; else acc := acc + operand; end
  y := acc;
end
|}
  in
  let d = parse_ok src in
  let stim cyc =
    [ ("rst", if cyc = 0 then 1 else 0)
    ; ("sel", cyc land 1)
    ; ("a", (cyc * 3) land 7)
    ]
  in
  let g = Sc_synth.Synth.gates d in
  check_bool "gates" true
    (Sc_synth.Synth.verify_against_interp d g.Sc_synth.Synth.circuit 32 stim);
  let p, _ = Sc_synth.Synth.pla_fsm d in
  check_bool "pla" true
    (Sc_synth.Synth.verify_against_interp d p.Sc_synth.Synth.circuit 32 stim)

let test_wire_sharing_shrinks_circuit () =
  (* operator sharing at the source level must reduce gate count *)
  let unshared =
    parse_ok
      {|
module u;
inputs s[1], a[6], b[6], c[6];
outputs y[6];
behavior
  if s == 1 then y := a + b; else y := a + c; end
end
|}
  in
  let shared =
    parse_ok
      {|
module s;
inputs s[1], a[6], b[6], c[6];
outputs y[6];
wires operand[6];
behavior
  if s == 1 then operand := b; else operand := c; end
  y := a + operand;
end
|}
  in
  let gu = (Sc_synth.Synth.gates unshared).Sc_synth.Synth.stats in
  let gs = (Sc_synth.Synth.gates shared).Sc_synth.Synth.stats in
  check_bool
    (Printf.sprintf "shared %d < unshared %d gates"
       gs.Sc_netlist.Circuit.gate_total gu.Sc_netlist.Circuit.gate_total)
    true
    (gs.Sc_netlist.Circuit.gate_total < gu.Sc_netlist.Circuit.gate_total)

(* property: random small FSM behaviours synthesize correctly on both
   backends *)
let gen_design =
  let open QCheck.Gen in
  (* a 2-bit state machine with random next-state table and output table *)
  let* next = array_size (return 8) (int_range 0 3) in
  let* out = array_size (return 4) (int_range 0 7) in
  let cases =
    List.init 4 (fun s ->
        ( s
        , [ Sc_rtl.Ast.If
              ( Sc_rtl.Ast.Binop (Sc_rtl.Ast.Eq, Sc_rtl.Ast.Ref "x", Sc_rtl.Ast.Const 1)
              , [ Sc_rtl.Ast.Assign ("s", Sc_rtl.Ast.Const next.((2 * s) + 1)) ]
              , [ Sc_rtl.Ast.Assign ("s", Sc_rtl.Ast.Const next.(2 * s)) ] )
          ; Sc_rtl.Ast.Assign ("y", Sc_rtl.Ast.Const out.(s))
          ] ))
  in
  return
    { Sc_rtl.Ast.name = "fsm"
    ; inputs = [ { Sc_rtl.Ast.dname = "x"; width = 1 }; { Sc_rtl.Ast.dname = "rst"; width = 1 } ]
    ; outputs = [ { Sc_rtl.Ast.dname = "y"; width = 3 } ]
    ; regs = [ { Sc_rtl.Ast.dname = "s"; width = 2 } ]
    ; wires = []
    ; body =
        [ Sc_rtl.Ast.If
            ( Sc_rtl.Ast.Binop (Sc_rtl.Ast.Eq, Sc_rtl.Ast.Ref "rst", Sc_rtl.Ast.Const 1)
            , [ Sc_rtl.Ast.Assign ("s", Sc_rtl.Ast.Const 0)
              ; Sc_rtl.Ast.Assign ("y", Sc_rtl.Ast.Const out.(0))
              ]
            , [ Sc_rtl.Ast.Decode (Sc_rtl.Ast.Ref "s", cases, []) ] )
        ]
    }

let prop_random_fsm_both_backends =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random FSMs synthesize correctly (both backends)"
       ~count:20 (QCheck.make gen_design) (fun d ->
         (match Sc_rtl.Check.check d with
         | [] -> true
         | _ -> false)
         &&
         let stim cyc =
           [ ("rst", if cyc = 0 then 1 else 0); ("x", (cyc lsr 1) land 1) ]
         in
         let g = Sc_synth.Synth.gates d in
         let p, _ = Sc_synth.Synth.pla_fsm d in
         Sc_synth.Synth.verify_against_interp d g.Sc_synth.Synth.circuit 24 stim
         && Sc_synth.Synth.verify_against_interp d p.Sc_synth.Synth.circuit 24
              stim))

let suite =
  [ Alcotest.test_case "gates: counter" `Quick test_gates_counter_matches_interp
  ; Alcotest.test_case "gates: traffic" `Quick test_gates_traffic_matches_interp
  ; Alcotest.test_case "gates: alu" `Quick test_gates_alu_matches_interp
  ; Alcotest.test_case "pla: counter" `Quick test_pla_counter_matches_interp
  ; Alcotest.test_case "pla: traffic" `Quick test_pla_traffic_matches_interp
  ; Alcotest.test_case "pla: size limit" `Quick test_pla_rejects_large_state
  ; Alcotest.test_case "results carry metrics" `Quick test_results_carry_metrics
  ; Alcotest.test_case "subtract and compare" `Quick test_sub_and_compare_bits
  ; Alcotest.test_case "shift and bit select" `Quick test_shift_bitselect
  ; Alcotest.test_case "wires synthesize" `Quick test_wires_synthesize
  ; Alcotest.test_case "wire sharing shrinks circuit" `Quick test_wire_sharing_shrinks_circuit
  ; prop_random_fsm_both_backends
  ]
