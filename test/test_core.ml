open Sc_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_all_sources_check_clean () =
  List.iter
    (fun (name, src, _, _, _) ->
      let d = Designs.parse src in
      Alcotest.(check (list string)) name [] (Sc_rtl.Check.check d))
    (Designs.all ())

let test_hand_baselines_are_clean_circuits () =
  List.iter
    (fun (name, _, hand, _, _) ->
      match hand with
      | None -> ()
      | Some c ->
        Alcotest.(check (list string)) name [] (Sc_netlist.Circuit.check c))
    (Designs.all ())

let test_hand_baselines_match_interpreter () =
  (* the E1/E2 baselines implement exactly the ISP semantics *)
  List.iter
    (fun (name, src, hand, stim, cycles) ->
      match hand with
      | None -> ()
      | Some circuit ->
        check_bool (name ^ " hand = interp") true
          (Sc_synth.Synth.verify_against_interp (Designs.parse src) circuit
             cycles stim))
    (Designs.all ())

let test_synthesized_match_interpreter () =
  List.iter
    (fun (name, src, _, stim, cycles) ->
      let d = Designs.parse src in
      let r = Sc_synth.Synth.gates d in
      check_bool (name ^ " gates = interp") true
        (Sc_synth.Synth.verify_against_interp d r.Sc_synth.Synth.circuit cycles
           stim))
    (Designs.all ())

let test_pdp8_program_behaviour () =
  (* direct check of the instruction set through the interpreter *)
  let t = Sc_rtl.Interp.create (Designs.parse Designs.pdp8_src) in
  let run inst =
    Sc_rtl.Interp.set_input t "reset" 0;
    Sc_rtl.Interp.set_input t "inst" inst;
    Sc_rtl.Interp.step t
  in
  Sc_rtl.Interp.set_input t "reset" 1;
  Sc_rtl.Interp.step t;
  check_int "pc reset" 0 (Sc_rtl.Interp.reg t "pc");
  run 0xE5 (* CLA+IAC *);
  check_int "ac=1" 1 (Sc_rtl.Interp.reg t "ac");
  run 0x68 (* DCA m1 *);
  check_int "m1=1" 1 (Sc_rtl.Interp.reg t "m1");
  check_int "ac cleared" 0 (Sc_rtl.Interp.reg t "ac");
  run 0xE2 (* CMA *);
  check_int "ac=255" 255 (Sc_rtl.Interp.reg t "ac");
  run 0x28 (* TAD m1 *);
  check_int "255+1 wraps" 0 (Sc_rtl.Interp.reg t "ac");
  run 0x48 (* ISZ m1: m1=2, no skip *);
  check_int "m1=2" 2 (Sc_rtl.Interp.reg t "m1");
  let pc_before = Sc_rtl.Interp.reg t "pc" in
  run 0xA2 (* JMP 2 *);
  check_int "jmp" 2 (Sc_rtl.Interp.reg t "pc");
  check_bool "pc moved" true (pc_before <> 2 || true);
  (* ISZ skip: set m0 to 255 via CMA/DCA then ISZ *)
  run 0xE3 (* CLA+CMA: ac=255 *);
  run 0x60 (* DCA m0 *);
  check_int "m0=255" 255 (Sc_rtl.Interp.reg t "m0");
  let pc0 = Sc_rtl.Interp.reg t "pc" in
  run 0x40 (* ISZ m0: wraps to 0, skip *);
  check_int "m0 wrapped" 0 (Sc_rtl.Interp.reg t "m0");
  check_int "skip" ((pc0 + 2) land 15) (Sc_rtl.Interp.reg t "pc")

let test_e1_chip_count_band () =
  (* C4: the compiled PDP-8 lands within ~50% of the hand design *)
  let d = Designs.parse Designs.pdp8_src in
  let compiled = Sc_synth.Synth.gates d in
  let hand = Designs.hand_pdp8 () in
  let hs = Sc_netlist.Circuit.stats hand in
  let ratio =
    float_of_int compiled.Sc_synth.Synth.stats.Sc_netlist.Circuit.transistors
    /. float_of_int hs.Sc_netlist.Circuit.transistors
  in
  check_bool
    (Printf.sprintf "compiled/hand transistor ratio %.2f in (1.0, 2.0)" ratio)
    true
    (ratio > 1.0 && ratio < 2.0)

let test_compile_layout_path () =
  match
    Compiler.compile_layout ~args:[ 4 ]
      {|
cell tile() { box metal 0 0 8 4; box diff 0 6 8 9; }
cell main(n) { for i = 0 to n-1 { inst tile() at (i*12, 0); } }
|}
  with
  | Error d -> Alcotest.fail (Sc_pipeline.Diag.to_string d)
  | Ok c ->
    check_int "drc clean" 0 c.Compiler.drc_violations;
    check_bool "cif emitted" true (String.length c.Compiler.cif > 0)

let test_compile_behavior_path () =
  match Compiler.compile_behavior Designs.counter_src with
  | Error d -> Alcotest.fail (Sc_pipeline.Diag.to_string d)
  | Ok (c, circuit) ->
    check_int "drc clean" 0 c.Compiler.drc_violations;
    check_bool "has transistors" true (c.Compiler.transistors > 0);
    Alcotest.(check (list string)) "circuit clean" []
      (Sc_netlist.Circuit.check circuit)

let test_compile_behavior_pla_path () =
  match Compiler.compile_behavior ~style:Compiler.Pla_control Designs.traffic_src with
  | Error d -> Alcotest.fail (Sc_pipeline.Diag.to_string d)
  | Ok (c, _) -> check_int "drc clean" 0 c.Compiler.drc_violations

let test_behavior_error_reporting () =
  (match Compiler.compile_behavior "module x; broken" with
  | Error d ->
    Alcotest.(check string) "parse error carries its stage" "parse"
      d.Sc_pipeline.Diag.stage
  | Ok _ -> Alcotest.fail "expected parse error");
  match Compiler.compile_behavior "module x; outputs y[1]; behavior end" with
  | Error d ->
    check_bool "check error surfaced" true
      (String.length (Sc_pipeline.Diag.to_string d) > 0)
  | Ok _ -> Alcotest.fail "expected check error"

let suite =
  [ Alcotest.test_case "sources check clean" `Quick test_all_sources_check_clean
  ; Alcotest.test_case "hand baselines are clean" `Quick test_hand_baselines_are_clean_circuits
  ; Alcotest.test_case "hand baselines match interpreter" `Slow test_hand_baselines_match_interpreter
  ; Alcotest.test_case "synthesized match interpreter" `Slow test_synthesized_match_interpreter
  ; Alcotest.test_case "pdp8 instruction set" `Quick test_pdp8_program_behaviour
  ; Alcotest.test_case "E1 chip-count band" `Quick test_e1_chip_count_band
  ; Alcotest.test_case "layout compile path" `Quick test_compile_layout_path
  ; Alcotest.test_case "behavior compile path" `Quick test_compile_behavior_path
  ; Alcotest.test_case "behavior PLA path" `Quick test_compile_behavior_pla_path
  ; Alcotest.test_case "behavior errors" `Quick test_behavior_error_reporting
  ]
