open Sc_geom
open Sc_tech
open Sc_layout
open Sc_drc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cell name elements = Cell.make ~name elements

let has_rule vs pred = List.exists (fun v -> pred v.Checker.rule) vs

let test_clean_layout () =
  let c =
    cell "ok"
      [ Cell.box Layer.Metal (Rect.make 0 0 10 3)
      ; Cell.box Layer.Metal (Rect.make 0 6 10 9)
      ; Cell.box Layer.Poly (Rect.make 20 0 22 10)
      ]
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Checker.detail) (Checker.check c))

let test_narrow_poly () =
  let c = cell "narrow" [ Cell.box Layer.Poly (Rect.make 0 0 1 10) ] in
  let vs = Checker.check c in
  check_int "one violation" 1 (List.length vs);
  check_bool "width rule" true
    (has_rule vs (function Rules.Min_width (Layer.Poly, 2) -> true | _ -> false))

let test_metal_spacing () =
  let c =
    cell "close"
      [ Cell.box Layer.Metal (Rect.make 0 0 10 3)
      ; Cell.box Layer.Metal (Rect.make 0 5 10 8)
      ]
  in
  let vs = Checker.check c in
  check_bool "spacing violation" true
    (has_rule vs (function
      | Rules.Min_spacing (Layer.Metal, Layer.Metal, 3) -> true
      | _ -> false))

let test_touching_metal_merged () =
  (* Two abutting metal tiles form one region: no spacing violation. *)
  let c =
    cell "merged"
      [ Cell.box Layer.Metal (Rect.make 0 0 10 3)
      ; Cell.box Layer.Metal (Rect.make 10 0 20 3)
      ]
  in
  check_bool "clean" true (Checker.is_clean c)

let test_chained_regions () =
  (* A-touches-B-touches-C: A and C are the same region even though far
     apart in the list; the L-shape comes back near A without violation. *)
  let c =
    cell "chain"
      [ Cell.box Layer.Metal (Rect.make 0 0 3 20)
      ; Cell.box Layer.Metal (Rect.make 3 17 20 20)
      ; Cell.box Layer.Metal (Rect.make 17 0 20 17)
      ]
  in
  check_bool "one region, clean" true (Checker.is_clean c)

let test_transistor_not_flagged () =
  let c =
    cell "fet"
      [ Cell.box Layer.Diffusion (Rect.make 0 2 10 6)
      ; Cell.box Layer.Poly (Rect.make 4 0 6 8)
      ]
  in
  check_bool "gate is clean" true (Checker.is_clean c)

let test_poly_diff_abutment_flagged () =
  let c =
    cell "abut"
      [ Cell.box Layer.Diffusion (Rect.make 0 0 4 4)
      ; Cell.box Layer.Poly (Rect.make 4 0 8 4)
      ]
  in
  let vs = Checker.check c in
  check_bool "poly-diff abutment flagged" true
    (has_rule vs (function
      | Rules.Min_spacing (Layer.Poly, Layer.Diffusion, _) -> true
      | _ -> false))

let test_contact_enclosure () =
  let bad =
    cell "bad_contact"
      [ Cell.box Layer.Contact (Rect.make 0 0 2 2)
      ; Cell.box Layer.Metal (Rect.make 0 0 3 3)
      ]
  in
  let vs = Checker.check bad in
  check_bool "enclosure violated" true
    (has_rule vs (function
      | Rules.Min_enclosure (Layer.Contact, Layer.Metal, 1) -> true
      | _ -> false));
  let good =
    cell "good_contact"
      [ Cell.box Layer.Contact (Rect.make 1 1 3 3)
      ; Cell.box Layer.Metal (Rect.make 0 0 4 4)
      ]
  in
  check_bool "enclosed contact clean" true (Checker.is_clean good)

let test_enclosure_by_union () =
  (* The margin region is covered by two metal rects jointly. *)
  let c =
    cell "union_cover"
      [ Cell.box Layer.Contact (Rect.make 3 3 5 5)
      ; Cell.box Layer.Metal (Rect.make 2 2 5 6)
      ; Cell.box Layer.Metal (Rect.make 5 2 9 6)
      ]
  in
  check_bool "union cover accepted" true (Checker.is_clean c)

let test_violation_in_instances () =
  (* Violations across instance boundaries are caught after flattening. *)
  let half = cell "half" [ Cell.box Layer.Metal (Rect.make 0 0 4 4) ] in
  let c =
    Cell.make ~name:"pair"
      ~instances:
        [ Cell.instantiate ~name:"a" half
        ; Cell.instantiate ~name:"b" ~trans:(Transform.translation 6 0) half
        ]
      []
  in
  let vs = Checker.check c in
  check_bool "cross-instance spacing flagged" true (List.length vs > 0)

let test_wide_rect_not_missed_by_sweep () =
  (* Regression for the sorted cross-layer sweep: a rectangle whose xmin
     is far to the left can still reach a partner through its xmax.  A
     sweep keyed on xmin distances alone would skip this pair; the
     window must extend to xmax + spacing. *)
  let c =
    cell "wide"
      [ Cell.box Layer.Poly (Rect.make 0 0 40 2)
      ; Cell.box Layer.Diffusion (Rect.make 38 2 42 6)
      ]
  in
  let vs = Checker.check c in
  check_bool "wide-rect abutment flagged" true
    (has_rule vs (function
      | Rules.Min_spacing (Layer.Poly, Layer.Diffusion, _) -> true
      | _ -> false));
  (* same shape, pushed one lambda apart: clean *)
  let ok =
    cell "wide_ok"
      [ Cell.box Layer.Poly (Rect.make 0 0 40 2)
      ; Cell.box Layer.Diffusion (Rect.make 38 3 42 7)
      ]
  in
  check_bool "spaced version clean" true (Checker.is_clean ok)

let test_wide_outer_still_encloses () =
  (* Same concern on the enclosure pass: the covering metal starts far
     left of the contact but still encloses it. *)
  let c =
    cell "wide_cover"
      [ Cell.box Layer.Contact (Rect.make 30 1 32 3)
      ; Cell.box Layer.Metal (Rect.make 0 0 40 4)
      ]
  in
  check_bool "wide metal accepted as cover" true (Checker.is_clean c)

let test_pdp8_drc_time_budget () =
  (* The all-pairs deck took ~2.7 s of CPU on the pdp8 layout; the
     sorted sweep takes ~0.5 s.  Budget at 10x the observed sweep time
     so the test only trips if the quadratic behaviour comes back. *)
  let d = Sc_core.Designs.parse Sc_core.Designs.pdp8_src in
  let r = Sc_synth.Synth.gates d in
  let layout =
    Sc_core.Compiler.layout_of_circuit ~name:"pdp8" r.Sc_synth.Synth.circuit
  in
  let flat = Flatten.run layout in
  let t0 = Sys.time () in
  let vs = Checker.check_flat flat in
  let dt = Sys.time () -. t0 in
  check_int "pdp8 layout is DRC clean" 0 (List.length vs);
  check_bool (Printf.sprintf "DRC under budget (%.2fs cpu)" dt) true (dt < 5.0)

(* property: inflating every metal rect's position apart by >= spacing keeps
   layouts clean on the metal rules *)
let prop_spaced_metal_clean =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (pair (int_range 0 10) (int_range 0 10)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"well-spaced metal grid is clean" ~count:100
       (QCheck.make gen) (fun cells ->
         let boxes =
           List.map
             (fun (i, j) ->
               Cell.box Layer.Metal
                 (Rect.make (i * 10) (j * 10) ((i * 10) + 4) ((j * 10) + 4)))
             cells
         in
         (* duplicates coincide exactly: same region, still clean *)
         Checker.is_clean (cell "grid" boxes)))

let suite =
  [ Alcotest.test_case "clean layout" `Quick test_clean_layout
  ; Alcotest.test_case "narrow poly flagged" `Quick test_narrow_poly
  ; Alcotest.test_case "metal spacing flagged" `Quick test_metal_spacing
  ; Alcotest.test_case "touching metal merged" `Quick test_touching_metal_merged
  ; Alcotest.test_case "chained regions merged" `Quick test_chained_regions
  ; Alcotest.test_case "transistor not flagged" `Quick test_transistor_not_flagged
  ; Alcotest.test_case "poly-diff abutment flagged" `Quick test_poly_diff_abutment_flagged
  ; Alcotest.test_case "contact enclosure" `Quick test_contact_enclosure
  ; Alcotest.test_case "enclosure by union of rects" `Quick test_enclosure_by_union
  ; Alcotest.test_case "violations across instances" `Quick test_violation_in_instances
  ; Alcotest.test_case "wide rect not missed by sweep" `Quick
      test_wide_rect_not_missed_by_sweep
  ; Alcotest.test_case "wide outer still encloses" `Quick
      test_wide_outer_still_encloses
  ; Alcotest.test_case "pdp8 DRC time budget" `Slow test_pdp8_drc_time_budget
  ; prop_spaced_metal_clean
  ]
