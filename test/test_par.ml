(* The domain worker pool: ordered reduction, deterministic exception
   propagation, and — the contract every parallel pipeline stage leans
   on — byte-identical results at any pool width. *)

open Sc_par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool n f =
  let pool = Pool.create ~domains:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_ordered () =
  with_pool 4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun i -> i * i) xs)
    (Pool.map_list pool (fun i -> i * i) xs)

let test_sequential_pool () =
  with_pool 1 @@ fun pool ->
  check_int "one domain" 1 (Pool.size pool);
  Alcotest.(check (list int)) "runs in the caller" [ 0; 1; 4; 9 ]
    (Pool.map_list pool (fun i -> i * i) [ 0; 1; 2; 3 ])

let test_size_clamped () =
  with_pool 0 @@ fun pool -> check_int "clamped to 1" 1 (Pool.size pool)

let test_empty_batch () =
  with_pool 4 @@ fun pool ->
  check_int "empty run" 0 (List.length (Pool.run pool []))

exception Boom of int

let test_earliest_exception_wins () =
  with_pool 4 @@ fun pool ->
  let tasks =
    List.init 40 (fun i () -> if i = 7 || i = 31 then raise (Boom i) else i)
  in
  (match Pool.run pool tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "earliest failing task wins" 7 i);
  (* a failed batch must not wedge the pool *)
  Alcotest.(check (list int)) "pool survives the failure" [ 2; 4; 6 ]
    (Pool.map_list pool (fun i -> 2 * i) [ 1; 2; 3 ])

(* --- byte-identical pipeline stages at any width --- *)

let small_circuit () =
  let open Sc_netlist in
  let b = Builder.create "blk" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sums, cout = Builder.adder b xs ys in
  Builder.output b "sum" sums;
  Builder.output b "co" [| cout |];
  Builder.finish b

let dirty_cell () =
  let open Sc_geom in
  let open Sc_tech in
  let open Sc_layout in
  Cell.make ~name:"dirty"
    [ Cell.box Layer.Poly (Rect.make 0 0 1 10) (* narrow *)
    ; Cell.box Layer.Metal (Rect.make 0 20 10 23)
    ; Cell.box Layer.Metal (Rect.make 0 25 10 28) (* too close *)
    ; Cell.box Layer.Diffusion (Rect.make 20 0 24 4)
    ; Cell.box Layer.Poly (Rect.make 24 0 28 4) (* abutment *)
    ; Cell.box Layer.Contact (Rect.make 40 0 42 2)
    ; Cell.box Layer.Metal (Rect.make 40 0 43 3) (* bad enclosure *)
    ]

let test_drc_identical_across_widths () =
  let c = dirty_cell () in
  let seq = with_pool 1 (fun pool -> Sc_drc.Checker.check ~pool c) in
  check_bool "the cell is dirty" true (List.length seq > 0);
  List.iter
    (fun n ->
      let par = with_pool n (fun pool -> Sc_drc.Checker.check ~pool c) in
      check_bool (Printf.sprintf "same violation list at %d domains" n) true
        (par = seq))
    [ 2; 4; 8 ]

let test_placement_cif_identical_across_widths () =
  let p = Sc_place.Placer.problem_of_circuit (small_circuit ()) in
  let cif n =
    with_pool n @@ fun pool ->
    Sc_cif.Emit.to_string
      (Sc_place.Placer.to_layout ~name:"blk"
         (Sc_place.Placer.best_of ~pool ~seeds:5 p))
  in
  let seq = cif 1 in
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "same CIF at %d domains" n) true
        (String.equal seq (cif n)))
    [ 2; 4 ]

let test_equiv_cones_across_widths () =
  let c = small_circuit () in
  let o = Sc_netlist.Optimize.simplify c in
  List.iter
    (fun n ->
      with_pool n @@ fun pool ->
      match Sc_equiv.Checker.check_cones ~pool c o with
      | Sc_equiv.Checker.Equivalent -> ()
      | v ->
        Alcotest.failf "equivalent at %d domains expected, got %a" n
          Sc_equiv.Checker.pp_verdict v)
    [ 1; 4 ];
  (* a real difference reports the same first output port at any width *)
  let bad = Sc_equiv.Checker.mutate (Sc_netlist.Circuit.flatten c) 0 in
  let port n =
    with_pool n @@ fun pool ->
    match Sc_equiv.Checker.check_cones ~pool c bad with
    | Sc_equiv.Checker.Not_equivalent cex ->
      (cex.Sc_equiv.Checker.output, cex.Sc_equiv.Checker.bit)
    | Sc_equiv.Checker.Equivalent -> Alcotest.fail "mutation missed"
  in
  let o1, b1 = port 1 and o4, b4 = port 4 in
  Alcotest.(check string) "same differing port" o1 o4;
  check_int "same differing bit" b1 b4

let suite =
  [ Alcotest.test_case "map keeps submission order" `Quick test_map_ordered
  ; Alcotest.test_case "size-1 pool is sequential" `Quick test_sequential_pool
  ; Alcotest.test_case "size clamps to 1" `Quick test_size_clamped
  ; Alcotest.test_case "empty batch" `Quick test_empty_batch
  ; Alcotest.test_case "earliest exception wins" `Quick
      test_earliest_exception_wins
  ; Alcotest.test_case "DRC identical at any width" `Quick
      test_drc_identical_across_widths
  ; Alcotest.test_case "placement CIF identical at any width" `Quick
      test_placement_cif_identical_across_widths
  ; Alcotest.test_case "equiv cones identical at any width" `Quick
      test_equiv_cones_across_widths
  ]
