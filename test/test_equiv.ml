(* The formal equivalence checker: BDD engine laws, miter verdicts,
   counterexample replay, bounded sequential checks, and the
   compilation-stage certifications (optimizer, synthesis vs hand,
   minimizer, extracted artwork). *)

open Sc_netlist
open Sc_equiv

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let expect_equivalent msg v =
  match v with
  | Checker.Equivalent -> ()
  | Checker.Not_equivalent _ ->
    Alcotest.failf "%s: expected equivalence, got %a" msg Checker.pp_verdict v

let expect_cex msg v =
  match v with
  | Checker.Not_equivalent cex -> cex
  | Checker.Equivalent -> Alcotest.failf "%s: expected a counterexample" msg

(* --- the BDD engine itself --- *)

let test_bdd_laws () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* canonicity: equal functions are equal handles *)
  check_bool "commutative and" true
    (Bdd.equal (Bdd.and_ m a b) (Bdd.and_ m b a));
  check_bool "de morgan" true
    (Bdd.equal
       (Bdd.not_ m (Bdd.and_ m a b))
       (Bdd.or_ m (Bdd.not_ m a) (Bdd.not_ m b)));
  check_bool "xor as or-and" true
    (Bdd.equal (Bdd.xor m a b)
       (Bdd.and_ m (Bdd.or_ m a b) (Bdd.not_ m (Bdd.and_ m a b))));
  check_bool "ite(a,b,c) = ab + ~ac" true
    (Bdd.equal (Bdd.ite m a b c)
       (Bdd.or_ m (Bdd.and_ m a b) (Bdd.and_ m (Bdd.not_ m a) c)));
  check_bool "double negation" true (Bdd.equal a (Bdd.not_ m (Bdd.not_ m a)));
  check_bool "tautology" true (Bdd.is_true (Bdd.or_ m a (Bdd.not_ m a)));
  check_bool "contradiction" true (Bdd.is_false (Bdd.and_ m a (Bdd.not_ m a)))

let test_bdd_sat_eval () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.and_ m a (Bdd.not_ m b) in
  let assignment = Bdd.sat_one m f in
  let env v = List.assoc v assignment in
  check_bool "sat_one satisfies" true (Bdd.eval m f env);
  check_bool "a=1 in assignment" true (List.assoc 0 assignment);
  check_bool "b=0 in assignment" false (List.assoc 1 assignment);
  Alcotest.check_raises "sat_one on zero"
    (Invalid_argument "Bdd.sat_one: unsatisfiable") (fun () ->
      ignore (Bdd.sat_one m Bdd.zero));
  check_int "support" 2 (List.length (Bdd.support m f));
  check_bool "size positive" true (Bdd.size m f > 0)

(* --- combinational equivalence --- *)

(* xor built two ways: one Xor2 gate vs the four-NAND network *)
let xor_direct () =
  let b = Builder.create "xa" in
  let x = (Builder.input b "x" 1).(0) in
  let y = (Builder.input b "y" 1).(0) in
  Builder.output b "z" [| Builder.xor2 b x y |];
  Builder.finish b

let xor_nands () =
  let b = Builder.create "xb" in
  let x = (Builder.input b "x" 1).(0) in
  let y = (Builder.input b "y" 1).(0) in
  let n1 = Builder.nand2 b x y in
  let n2 = Builder.nand2 b x n1 in
  let n3 = Builder.nand2 b y n1 in
  Builder.output b "z" [| Builder.nand2 b n2 n3 |];
  Builder.finish b

let test_comb_equivalent () =
  expect_equivalent "xor nets" (Checker.check (xor_direct ()) (xor_nands ()))

let test_comb_counterexample_replays () =
  let direct = xor_direct () in
  let broken =
    (* or instead of xor: differs exactly on x=y=1 *)
    let b = Builder.create "xc" in
    let x = (Builder.input b "x" 1).(0) in
    let y = (Builder.input b "y" 1).(0) in
    Builder.output b "z" [| Builder.or2 b x y |];
    Builder.finish b
  in
  let cex = expect_cex "xor vs or" (Checker.check direct broken) in
  check_int "one frame" 1 (List.length cex.Checker.frames);
  Alcotest.(check string) "output" "z" cex.Checker.output;
  let frame = List.hd cex.Checker.frames in
  check_int "x=1" 1 (List.assoc "x" frame);
  check_int "y=1" 1 (List.assoc "y" frame);
  check_bool "replay confirms" true
    (Checker.replay direct broken cex = Checker.Reproduced)

(* replay is three-valued: a witness can be confirmed, definitely not
   reproduced, or indeterminate when the simulator sees X where the BDD
   model (which has no X) saw a definite bit *)
let test_replay_verdicts () =
  let fabricate frames = { Checker.frames; output = "z"; bit = 0; cycle = 0 } in
  check_bool "identical circuits never reproduce a witness" true
    (Checker.replay (xor_direct ()) (xor_direct ())
       (fabricate [ [ ("x", 1); ("y", 1) ] ])
    = Checker.Not_reproduced);
  (* an undriven input leaves the output X on both sides: the witness is
     neither confirmed nor refuted *)
  check_bool "undriven input is indeterminate" true
    (Checker.replay (xor_direct ()) (xor_nands ())
       (fabricate [ [ ("x", 1) ] ])
    = Checker.Indeterminate);
  (* a frame list shorter than the failing cycle cannot reach it *)
  check_bool "witness past the last frame is not reproduced" true
    (Checker.replay (xor_direct ()) (xor_nands ())
       { Checker.frames = [ [ ("x", 1); ("y", 1) ] ]; output = "z"; bit = 0
       ; cycle = 3
       }
    = Checker.Not_reproduced);
  Alcotest.(check string) "indeterminate renders its cause"
    "indeterminate (X state)"
    (Checker.replay_verdict_to_string Checker.Indeterminate)

let test_port_mismatch_raises () =
  let b = Builder.create "w" in
  let x = Builder.input b "x" 2 in
  Builder.output b "z" [| x.(0) |];
  let wide = Builder.finish b in
  check_bool "mismatch raised" true
    (try
       ignore (Checker.check (xor_direct ()) wide);
       false
     with Miter.Mismatch _ -> true)

(* hierarchy: the ripple adder built from full-adder instances vs the
   Builder's flat adder *)
let full_adder () =
  let b = Builder.create "fa" in
  let a = (Builder.input b "a" 1).(0) in
  let x = (Builder.input b "b" 1).(0) in
  let cin = (Builder.input b "cin" 1).(0) in
  let p = Builder.xor2 b a x in
  let s = Builder.xor2 b p cin in
  let g = Builder.and2 b a x in
  let pc = Builder.and2 b p cin in
  Builder.output b "s" [| s |];
  Builder.output b "cout" [| Builder.or2 b g pc |];
  Builder.finish b

let ripple_insts () =
  let fa = full_adder () in
  let b = Builder.create "ripple4" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sums = Builder.fresh_vec b 4 in
  let carries = Builder.fresh_vec b 4 in
  for i = 0 to 3 do
    let cin = if i = 0 then Builder.const0 else carries.(i - 1) in
    Builder.inst b
      ~name:(Printf.sprintf "fa%d" i)
      fa
      [ ("a", [| xs.(i) |])
      ; ("b", [| ys.(i) |])
      ; ("cin", [| cin |])
      ; ("s", [| sums.(i) |])
      ; ("cout", [| carries.(i) |])
      ]
  done;
  Builder.output b "sum" sums;
  Builder.output b "cout" [| carries.(3) |];
  Builder.finish b

let ripple_flat () =
  let b = Builder.create "flat4" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sum, cout = Builder.adder b xs ys in
  Builder.output b "sum" sum;
  Builder.output b "cout" [| cout |];
  Builder.finish b

let test_hierarchy_equivalent () =
  expect_equivalent "ripple4 vs flat adder"
    (Checker.check (ripple_insts ()) (ripple_flat ()))

let test_ordering_heuristics_agree () =
  List.iter
    (fun order ->
      expect_equivalent "adder under both orders"
        (Checker.check ~order (ripple_insts ()) (ripple_flat ())))
    [ Miter.Declaration; Miter.Fanin_dfs ]

(* --- the synthesized PDP-8 datapath vs the hand shared sub-blocks --- *)

let synth_pdp8_dp () =
  (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.pdp8_dp_src))
    .Sc_synth.Synth.circuit

let test_pdp8_datapath_equivalent () =
  let man = Bdd.create () in
  expect_equivalent "pdp8 datapath"
    (Checker.check ~man (synth_pdp8_dp ()) (Sc_core.Designs.hand_pdp8_dp ()));
  check_bool "bdd stayed small" true (Bdd.node_count man < 2_000_000)

let test_pdp8_datapath_mutation_caught () =
  let synth = synth_pdp8_dp () in
  let hand = Sc_core.Designs.hand_pdp8_dp () in
  (* flip one gate somewhere in the middle of the hand datapath *)
  let nmut = List.length (Circuit.flatten hand).Circuit.gates in
  let mutated = Checker.mutate hand (nmut / 2) in
  let cex = expect_cex "mutated datapath" (Checker.check synth mutated) in
  check_bool "replay confirms mutation" true
    (Checker.replay synth mutated cex = Checker.Reproduced)

(* --- bounded sequential equivalence --- *)

let test_seq_counter_equivalent () =
  let d = Sc_core.Designs.parse Sc_core.Designs.counter_src in
  let synth = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
  expect_equivalent "counter synth vs hand"
    (Checker.check ~k:8 synth (Sc_core.Designs.hand_counter ()))

let test_seq_traffic_equivalent () =
  let d = Sc_core.Designs.parse Sc_core.Designs.traffic_src in
  let synth = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
  expect_equivalent "traffic synth vs hand"
    (Checker.check ~k:8 synth (Sc_core.Designs.hand_traffic ()))

let test_seq_alu_equivalent () =
  let d = Sc_core.Designs.parse Sc_core.Designs.alu_src in
  let synth = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
  expect_equivalent "alu synth vs hand"
    (Checker.check ~k:6 synth (Sc_core.Designs.hand_alu ()))

let test_seq_mutation_caught_and_replays () =
  let hand = Sc_core.Designs.hand_counter () in
  let d = Sc_core.Designs.parse Sc_core.Designs.counter_src in
  let synth = (Sc_synth.Synth.gates d).Sc_synth.Synth.circuit in
  let nmut = List.length (Circuit.flatten hand).Circuit.gates in
  let rec try_mutation i =
    if i >= nmut then Alcotest.fail "no combinational gate to mutate"
    else
      match Checker.mutate hand i with
      | mutated -> (
        match Checker.check ~k:6 synth mutated with
        | Checker.Equivalent ->
          (* a mutation can be masked (e.g. in a dead cone); try the next *)
          try_mutation (i + 1)
        | Checker.Not_equivalent cex ->
          check_int "frames stop at the failing cycle"
            (cex.Checker.cycle + 1)
            (List.length cex.Checker.frames);
          check_bool "sequential replay confirms" true
            (Checker.replay synth mutated cex = Checker.Reproduced))
      | exception Invalid_argument _ -> try_mutation (i + 1)
  in
  try_mutation 0

(* --- the optimizer preserves function (certified, not just simulated) --- *)

let test_optimize_roundtrips () =
  List.iter
    (fun (name, src, _, _, _) ->
      if name <> "pdp8" then begin
        let d = Sc_core.Designs.parse src in
        let raw =
          (Sc_synth.Synth.gates ~optimize:false d).Sc_synth.Synth.circuit
        in
        expect_equivalent
          (name ^ " raw vs optimized")
          (Checker.check ~k:6 raw (Optimize.simplify raw))
      end)
    (Sc_core.Designs.all ())

let test_optimize_roundtrip_pdp8_datapath () =
  let raw =
    (Sc_synth.Synth.gates ~optimize:false
       (Sc_core.Designs.parse Sc_core.Designs.pdp8_dp_src))
      .Sc_synth.Synth.circuit
  in
  expect_equivalent "pdp8_dp raw vs optimized"
    (Checker.check raw (Optimize.simplify raw))

(* --- synthesis self-check mode --- *)

let test_synth_selfcheck_passes () =
  List.iter
    (fun src ->
      ignore
        (Sc_synth.Synth.gates ~selfcheck:true (Sc_core.Designs.parse src)))
    [ Sc_core.Designs.counter_src; Sc_core.Designs.gray_src
    ; Sc_core.Designs.pdp8_dp_src
    ]

(* --- unrolling semantics --- *)

let test_unroll_matches_simulation () =
  let c = Sc_core.Designs.hand_counter () in
  let k = 5 in
  let unrolled = Unroll.frames ~k c in
  check_int "no flip-flops left" 0 (Circuit.stats unrolled).Circuit.flipflops;
  (* drive the sequential engine from the all-zero state and the
     unrolled circuit with the same per-frame stimulus *)
  let eng = Sc_sim.Engine.create c in
  Sc_sim.Engine.force_registers eng Sc_sim.Value.V0;
  let ueng = Sc_sim.Engine.create unrolled in
  let stim cyc =
    [ ("reset", if cyc = 3 then 1 else 0)
    ; ("load", if cyc = 1 then 1 else 0)
    ; ("data", 9)
    ]
  in
  for cyc = 0 to k - 1 do
    List.iter
      (fun (p, v) ->
        Sc_sim.Engine.set_input_int ueng (Unroll.frame_port p cyc) v)
      (stim cyc)
  done;
  for cyc = 0 to k - 1 do
    List.iter (fun (p, v) -> Sc_sim.Engine.set_input_int eng p v) (stim cyc);
    check_int
      (Printf.sprintf "q at cycle %d" cyc)
      (Option.get (Sc_sim.Engine.get_output_int eng "q"))
      (Option.get
         (Sc_sim.Engine.get_output_int ueng (Unroll.frame_port "q" cyc)));
    Sc_sim.Engine.step eng
  done

(* --- two-level minimization certified by BDDs --- *)

let test_check_covers_negative () =
  let a = Sc_logic.Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("1-", "1") ] in
  let b = Sc_logic.Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("11", "1") ] in
  match Checker.check_covers a b with
  | None -> Alcotest.fail "expected a distinguishing minterm"
  | Some (input, o) ->
    check_int "output 0" 0 o;
    (* the minterm must really distinguish the covers *)
    check_bool "distinguishes" true
      ((Sc_logic.Cover.eval a input).(0) <> (Sc_logic.Cover.eval b input).(0))

let random_cover rng ~ninputs ~noutputs ~terms =
  let cubes =
    List.init terms (fun _ ->
        let lits =
          Array.init ninputs (fun _ ->
              match Random.State.int rng 3 with
              | 0 -> Sc_logic.Cube.Zero
              | 1 -> Sc_logic.Cube.One
              | _ -> Sc_logic.Cube.Dash)
        in
        Sc_logic.Cube.make lits (1 + Random.State.int rng ((1 lsl noutputs) - 1)))
  in
  Sc_logic.Cover.make ~ninputs ~noutputs cubes

let prop_minimize_equivalent_by_bdd =
  let gen =
    QCheck.Gen.(
      triple (int_range 2 6) (int_range 1 4) (int_range 1 12))
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5EED; 9 |])
    (QCheck.Test.make ~count:60
       ~name:"Minimize output certified equivalent by the BDD engine"
       (QCheck.make gen) (fun (ninputs, noutputs, terms) ->
         let rng = Random.State.make [| ninputs; noutputs; terms; 77 |] in
         let cover = random_cover rng ~ninputs ~noutputs ~terms in
         let exact = Sc_logic.Minimize.minimize ~exact:true cover in
         let heur = Sc_logic.Minimize.heuristic cover in
         Checker.check_covers cover exact = None
         && Checker.check_covers cover heur = None))

(* --- extracted artwork vs source netlist --- *)

let gate_reference name kind input_names =
  let b = Builder.create name in
  let ins =
    List.map (fun n -> (Builder.input b n 1).(0)) input_names
  in
  Builder.output b "y" [| Builder.gate b kind (Array.of_list ins) |];
  Builder.finish b

let test_artwork_primitives_equivalent () =
  let cases =
    [ ("inv", Sc_stdcell.Nmos.inv (), Gate.Inv, [ "a" ])
    ; ("nand2", Sc_stdcell.Nmos.nand 2, Gate.Nand2, [ "a"; "b" ])
    ; ("nand3", Sc_stdcell.Nmos.nand 3, Gate.Nand3, [ "a"; "b"; "c" ])
    ; ("nor2", Sc_stdcell.Nmos.nor2 (), Gate.Nor2, [ "a"; "b" ])
    ]
  in
  List.iter
    (fun (name, cell, kind, ins) ->
      expect_equivalent
        ("artwork " ^ name)
        (Checker.check_artwork cell ~inputs:ins ~outputs:[ "y" ]
           (gate_reference name kind ins)))
    cases

let test_artwork_wrong_spec_caught () =
  let cex =
    expect_cex "inv artwork vs buf netlist"
      (Checker.check_artwork (Sc_stdcell.Nmos.inv ()) ~inputs:[ "a" ]
         ~outputs:[ "y" ]
         (gate_reference "buf" Gate.Buf [ "a" ]))
  in
  Alcotest.(check string) "output named" "y" cex.Checker.output

let suite =
  [ Alcotest.test_case "bdd laws" `Quick test_bdd_laws
  ; Alcotest.test_case "bdd sat/eval" `Quick test_bdd_sat_eval
  ; Alcotest.test_case "comb equivalent" `Quick test_comb_equivalent
  ; Alcotest.test_case "comb counterexample replays" `Quick
      test_comb_counterexample_replays
  ; Alcotest.test_case "replay verdicts" `Quick test_replay_verdicts
  ; Alcotest.test_case "port mismatch raises" `Quick test_port_mismatch_raises
  ; Alcotest.test_case "hierarchy equivalent" `Quick test_hierarchy_equivalent
  ; Alcotest.test_case "ordering heuristics agree" `Quick
      test_ordering_heuristics_agree
  ; Alcotest.test_case "pdp8 datapath equivalent" `Quick
      test_pdp8_datapath_equivalent
  ; Alcotest.test_case "pdp8 datapath mutation caught" `Quick
      test_pdp8_datapath_mutation_caught
  ; Alcotest.test_case "seq counter equivalent" `Quick
      test_seq_counter_equivalent
  ; Alcotest.test_case "seq traffic equivalent" `Quick
      test_seq_traffic_equivalent
  ; Alcotest.test_case "seq alu equivalent" `Quick test_seq_alu_equivalent
  ; Alcotest.test_case "seq mutation caught and replays" `Quick
      test_seq_mutation_caught_and_replays
  ; Alcotest.test_case "optimize round-trips certified" `Quick
      test_optimize_roundtrips
  ; Alcotest.test_case "optimize round-trip pdp8 datapath" `Quick
      test_optimize_roundtrip_pdp8_datapath
  ; Alcotest.test_case "synth selfcheck passes" `Quick
      test_synth_selfcheck_passes
  ; Alcotest.test_case "unroll matches simulation" `Quick
      test_unroll_matches_simulation
  ; Alcotest.test_case "check_covers negative" `Quick test_check_covers_negative
  ; prop_minimize_equivalent_by_bdd
  ; Alcotest.test_case "artwork primitives equivalent" `Quick
      test_artwork_primitives_equivalent
  ; Alcotest.test_case "artwork wrong spec caught" `Quick
      test_artwork_wrong_spec_caught
  ]
