(* lib/pipeline: staged keys, the pass manager's cache/error/log
   contracts, and the incremental-invalidation matrix over the real
   compiler.  The pipeline's stores, run log and the Obs recorder are
   all process-global, so every test resets what it touches on the way
   out. *)

module P = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag
module Obs = Sc_obs.Obs
module M = Sc_metrics.Metrics
module C = Sc_core.Compiler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_clean_pipeline f =
  P.disable_cache ();
  P.clear_caches ();
  P.reset_log ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_cache ();
      P.clear_caches ();
      P.reset_log ())
    f

let with_recorder f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* --- staged values --- *)

let test_staged_keys () =
  let a = P.source "module x;" in
  let a' = P.source "module x;" in
  let b = P.source "module y;" in
  Alcotest.(check string) "same source, same key" (P.key a) (P.key a');
  check_bool "different source, different key" true (P.key a <> P.key b);
  let r3 = P.inject ~tag:"restarts" ~repr:"3" 3 in
  let r5 = P.inject ~tag:"restarts" ~repr:"5" 5 in
  check_bool "inject repr reaches the key" true (P.key r3 <> P.key r5);
  check_int "inject carries the value" 3 (P.value r3);
  let p = P.pair a r3 in
  let p' = P.pair a' (P.inject ~tag:"restarts" ~repr:"3" 3) in
  Alcotest.(check string) "pair key is deterministic" (P.key p) (P.key p');
  check_bool "pair key differs from both parts" true
    (P.key p <> P.key a && P.key p <> P.key r3);
  let m = P.map String.length a in
  Alcotest.(check string) "map keeps the key" (P.key a) (P.key m);
  check_int "map applies" 9 (P.value m)

(* --- pass execution, caching, errors --- *)

let test_pass_cache_and_log () =
  with_clean_pipeline @@ fun () ->
  let runs = ref 0 in
  let double =
    P.register ~name:"unit_double" (fun n ->
        incr runs;
        Ok (n * 2))
  in
  let input = P.inject ~tag:"n" ~repr:"21" 21 in
  (* disabled: every run executes *)
  (match P.run double input with
  | Ok out -> check_int "computes" 42 (P.value out)
  | Error d -> Alcotest.fail (Diag.to_string d));
  ignore (P.run double input);
  check_int "no caching while disabled" 2 !runs;
  Alcotest.(check (list (pair string string)))
    "log records both executions"
    [ ("unit_double", "ran"); ("unit_double", "ran") ]
    (List.map (fun (n, s) -> (n, P.status_to_string s)) (P.log ()));
  (* enabled: miss then hit, and the hit returns the same key *)
  P.enable_cache ();
  P.reset_log ();
  let k1 =
    match P.run double input with
    | Ok out -> P.key out
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  let k2 =
    match P.run double input with
    | Ok out -> P.key out
    | Error d -> Alcotest.fail (Diag.to_string d)
  in
  check_int "second run is a hit" 3 !runs;
  Alcotest.(check string) "hit reproduces the key" k1 k2;
  Alcotest.(check (list (pair string string)))
    "log shows miss then hit"
    [ ("unit_double", "ran"); ("unit_double", "hit (memory)") ]
    (List.map (fun (n, s) -> (n, P.status_to_string s)) (P.log ()));
  (* params split the key space *)
  (match P.run ~param:"mode=a" double input with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  check_int "a new param is a miss" 4 !runs;
  (* version bumps invalidate *)
  let double_v2 =
    P.register ~version:2 ~name:"unit_double" (fun n ->
        incr runs;
        Ok (n * 2))
  in
  (match P.run double_v2 input with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Diag.to_string d));
  check_int "a version bump is a miss" 5 !runs

let test_errors_are_values_and_uncached () =
  with_clean_pipeline @@ fun () ->
  P.enable_cache ();
  let attempts = ref 0 in
  let boom =
    P.register ~name:"unit_boom" (fun () ->
        incr attempts;
        if !attempts = 1 then Diag.fail ~stage:"unit_boom" "raised"
        else if !attempts = 2 then failwith "stray"
        else Ok "recovered")
  in
  let input = P.inject ~tag:"u" ~repr:"()" () in
  (match P.run boom input with
  | Error d ->
    Alcotest.(check string) "Diag.fail caught at the boundary"
      "unit_boom: raised" (Diag.to_string d)
  | Ok _ -> Alcotest.fail "expected a diag");
  (match P.run boom input with
  | Error d ->
    Alcotest.(check string) "stray exception mapped to the stage"
      "unit_boom" d.Diag.stage
  | Ok _ -> Alcotest.fail "expected a diag");
  (* the two failures stored nothing: the third attempt actually runs *)
  (match P.run boom input with
  | Ok out -> Alcotest.(check string) "third attempt runs" "recovered" (P.value out)
  | Error d -> Alcotest.fail (Diag.to_string d));
  check_int "every attempt executed" 3 !attempts;
  (match List.assoc_opt "unit_boom" (P.cache_stats ()) with
  | None -> Alcotest.fail "store expected"
  | Some s ->
    check_int "only the success is stored" 1 s.Sc_cache.Cache.entries);
  Alcotest.(check (list (pair string string)))
    "failures logged as failed"
    [ ("unit_boom", "failed"); ("unit_boom", "failed"); ("unit_boom", "ran") ]
    (List.map (fun (n, s) -> (n, P.status_to_string s)) (P.log ()))

(* --- the incremental matrix over the real compiler --- *)

let behavior_stages =
  [ "parse"; "compile"; "optimize"; "place"; "route"; "drc"; "emit"; "measure" ]

let statuses () =
  List.map (fun (n, s) -> (n, P.status_to_string s)) (P.log ())

let compile ?restarts src =
  P.reset_log ();
  (match C.compile_behavior ?restarts src with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "compile failed: %s" (Diag.to_string d));
  statuses ()

let all st = List.map (fun n -> (n, st)) behavior_stages

let test_incremental_invalidation () =
  with_clean_pipeline @@ fun () ->
  P.enable_cache ();
  let src = Sc_core.Designs.counter_src in
  Alcotest.(check (list (pair string string)))
    "cold compile runs every stage" (all "ran")
    (compile ~restarts:2 src);
  Alcotest.(check (list (pair string string)))
    "identical input hits every stage"
    (all "hit (memory)")
    (compile ~restarts:2 src);
  Alcotest.(check (list (pair string string)))
    "a restarts change reruns only place onward"
    [ ("parse", "hit (memory)")
    ; ("compile", "hit (memory)")
    ; ("optimize", "hit (memory)")
    ; ("place", "ran")
    ; ("route", "ran")
    ; ("drc", "ran")
    ; ("emit", "ran")
    ; ("measure", "ran")
    ]
    (compile ~restarts:5 src);
  Alcotest.(check (list (pair string string)))
    "a source edit reruns every stage" (all "ran")
    (compile ~restarts:2 (src ^ "\n"));
  (* a failing source fails at parse both times: errors are not cached *)
  let fail_log () =
    P.reset_log ();
    (match C.compile_behavior "definitely not ISP" with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error d ->
      Alcotest.(check string) "fails in parse" "parse" d.Diag.stage);
    statuses ()
  in
  Alcotest.(check (list (pair string string)))
    "first failure executes parse"
    [ ("parse", "failed") ]
    (fail_log ());
  Alcotest.(check (list (pair string string)))
    "second failure executes parse again (uncached)"
    [ ("parse", "failed") ]
    (fail_log ())

(* --- route is unconditional and its QoR reaches the snapshot --- *)

let capture_counter ?restarts () =
  with_recorder @@ fun () ->
  (match C.compile_behavior ?restarts Sc_core.Designs.counter_src with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "compile failed: %s" (Diag.to_string d));
  M.capture ~design:"counter" ()

let test_route_in_snapshot () =
  with_clean_pipeline @@ fun () ->
  let s = capture_counter () in
  List.iter
    (fun key ->
      check_bool (key ^ " present in QoR") true
        (List.assoc_opt key s.M.qor <> None))
    [ "route.tracks"; "route.height"; "route.channels"; "drc.violations" ];
  check_bool "channels routed" true
    (match List.assoc_opt "route.channels" s.M.qor with
    | Some n -> n > 0.
    | None -> false)

(* --- warm-run QoR byte identity, and the hit counters --- *)

let test_warm_qor_identity () =
  with_clean_pipeline @@ fun () ->
  P.enable_cache ();
  let saved = Sc_par.Pool.default_size () in
  Fun.protect ~finally:(fun () -> Sc_par.Pool.set_default_size saved)
  @@ fun () ->
  Sc_par.Pool.set_default_size 1;
  let cold = capture_counter ~restarts:3 () in
  Sc_par.Pool.set_default_size 4;
  let warm = capture_counter ~restarts:3 () in
  Alcotest.(check string) "warm -j4 QoR bytes = cold -j1 QoR bytes"
    (M.qor_string cold) (M.qor_string warm);
  check_bool "snapshot is non-trivial" true (List.length cold.M.qor > 5);
  (* the warm run was all hits, visible in the runtime section *)
  let rt key =
    match List.assoc_opt key warm.M.runtime with Some v -> v | None -> 0.
  in
  check_bool "pipeline hit counter recorded" true (rt "pipeline.parse.hit" >= 1.);
  check_bool "store hit counter recorded" true (rt "cache.parse.hit" >= 1.);
  check_bool "no warm misses" true (rt "cache.parse.miss" = 0.);
  check_bool "runtime keys stay out of QoR" true
    (List.for_all (fun (k, _) -> not (M.is_runtime_key k)) warm.M.qor)

(* --- concurrency: the store is created once, the journal is per-thread --- *)

(* a reusable two-phase barrier so every thread hits the racy region
   together *)
let barrier n =
  let m = Mutex.create () and cv = Condition.create () in
  let arrived = ref 0 and generation = ref 0 in
  fun () ->
    Mutex.protect m (fun () ->
        let gen = !generation in
        incr arrived;
        if !arrived = n then begin
          arrived := 0;
          incr generation;
          Condition.broadcast cv
        end
        else
          while !generation = gen do
            Condition.wait cv m
          done)

(* 8 threads race one freshly-registered pass, repeatedly.  Before the
   store creation was locked, two threads could each install their own
   store and the loser's counters vanished; with one store, every run is
   accounted for: hits + disk hits + misses = runs *)
let test_store_creation_race () =
  with_clean_pipeline @@ fun () ->
  P.enable_cache ();
  let nthreads = 8 and rounds = 20 in
  for round = 0 to rounds - 1 do
    let execs = Atomic.make 0 in
    let name = Printf.sprintf "unit_hammer_%d" round in
    let pass =
      P.register ~name (fun n ->
          Atomic.incr execs;
          Ok (n + 1))
    in
    let input = P.inject ~tag:"n" ~repr:"7" 7 in
    let sync = barrier nthreads in
    let failures = Atomic.make 0 in
    let worker () =
      sync ();
      (match P.run pass input with
      | Ok out -> if P.value out <> 8 then Atomic.incr failures
      | Error _ -> Atomic.incr failures);
      P.drop_log ()
    in
    let ts = List.init nthreads (fun _ -> Thread.create worker ()) in
    List.iter Thread.join ts;
    check_int "every thread got the result" 0 (Atomic.get failures);
    match List.assoc_opt name (P.cache_stats ()) with
    | None -> Alcotest.fail "store expected"
    | Some s ->
      check_int
        (Printf.sprintf "round %d: one store accounts for every run" round)
        nthreads
        (s.Sc_cache.Cache.hits + s.Sc_cache.Cache.disk_hits
       + s.Sc_cache.Cache.misses);
      check_int
        (Printf.sprintf "round %d: misses are the real executions" round)
        (Atomic.get execs) s.Sc_cache.Cache.misses
  done

(* two threads interleave compilations; each journal sees only its own
   passes *)
let test_journal_isolation () =
  with_clean_pipeline @@ fun () ->
  let mk_pass name =
    P.register ~name (fun n -> Ok (n + 1))
  in
  let a = mk_pass "unit_journal_a" and b = mk_pass "unit_journal_b" in
  let sync = barrier 2 in
  let observed = Array.make 2 [] in
  let worker idx pass n () =
    P.reset_log ();
    sync ();
    for _ = 1 to n do
      ignore (P.run pass (P.inject ~tag:"n" ~repr:"1" 1))
    done;
    sync ();
    observed.(idx) <- List.map (fun (name, _) -> name) (P.log ());
    P.drop_log ()
  in
  let t1 = Thread.create (worker 0 a 3) () in
  let t2 = Thread.create (worker 1 b 5) () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check (list string))
    "thread 1 sees only its own passes"
    [ "unit_journal_a"; "unit_journal_a"; "unit_journal_a" ]
    observed.(0);
  Alcotest.(check (list string))
    "thread 2 sees only its own passes"
    [ "unit_journal_b"; "unit_journal_b"; "unit_journal_b"; "unit_journal_b"
    ; "unit_journal_b"
    ]
    observed.(1)

(* append_log splices foreign journal entries (a module sub-pipeline's
   run log, prefixed by its driver) onto the calling thread's journal,
   preserving order relative to locally run passes *)
let test_append_log () =
  with_clean_pipeline @@ fun () ->
  let p = P.register ~name:"unit_append" (fun n -> Ok (n + 1)) in
  P.append_log [ ("m1:parse", P.Ran); ("m1:place", P.Hit) ];
  ignore (P.run p (P.inject ~tag:"n" ~repr:"7" 7));
  P.append_log [ ("m2:parse", P.Ran) ];
  Alcotest.(check (list string))
    "spliced in order"
    [ "m1:parse"; "m1:place"; "unit_append"; "m2:parse" ]
    (List.map fst (P.log ()));
  (match P.log () with
  | (_, P.Ran) :: (_, P.Hit) :: _ -> ()
  | _ -> Alcotest.fail "statuses preserved");
  (* appending works on a thread with no journal yet: it creates one *)
  let seen = ref [] in
  let t =
    Thread.create
      (fun () ->
        P.append_log [ ("fresh:emit", P.Ran) ];
        seen := List.map fst (P.log ());
        P.drop_log ())
      ()
  in
  Thread.join t;
  Alcotest.(check (list string)) "fresh journal" [ "fresh:emit" ] !seen

let suite =
  [ Alcotest.test_case "staged keys" `Quick test_staged_keys
  ; Alcotest.test_case "pass cache and log" `Quick test_pass_cache_and_log
  ; Alcotest.test_case "errors are values, never cached" `Quick
      test_errors_are_values_and_uncached
  ; Alcotest.test_case "incremental invalidation matrix" `Quick
      test_incremental_invalidation
  ; Alcotest.test_case "route QoR in snapshot" `Quick test_route_in_snapshot
  ; Alcotest.test_case "warm QoR byte identity" `Quick test_warm_qor_identity
  ; Alcotest.test_case "store creation race" `Quick test_store_creation_race
  ; Alcotest.test_case "journal isolation" `Quick test_journal_isolation
  ; Alcotest.test_case "append_log splices journals" `Quick test_append_log
  ]
