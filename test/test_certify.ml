(* the certified pipeline: with certification on, every
   netlist-to-netlist pass proves its output equivalent to its own input
   before the pipeline continues; a miscompile is refused as a Diag
   naming the pass; certificates are cached like stage artifacts, so a
   certified warm rebuild is all hits with byte-identical QoR. *)

module P = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag
module Obs = Sc_obs.Obs
module M = Sc_metrics.Metrics
module C = Sc_core.Compiler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_certified_pipeline f =
  P.disable_cache ();
  P.clear_caches ();
  P.reset_log ();
  P.enable_certify ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_certify ();
      P.disable_cache ();
      P.clear_caches ();
      P.reset_log ())
    f

(* compile under the Obs recorder and return both the result and the
   captured snapshot *)
let capture ?style ?inject_fault src =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let r = C.compile_behavior ?style ?inject_fault src in
  (r, M.capture ~design:"certify" ())

let qor key s = List.assoc_opt key s.M.qor

let test_clean_compile_certifies () =
  with_certified_pipeline @@ fun () ->
  let r, s = capture Sc_core.Designs.counter_src in
  (match r with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "certified compile failed: %s" (Diag.to_string d));
  check_bool "a pass was certified" true
    (match qor "equiv.certified_passes" s with Some n -> n >= 1. | None -> false);
  check_bool "the certificate covered output cones" true
    (match qor "equiv.certificate.cones" s with Some n -> n >= 1. | None -> false);
  check_bool "certificate wall-clock is runtime, not QoR" true
    (M.is_runtime_key "equiv.certificate_us"
    && List.assoc_opt "equiv.certificate_us" s.M.runtime <> None)

let test_pla_minimizer_certifies () =
  with_certified_pipeline @@ fun () ->
  let r, s = capture ~style:C.Pla_control Sc_core.Designs.traffic_src in
  (match r with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "certified pla compile failed: %s" (Diag.to_string d));
  check_bool "the minimized cover was certified" true
    (match qor "equiv.certified_passes" s with Some n -> n >= 1. | None -> false)

(* fault injection: some mutations are invisible (dead or masked cones),
   so scan for an index the certifier refuses, then show the same
   miscompile sails through when certification is off *)
let test_injected_miscompile_refused () =
  with_certified_pipeline @@ fun () ->
  let src = Sc_core.Designs.counter_src in
  let rec hunt i =
    if i > 20 then Alcotest.fail "no inject index was refused in 0..20"
    else
      match C.compile_behavior ~inject_fault:i src with
      | Error d ->
        Alcotest.(check string) "the refusing pass is named" "optimize"
          d.Diag.stage;
        check_bool "the diag says the certificate was refused" true
          (let msg = Diag.to_string d in
           let sub = "translation certificate refused" in
           let n = String.length sub and m = String.length msg in
           let rec scan j =
             j + n <= m && (String.sub msg j n = sub || scan (j + 1))
           in
           scan 0);
        i
      | Ok _ -> hunt (i + 1)
  in
  let refused = hunt 0 in
  (* the run log shows the pass failing, not running *)
  check_bool "cert failure journaled as failed" true
    (List.exists
       (fun (n, st) -> n = "optimize" && P.status_to_string st = "failed")
       (P.log ()));
  (* certification off: the same miscompile passes silently — that gap
     is exactly what --certify closes *)
  P.disable_certify ();
  (match C.compile_behavior ~inject_fault:refused src with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "uncertified miscompile should compile: %s"
      (Diag.to_string d));
  P.enable_certify ()

let test_certified_warm_rebuild () =
  with_certified_pipeline @@ fun () ->
  P.enable_cache ();
  let src = Sc_core.Designs.counter_src in
  let _, cold = capture src in
  P.reset_log ();
  let r, warm = capture src in
  (match r with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "warm certified compile failed: %s" (Diag.to_string d));
  check_bool "warm run is all hits" true
    (P.log () <> []
    && List.for_all
         (fun (_, st) -> P.status_to_string st = "hit (memory)")
         (P.log ()));
  Alcotest.(check string) "warm QoR bytes = cold QoR bytes (certificates included)"
    (M.qor_string cold) (M.qor_string warm);
  check_bool "warm run still reports the certificate" true
    (match qor "equiv.certified_passes" warm with
    | Some n -> n >= 1.
    | None -> false);
  (* the certificate store shows up next to its pass and took the hit *)
  match List.assoc_opt "optimize.cert" (P.cache_stats ()) with
  | None -> Alcotest.fail "optimize.cert store expected"
  | Some s ->
    check_int "one certificate stored" 1 s.Sc_cache.Cache.entries;
    check_bool "warm certificate was a hit" true (s.Sc_cache.Cache.hits >= 1)

(* a refused artifact must never be cached: after a refusal, the same
   injected compile fails again (executes again), and nothing was stored
   for it *)
let test_refused_artifact_uncached () =
  with_certified_pipeline @@ fun () ->
  P.enable_cache ();
  let src = Sc_core.Designs.counter_src in
  let refused =
    let rec hunt i =
      if i > 20 then Alcotest.fail "no inject index was refused in 0..20"
      else
        match C.compile_behavior ~inject_fault:i src with
        | Error _ -> i
        | Ok _ -> hunt (i + 1)
    in
    hunt 0
  in
  P.reset_log ();
  (match C.compile_behavior ~inject_fault:refused src with
  | Error d ->
    Alcotest.(check string) "refused again" "optimize" d.Diag.stage
  | Ok _ -> Alcotest.fail "expected the miscompile to be refused again");
  check_bool "the second refusal executed optimize (nothing was cached)"
    true
    (List.exists
       (fun (n, st) -> n = "optimize" && P.status_to_string st = "failed")
       (P.log ()))

let suite =
  [ Alcotest.test_case "clean compile certifies" `Quick
      test_clean_compile_certifies
  ; Alcotest.test_case "pla minimizer certifies" `Quick
      test_pla_minimizer_certifies
  ; Alcotest.test_case "injected miscompile refused" `Quick
      test_injected_miscompile_refused
  ; Alcotest.test_case "certified warm rebuild" `Quick
      test_certified_warm_rebuild
  ; Alcotest.test_case "refused artifact uncached" `Quick
      test_refused_artifact_uncached
  ]
