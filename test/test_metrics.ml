(* lib/metrics: QoR snapshots, JSON roundtrip, diff classification and
   the quality gate.  These tests capture from the shared default
   recorder, so every test that captures disables and resets it on the
   way out. *)

module Obs = Sc_obs.Obs
module M = Sc_metrics.Metrics

let with_recorder f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let snap ?(design = "t") ?(qor = []) ?(runtime = []) () =
  { M.version = M.schema_version; design; qor; runtime }

let test_runtime_key () =
  List.iter
    (fun (k, expect) ->
      Alcotest.(check bool) k expect (M.is_runtime_key k))
    [ ("gates", false)
    ; ("area", false)
    ; ("place.hpwl", false)
    ; ("cif.rects.NM", false)
    ; ("stage.compile.total_us", true)
    ; ("cache.stdcell.hit", true)
    ; ("pool.width", true)
    ; ("pool.d0.tasks", true)
    ; ("equiv.cone.calls", true)
    ]

let test_roundtrip () =
  let s =
    snap ~design:"pdp8"
      ~qor:[ ("area", 3458280.); ("drc.violations", 0.); ("gates", 685.) ]
      ~runtime:[ ("pool.width", 4.); ("stage.drc.total_us", 365561.) ]
      ()
  in
  (match M.of_string (M.to_string s) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok s' ->
    Alcotest.(check bool) "snapshot survives JSON roundtrip" true (s = s'));
  Alcotest.(check string) "serialization is deterministic" (M.to_string s)
    (M.to_string s);
  (match M.of_string "{\"schema\":\"nope\",\"version\":1}" with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  match M.of_string (M.to_string { s with version = M.schema_version + 1 }) with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error _ -> ()

let test_capture_sections () =
  let s =
    with_recorder @@ fun () ->
    Obs.span "stage_a" (fun () -> Obs.count "gates" 42);
    Obs.gauge "area" 1000;
    Obs.count "cache.unit.hit" 3;
    M.capture ~design:"d" ()
  in
  let has section k = List.mem_assoc k section in
  Alcotest.(check bool) "gates is QoR" true (has s.M.qor "gates");
  Alcotest.(check bool) "area is QoR" true (has s.M.qor "area");
  Alcotest.(check bool) "cache counter is runtime" true
    (has s.M.runtime "cache.unit.hit");
  Alcotest.(check bool) "stage time is runtime" true
    (has s.M.runtime "stage.stage_a.total_us");
  Alcotest.(check bool) "stage calls is runtime" true
    (has s.M.runtime "stage.stage_a.calls");
  Alcotest.(check bool) "no runtime key leaks into QoR" true
    (List.for_all (fun (k, _) -> not (M.is_runtime_key k)) s.M.qor);
  Alcotest.(check (option (float 0.))) "gauge value" (Some 1000.)
    (List.assoc_opt "area" s.M.qor);
  (* times are whole microseconds: integral floats, exact JSON *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) (k ^ " integral") true (Float.is_integer v))
    (s.M.qor @ s.M.runtime)

let verdict_of base cur key =
  let b = snap ~qor:[ (key, base) ] () in
  let c = snap ~qor:[ (key, cur) ] () in
  let r = M.diff b c in
  match r.M.deltas with
  | [ d ] -> d.M.verdict
  | ds -> Alcotest.failf "expected one delta, got %d" (List.length ds)

let test_diff_classification () =
  let check what expect got =
    Alcotest.(check bool) what true (expect = got)
  in
  (* lower-better (the default): bigger is worse *)
  check "area grows -> regressed" M.Regressed (verdict_of 100. 120. "area");
  check "area shrinks -> improved" M.Improved (verdict_of 120. 100. "area");
  check "area equal -> neutral" M.Neutral (verdict_of 100. 100. "area");
  check "one extra DRC violation regresses" M.Regressed
    (verdict_of 0. 1. "drc.violations");
  (* higher-better *)
  check "more proved cones -> improved" M.Improved
    (verdict_of 10. 12. "equiv.cones");
  check "fewer proved cones -> regressed" M.Regressed
    (verdict_of 12. 10. "equiv.cones");
  (* added / removed metrics never gate *)
  let r =
    M.diff (snap ~qor:[ ("old", 1.) ] ()) (snap ~qor:[ ("new", 2.) ] ())
  in
  List.iter
    (fun (d : M.delta) ->
      check (d.M.key ^ " added/removed is neutral") M.Neutral d.M.verdict)
    r.M.deltas;
  (* runtime metrics classify but do not gate by default *)
  let rt =
    M.diff
      (snap ~runtime:[ ("stage.drc.total_us", 1000000.) ] ())
      (snap ~runtime:[ ("stage.drc.total_us", 2000000.) ] ())
  in
  Alcotest.(check int) "runtime regression counted with ~runtime" 1
    (M.regressions ~runtime:true rt);
  Alcotest.(check int) "runtime regression ignored by default" 0
    (M.regressions rt);
  Alcotest.(check bool) "gate ignores runtime by default" false (M.gate rt);
  Alcotest.(check bool) "gate ~runtime:true fires" true
    (M.gate ~runtime:true rt)

let test_thresholds () =
  let ts =
    match
      M.thresholds_of_string
        {|{ "area": {"rel": 0.10},
            "stage.*": {"rel": 0.50, "abs": 1000},
            "stage.drc.total_us": {"abs": 5} }|}
    with
    | Ok ts -> ts
    | Error e -> Alcotest.failf "thresholds parse failed: %s" e
  in
  let t = M.threshold_for ts "area" in
  Alcotest.(check (float 1e-9)) "exact key rel" 0.10 t.M.rel;
  let t = M.threshold_for ts "stage.place.self_us" in
  Alcotest.(check (float 1e-9)) "prefix pattern rel" 0.50 t.M.rel;
  Alcotest.(check (float 1e-9)) "prefix pattern abs" 1000. t.M.abs;
  let t = M.threshold_for ts "stage.drc.total_us" in
  Alcotest.(check (float 1e-9)) "exact beats prefix" 5. t.M.abs;
  let t = M.threshold_for ts "gates" in
  Alcotest.(check (float 1e-9)) "unmatched QoR key is exact" 0. t.M.rel;
  (* a within-threshold delta is neutral, outside regresses *)
  let b = snap ~qor:[ ("area", 100.) ] () in
  let within = M.diff ~thresholds:ts b (snap ~qor:[ ("area", 109.) ] ()) in
  let outside = M.diff ~thresholds:ts b (snap ~qor:[ ("area", 120.) ] ()) in
  (match within.M.deltas with
  | [ d ] ->
    Alcotest.(check bool) "9% growth within 10% rel" true
      (d.M.verdict = M.Neutral)
  | _ -> Alcotest.fail "one delta expected");
  (match outside.M.deltas with
  | [ d ] ->
    Alcotest.(check bool) "20% growth regresses" true
      (d.M.verdict = M.Regressed)
  | _ -> Alcotest.fail "one delta expected");
  match M.thresholds_of_string "[1,2]" with
  | Ok _ -> Alcotest.fail "non-object thresholds accepted"
  | Error _ -> ()

let capture_counter () =
  with_recorder @@ fun () ->
  (match
     Sc_core.Compiler.compile_behavior ~restarts:3 Sc_core.Designs.counter_src
   with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "counter compile failed: %s" (Sc_pipeline.Diag.to_string d));
  M.capture ~design:"counter" ()

let test_qor_pool_identity () =
  let saved = Sc_par.Pool.default_size () in
  Fun.protect ~finally:(fun () -> Sc_par.Pool.set_default_size saved)
  @@ fun () ->
  Sc_par.Pool.set_default_size 1;
  let s1 = capture_counter () in
  Sc_par.Pool.set_default_size 4;
  let s4 = capture_counter () in
  Alcotest.(check string) "QoR bytes identical at -j1 and -j4"
    (M.qor_string s1) (M.qor_string s4);
  Alcotest.(check bool) "snapshot is non-trivial" true
    (List.length s1.M.qor > 5);
  Alcotest.(check bool) "pool width recorded as runtime" true
    (List.assoc_opt "pool.width" s4.M.runtime = Some 4.)

let suite =
  [ Alcotest.test_case "runtime/QoR key split" `Quick test_runtime_key
  ; Alcotest.test_case "JSON roundtrip" `Quick test_roundtrip
  ; Alcotest.test_case "capture sections" `Quick test_capture_sections
  ; Alcotest.test_case "diff classification" `Quick test_diff_classification
  ; Alcotest.test_case "thresholds" `Quick test_thresholds
  ; Alcotest.test_case "QoR identical across pool widths" `Quick
      test_qor_pool_identity
  ]
