(* The content-addressed memo store: LRU accounting, disk persistence,
   the value-level lookup/add tier, and the per-stage pipeline cache
   wired into the compiler. *)

open Sc_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let k name = Cache.digest name

let test_digest_stable () =
  Alcotest.(check string) "md5 hex" "900150983cd24fb0d6963f7d28e17f72"
    (Cache.digest "abc");
  check_bool "distinct contents, distinct keys" true
    (Cache.digest "abc" <> Cache.digest "abd")

let test_lru_eviction_and_stats () =
  let c : int Cache.t = Cache.create ~capacity:2 ~name:"t" () in
  check_int "k1 computed" 1 (Cache.find_or_add c (k "k1") (fun () -> 1));
  check_int "k2 computed" 2 (Cache.find_or_add c (k "k2") (fun () -> 2));
  (* refresh k1 so k2 is the least recently used *)
  check_int "k1 hit" 1 (Cache.find_or_add c (k "k1") (fun () -> 99));
  check_int "k3 computed, evicting k2" 3
    (Cache.find_or_add c (k "k3") (fun () -> 3));
  check_bool "k2 evicted" true (Cache.find c (k "k2") = None);
  check_bool "k1 survives (was refreshed)" true (Cache.find c (k "k1") = Some 1);
  let s = Cache.stats c in
  check_int "entries" 2 s.Cache.entries;
  check_int "evictions" 1 s.Cache.evictions;
  (* hits: the k1 refresh + the two find probes that returned a value *)
  check_int "hits" 2 s.Cache.hits;
  check_int "misses" 3 s.Cache.misses;
  Cache.clear c;
  let s = Cache.stats c in
  check_int "cleared entries" 0 s.Cache.entries;
  check_int "cleared hits" 0 s.Cache.hits

let test_capacity_clamped () =
  let c : int Cache.t = Cache.create ~capacity:0 ~name:"t" () in
  check_bool "capacity at least 1" true ((Cache.stats c).Cache.capacity >= 1)

(* disk stores shard entries into subdirectories, so cleanup recurses *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "scc-cache-test" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* where the disk layer puts an entry: dir/<first 2 key chars>/<name>-<key> *)
let entry_path dir name key =
  Filename.concat (Filename.concat dir (String.sub key 0 2)) (name ^ "-" ^ key)

let test_disk_persistence () =
  with_temp_dir @@ fun dir ->
  let c1 : int Cache.t = Cache.create ~dir ~name:"d" () in
  check_int "computed once" 42 (Cache.find_or_add c1 (k "pdp8") (fun () -> 42));
  (* a fresh store over the same directory serves the key from disk *)
  let c2 : int Cache.t = Cache.create ~dir ~name:"d" () in
  let computed = ref false in
  check_int "served from disk" 42
    (Cache.find_or_add c2 (k "pdp8")
       (fun () ->
         computed := true;
         0));
  check_bool "no recomputation" false !computed;
  check_int "disk hit counted" 1 (Cache.stats c2).Cache.disk_hits;
  (* remove drops both the memory entry and the disk file *)
  Cache.remove c2 (k "pdp8");
  let c3 : int Cache.t = Cache.create ~dir ~name:"d" () in
  check_int "recomputed after remove" 7
    (Cache.find_or_add c3 (k "pdp8") (fun () -> 7))

let test_lookup_add () =
  let c : int Cache.t = Cache.create ~capacity:2 ~name:"t" () in
  (match Cache.lookup c (k "a") with
  | `Absent -> ()
  | _ -> Alcotest.fail "fresh key should be absent");
  Cache.add c (k "a") 1;
  (match Cache.lookup c (k "a") with
  | `Memory 1 -> ()
  | _ -> Alcotest.fail "added key should hit in memory");
  let s = Cache.stats c in
  check_int "add records the miss" 1 s.Cache.misses;
  check_int "lookup records the hit" 1 s.Cache.hits;
  (* probing an absent key counts nothing: the miss belongs to add *)
  (match Cache.lookup c (k "b") with `Absent -> () | _ -> Alcotest.fail "b");
  check_int "absent probe is not a miss" 1 (Cache.stats c).Cache.misses;
  with_temp_dir @@ fun dir ->
  let d1 : int Cache.t = Cache.create ~dir ~name:"d" () in
  Cache.add d1 (k "x") 9;
  let d2 : int Cache.t = Cache.create ~dir ~name:"d" () in
  (match Cache.lookup d2 (k "x") with
  | `Disk 9 -> ()
  | _ -> Alcotest.fail "fresh store over the same dir should hit disk");
  match Cache.lookup d2 (k "x") with
  | `Memory 9 -> ()
  | _ -> Alcotest.fail "a disk hit should load the value into memory"

let test_shard_layout () =
  with_temp_dir @@ fun dir ->
  let c : int Cache.t = Cache.create ~dir ~name:"s" () in
  let key = k "sharded" in
  Cache.add c key 11;
  check_bool "entry lands in its shard subdirectory" true
    (Sys.file_exists (entry_path dir "s" key));
  (* no tmp files survive the write-to-temp + rename protocol *)
  let leftovers = ref [] in
  let rec scan p =
    if Sys.is_directory p then
      Array.iter (fun f -> scan (Filename.concat p f)) (Sys.readdir p)
    else if
      String.split_on_char '.' (Filename.basename p)
      |> List.exists (String.equal "tmp")
    then leftovers := p :: !leftovers
  in
  scan dir;
  check_bool "no tmp files left behind" true (!leftovers = [])

(* a stale or foreign disk entry must read as a miss, never a crash *)
let test_disk_header_staleness () =
  with_temp_dir @@ fun dir ->
  let key = k "victim" in
  let write_raw bytes =
    let path = entry_path dir "h" key in
    let oc = open_out_bin path in
    bytes oc;
    close_out oc
  in
  let fresh_misses expect_stale name =
    let c : int Cache.t = Cache.create ~dir ~name:"h" () in
    (match Cache.lookup c key with
    | `Absent -> ()
    | _ -> Alcotest.fail (name ^ ": should read as a miss"));
    check_int (name ^ ": stale counted") expect_stale (Cache.stats c).Cache.stale
  in
  (* seed a valid entry so the shard directory exists *)
  let c : int Cache.t = Cache.create ~dir ~name:"h" () in
  Cache.add c key 5;
  (* wrong magic: a file some other program (or an old scc) wrote *)
  write_raw (fun oc -> output_string oc "NOTCACHE0 junk");
  fresh_misses 1 "wrong magic";
  (* right magic, wrong format version *)
  write_raw (fun oc ->
      output_string oc "SCCCACHE";
      output_binary_int oc 999_999);
  fresh_misses 1 "wrong version";
  (* right header, torn payload: Marshal must not escape as a crash *)
  write_raw (fun oc ->
      output_string oc "SCCCACHE";
      output_binary_int oc 1;
      output_string oc "torn");
  fresh_misses 1 "torn payload";
  (* an empty file (a writer that died before the header) *)
  write_raw (fun _ -> ());
  fresh_misses 1 "empty file";
  (* and a good entry still round-trips after all that *)
  let c2 : int Cache.t = Cache.create ~dir ~name:"h" () in
  Cache.add c2 key 6;
  let c3 : int Cache.t = Cache.create ~dir ~name:"h" () in
  check_bool "valid entry still served" true (Cache.lookup c3 key = `Disk 6);
  check_int "no stale on the valid entry" 0 (Cache.stats c3).Cache.stale

(* the stage cache under the compiler: per-pass stores, errors uncached *)
let test_compiler_stage_cache () =
  let module C = Sc_core.Compiler in
  let module P = Sc_pipeline.Pipeline in
  P.disable_cache ();
  P.clear_caches ();
  check_bool "disabled by default" false (P.cache_enabled ());
  P.enable_cache ();
  Fun.protect
    ~finally:(fun () ->
      P.disable_cache ();
      P.clear_caches ())
  @@ fun () ->
  let src = Sc_core.Designs.counter_src in
  let cif r =
    match r with
    | Ok (compiled, _) -> compiled.C.cif
    | Error d ->
      Alcotest.failf "compile failed: %s" (Sc_pipeline.Diag.to_string d)
  in
  let first = cif (C.compile_behavior src) in
  let second = cif (C.compile_behavior src) in
  check_bool "identical result" true (String.equal first second);
  (match List.assoc_opt "parse" (P.cache_stats ()) with
  | None -> Alcotest.fail "parse store expected while enabled"
  | Some s ->
    check_int "one parse" 1 s.Cache.misses;
    check_int "one parse hit" 1 s.Cache.hits);
  (* errors are never cached: the bad source stores nothing, and asking
     again still reports the error rather than a stale entry *)
  (match C.compile_behavior "definitely not ISP" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  (match C.compile_behavior "definitely not ISP" with
  | Ok _ -> Alcotest.fail "expected a parse error again"
  | Error _ -> ());
  match List.assoc_opt "parse" (P.cache_stats ()) with
  | None -> Alcotest.fail "parse store expected while enabled"
  | Some s ->
    check_int "failures not stored" 1 s.Cache.entries;
    check_int "failures not counted as stored misses" 1 s.Cache.misses

(* the disk tier's LRU bound: oldest-mtime files go first, reads
   refresh recency, and evictions are counted *)
let test_disk_lru_eviction () =
  with_temp_dir @@ fun dir ->
  let c1 : int Cache.t =
    Cache.create ~dir ~disk_capacity:3 ~name:"e" ()
  in
  List.iteri
    (fun i key ->
      Cache.add c1 (k key) i;
      (* distinct mtimes so the LRU order is unambiguous *)
      Unix.sleepf 0.02)
    [ "a"; "b"; "c" ];
  check_int "within bound, nothing evicted" 0
    (Cache.stats c1).Cache.disk_evictions;
  (* a fresh store reads "a" from disk, refreshing its recency *)
  let c2 : int Cache.t =
    Cache.create ~dir ~disk_capacity:3 ~name:"e" ()
  in
  (match Cache.lookup c2 (k "a") with
  | `Disk 0 -> ()
  | _ -> Alcotest.fail "a should be served from disk");
  Unix.sleepf 0.02;
  (* the fourth entry pushes the tier over its bound: the least
     recently used file is now "b", not the refreshed "a" *)
  Cache.add c2 (k "d") 3;
  check_int "one eviction" 1 (Cache.stats c2).Cache.disk_evictions;
  let c3 : int Cache.t = Cache.create ~dir ~name:"e" () in
  (match Cache.lookup c3 (k "b") with
  | `Absent -> ()
  | _ -> Alcotest.fail "b should have been evicted");
  (match Cache.lookup c3 (k "a") with
  | `Disk 0 -> ()
  | _ -> Alcotest.fail "refreshed a should survive");
  match Cache.lookup c3 (k "d") with
  | `Disk 3 -> ()
  | _ -> Alcotest.fail "newest d should survive"

(* the byte bound evicts independently of the entry-count bound *)
let test_disk_byte_bound () =
  with_temp_dir @@ fun dir ->
  let c : string Cache.t =
    Cache.create ~dir ~disk_bytes:400 ~name:"b" ()
  in
  Cache.add c (k "one") (String.make 300 'x');
  Unix.sleepf 0.02;
  Cache.add c (k "two") (String.make 300 'y');
  check_bool "byte bound evicted the older entry" true
    ((Cache.stats c).Cache.disk_evictions >= 1);
  let c2 : string Cache.t = Cache.create ~dir ~name:"b" () in
  match Cache.lookup c2 (k "two") with
  | `Disk s -> check_int "newest survives intact" 300 (String.length s)
  | _ -> Alcotest.fail "newest entry should survive the byte bound"

let suite =
  [ Alcotest.test_case "digest is stable" `Quick test_digest_stable
  ; Alcotest.test_case "LRU eviction and stats" `Quick
      test_lru_eviction_and_stats
  ; Alcotest.test_case "capacity clamped" `Quick test_capacity_clamped
  ; Alcotest.test_case "disk persistence" `Quick test_disk_persistence
  ; Alcotest.test_case "lookup/add tiers" `Quick test_lookup_add
  ; Alcotest.test_case "sharded disk layout" `Quick test_shard_layout
  ; Alcotest.test_case "stale disk headers read as misses" `Quick
      test_disk_header_staleness
  ; Alcotest.test_case "compiler stage cache" `Quick
      test_compiler_stage_cache
  ; Alcotest.test_case "disk LRU eviction" `Quick test_disk_lru_eviction
  ; Alcotest.test_case "disk byte bound" `Quick test_disk_byte_bound
  ]
