(* lib/obs: spans, counters, the stage table and Chrome trace export.
   The recorder is process-global, so every test disables and resets it
   on the way out. *)

module Obs = Sc_obs.Obs
module Json = Sc_obs.Json

let with_recorder f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.span "stage" (fun () -> 17) in
  Alcotest.(check int) "span passes the result through" 17 r;
  Obs.count "gates" 5;
  Obs.gauge "area" 100;
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "no counters recorded" 0 (List.length (Obs.totals ()))

let test_span_nesting () =
  with_recorder @@ fun () ->
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.span "inner" (fun () -> ());
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  let evs = Obs.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer = List.find (fun (e : Obs.event) -> e.name = "outer") evs in
  let inners = List.filter (fun (e : Obs.event) -> e.name = "inner") evs in
  Alcotest.(check string) "outer path" "outer" outer.path;
  Alcotest.(check int) "outer depth" 0 outer.depth;
  List.iter
    (fun (e : Obs.event) ->
      Alcotest.(check string) "inner path" "outer.inner" e.path;
      Alcotest.(check int) "inner depth" 1 e.depth;
      Alcotest.(check bool) "child within parent" true
        (e.start_us >= outer.start_us
        && e.start_us +. e.dur_us <= outer.start_us +. outer.dur_us +. 1.0))
    inners;
  let children = List.fold_left (fun a (e : Obs.event) -> a +. e.dur_us) 0.0 inners in
  Alcotest.(check bool) "self excludes children" true
    (outer.self_us <= outer.dur_us -. children +. 1.0)

let test_counter_aggregation () =
  with_recorder @@ fun () ->
  Obs.span "a" (fun () ->
      Obs.count "gates" 3;
      Obs.span "b" (fun () -> Obs.count "gates" 4);
      Obs.count "gates" 5);
  Obs.gauge "nodes" 7;
  Obs.gauge "nodes" 9;
  let ev name = List.find (fun (e : Obs.event) -> e.name = name) (Obs.events ()) in
  Alcotest.(check (option int)) "innermost span owns its counts" (Some 4)
    (List.assoc_opt "gates" (ev "b").counters);
  Alcotest.(check (option int)) "outer span keeps only its own" (Some 8)
    (List.assoc_opt "gates" (ev "a").counters);
  Alcotest.(check (option int)) "global counter sums everything" (Some 12)
    (List.assoc_opt "gates" (Obs.totals ()));
  Alcotest.(check (option int)) "gauge: last write wins" (Some 9)
    (List.assoc_opt "nodes" (Obs.totals ()))

let test_exception_safety () =
  with_recorder @@ fun () ->
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let evs = Obs.events () in
  Alcotest.(check int) "event recorded despite the raise" 1 (List.length evs);
  Alcotest.(check string) "named" "boom" (List.hd evs).Obs.path;
  (* the stack unwound: a new span is top-level again *)
  Obs.span "after" (fun () -> ());
  let after = List.find (fun (e : Obs.event) -> e.name = "after") (Obs.events ()) in
  Alcotest.(check int) "stack unwound" 0 after.Obs.depth

let test_stage_table () =
  with_recorder @@ fun () ->
  Obs.span "x" (fun () -> Obs.count "n" 1);
  Obs.span "x" (fun () -> Obs.count "n" 2);
  Obs.span "y" (fun () -> ());
  let rows = Obs.stage_table () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let x = List.find (fun (r : Obs.row) -> r.rpath = "x") rows in
  Alcotest.(check int) "x called twice" 2 x.calls;
  Alcotest.(check (option int)) "x counters summed" (Some 3)
    (List.assoc_opt "n" x.rcounters);
  (* ordering: first start first *)
  Alcotest.(check string) "x first" "x" (List.hd rows).Obs.rpath

let test_trace_roundtrip () =
  with_recorder @@ fun () ->
  Obs.span "parse" (fun () -> ());
  Obs.span "place" (fun () ->
      Obs.span "route" (fun () -> Obs.count "route.tracks" 12));
  let text = Obs.chrome_trace () in
  match Json.parse text with
  | Error e -> Alcotest.failf "trace does not parse back: %s" e
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.Arr evs) ->
      let spans =
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.Str "X"))
          evs
      in
      Alcotest.(check int) "one X event per span" 3 (List.length spans);
      List.iter
        (fun e ->
          (match Json.member "ts" e with
          | Some (Json.Num ts) ->
            Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
          | _ -> Alcotest.fail "missing ts");
          match Json.member "dur" e with
          | Some (Json.Num d) ->
            Alcotest.(check bool) "dur non-negative" true (d >= 0.0)
          | _ -> Alcotest.fail "missing dur")
        spans;
      let nested =
        List.find_opt
          (fun e -> Json.member "name" e = Some (Json.Str "place.route"))
          spans
      in
      Alcotest.(check bool) "nested span keeps its path" true (nested <> None);
      let counters =
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.Str "C"))
          evs
      in
      Alcotest.(check bool) "counter track present" true
        (List.exists
           (fun e -> Json.member "name" e = Some (Json.Str "route.tracks"))
           counters)
    | _ -> Alcotest.fail "traceEvents missing or not an array")

let test_json_parser () =
  let roundtrip s =
    match Json.parse s with
    | Error e -> Alcotest.failf "parse %s: %s" s e
    | Ok v -> (
      match Json.parse (Json.to_string v) with
      | Error e -> Alcotest.failf "reparse of %s: %s" (Json.to_string v) e
      | Ok w -> Alcotest.(check bool) ("roundtrip " ^ s) true (Json.equal v w))
  in
  roundtrip "null";
  roundtrip "[1, -2.5, 3e4, 0.125]";
  roundtrip {|{"a": [true, false, null], "b": {"c": "d"}}|};
  roundtrip {|"line\nbreak\ttab \"quoted\" back\\slash"|};
  roundtrip {|"unicode é 世 😀"|};
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array accepted");
  (match Json.parse "{\"a\" 1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing colon accepted");
  (match Json.parse "[] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse {|{"k": 1}|} with
  | Ok v ->
    Alcotest.(check bool) "member" true
      (Json.member "k" v = Some (Json.Num 1.0))
  | Error e -> Alcotest.fail e

(* the whole point: a real compilation, observed end to end *)
let test_compiler_stages () =
  with_recorder @@ fun () ->
  (match Sc_core.Compiler.compile_behavior Sc_core.Designs.counter_src with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Sc_pipeline.Diag.to_string d));
  let rows = Obs.stage_table () in
  List.iter
    (fun stage ->
      Alcotest.(check bool) ("stage " ^ stage ^ " recorded") true
        (List.exists (fun (r : Obs.row) -> r.rpath = stage) rows))
    [ "parse"; "compile"; "optimize"; "place"; "route"; "drc"; "emit" ];
  (match Json.parse (Obs.chrome_trace ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compiler trace does not parse: %s" e);
  let totals = Obs.totals () in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("counter " ^ key) true
        (List.assoc_opt key totals <> None))
    [ "gates"; "transistors"; "route.tracks"; "cif.bytes"; "drc.violations" ]

let suite =
  [ Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop
  ; Alcotest.test_case "span nesting" `Quick test_span_nesting
  ; Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation
  ; Alcotest.test_case "exception safety" `Quick test_exception_safety
  ; Alcotest.test_case "stage table" `Quick test_stage_table
  ; Alcotest.test_case "chrome trace roundtrip" `Quick test_trace_roundtrip
  ; Alcotest.test_case "json parser" `Quick test_json_parser
  ; Alcotest.test_case "compiler stages observed" `Quick test_compiler_stages
  ]
