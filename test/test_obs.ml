(* lib/obs: spans, counters, the stage table and Chrome trace export.
   These tests drive the global API, which is a shim over the default
   Recorder instance — so every test disables and resets it on the way
   out.  Recorder isolation, ambient dispatch and reset-under-live-span
   are covered at the bottom. *)

module Obs = Sc_obs.Obs
module Json = Sc_obs.Json

let with_recorder f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.span "stage" (fun () -> 17) in
  Alcotest.(check int) "span passes the result through" 17 r;
  Obs.count "gates" 5;
  Obs.gauge "area" 100;
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check int) "no counters recorded" 0 (List.length (Obs.totals ()))

let test_span_nesting () =
  with_recorder @@ fun () ->
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Obs.span "inner" (fun () -> ());
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  let evs = Obs.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer = List.find (fun (e : Obs.event) -> e.name = "outer") evs in
  let inners = List.filter (fun (e : Obs.event) -> e.name = "inner") evs in
  Alcotest.(check string) "outer path" "outer" outer.path;
  Alcotest.(check int) "outer depth" 0 outer.depth;
  List.iter
    (fun (e : Obs.event) ->
      Alcotest.(check string) "inner path" "outer.inner" e.path;
      Alcotest.(check int) "inner depth" 1 e.depth;
      Alcotest.(check bool) "child within parent" true
        (e.start_us >= outer.start_us
        && e.start_us +. e.dur_us <= outer.start_us +. outer.dur_us +. 1.0))
    inners;
  let children = List.fold_left (fun a (e : Obs.event) -> a +. e.dur_us) 0.0 inners in
  Alcotest.(check bool) "self excludes children" true
    (outer.self_us <= outer.dur_us -. children +. 1.0)

let test_counter_aggregation () =
  with_recorder @@ fun () ->
  Obs.span "a" (fun () ->
      Obs.count "gates" 3;
      Obs.span "b" (fun () -> Obs.count "gates" 4);
      Obs.count "gates" 5);
  Obs.gauge "nodes" 7;
  Obs.gauge "nodes" 9;
  let ev name = List.find (fun (e : Obs.event) -> e.name = name) (Obs.events ()) in
  Alcotest.(check (option int)) "innermost span owns its counts" (Some 4)
    (List.assoc_opt "gates" (ev "b").counters);
  Alcotest.(check (option int)) "outer span keeps only its own" (Some 8)
    (List.assoc_opt "gates" (ev "a").counters);
  Alcotest.(check (option int)) "global counter sums everything" (Some 12)
    (List.assoc_opt "gates" (Obs.totals ()));
  Alcotest.(check (option int)) "gauge: last write wins" (Some 9)
    (List.assoc_opt "nodes" (Obs.totals ()))

let test_exception_safety () =
  with_recorder @@ fun () ->
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let evs = Obs.events () in
  Alcotest.(check int) "event recorded despite the raise" 1 (List.length evs);
  Alcotest.(check string) "named" "boom" (List.hd evs).Obs.path;
  (* the stack unwound: a new span is top-level again *)
  Obs.span "after" (fun () -> ());
  let after = List.find (fun (e : Obs.event) -> e.name = "after") (Obs.events ()) in
  Alcotest.(check int) "stack unwound" 0 after.Obs.depth

let test_stage_table () =
  with_recorder @@ fun () ->
  Obs.span "x" (fun () -> Obs.count "n" 1);
  Obs.span "x" (fun () -> Obs.count "n" 2);
  Obs.span "y" (fun () -> ());
  let rows = Obs.stage_table () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let x = List.find (fun (r : Obs.row) -> r.rpath = "x") rows in
  Alcotest.(check int) "x called twice" 2 x.calls;
  Alcotest.(check (option int)) "x counters summed" (Some 3)
    (List.assoc_opt "n" x.rcounters);
  (* ordering: first start first *)
  Alcotest.(check string) "x first" "x" (List.hd rows).Obs.rpath

let test_trace_roundtrip () =
  with_recorder @@ fun () ->
  Obs.span "parse" (fun () -> ());
  Obs.span "place" (fun () ->
      Obs.span "route" (fun () -> Obs.count "route.tracks" 12));
  let text = Obs.chrome_trace () in
  match Json.parse text with
  | Error e -> Alcotest.failf "trace does not parse back: %s" e
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.Arr evs) ->
      let spans =
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.Str "X"))
          evs
      in
      Alcotest.(check int) "one X event per span" 3 (List.length spans);
      List.iter
        (fun e ->
          (match Json.member "ts" e with
          | Some (Json.Num ts) ->
            Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
          | _ -> Alcotest.fail "missing ts");
          match Json.member "dur" e with
          | Some (Json.Num d) ->
            Alcotest.(check bool) "dur non-negative" true (d >= 0.0)
          | _ -> Alcotest.fail "missing dur")
        spans;
      let nested =
        List.find_opt
          (fun e -> Json.member "name" e = Some (Json.Str "place.route"))
          spans
      in
      Alcotest.(check bool) "nested span keeps its path" true (nested <> None);
      let counters =
        List.filter
          (fun e -> Json.member "ph" e = Some (Json.Str "C"))
          evs
      in
      Alcotest.(check bool) "counter track present" true
        (List.exists
           (fun e -> Json.member "name" e = Some (Json.Str "route.tracks"))
           counters)
    | _ -> Alcotest.fail "traceEvents missing or not an array")

let test_json_parser () =
  let roundtrip s =
    match Json.parse s with
    | Error e -> Alcotest.failf "parse %s: %s" s e
    | Ok v -> (
      match Json.parse (Json.to_string v) with
      | Error e -> Alcotest.failf "reparse of %s: %s" (Json.to_string v) e
      | Ok w -> Alcotest.(check bool) ("roundtrip " ^ s) true (Json.equal v w))
  in
  roundtrip "null";
  roundtrip "[1, -2.5, 3e4, 0.125]";
  roundtrip {|{"a": [true, false, null], "b": {"c": "d"}}|};
  roundtrip {|"line\nbreak\ttab \"quoted\" back\\slash"|};
  roundtrip {|"unicode é 世 😀"|};
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array accepted");
  (match Json.parse "{\"a\" 1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing colon accepted");
  (match Json.parse "[] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse {|{"k": 1}|} with
  | Ok v ->
    Alcotest.(check bool) "member" true
      (Json.member "k" v = Some (Json.Num 1.0))
  | Error e -> Alcotest.fail e

(* the whole point: a real compilation, observed end to end *)
let test_compiler_stages () =
  with_recorder @@ fun () ->
  (match Sc_core.Compiler.compile_behavior Sc_core.Designs.counter_src with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Sc_pipeline.Diag.to_string d));
  let rows = Obs.stage_table () in
  List.iter
    (fun stage ->
      Alcotest.(check bool) ("stage " ^ stage ^ " recorded") true
        (List.exists (fun (r : Obs.row) -> r.rpath = stage) rows))
    [ "parse"; "compile"; "optimize"; "place"; "route"; "drc"; "emit" ];
  (match Json.parse (Obs.chrome_trace ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compiler trace does not parse: %s" e);
  let totals = Obs.totals () in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("counter " ^ key) true
        (List.assoc_opt key totals <> None))
    [ "gates"; "transistors"; "route.tracks"; "cif.bytes"; "drc.violations" ]

(* --- recorder instances: isolation, ambient dispatch, reset safety --- *)

let test_recorder_isolation () =
  let a = Obs.Recorder.create () in
  let b = Obs.Recorder.create () in
  Obs.Recorder.enable a;
  Obs.Recorder.enable b;
  Obs.with_recorder a (fun () ->
      Obs.span "work" (fun () -> Obs.count "gates" 3));
  Obs.with_recorder b (fun () ->
      Obs.span "work" (fun () -> Obs.count "gates" 5);
      Obs.span "extra" (fun () -> ()));
  Alcotest.(check int) "a has one event" 1
    (List.length (Obs.Recorder.events a));
  Alcotest.(check int) "b has two events" 2
    (List.length (Obs.Recorder.events b));
  Alcotest.(check (option int)) "a's counter" (Some 3)
    (List.assoc_opt "gates" (Obs.Recorder.totals a));
  Alcotest.(check (option int)) "b's counter" (Some 5)
    (List.assoc_opt "gates" (Obs.Recorder.totals b));
  (* the default instance saw nothing *)
  Alcotest.(check int) "default untouched" 0
    (List.length (Obs.Recorder.events Obs.default))

let test_ambient_dispatch () =
  (* inside with_recorder the global API routes to that instance; the
     override is scoped to the installing thread, so concurrent threads
     each see their own recorder *)
  let n = 4 in
  let recorders = Array.init n (fun _ -> Obs.Recorder.create ()) in
  Array.iter Obs.Recorder.enable recorders;
  let threads =
    Array.to_list
      (Array.mapi
         (fun i r ->
           Thread.create
             (fun () ->
               Obs.with_recorder r (fun () ->
                   Alcotest.(check bool) "ambient is mine" true
                     (Obs.ambient () == r);
                   for _ = 1 to i + 1 do
                     Obs.span "tick" (fun () -> Obs.count "n" 1)
                   done))
             ())
         recorders)
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      Alcotest.(check int)
        (Printf.sprintf "recorder %d event count" i)
        (i + 1)
        (List.length (Obs.Recorder.events r));
      Alcotest.(check (option int))
        (Printf.sprintf "recorder %d counter" i)
        (Some (i + 1))
        (List.assoc_opt "n" (Obs.Recorder.totals r)))
    recorders;
  (* outside any with_recorder, ambient is the default instance *)
  Alcotest.(check bool) "ambient falls back to default" true
    (Obs.ambient () == Obs.default)

let test_reset_under_live_span () =
  (* regression: reset inside an open span used to leave the span stack
     inconsistent — the stale frame's finish must not record an event,
     and post-reset spans must start clean at depth 0 *)
  let r = Obs.Recorder.create () in
  Obs.Recorder.enable r;
  Obs.with_recorder r (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "doomed" (fun () -> Obs.reset ());
          (* still inside outer's body after the reset wiped the stack *)
          Obs.span "fresh" (fun () -> Obs.count "n" 1)));
  let evs = Obs.Recorder.events r in
  Alcotest.(check bool) "stale frames record nothing" true
    (not
       (List.exists
          (fun (e : Obs.event) -> e.name = "doomed" || e.name = "outer")
          evs));
  let fresh = List.find (fun (e : Obs.event) -> e.name = "fresh") evs in
  Alcotest.(check int) "post-reset span is top-level" 0 fresh.Obs.depth;
  Alcotest.(check string) "post-reset path has no stale prefix" "fresh"
    fresh.Obs.path;
  Alcotest.(check (option int)) "post-reset counters intact" (Some 1)
    (List.assoc_opt "n" (Obs.Recorder.totals r));
  (* and the recorder keeps working normally afterwards *)
  Obs.with_recorder r (fun () -> Obs.span "later" (fun () -> ()));
  Alcotest.(check int) "recorder usable after reset" 2
    (List.length (Obs.Recorder.events r))

let suite =
  [ Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop
  ; Alcotest.test_case "span nesting" `Quick test_span_nesting
  ; Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation
  ; Alcotest.test_case "exception safety" `Quick test_exception_safety
  ; Alcotest.test_case "stage table" `Quick test_stage_table
  ; Alcotest.test_case "chrome trace roundtrip" `Quick test_trace_roundtrip
  ; Alcotest.test_case "json parser" `Quick test_json_parser
  ; Alcotest.test_case "compiler stages observed" `Quick test_compiler_stages
  ; Alcotest.test_case "recorder isolation" `Quick test_recorder_isolation
  ; Alcotest.test_case "ambient dispatch across threads" `Quick
      test_ambient_dispatch
  ; Alcotest.test_case "reset under a live span" `Quick
      test_reset_under_live_span
  ]
