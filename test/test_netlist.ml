open Sc_netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* one-bit full adder as a reusable sub-circuit *)
let full_adder () =
  let b = Builder.create "fa" in
  let a = (Builder.input b "a" 1).(0) in
  let x = (Builder.input b "b" 1).(0) in
  let cin = (Builder.input b "cin" 1).(0) in
  let p = Builder.xor2 b a x in
  let s = Builder.xor2 b p cin in
  let g = Builder.and2 b a x in
  let pc = Builder.and2 b p cin in
  let cout = Builder.or2 b g pc in
  Builder.output b "s" [| s |];
  Builder.output b "cout" [| cout |];
  Builder.finish b

let ripple4 () =
  let fa = full_adder () in
  let b = Builder.create "ripple4" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sums = Builder.fresh_vec b 4 in
  let carries = Builder.fresh_vec b 4 in
  for i = 0 to 3 do
    let cin = if i = 0 then Builder.const0 else carries.(i - 1) in
    Builder.inst b
      ~name:(Printf.sprintf "fa%d" i)
      fa
      [ ("a", [| xs.(i) |])
      ; ("b", [| ys.(i) |])
      ; ("cin", [| cin |])
      ; ("s", [| sums.(i) |])
      ; ("cout", [| carries.(i) |])
      ]
  done;
  Builder.output b "sum" sums;
  Builder.output b "cout" [| carries.(3) |];
  Builder.finish b

let test_builder_check_clean () =
  let c = full_adder () in
  Alcotest.(check (list string)) "clean" [] (Circuit.check c)

let test_hierarchy_check_clean () =
  let c = ripple4 () in
  Alcotest.(check (list string)) "clean" [] (Circuit.check c)

let test_arity_rejected () =
  let b = Builder.create "bad" in
  let a = (Builder.input b "a" 1).(0) in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Circuit bad: gate g1 has 1 inputs, nand2 wants 2")
    (fun () ->
      Builder.gate_into b Gate.Nand2 [| a |] (Builder.fresh b);
      ignore (Builder.finish b))

let test_undriven_detected () =
  let b = Builder.create "undriven" in
  let _ = Builder.input b "a" 1 in
  let floating = Builder.fresh b in
  let y = Builder.not_ b floating in
  Builder.output b "y" [| y |];
  let c = Builder.finish b in
  check_bool "reported" true (Circuit.check c <> [])

let test_double_driver_detected () =
  let b = Builder.create "dd" in
  let a = (Builder.input b "a" 1).(0) in
  let n = Builder.fresh b in
  Builder.gate_into b Gate.Inv [| a |] n;
  Builder.gate_into b Gate.Buf [| a |] n;
  Builder.output b "y" [| n |];
  let c = Builder.finish b in
  check_bool "reported" true
    (List.exists
       (fun s -> String.length s > 0 && String.sub s 0 3 = "net")
       (Circuit.check c))

let test_open_instance_port_rejected () =
  let fa = full_adder () in
  let b = Builder.create "open" in
  let xs = Builder.input b "x" 1 in
  Alcotest.check_raises "open port"
    (Invalid_argument "Circuit open: instance fa0 leaves port cout open")
    (fun () ->
      Builder.inst b ~name:"fa0" fa
        [ ("a", xs)
        ; ("b", [| Builder.const0 |])
        ; ("cin", [| Builder.const0 |])
        ; ("s", [| Builder.fresh b |])
        ];
      ignore (Builder.finish b))

let test_flatten_counts () =
  let c = ripple4 () in
  let f = Circuit.flatten c in
  check_int "no instances left" 0 (List.length f.Circuit.insts);
  (* 5 gates per FA x 4 *)
  check_int "gates" 20 (List.length f.Circuit.gates);
  Alcotest.(check (list string)) "flat clean" [] (Circuit.check f)

let test_stats () =
  let s = Circuit.stats (ripple4 ()) in
  check_int "gate total" 20 s.Circuit.gate_total;
  check_int "instances" 4 s.Circuit.module_instances;
  check_int "no ffs" 0 s.Circuit.flipflops;
  check_bool "transistors counted" true (s.Circuit.transistors > 0)

let test_cycle_detection () =
  let b = Builder.create "cyc" in
  let a = (Builder.input b "a" 1).(0) in
  let n1 = Builder.fresh b in
  let n2 = Builder.fresh b in
  Builder.gate_into b Gate.Nand2 [| a; n2 |] n1;
  Builder.gate_into b Gate.Inv [| n1 |] n2;
  Builder.output b "y" [| n2 |];
  let c = Builder.finish b in
  check_bool "cycle found" true (Circuit.has_combinational_cycle c)

let test_dff_breaks_cycle () =
  let b = Builder.create "reg_loop" in
  let n1 = Builder.fresh b in
  let q = Builder.dff b n1 in
  Builder.gate_into b Gate.Inv [| q |] n1;
  Builder.output b "q" [| q |];
  let c = Builder.finish b in
  check_bool "no combinational cycle" false (Circuit.has_combinational_cycle c)

let test_critical_path_chain () =
  let b = Builder.create "chain" in
  let a = (Builder.input b "a" 1).(0) in
  let n = ref a in
  for _ = 1 to 10 do
    n := Builder.not_ b !n
  done;
  Builder.output b "y" [| !n |];
  let c = Builder.finish b in
  check_int "10 inverters" 10 (Timing.critical_path c)

let test_critical_path_through_hierarchy () =
  let c = ripple4 () in
  (* ripple carry: xor(3) + 3 stages of carry + final xor; just check
     monotonicity vs a single FA *)
  let single = full_adder () in
  check_bool "ripple slower than one FA" true
    (Timing.critical_path c > Timing.critical_path single)

let test_dff_cuts_path () =
  let b = Builder.create "cut" in
  let a = (Builder.input b "a" 1).(0) in
  let x1 = Builder.not_ b a in
  let q = Builder.dff b x1 in
  let x2 = Builder.not_ b q in
  Builder.output b "y" [| x2 |];
  let c = Builder.finish b in
  check_int "path is one inverter" 1 (Timing.critical_path c)

let test_cycle_raises_in_timing () =
  let b = Builder.create "cyc2" in
  let n1 = Builder.fresh b in
  let n2 = Builder.fresh b in
  Builder.gate_into b Gate.Inv [| n2 |] n1;
  Builder.gate_into b Gate.Inv [| n1 |] n2;
  Builder.output b "y" [| n2 |];
  let c = Builder.finish b in
  check_bool "raises" true
    (try
       ignore (Timing.critical_path c);
       false
     with Timing.Combinational_cycle -> true)

let test_cycle_raises_in_arrival_times () =
  (* a cycle threaded through two gate kinds, with a duplicated input net
     on the Or2 — the per-occurrence pending counts must not mask it *)
  let b = Builder.create "cyc3" in
  let a = (Builder.input b "a" 1).(0) in
  let n1 = Builder.fresh b in
  let n2 = Builder.fresh b in
  Builder.gate_into b Gate.And2 [| a; n2 |] n1;
  Builder.gate_into b Gate.Or2 [| n1; n1 |] n2;
  Builder.output b "y" [| n2 |];
  let c = Builder.finish b in
  check_bool "arrival_times raises" true
    (try
       ignore (Timing.arrival_times c);
       false
     with Timing.Combinational_cycle -> true);
  (* the equivalence checker's topological sort reports it too *)
  check_bool "comb_topo raises" true
    (try
       ignore (Circuit.comb_topo c);
       false
     with Invalid_argument _ -> true)

let prop_gate_eval_matches_kind =
  let gen =
    QCheck.Gen.(
      pair
        (oneofl
           [ Gate.Inv; Gate.Buf; Gate.Nand2; Gate.Nand3; Gate.Nor2; Gate.Nor3
           ; Gate.And2; Gate.Or2; Gate.Xor2; Gate.Xnor2; Gate.Mux2
           ])
        (array_size (return 3) bool))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"gate eval consistency (de Morgan pairs)" ~count:200
       (QCheck.make gen) (fun (k, bits) ->
         let ins = Array.sub bits 0 (Gate.arity k) in
         let v = Gate.eval k ins in
         match k with
         | Gate.Nand2 -> v = not (Gate.eval Gate.And2 ins)
         | Gate.Nor2 -> v = not (Gate.eval Gate.Or2 ins)
         | Gate.Xnor2 -> v = not (Gate.eval Gate.Xor2 ins)
         | Gate.Buf -> v = ins.(0)
         | Gate.Inv -> v = not ins.(0)
         | _ -> true))


(* --- optimizer --- *)

let test_optimize_folds_constants () =
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let x = Builder.and2 b a Builder.const0 in
  let y = Builder.or2 b x Builder.const1 in
  let z = Builder.xor2 b y Builder.const0 in
  Builder.output b "z" [| z |];
  let c = Optimize.simplify (Builder.finish b) in
  (* everything folds to constant true *)
  check_int "no gates left" 0 (List.length c.Circuit.gates)

let test_optimize_cse () =
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let x = (Builder.input b "x" 1).(0) in
  let g1 = Builder.and2 b a x in
  let g2 = Builder.and2 b x a in
  (* commutative duplicates *)
  Builder.output b "y" [| Builder.or2 b g1 g2 |];
  let c = Optimize.simplify (Builder.finish b) in
  (* or(g,g) collapses too: a single and gate remains *)
  check_int "one gate" 1 (List.length c.Circuit.gates)

let test_optimize_no_sequential_cse () =
  (* Two registers fed by the same D are NOT the same signal: until the
     clock edge they hold independent state.  CSE must leave both. *)
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let q1 = Builder.dff b a in
  let q2 = Builder.dff b a in
  Builder.output b "y1" [| q1 |];
  Builder.output b "y2" [| q2 |];
  let c = Optimize.simplify (Builder.finish b) in
  check_int "both registers survive" 2
    (List.length
       (List.filter
          (fun g -> Gate.is_sequential g.Circuit.kind)
          c.Circuit.gates))

let test_optimize_removes_dead () =
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let _dead = Builder.not_ b (Builder.not_ b a) in
  Builder.output b "y" [| a |];
  let c = Optimize.simplify (Builder.finish b) in
  check_int "dead gates gone" 0 (List.length c.Circuit.gates)

let test_optimize_double_inverter () =
  let b = Builder.create "c" in
  let a = (Builder.input b "a" 1).(0) in
  let y = Builder.not_ b (Builder.not_ b a) in
  Builder.output b "y" [| y |];
  let c = Optimize.simplify (Builder.finish b) in
  check_int "collapsed" 0 (List.length c.Circuit.gates);
  Alcotest.(check (list string)) "still clean" [] (Circuit.check c)

let prop_optimize_preserves_function =
  let gen =
    QCheck.Gen.(
      list_size (int_range 3 25)
        (triple (int_range 0 10) (int_range 0 10) (int_range 0 6)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"simplify preserves combinational functions"
       ~count:80 (QCheck.make gen) (fun spec ->
         (* build a random DAG over 4 inputs *)
         let b = Builder.create "r" in
         let ins = Builder.input b "x" 4 in
         let pool = ref (Array.to_list ins) in
         let pick k =
           let l = !pool in
           List.nth l (k mod List.length l)
         in
         List.iter
           (fun (i, j, op) ->
             let a = pick i and c = pick j in
             let n =
               match op with
               | 0 -> Builder.and2 b a c
               | 1 -> Builder.or2 b a c
               | 2 -> Builder.xor2 b a c
               | 3 -> Builder.nand2 b a c
               | 4 -> Builder.nor2 b a c
               | 5 -> Builder.not_ b a
               | _ -> Builder.mux2 b ~sel:a c (pick (i + j))
             in
             pool := n :: !pool)
           spec;
         let outs = Array.of_list (List.filteri (fun i _ -> i < 3) !pool) in
         Builder.output b "y" outs;
         let c = Builder.finish b in
         let c' = Optimize.simplify c in
         (List.length c'.Circuit.gates <= List.length c.Circuit.gates)
         &&
         let t1 = Sc_sim.Engine.create c in
         let t2 = Sc_sim.Engine.create c' in
         let ok = ref true in
         for v = 0 to 15 do
           Sc_sim.Engine.set_input_int t1 "x" v;
           Sc_sim.Engine.set_input_int t2 "x" v;
           if
             Sc_sim.Engine.get_output_int t1 "y"
             <> Sc_sim.Engine.get_output_int t2 "y"
           then ok := false
         done;
         !ok))

let suite =
  [ Alcotest.test_case "builder produces clean circuit" `Quick test_builder_check_clean
  ; Alcotest.test_case "hierarchy is clean" `Quick test_hierarchy_check_clean
  ; Alcotest.test_case "arity mismatch rejected" `Quick test_arity_rejected
  ; Alcotest.test_case "undriven nets detected" `Quick test_undriven_detected
  ; Alcotest.test_case "double drivers detected" `Quick test_double_driver_detected
  ; Alcotest.test_case "open instance port rejected" `Quick test_open_instance_port_rejected
  ; Alcotest.test_case "flatten expands instances" `Quick test_flatten_counts
  ; Alcotest.test_case "stats" `Quick test_stats
  ; Alcotest.test_case "combinational cycle detected" `Quick test_cycle_detection
  ; Alcotest.test_case "dff breaks cycle" `Quick test_dff_breaks_cycle
  ; Alcotest.test_case "critical path of inverter chain" `Quick test_critical_path_chain
  ; Alcotest.test_case "critical path through hierarchy" `Quick test_critical_path_through_hierarchy
  ; Alcotest.test_case "dff cuts timing path" `Quick test_dff_cuts_path
  ; Alcotest.test_case "timing raises on cycle" `Quick test_cycle_raises_in_timing
  ; Alcotest.test_case "arrival times raise on cycle" `Quick
      test_cycle_raises_in_arrival_times
  ; prop_gate_eval_matches_kind
  ; Alcotest.test_case "optimize folds constants" `Quick test_optimize_folds_constants
  ; Alcotest.test_case "optimize CSE" `Quick test_optimize_cse
  ; Alcotest.test_case "optimize keeps duplicate registers" `Quick
      test_optimize_no_sequential_cse
  ; Alcotest.test_case "optimize removes dead gates" `Quick test_optimize_removes_dead
  ; Alcotest.test_case "optimize double inverter" `Quick test_optimize_double_inverter
  ; prop_optimize_preserves_function
  ]
