open Sc_netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_circuit () =
  (* a small random-logic block: 4-bit adder plus some glue *)
  let b = Builder.create "blk" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sums, cout = Builder.adder b xs ys in
  let z = Builder.and_reduce b (Array.to_list sums) in
  Builder.output b "sum" sums;
  Builder.output b "z" [| Builder.or2 b z cout |];
  Builder.finish b

(* --- placement --- *)

let test_problem_extraction () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  check_bool "items" true (Array.length p.Sc_place.Placer.kinds > 10);
  check_bool "nets" true (Array.length p.Sc_place.Placer.nets > 5);
  (* all net endpoints are valid item indices *)
  Array.iter
    (Array.iter (fun i ->
         check_bool "endpoint in range" true
           (i >= 0 && i < Array.length p.Sc_place.Placer.kinds)))
    p.Sc_place.Placer.nets

let test_placements_disjoint () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  List.iter
    (fun pl ->
      let n = Array.length p.Sc_place.Placer.kinds in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if pl.Sc_place.Placer.row.(i) = pl.Sc_place.Placer.row.(j) then begin
            let x0 = pl.Sc_place.Placer.x.(i)
            and x1 = pl.Sc_place.Placer.x.(i) + p.Sc_place.Placer.widths.(i) in
            let y0 = pl.Sc_place.Placer.x.(j)
            and y1 = pl.Sc_place.Placer.x.(j) + p.Sc_place.Placer.widths.(j) in
            check_bool "no overlap" true (x1 <= y0 || y1 <= x0)
          end
        done
      done)
    [ Sc_place.Placer.random p; Sc_place.Placer.ordered p ]

let test_ordered_beats_random () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let r = Sc_place.Placer.hpwl (Sc_place.Placer.random p) in
  let o = Sc_place.Placer.hpwl (Sc_place.Placer.ordered p) in
  check_bool (Printf.sprintf "ordered %d <= random %d" o r) true (o <= r)

let test_improve_monotone () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let pl = Sc_place.Placer.random p in
  let better = Sc_place.Placer.improve ~iters:500 pl in
  check_bool "improve does not worsen" true
    (Sc_place.Placer.hpwl better <= Sc_place.Placer.hpwl pl)

let test_improve_cost_matches_hpwl () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let pl = Sc_place.Placer.random ~seed:3 p in
  let pl', c = Sc_place.Placer.improve_cost ~iters:800 pl in
  check_int "incremental cost = from-scratch hpwl" (Sc_place.Placer.hpwl pl') c;
  check_bool "never worse than the start" true (c <= Sc_place.Placer.hpwl pl)

let prop_improve_cost_incremental_consistent =
  (* the delta-priced descent must agree with a from-scratch HPWL on
     whatever placement it ends at, from any random start *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"incremental improve cost = from-scratch hpwl"
       ~count:25
       QCheck.(make Gen.(int_range 0 1000))
       (fun seed ->
         let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
         let pl = Sc_place.Placer.random ~seed p in
         let pl', c = Sc_place.Placer.improve_cost ~iters:300 pl in
         c = Sc_place.Placer.hpwl pl' && c <= Sc_place.Placer.hpwl pl))

let test_best_of_pool_independent () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let run n =
    let pool = Sc_par.Pool.create ~domains:n () in
    Fun.protect
      ~finally:(fun () -> Sc_par.Pool.shutdown pool)
      (fun () -> Sc_place.Placer.best_of ~pool ~seeds:6 p)
  in
  let a = run 1 and b = run 4 in
  check_bool "same placement at any pool size" true
    (a.Sc_place.Placer.x = b.Sc_place.Placer.x
    && a.Sc_place.Placer.row = b.Sc_place.Placer.row);
  (* the constructive start is one of the candidates, so the winner can
     only match or beat it *)
  check_bool "beats or ties the improved constructive start" true
    (Sc_place.Placer.hpwl a
    <= Sc_place.Placer.hpwl (Sc_place.Placer.improve (Sc_place.Placer.ordered p)))

let test_to_layout_drc_clean () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let pl = Sc_place.Placer.ordered p in
  let layout = Sc_place.Placer.to_layout ~name:"blk" pl in
  check_bool "placement layout is DRC clean" true (Sc_drc.Checker.is_clean layout);
  (* one instance per gate *)
  check_int "instances"
    (Array.length p.Sc_place.Placer.kinds)
    (List.length layout.Sc_layout.Cell.instances)

(* --- channel routing --- *)

open Sc_route.Channel

let simple_spec =
  { top = [ { x = 0; net = 1 }; { x = 14; net = 2 }; { x = 28; net = 3 } ]
  ; bottom = [ { x = 7; net = 1 }; { x = 21; net = 2 }; { x = 35; net = 3 } ]
  ; width = 40
  }

let test_route_simple () =
  let r = route simple_spec in
  check_bool "few tracks" true (r.tracks <= 2);
  check_bool "drc clean" true (Sc_drc.Checker.is_clean r.layout)

let test_route_shares_track () =
  (* nets 1 and 3 do not overlap horizontally: same track *)
  let spec =
    { top = [ { x = 0; net = 1 }; { x = 30; net = 3 } ]
    ; bottom = [ { x = 7; net = 1 }; { x = 40; net = 3 } ]
    ; width = 50
    }
  in
  let r = route spec in
  check_int "one track" 1 r.tracks

let test_route_through () =
  let spec =
    { top = [ { x = 10; net = 1 } ]
    ; bottom = [ { x = 10; net = 1 } ]
    ; width = 20
    }
  in
  let r = route spec in
  check_int "no tracks needed" 0 r.tracks;
  check_bool "still has geometry" true
    (Sc_layout.Cell.bbox r.layout <> None)

let test_vertical_constraint_ordering () =
  (* column 10: net 1 on top, net 2 on bottom -> net 1's trunk above *)
  let spec =
    { top = [ { x = 10; net = 1 }; { x = 24; net = 1 } ]
    ; bottom = [ { x = 10; net = 2 }; { x = 31; net = 2 } ]
    ; width = 40
    }
  in
  let r = route spec in
  check_int "two tracks" 2 r.tracks;
  check_bool "drc clean" true (Sc_drc.Checker.is_clean r.layout)

let test_cycle_detected () =
  let spec =
    { top = [ { x = 0; net = 1 }; { x = 10; net = 2 } ]
    ; bottom = [ { x = 0; net = 2 }; { x = 10; net = 1 } ]
    ; width = 20
    }
  in
  check_bool "raises" true
    (try
       ignore (route spec);
       false
     with Unroutable _ -> true)

let test_dogleg_reduces_tracks () =
  (* one long net visiting many columns against short nets: doglegs let the
     long net change tracks *)
  let spec =
    { top =
        [ { x = 0; net = 9 }; { x = 14; net = 1 }; { x = 28; net = 9 }
        ; { x = 42; net = 2 }; { x = 56; net = 9 }
        ]
    ; bottom = [ { x = 7; net = 1 }; { x = 35; net = 2 } ]
    ; width = 60
    }
  in
  let plain = route spec in
  let dog = route ~dogleg:true spec in
  check_bool "dogleg not worse" true (dog.tracks <= plain.tracks);
  check_bool "both clean" true
    (Sc_drc.Checker.is_clean plain.layout && Sc_drc.Checker.is_clean dog.layout)

let test_pin_spacing_validated () =
  let spec =
    { top = [ { x = 0; net = 1 }; { x = 3; net = 2 } ]; bottom = []; width = 20 }
  in
  check_bool "rejected" true
    (try
       ignore (route spec);
       false
     with Invalid_argument _ -> true)

let test_river () =
  let r = river ~width:60 [ (0, 14); (10, 28); (21, 35); (35, 49) ] in
  check_bool "clean" true (Sc_drc.Checker.is_clean r.layout);
  check_bool "bounded tracks" true (r.tracks <= 4)


let test_route_channels () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let pl = Sc_place.Placer.ordered p in
  let rc = Sc_place.Placer.route_channels pl in
  (* one channel per adjacent row pair with crossing nets *)
  check_bool "channels exist" true
    (List.length rc.Sc_place.Placer.channels >= 1
    && List.length rc.Sc_place.Placer.channels <= pl.Sc_place.Placer.nrows - 1);
  check_bool "heights positive" true (rc.Sc_place.Placer.total_height > 0);
  (* every channel's geometry is DRC clean *)
  List.iter
    (fun (c : Sc_route.Channel.routed) ->
      check_bool "channel clean" true (Sc_drc.Checker.is_clean c.layout))
    rc.Sc_place.Placer.channels

let test_route_channels_structure_helps () =
  let p = Sc_place.Placer.problem_of_circuit (sample_circuit ()) in
  let rnd = (Sc_place.Placer.route_channels (Sc_place.Placer.random p)).Sc_place.Placer.total_height in
  let ord =
    (Sc_place.Placer.route_channels
       (Sc_place.Placer.improve ~iters:2000 (Sc_place.Placer.ordered p)))
      .Sc_place.Placer.total_height
  in
  check_bool
    (Printf.sprintf "ordered %d <= random %d" ord rnd)
    true (ord <= rnd)

let prop_random_channels_route_clean =
  (* random non-conflicting specs: distinct nets per column, no cycles by
     construction (top pins use nets 0..k-1 left to right, bottom pins the
     same nets in the same order, shifted columns) *)
  let gen =
    QCheck.Gen.(
      let* k = int_range 2 6 in
      let* shift = int_range 1 3 in
      return (k, shift))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"order-preserving channels route clean" ~count:40
       (QCheck.make gen) (fun (k, shift) ->
         let top = List.init k (fun i -> { x = i * 14; net = i }) in
         let bottom = List.init k (fun i -> { x = (i * 14) + (7 * shift); net = i }) in
         let width = (k * 14) + (7 * shift) + 2 in
         let r = route { top; bottom; width } in
         Sc_drc.Checker.is_clean r.layout))

let suite =
  [ Alcotest.test_case "problem extraction" `Quick test_problem_extraction
  ; Alcotest.test_case "placements disjoint" `Quick test_placements_disjoint
  ; Alcotest.test_case "ordered beats random" `Quick test_ordered_beats_random
  ; Alcotest.test_case "improve monotone" `Quick test_improve_monotone
  ; Alcotest.test_case "placement layout DRC clean" `Quick test_to_layout_drc_clean
  ; Alcotest.test_case "route simple" `Quick test_route_simple
  ; Alcotest.test_case "route shares track" `Quick test_route_shares_track
  ; Alcotest.test_case "route through pin" `Quick test_route_through
  ; Alcotest.test_case "vertical constraints ordered" `Quick test_vertical_constraint_ordering
  ; Alcotest.test_case "cycle detected" `Quick test_cycle_detected
  ; Alcotest.test_case "dogleg reduces tracks" `Quick test_dogleg_reduces_tracks
  ; Alcotest.test_case "pin spacing validated" `Quick test_pin_spacing_validated
  ; Alcotest.test_case "river route" `Quick test_river
  ; Alcotest.test_case "improve_cost matches hpwl" `Quick
      test_improve_cost_matches_hpwl
  ; prop_improve_cost_incremental_consistent
  ; Alcotest.test_case "best_of independent of pool size" `Quick
      test_best_of_pool_independent
  ; Alcotest.test_case "route channels from placement" `Quick test_route_channels
  ; Alcotest.test_case "routed channels: structure helps" `Quick test_route_channels_structure_helps
  ; prop_random_channels_route_clean
  ]
