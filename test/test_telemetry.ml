(* lib/obs telemetry primitives: log-bucketed histograms and the JSONL
   structured logger.  Both are what the serve daemon aggregates per
   verb / writes per request, so the properties asserted here (bucket
   boundaries, exact percentiles on uniform buckets, one valid JSON
   object per line, no interleaving under concurrent writers) are load
   bearing for the stats reply and the --log file. *)

module H = Sc_obs.Histogram
module Slog = Sc_obs.Slog
module Json = Sc_obs.Json

(* --- histograms --- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "0 lands in bucket 0" 0 (H.bucket_of 0);
  Alcotest.(check int) "negative clamps to bucket 0" 0 (H.bucket_of (-5));
  Alcotest.(check int) "1 lands in bucket 1" 1 (H.bucket_of 1);
  Alcotest.(check int) "2 lands in bucket 2" 2 (H.bucket_of 2);
  Alcotest.(check int) "3 lands in bucket 2" 2 (H.bucket_of 3);
  Alcotest.(check int) "4 lands in bucket 3" 3 (H.bucket_of 4);
  (* power-of-two edges: 2^i opens bucket i+1, 2^i - 1 closes bucket i *)
  for i = 1 to 20 do
    let lo = 1 lsl i in
    Alcotest.(check int)
      (Printf.sprintf "2^%d opens bucket %d" i (i + 1))
      (i + 1) (H.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1 closes bucket %d" i i)
      i
      (H.bucket_of (lo - 1))
  done;
  Alcotest.(check (pair int int)) "bounds of bucket 0" (0, 0) (H.bounds 0);
  Alcotest.(check (pair int int)) "bounds of bucket 1" (1, 1) (H.bounds 1);
  Alcotest.(check (pair int int)) "bounds of bucket 5" (16, 31) (H.bounds 5);
  (* bounds and bucket_of agree on every bucket edge *)
  for i = 1 to 30 do
    let lo, hi = H.bounds i in
    Alcotest.(check int) "lo maps back" i (H.bucket_of lo);
    Alcotest.(check int) "hi maps back" i (H.bucket_of hi)
  done

let test_empty_histogram () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 0 (H.max_value h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (H.mean h);
  Alcotest.(check int) "percentile" 0 (H.percentile h 99.0)

let test_exact_percentiles () =
  (* all samples in a rank's bucket equal -> the estimate is exact.
     100 samples: 50x 10us, 45x 100us, 5x 1000us. *)
  let h = H.create () in
  for _ = 1 to 50 do H.add h 10 done;
  for _ = 1 to 45 do H.add h 100 done;
  for _ = 1 to 5 do H.add h 1000 done;
  Alcotest.(check int) "count" 100 (H.count h);
  Alcotest.(check int) "min" 10 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  Alcotest.(check int) "p50 = 10us (rank 50 is the last 10)" 10
    (H.percentile h 50.0);
  Alcotest.(check int) "p95 = 100us (rank 95 is the last 100)" 100
    (H.percentile h 95.0);
  Alcotest.(check int) "p99 = 1000us" 1000 (H.percentile h 99.0);
  Alcotest.(check int) "p0 clamps to rank 1" 10 (H.percentile h 0.0);
  Alcotest.(check int) "p100 is the top bucket" 1000 (H.percentile h 100.0);
  let sum = (50 * 10) + (45 * 100) + (5 * 1000) in
  Alcotest.(check (float 1e-9)) "mean"
    (float_of_int sum /. 100.0)
    (H.mean h)

let test_percentile_bounded_error () =
  (* mixed values within one bucket: the estimate is the bucket mean,
     which must sit inside the bucket's bounds *)
  let h = H.create () in
  List.iter (H.add h) [ 17; 19; 23; 29; 31 ];
  (* all in bucket [16..31] *)
  let p = H.percentile h 50.0 in
  Alcotest.(check bool) "estimate within the rank's bucket" true
    (p >= 16 && p <= 31);
  Alcotest.(check int) "estimate is the rounded bucket mean"
    (int_of_float (Float.round (float_of_int (17 + 19 + 23 + 29 + 31) /. 5.0)))
    p

let test_merge () =
  let a = H.create () and b = H.create () in
  for _ = 1 to 10 do H.add a 8 done;
  for _ = 1 to 10 do H.add b 64 done;
  let m = H.merge a b in
  Alcotest.(check int) "merged count" 20 (H.count m);
  Alcotest.(check int) "merged min" 8 (H.min_value m);
  Alcotest.(check int) "merged max" 64 (H.max_value m);
  Alcotest.(check int) "merged p25 from a's bucket" 8 (H.percentile m 25.0);
  Alcotest.(check int) "merged p75 from b's bucket" 64 (H.percentile m 75.0);
  (* inputs unchanged *)
  Alcotest.(check int) "a unchanged" 10 (H.count a);
  Alcotest.(check int) "b unchanged" 10 (H.count b)

let test_histogram_concurrent_add () =
  let h = H.create () in
  let per_thread = 1000 in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do H.add h (1 lsl (i mod 4)) done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "no lost updates" (8 * per_thread) (H.count h)

(* --- structured JSONL log --- *)

let with_log ?level f =
  let path = Filename.temp_file "scc-test-slog" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Slog.create ?level path with
      | Ok t ->
        Fun.protect ~finally:(fun () -> Slog.close t) (fun () -> f t)
      | Error e -> Alcotest.failf "slog create: %s" e);
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          List.rev !lines))

let parse_line line =
  match Json.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "line is not valid JSON: %s (%s)" line e

let test_slog_lines_parse () =
  let lines =
    with_log (fun t ->
        Slog.log t Slog.Info ~event:"start" [ ("socket", Json.Str "/tmp/x") ];
        Slog.log t Slog.Warn ~event:"trace_write_failed"
          [ ("error", Json.Str "disk \"full\"\nno space") ];
        Slog.log t Slog.Error ~event:"boom" [ ("n", Json.Num 3.0) ])
  in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  List.iter
    (fun line ->
      let v = parse_line line in
      (match Json.member "ts" v with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "ts missing");
      match Json.member "level" v with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.fail "level missing")
    lines;
  let second = parse_line (List.nth lines 1) in
  Alcotest.(check bool) "escaped payload survives the roundtrip" true
    (Json.member "error" second = Some (Json.Str "disk \"full\"\nno space"));
  Alcotest.(check bool) "event field carried" true
    (Json.member "event" second = Some (Json.Str "trace_write_failed"))

let test_slog_level_filter () =
  let lines =
    with_log ~level:Slog.Warn (fun t ->
        Alcotest.(check bool) "would_log debug" false (Slog.would_log t Slog.Debug);
        Alcotest.(check bool) "would_log info" false (Slog.would_log t Slog.Info);
        Alcotest.(check bool) "would_log warn" true (Slog.would_log t Slog.Warn);
        Alcotest.(check bool) "would_log error" true (Slog.would_log t Slog.Error);
        Slog.log t Slog.Debug ~event:"dropped" [];
        Slog.log t Slog.Info ~event:"dropped" [];
        Slog.log t Slog.Warn ~event:"kept" [];
        Slog.log t Slog.Error ~event:"kept" [])
  in
  Alcotest.(check int) "only warn and error written" 2 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "kept line" true
        (Json.member "event" (parse_line line) = Some (Json.Str "kept")))
    lines

let test_slog_level_strings () =
  List.iter
    (fun l ->
      match Slog.level_of_string (Slog.level_to_string l) with
      | Ok l' -> Alcotest.(check bool) "level roundtrip" true (l = l')
      | Error e -> Alcotest.fail e)
    [ Slog.Debug; Slog.Info; Slog.Warn; Slog.Error ];
  match Slog.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad level accepted"

let test_slog_concurrent_writers () =
  let nthreads = 8 and per_thread = 200 in
  let lines =
    with_log (fun t ->
        let threads =
          List.init nthreads (fun i ->
              Thread.create
                (fun () ->
                  for j = 1 to per_thread do
                    Slog.log t Slog.Info ~event:"tick"
                      [ ("thread", Json.Num (float_of_int i))
                      ; ("seq", Json.Num (float_of_int j))
                      ]
                  done)
                ())
        in
        List.iter Thread.join threads)
  in
  Alcotest.(check int) "every write is one line" (nthreads * per_thread)
    (List.length lines);
  (* no interleaving: every line parses and carries both fields *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun line ->
      let v = parse_line line in
      match (Json.member "thread" v, Json.member "seq" v) with
      | Some (Json.Num th), Some (Json.Num _) ->
        let th = int_of_float th in
        Hashtbl.replace seen th (1 + Option.value ~default:0 (Hashtbl.find_opt seen th))
      | _ -> Alcotest.fail "line missing its fields")
    lines;
  for i = 0 to nthreads - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "thread %d wrote all its lines" i)
      (Some per_thread) (Hashtbl.find_opt seen i)
  done

let suite =
  [ Alcotest.test_case "histogram bucket boundaries" `Quick
      test_bucket_boundaries
  ; Alcotest.test_case "empty histogram" `Quick test_empty_histogram
  ; Alcotest.test_case "exact percentiles" `Quick test_exact_percentiles
  ; Alcotest.test_case "percentile bounded error" `Quick
      test_percentile_bounded_error
  ; Alcotest.test_case "merge" `Quick test_merge
  ; Alcotest.test_case "concurrent add" `Quick test_histogram_concurrent_add
  ; Alcotest.test_case "jsonl lines parse" `Quick test_slog_lines_parse
  ; Alcotest.test_case "level filtering" `Quick test_slog_level_filter
  ; Alcotest.test_case "level strings" `Quick test_slog_level_strings
  ; Alcotest.test_case "concurrent writers" `Quick
      test_slog_concurrent_writers
  ]
