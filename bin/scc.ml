(* scc — the silicon compiler command line.

   Subcommands:
     scc layout FILE    compile a layout-language program to CIF
     scc behavior FILE  compile an ISP behavioral description to CIF
     scc isp DESIGN     compile a builtin design (or ISP file), with profiling
     scc verilog FILE   compile a synthesizable-Verilog module to CIF
     scc drc FILE       design-rule-check a CIF file
     scc stats FILE     report area/device statistics of a CIF file
     scc sim FILE       interpret an ISP description with a trivial stimulus
     scc extract FILE   extract the transistor circuit from CIF geometry
     scc svg FILE       render CIF artwork as SVG
     scc equiv A B      prove two circuits equivalent (BDD engine)
     scc report FILE    render a metrics snapshot as a human table
     scc diff BASE CUR  classify metric deltas against a baseline;
                        exit 1 on a QoR regression

   layout/behavior also take --verify, which formally certifies the
   stage: behavior equivalence-checks the optimizer's output against the
   raw translation, layout equivalence-checks the primitive cell
   artwork (extracted and exhaustively tabulated at switch level)
   against its gate specification.

   layout/behavior/isp take --stats (per-stage time/counter table from
   the Sc_obs spans), --trace FILE (Chrome trace-event JSON for
   chrome://tracing or ui.perfetto.dev) and --metrics FILE (versioned
   QoR + runtime snapshot JSON, the input of report/diff).  They also
   take --stage-cache DIR (persist every pass artifact of the
   Sc_pipeline pass manager, so recompiles are incremental) and
   --explain (print which passes ran vs hit the cache). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)

let report_compiled (c : Sc_core.Compiler.compiled) =
  Printf.eprintf "cell %s: %dx%d lambda, %d transistors, DRC %s\n%!"
    c.Sc_core.Compiler.layout.Sc_layout.Cell.name
    (Sc_layout.Cell.width c.Sc_core.Compiler.layout)
    (Sc_layout.Cell.height c.Sc_core.Compiler.layout)
    c.Sc_core.Compiler.transistors
    (if c.Sc_core.Compiler.drc_violations = 0 then "clean"
     else string_of_int c.Sc_core.Compiler.drc_violations ^ " violations")

(* --- layout --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input file.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write CIF to $(docv).")

let entry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "entry" ] ~docv:"CELL" ~doc:"Entry cell (default: last defined).")

let args_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "a"; "args" ] ~docv:"INTS" ~doc:"Entry cell arguments.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Formally certify the compilation stage with the BDD engine.")

(* --- parallelism / caching --- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel stages (DRC sharding, \
           placement restarts, equivalence cones).  1 (the default) is \
           strictly sequential; output is byte-identical at every level.")

(* sizes the process-default pool before running [k] *)
let with_jobs jobs k =
  Sc_par.Pool.set_default_size jobs;
  k ()

let stage_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stage-cache" ] ~docv:"DIR"
        ~doc:
          "Persist every pass's artifact content-addressed under \
           $(docv).  Identical inputs are stage-level hits, even \
           across processes: recompiling after a $(b,--restarts) \
           change reruns only place and later passes, and an \
           unchanged source reruns nothing.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Deprecated alias for $(b,--stage-cache).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "After compiling, print one line per pass saying whether it \
           ran or was served from the stage cache (memory or disk).")

let restarts_arg =
  Arg.(
    value & opt int 0
    & info [ "restarts" ] ~docv:"N"
        ~doc:
          "Extra random-start placements refined concurrently (best \
           HPWL wins; 0 = constructive placement only).")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Translation-validate the compilation: every \
           netlist-to-netlist pass (the optimizer, the PLA minimizer) \
           must prove its output equivalent to its own input with the \
           BDD engine before the pipeline continues.  A refused pass \
           exits 1 naming the pass; proofs are recorded in the metrics \
           snapshot (equiv.certified_passes) and cached in the stage \
           cache, so certified warm rebuilds stay all-hit.")

let inject_fault_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "inject-fault" ] ~docv:"I"
        ~doc:
          "Deliberately miscompile: flip the first mutable gate at or \
           after index $(docv) of the optimized netlist before it \
           leaves the optimize pass (fault-injection demo — with \
           $(b,--certify) the pipeline must refuse it).")

(* stage-cache plumbing shared by the compile commands: enable the
   pipeline store (when asked) and certification (when asked), run,
   then print the per-pass outcomes (--explain) and cache stats to
   stderr *)
let with_pipeline ~stage_cache ~cache_dir ~explain ?(certify = false) k =
  let dir = match stage_cache with Some _ -> stage_cache | None -> cache_dir in
  (match dir with
  | Some dir -> Sc_pipeline.Pipeline.enable_cache ~dir ()
  | None -> ());
  if certify then Sc_pipeline.Pipeline.enable_certify ();
  Sc_pipeline.Pipeline.reset_log ();
  let r = k () in
  if explain then
    Format.eprintf "%a%!" Sc_pipeline.Pipeline.pp_explain ();
  if dir <> None then
    List.iter
      (fun (name, s) ->
        Printf.eprintf "cache %s: %s\n%!" name
          (Format.asprintf "%a" Sc_cache.Cache.pp_stats s))
      (Sc_pipeline.Pipeline.cache_stats ());
  r

let report_diag d =
  Printf.eprintf "error: %s\n" (Sc_pipeline.Diag.to_string d);
  1

(* --- observability: --stats / --trace / --metrics --- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print a per-stage timing and counter table after compiling.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write Chrome trace-event JSON to $(docv) (open in \
           chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable QoR + runtime snapshot (versioned \
           JSON) to $(docv); render it with $(b,scc report), compare \
           against a baseline with $(b,scc diff).")

(* [instrumented ~stats ~trace ~metrics ~design ~table k] runs [k] with
   the span recorder on when any sink was requested; [table] is where
   the summary goes (stdout for isp, stderr for the CIF-printing
   commands).  The snapshot is captured before the recorder is
   disabled, even when [k] fails, so a crashing compile still leaves
   its partial telemetry behind. *)
let instrumented ~stats ~trace ~metrics ~design ~table k =
  let want = stats || trace <> None || metrics <> None in
  if want then begin
    Sc_obs.Obs.reset ();
    Sc_obs.Obs.enable ()
  end;
  let finish () =
    if want then begin
      if stats then Format.fprintf table "%a@?" Sc_obs.Obs.pp_summary ();
      (match trace with
      | Some path ->
        Sc_obs.Obs.write_trace path;
        Printf.eprintf "trace written to %s\n%!" path
      | None -> ());
      (match metrics with
      | Some path ->
        Sc_metrics.Metrics.write path (Sc_metrics.Metrics.capture ~design ());
        Printf.eprintf "metrics written to %s\n%!" path
      | None -> ());
      Sc_obs.Obs.disable ()
    end
  in
  match k () with
  | code ->
    finish ();
    code
  | exception e ->
    finish ();
    raise e

let design_of_path path = Filename.remove_extension (Filename.basename path)

(* certify the primitive cell library: extract each cell's masks,
   tabulate the transistor netlist at switch level, and prove the result
   equal to the gate the library claims the cell implements *)
let verify_cell_library () =
  let gate_ref name kind ins =
    let b = Sc_netlist.Builder.create name in
    let nets = List.map (fun n -> (Sc_netlist.Builder.input b n 1).(0)) ins in
    Sc_netlist.Builder.output b "y"
      [| Sc_netlist.Builder.gate b kind (Array.of_list nets) |];
    Sc_netlist.Builder.finish b
  in
  let bad =
    List.fold_left
      (fun bad (name, cell, kind, ins) ->
        match
          Sc_equiv.Checker.check_artwork cell ~inputs:ins ~outputs:[ "y" ]
            (gate_ref name kind ins)
        with
        | Sc_equiv.Checker.Equivalent ->
          Printf.eprintf "verify: artwork %-6s equivalent to its gate\n%!" name;
          bad
        | Sc_equiv.Checker.Not_equivalent _ as v ->
          Printf.eprintf "verify: artwork %s FAILED: %s\n%!" name
            (Format.asprintf "%a" Sc_equiv.Checker.pp_verdict v);
          bad + 1)
      0
      [ ("inv", Sc_stdcell.Nmos.inv (), Sc_netlist.Gate.Inv, [ "a" ])
      ; ("nand2", Sc_stdcell.Nmos.nand 2, Sc_netlist.Gate.Nand2, [ "a"; "b" ])
      ; ("nand3", Sc_stdcell.Nmos.nand 3, Sc_netlist.Gate.Nand3, [ "a"; "b"; "c" ])
      ; ("nor2", Sc_stdcell.Nmos.nor2 (), Sc_netlist.Gate.Nor2, [ "a"; "b" ])
      ]
  in
  (* and the full library's artwork passes DRC (memoized per geometry) *)
  List.fold_left
    (fun bad kind ->
      if Sc_stdcell.Library.drc_clean kind then bad
      else begin
        Printf.eprintf "verify: cell %s FAILED DRC: %d violations\n%!"
          (Sc_netlist.Gate.to_string kind)
          (Sc_stdcell.Library.drc_violations kind);
        bad + 1
      end)
    bad Sc_netlist.Gate.all

let layout_cmd =
  let run file entry args output verify stats trace metrics jobs stage_cache
      cache_dir explain certify =
    with_jobs jobs @@ fun () ->
    with_pipeline ~stage_cache ~cache_dir ~explain ~certify @@ fun () ->
    instrumented ~stats ~trace ~metrics ~design:(design_of_path file)
      ~table:Format.err_formatter (fun () ->
        match Sc_core.Compiler.compile_layout ?entry ~args (read_file file) with
        | Error d -> report_diag d
        | Ok c ->
          report_compiled c;
          write_out output c.Sc_core.Compiler.cif;
          if verify then (if verify_cell_library () = 0 then 0 else 1) else 0)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Compile a layout-language program to CIF.")
    Term.(
      const run $ file_arg $ entry_arg $ args_arg $ output_arg $ verify_arg
      $ stats_arg $ trace_arg $ metrics_arg $ jobs_arg $ stage_cache_arg
      $ cache_dir_arg $ explain_arg $ certify_arg)

(* --- behavior --- *)

let style_arg =
  Arg.(
    value
    & opt (enum [ ("gates", Sc_core.Compiler.Random_logic); ("pla", Sc_core.Compiler.Pla_control) ])
        Sc_core.Compiler.Random_logic
    & info [ "s"; "style" ] ~docv:"STYLE"
        ~doc:"Control style: $(b,gates) (random logic) or $(b,pla).")

let modular_arg =
  Arg.(
    value & flag
    & info [ "modular" ]
        ~doc:
          "Require separate compilation: the source must carry a \
           top-level $(b,chip) block binding module instances \
           (detected automatically otherwise).  Each module block \
           compiles through its own stage-cached sub-pipeline and the \
           chip is macro-assembled from the per-module layouts; with \
           $(b,--explain), per-module rows appear as module:pass.")

let check_modular ~modular src k =
  if modular && not (Sc_core.Chipdesc.is_modular src) then begin
    Printf.eprintf
      "error: --modular requires a chip block binding module instances\n";
    2
  end
  else k ()

let behavior_run ?restarts ?inject_fault src style output verify =
  match Sc_core.Compiler.compile_behavior ~style ?restarts ?inject_fault src with
  | Error d -> report_diag d
  | Ok (c, circuit) ->
    let s = Sc_netlist.Circuit.stats circuit in
    Printf.eprintf "netlist: %d gates, %d flip-flops\n%!"
      s.Sc_netlist.Circuit.gate_total s.Sc_netlist.Circuit.flipflops;
    report_compiled c;
    (match output with
    | Some _ -> write_out output c.Sc_core.Compiler.cif
    | None -> print_string c.Sc_core.Compiler.cif);
    if verify then begin
      (* the self-check re-synthesizes and proves the optimized netlist
         equivalent to the raw translation *)
      match Sc_rtl.Parser.parse src with
      | Error e ->
        Printf.eprintf "verify: parse error: %s\n" e;
        1
      | Ok design -> (
        match Sc_synth.Synth.gates ~selfcheck:true design with
        | _ ->
          Printf.eprintf
            "verify: optimized netlist proven equivalent to raw \
             translation\n%!";
          0
        | exception Sc_pipeline.Diag.Error d ->
          Printf.eprintf "verify: %s\n" (Sc_pipeline.Diag.to_string d);
          1)
    end
    else 0

let behavior_cmd =
  let run file style output verify stats trace metrics jobs stage_cache
      cache_dir explain restarts certify inject_fault modular =
    let src = read_file file in
    check_modular ~modular src @@ fun () ->
    with_jobs jobs @@ fun () ->
    with_pipeline ~stage_cache ~cache_dir ~explain ~certify @@ fun () ->
    instrumented ~stats ~trace ~metrics ~design:(design_of_path file)
      ~table:Format.err_formatter (fun () ->
        behavior_run ~restarts ?inject_fault src style output verify)
  in
  Cmd.v
    (Cmd.info "behavior" ~doc:"Compile an ISP behavioral description to CIF.")
    Term.(
      const run $ file_arg $ style_arg $ output_arg $ verify_arg $ stats_arg
      $ trace_arg $ metrics_arg $ jobs_arg $ stage_cache_arg $ cache_dir_arg
      $ explain_arg $ restarts_arg $ certify_arg $ inject_fault_arg
      $ modular_arg)

(* --- isp: builtin designs (or files) through the full behavioral path,
   built for profiling: the stage table goes to stdout, CIF is written
   only on -o *)

let isp_cmd =
  let design_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DESIGN"
          ~doc:
            "A builtin design ($(b,counter), $(b,traffic), $(b,alu4), \
             $(b,gray), $(b,seqdet), $(b,pdp8), $(b,pdp8_dp), $(b,system)) or an ISP \
             file path.")
  in
  let run design style output stats trace metrics jobs stage_cache cache_dir
      explain restarts certify inject_fault modular =
    let src =
      match Sc_core.Designs.builtin design with
      | Some _ as s -> s
      | None when Sys.file_exists design -> Some (read_file design)
      | None -> None
    in
    match src with
    | None ->
      Printf.eprintf "error: %s is neither a builtin design nor a file\n"
        design;
      2
    | Some src ->
      check_modular ~modular src @@ fun () ->
      with_jobs jobs @@ fun () ->
      with_pipeline ~stage_cache ~cache_dir ~explain ~certify @@ fun () ->
      instrumented ~stats ~trace ~metrics ~design:(design_of_path design)
        ~table:Format.std_formatter (fun () ->
          match
            Sc_core.Compiler.compile_behavior ~style ~restarts ?inject_fault
              src
          with
          | Error d -> report_diag d
          | Ok (c, circuit) ->
            let s = Sc_netlist.Circuit.stats circuit in
            Printf.eprintf "netlist: %d gates, %d flip-flops\n%!"
              s.Sc_netlist.Circuit.gate_total s.Sc_netlist.Circuit.flipflops;
            report_compiled c;
            (match output with
            | Some _ -> write_out output c.Sc_core.Compiler.cif
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "isp"
       ~doc:
         "Compile a builtin ISP design (or file) to layout, reporting \
          where the time and area go (see --stats/--trace).")
    Term.(
      const run $ design_arg $ style_arg $ output_arg $ stats_arg $ trace_arg
      $ metrics_arg $ jobs_arg $ stage_cache_arg $ cache_dir_arg $ explain_arg
      $ restarts_arg $ certify_arg $ inject_fault_arg $ modular_arg)

(* --- verilog: the second behavioral frontend; elaborates to the same
   design IR as the ISP parser and runs the identical gates pipeline *)

let verilog_cmd =
  let dump_isp_arg =
    Arg.(
      value & flag
      & info [ "dump-isp" ]
          ~doc:
            "Print the elaborated design in the ISP-level IR instead of \
             compiling (shows exactly what the shared pipeline will see).")
  in
  let run file output dump_isp stats trace metrics jobs stage_cache cache_dir
      explain restarts certify inject_fault =
    let src = read_file file in
    if dump_isp then (
      match Sc_core.Compiler.verilog_design src with
      | Error d -> report_diag d
      | Ok design ->
        Format.printf "%a@." Sc_rtl.Ast.pp design;
        0)
    else
      with_jobs jobs @@ fun () ->
      with_pipeline ~stage_cache ~cache_dir ~explain ~certify @@ fun () ->
      instrumented ~stats ~trace ~metrics ~design:(design_of_path file)
        ~table:Format.std_formatter (fun () ->
          match Sc_core.Compiler.compile_verilog ~restarts ?inject_fault src with
          | Error d -> report_diag d
          | Ok (c, circuit) ->
            let s = Sc_netlist.Circuit.stats circuit in
            Printf.eprintf "netlist: %d gates, %d flip-flops\n%!"
              s.Sc_netlist.Circuit.gate_total s.Sc_netlist.Circuit.flipflops;
            report_compiled c;
            (match output with
            | Some _ -> write_out output c.Sc_core.Compiler.cif
            | None -> ());
            0)
  in
  Cmd.v
    (Cmd.info "verilog"
       ~doc:
         "Compile a synthesizable-Verilog module to layout through the \
          shared behavioral pipeline (the supported subset is documented \
          in docs/VERILOG.md).")
    Term.(
      const run $ file_arg $ output_arg $ dump_isp_arg $ stats_arg $ trace_arg
      $ metrics_arg $ jobs_arg $ stage_cache_arg $ cache_dir_arg $ explain_arg
      $ restarts_arg $ certify_arg $ inject_fault_arg)

(* --- drc / stats on CIF files --- *)

let with_cif file k =
  match Sc_cif.Elaborate.of_string (read_file file) with
  | Error e ->
    Printf.eprintf "error: %s\n" (Sc_cif.Elaborate.error_to_string e);
    1
  | Ok cell -> k cell

let drc_cmd =
  let run file jobs =
    with_jobs jobs @@ fun () ->
    with_cif file (fun cell ->
        let vs = Sc_drc.Checker.check cell in
        Sc_drc.Checker.report Format.std_formatter vs;
        if vs = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "drc" ~doc:"Design-rule-check a CIF file.")
    Term.(const run $ file_arg $ jobs_arg)

let stats_cmd =
  let run file =
    with_cif file (fun cell ->
        Format.printf "%a@." Sc_layout.Stats.pp (Sc_layout.Stats.measure cell);
        0)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Report area and device statistics of a CIF file.")
    Term.(const run $ file_arg)

(* --- extract --- *)

let extract_cmd =
  let run file =
    with_cif file (fun cell ->
        let net = Sc_extract.Extractor.extract cell in
        Format.printf "%a@." Sc_extract.Extractor.pp net;
        List.iter (fun w -> Printf.printf "  warning: %s\n" w)
          net.Sc_extract.Extractor.warnings;
        List.iter
          (fun (name, node) -> Printf.printf "  port %s = node %d\n" name node)
          net.Sc_extract.Extractor.named;
        if net.Sc_extract.Extractor.warnings = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract the transistor circuit from a CIF file's geometry.")
    Term.(const run $ file_arg)

(* --- svg --- *)

let svg_cmd =
  let run file output =
    with_cif file (fun cell ->
        let svg = Sc_layout.Render.to_svg cell in
        write_out output svg;
        0)
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Render a CIF file as SVG artwork.")
    Term.(const run $ file_arg $ output_arg)

(* --- sim --- *)

let cycles_arg =
  Arg.(value & opt int 16 & info [ "n"; "cycles" ] ~docv:"N" ~doc:"Cycles to run.")

let sim_cmd =
  let run file cycles =
    match Sc_rtl.Parser.parse (read_file file) with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      1
    | Ok design -> (
      match Sc_rtl.Check.check design with
      | e :: _ ->
        Printf.eprintf "check error: %s\n" e;
        1
      | [] ->
        let t = Sc_rtl.Interp.create design in
        let has_reset =
          List.exists
            (fun (d : Sc_rtl.Ast.decl) -> d.dname = "reset")
            design.Sc_rtl.Ast.inputs
        in
        for cyc = 0 to cycles - 1 do
          if has_reset then
            Sc_rtl.Interp.set_input t "reset" (if cyc = 0 then 1 else 0);
          Sc_rtl.Interp.step t;
          Printf.printf "cycle %2d:" cyc;
          List.iter
            (fun (d : Sc_rtl.Ast.decl) ->
              Printf.printf " %s=%d" d.dname (Sc_rtl.Interp.output t d.dname))
            design.Sc_rtl.Ast.outputs;
          print_newline ()
        done;
        0)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Interpret an ISP description (reset asserted on cycle 0, other \
          inputs zero).")
    Term.(const run $ file_arg $ cycles_arg)

(* --- equiv --- *)

(* A circuit spec is one of:
     hand:NAME   a hand-built baseline from Sc_core.Designs
     isp:NAME    a builtin ISP source, synthesized
     PATH        an ISP file, synthesized *)
let resolve_circuit spec =
  let synth src =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse src)).Sc_synth.Synth.circuit
  in
  try
    match String.index_opt spec ':' with
  | Some i when String.sub spec 0 i = "hand" -> (
    match String.sub spec (i + 1) (String.length spec - i - 1) with
    | "counter" -> Ok (Sc_core.Designs.hand_counter ())
    | "traffic" -> Ok (Sc_core.Designs.hand_traffic ())
    | "alu" -> Ok (Sc_core.Designs.hand_alu ())
    | "pdp8" -> Ok (Sc_core.Designs.hand_pdp8 ())
    | "pdp8_dp" -> Ok (Sc_core.Designs.hand_pdp8_dp ())
    | n -> Error ("unknown hand design " ^ n))
  | Some i when String.sub spec 0 i = "isp" -> (
    match
      Sc_core.Designs.builtin
        (String.sub spec (i + 1) (String.length spec - i - 1))
    with
    | Some src -> Ok (synth src)
    | None ->
      Error
        ("unknown builtin design "
        ^ String.sub spec (i + 1) (String.length spec - i - 1)))
    | _ ->
      if not (Sys.file_exists spec) then Error ("no such file: " ^ spec)
      else if Filename.check_suffix spec ".v" then (
        match Sc_core.Compiler.verilog_design (read_file spec) with
        | Error d -> Error (spec ^ ": " ^ Sc_pipeline.Diag.to_string d)
        | Ok design -> Ok (Sc_synth.Synth.gates design).Sc_synth.Synth.circuit)
      else (
        match Sc_rtl.Parser.parse (read_file spec) with
        | Error e -> Error (spec ^ ": " ^ e)
        | Ok design -> Ok (Sc_synth.Synth.gates design).Sc_synth.Synth.circuit)
  with Sc_pipeline.Diag.Error d ->
    Error (spec ^ ": " ^ Sc_pipeline.Diag.to_string d)

let equiv_cmd =
  let spec_arg idx name =
    Arg.(
      required
      & pos idx (some string) None
      & info [] ~docv:name
          ~doc:
            "Circuit: $(b,hand:)NAME (hand baseline), $(b,isp:)NAME \
             (builtin ISP source, synthesized), an ISP file path, or a \
             Verilog file path (*.v, elaborated then synthesized).")
  in
  let k_arg =
    Arg.(
      value & opt int 8
      & info [ "k" ] ~docv:"K"
          ~doc:"Unrolling depth for sequential circuits (default 8).")
  in
  let mutate_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mutate" ] ~docv:"I"
          ~doc:"Flip gate $(docv) of the second circuit before checking \
                (fault-injection demo).")
  in
  let order_arg =
    Arg.(
      value
      & opt (enum [ ("decl", Sc_equiv.Miter.Declaration); ("dfs", Sc_equiv.Miter.Fanin_dfs) ])
          Sc_equiv.Miter.Fanin_dfs
      & info [ "order" ] ~docv:"ORDER"
          ~doc:"BDD variable order: $(b,decl) or $(b,dfs) (default).")
  in
  let run a_spec b_spec k mutate order jobs =
    with_jobs jobs @@ fun () ->
    match (resolve_circuit a_spec, resolve_circuit b_spec) with
    | Error e, _ | _, Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok a, Ok b -> (
      match
        let b =
          match mutate with
          | None -> b
          | Some i -> Sc_equiv.Checker.mutate b i
        in
        (* -j > 1 checks one output cone per task, each with its own
           manager; the single-manager path reports its node count *)
        let verdict, nodes =
          if jobs > 1 then
            (Sc_equiv.Checker.check_cones ~order ~k a b, None)
          else begin
            let man = Sc_equiv.Bdd.create () in
            (Sc_equiv.Checker.check ~man ~order ~k a b, Some man)
          end
        in
        (verdict, nodes, b)
      with
      | exception Invalid_argument e ->
        Printf.eprintf "error: %s\n" e;
        2
      | exception Sc_equiv.Miter.Mismatch e ->
        Printf.eprintf "port mismatch: %s\n" e;
        2
      | Sc_equiv.Checker.Equivalent, nodes, _ ->
        (match nodes with
        | Some man ->
          Printf.printf "equivalent (%d BDD nodes)\n"
            (Sc_equiv.Bdd.node_count man)
        | None -> Printf.printf "equivalent\n");
        0
      | (Sc_equiv.Checker.Not_equivalent cex as v), _, b ->
        Format.printf "@[<v>%a@]@." Sc_equiv.Checker.pp_verdict v;
        let verdict = Sc_equiv.Checker.replay a b cex in
        Printf.printf "replay through the event-driven simulator: %s\n"
          (match verdict with
          | Sc_equiv.Checker.Reproduced -> "confirmed"
          | Sc_equiv.Checker.Not_reproduced | Sc_equiv.Checker.Indeterminate ->
            Sc_equiv.Checker.replay_verdict_to_string verdict);
        1)
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Prove two circuits equivalent with the BDD engine (bounded \
          unrolling when registers are present), or print a concrete \
          counterexample.")
    Term.(
      const run $ spec_arg 0 "A" $ spec_arg 1 "B" $ k_arg $ mutate_arg
      $ order_arg $ jobs_arg)

(* --- report / diff: the QoR telemetry surface --- *)

let report_cmd =
  let run file =
    match Sc_metrics.Metrics.read file with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok s ->
      Format.printf "%a@?" Sc_metrics.Metrics.pp_snapshot s;
      0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a metrics snapshot (written by --metrics) as a human \
          table.")
    Term.(const run $ file_arg)

let diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline snapshot JSON.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current snapshot JSON.")
  in
  let thresholds_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "thresholds" ] ~docv:"FILE"
          ~doc:
            "Per-metric neutrality thresholds: a JSON object mapping a \
             key or prefix pattern (ending in *) to {\"rel\": r, \
             \"abs\": a}.  Unmatched QoR keys compare exactly; runtime \
             keys default to rel 0.25 / abs 20000 us.")
  in
  let gate_runtime_arg =
    Arg.(
      value & flag
      & info [ "gate-runtime" ]
          ~doc:
            "Also fail (exit 1) on runtime regressions.  Off by \
             default: wall-clock is machine-dependent, so runtime \
             deltas are reported but only QoR regressions gate.")
  in
  let run baseline current thresholds gate_runtime =
    let load_thresholds () =
      match thresholds with
      | None -> Ok Sc_metrics.Metrics.default_thresholds
      | Some path -> (
        match Sc_metrics.Metrics.thresholds_of_string (read_file path) with
        | Ok t -> Ok t
        | Error e -> Error (path ^ ": " ^ e))
    in
    match
      (Sc_metrics.Metrics.read baseline, Sc_metrics.Metrics.read current,
       load_thresholds ())
    with
    | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok base, Ok cur, Ok thresholds ->
      let report = Sc_metrics.Metrics.diff ~thresholds base cur in
      Format.printf "%a@?" Sc_metrics.Metrics.pp_report report;
      if Sc_metrics.Metrics.gate ~runtime:gate_runtime report then begin
        Printf.eprintf "quality gate: REGRESSED against %s\n" baseline;
        1
      end
      else 0
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Classify every metric delta between two snapshots as \
          improved, neutral or regressed; exit 1 when the quality gate \
          trips.")
    Term.(
      const run $ baseline_arg $ current_arg $ thresholds_arg
      $ gate_runtime_arg)

(* --- serve / client: the compile daemon --- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Append a structured JSONL log to $(docv): one JSON object per \
           line — per request (verb, design, digest, status, duration, \
           dedup/cache/certify outcome) plus daemon lifecycle events.")

let serve_log_level_arg =
  let level =
    Arg.conv
      ( (fun s ->
          match Sc_obs.Slog.level_of_string s with
          | Ok l -> Ok l
          | Error e -> Error (`Msg e))
      , fun ppf l -> Format.pp_print_string ppf (Sc_obs.Slog.level_to_string l)
      )
  in
  Arg.(
    value
    & opt level Sc_obs.Slog.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Drop log lines below $(docv): debug, info (default), warn or \
           error.  Per-request lines are info (stats requests: debug), \
           protocol violations and failed compiles warn.")

let serve_trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Write per-execution Chrome traces to \
           $(docv)/<seq>-<design>-<digest>.trace.json (created if \
           missing).  Sampled by $(b,--trace-sample).")

let serve_trace_sample_arg =
  let sample =
    Arg.conv
      ( (fun s ->
          match String.index_opt s '/' with
          | Some i -> (
            match
              ( int_of_string_opt (String.sub s 0 i)
              , int_of_string_opt
                  (String.sub s (i + 1) (String.length s - i - 1)) )
            with
            | Some n, Some m when m >= 1 && n >= 0 -> Ok (n, m)
            | _ -> Error (`Msg (s ^ ": expected N/M with M >= 1, N >= 0")))
          | None -> Error (`Msg (s ^ ": expected N/M, e.g. 1/10")))
      , fun ppf (n, m) -> Format.fprintf ppf "%d/%d" n m )
  in
  Arg.(
    value
    & opt sample (1, 1)
    & info [ "trace-sample" ] ~docv:"N/M"
        ~doc:
          "Trace the first $(b,N) of every $(b,M) executions (default \
           1/1: every execution).  Only meaningful with \
           $(b,--trace-dir).")

let serve_exec_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "exec-domains" ] ~docv:"N"
        ~doc:
          "Bound on concurrently executing compilations (each runs on \
           its own domain with its own recorder).  Default: the \
           runtime's recommended domain count, at least 2.")

let serve_cmd =
  let run socket jobs stage_cache exec_domains log log_level trace_dir
      trace_sample =
    Sc_serve.Server.run ~jobs ?stage_cache ?exec_domains ?log ~log_level
      ?trace_dir ~trace_sample ~socket ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compile daemon: a long-running process multiplexing \
          concurrent compilations over one shared stage cache.  Clients \
          connect over the Unix-domain socket ($(b,scc client)); \
          identical in-flight requests are deduplicated; each execution \
          records into its own per-request recorder, so instrumented \
          compiles overlap.  Telemetry: per-verb latency histograms \
          ($(b,scc client stats)), a structured JSONL log ($(b,--log)), \
          and sampled Chrome traces ($(b,--trace-dir)).  SIGTERM or \
          $(b,scc client shutdown) drains connections and exits.")
    Term.(
      const run $ socket_arg $ jobs_arg $ stage_cache_arg
      $ serve_exec_domains_arg $ serve_log_arg $ serve_log_level_arg
      $ serve_trace_dir_arg $ serve_trace_sample_arg)

(* client compile specs are sent with the source inlined, so the
   daemon's dedup key is a pure function of the frame: resolve builtin
   names and file paths here, before anything hits the wire *)
let resolve_spec ?(certify = false) design style restarts =
  let style =
    match style with
    | Sc_core.Compiler.Pla_control -> "pla"
    | Sc_core.Compiler.Random_logic -> "gates"
  in
  match Sc_core.Designs.builtin design with
  | Some source ->
    Ok { Sc_serve.Protocol.design; source; style; restarts; certify }
  | None when Sys.file_exists design ->
    Ok
      { Sc_serve.Protocol.design = design_of_path design
      ; source = read_file design
      ; style
      ; restarts
      ; certify
      }
  | None ->
    Error (design ^ " is neither a builtin design nor a file")

let client_design_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DESIGN"
        ~doc:"A builtin design name or an ISP file path (read locally; \
              the source text is sent inline).")

(* one RPC against the daemon; protocol/transport failures exit 2 *)
let client_call socket req k =
  match Sc_serve.Client.one_shot socket req with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok (Sc_serve.Protocol.Error_reply { stage; message }) ->
    Printf.eprintf "error: %s: %s\n" stage message;
    1
  | Ok resp -> k resp

let unexpected () =
  Printf.eprintf "error: unexpected response from daemon\n";
  2

(* send a Compile RPC and render the daemon's reply (shared by the ISP
   and Verilog client verbs) *)
let client_compile_rpc socket spec metrics explain =
  client_call socket (Sc_serve.Protocol.Compile spec) (function
    | Sc_serve.Protocol.Compiled r ->
      Printf.eprintf
        "%s: %d gates, %d flip-flops, %d transistors, area %d, CIF %d \
         bytes, DRC %s\n%!"
        spec.Sc_serve.Protocol.design r.Sc_serve.Protocol.gates
        r.Sc_serve.Protocol.flipflops r.Sc_serve.Protocol.transistors
        r.Sc_serve.Protocol.area r.Sc_serve.Protocol.cif_bytes
        (if r.Sc_serve.Protocol.drc_violations = 0 then "clean"
         else
           string_of_int r.Sc_serve.Protocol.drc_violations ^ " violations");
      if explain then
        List.iter
          (fun (pass, status) -> Printf.eprintf "  %-10s %s\n%!" pass status)
          r.Sc_serve.Protocol.passes;
      (match metrics with
      | None -> 0
      | Some path -> (
        match Sc_metrics.Metrics.of_json r.Sc_serve.Protocol.snapshot with
        | Error e ->
          Printf.eprintf "error: bad snapshot from daemon: %s\n" e;
          2
        | Ok s ->
          Sc_metrics.Metrics.write path s;
          Printf.eprintf "metrics written to %s\n%!" path;
          0))
    | _ -> unexpected ())

let client_compile_cmd =
  let run socket design style restarts certify metrics explain =
    match resolve_spec ~certify design style restarts with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok spec -> client_compile_rpc socket spec metrics explain
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a design through the daemon; $(b,--metrics) captures \
          the per-request QoR snapshot, byte-identical to a single-shot \
          $(b,scc isp) run.")
    Term.(
      const run $ socket_arg $ client_design_arg $ style_arg $ restarts_arg
      $ certify_arg $ metrics_arg $ explain_arg)

let client_verilog_cmd =
  let vfile_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"A Verilog file path (read locally; the source text is \
                sent inline with style \"verilog\").")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Instead of printing the summary, diff the daemon's snapshot \
             against this baseline; exit 1 when the quality gate trips.")
  in
  let run socket file restarts certify metrics explain baseline =
    let spec =
      { Sc_serve.Protocol.design = design_of_path file
      ; source = read_file file
      ; style = "verilog"
      ; restarts
      ; certify
      }
    in
    match baseline with
    | None -> client_compile_rpc socket spec metrics explain
    | Some bpath -> (
      match Sc_obs.Json.parse (read_file bpath) with
      | Error e ->
        Printf.eprintf "error: %s: %s\n" bpath e;
        2
      | Ok base ->
        client_call socket
          (Sc_serve.Protocol.Diff { spec; baseline = base })
          (function
            | Sc_serve.Protocol.Diffed { report; regressed } ->
              print_string report;
              if regressed then begin
                Printf.eprintf "quality gate: REGRESSED against %s\n" bpath;
                1
              end
              else 0
            | _ -> unexpected ()))
  in
  Cmd.v
    (Cmd.info "verilog"
       ~doc:
         "Compile a Verilog file through the daemon (same shared \
          pipeline and dedup as the ISP verbs); optionally diff the \
          snapshot against a baseline.")
    Term.(
      const run $ socket_arg $ vfile_arg $ restarts_arg $ certify_arg
      $ metrics_arg $ explain_arg $ baseline_arg)

let client_report_cmd =
  let run socket design style restarts =
    match resolve_spec design style restarts with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok spec ->
      client_call socket (Sc_serve.Protocol.Report spec) (function
        | Sc_serve.Protocol.Reported table ->
          print_string table;
          0
        | _ -> unexpected ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Compile through the daemon and render the metrics table.")
    Term.(const run $ socket_arg $ client_design_arg $ style_arg $ restarts_arg)

let client_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline snapshot JSON.")
  in
  let design_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DESIGN" ~doc:"Builtin design name or ISP file path.")
  in
  let run socket baseline design style restarts =
    match Sc_obs.Json.parse (read_file baseline) with
    | Error e ->
      Printf.eprintf "error: %s: %s\n" baseline e;
      2
    | Ok base -> (
      match resolve_spec design style restarts with
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        2
      | Ok spec ->
        client_call socket
          (Sc_serve.Protocol.Diff { spec; baseline = base })
          (function
            | Sc_serve.Protocol.Diffed { report; regressed } ->
              print_string report;
              if regressed then begin
                Printf.eprintf "quality gate: REGRESSED against %s\n" baseline;
                1
              end
              else 0
            | _ -> unexpected ()))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compile through the daemon and classify metric deltas against \
          a baseline snapshot; exit 1 when the quality gate trips.")
    Term.(
      const run $ socket_arg $ baseline_arg $ design_arg $ style_arg
      $ restarts_arg)

let client_equiv_cmd =
  let spec_arg idx name =
    Arg.(
      required
      & pos idx (some string) None
      & info [] ~docv:name
          ~doc:"Circuit: $(b,hand:)NAME or $(b,isp:)NAME.")
  in
  let k_arg =
    Arg.(
      value & opt int 8
      & info [ "k" ] ~docv:"K"
          ~doc:"Unrolling depth for sequential circuits (default 8).")
  in
  let run socket a b k =
    client_call socket (Sc_serve.Protocol.Equiv { a; b; k }) (function
      | Sc_serve.Protocol.Equiv_verdict { equivalent; detail } ->
        print_endline detail;
        if equivalent then 0 else 1
      | _ -> unexpected ())
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Prove two builtin circuits equivalent through the daemon.")
    Term.(const run $ socket_arg $ spec_arg 0 "A" $ spec_arg 1 "B" $ k_arg)

let client_stats_cmd =
  let run socket =
    client_call socket Sc_serve.Protocol.Stats (function
      | Sc_serve.Protocol.Stats_reply
          { counters; uptime_s; server_version; verbs } ->
        (* header fields are absent when the daemon predates the
           telemetry protocol bump — print what we got *)
        (match server_version with
        | Some v -> Printf.printf "%-26s %s\n" "version" v
        | None -> ());
        (match uptime_s with
        | Some u -> Printf.printf "%-26s %ds\n" "uptime" u
        | None -> ());
        List.iter
          (fun (verb, n) -> Printf.printf "%-26s %d\n" ("verb." ^ verb) n)
          verbs;
        List.iter (fun (k, v) -> Printf.printf "%-26s %d\n" k v) counters;
        0
      | _ -> unexpected ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the daemon's telemetry: version, uptime, per-verb \
          request counts, server counters (requests, in-flight, dedup \
          hits, executions, peak concurrency), per-verb latency \
          percentiles (p50/p95/p99), and the aggregated stage-cache \
          statistics.")
    Term.(const run $ socket_arg)

let client_shutdown_cmd =
  let run socket =
    client_call socket Sc_serve.Protocol.Shutdown (function
      | Sc_serve.Protocol.Bye -> 0
      | _ -> unexpected ())
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit.")
    Term.(const run $ socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a running compile daemon ($(b,scc serve)) over its \
          Unix-domain socket.")
    [ client_compile_cmd; client_verilog_cmd; client_report_cmd
    ; client_diff_cmd; client_equiv_cmd; client_stats_cmd
    ; client_shutdown_cmd
    ]

let () =
  let doc = "the silicon compiler: textual descriptions to layout data" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "scc" ~version:"1.0" ~doc)
          [ layout_cmd; behavior_cmd; isp_cmd; verilog_cmd; drc_cmd
          ; stats_cmd; sim_cmd; extract_cmd; svg_cmd; equiv_cmd; report_cmd
          ; diff_cmd; serve_cmd; client_cmd
          ]))
