(** Chip assembly: the parameterised pad frame of claim C6.

    One program assembles a complete chip around any core: bonding pads
    (metal squares with overglass openings) are distributed around the
    four sides, each with a connection stub pointing inward; pad wires
    run from each pad toward the core, either to a *bound* core port
    (they land on its metal and merge with it — the connection) or
    stopping 6 lambda short of the core as a pre-routed stub.

    The assembly is pure geometry generation — every output must pass
    DRC (tests enforce it) — and its cost model (pad-ring area overhead
    versus core area) is what experiment E6 sweeps. *)

open Sc_layout

(** The bonding pad: an 80x80 metal square with a 60x60 glass opening
    and an inward stub carrying the ["pin"] port on its outer stub end. *)
val pad : unit -> Cell.t

val pad_size : int

type assembly =
  { chip : Cell.t
  ; pads : int
  ; core_area : int
  ; chip_area : int
  ; overhead : float  (** chip_area / core_area *)
  }

(** [assemble ~name ~core ~pads ()] — distribute [pads] pads round-robin
    over the four sides.  [bind] maps pad index (counter-clockwise from
    the bottom-left) to a core port name; bound pads are wired to the
    port with an L-shaped metal wire.

    @raise Invalid_argument when [pads < 4] or a bound port is missing. *)
val assemble :
  ?bind:(int * string) list -> name:string -> core:Cell.t -> pads:int -> unit ->
  assembly

val pp : Format.formatter -> assembly -> unit

(** {2 Macro assembly}

    The pad frame generalized to many cores: each module of a design
    arrives as a DRC-clean layout, is wrapped into a {e macro} carrying
    its typed interface as poly pin stubs along its top edge (one per
    signature bit, on a 14-lambda grid), and the macros are packed into
    a row under a chip-level routing channel.  Inter-macro nets and
    chip-port nets route through the channel ({!Sc_route.Channel});
    macro pins enter from below at even grid positions and chip ports
    from above at odd ones, so no column carries both a top and a
    bottom pin — the vertical constraint graph is empty and routing
    succeeds by construction.  The packed core exposes the chip's port
    bits as named poly ports on its top edge, so the existing pad frame
    ({!assemble}) wraps it unchanged. *)

val macro : name:string -> pins:string list -> Cell.t -> Cell.t
(** [macro ~name ~pins cell] — [cell] translated to the origin with one
    poly pin stub per [pins] entry along its top edge at x = 0, 14, 28,
    ..., each exposed as a port of that name. *)

type macro_spec =
  { mi_name : string  (** instance name, unique in the chip *)
  ; mi_pins : string list  (** bit-level pin names, signature order *)
  ; mi_cell : Cell.t  (** the module's DRC-clean layout *)
  }

type endpoint =
  | Chip of string  (** a chip-level port bit *)
  | Pin of string * string  (** (instance name, pin bit name) *)

type net = { net_name : string; ends : endpoint list }

type packed =
  { core : Cell.t
      (** macro row + channel + chip-port stubs; ports = [chip_ports] *)
  ; macro_count : int
  ; row_width : int
  ; row_height : int
  ; channel_tracks : int
  ; channel_height : int
  ; trunk_length : int
  }

(** [pack ~name ~macros ~chip_ports ~nets ()] — place [macros] left to
    right (pin-stub tops aligned on the channel floor), route [nets]
    through one channel, and expose [chip_ports] (bit-level names; list
    order fixes their x positions).  Instances of the same module share
    one wrapper cell, hence one CIF symbol.

    @raise Invalid_argument on duplicate instance names or nets naming
    unknown instances, pins or chip ports. *)
val pack :
  name:string ->
  macros:macro_spec list ->
  chip_ports:string list ->
  nets:net list ->
  unit ->
  packed

val pp_packed : Format.formatter -> packed -> unit
