open Sc_geom
open Sc_tech
open Sc_layout

let pad_size = 80
let ring = 120 (* pad depth (100) + clearance to the core *)
let pitch = 100

let pad_cell =
  lazy
    (Cell.make ~name:"pad"
       ~ports:[ Cell.port "pin" Layer.Metal (Rect.make 36 100 44 100) ]
       [ Cell.box Layer.Metal (Rect.make 0 0 80 80)
       ; Cell.box Layer.Glass (Rect.make 10 10 70 70)
       ; Cell.box Layer.Metal (Rect.make 36 80 44 100)
       ])

let pad () = Lazy.force pad_cell

type assembly =
  { chip : Cell.t
  ; pads : int
  ; core_area : int
  ; chip_area : int
  ; overhead : float
  }

type side = Bottom | Right | Top | Left

let assemble ?(bind = []) ~name ~core ~pads () =
  if pads < 4 then invalid_arg "Assemble.assemble: need at least 4 pads";
  let core = Cell.translate_to_origin core in
  let core_w = Cell.width core and core_h = Cell.height core in
  let per_side s =
    let s = match s with Bottom -> 0 | Right -> 1 | Top -> 2 | Left -> 3 in
    (pads + 3 - s) / 4
  in
  let nb = per_side Bottom and nr = per_side Right in
  let nt = per_side Top and nl = per_side Left in
  let width =
    max (core_w + (2 * ring)) ((2 * ring) + (pitch * max nb nt))
  in
  let height =
    max (core_h + (2 * ring)) ((2 * ring) + (pitch * max nl nr))
  in
  let core_x = (width - core_w) / 2 and core_y = (height - core_h) / 2 in
  let p = pad () in
  let instances = ref [] in
  let wires = ref [] in
  let core_inst =
    Cell.instantiate ~name:"core" ~trans:(Transform.translation core_x core_y) core
  in
  instances := [ core_inst ];
  let core_port pname =
    match Cell.find_port_opt core pname with
    | Some port ->
      Rect.center (Rect.translate (Point.make core_x core_y) port.Cell.rect)
    | None ->
      invalid_arg (Printf.sprintf "Assemble.assemble: core has no port %S" pname)
  in
  let add_wire pts = wires := Cell.wire Layer.Metal ~width:4 pts :: !wires in
  let pad_index = ref 0 in
  let place side k =
    let idx = !pad_index in
    incr pad_index;
    let count, span =
      match side with
      | Bottom | Top -> ((match side with Bottom -> nb | _ -> nt), width)
      | Left | Right -> ((match side with Left -> nl | _ -> nr), height)
    in
    let offset = ring + (((span - (2 * ring)) - (count * pitch)) / 2) in
    let pos = offset + (k * pitch) + ((pitch - pad_size) / 2) in
    let trans =
      match side with
      | Bottom -> Transform.translation pos 0
      | Top -> Transform.make ~orient:Transform.MX (Point.make pos height)
      | Left -> Transform.make ~orient:Transform.R270 (Point.make 0 (pos + pad_size))
      | Right -> Transform.make ~orient:Transform.R90 (Point.make width pos)
    in
    let inst = Cell.instantiate ~name:(Printf.sprintf "pad%d" idx) ~trans p in
    instances := inst :: !instances;
    let pin =
      Rect.center (Cell.port_in_parent inst (Cell.find_port p "pin")).Cell.rect
    in
    (match List.assoc_opt idx bind with
    | Some pname ->
      let target = core_port pname in
      (* L-route: continue in the stub direction to the target's lane,
         then turn *)
      let mid =
        match side with
        | Bottom | Top -> Point.make pin.Point.x target.Point.y
        | Left | Right -> Point.make target.Point.x pin.Point.y
      in
      if Point.equal pin mid || Point.equal mid target then
        add_wire [ pin; target ]
      else add_wire [ pin; mid; target ]
    | None ->
      (* unbound: stub stops 6 lambda short of the core *)
      let stop =
        match side with
        | Bottom -> Point.make pin.Point.x (core_y - 6)
        | Top -> Point.make pin.Point.x (core_y + core_h + 6)
        | Left -> Point.make (core_x - 6) pin.Point.y
        | Right -> Point.make (core_x + core_w + 6) pin.Point.y
      in
      add_wire [ pin; stop ])
  in
  for k = 0 to nb - 1 do
    place Bottom k
  done;
  for k = 0 to nr - 1 do
    place Right k
  done;
  for k = 0 to nt - 1 do
    place Top k
  done;
  for k = 0 to nl - 1 do
    place Left k
  done;
  let ports =
    List.filter_map
      (fun (i : Cell.inst) ->
        if i.inst_name = "core" then None
        else
          Some
            { (Cell.port_in_parent i (Cell.find_port p "pin")) with
              Cell.pname = i.inst_name
            })
      !instances
  in
  let chip =
    Cell.make ~name ~ports ~instances:(List.rev !instances) (List.rev !wires)
  in
  let core_area = Cell.area core in
  let chip_area = Cell.area chip in
  { chip
  ; pads
  ; core_area
  ; chip_area
  ; overhead = float_of_int chip_area /. float_of_int (max core_area 1)
  }

let pp ppf a =
  Format.fprintf ppf "chip %s: %d pads, core %d, chip %d (x%.2f)"
    a.chip.Cell.name a.pads a.core_area a.chip_area a.overhead

(* --- macro assembly ---------------------------------------------------
   The generalization of the pad frame: instead of one hand core, a row
   of per-module macros with typed interface pins, connected by a
   chip-level routing channel.  All pin geometry lives on a 14-lambda
   grid: macro pins (bottom edge of the channel) sit at even x, chip
   port pins (top edge) at odd x, so no routing column ever holds both
   a top and a bottom pin — the vertical constraint graph is empty and
   the channel is routable by construction. *)

let grid = 14 (* metal surround pitch of the channel router, times two *)
let stub_h = 4
let gutter = 2 * grid

let round_up n = (n + grid - 1) / grid * grid

let macro ~name ~pins cell =
  let body = Cell.translate_to_origin cell in
  let h = Cell.height body in
  let stubs =
    List.mapi
      (fun i pn ->
        let x = grid * i in
        let r = Rect.make x h (x + 2) (h + stub_h) in
        (Cell.box Layer.Poly r, Cell.port pn Layer.Poly r))
      pins
  in
  Cell.make ~name ~ports:(List.map snd stubs)
    ~instances:[ Cell.instantiate ~name:"body" body ]
    (List.map fst stubs)

type macro_spec =
  { mi_name : string  (** instance name, unique in the chip *)
  ; mi_pins : string list  (** bit-level pin names, signature order *)
  ; mi_cell : Cell.t  (** the module's DRC-clean layout *)
  }

type endpoint =
  | Chip of string
  | Pin of string * string

type net = { net_name : string; ends : endpoint list }

type packed =
  { core : Cell.t
  ; macro_count : int
  ; row_width : int
  ; row_height : int
  ; channel_tracks : int
  ; channel_height : int
  ; trunk_length : int
  }

let pack ~name ~macros ~chip_ports ~nets () =
  (match
     List.find_opt
       (fun m ->
         List.length (List.filter (fun m' -> m'.mi_name = m.mi_name) macros)
         > 1)
       macros
   with
  | Some m ->
    invalid_arg
      (Printf.sprintf "Assemble.pack: duplicate instance name %S" m.mi_name)
  | None -> ());
  (* one wrapper cell per distinct (module layout, pin list): two
     instances of the same module share the wrapper, hence the CIF
     symbol *)
  let wrappers = ref [] in
  let wrapper_for m =
    let k = (m.mi_cell.Cell.id, m.mi_pins) in
    match List.assoc_opt k !wrappers with
    | Some w -> w
    | None ->
      let w =
        macro
          ~name:("macro_" ^ m.mi_cell.Cell.name)
          ~pins:m.mi_pins m.mi_cell
      in
      wrappers := (k, w) :: !wrappers;
      w
  in
  let placed =
    (* (spec, wrapper, x) left to right, x on the grid *)
    let x = ref grid in
    List.map
      (fun m ->
        let w = wrapper_for m in
        let mx = !x in
        x := !x + round_up (max 1 (Cell.width w)) + gutter;
        (m, w, mx))
      macros
  in
  let row_height =
    List.fold_left (fun a (_, w, _) -> max a (Cell.height w)) 0 placed
  in
  let row_width =
    List.fold_left (fun a (_, w, x) -> max a (x + Cell.width w)) 0 placed
  in
  let width =
    max (round_up row_width + grid) ((grid * List.length chip_ports) + grid)
  in
  let pin_x (m, _, x) pin =
    let rec idx i = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Assemble.pack: %s has no pin %S" m.mi_name pin)
      | p :: _ when p = pin -> i
      | _ :: rest -> idx (i + 1) rest
    in
    x + (grid * idx 0 m.mi_pins)
  in
  let chip_port_x p =
    let rec idx i = function
      | [] -> invalid_arg (Printf.sprintf "Assemble.pack: no chip port %S" p)
      | q :: _ when q = p -> i
      | _ :: rest -> idx (i + 1) rest
    in
    (grid * idx 0 chip_ports) + (grid / 2)
  in
  let top = ref [] and bottom = ref [] in
  List.iteri
    (fun netid n ->
      List.iter
        (fun e ->
          match e with
          | Chip p ->
            top := { Sc_route.Channel.x = chip_port_x p; net = netid } :: !top
          | Pin (iname, pin) -> (
            match
              List.find_opt (fun (m, _, _) -> m.mi_name = iname) placed
            with
            | None ->
              invalid_arg
                (Printf.sprintf "Assemble.pack: net %s names unknown instance %S"
                   n.net_name iname)
            | Some pl ->
              bottom :=
                { Sc_route.Channel.x = pin_x pl pin; net = netid } :: !bottom))
        n.ends)
    nets;
  let routed =
    Sc_route.Channel.route
      { Sc_route.Channel.top = List.rev !top
      ; bottom = List.rev !bottom
      ; width
      }
  in
  let ch = routed.Sc_route.Channel.layout in
  let instances =
    List.map
      (fun (m, w, x) ->
        (* pin-stub tops aligned on the channel floor: shorter macros
           hang lower, every pin enters the channel at the same y *)
        Cell.instantiate ~name:m.mi_name
          ~trans:(Transform.translation x (row_height - Cell.height w))
          w)
      placed
    @ [ Cell.instantiate ~name:"channel"
          ~trans:(Transform.translation 0 row_height)
          ch
      ]
  in
  let port_y = row_height + routed.Sc_route.Channel.height in
  let ports, port_stubs =
    List.split
      (List.map
         (fun p ->
           let x = chip_port_x p in
           let r = Rect.make x port_y (x + 2) (port_y + stub_h) in
           (Cell.port p Layer.Poly r, Cell.box Layer.Poly r))
         chip_ports)
  in
  let core = Cell.make ~name ~ports ~instances port_stubs in
  { core
  ; macro_count = List.length macros
  ; row_width
  ; row_height
  ; channel_tracks = routed.Sc_route.Channel.tracks
  ; channel_height = routed.Sc_route.Channel.height
  ; trunk_length = routed.Sc_route.Channel.trunk_length
  }

let pp_packed ppf p =
  Format.fprintf ppf
    "core %s: %d macros, row %dx%d, channel %d tracks (h %d, wire %d)"
    p.core.Cell.name p.macro_count p.row_width p.row_height p.channel_tracks
    p.channel_height p.trunk_length
