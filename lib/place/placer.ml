open Sc_netlist

type problem =
  { kinds : Gate.kind array
  ; widths : int array
  ; names : string array
  ; nets : int array array
  }

type placement =
  { problem : problem
  ; x : int array
  ; row : int array
  ; nrows : int
  ; row_width : int
  }

let problem_of_circuit c =
  let f = Circuit.flatten c in
  let gates = Array.of_list f.Circuit.gates in
  let kinds = Array.map (fun g -> g.Circuit.kind) gates in
  let widths =
    Array.map (fun g -> (Sc_stdcell.Library.get g.Circuit.kind).Sc_stdcell.Library.width) gates
  in
  let names = Array.map (fun g -> g.Circuit.gname) gates in
  let by_net = Hashtbl.create 64 in
  (* dedup with a (net, item) set: [List.mem] on the accumulated list is
     O(fanout) per endpoint, quadratic on high-fanout nets like clocks *)
  let seen = Hashtbl.create 256 in
  let touch net item =
    if not (Hashtbl.mem seen (net, item)) then begin
      Hashtbl.add seen (net, item) ();
      let cur = try Hashtbl.find by_net net with Not_found -> [] in
      Hashtbl.replace by_net net (item :: cur)
    end
  in
  Array.iteri
    (fun idx g ->
      touch g.Circuit.out idx;
      Array.iter (fun n -> touch n idx) g.Circuit.ins)
    gates;
  let nets =
    Hashtbl.fold
      (fun _ items acc ->
        match items with
        | [] | [ _ ] -> acc
        | _ -> Array.of_list items :: acc)
      by_net []
  in
  { kinds; widths; names; nets = Array.of_list nets }

let default_rows p =
  let n = Array.length p.kinds in
  max 1 (int_of_float (sqrt (float_of_int (max n 1))))

(* Fold an item order into serpentine rows and assign x positions. *)
let fold_rows p order nrows =
  let n = Array.length order in
  let per_row = max 1 ((n + nrows - 1) / nrows) in
  let x = Array.make n 0 in
  let row = Array.make n 0 in
  let row_width = ref 0 in
  let idx = ref 0 in
  for r = 0 to nrows - 1 do
    let count = min per_row (n - !idx) in
    let items = Array.sub order !idx (max count 0) in
    (* serpentine: reverse odd rows so chains stay short at the turn *)
    let items = if r land 1 = 1 then (Array.of_list (List.rev (Array.to_list items))) else items in
    let cursor = ref 0 in
    Array.iter
      (fun item ->
        x.(item) <- !cursor;
        row.(item) <- r;
        cursor := !cursor + p.widths.(item))
      items;
    row_width := max !row_width !cursor;
    idx := !idx + count
  done;
  { problem = p; x; row; nrows; row_width = !row_width }

let random ?(seed = 42) ?nrows p =
  let n = Array.length p.kinds in
  let nrows = match nrows with Some r -> r | None -> default_rows p in
  let rng = Random.State.make [| seed |] in
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  fold_rows p order nrows

let ordered ?nrows p =
  let n = Array.length p.kinds in
  let nrows = match nrows with Some r -> r | None -> default_rows p in
  (* barycentre iterations on a 1-D abstract coordinate *)
  let pos = Array.init n float_of_int in
  let neighbours = Array.make n [] in
  Array.iter
    (fun net ->
      Array.iter
        (fun a ->
          Array.iter (fun b -> if a <> b then neighbours.(a) <- b :: neighbours.(a)) net)
        net)
    p.nets;
  for _pass = 1 to 12 do
    let next = Array.copy pos in
    for i = 0 to n - 1 do
      match neighbours.(i) with
      | [] -> ()
      | ns ->
        let sum = List.fold_left (fun acc j -> acc +. pos.(j)) 0.0 ns in
        next.(i) <- (pos.(i) +. (sum /. float_of_int (List.length ns))) /. 2.0
    done;
    Array.blit next 0 pos 0 n;
    (* re-rank to keep positions spread *)
    let ranked = Array.init n (fun i -> i) in
    Array.sort (fun a b -> Float.compare pos.(a) pos.(b)) ranked;
    Array.iteri (fun rank item -> pos.(item) <- float_of_int rank) ranked
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare pos.(a) pos.(b)) order;
  fold_rows p order nrows

let item_center pl i =
  let cx = pl.x.(i) + (pl.problem.widths.(i) / 2) in
  (* row pitch normalized to the library cell height plus a nominal channel *)
  let cy = pl.row.(i) * (Sc_stdcell.Nmos.cell_height + 30) in
  (cx, cy)

let hpwl pl =
  Array.fold_left
    (fun acc net ->
      let xs = Array.map (fun i -> fst (item_center pl i)) net in
      let ys = Array.map (fun i -> snd (item_center pl i)) net in
      let min_a = Array.fold_left min max_int and max_a = Array.fold_left max min_int in
      acc + (max_a xs - min_a xs) + (max_a ys - min_a ys))
    0 pl.problem.nets

(* Swap descent with incremental cost: each item knows its nets, each
   net caches its half-perimeter, and a candidate swap re-prices only
   the nets touching the two items.  The RNG stream and the acceptance
   rule (delta <= 0 is exactly the old [c <= cost]) are unchanged, so
   the walk — and the resulting placement — is identical to the full
   recompute it replaces, at O(affected nets) instead of O(all nets)
   per candidate. *)
let improve_cost ?(iters = 2000) pl =
  let n = Array.length pl.problem.kinds in
  if n < 2 then (pl, hpwl pl)
  else begin
    let x = Array.copy pl.x and row = Array.copy pl.row in
    let current = { pl with x; row } in
    let nets = pl.problem.nets in
    let nnets = Array.length nets in
    let member = Array.make n [] in
    Array.iteri
      (fun ni net -> Array.iter (fun i -> member.(i) <- ni :: member.(i)) net)
      nets;
    let cost_of_net ni =
      let xmin = ref max_int and xmax = ref min_int in
      let ymin = ref max_int and ymax = ref min_int in
      Array.iter
        (fun i ->
          let cx, cy = item_center current i in
          if cx < !xmin then xmin := cx;
          if cx > !xmax then xmax := cx;
          if cy < !ymin then ymin := cy;
          if cy > !ymax then ymax := cy)
        nets.(ni);
      !xmax - !xmin + (!ymax - !ymin)
    in
    let net_cost = Array.init nnets cost_of_net in
    let cost = ref (Array.fold_left ( + ) 0 net_cost) in
    (* per-candidate scratch: stamp dedups the two items' net lists *)
    let stamp = Array.make nnets (-1) in
    let epoch = ref 0 in
    let rng = Random.State.make [| 7 |] in
    for _ = 1 to iters do
      let i = Random.State.int rng n and j = Random.State.int rng n in
      if i <> j && pl.problem.widths.(i) = pl.problem.widths.(j) then begin
        (* swap equal-width items: positions exchange exactly *)
        let xi = x.(i) and ri = row.(i) in
        x.(i) <- x.(j);
        row.(i) <- row.(j);
        x.(j) <- xi;
        row.(j) <- ri;
        incr epoch;
        let affected = ref [] in
        let note ni =
          if stamp.(ni) <> !epoch then begin
            stamp.(ni) <- !epoch;
            affected := ni :: !affected
          end
        in
        List.iter note member.(i);
        List.iter note member.(j);
        let delta = ref 0 in
        let repriced =
          List.map
            (fun ni ->
              let c = cost_of_net ni in
              delta := !delta + c - net_cost.(ni);
              (ni, c))
            !affected
        in
        if !delta <= 0 then begin
          cost := !cost + !delta;
          List.iter (fun (ni, c) -> net_cost.(ni) <- c) repriced
        end
        else begin
          let xi = x.(i) and ri = row.(i) in
          x.(i) <- x.(j);
          row.(i) <- row.(j);
          x.(j) <- xi;
          row.(j) <- ri
        end
      end
    done;
    (current, !cost)
  end

let improve ?iters pl = fst (improve_cost ?iters pl)

let best_of ?pool ?(seeds = 4) ?iters ?nrows p =
  let pool = match pool with Some q -> q | None -> Sc_par.Pool.default () in
  let starts =
    (fun () -> improve_cost ?iters (ordered ?nrows p))
    :: List.init seeds (fun k () ->
           improve_cost ?iters (random ~seed:(100 + k) ?nrows p))
  in
  let results = Sc_par.Pool.run ~label:"place.restart" pool starts in
  match results with
  | [] -> assert false
  | first :: rest ->
    (* strict < keeps the earliest start on ties, independent of pool size *)
    fst
      (List.fold_left
         (fun (bp, bc) (cp, cc) -> if cc < bc then (cp, cc) else (bp, bc))
         first rest)

let to_layout ?(channel = 30) ~name pl =
  let open Sc_geom in
  let n = Array.length pl.problem.kinds in
  if Sc_obs.Obs.enabled () then begin
    Sc_obs.Obs.gauge "place.hpwl" (hpwl pl);
    Sc_obs.Obs.gauge "place.rows" pl.nrows;
    Sc_obs.Obs.gauge "place.cells" n
  end;
  let pitch = Sc_stdcell.Nmos.cell_height + channel in
  let insts = ref [] in
  for i = n - 1 downto 0 do
    let cell = Sc_stdcell.Library.layout_of pl.problem.kinds.(i) in
    let y = pl.row.(i) * pitch in
    (* flip odd rows so facing rails match (VDD against VDD) *)
    let trans =
      if pl.row.(i) land 1 = 1 then
        Transform.make ~orient:Transform.MX
          (Point.make pl.x.(i) (y + Sc_stdcell.Nmos.cell_height))
      else Transform.translation pl.x.(i) y
    in
    insts :=
      Sc_layout.Cell.instantiate ~name:(Printf.sprintf "g%d" i) ~trans cell
      :: !insts
  done;
  let ports =
    List.concat_map
      (fun (i : Sc_layout.Cell.inst) ->
        List.map
          (fun (p : Sc_layout.Cell.port) ->
            let q = Sc_layout.Cell.port_in_parent i p in
            { q with Sc_layout.Cell.pname = i.inst_name ^ "." ^ p.pname })
          i.cell.Sc_layout.Cell.ports)
      !insts
  in
  Sc_layout.Cell.make ~name ~ports ~instances:!insts []

type routed_channels =
  { channels : Sc_route.Channel.routed list
  ; total_height : int
  ; total_trunk : int
  }

(* Pin assignment: one pin per net per channel side, snapped onto a
   14-lambda grid.  Bottom pins sit on even half-grid slots and top pins
   on odd ones, so no column ever carries pins of two different nets and
   the vertical constraint graph stays empty. *)
let route_channels pl =
  let grid = 14 in
  let n = Array.length pl.problem.kinds in
  let centre i = pl.x.(i) + (pl.problem.widths.(i) / 2) in
  let channels = ref [] in
  for boundary = 0 to pl.nrows - 2 do
    (* nets with gates on both sides of the boundary *)
    let crossing =
      Array.to_list pl.problem.nets
      |> List.filter_map (fun net ->
             let below = Array.exists (fun i -> pl.row.(i) <= boundary) net in
             let above = Array.exists (fun i -> pl.row.(i) > boundary) net in
             if below && above then Some net else None)
    in
    if crossing <> [] then begin
      let slot_of used x =
        (* snap to the grid, then probe for a free slot *)
        let s = ref (max 0 (x / grid)) in
        while Hashtbl.mem used !s do
          incr s
        done;
        Hashtbl.replace used !s ();
        !s
      in
      let used_bottom = Hashtbl.create 16 and used_top = Hashtbl.create 16 in
      let pins =
        List.mapi
          (fun netid net ->
            let side_centre keep =
              let xs =
                Array.to_list net
                |> List.filter keep
                |> List.map centre
              in
              List.fold_left ( + ) 0 xs / max 1 (List.length xs)
            in
            let bx = side_centre (fun i -> pl.row.(i) <= boundary) in
            let tx = side_centre (fun i -> pl.row.(i) > boundary) in
            let bslot = slot_of used_bottom bx in
            let tslot = slot_of used_top tx in
            ( { Sc_route.Channel.x = bslot * grid; net = netid }
            , { Sc_route.Channel.x = (tslot * grid) + (grid / 2); net = netid } ))
          crossing
      in
      let bottom = List.map fst pins and top = List.map snd pins in
      let width =
        List.fold_left
          (fun m (p : Sc_route.Channel.pin) -> max m (p.x + 2))
          0 (bottom @ top)
      in
      channels := Sc_route.Channel.route { top; bottom; width } :: !channels
    end
  done;
  ignore n;
  let channels = List.rev !channels in
  { channels
  ; total_height =
      List.fold_left (fun a (c : Sc_route.Channel.routed) -> a + c.height) 0 channels
  ; total_trunk =
      List.fold_left
        (fun a (c : Sc_route.Channel.routed) -> a + c.trunk_length)
        0 channels
  }

let pp ppf pl =
  Format.fprintf ppf "placement: %d items in %d rows, width %d, hpwl %d"
    (Array.length pl.problem.kinds) pl.nrows pl.row_width (hpwl pl)
