(** Row-based standard-cell placement.

    Experiment E4 contrasts structured placement with unstructured: the
    placer offers a random baseline, a constructive barycentre/serpentine
    placement, and a swap-based improvement pass, all measured by
    half-perimeter wire length (HPWL).

    Items are the gates of a flattened circuit; their widths come from
    the standard-cell library and all share the library cell height.
    [to_layout] materializes a placement into real geometry: rows of
    cells separated by routing channels. *)

open Sc_netlist

type problem = private
  { kinds : Gate.kind array  (** per item *)
  ; widths : int array
  ; names : string array
  ; nets : int array array  (** net -> connected item indices *)
  }

(** [problem_of_circuit c] flattens [c]; items are gates, nets are the
    circuit's nets restricted to gate endpoints (single-item nets are
    dropped — they contribute nothing to HPWL). *)
val problem_of_circuit : Circuit.t -> problem

type placement =
  { problem : problem
  ; x : int array  (** lower-left cell x per item *)
  ; row : int array
  ; nrows : int
  ; row_width : int  (** widest row *)
  }

(** [random ?seed ?nrows p] — shuffle items into serpentine rows. *)
val random : ?seed:int -> ?nrows:int -> problem -> placement

(** Constructive placement: barycentre-ordered items folded into rows. *)
val ordered : ?nrows:int -> problem -> placement

(** [improve ?iters placement] — greedy pairwise-swap descent on HPWL.
    Candidate swaps are priced incrementally (only the nets touching the
    two swapped items are re-measured), but the walk is identical to a
    full-recompute descent: same RNG stream, same acceptances. *)
val improve : ?iters:int -> placement -> placement

(** [improve_cost ?iters placement] — as {!improve}, also returning the
    final HPWL (always equal to [hpwl] of the returned placement). *)
val improve_cost : ?iters:int -> placement -> placement * int

(** [best_of ?pool ?seeds ?iters ?nrows p] — multi-start placement: the
    constructive {!ordered} start plus [seeds] (default 4) {!random}
    restarts, each refined by {!improve}, run concurrently on [pool]
    (default {!Sc_par.Pool.default}).  Returns the placement with the
    lowest HPWL; ties keep the earliest start, so the result does not
    depend on the pool size. *)
val best_of :
  ?pool:Sc_par.Pool.t -> ?seeds:int -> ?iters:int -> ?nrows:int -> problem -> placement

(** Half-perimeter wire length over all nets, cell centres as pins. *)
val hpwl : placement -> int

(** [to_layout ?channel ~name placement] — rows of library cells with
    [channel] lambda of routing space between rows (default 30).
    Alternate rows are flipped in y so that power rails of facing rows
    line up.  Cell ports are exposed as "g<item>.<port>". *)
val to_layout : ?channel:int -> name:string -> placement -> Sc_layout.Cell.t

(** Routed wiring-management cost of a placement: for every adjacent
    row pair, the nets crossing that boundary become a channel-routing
    problem (one pin per side per net, snapped to a 14-lambda grid with
    top and bottom pins on alternating half-grids so vertical constraints
    never conflict) and the real channel router assigns tracks.

    The result is the aggregate channel height and trunk wirelength —
    the E4 metric: structured placement needs fewer tracks. *)
type routed_channels =
  { channels : Sc_route.Channel.routed list
  ; total_height : int  (** sum of channel heights, lambda *)
  ; total_trunk : int  (** sum of horizontal trunk wire, lambda *)
  }

val route_channels : placement -> routed_channels

val pp : Format.formatter -> placement -> unit
