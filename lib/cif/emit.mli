(** Emitting a layout hierarchy as CIF 2.0.

    Geometry is written on a half-lambda grid: every coordinate is doubled
    and the symbol scale factor is halved (DS a = 125 for a 250
    centimicron lambda), so box centres are always integers.  Wires are
    written as their covering boxes, which keeps emission/parsing exactly
    invertible on geometry; symbol names travel in the "9" user extension
    and ports in the "94" extension ([94 name cx cy layer], doubled
    coordinates). *)

val file_of_cell : Sc_layout.Cell.t -> Ast.file

type emitted =
  { text : string  (** the rendered CIF file *)
  ; commands : int  (** CIF command count *)
  ; rects : (string * int) list
        (** box count per layer, sorted by CIF layer name *)
  ; rects_total : int
  }

val emit : Sc_layout.Cell.t -> emitted
(** Render [cell] inside an ["emit"] span and return the text together
    with its geometry census — the pipeline's emit-pass artifact.  The
    ["cif.*"] counters are reported as a side effect. *)

val replay_counters : emitted -> unit
(** Re-emit the ["cif.*"] counters {!emit} would have reported — used
    by stage-cache hits so warm QoR snapshots match cold ones. *)

val to_string : Sc_layout.Cell.t -> string
(** [(emit cell).text]. *)

val to_channel : out_channel -> Sc_layout.Cell.t -> unit

(** [write path cell] writes the CIF file at [path]. *)
val write : string -> Sc_layout.Cell.t -> unit
