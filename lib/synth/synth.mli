(** The behavioral silicon-compilation path (the paper's C3/C4/C7):
    compile an ISP-style behavioural description to a structural netlist
    of standard modules.

    Two control/logic styles are offered, matching the structural-vs-
    behavioral debate the paper frames:

    - {!gates}: direct structural translation.  Expressions become
      adders, comparators and boolean gates; control flow becomes
      multiplexer trees; registers become flip-flops holding their value
      by default.

    - {!pla_fsm}: classic FSM synthesis.  The whole design is treated as
      a finite-state machine — the state space (all register bits) and
      input space are enumerated through the {!Sc_rtl.Interp} reference
      semantics, the next-state/output function is minimized as a
      multi-output cover and realized as one PLA plus a register row.
      Only feasible when state+input bits are small (at most [max_bits]).

    Both produce circuits whose simulation matches the interpreter
    cycle-for-cycle (enforced by tests and by {!verify_against_interp}). *)

open Sc_netlist

type result =
  { circuit : Circuit.t
  ; stats : Circuit.stats
  ; cell_area : int  (** summed standard-cell area, square lambda *)
  ; critical_path : int  (** tau units *)
  }

(** [gates ?optimize ?selfcheck design] — [optimize] (default true) runs
    {!Sc_netlist.Optimize.simplify} on the result (constant folding, CSE,
    dead-gate removal); the E2 ablation toggles it.  [selfcheck] (default
    false) formally equivalence-checks the optimized circuit against the
    raw translation with {!Sc_equiv.Checker.check} (bounded to 4 cycles
    when registers are present) and raises [Failure] on any divergence —
    the compiler certifying its own optimizer.
    @raise Invalid_argument when the design fails {!Sc_rtl.Check.check}. *)
val gates : ?optimize:bool -> ?selfcheck:bool -> Sc_rtl.Ast.design -> result

(** Largest state+input bit count {!pla_fsm} will enumerate (the FSM
    extraction tabulates all [2^n] points of the transition function). *)
val max_bits : int

(** @raise Invalid_argument when state+input bits exceed [max_bits]. *)
val pla_fsm : ?minimize:bool -> Sc_rtl.Ast.design -> result * Sc_pla.Generator.t

(** [verify_against_interp design circuit cycles stim] — drive both the
    interpreter and the circuit with [stim] (cycle -> input values) and
    compare all outputs cycle by cycle.  Synthesized registers power up
    as X while the interpreter powers up at 0, so cycles whose circuit
    outputs still contain X are skipped; designs are expected to have a
    reset path in [stim] that makes the two converge, and at least one
    comparable cycle is required for a [true] verdict. *)
val verify_against_interp :
  Sc_rtl.Ast.design -> Circuit.t -> int -> (int -> (string * int) list) -> bool
