(** The behavioral silicon-compilation path (the paper's C3/C4/C7):
    compile an ISP-style behavioural description to a structural netlist
    of standard modules.

    Two control/logic styles are offered, matching the structural-vs-
    behavioral debate the paper frames:

    - {!gates}: direct structural translation.  Expressions become
      adders, comparators and boolean gates; control flow becomes
      multiplexer trees; registers become flip-flops holding their value
      by default.

    - {!pla_fsm}: classic FSM synthesis.  The whole design is treated as
      a finite-state machine — the state space (all register bits) and
      input space are enumerated through the {!Sc_rtl.Interp} reference
      semantics, the next-state/output function is minimized as a
      multi-output cover and realized as one PLA plus a register row.
      Only feasible when state+input bits are small (at most [max_bits]).

    Both produce circuits whose simulation matches the interpreter
    cycle-for-cycle (enforced by tests and by {!verify_against_interp}). *)

open Sc_netlist

type result =
  { circuit : Circuit.t
  ; stats : Circuit.stats
  ; cell_area : int  (** summed standard-cell area, square lambda *)
  ; critical_path : int  (** tau units *)
  }

val translate : Sc_rtl.Ast.design -> Circuit.t
(** The raw structural translation, before any optimization — the
    pipeline's "compile" pass.
    @raise Sc_pipeline.Diag.Error when the design fails
    {!Sc_rtl.Check.check} (stage ["compile"]). *)

val optimize_result : ?inject:int -> Circuit.t -> result
(** Run {!Sc_netlist.Optimize.simplify} and package the outcome with
    its stats/area/timing, emitting the gate-count gauges — the
    pipeline's "optimize" pass.  [inject] deliberately miscompiles:
    after simplification the first mutable gate at or after index
    [inject] (wrapping) is flipped with {!Sc_equiv.Checker.mutate} — a
    live fault for the certificate machinery to refuse.
    @raise Invalid_argument with [inject] when no gate can be mutated. *)

val replay_gauges : result -> unit
(** Re-emit the [gates]/[flipflops]/[transistors] gauges a fresh
    {!optimize_result} would have emitted — used by stage-cache hits to
    keep warm QoR snapshots identical to cold ones. *)

(** [gates ?optimize ?selfcheck design] — [optimize] (default true) runs
    {!Sc_netlist.Optimize.simplify} on the result (constant folding, CSE,
    dead-gate removal); the E2 ablation toggles it.  [selfcheck] (default
    false) formally equivalence-checks the optimized circuit against the
    raw translation with {!Sc_equiv.Checker.check} (bounded to 4 cycles
    when registers are present) — the compiler certifying its own
    optimizer.
    @raise Sc_pipeline.Diag.Error when the design fails
    {!Sc_rtl.Check.check} (stage ["compile"]) or the self-check
    diverges (stage ["selfcheck"]). *)
val gates : ?optimize:bool -> ?selfcheck:bool -> Sc_rtl.Ast.design -> result

(** Largest state+input bit count {!pla_fsm} will enumerate (the FSM
    extraction tabulates all [2^n] points of the transition function). *)
val max_bits : int

val fsm_cover : Sc_rtl.Ast.design -> Sc_logic.Cover.t
(** The raw, unminimized next-state/output cover of [design],
    enumerated through the {!Sc_rtl.Interp} reference semantics — the
    specification {!pla_fsm}'s minimized PLA is certified against
    ({!Sc_equiv.Checker.check_covers}).
    @raise Sc_pipeline.Diag.Error (stage ["compile"]) under the same
    conditions as {!pla_fsm}. *)

(** @raise Sc_pipeline.Diag.Error (stage ["compile"]) when state+input
    bits exceed [max_bits] or the design fails {!Sc_rtl.Check.check}. *)
val pla_fsm : ?minimize:bool -> Sc_rtl.Ast.design -> result * Sc_pla.Generator.t

(** [verify_against_interp design circuit cycles stim] — drive both the
    interpreter and the circuit with [stim] (cycle -> input values) and
    compare all outputs cycle by cycle.  Synthesized registers power up
    as X while the interpreter powers up at 0, so cycles whose circuit
    outputs still contain X are skipped; designs are expected to have a
    reset path in [stim] that makes the two converge, and at least one
    comparable cycle is required for a [true] verdict. *)
val verify_against_interp :
  Sc_rtl.Ast.design -> Circuit.t -> int -> (int -> (string * int) list) -> bool
