open Sc_netlist
module Ast = Sc_rtl.Ast
module SMap = Map.Make (String)

type result =
  { circuit : Circuit.t
  ; stats : Circuit.stats
  ; cell_area : int
  ; critical_path : int
  }

(* --- the gates backend: direct structural translation --- *)

let adjust nets w =
  let n = Array.length nets in
  if n = w then nets
  else if n > w then Array.sub nets 0 w
  else Array.init w (fun i -> if i < n then nets.(i) else Builder.const0)

let align a bb =
  let w = max (Array.length a) (Array.length bb) in
  (adjust a w, adjust bb w)

let truth b nets = Builder.or_reduce b (Array.to_list nets)

(* Expression reads are non-blocking: registers always read their
   pre-cycle (q) value and inputs their port nets, matching the
   interpreter's semantics; [read_env] is therefore fixed for the whole
   behaviour while the statement walk threads a separate write map. *)
let rec compile_expr design b read_env wenv e =
  let resolve n =
    (* wires are blocking: read the current write-map value; everything
       else (inputs, registers) reads the fixed pre-cycle environment *)
    if List.exists (fun (d : Ast.decl) -> d.dname = n) design.Ast.wires then
      SMap.find n wenv
    else SMap.find n read_env
  in
  match (e : Ast.expr) with
  | Ast.Const v ->
    let w = max 1 (Sc_rtl.Check.expr_width design e) in
    Array.init w (fun i ->
        if v land (1 lsl i) <> 0 then Builder.const1 else Builder.const0)
  | Ast.Ref n -> resolve n
  | Ast.Bit (n, i) -> [| (resolve n).(i) |]
  | Ast.Unop (Ast.Not, e') ->
    Array.map (Builder.not_ b) (compile_expr design b read_env wenv e')
  | Ast.Binop (op, ea, eb) ->
    (* truncate to the node's semantic width so the interpreter's masking
       and the hardware agree bit-for-bit *)
    let w = max 1 (Sc_rtl.Check.expr_width design e) in
    adjust (compile_binop design b read_env wenv op ea eb) w

and compile_binop design b read_env wenv op ea eb =
    let va = compile_expr design b read_env wenv ea in
    let vb = compile_expr design b read_env wenv eb in
    match op with
    | Ast.Add ->
      let va, vb = align va vb in
      fst (Builder.adder b va vb)
    | Ast.Sub ->
      let va, vb = align va vb in
      fst (Builder.adder b ~cin:Builder.const1 va (Array.map (Builder.not_ b) vb))
    | Ast.And ->
      let va, vb = align va vb in
      Array.map2 (Builder.and2 b) va vb
    | Ast.Or ->
      let va, vb = align va vb in
      Array.map2 (Builder.or2 b) va vb
    | Ast.Xor ->
      let va, vb = align va vb in
      Array.map2 (Builder.xor2 b) va vb
    | Ast.Eq ->
      let va, vb = align va vb in
      let diffs = Array.map2 (Builder.xor2 b) va vb in
      [| Builder.not_ b (truth b diffs) |]
    | Ast.Ne ->
      let va, vb = align va vb in
      let diffs = Array.map2 (Builder.xor2 b) va vb in
      [| truth b diffs |]
    | Ast.Lt ->
      (* unsigned: a < b iff no carry out of a + ~b + 1 *)
      let va, vb = align va vb in
      let _, carry =
        Builder.adder b ~cin:Builder.const1 va (Array.map (Builder.not_ b) vb)
      in
      [| Builder.not_ b carry |]
    | Ast.Gt ->
      let va, vb = align va vb in
      let _, carry =
        Builder.adder b ~cin:Builder.const1 vb (Array.map (Builder.not_ b) va)
      in
      [| Builder.not_ b carry |]
    | Ast.Shl ->
      let k = match eb with Ast.Const k -> k | _ -> assert false in
      Array.init (Array.length va) (fun i ->
          if i < k then Builder.const0 else va.(i - k))
    | Ast.Shr ->
      let k = match eb with Ast.Const k -> k | _ -> assert false in
      Array.init (Array.length va) (fun i ->
          if i + k < Array.length va then va.(i + k) else Builder.const0)

let decl_width design n =
  match Sc_rtl.Check.find_decl design n with
  | Some d -> d.Ast.width
  | None -> assert false

(* Merge two environments under a select net: for every name bound in
   either branch, mux bitwise.  Names missing on one side fall back to
   zeros; the definite-assignment check guarantees such placeholders are
   overwritten before they can reach an output or register. *)
let merge_env design b read_env sel env_t env_f =
  let is_reg n =
    List.exists (fun (d : Ast.decl) -> d.dname = n) design.Ast.regs
  in
  SMap.merge
    (fun name vt vf ->
      let w = decl_width design name in
      let value v =
        match v with
        | Some nets -> nets
        | None ->
          (* an unassigned register holds its pre-cycle value; outputs are
             zero placeholders that definite-assignment guarantees get
             overwritten *)
          if is_reg name then SMap.find name read_env
          else Array.make w Builder.const0
      in
      match (vt, vf) with
      | None, None -> None
      | _ ->
        let t = adjust (value vt) w and f = adjust (value vf) w in
        Some (Array.init w (fun i -> Builder.mux2 b ~sel f.(i) t.(i))))
    env_t env_f

let rec compile_stmts design b read_env env stmts =
  List.fold_left (compile_stmt design b read_env) env stmts

and compile_stmt design b read_env env = function
  | Ast.Assign (n, e) ->
    let v = compile_expr design b read_env env e in
    SMap.add n (adjust v (decl_width design n)) env
  | Ast.If (c, th, el) ->
    let sel = truth b (compile_expr design b read_env env c) in
    let env_t = compile_stmts design b read_env env th in
    let env_f = compile_stmts design b read_env env el in
    merge_env design b read_env sel env_t env_f
  | Ast.Decode (scrutinee, cases, dflt) ->
    let sv = compile_expr design b read_env env scrutinee in
    let base = compile_stmts design b read_env env dflt in
    List.fold_left
      (fun acc (v, ss) ->
        let const =
          Array.init (Array.length sv) (fun i ->
              if v land (1 lsl i) <> 0 then Builder.const1 else Builder.const0)
        in
        let diffs = Array.map2 (Builder.xor2 b) sv const in
        let hit = Builder.not_ b (truth b diffs) in
        let env_case = compile_stmts design b read_env env ss in
        merge_env design b read_env hit env_case acc)
      base cases

let check_design ~stage design =
  match Sc_rtl.Check.check design with
  | [] -> ()
  | e :: _ -> Sc_pipeline.Diag.fail ~stage e

let translate design =
  check_design ~stage:"compile" design;
  Sc_obs.Obs.span "compile" @@ fun () ->
  let b = Builder.create design.Ast.name in
  let env = ref SMap.empty in
  List.iter
    (fun (d : Ast.decl) ->
      env := SMap.add d.dname (Builder.input b d.dname d.width) !env)
    design.Ast.inputs;
  let qs =
    List.map
      (fun (d : Ast.decl) ->
        let q = Builder.fresh_vec b d.width in
        Array.iteri
          (fun i n -> Builder.name_net b n (Printf.sprintf "%s[%d]" d.dname i))
          q;
        env := SMap.add d.dname q !env;
        (d, q))
      design.Ast.regs
  in
  let final = compile_stmts design b !env SMap.empty design.Ast.body in
  List.iter
    (fun ((d : Ast.decl), q) ->
      match SMap.find_opt d.dname final with
      | Some next ->
        Array.iteri
          (fun i dnet -> Builder.gate_into b Gate.Dff [| dnet |] q.(i))
          next
      | None ->
        (* register never assigned: holds its value *)
        Array.iter (fun qn -> Builder.gate_into b Gate.Dff [| qn |] qn) q)
    qs;
  List.iter
    (fun (d : Ast.decl) -> Builder.output b d.dname (SMap.find d.dname final))
    design.Ast.outputs;
  Builder.finish b

let replay_gauges r =
  Sc_obs.Obs.gauge "gates" r.stats.Circuit.gate_total;
  Sc_obs.Obs.gauge "flipflops" r.stats.Circuit.flipflops;
  Sc_obs.Obs.gauge "transistors" r.stats.Circuit.transistors

let result_of circuit =
  let r =
    { circuit
    ; stats = Circuit.stats circuit
    ; cell_area = Sc_stdcell.Library.circuit_cell_area circuit
    ; critical_path = Timing.critical_path circuit
    }
  in
  replay_gauges r;
  r

let optimize_result ?inject circuit =
  let simplified = Optimize.simplify circuit in
  let simplified =
    match inject with
    | None -> simplified
    | Some i ->
      (* fault-injection demo: flip the first mutable gate at or after
         index [i] (wrapping past sequential/constant gates), producing
         a live miscompile for --certify to refuse *)
      let n = List.length (Circuit.flatten simplified).Circuit.gates in
      if n = 0 then invalid_arg "optimize_result: no gates to mutate";
      let rec try_at seen j =
        if seen >= n then
          invalid_arg
            "optimize_result: no mutable gate (all sequential or constant)"
        else
          match Sc_equiv.Checker.mutate simplified (j mod n) with
          | c -> c
          | exception Invalid_argument _ -> try_at (seen + 1) (j + 1)
      in
      try_at 0 (((i mod n) + n) mod n)
  in
  result_of simplified

let gates ?(optimize = true) ?(selfcheck = false) design =
  let raw = translate design in
  if not optimize then result_of raw
  else begin
    let r = optimize_result raw in
    if selfcheck then begin
      (* certify the optimizer preserved the synthesized function — a
         combinational proof, or a bounded one when registers are present *)
      match Sc_equiv.Checker.check ~k:4 raw r.circuit with
      | Sc_equiv.Checker.Equivalent -> ()
      | Sc_equiv.Checker.Not_equivalent _ as v ->
        Sc_pipeline.Diag.failf ~stage:"selfcheck"
          "optimizer divergence for %s: %a" design.Ast.name
          Sc_equiv.Checker.pp_verdict v
    end;
    r
  end

(* --- the PLA backend: FSM extraction through the reference semantics --- *)

let max_bits = 12

(* The raw, unminimized next-state/output cover of a design, enumerated
   through the reference semantics ([Sc_rtl.Interp]).  This is the
   specification the minimized PLA is certified against. *)
let fsm_cover design =
  check_design ~stage:"compile" design;
  let in_bits =
    List.fold_left (fun a (d : Ast.decl) -> a + d.width) 0 design.Ast.inputs
  in
  let state_bits =
    List.fold_left (fun a (d : Ast.decl) -> a + d.width) 0 design.Ast.regs
  in
  let out_bits =
    List.fold_left (fun a (d : Ast.decl) -> a + d.width) 0 design.Ast.outputs
  in
  let total_in = in_bits + state_bits in
  if total_in > max_bits then
    Sc_pipeline.Diag.failf ~stage:"compile"
      "pla_fsm: %d state+input bits exceed %d" total_in max_bits;
  let interp = Sc_rtl.Interp.create design in
  let f bits =
    (* bit order: inputs in declaration order (lsb first), then registers *)
    let pos = ref 0 in
    let take w =
      let v = ref 0 in
      for i = 0 to w - 1 do
        if bits.(!pos + i) then v := !v lor (1 lsl i)
      done;
      pos := !pos + w;
      !v
    in
    List.iter
      (fun (d : Ast.decl) -> Sc_rtl.Interp.set_input interp d.dname (take d.width))
      design.Ast.inputs;
    List.iter
      (fun (d : Ast.decl) -> Sc_rtl.Interp.set_reg interp d.dname (take d.width))
      design.Ast.regs;
    Sc_rtl.Interp.step interp;
    let out = Array.make (state_bits + out_bits) false in
    let opos = ref 0 in
    let put w v =
      for i = 0 to w - 1 do
        out.(!opos + i) <- v land (1 lsl i) <> 0
      done;
      opos := !opos + w
    in
    List.iter
      (fun (d : Ast.decl) -> put d.width (Sc_rtl.Interp.reg interp d.dname))
      design.Ast.regs;
    List.iter
      (fun (d : Ast.decl) -> put d.width (Sc_rtl.Interp.output interp d.dname))
      design.Ast.outputs;
    out
  in
  Sc_logic.Cover.of_function ~ninputs:total_in ~noutputs:(state_bits + out_bits)
    f

let pla_fsm ?(minimize = true) design =
  check_design ~stage:"compile" design;
  let state_bits =
    List.fold_left (fun a (d : Ast.decl) -> a + d.width) 0 design.Ast.regs
  in
  let out_bits =
    List.fold_left (fun a (d : Ast.decl) -> a + d.width) 0 design.Ast.outputs
  in
  let pla =
    Sc_obs.Obs.span "compile" @@ fun () ->
    Sc_pla.Generator.generate ~minimize
      ~name:(design.Ast.name ^ "_pla")
      (fsm_cover design)
  in
  (* wrap: inputs and state feed the PLA; state bits register its outputs *)
  let b = Builder.create design.Ast.name in
  let input_nets =
    List.concat_map
      (fun (d : Ast.decl) -> Array.to_list (Builder.input b d.dname d.width))
      design.Ast.inputs
  in
  let qs = Builder.fresh_vec b state_bits in
  let pla_in = Array.of_list (input_nets @ Array.to_list qs) in
  let pla_out = Builder.fresh_vec b (state_bits + out_bits) in
  Builder.inst b ~name:"control" pla.Sc_pla.Generator.netlist
    [ ("in", pla_in); ("out", pla_out) ];
  Array.iteri
    (fun i q -> Builder.gate_into b Gate.Dff [| pla_out.(i) |] q)
    qs;
  let opos = ref state_bits in
  List.iter
    (fun (d : Ast.decl) ->
      Builder.output b d.dname (Array.sub pla_out !opos d.width);
      opos := !opos + d.width)
    design.Ast.outputs;
  let circuit = Builder.finish b in
  let dff_area = (Sc_stdcell.Library.get Gate.Dff).Sc_stdcell.Library.area in
  let result =
    { circuit
    ; stats = Circuit.stats circuit
    ; cell_area =
        Sc_layout.Cell.area pla.Sc_pla.Generator.layout
        + (state_bits * dff_area)
    ; critical_path = Timing.critical_path circuit
    }
  in
  (result, pla)

let verify_against_interp design circuit cycles stim =
  let interp = Sc_rtl.Interp.create design in
  let engine = Sc_sim.Engine.create circuit in
  let compared = ref 0 in
  let ok = ref true in
  for cyc = 0 to cycles - 1 do
    let ins = stim cyc in
    List.iter (fun (n, v) -> Sc_rtl.Interp.set_input interp n v) ins;
    List.iter (fun (n, v) -> Sc_sim.Engine.set_input_int engine n v) ins;
    (* Both models report outputs as f(state_k, in_k): the interpreter
       computes them inside [step] from pre-cycle state; the circuit shows
       them combinationally once inputs settle, BEFORE the clock edge. *)
    Sc_rtl.Interp.step interp;
    let all_known =
      List.for_all
        (fun (d : Ast.decl) ->
          Sc_sim.Engine.get_output_int engine d.dname <> None)
        design.Ast.outputs
    in
    if all_known then begin
      incr compared;
      List.iter
        (fun (d : Ast.decl) ->
          let expected = Sc_rtl.Interp.output interp d.dname in
          if Sc_sim.Engine.get_output_int engine d.dname <> Some expected then
            ok := false)
        design.Ast.outputs
    end;
    Sc_sim.Engine.step engine
  done;
  !ok && !compared > 0
