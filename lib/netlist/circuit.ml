type net = int

type port_dir = In | Out

type port = { port_name : string; dir : port_dir; bits : net array }

type gate_inst = { kind : Gate.kind; gname : string; ins : net array; out : net }

type t =
  { cname : string
  ; ports : port list
  ; gates : gate_inst list
  ; insts : inst list
  ; net_count : int
  ; net_names : (net * string) list
  }

and inst = { iname : string; sub : t; conns : (string * net array) list }

let false_net = 0
let true_net = 1

let create ~name ~ports ~gates ~insts ~net_count ~net_names =
  let check_net what n =
    if n < 0 || n >= net_count then
      invalid_arg (Printf.sprintf "Circuit %s: net %d out of range in %s" name n what)
  in
  List.iter
    (fun p -> Array.iter (check_net ("port " ^ p.port_name)) p.bits)
    ports;
  List.iter
    (fun g ->
      if Array.length g.ins <> Gate.arity g.kind then
        invalid_arg
          (Printf.sprintf "Circuit %s: gate %s has %d inputs, %s wants %d" name
             g.gname (Array.length g.ins) (Gate.to_string g.kind)
             (Gate.arity g.kind));
      Array.iter (check_net ("gate " ^ g.gname)) g.ins;
      check_net ("gate " ^ g.gname) g.out)
    gates;
  List.iter
    (fun i ->
      List.iter
        (fun (pname, nets) ->
          match List.find_opt (fun p -> p.port_name = pname) i.sub.ports with
          | None ->
            invalid_arg
              (Printf.sprintf "Circuit %s: instance %s has no port %s" name
                 i.iname pname)
          | Some p ->
            if Array.length nets <> Array.length p.bits then
              invalid_arg
                (Printf.sprintf "Circuit %s: instance %s port %s width %d <> %d"
                   name i.iname pname (Array.length nets) (Array.length p.bits));
            Array.iter (check_net ("instance " ^ i.iname)) nets)
        i.conns;
      (* every sub port must be connected *)
      List.iter
        (fun p ->
          if not (List.mem_assoc p.port_name i.conns) then
            invalid_arg
              (Printf.sprintf "Circuit %s: instance %s leaves port %s open" name
                 i.iname p.port_name))
        i.sub.ports)
    insts;
  { cname = name; ports; gates; insts; net_count; net_names }

let find_port_opt c n = List.find_opt (fun p -> p.port_name = n) c.ports

let find_port c n =
  match find_port_opt c n with Some p -> p | None -> raise Not_found

let inputs c = List.filter (fun p -> p.dir = In) c.ports
let outputs c = List.filter (fun p -> p.dir = Out) c.ports

let rec flatten c =
  if c.insts = [] then c
  else begin
    let next = ref c.net_count in
    let gates = ref (List.rev c.gates) in
    let names = ref (List.rev c.net_names) in
    let inline (i : inst) =
      let sub = flatten i.sub in
      (* map: sub net -> parent net *)
      let map = Array.make sub.net_count (-1) in
      map.(false_net) <- false_net;
      map.(true_net) <- true_net;
      List.iter
        (fun (pname, nets) ->
          let p = List.find (fun p -> p.port_name = pname) sub.ports in
          Array.iteri
            (fun k bit ->
              if map.(bit) = -1 then map.(bit) <- nets.(k)
              else if map.(bit) <> nets.(k) then
                (* one sub net exposed through two port bits: alias by a
                   buffer so both parent nets carry it *)
                gates :=
                  { kind = Gate.Buf
                  ; gname = i.iname ^ ".alias"
                  ; ins = [| map.(bit) |]
                  ; out = nets.(k)
                  }
                  :: !gates)
            p.bits)
        i.conns;
      for n = 0 to sub.net_count - 1 do
        if map.(n) = -1 then begin
          map.(n) <- !next;
          incr next
        end
      done;
      List.iter
        (fun (n, nm) -> names := (map.(n), i.iname ^ "." ^ nm) :: !names)
        sub.net_names;
      List.iter
        (fun g ->
          gates :=
            { g with
              gname = i.iname ^ "." ^ g.gname
            ; ins = Array.map (fun n -> map.(n)) g.ins
            ; out = map.(g.out)
            }
            :: !gates)
        sub.gates
    in
    List.iter inline c.insts;
    create ~name:c.cname ~ports:c.ports ~gates:(List.rev !gates) ~insts:[]
      ~net_count:!next ~net_names:(List.rev !names)
  end

let drivers c =
  (* count of drivers per net; constants and input ports drive *)
  let d = Array.make c.net_count 0 in
  d.(false_net) <- 1;
  d.(true_net) <- 1;
  List.iter
    (fun p ->
      if p.dir = In then Array.iter (fun b -> d.(b) <- d.(b) + 1) p.bits)
    c.ports;
  List.iter (fun g -> d.(g.out) <- d.(g.out) + 1) c.gates;
  List.iter
    (fun i ->
      List.iter
        (fun (pname, nets) ->
          match List.find_opt (fun p -> p.port_name = pname) i.sub.ports with
          | Some p when p.dir = Out ->
            Array.iter (fun b -> d.(b) <- d.(b) + 1) nets
          | _ -> ())
        i.conns)
    c.insts;
  d

let check c =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let d = drivers c in
  if d.(false_net) > 1 then add "constant false net is driven";
  if d.(true_net) > 1 then add "constant true net is driven";
  Array.iteri
    (fun n k ->
      if n > true_net && k > 1 then add "net %d has %d drivers" n k)
    d;
  let need_driver what n =
    if d.(n) = 0 then add "%s uses undriven net %d" what n
  in
  List.iter
    (fun g ->
      Array.iter (need_driver (Printf.sprintf "gate %s" g.gname)) g.ins)
    c.gates;
  List.iter
    (fun p ->
      if p.dir = Out then
        Array.iter (need_driver (Printf.sprintf "output port %s" p.port_name)) p.bits)
    c.ports;
  List.iter
    (fun i ->
      List.iter
        (fun (pname, nets) ->
          match List.find_opt (fun p -> p.port_name = pname) i.sub.ports with
          | Some p when p.dir = In ->
            Array.iter
              (need_driver (Printf.sprintf "instance %s port %s" i.iname pname))
              nets
          | _ -> ())
        i.conns)
    c.insts;
  List.rev !problems

let has_combinational_cycle c =
  let f = flatten c in
  (* adjacency: for each combinational gate, edges in -> out *)
  let succs = Array.make f.net_count [] in
  List.iter
    (fun g ->
      if not (Gate.is_sequential g.kind) then
        Array.iter (fun i -> succs.(i) <- g.out :: succs.(i)) g.ins)
    f.gates;
  let state = Array.make f.net_count 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let rec dfs n =
    if state.(n) = 1 then true
    else if state.(n) = 2 then false
    else begin
      state.(n) <- 1;
      let cyc = List.exists dfs succs.(n) in
      state.(n) <- 2;
      cyc
    end
  in
  let rec any n = n < f.net_count && (dfs n || any (n + 1)) in
  any 0

let comb_topo c =
  let f = flatten c in
  let comb = List.filter (fun g -> not (Gate.is_sequential g.kind)) f.gates in
  (* Kahn's algorithm over nets: a gate is ready when all its input nets
     have settled; nets not driven by a combinational gate are sources *)
  let by_input = Array.make f.net_count [] in
  let pending = Array.of_list (List.map (fun g -> Array.length g.ins) comb) in
  List.iteri
    (fun idx g ->
      Array.iter (fun n -> by_input.(n) <- idx :: by_input.(n)) g.ins)
    comb;
  let comb_arr = Array.of_list comb in
  let comb_driven = Array.make f.net_count false in
  List.iter (fun g -> comb_driven.(g.out) <- true) comb;
  let queue = Queue.create () in
  for n = 0 to f.net_count - 1 do
    if not comb_driven.(n) then Queue.add n queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  Array.iteri
    (fun idx g ->
      if Array.length g.ins = 0 then begin
        (* constants: no trigger, ready immediately *)
        pending.(idx) <- -1;
        incr emitted;
        order := comb_arr.(idx) :: !order;
        Queue.add g.out queue
      end)
    comb_arr;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun idx ->
        if pending.(idx) > 0 then begin
          pending.(idx) <- pending.(idx) - 1;
          if pending.(idx) = 0 then begin
            incr emitted;
            order := comb_arr.(idx) :: !order;
            Queue.add comb_arr.(idx).out queue
          end
        end)
      by_input.(n)
  done;
  if !emitted <> Array.length comb_arr then
    invalid_arg ("Circuit.comb_topo: combinational cycle in " ^ f.cname);
  (f, List.rev !order)

type stats =
  { gate_total : int
  ; by_kind : (Gate.kind * int) list
  ; flipflops : int
  ; transistors : int
  ; module_instances : int
  }

let stats c =
  let counts = Hashtbl.create 16 in
  let insts = ref 0 in
  let rec go c mult =
    List.iter
      (fun g ->
        let k = try Hashtbl.find counts g.kind with Not_found -> 0 in
        Hashtbl.replace counts g.kind (k + mult))
      c.gates;
    List.iter
      (fun i ->
        insts := !insts + mult;
        go i.sub mult)
      c.insts
  in
  go c 1;
  let by_kind =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt counts k with
        | Some n when n > 0 -> Some (k, n)
        | _ -> None)
      Gate.all
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by_kind in
  let ffs =
    List.fold_left
      (fun acc (k, n) -> if Gate.is_sequential k then acc + n else acc)
      0 by_kind
  in
  let trans =
    List.fold_left (fun acc (k, n) -> acc + (n * Gate.transistors k)) 0 by_kind
  in
  { gate_total = total
  ; by_kind
  ; flipflops = ffs
  ; transistors = trans
  ; module_instances = !insts
  }

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>gates %d (ffs %d), transistors %d, instances %d@ "
    s.gate_total s.flipflops s.transistors s.module_instances;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "%a:%d " Gate.pp k n)
    s.by_kind;
  Format.fprintf ppf "@]"

let pp ppf c =
  Format.fprintf ppf "circuit %s: %d ports, %d gates, %d insts, %d nets"
    c.cname (List.length c.ports) (List.length c.gates) (List.length c.insts)
    c.net_count
