(** Hierarchical gate-level circuits.

    A circuit is the structural description of the paper's trichotomy: a
    module with named multi-bit ports, primitive gates over single-bit
    nets, and instances of other circuits.  Circuits are immutable; use
    {!Builder} to construct them.

    Nets are small integers local to a module.  Net 0 is constant false
    and net 1 constant true in every module. *)

type net = int

type port_dir = In | Out

type port = { port_name : string; dir : port_dir; bits : net array }

type gate_inst = { kind : Gate.kind; gname : string; ins : net array; out : net }

type t = private
  { cname : string
  ; ports : port list
  ; gates : gate_inst list
  ; insts : inst list
  ; net_count : int
  ; net_names : (net * string) list
  }

and inst = { iname : string; sub : t; conns : (string * net array) list }

val false_net : net

val true_net : net

(** Used by {!Builder}; validates port/gate/instance consistency.
    @raise Invalid_argument on out-of-range nets or bad connections. *)
val create :
  name:string ->
  ports:port list ->
  gates:gate_inst list ->
  insts:inst list ->
  net_count:int ->
  net_names:(net * string) list ->
  t

val find_port : t -> string -> port

val find_port_opt : t -> string -> port option

val inputs : t -> port list

val outputs : t -> port list

(** [flatten c] expands all instances into one flat gate-level module.
    Port structure is preserved; internal nets are renumbered and named
    with instance-path prefixes. *)
val flatten : t -> t

(** Structural well-formedness of a flat or hierarchical circuit: every
    gate input and every output-port bit has exactly one driver (gate
    output, input port bit, or constant); no net has two drivers.
    Returns human-readable problems, empty when sound. *)
val check : t -> string list

(** Combinational cycle detection on the flattened circuit (paths through
    flip-flops are not cycles). *)
val has_combinational_cycle : t -> bool

(** [comb_topo c] flattens [c] and returns the flattened circuit together
    with its combinational gates in topological (fanin-before-fanout)
    order — the evaluation order used by symbolic analyses such as
    {!Sc_equiv} and by unrolling.  Sequential gates are omitted from the
    returned list (their outputs are sources).
    @raise Invalid_argument on a combinational cycle. *)
val comb_topo : t -> t * gate_inst list

type stats =
  { gate_total : int
  ; by_kind : (Gate.kind * int) list
  ; flipflops : int
  ; transistors : int
  ; module_instances : int  (** instances at all levels, the E1 chip count *)
  }

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val pp : Format.formatter -> t -> unit
