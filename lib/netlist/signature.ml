type port_sig =
  { sname : string
  ; sdir : Circuit.port_dir
  ; swidth : int
  }

type t =
  { mname : string
  ; sports : port_sig list
  ; clocked : bool
  }

let rec circuit_clocked (c : Circuit.t) =
  List.exists (fun (g : Circuit.gate_inst) -> Gate.is_sequential g.kind) c.gates
  || List.exists (fun (i : Circuit.inst) -> circuit_clocked i.sub) c.insts

let of_circuit (c : Circuit.t) =
  { mname = c.Circuit.cname
  ; sports =
      List.map
        (fun (p : Circuit.port) ->
          { sname = p.port_name; sdir = p.dir; swidth = Array.length p.bits })
        c.Circuit.ports
  ; clocked = circuit_clocked c
  }

let find t name = List.find_opt (fun p -> p.sname = name) t.sports

let dir_to_string = function Circuit.In -> "in" | Circuit.Out -> "out"

let port_to_string p =
  Printf.sprintf "%s %s[%d]" (dir_to_string p.sdir) p.sname p.swidth

let to_string t =
  Printf.sprintf "module %s (%s) %s" t.mname
    (String.concat ", " (List.map port_to_string t.sports))
    (if t.clocked then "clocked" else "comb")

let digest t = Digest.to_hex (Digest.string (to_string t))

let compatible ~expected ~got =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec ports = function
    | [] -> (
      (* every expected port matched; anything extra on [got]? *)
      match
        List.find_opt (fun p -> find expected p.sname = None) got.sports
      with
      | Some p ->
        err "port %s: %s declares %s but %s has no such port" p.sname
          got.mname (port_to_string p) expected.mname
      | None -> Ok ())
    | e :: rest -> (
      match find got e.sname with
      | None ->
        err "port %s: %s declares %s but %s has no such port" e.sname
          expected.mname (port_to_string e) got.mname
      | Some g when g.sdir <> e.sdir || g.swidth <> e.swidth ->
        err "port %s: %s declares %s but %s declares %s" e.sname
          expected.mname (port_to_string e) got.mname (port_to_string g)
      | Some _ -> ports rest)
  in
  match ports expected.sports with
  | Error _ as e -> e
  | Ok () when expected.clocked <> got.clocked ->
    err "%s is %s but %s is %s" expected.mname
      (if expected.clocked then "clocked" else "combinational")
      got.mname
      (if got.clocked then "clocked" else "combinational")
  | Ok () -> Ok ()

let pp fmt t = Format.pp_print_string fmt (to_string t)
