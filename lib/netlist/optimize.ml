(* Union-find over nets: alias.(n) points toward the canonical net.  Only
   gate outputs are ever aliased (to an equivalent existing net), so the
   canonical net always has a real driver. *)

let simplify c =
  Sc_obs.Obs.span "optimize" @@ fun () ->
  let f = Circuit.flatten c in
  Sc_obs.Obs.count "optimize.gates_in" (List.length f.Circuit.gates);
  let n = f.Circuit.net_count in
  let alias = Array.init n (fun i -> i) in
  let rec find i = if alias.(i) = i then i else find alias.(i) in
  let union_to target src = alias.(find src) <- find target in
  let gates = Array.of_list f.Circuit.gates in
  let alive = Array.make (Array.length gates) true in
  let const_of net =
    let r = find net in
    if r = Circuit.false_net then Some false
    else if r = Circuit.true_net then Some true
    else None
  in
  let cnet b = if b then Circuit.true_net else Circuit.false_net in
  (* track inverters so inv(inv x) collapses: inverted_of canonical input *)
  let commutative (k : Gate.kind) =
    match k with
    | Gate.Nand2 | Gate.Nor2 | Gate.And2 | Gate.Or2 | Gate.Xor2 | Gate.Xnor2 ->
      true
    | _ -> false
  in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 8 do
    changed := false;
    incr passes;
    let cse : (string, int) Hashtbl.t = Hashtbl.create 256 in
    let inv_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun gi g ->
        if alive.(gi) then begin
          let ins = Array.map find g.Circuit.ins in
          let out = g.Circuit.out in
          let kill replacement =
            alive.(gi) <- false;
            union_to replacement out;
            changed := true
          in
          (* 1. full constant folding for combinational gates *)
          let all_const =
            (not (Gate.is_sequential g.Circuit.kind))
            && Array.for_all (fun i -> const_of i <> None) ins
          in
          if all_const then
            kill (cnet (Gate.eval g.Circuit.kind (Array.map (fun i -> Option.get (const_of i)) ins)))
          else begin
            (* 2. partial simplifications *)
            let simplified =
              match (g.Circuit.kind, Array.to_list ins) with
              | Gate.Buf, [ a ] -> Some (`Alias a)
              | Gate.Inv, [ a ] -> (
                match Hashtbl.find_opt inv_of a with
                | Some prior when prior <> out -> Some (`Alias prior)
                | _ -> (
                  (* inv(inv x) = x: is a itself an inverter output? *)
                  match
                    Hashtbl.fold
                      (fun src invd acc -> if invd = a then Some src else acc)
                      inv_of None
                  with
                  | Some src -> Some (`Alias src)
                  | None -> None))
              | Gate.And2, [ a; b ] when a = b -> Some (`Alias a)
              | Gate.Or2, [ a; b ] when a = b -> Some (`Alias a)
              | Gate.Xor2, [ a; b ] when a = b -> Some (`Const false)
              | Gate.Xnor2, [ a; b ] when a = b -> Some (`Const true)
              | Gate.And2, [ a; b ] -> (
                match (const_of a, const_of b) with
                | Some false, _ | _, Some false -> Some (`Const false)
                | Some true, _ -> Some (`Alias b)
                | _, Some true -> Some (`Alias a)
                | _ -> None)
              | Gate.Or2, [ a; b ] -> (
                match (const_of a, const_of b) with
                | Some true, _ | _, Some true -> Some (`Const true)
                | Some false, _ -> Some (`Alias b)
                | _, Some false -> Some (`Alias a)
                | _ -> None)
              | Gate.Xor2, [ a; b ] -> (
                match (const_of a, const_of b) with
                | Some false, _ -> Some (`Alias b)
                | _, Some false -> Some (`Alias a)
                | _ -> None)
              | Gate.Nand2, [ a; b ] -> (
                match (const_of a, const_of b) with
                | Some false, _ | _, Some false -> Some (`Const true)
                | _ -> None)
              | Gate.Nor2, [ a; b ] -> (
                match (const_of a, const_of b) with
                | Some true, _ | _, Some true -> Some (`Const false)
                | _ -> None)
              | Gate.Mux2, [ a0; a1; s ] -> (
                match const_of s with
                | Some false -> Some (`Alias a0)
                | Some true -> Some (`Alias a1)
                | None -> if a0 = a1 then Some (`Alias a0) else None)
              | Gate.Dffe, [ d; en ] -> (
                match const_of en with
                | Some true -> Some (`Rewrite (Gate.Dff, [| d |]))
                | _ -> None)
              | _ -> None
            in
            match simplified with
            | Some (`Alias a) -> kill a
            | Some (`Const b) -> kill (cnet b)
            | Some (`Rewrite (kind, ins')) ->
              gates.(gi) <- { g with Circuit.kind; ins = ins' };
              changed := true
            | None ->
              (* 3. CSE — combinational gates only.  Two registers with
                 the same D input are NOT the same net: they hold
                 distinct state until the clock edge propagates, so
                 merging them changes simulation behaviour.  Sequential
                 gates never enter the table. *)
              if not (Gate.is_sequential g.Circuit.kind) then begin
                let ins_key =
                  let l = Array.to_list ins in
                  let l = if commutative g.Circuit.kind then List.sort compare l else l in
                  String.concat "," (List.map string_of_int l)
                in
                let key = Gate.to_string g.Circuit.kind ^ ":" ^ ins_key in
                match Hashtbl.find_opt cse key with
                | Some prior when prior <> out -> kill prior
                | Some _ -> ()
                | None ->
                  Hashtbl.replace cse key out;
                  if g.Circuit.kind = Gate.Inv then Hashtbl.replace inv_of ins.(0) out
              end;
              (* keep the resolved inputs *)
              if ins <> g.Circuit.ins then begin
                gates.(gi) <- { g with Circuit.ins = ins };
                changed := true
              end
          end
        end)
      gates
  done;
  (* dead-gate elimination: walk back from output ports *)
  let needed = Array.make n false in
  let gate_of_out = Hashtbl.create 256 in
  Array.iteri
    (fun gi g -> if alive.(gi) then Hashtbl.replace gate_of_out g.Circuit.out gi)
    gates;
  let queue = Queue.create () in
  let need net =
    let r = find net in
    if not needed.(r) then begin
      needed.(r) <- true;
      Queue.add r queue
    end
  in
  List.iter
    (fun p ->
      if p.Circuit.dir = Circuit.Out then Array.iter need p.Circuit.bits)
    f.Circuit.ports;
  while not (Queue.is_empty queue) do
    let net = Queue.pop queue in
    match Hashtbl.find_opt gate_of_out net with
    | Some gi -> Array.iter need gates.(gi).Circuit.ins
    | None -> ()
  done;
  let final_gates =
    Array.to_list gates
    |> List.filteri (fun gi _ -> alive.(gi))
    |> List.filter_map (fun g ->
           let out = find g.Circuit.out in
           if needed.(out) then
             Some { g with Circuit.ins = Array.map find g.Circuit.ins; out }
           else None)
  in
  let ports =
    List.map
      (fun p -> { p with Circuit.bits = Array.map find p.Circuit.bits })
      f.Circuit.ports
  in
  let net_names =
    List.map (fun (net, nm) -> (find net, nm)) f.Circuit.net_names
  in
  Sc_obs.Obs.count "optimize.gates_out" (List.length final_gates);
  Circuit.create ~name:f.Circuit.cname ~ports ~gates:final_gates ~insts:[]
    ~net_count:n ~net_names
