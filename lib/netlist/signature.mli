(** Typed module interface signatures.

    A signature is what a module's consumers are allowed to depend on:
    its port names, directions and widths, plus whether the module holds
    clocked state.  Nothing about the body — gate counts, placement,
    area — leaks through, so separate compilation can key a consumer on
    {!digest} alone: as long as an edit leaves the signature unchanged,
    every consumer's own compilation stays cache-valid.

    Signatures render to a canonical one-line string ({!to_string});
    {!digest} is the MD5 of that rendering, making it stable across
    processes and usable inside pipeline cache keys. *)

type port_sig =
  { sname : string
  ; sdir : Circuit.port_dir
  ; swidth : int
  }

type t =
  { mname : string
  ; sports : port_sig list  (** in declaration order *)
  ; clocked : bool  (** the module contains flip-flops (its own or a sub's) *)
  }

val of_circuit : Circuit.t -> t
(** Extract the interface of a circuit: its ports in declaration order,
    clocking inferred from sequential gates anywhere in the hierarchy. *)

val find : t -> string -> port_sig option

val to_string : t -> string
(** Canonical rendering, e.g.
    ["module alu (in a[4], in b[4], out y[4]) comb"].  Equal signatures
    render equally; this is the digest's preimage. *)

val digest : t -> string
(** Hex MD5 of {!to_string} — stable across processes and OCaml
    versions, safe to embed in pipeline cache keys. *)

val compatible : expected:t -> got:t -> (unit, string) result
(** Structural compatibility: same port set with identical directions
    and widths (module names and port order are not compared; clocking
    must match).  The error names both modules and the offending port,
    e.g. ["port y: alu_ref declares out y[4] but alu declares out y[8]"]. *)

val pp : Format.formatter -> t -> unit
