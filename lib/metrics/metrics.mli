(** Quality-of-result telemetry: machine-readable snapshots of what a
    compilation produced and what it cost, baseline diffing, and the
    regression gate CI runs on every commit.

    The paper's claim C3 is that automatic compilation works "at a cost
    in space and speed"; the [Obs] layer can {e print} that cost, this
    module {e records} it.  A {!snapshot} is captured from the recorder
    after a compile ([scc ... --metrics out.json]), serialized as
    versioned JSON, committed as a baseline ([bench/baselines/*.json]),
    and compared with {!diff}: every metric delta is classified as
    improved, neutral or regressed against per-metric relative/absolute
    {!thresholds}, and [scc diff] turns a regression into a non-zero
    exit — which makes every future perf or QoR change self-verifying.

    Metrics live in two sections with different contracts:

    - {e QoR} — gate/register/transistor counts, bounding-box area,
      placement HPWL, routed channel tracks, CIF rect counts per layer,
      DRC violations, BDD proof sizes.  Deterministic: byte-identical
      across pool widths ([-j 1] vs [-j 4]) and across machines, so QoR
      diffs are exact (default threshold zero).
    - {e runtime} — per-stage wall/self time (whole microseconds, so the
      JSON stays integral), cache hit/miss/eviction counts, pool width
      and per-domain task counts.  Volatile by nature; diffs are
      thresholded and, by default, informational rather than gating.

    Every value is stored as a float that is in fact integral (counts,
    square lambda, microseconds), which keeps the JSON encoding exact
    and the files byte-stable. *)

(** {2 Snapshots} *)

type snapshot =
  { version : int  (** format version; {!schema_version} when captured *)
  ; design : string
  ; qor : (string * float) list  (** sorted by key; deterministic *)
  ; runtime : (string * float) list  (** sorted by key; volatile *)
  }

val schema_version : int

val is_runtime_key : string -> bool
(** Keys under ["stage."], ["cache."], ["pool."], ["pipeline."] or
    ending in [".tasks"]/[".calls"] are runtime; everything else is
    QoR. *)

val capture :
  ?recorder:Sc_obs.Obs.Recorder.t -> design:string -> unit -> snapshot
(** Build a snapshot from an [Obs] recorder's state — [recorder] if
    given, the ambient recorder otherwise: global counters and gauges
    split into the two sections by {!is_runtime_key}, and the per-stage
    table folded in as
    ["stage.<path>.total_us"/".self_us"/".calls"].  Times are rounded
    to whole microseconds.  Reads completed events, so it also works
    after the recorder is disabled. *)

(** {2 JSON} *)

val to_json : snapshot -> Sc_obs.Json.t
val of_json : Sc_obs.Json.t -> (snapshot, string) result

val to_string : snapshot -> string
(** Compact single-line JSON; deterministic (sections sorted by key). *)

val of_string : string -> (snapshot, string) result

val qor_string : snapshot -> string
(** The QoR section alone, serialized — the byte string the [-j]
    determinism tests compare. *)

val write : string -> snapshot -> unit
val read : string -> (snapshot, string) result

(** {2 Diffing} *)

(** What a metric getting bigger means. *)
type direction =
  | Lower_better  (** area, gates, violations, time — the default *)
  | Higher_better  (** cache hits, proved cones *)
  | Informational  (** pool width, call counts: change is never a verdict *)

val direction_of_key : string -> direction

type threshold =
  { rel : float  (** |delta| / |base| at or below this is neutral *)
  ; abs : float  (** |delta| at or below this is neutral *)
  }

(** Per-metric overrides: an exact key, or a prefix pattern ending in
    ['*'].  The most specific match wins (exact, then longest prefix);
    unmatched keys fall back to the class default — exact for QoR
    ([rel = 0, abs = 0]), loose for runtime ([rel = 0.25,
    abs = 20000] us). *)
type thresholds

val default_thresholds : thresholds

val thresholds_of_string : string -> (thresholds, string) result
(** Parse a thresholds file: a JSON object mapping key-or-pattern to
    [{"rel": r, "abs": a}] (either field may be omitted). *)

val threshold_for : thresholds -> string -> threshold

type verdict = Improved | Neutral | Regressed

type delta =
  { key : string
  ; runtime : bool
  ; base : float option  (** [None]: metric is new in the current run *)
  ; cur : float option  (** [None]: metric disappeared *)
  ; verdict : verdict  (** added/removed metrics are always [Neutral] *)
  }

type report =
  { base_design : string
  ; cur_design : string
  ; deltas : delta list  (** QoR first, then runtime, each sorted by key *)
  }

val diff : ?thresholds:thresholds -> snapshot -> snapshot -> report
(** [diff base current] — classify every metric present in either
    snapshot. *)

val regressions : ?runtime:bool -> report -> int
(** Count of [Regressed] deltas; QoR only unless [runtime] (default
    [false]) also counts the runtime section. *)

val gate : ?runtime:bool -> report -> bool
(** [true] when the report should fail a quality gate:
    [regressions ?runtime report > 0]. *)

(** {2 Rendering} *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** The human table behind [scc report]: both sections, stage times
    shown in milliseconds. *)

val pp_report : Format.formatter -> report -> unit
(** The classified diff table behind [scc diff]: only changed metrics,
    verdict summary at the end. *)
