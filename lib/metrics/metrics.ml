module Json = Sc_obs.Json
module Obs = Sc_obs.Obs

let schema = "scc-metrics"
let schema_version = 1

type snapshot =
  { version : int
  ; design : string
  ; qor : (string * float) list
  ; runtime : (string * float) list
  }

(* --- section classification --- *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let n = String.length suf and m = String.length s in
  m >= n && String.sub s (m - n) n = suf

let is_runtime_key k =
  has_prefix "stage." k || has_prefix "cache." k || has_prefix "pool." k
  || has_prefix "pipeline." k || has_suffix ".tasks" k
  || has_suffix ".calls" k
  || has_suffix "_us" k (* wall-clock counters, e.g. equiv.certificate_us *)

(* --- capture --- *)

let round_us ms = Float.round (ms *. 1000.0)

let by_key (a, _) (b, _) = String.compare a b

let capture ?recorder ~design () =
  let r = match recorder with Some r -> r | None -> Obs.ambient () in
  let qor, runtime =
    List.fold_left
      (fun (q, r) (k, v) ->
        let e = (k, float_of_int v) in
        if is_runtime_key k then (q, e :: r) else (e :: q, r))
      ([], [])
      (Obs.Recorder.totals r)
  in
  let stages =
    List.concat_map
      (fun (row : Obs.row) ->
        let base = "stage." ^ row.rpath in
        [ (base ^ ".total_us", round_us row.total_ms)
        ; (base ^ ".self_us", round_us row.self_ms)
        ; (base ^ ".calls", float_of_int row.calls)
        ])
      (Obs.Recorder.stage_table r)
  in
  { version = schema_version
  ; design
  ; qor = List.sort by_key qor
  ; runtime = List.sort by_key (stages @ runtime)
  }

(* --- JSON --- *)

let section_to_json kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs)

let to_json s =
  Json.Obj
    [ ("schema", Json.Str schema)
    ; ("version", Json.Num (float_of_int s.version))
    ; ("design", Json.Str s.design)
    ; ("qor", section_to_json s.qor)
    ; ("runtime", section_to_json s.runtime)
    ]

let section_of_json name j =
  match j with
  | None -> Error (Printf.sprintf "missing %S section" name)
  | Some (Json.Obj fields) ->
    let rec go acc = function
      | [] -> Ok (List.sort by_key (List.rev acc))
      | (k, Json.Num v) :: rest -> go ((k, v) :: acc) rest
      | (k, _) :: _ -> Error (Printf.sprintf "%s.%s: expected a number" name k)
    in
    go [] fields
  | Some _ -> Error (Printf.sprintf "%S: expected an object" name)

let of_json j =
  match j with
  | Json.Obj _ -> (
    (match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "schema %S is not %S" s schema)
    | _ -> Error "missing \"schema\" marker")
    |> fun ok ->
    match ok with
    | Error _ as e -> e
    | Ok () -> (
      match (Json.member "version" j, Json.member "design" j) with
      | Some (Json.Num v), Some (Json.Str design) ->
        let version = int_of_float v in
        if version > schema_version then
          Error (Printf.sprintf "snapshot version %d is newer than supported %d" version schema_version)
        else (
          match
            ( section_of_json "qor" (Json.member "qor" j)
            , section_of_json "runtime" (Json.member "runtime" j) )
          with
          | Ok qor, Ok runtime -> Ok { version; design; qor; runtime }
          | (Error _ as e), _ | _, (Error _ as e) -> e)
      | _ -> Error "missing \"version\" or \"design\""))
  | _ -> Error "expected a JSON object"

let to_string s = Json.to_string (to_json s)

let of_string text =
  match Json.parse text with
  | Error e -> Error e
  | Ok j -> of_json j

let qor_string s = Json.to_string (section_to_json s.qor)

let write path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string s);
      output_char oc '\n')

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> ( match of_string text with Ok s -> Ok s | Error e -> Error (path ^ ": " ^ e))
  | exception Sys_error e -> Error e

(* --- diffing --- *)

type direction = Lower_better | Higher_better | Informational

let direction_of_key k =
  if
    k = "pool.width" || has_suffix ".calls" k || has_suffix ".tasks" k
    || k = "equiv.certificate.nodes"
  then Informational
  else if
    k = "equiv.cones" || k = "equiv.certified_passes"
    || k = "equiv.certificate.cones"
    || (has_prefix "cache." k && has_suffix "hit" k)
  then Higher_better
  else Lower_better

type threshold = { rel : float; abs : float }

(* a pattern's fields are optional so "stage.*" can tighten [rel] while
   inheriting the class default for [abs] *)
type partial = { prel : float option; pabs : float option }

type thresholds = (string * partial) list

let default_thresholds = []

let qor_default = { rel = 0.0; abs = 0.0 }
let runtime_default = { rel = 0.25; abs = 20_000.0 }

let threshold_for ts key =
  let fallback = if is_runtime_key key then runtime_default else qor_default in
  let matching =
    List.filter_map
      (fun (pat, p) ->
        if pat = key then Some (max_int, p)
        else if has_suffix "*" pat then begin
          let prefix = String.sub pat 0 (String.length pat - 1) in
          if has_prefix prefix key then Some (String.length prefix, p) else None
        end
        else None)
      ts
  in
  match List.sort (fun (a, _) (b, _) -> Int.compare b a) matching with
  | [] -> fallback
  | (_, p) :: _ ->
    { rel = Option.value ~default:fallback.rel p.prel
    ; abs = Option.value ~default:fallback.abs p.pabs
    }

let thresholds_of_string text =
  match Json.parse text with
  | Error e -> Error e
  | Ok (Json.Obj fields) ->
    let entry (pat, j) =
      match j with
      | Json.Obj _ ->
        let num name =
          match Json.member name j with
          | Some (Json.Num v) -> Ok (Some v)
          | None -> Ok None
          | Some _ -> Error (Printf.sprintf "%s.%s: expected a number" pat name)
        in
        (match (num "rel", num "abs") with
        | Ok prel, Ok pabs -> Ok (pat, { prel; pabs })
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | _ -> Error (Printf.sprintf "%s: expected {\"rel\": r, \"abs\": a}" pat)
    in
    List.fold_left
      (fun acc f ->
        match (acc, entry f) with
        | Ok l, Ok e -> Ok (l @ [ e ])
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) fields
  | Ok _ -> Error "thresholds: expected a JSON object"

type verdict = Improved | Neutral | Regressed

type delta =
  { key : string
  ; runtime : bool
  ; base : float option
  ; cur : float option
  ; verdict : verdict
  }

type report =
  { base_design : string
  ; cur_design : string
  ; deltas : delta list
  }

let classify ts key b c =
  let d = c -. b in
  if d = 0.0 then Neutral
  else
    let t = threshold_for ts key in
    if
      Float.abs d <= t.abs
      || (b <> 0.0 && Float.abs d /. Float.abs b <= t.rel)
    then Neutral
    else
      match direction_of_key key with
      | Informational -> Neutral
      | Lower_better -> if d > 0.0 then Regressed else Improved
      | Higher_better -> if d > 0.0 then Improved else Regressed

let diff ?(thresholds = default_thresholds) base cur =
  let section runtime bl cl =
    let keys =
      List.sort_uniq String.compare (List.map fst bl @ List.map fst cl)
    in
    List.map
      (fun key ->
        let b = List.assoc_opt key bl and c = List.assoc_opt key cl in
        let verdict =
          match (b, c) with
          | Some b, Some c -> classify thresholds key b c
          | _ -> Neutral (* added or removed: informational *)
        in
        { key; runtime; base = b; cur = c; verdict })
      keys
  in
  { base_design = base.design
  ; cur_design = cur.design
  ; deltas =
      section false base.qor cur.qor @ section true base.runtime cur.runtime
  }

let regressions ?(runtime = false) r =
  List.length
    (List.filter
       (fun d -> d.verdict = Regressed && ((not d.runtime) || runtime))
       r.deltas)

let gate ?runtime r = regressions ?runtime r > 0

(* --- rendering --- *)

let pp_value ppf key v =
  if has_suffix "_us" key then Format.fprintf ppf "%12.2f ms" (v /. 1000.0)
  else Format.fprintf ppf "%12.0f   " v

let pp_snapshot ppf s =
  Format.fprintf ppf "design %s (%s v%d)@." s.design schema s.version;
  let section title kvs =
    if kvs <> [] then begin
      Format.fprintf ppf "@.%s@." title;
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-34s %a@." k (fun ppf -> pp_value ppf k) v)
        kvs
    end
  in
  section "QoR (deterministic)" s.qor;
  section "runtime (volatile)" s.runtime

let verdict_tag = function
  | Improved -> "improved"
  | Neutral -> "neutral"
  | Regressed -> "REGRESSED"

let pp_report ppf r =
  if r.base_design <> r.cur_design then
    Format.fprintf ppf "note: comparing design %s against %s@." r.base_design
      r.cur_design;
  let changed =
    List.filter (fun d -> d.base <> d.cur) r.deltas
  in
  if changed = [] then Format.fprintf ppf "no metric changed@."
  else begin
    Format.fprintf ppf "%-10s %-34s %12s %12s %10s@." "verdict" "metric"
      "baseline" "current" "delta";
    List.iter
      (fun d ->
        let num = function
          | Some v ->
            if has_suffix "_us" d.key then Printf.sprintf "%.2fms" (v /. 1000.0)
            else Printf.sprintf "%.0f" v
          | None -> "-"
        in
        let delta =
          match (d.base, d.cur) with
          | Some b, Some c ->
            let pct =
              if b <> 0.0 then Printf.sprintf " (%+.1f%%)" (100.0 *. (c -. b) /. Float.abs b)
              else ""
            in
            Printf.sprintf "%+.0f%s" (c -. b) pct
          | None, Some _ -> "added"
          | Some _, None -> "removed"
          | None, None -> "-"
        in
        Format.fprintf ppf "%-10s %-34s %12s %12s %10s@."
          (verdict_tag d.verdict) d.key (num d.base) (num d.cur) delta)
      changed
  end;
  let count section v =
    List.length
      (List.filter (fun d -> d.runtime = section && d.verdict = v) r.deltas)
  in
  Format.fprintf ppf
    "qor: %d improved, %d regressed; runtime: %d improved, %d regressed@."
    (count false Improved) (count false Regressed) (count true Improved)
    (count true Regressed)
