(** The standard module library: one characterized cell per gate kind.

    Primitive NMOS cells (inverter, NAND2/3, NOR2) are transistor-level
    layouts from {!Nmos}; the remaining kinds are compositions of
    primitives placed in a row (e.g. AND2 = NAND2 + INV, XOR2 = four
    NAND2s, DFF = six NAND2s), which gives them realistic area while
    abstracting intra-cell wiring — the same granularity as the
    standard-module sets of the paper's reference [6].  Composite cells
    re-export their sub-cell ports under "i<k>.<p>" names.

    Areas are in square lambda; delays and transistor counts come from
    {!Sc_netlist.Gate}. *)

open Sc_layout
open Sc_netlist

type cell =
  { kind : Gate.kind
  ; layout : Cell.t
  ; area : int  (** bounding-box area, square lambda *)
  ; width : int
  ; height : int
  ; transistors : int
  ; delay : int
  }

(** Memoized (domain-safe, {!Sc_cache.Cache}); all cells share one
    layout definition per kind. *)
val get : Gate.kind -> cell

val layout_of : Gate.kind -> Cell.t

(** [drc_violations kind] — design-rule violation count of the cell's
    layout, memoized content-addressed: keyed by the digest of the
    flattened geometry, so a changed generator re-checks only the kinds
    whose artwork actually changed. *)
val drc_violations : Gate.kind -> int

(** [drc_clean kind] = [drc_violations kind = 0]. *)
val drc_clean : Gate.kind -> bool

val all : unit -> cell list

(** Total layout area of a circuit's gates if placed with no packing
    overhead (lower bound used by E1/E2 area accounting). *)
val circuit_cell_area : Circuit.t -> int

val pp_cell : Format.formatter -> cell -> unit
