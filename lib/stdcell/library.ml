open Sc_layout
open Sc_netlist

type cell =
  { kind : Gate.kind
  ; layout : Cell.t
  ; area : int
  ; width : int
  ; height : int
  ; transistors : int
  ; delay : int
  }

(* Composite cells are rows of primitives; the layouts match the classic
   NAND-only constructions so the area is honest even though intra-cell
   wiring is abstracted. *)
let rec build_layout kind =
  match (kind : Gate.kind) with
  | Gate.Inv -> Nmos.inv ()
  | Gate.Nand2 -> Nmos.nand 2
  | Gate.Nand3 -> Nmos.nand 3
  | Gate.Nor2 -> Nmos.nor2 ()
  | Gate.Buf -> Nmos.row "buf" [ Nmos.inv (); Nmos.inv () ]
  | Gate.And2 -> Nmos.row "and2" [ Nmos.nand 2; Nmos.inv () ]
  | Gate.Or2 -> Nmos.row "or2" [ Nmos.nor2 (); Nmos.inv () ]
  | Gate.Nor3 ->
    (* nor3(a,b,c) = nor2(or2(a,b), c) *)
    Nmos.row "nor3" [ Nmos.nor2 (); Nmos.inv (); Nmos.nor2 () ]
  | Gate.Xor2 ->
    Nmos.row "xor2"
      [ Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 2 ]
  | Gate.Xnor2 -> Nmos.row "xnor2" [ build_layout Gate.Xor2; Nmos.inv () ]
  | Gate.Mux2 ->
    Nmos.row "mux2" [ Nmos.inv (); Nmos.nand 2; Nmos.nand 2; Nmos.nand 2 ]
  | Gate.Dff ->
    Nmos.row "dff"
      [ Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 3
      ; Nmos.nand 2
      ]
  | Gate.Dffe -> Nmos.row "dffe" [ build_layout Gate.Dff; build_layout Gate.Mux2 ]
  | Gate.Const0 | Gate.Const1 ->
    (* a tie-off: a strip of rail-height with no devices *)
    Cell.make
      ~name:(Gate.to_string kind)
      ~ports:
        [ Cell.port "y" Sc_tech.Layer.Metal (Sc_geom.Rect.make 4 0 4 3) ]
      [ Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 4 3)
      ; Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 37 4 40)
      ]

(* Domain-safe (placement restarts characterize cells from pool
   workers); the kind name is the key — cell generators are
   deterministic per kind. *)
let cells : cell Sc_cache.Cache.t =
  Sc_cache.Cache.create ~capacity:64 ~name:"stdcell" ()

let get kind =
  Sc_cache.Cache.find_or_add cells (Gate.to_string kind) @@ fun () ->
  let layout = build_layout kind in
  { kind
  ; layout
  ; area = Cell.area layout
  ; width = Cell.width layout
  ; height = Cell.height layout
  ; transistors = Gate.transistors kind
  ; delay = Gate.delay kind
  }

let layout_of kind = (get kind).layout

(* Per-cell DRC, content-addressed: the key is the digest of the
   flattened geometry, not the kind, so editing a generator invalidates
   exactly the layouts whose artwork changed. *)
let cell_drc : int Sc_cache.Cache.t =
  Sc_cache.Cache.create ~capacity:64 ~name:"celldrc" ()

let drc_violations kind =
  let flat = Flatten.run (layout_of kind) in
  let key = Sc_cache.Cache.digest (Marshal.to_string flat []) in
  Sc_cache.Cache.find_or_add cell_drc key (fun () ->
      List.length (Sc_drc.Checker.check_flat flat))

let drc_clean kind = drc_violations kind = 0

let all () = List.map get Gate.all

let circuit_cell_area c =
  let s = Circuit.stats c in
  List.fold_left
    (fun acc (kind, n) -> acc + (n * (get kind).area))
    0 s.Circuit.by_kind

let pp_cell ppf c =
  Format.fprintf ppf "%a: %dx%d lambda, %d transistors, delay %d" Gate.pp
    c.kind c.width c.height c.transistors c.delay
