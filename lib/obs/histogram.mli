(** Log-bucketed histograms for latency tracking.

    Values are non-negative integers (negative inputs clamp to 0) —
    typically microseconds.  Bucket 0 holds the value 0; bucket [i]
    holds [2^(i-1) .. 2^i - 1], so 63 buckets cover the whole [int]
    range and {!add} never saturates.  Memory is two 63-entry arrays
    per histogram, independent of sample count.

    Percentiles use the nearest-rank definition answered with the mean
    of the bucket the rank lands in: relative error is bounded by the
    bucket width (< 2x), and the answer is exact whenever all samples
    in that bucket are equal.

    Instances are thread-safe (one internal mutex); the serve daemon
    shares one histogram per verb across all connection threads. *)

type t

val create : unit -> t
(** An empty histogram. *)

val add : t -> int -> unit
(** Record one sample. *)

val count : t -> int
(** Number of samples recorded. *)

val min_value : t -> int
(** Smallest sample recorded (0 when empty). *)

val max_value : t -> int
(** Largest sample recorded (0 when empty). *)

val mean : t -> float
(** Arithmetic mean of all samples (0.0 when empty). *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the nearest-rank percentile,
    estimated as the mean of the rank's bucket.  [percentile t 50.0] is
    the median estimate; 0 when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding the samples of both —
    used to aggregate per-recorder or per-verb histograms.  [a] and [b]
    are unchanged. *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for the unit tests). *)

val bounds : int -> int * int
(** [bounds i] is the inclusive [(lo, hi)] value range of bucket [i]. *)
