(* Leveled structured logging: one JSON object per line (JSONL).

   Each line is a single [output_string] of the fully rendered line
   (newline included) followed by a flush, under the logger's mutex —
   concurrent writers from the daemon's connection threads can never
   interleave bytes within a line, and a consumer tailing the file sees
   only whole lines.  Rendering happens outside the lock. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" -> Ok Warn
  | "error" -> Ok Error
  | s -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s)

type t =
  { oc : out_channel
  ; lock : Mutex.t
  ; level : level
  ; clock : unit -> float
  }

let create ?(level = Info) ?(clock = Unix.gettimeofday) path =
  match
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  with
  | oc -> Ok { oc; lock = Mutex.create (); level; clock }
  | exception Sys_error e -> Error e

let would_log t lvl = severity lvl >= severity t.level

let log t lvl ~event fields =
  if would_log t lvl then begin
    let line =
      Json.to_string
        (Json.Obj
           (("ts", Json.Num (t.clock ()))
           :: ("level", Json.Str (level_to_string lvl))
           :: ("event", Json.Str event)
           :: fields))
      ^ "\n"
    in
    Mutex.protect t.lock (fun () ->
        output_string t.oc line;
        flush t.oc)
  end

let close t =
  Mutex.protect t.lock (fun () ->
      try close_out t.oc with Sys_error _ -> ())
