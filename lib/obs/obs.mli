(** Stage-level observability for the compiler: hierarchical spans,
    counters and gauges, a per-stage summary table, and Chrome
    trace-event export.

    Every compilation stage wraps its work in {!span} and reports sizes
    through {!count}/{!gauge} ("gates", "bdd.nodes", "cif.rects",
    "route.tracks", ...).  Instrumentation is free when disabled: each
    entry point is a single branch on one flag, so the hot paths the
    Bechamel micro-benchmarks measure are unaffected until someone asks
    for data (`scc ... --stats --trace out.json`, or
    `bench/main.exe -- profile`).

    The module is deliberately global (one recorder per process): the
    compiler's stages live in many libraries and threading a handle
    through every signature would make the instrumentation the loudest
    thing in the code.  Spans nest by dynamic scope: a span opened while
    another is running becomes its child, and its path is the
    dot-joined ancestry (["place"] inside nothing, ["route.channel"]
    for a channel routed during the route stage).

    The recorder is domain-safe: the span stack is domain-local, so
    spans opened on an [Sc_par] worker domain nest within that domain
    and carry its {!event.tid}; the Chrome trace shows one track per
    domain.  Completed events and global counters are shared under a
    mutex.

    Two sinks:

    - {!pp_summary} / {!stage_table}: one row per distinct span path —
      call count, total and self milliseconds, share of the run, and
      the counters attributed to that span;
    - {!chrome_trace} / {!write_trace}: the Chrome trace-event JSON
      format (load in [chrome://tracing] or [ui.perfetto.dev]); spans
      become complete ("ph":"X") events with their counters as [args],
      global counters become counter ("ph":"C") tracks. *)

(** {2 Switch} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start recording.  The first [enable] (or any {!reset}) stamps the
    trace epoch all timestamps are relative to. *)

val disable : unit -> unit
(** Stop recording; already-collected events are kept. *)

val reset : unit -> unit
(** Drop all events and counters and restamp the epoch (does not change
    the enabled flag). *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, arbitrary epoch, must be
    monotone non-decreasing).  The default is [Unix.gettimeofday];
    [bench/main.exe] installs Bechamel's [CLOCK_MONOTONIC] stub. *)

(** {2 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()], timing it as one hierarchical span.  The
    event is recorded even when [f] raises (the exception propagates).
    A single branch when disabled.

    Re-entrant spans merge: opening [span "x"] while the innermost open
    span on this domain is already named ["x"] does not start a child —
    [f] runs inside the existing frame.  This keeps stage paths stable
    when a driver (e.g. {!Sc_pipeline.Pipeline.run}) wraps a uniform
    span around code that opens its own identically-named span: the
    table shows one ["drc"] row, never ["drc.drc"]. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name], both globally and on the
    innermost open span (that is what the summary table shows per
    stage).  No-op when disabled. *)

val gauge : string -> int -> unit
(** [gauge name v] sets counter [name] to [v] (last write wins) —
    for absolute quantities like "gates" or "bdd.nodes" where adding
    across stages would be meaningless. *)

(** {2 Inspection} *)

(** One completed span occurrence. *)
type event =
  { path : string  (** dot-joined ancestry, e.g. ["place"] or ["route.channel"] *)
  ; name : string  (** the name passed to {!span} *)
  ; depth : int  (** 0 = top level *)
  ; tid : int  (** id of the domain that recorded the span (0 = main) *)
  ; start_us : float  (** microseconds since the epoch ({!reset}) *)
  ; dur_us : float
  ; self_us : float  (** [dur_us] minus time spent in child spans *)
  ; counters : (string * int) list  (** counts attributed to this occurrence *)
  }

val events : unit -> event list
(** All completed spans, in start order. *)

val totals : unit -> (string * int) list
(** Global counter/gauge values, sorted by name. *)

(** One aggregated row of the per-stage summary. *)
type row =
  { rpath : string
  ; rdepth : int
  ; calls : int
  ; total_ms : float
  ; self_ms : float
  ; rcounters : (string * int) list  (** summed over the path's occurrences *)
  }

val stage_table : unit -> row list
(** Events aggregated by path, ordered so children follow their parent
    (by first start time, parents first). *)

val pp_summary : Format.formatter -> unit -> unit
(** The per-stage table plus the global counters, human-readable.
    Percentages are of the summed top-level span time. *)

val chrome_trace : unit -> string
(** The whole recording as Chrome trace-event JSON (an object with a
    ["traceEvents"] array).  Parses back with {!Json.parse}. *)

val write_trace : string -> unit
(** [write_trace path] writes {!chrome_trace} to [path]. *)
