(** Stage-level observability for the compiler: hierarchical spans,
    counters and gauges, a per-stage summary table, and Chrome
    trace-event export.

    Every compilation stage wraps its work in {!span} and reports sizes
    through {!count}/{!gauge} ("gates", "bdd.nodes", "cif.rects",
    "route.tracks", ...).  Instrumentation is free when disabled: each
    entry point is a single branch on one flag (plus one atomic load
    for the ambient-recorder lookup), so the hot paths the Bechamel
    micro-benchmarks measure are unaffected until someone asks for data
    (`scc ... --stats --trace out.json`, or `bench/main.exe --
    profile`).

    Recording state lives in {!Recorder.t} instances.  The module-level
    functions are a compatibility shim over the {e ambient} recorder:
    {!default} unless {!with_recorder} installed another one for the
    current (domain, thread).  Single-shot tools use the global API and
    never notice; the serve daemon gives every request its own recorder
    via {!with_recorder}, so instrumented compiles record concurrently
    without sharing a single event buffer.  The ~60 instrumentation
    sites across the compiler libraries keep calling the global
    {!span}/{!count}/{!gauge} — attribution is decided by whoever
    installed the recorder above them on the stack, not by threading a
    handle through every signature.

    Spans nest by dynamic scope: a span opened while another is running
    becomes its child, and its path is the dot-joined ancestry
    (["place"] inside nothing, ["route.channel"] for a channel routed
    during the route stage).

    Each recorder is domain- and thread-safe: span stacks are keyed by
    (domain, thread), so spans opened on an [Sc_par] worker domain nest
    within that domain and carry its {!event.tid}; the Chrome trace
    shows one track per domain.  Completed events and global counters
    are shared per recorder, under its mutex.  [Sc_par.Pool] workers
    inherit the submitter's ambient recorder, so counters bumped inside
    pool tasks land in the recorder of the request that spawned them.

    Two sinks:

    - {!pp_summary} / {!stage_table}: one row per distinct span path —
      call count, total and self milliseconds, share of the run, and
      the counters attributed to that span;
    - {!chrome_trace} / {!write_trace}: the Chrome trace-event JSON
      format (load in [chrome://tracing] or [ui.perfetto.dev]); spans
      become complete ("ph":"X") events with their counters as [args],
      global counters become counter ("ph":"C") tracks. *)

(** {2 Events and rows} *)

(** One completed span occurrence. *)
type event =
  { path : string  (** dot-joined ancestry, e.g. ["place"] or ["route.channel"] *)
  ; name : string  (** the name passed to {!span} *)
  ; depth : int  (** 0 = top level *)
  ; tid : int  (** id of the domain that recorded the span (0 = main) *)
  ; start_us : float  (** microseconds since the epoch ({!reset}) *)
  ; dur_us : float
  ; self_us : float  (** [dur_us] minus time spent in child spans *)
  ; counters : (string * int) list  (** counts attributed to this occurrence *)
  }

(** One aggregated row of the per-stage summary. *)
type row =
  { rpath : string
  ; rdepth : int
  ; calls : int
  ; total_ms : float
  ; self_ms : float
  ; rcounters : (string * int) list  (** summed over the path's occurrences *)
  }

(** {2 Recorder instances} *)

module Recorder : sig
  type t
  (** An independent recording: its own enabled flag, clock, epoch,
      span stacks, event buffer and counter table.  Values are safe to
      share across domains and threads. *)

  val create : ?clock:(unit -> float) -> unit -> t
  (** A fresh, disabled recorder.  [clock] defaults to
      [Unix.gettimeofday]. *)

  val enabled : t -> bool
  val enable : t -> unit
  val disable : t -> unit

  val reset : t -> unit
  (** Drop all events and counters and restamp the epoch.  Safe while
      spans are open — even on other threads: frames opened before the
      reset are orphaned (their exit unwinds normally but records
      nothing), so the event buffer and the span stacks can never
      disagree about what the current recording contains. *)

  val set_clock : t -> (unit -> float) -> unit

  val span : t -> string -> (unit -> 'a) -> 'a
  val count : t -> string -> int -> unit
  val gauge : t -> string -> int -> unit

  val events : t -> event list
  val totals : t -> (string * int) list
  val stage_table : t -> row list
  val pp_summary : Format.formatter -> t -> unit
  val chrome_trace : t -> string
  val write_trace : t -> string -> unit
end

val default : Recorder.t
(** The process-wide recorder the global API uses when no override is
    installed. *)

val ambient : unit -> Recorder.t
(** The recorder the global API currently routes to on this
    (domain, thread): the innermost {!with_recorder}, else
    {!default}. *)

val with_recorder : Recorder.t -> (unit -> 'a) -> 'a
(** [with_recorder r f] runs [f] with [r] installed as the ambient
    recorder for the current (domain, thread); restores the previous
    ambient recorder afterwards (also on exceptions).  Overrides are
    per-context: other threads are unaffected, which is what lets one
    daemon process record overlapping requests into disjoint
    recorders. *)

(** {2 Switch (ambient recorder)} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start recording.  The first [enable] (or any {!reset}) stamps the
    trace epoch all timestamps are relative to. *)

val disable : unit -> unit
(** Stop recording; already-collected events are kept. *)

val reset : unit -> unit
(** Drop all events and counters and restamp the epoch (does not change
    the enabled flag).  See {!Recorder.reset} for the live-span
    semantics. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, arbitrary epoch, must be
    monotone non-decreasing).  The default is [Unix.gettimeofday];
    [bench/main.exe] installs Bechamel's [CLOCK_MONOTONIC] stub. *)

(** {2 Recording (ambient recorder)} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()], timing it as one hierarchical span.  The
    event is recorded even when [f] raises (the exception propagates).
    A single branch when disabled.

    Re-entrant spans merge: opening [span "x"] while the innermost open
    span on this context is already named ["x"] does not start a child —
    [f] runs inside the existing frame.  This keeps stage paths stable
    when a driver (e.g. {!Sc_pipeline.Pipeline.run}) wraps a uniform
    span around code that opens its own identically-named span: the
    table shows one ["drc"] row, never ["drc.drc"]. *)

val count : string -> int -> unit
(** [count name n] adds [n] to counter [name], both globally and on the
    innermost open span (that is what the summary table shows per
    stage).  No-op when disabled. *)

val gauge : string -> int -> unit
(** [gauge name v] sets counter [name] to [v] (last write wins) —
    for absolute quantities like "gates" or "bdd.nodes" where adding
    across stages would be meaningless. *)

(** {2 Inspection (ambient recorder)} *)

val events : unit -> event list
(** All completed spans, in start order. *)

val totals : unit -> (string * int) list
(** Global counter/gauge values, sorted by name. *)

val stage_table : unit -> row list
(** Events aggregated by path, ordered so children follow their parent
    (by first start time, parents first). *)

val pp_summary : Format.formatter -> unit -> unit
(** The per-stage table plus the global counters, human-readable.
    Percentages are of the summed top-level span time. *)

val chrome_trace : unit -> string
(** The whole recording as Chrome trace-event JSON (an object with a
    ["traceEvents"] array).  Parses back with {!Json.parse}. *)

val write_trace : string -> unit
(** [write_trace path] writes {!chrome_trace} to [path]. *)
