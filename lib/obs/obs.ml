(* One global recorder per process.  Everything below the [on] check is
   only reachable when recording, so the disabled cost of a span is one
   load + branch (plus the closure call the caller already paid for).

   Domain safety: the span stack is domain-local state (Domain.DLS), so
   spans opened on a worker domain nest within that domain only and a
   worker's first span is top-level on its own [tid] track.  The
   completed-event list and the global counters are shared and guarded
   by one mutex; frame-local counter bumps touch only the domain's own
   open frame and need no lock. *)

type event =
  { path : string
  ; name : string
  ; depth : int
  ; tid : int
  ; start_us : float
  ; dur_us : float
  ; self_us : float
  ; counters : (string * int) list
  }

type frame =
  { fname : string
  ; fpath : string
  ; fdepth : int
  ; fstart : float
  ; mutable fcounters : (string * int) list  (* reverse insertion order *)
  ; mutable fchildren : float  (* seconds spent in completed children *)
  }

let on = ref false
let clock = ref Unix.gettimeofday
let epoch = ref 0.0

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let lock = Mutex.create ()
let locked f = Mutex.protect lock f
let finished : event list ref = ref [] (* reverse completion order *)
let globals : (string, int) Hashtbl.t = Hashtbl.create 32

let enabled () = !on

let reset () =
  (stack ()) := [];
  locked (fun () ->
      finished := [];
      Hashtbl.reset globals);
  epoch := !clock ()

let enable () =
  if !epoch = 0.0 then epoch := !clock ();
  on := true

let disable () = on := false

let set_clock f = clock := f

let span name f =
  if not !on then f ()
  else begin
    let stack = stack () in
    match !stack with
    | top :: _ when top.fname = name ->
      (* re-entrant: a span opened inside a same-named span merges with
         it, so a pass manager wrapping "drc" around a checker that
         already opens "drc" yields one stage row, not "drc.drc" *)
      f ()
    | _ ->
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let fpath =
      match parent with None -> name | Some p -> p.fpath ^ "." ^ name
    in
    let fdepth = match parent with None -> 0 | Some p -> p.fdepth + 1 in
    let fr =
      { fname = name; fpath; fdepth; fstart = !clock (); fcounters = []
      ; fchildren = 0.0
      }
    in
    stack := fr :: !stack;
    let finish () =
      let dur = !clock () -. fr.fstart in
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ -> ());
      (match !stack with
      | p :: _ -> p.fchildren <- p.fchildren +. dur
      | [] -> ());
      let e =
        { path = fr.fpath
        ; name = fr.fname
        ; depth = fr.fdepth
        ; tid = (Domain.self () :> int)
        ; start_us = (fr.fstart -. !epoch) *. 1e6
        ; dur_us = dur *. 1e6
        ; self_us = (dur -. fr.fchildren) *. 1e6
        ; counters = List.rev fr.fcounters
        }
      in
      locked (fun () -> finished := e :: !finished)
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let bump_frame fr name v ~add =
  match List.assoc_opt name fr.fcounters with
  | Some _ ->
    fr.fcounters <-
      List.map
        (fun (k, x) -> if k = name then (k, if add then x + v else v) else (k, x))
        fr.fcounters
  | None -> fr.fcounters <- (name, v) :: fr.fcounters

let bump_global name v ~add =
  locked (fun () ->
      let old = try Hashtbl.find globals name with Not_found -> 0 in
      Hashtbl.replace globals name (if add then old + v else v))

let count name n =
  if !on then begin
    (match !(stack ()) with
    | fr :: _ -> bump_frame fr name n ~add:true
    | [] -> ());
    bump_global name n ~add:true
  end

let gauge name v =
  if !on then begin
    (match !(stack ()) with
    | fr :: _ -> bump_frame fr name v ~add:false
    | [] -> ());
    bump_global name v ~add:false
  end

let events () =
  List.sort
    (fun a b -> Float.compare a.start_us b.start_us)
    (locked (fun () -> List.rev !finished))

let totals () =
  locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) globals [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- per-stage aggregation --- *)

type row =
  { rpath : string
  ; rdepth : int
  ; calls : int
  ; total_ms : float
  ; self_ms : float
  ; rcounters : (string * int) list
  }

let stage_table () =
  let acc : (string, row * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let merge (r, first) =
        ( { r with
            calls = r.calls + 1
          ; total_ms = r.total_ms +. (e.dur_us /. 1e3)
          ; self_ms = r.self_ms +. (e.self_us /. 1e3)
          ; rcounters =
              List.fold_left
                (fun cs (k, v) ->
                  match List.assoc_opt k cs with
                  | Some old ->
                    List.map (fun (k', x) -> if k' = k then (k', old + v) else (k', x)) cs
                  | None -> cs @ [ (k, v) ])
                r.rcounters e.counters
          }
        , first )
      in
      let fresh =
        ( { rpath = e.path; rdepth = e.depth; calls = 0; total_ms = 0.0
          ; self_ms = 0.0; rcounters = []
          }
        , e.start_us )
      in
      Hashtbl.replace acc e.path
        (merge (try Hashtbl.find acc e.path with Not_found -> fresh)))
    (events ());
  Hashtbl.fold (fun _ rf l -> rf :: l) acc []
  |> List.sort (fun (ra, fa) (rb, fb) ->
         match Float.compare fa fb with
         | 0 -> Int.compare ra.rdepth rb.rdepth
         | c -> c)
  |> List.map fst

let pp_counters ppf cs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) cs

let pp_summary ppf () =
  let rows = stage_table () in
  let wall =
    List.fold_left
      (fun a r -> if r.rdepth = 0 then a +. r.total_ms else a)
      0.0 rows
  in
  Format.fprintf ppf "%-28s %6s %9s %9s %6s  %s@."
    "stage" "calls" "total ms" "self ms" "%" "counters";
  List.iter
    (fun r ->
      let indent = String.make (2 * r.rdepth) ' ' in
      Format.fprintf ppf "%-28s %6d %9.2f %9.2f %5.1f%% %a@."
        (indent ^ (match String.rindex_opt r.rpath '.' with
                  | Some i -> String.sub r.rpath (i + 1) (String.length r.rpath - i - 1)
                  | None -> r.rpath))
        r.calls r.total_ms r.self_ms
        (if wall > 0.0 then 100.0 *. r.total_ms /. wall else 0.0)
        pp_counters r.rcounters)
    rows;
  match totals () with
  | [] -> ()
  | ts -> Format.fprintf ppf "counters:%a@." pp_counters ts

(* --- Chrome trace-event export --- *)

let chrome_trace () =
  let span_events =
    List.map
      (fun e ->
        let base =
          [ ("name", Json.Str e.path)
          ; ("cat", Json.Str "scc")
          ; ("ph", Json.Str "X")
          ; ("ts", Json.Num e.start_us)
          ; ("dur", Json.Num e.dur_us)
          ; ("pid", Json.Num 1.0)
          ; ("tid", Json.Num (float_of_int (e.tid + 1)))
          ]
        in
        Json.Obj
          (match e.counters with
          | [] -> base
          | cs ->
            base
            @ [ ( "args"
                , Json.Obj
                    (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) cs)
                )
              ]))
      (events ())
  in
  let t_end =
    List.fold_left
      (fun a e -> Float.max a (e.start_us +. e.dur_us))
      0.0 (events ())
  in
  let counter_events =
    List.map
      (fun (k, v) ->
        Json.Obj
          [ ("name", Json.Str k)
          ; ("ph", Json.Str "C")
          ; ("ts", Json.Num t_end)
          ; ("pid", Json.Num 1.0)
          ; ("args", Json.Obj [ (k, Json.Num (float_of_int v)) ])
          ])
      (totals ())
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.Arr (span_events @ counter_events))
       ; ("displayTimeUnit", Json.Str "ms")
       ])

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
