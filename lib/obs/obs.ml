(* Recorder instances.  A [Recorder.t] carries its own span stacks,
   counters, clock and enabled flag; [default] is the process-wide
   instance behind the classic global API, and [with_recorder] installs
   a different instance for the current (domain, thread) so a serve
   daemon can record many requests at once without sharing state.

   Everything below the [on] check is only reachable when recording, so
   the disabled cost of a span on the default recorder is one atomic
   load, one field load and a branch (plus the closure call the caller
   already paid for).

   Concurrency: a recorder keys its span stacks by (domain id, thread
   id), so spans opened on an [Sc_par] worker domain — or on another
   systhread of the same domain — nest within that execution context
   only, and a context's first span is top-level on its own [tid]
   track.  The completed-event list and the global counters are shared
   per recorder and guarded by its mutex; frame-local counter bumps
   touch only the context's own open frame and need no lock.

   [Recorder.reset] must be safe while spans are open (a daemon can be
   asked to reset mid-request): it bumps the recorder's generation and
   drops the stack table, so a frame opened before the reset is
   orphaned — its [finish] still unwinds bookkeeping but records no
   event into the cleared buffer. *)

type event =
  { path : string
  ; name : string
  ; depth : int
  ; tid : int
  ; start_us : float
  ; dur_us : float
  ; self_us : float
  ; counters : (string * int) list
  }

type frame =
  { fname : string
  ; fpath : string
  ; fdepth : int
  ; fstart : float
  ; fgen : int  (* recorder generation at open; stale frames record nothing *)
  ; mutable fcounters : (string * int) list  (* reverse insertion order *)
  ; mutable fchildren : float  (* seconds spent in completed children *)
  }

type row =
  { rpath : string
  ; rdepth : int
  ; calls : int
  ; total_ms : float
  ; self_ms : float
  ; rcounters : (string * int) list
  }

module Recorder = struct
  type t =
    { mutable on : bool
    ; mutable clock : unit -> float
    ; mutable epoch : float
    ; mutable generation : int
    ; lock : Mutex.t
    ; mutable finished : event list  (* reverse completion order *)
    ; globals : (string, int) Hashtbl.t
    ; stacks : (int * int, frame list ref) Hashtbl.t
      (* keyed by (domain id, thread id): each execution context owns
         one stack.  Entries persist until [reset]; a handful of stale
         keys is cheaper than precise cleanup on every span exit. *)
    }

  let create ?(clock = Unix.gettimeofday) () =
    { on = false
    ; clock
    ; epoch = 0.0
    ; generation = 0
    ; lock = Mutex.create ()
    ; finished = []
    ; globals = Hashtbl.create 32
    ; stacks = Hashtbl.create 8
    }

  let locked t f = Mutex.protect t.lock f

  let ctx () = ((Domain.self () :> int), Thread.id (Thread.self ()))

  let stack t =
    let k = ctx () in
    locked t (fun () ->
        match Hashtbl.find_opt t.stacks k with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add t.stacks k r;
          r)

  let enabled t = t.on

  let enable t =
    if t.epoch = 0.0 then t.epoch <- t.clock ();
    t.on <- true

  let disable t = t.on <- false
  let set_clock t f = t.clock <- f

  let reset t =
    locked t (fun () ->
        t.finished <- [];
        Hashtbl.reset t.globals;
        (* orphan every open frame: their captured stack refs survive,
           but a bumped generation keeps their finish from recording *)
        Hashtbl.reset t.stacks;
        t.generation <- t.generation + 1);
    t.epoch <- t.clock ()

  let span t name f =
    if not t.on then f ()
    else begin
      let stack = stack t in
      match !stack with
      | top :: _ when top.fname = name ->
        (* re-entrant: a span opened inside a same-named span merges with
           it, so a pass manager wrapping "drc" around a checker that
           already opens "drc" yields one stage row, not "drc.drc" *)
        f ()
      | _ ->
        let parent = match !stack with [] -> None | p :: _ -> Some p in
        let fpath =
          match parent with None -> name | Some p -> p.fpath ^ "." ^ name
        in
        let fdepth = match parent with None -> 0 | Some p -> p.fdepth + 1 in
        let fr =
          { fname = name; fpath; fdepth; fstart = t.clock ()
          ; fgen = t.generation; fcounters = []; fchildren = 0.0
          }
        in
        stack := fr :: !stack;
        let finish () =
          let dur = t.clock () -. fr.fstart in
          (match !stack with
          | top :: rest when top == fr -> stack := rest
          | _ -> ());
          (match !stack with
          | p :: _ -> p.fchildren <- p.fchildren +. dur
          | [] -> ());
          let e =
            { path = fr.fpath
            ; name = fr.fname
            ; depth = fr.fdepth
            ; tid = (Domain.self () :> int)
            ; start_us = (fr.fstart -. t.epoch) *. 1e6
            ; dur_us = dur *. 1e6
            ; self_us = (dur -. fr.fchildren) *. 1e6
            ; counters = List.rev fr.fcounters
            }
          in
          locked t (fun () ->
              if fr.fgen = t.generation then t.finished <- e :: t.finished)
        in
        (match f () with
        | r ->
          finish ();
          r
        | exception e ->
          finish ();
          raise e)
    end

  let bump_frame fr name v ~add =
    match List.assoc_opt name fr.fcounters with
    | Some _ ->
      fr.fcounters <-
        List.map
          (fun (k, x) ->
            if k = name then (k, if add then x + v else v) else (k, x))
          fr.fcounters
    | None -> fr.fcounters <- (name, v) :: fr.fcounters

  let bump_global t name v ~add =
    locked t (fun () ->
        let old = try Hashtbl.find t.globals name with Not_found -> 0 in
        Hashtbl.replace t.globals name (if add then old + v else v))

  let bump t name v ~add =
    if t.on then begin
      (match !(stack t) with
      | fr :: _ -> bump_frame fr name v ~add
      | [] -> ());
      bump_global t name v ~add
    end

  let count t name n = bump t name n ~add:true
  let gauge t name v = bump t name v ~add:false

  let events t =
    List.sort
      (fun a b -> Float.compare a.start_us b.start_us)
      (locked t (fun () -> List.rev t.finished))

  let totals t =
    locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.globals [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* --- per-stage aggregation --- *)

  let stage_table t =
    let acc : (string, row * float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let merge (r, first) =
          ( { r with
              calls = r.calls + 1
            ; total_ms = r.total_ms +. (e.dur_us /. 1e3)
            ; self_ms = r.self_ms +. (e.self_us /. 1e3)
            ; rcounters =
                List.fold_left
                  (fun cs (k, v) ->
                    match List.assoc_opt k cs with
                    | Some old ->
                      List.map
                        (fun (k', x) -> if k' = k then (k', old + v) else (k', x))
                        cs
                    | None -> cs @ [ (k, v) ])
                  r.rcounters e.counters
            }
          , first )
        in
        let fresh =
          ( { rpath = e.path; rdepth = e.depth; calls = 0; total_ms = 0.0
            ; self_ms = 0.0; rcounters = []
            }
          , e.start_us )
        in
        Hashtbl.replace acc e.path
          (merge (try Hashtbl.find acc e.path with Not_found -> fresh)))
      (events t);
    Hashtbl.fold (fun _ rf l -> rf :: l) acc []
    |> List.sort (fun (ra, fa) (rb, fb) ->
           match Float.compare fa fb with
           | 0 -> Int.compare ra.rdepth rb.rdepth
           | c -> c)
    |> List.map fst

  let pp_counters ppf cs =
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) cs

  let pp_summary ppf t =
    let rows = stage_table t in
    let wall =
      List.fold_left
        (fun a r -> if r.rdepth = 0 then a +. r.total_ms else a)
        0.0 rows
    in
    Format.fprintf ppf "%-28s %6s %9s %9s %6s  %s@."
      "stage" "calls" "total ms" "self ms" "%" "counters";
    List.iter
      (fun r ->
        let indent = String.make (2 * r.rdepth) ' ' in
        Format.fprintf ppf "%-28s %6d %9.2f %9.2f %5.1f%% %a@."
          (indent
          ^
          match String.rindex_opt r.rpath '.' with
          | Some i -> String.sub r.rpath (i + 1) (String.length r.rpath - i - 1)
          | None -> r.rpath)
          r.calls r.total_ms r.self_ms
          (if wall > 0.0 then 100.0 *. r.total_ms /. wall else 0.0)
          pp_counters r.rcounters)
      rows;
    match totals t with
    | [] -> ()
    | ts -> Format.fprintf ppf "counters:%a@." pp_counters ts

  (* --- Chrome trace-event export --- *)

  let chrome_trace t =
    let evs = events t in
    let span_events =
      List.map
        (fun e ->
          let base =
            [ ("name", Json.Str e.path)
            ; ("cat", Json.Str "scc")
            ; ("ph", Json.Str "X")
            ; ("ts", Json.Num e.start_us)
            ; ("dur", Json.Num e.dur_us)
            ; ("pid", Json.Num 1.0)
            ; ("tid", Json.Num (float_of_int (e.tid + 1)))
            ]
          in
          Json.Obj
            (match e.counters with
            | [] -> base
            | cs ->
              base
              @ [ ( "args"
                  , Json.Obj
                      (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) cs)
                  )
                ]))
        evs
    in
    let t_end =
      List.fold_left (fun a e -> Float.max a (e.start_us +. e.dur_us)) 0.0 evs
    in
    let counter_events =
      List.map
        (fun (k, v) ->
          Json.Obj
            [ ("name", Json.Str k)
            ; ("ph", Json.Str "C")
            ; ("ts", Json.Num t_end)
            ; ("pid", Json.Num 1.0)
            ; ("args", Json.Obj [ (k, Json.Num (float_of_int v)) ])
            ])
        (totals t)
    in
    Json.to_string
      (Json.Obj
         [ ("traceEvents", Json.Arr (span_events @ counter_events))
         ; ("displayTimeUnit", Json.Str "ms")
         ])

  let write_trace t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (chrome_trace t))
end

(* --- ambient dispatch ---

   The classic global API routes to the recorder installed for the
   current (domain, thread) by [with_recorder], falling back to
   [default].  The override table is consulted only when at least one
   override is installed (tracked by an atomic counter), so a process
   that never calls [with_recorder] — the CLI, the tests, the
   benchmarks — pays one atomic load on top of the old cost. *)

let default = Recorder.create ()

let overrides : (int * int, Recorder.t) Hashtbl.t = Hashtbl.create 8
let overrides_lock = Mutex.create ()
let override_count = Atomic.make 0

let ambient () =
  if Atomic.get override_count = 0 then default
  else begin
    let k = Recorder.ctx () in
    match
      Mutex.protect overrides_lock (fun () -> Hashtbl.find_opt overrides k)
    with
    | Some r -> r
    | None -> default
  end

let with_recorder r f =
  let k = Recorder.ctx () in
  let prev =
    Mutex.protect overrides_lock (fun () ->
        let prev = Hashtbl.find_opt overrides k in
        Hashtbl.replace overrides k r;
        if prev = None then Atomic.incr override_count;
        prev)
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect overrides_lock (fun () ->
          match prev with
          | None ->
            Hashtbl.remove overrides k;
            Atomic.decr override_count
          | Some p -> Hashtbl.replace overrides k p))
    f

(* --- the global API, a shim over the ambient recorder --- *)

let enabled () = Recorder.enabled (ambient ())
let enable () = Recorder.enable (ambient ())
let disable () = Recorder.disable (ambient ())
let reset () = Recorder.reset (ambient ())
let set_clock f = Recorder.set_clock (ambient ()) f
let span name f = Recorder.span (ambient ()) name f
let count name n = Recorder.count (ambient ()) name n
let gauge name v = Recorder.gauge (ambient ()) name v
let events () = Recorder.events (ambient ())
let totals () = Recorder.totals (ambient ())
let stage_table () = Recorder.stage_table (ambient ())
let pp_summary ppf () = Recorder.pp_summary ppf (ambient ())
let chrome_trace () = Recorder.chrome_trace (ambient ())
let write_trace path = Recorder.write_trace (ambient ()) path
