type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing: plain recursive descent over the string --- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf u =
    (* encode one Unicode scalar value *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let hi = hex4 () in
           let u =
             if hi >= 0xD800 && hi <= 0xDBFF then begin
               (* surrogate pair *)
               if
                 !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else fail "lone high surrogate"
             end
             else hi
           in
           utf8_of_code buf u
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  | Arr xs, Arr ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all
         (fun (k, v) ->
           match List.assoc_opt k ys with
           | Some w -> equal v w
           | None -> false)
         xs
  | _ -> false
