(** A minimal JSON tree, printer and parser — just enough to emit
    Chrome trace-event files and parse them back (the round-trip the
    {!Obs} tests rely on), with no third-party dependency.

    Numbers are [float] (as in JSON itself); integers that fit a float
    exactly print without a fractional part.  Strings are assumed to be
    UTF-8; the printer escapes the two mandatory characters and control
    codes, the parser understands the full escape set including
    [\uXXXX]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed); [Error]
    carries a message with the byte offset of the failure. *)

val member : string -> t -> t option
(** [member key (Obj _)] — field lookup; [None] on missing key or
    non-object. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-insensitively. *)
