(* Log-bucketed histogram.  Bucket 0 holds value 0 (and anything
   clamped up from below); bucket [i >= 1] holds [2^(i-1) .. 2^i - 1],
   i.e. values with exactly [i] significant bits.  63 buckets cover the
   whole non-negative [int] range, so recording never saturates.

   Each bucket keeps a count and a sum: a percentile is answered with
   the mean of the bucket the rank falls in, which bounds the relative
   error by the bucket width (< 2x) and is exact whenever every sample
   in that bucket is equal — the property the unit tests pin down.

   All operations take the internal mutex; instances are safe to share
   across the daemon's connection threads. *)

let nbuckets = 63

type t =
  { lock : Mutex.t
  ; counts : int array
  ; sums : float array
  ; mutable n : int
  ; mutable vmin : int
  ; mutable vmax : int
  }

let create () =
  { lock = Mutex.create ()
  ; counts = Array.make nbuckets 0
  ; sums = Array.make nbuckets 0.0
  ; n = 0
  ; vmin = max_int
  ; vmax = 0
  }

let locked t f = Mutex.protect t.lock f

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* number of significant bits *)
    let rec bits acc x = if x = 0 then acc else bits (acc + 1) (x lsr 1) in
    bits 0 v
  end

let bounds i =
  if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let add t v =
  let v = max 0 v in
  let b = bucket_of v in
  locked t (fun () ->
      t.counts.(b) <- t.counts.(b) + 1;
      t.sums.(b) <- t.sums.(b) +. float_of_int v;
      t.n <- t.n + 1;
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v)

let count t = locked t (fun () -> t.n)
let min_value t = locked t (fun () -> if t.n = 0 then 0 else t.vmin)
let max_value t = locked t (fun () -> t.vmax)

let mean t =
  locked t (fun () ->
      if t.n = 0 then 0.0
      else Array.fold_left ( +. ) 0.0 t.sums /. float_of_int t.n)

(* rank r (1-based) = the r-th smallest recorded value; percentile p
   uses the nearest-rank definition r = ceil(p/100 * n), clamped to
   [1, n]. *)
let percentile t p =
  locked t (fun () ->
      if t.n = 0 then 0
      else begin
        let r =
          let raw = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
          max 1 (min t.n raw)
        in
        let rec walk i seen =
          if i >= nbuckets then t.vmax
          else begin
            let seen' = seen + t.counts.(i) in
            if r <= seen' then
              int_of_float
                (Float.round (t.sums.(i) /. float_of_int t.counts.(i)))
            else walk (i + 1) seen'
          end
        in
        walk 0 0
      end)

let merge a b =
  let t = create () in
  let fold src =
    locked src (fun () ->
        for i = 0 to nbuckets - 1 do
          t.counts.(i) <- t.counts.(i) + src.counts.(i);
          t.sums.(i) <- t.sums.(i) +. src.sums.(i)
        done;
        t.n <- t.n + src.n;
        if src.n > 0 then begin
          if src.vmin < t.vmin then t.vmin <- src.vmin;
          if src.vmax > t.vmax then t.vmax <- src.vmax
        end)
  in
  fold a;
  fold b;
  t
