(** Leveled structured logging: one JSON object per line (JSONL).

    The serve daemon writes one line per request (verb, digest, status,
    duration, cache/dedup/certify outcome) plus lifecycle events.  Every
    line is a complete JSON object — [{"ts":..., "level":"info",
    "event":..., ...}] — so the file parses line-by-line with
    {!Json.parse} and greps/tails cleanly.

    Writers are thread-safe: a line is rendered outside the lock and
    written with a single [output_string] + flush under it, so
    concurrent connection threads never interleave bytes within a
    line. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"] — the value of the
    ["level"] field on each line. *)

val level_of_string : string -> (level, string) result
(** Inverse of {!level_to_string}; [Error] names the bad input. *)

type t

val create :
  ?level:level -> ?clock:(unit -> float) -> string -> (t, string) result
(** [create path] opens (appending, creating if needed) the JSONL log at
    [path].  Lines below [level] (default [Info]) are dropped.  [clock]
    (default [Unix.gettimeofday]) stamps the ["ts"] field in epoch
    seconds. *)

val would_log : t -> level -> bool
(** Whether a line at this level passes the filter — lets callers skip
    building expensive fields. *)

val log : t -> level -> event:string -> (string * Json.t) list -> unit
(** [log t lvl ~event fields] appends one line: [ts], [level] and
    [event] followed by [fields], in order.  Dropped (without rendering)
    when [lvl] is below the logger's threshold. *)

val close : t -> unit
(** Flush and close the underlying channel.  Further {!log} calls are
    an error. *)
