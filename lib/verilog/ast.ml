type unop = Bnot

type binop =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr

type expr =
  | Number of { value : int; width : int option; npos : Lexer.pos }
  | Id of string * Lexer.pos
  | Index of string * int * Lexer.pos
  | Slice of string * int * int * Lexer.pos
  | Unop of unop * expr * Lexer.pos
  | Binop of binop * expr * expr * Lexer.pos
  | Cond of { cond : expr; t : expr; f : expr; cpos : Lexer.pos }
  | Concat of expr list * Lexer.pos

type stmt =
  | Nonblocking of { target : string; rhs : expr; spos : Lexer.pos }
  | If of { cond : expr; then_ : stmt list; else_ : stmt list; spos : Lexer.pos }
  | Case of
      { scrutinee : expr
      ; arms : (expr * stmt list) list
      ; default : stmt list
      ; spos : Lexer.pos
      }

type dir =
  | Input
  | Output

type kind =
  | Wire
  | Reg

type range =
  { msb : int
  ; lsb : int
  }

type decl =
  { name : string
  ; dir : dir option
  ; kind : kind
  ; range : range option
  ; dpos : Lexer.pos
  }

type item =
  | Decl of decl
  | Assign of { lhs : string; rhs : expr; apos : Lexer.pos }
  | Always of
      { edges : (string * Lexer.pos) list
      ; body : stmt list
      ; apos : Lexer.pos
      }

type module_ =
  { mname : string
  ; ports : string list
  ; items : item list
  ; mpos : Lexer.pos
  }

let expr_pos = function
  | Number { npos; _ } -> npos
  | Id (_, p) | Index (_, _, p) | Slice (_, _, _, p) -> p
  | Unop (_, _, p) | Binop (_, _, _, p) | Concat (_, p) -> p
  | Cond { cpos; _ } -> cpos

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Shl -> "<<"
  | Shr -> ">>"

let rec pp_expr ppf = function
  | Number { value; width = Some w; _ } -> Format.fprintf ppf "%d'd%d" w value
  | Number { value; width = None; _ } -> Format.fprintf ppf "%d" value
  | Id (n, _) -> Format.pp_print_string ppf n
  | Index (n, i, _) -> Format.fprintf ppf "%s[%d]" n i
  | Slice (n, h, l, _) -> Format.fprintf ppf "%s[%d:%d]" n h l
  | Unop (Bnot, e, _) -> Format.fprintf ppf "~%a" pp_atom e
  | Binop (op, a, b, _) ->
    Format.fprintf ppf "%a %s %a" pp_atom a (binop_to_string op) pp_atom b
  | Cond { cond; t; f; _ } ->
    Format.fprintf ppf "%a ? %a : %a" pp_atom cond pp_atom t pp_atom f
  | Concat (parts, _) ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      parts

and pp_atom ppf e =
  match e with
  | Number _ | Id _ | Index _ | Slice _ | Concat _ -> pp_expr ppf e
  | _ -> Format.fprintf ppf "(%a)" pp_expr e

let rec pp_stmt ppf = function
  | Nonblocking { target; rhs; _ } ->
    Format.fprintf ppf "%s <= %a;" target pp_expr rhs
  | If { cond; then_; else_; _ } ->
    Format.fprintf ppf "@[<v 2>if (%a) begin@ %a@]@ end" pp_expr cond pp_stmts
      then_;
    if else_ <> [] then
      Format.fprintf ppf "@ @[<v 2>else begin@ %a@]@ end" pp_stmts else_
  | Case { scrutinee; arms; default; _ } ->
    Format.fprintf ppf "@[<v 2>case (%a)@ " pp_expr scrutinee;
    List.iter
      (fun (label, body) ->
        Format.fprintf ppf "@[<v 2>%a: begin@ %a@]@ end@ " pp_expr label
          pp_stmts body)
      arms;
    if default <> [] then
      Format.fprintf ppf "@[<v 2>default: begin@ %a@]@ end@ " pp_stmts default;
    Format.fprintf ppf "@]endcase"

and pp_stmts ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
    pp_stmt ppf stmts
