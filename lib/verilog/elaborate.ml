module R = Sc_rtl.Ast

exception Elab_error of Lexer.pos * string

let fail pos fmt = Format.kasprintf (fun s -> raise (Elab_error (pos, s))) fmt

let max_width = 30

let rec min_const_width v = if v <= 1 then 1 else 1 + min_const_width (v / 2)

(* who drives a signal; at most one per wire/reg *)
type driver =
  | Dassign of Lexer.pos
  | Dalways of int * Lexer.pos

type info =
  { kind : Ast.kind
  ; dir : Ast.dir option
  ; width : int
  ; dpos : Lexer.pos
  ; sc_name : string
      (* name inside the ISP design: outputs get a [$]-prefixed carrier
         because ISP outputs are write-only in expressions *)
  ; mutable driver : driver option
  }

type env =
  { table : (string, info) Hashtbl.t
  ; clock : string option
  ; mutable helpers : R.decl list (* reversed *)
  ; mutable counter : int
  ; mutable prelude : R.stmt list (* reversed; flushed per comb node *)
  }

(* a lowered expression: the ISP term, the width Verilog assigns the
   value ([vw]), and the width sc_rtl's Check.expr_width will compute
   for the term ([scw]).  Interp masks Not/Add/Sub/Shl results at
   [scw], so whenever an operation is width-sensitive and [scw < vw]
   the operand is rerouted through a helper wire of width [vw]. *)
type lv =
  { e : R.expr
  ; vw : int
  ; scw : int
  }

(* one schedulable unit of combinational logic: a continuous assign
   (helper prelude + the assignment) or an always block's prelude *)
type node =
  { nstmts : R.stmt list
  ; defines : string list
  ; npos : Lexer.pos
  ; nlabel : string
  }

let fresh env w =
  let n = "$" ^ string_of_int env.counter in
  env.counter <- env.counter + 1;
  env.helpers <- { R.dname = n; width = w } :: env.helpers;
  n

let hoist env l =
  let n = fresh env l.vw in
  env.prelude <- R.Assign (n, l.e) :: env.prelude;
  { e = R.Ref n; vw = l.vw; scw = l.vw }

let coerce env l = if l.scw >= l.vw then l else hoist env l

let resolve env name p =
  (match env.clock with
  | Some c when c = name ->
    fail p "the clock '%s' can only appear in sensitivity lists" name
  | _ -> ());
  match Hashtbl.find_opt env.table name with
  | None -> fail p "undeclared identifier '%s'" name
  | Some ({ kind = Ast.Wire; dir = None; driver = None; _ } as _i) ->
    fail p "wire '%s' is read but never assigned" name
  | Some i -> i

let rec lower env e : lv =
  match e with
  | Ast.Number { value; width; _ } ->
    let vw =
      match width with Some w -> w | None -> min_const_width value
    in
    { e = R.Const value; vw; scw = min_const_width value }
  | Ast.Id (n, p) ->
    let i = resolve env n p in
    { e = R.Ref i.sc_name; vw = i.width; scw = i.width }
  | Ast.Index (n, idx, p) ->
    let i = resolve env n p in
    if idx < 0 || idx >= i.width then
      fail p "bit select %s[%d] out of range (width %d)" n idx i.width;
    { e = R.Bit (i.sc_name, idx); vw = 1; scw = 1 }
  | Ast.Slice (n, h, l, p) ->
    let i = resolve env n p in
    if l > h then fail p "empty part select %s[%d:%d]" n h l;
    if l < 0 || h >= i.width then
      fail p "part select %s[%d:%d] out of range (width %d)" n h l i.width;
    let w = h - l + 1 in
    if w = i.width then { e = R.Ref i.sc_name; vw = w; scw = w }
    else begin
      let mask = (1 lsl w) - 1 in
      let base =
        if l = 0 then R.Ref i.sc_name
        else R.Binop (R.Shr, R.Ref i.sc_name, R.Const l)
      in
      { e = R.Binop (R.And, base, R.Const mask); vw = w; scw = w }
    end
  | Ast.Unop (Ast.Bnot, e', _) ->
    let a = coerce env (lower env e') in
    { e = R.Unop (R.Not, a.e); vw = a.vw; scw = a.vw }
  | Ast.Cond { cond; t; f; cpos = _ } ->
    let c = lower env cond in
    let lt = lower env t in
    let lf = lower env f in
    let vw = max lt.vw lf.vw in
    let n = fresh env vw in
    env.prelude <-
      R.If (c.e, [ R.Assign (n, lt.e) ], [ R.Assign (n, lf.e) ])
      :: env.prelude;
    { e = R.Ref n; vw; scw = vw }
  | Ast.Concat (parts, p) ->
    let ls =
      List.map
        (fun part ->
          (match part with
          | Ast.Number { width = None; value; npos } ->
            fail npos
              "unsized literal %d in concatenation (give it a size, e.g. \
               %d'd%d)"
              value (min_const_width value) value
          | _ -> ());
          lower env part)
        parts
    in
    let total = List.fold_left (fun a l -> a + l.vw) 0 ls in
    if total > max_width then
      fail p "concatenation is %d bits wide (max %d)" total max_width;
    (* rightmost part sits at bit 0.  Each shifted part goes through a
       full-width helper wire first, because sc_rtl's Shl masks at its
       left operand's width and would truncate the shifted value. *)
    let _, acc, scw =
      List.fold_left
        (fun (offset, acc, scw) l ->
          let contrib, cw =
            if offset = 0 then (l.e, l.scw)
            else begin
              let h = fresh env total in
              env.prelude <- R.Assign (h, l.e) :: env.prelude;
              (R.Binop (R.Shl, R.Ref h, R.Const offset), total)
            end
          in
          let acc =
            match acc with
            | None -> Some contrib
            | Some a -> Some (R.Binop (R.Or, contrib, a))
          in
          (offset + l.vw, acc, max scw cw))
        (0, None, 1) (List.rev ls)
    in
    { e = Option.get acc; vw = total; scw }
  | Ast.Binop (op, a, b, p) -> (
    match op with
    | Ast.Add | Ast.Sub ->
      let la = lower env a in
      let lb = lower env b in
      let vw = max la.vw lb.vw in
      (* Interp masks the result at the wider sc width; widen one
         operand only when that would undershoot the Verilog width *)
      let la, lb =
        if max la.scw lb.scw >= vw then (la, lb)
        else if la.vw >= lb.vw then (hoist env la, lb)
        else (la, hoist env lb)
      in
      let rop = match op with Ast.Add -> R.Add | _ -> R.Sub in
      { e = R.Binop (rop, la.e, lb.e); vw; scw = max la.scw lb.scw }
    | Ast.And | Ast.Or | Ast.Xor ->
      let la = lower env a in
      let lb = lower env b in
      let rop =
        match op with
        | Ast.And -> R.And
        | Ast.Or -> R.Or
        | _ -> R.Xor
      in
      let scw =
        (* mirror Check.expr_width's constant-mask narrowing *)
        match (rop, la.e, lb.e) with
        | R.And, _, R.Const c -> min la.scw (min_const_width c)
        | R.And, R.Const c, _ -> min lb.scw (min_const_width c)
        | _ -> max la.scw lb.scw
      in
      { e = R.Binop (rop, la.e, lb.e); vw = max la.vw lb.vw; scw }
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt ->
      let la = lower env a in
      let lb = lower env b in
      let rop =
        match op with
        | Ast.Eq -> R.Eq
        | Ast.Ne -> R.Ne
        | Ast.Lt -> R.Lt
        | _ -> R.Gt
      in
      { e = R.Binop (rop, la.e, lb.e); vw = 1; scw = 1 }
    | Ast.Le ->
      let la = lower env a in
      let lb = lower env b in
      { e = R.Unop (R.Not, R.Binop (R.Gt, la.e, lb.e)); vw = 1; scw = 1 }
    | Ast.Ge ->
      let la = lower env a in
      let lb = lower env b in
      { e = R.Unop (R.Not, R.Binop (R.Lt, la.e, lb.e)); vw = 1; scw = 1 }
    | Ast.Shl | Ast.Shr -> (
      let k =
        match b with
        | Ast.Number { value; _ } -> value
        | other -> fail (Ast.expr_pos other) "shift amount must be a constant"
      in
      if k > max_width then
        fail p "shift amount %d out of range 0..%d" k max_width;
      match op with
      | Ast.Shl ->
        let la = coerce env (lower env a) in
        { e = R.Binop (R.Shl, la.e, R.Const k); vw = la.vw; scw = la.vw }
      | _ ->
        let la = lower env a in
        { e = R.Binop (R.Shr, la.e, R.Const k)
        ; vw = la.vw
        ; scw = max 1 (la.scw - k)
        }))

let rec lower_stmt env = function
  | Ast.Nonblocking { target; rhs; spos } ->
    let i = resolve env target spos in
    let r = lower env rhs in
    [ R.Assign (i.sc_name, r.e) ]
  | Ast.If { cond; then_; else_; _ } ->
    let c = lower env cond in
    let t = lower_stmts env then_ in
    let e = lower_stmts env else_ in
    [ R.If (c.e, t, e) ]
  | Ast.Case { scrutinee; arms; default; spos = _ } ->
    let s = lower env scrutinee in
    let s = if s.scw = s.vw then s else hoist env s in
    let arms' =
      List.map
        (fun (label, body) ->
          let v =
            match label with
            | Ast.Number { value; _ } -> value
            | other ->
              fail (Ast.expr_pos other) "case labels must be constant numbers"
          in
          if v >= 1 lsl s.vw then
            fail (Ast.expr_pos label)
              "case label %d does not fit the scrutinee's %d bits" v s.vw;
          (v, lower_stmts env body))
        arms
    in
    [ R.Decode (s.e, arms', lower_stmts env default) ]

and lower_stmts env stmts = List.concat_map (lower_stmt env) stmts

(* free references of lowered statements, for scheduling *)
let rec expr_refs acc = function
  | R.Const _ -> acc
  | R.Ref n | R.Bit (n, _) -> n :: acc
  | R.Unop (_, e) -> expr_refs acc e
  | R.Binop (_, a, b) -> expr_refs (expr_refs acc a) b

let rec stmt_refs acc = function
  | R.Assign (_, e) -> expr_refs acc e
  | R.If (c, t, e) ->
    List.fold_left stmt_refs (List.fold_left stmt_refs (expr_refs acc c) t) e
  | R.Decode (e, cases, d) ->
    let acc = expr_refs acc e in
    let acc =
      List.fold_left (fun acc (_, ss) -> List.fold_left stmt_refs acc ss) acc
        cases
    in
    List.fold_left stmt_refs acc d

let elaborate_exn (m : Ast.module_) : R.design =
  (* declaration table *)
  let table = Hashtbl.create 16 in
  let decl_order = ref [] in
  List.iter
    (function
      | Ast.Decl d ->
        if Hashtbl.mem table d.Ast.name then
          fail d.Ast.dpos "duplicate declaration of '%s'" d.Ast.name;
        let width =
          match d.Ast.range with None -> 1 | Some { Ast.msb; _ } -> msb + 1
        in
        if width > max_width then
          fail d.Ast.dpos "%s: width %d out of range 1..%d" d.Ast.name width
            max_width;
        let sc_name =
          match d.Ast.dir with
          | Some Ast.Output -> "$" ^ d.Ast.name
          | _ -> d.Ast.name
        in
        Hashtbl.replace table d.Ast.name
          { kind = d.Ast.kind
          ; dir = d.Ast.dir
          ; width
          ; dpos = d.Ast.dpos
          ; sc_name
          ; driver = None
          };
        decl_order := d.Ast.name :: !decl_order
      | _ -> ())
    m.items;
  let decl_order = List.rev !decl_order in
  let find name = Hashtbl.find_opt table name in
  (* ports: every name declared with a direction, every direction ported *)
  let seen_ports = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen_ports p then fail m.mpos "port '%s' listed twice" p;
      Hashtbl.replace seen_ports p ();
      match find p with
      | None -> fail m.mpos "port '%s' has no declaration" p
      | Some { dir = None; dpos; _ } ->
        fail dpos "port '%s' needs a direction ('input' or 'output')" p
      | Some _ -> ())
    m.ports;
  List.iter
    (fun n ->
      let i = Hashtbl.find table n in
      match i.dir with
      | Some d when not (Hashtbl.mem seen_ports n) ->
        fail i.dpos "'%s' is declared %s but is not in the port list" n
          (match d with Ast.Input -> "input" | Ast.Output -> "output")
      | _ -> ())
    decl_order;
  (* clock and async-reset identification *)
  let clock = ref None in
  List.iter
    (function
      | Ast.Always { edges; body; apos } -> (
        match edges with
        | [] -> assert false
        | (c, cp) :: rest -> (
          (match !clock with
          | None -> (
            match find c with
            | Some { dir = Some Ast.Input; width = 1; _ } -> clock := Some c
            | Some _ -> fail cp "clock '%s' must be a 1-bit input" c
            | None -> fail cp "undeclared identifier '%s'" c)
          | Some c0 when c0 <> c ->
            fail cp "all always blocks must share one clock (got '%s' and '%s')"
              c0 c
          | Some _ -> ());
          match rest with
          | [] -> ()
          | [ (r, rp) ] -> (
            (match find r with
            | Some { dir = Some Ast.Input; width = 1; _ } -> ()
            | Some _ -> fail rp "async reset '%s' must be a 1-bit input" r
            | None -> fail rp "undeclared identifier '%s'" r);
            (* the classic idiom, realized with synchronous priority *)
            match body with
            | [ Ast.If { cond = Ast.Id (c', _); _ } ] when c' = r -> ()
            | _ ->
              fail apos
                "an always block with an async reset must be exactly 'if \
                 (%s) ... else ...'"
                r)
          | _ :: (_, p3) :: _ ->
            fail p3
              "unsupported sensitivity list (at most a clock and an async \
               reset)"))
      | _ -> ())
    m.items;
  (* driver classification: one driver per wire/reg, right kind each *)
  let block = ref (-1) in
  List.iter
    (function
      | Ast.Decl _ -> ()
      | Ast.Assign { lhs; apos; _ } -> (
        match find lhs with
        | None -> fail apos "undeclared identifier '%s'" lhs
        | Some i -> (
          (match i.dir with
          | Some Ast.Input -> fail apos "cannot drive input '%s'" lhs
          | _ -> ());
          if i.kind = Ast.Reg then
            fail apos
              "'%s' is a reg; drive it from an always block, or declare it \
               wire"
              lhs;
          match i.driver with
          | Some (Dassign p0 | Dalways (_, p0)) ->
            fail apos "'%s' has multiple drivers (also driven at %s)" lhs
              (Lexer.pos_to_string p0)
          | None -> i.driver <- Some (Dassign apos)))
      | Ast.Always { body; _ } ->
        incr block;
        let b = !block in
        let rec targets = function
          | Ast.Nonblocking { target; spos; _ } -> (
            match find target with
            | None -> fail spos "undeclared identifier '%s'" target
            | Some i -> (
              (match i.dir with
              | Some Ast.Input -> fail spos "cannot drive input '%s'" target
              | _ -> ());
              if i.kind = Ast.Wire then
                fail spos
                  "'%s' is a wire; declare it reg to drive it from an \
                   always block"
                  target;
              match i.driver with
              | Some (Dalways (b0, _)) when b0 = b -> ()
              | Some (Dassign p0) ->
                fail spos
                  "'%s' is driven by both an assign (at %s) and an always \
                   block"
                  target (Lexer.pos_to_string p0)
              | Some (Dalways (_, p0)) ->
                fail spos
                  "'%s' is driven from more than one always block (also at \
                   %s)"
                  target (Lexer.pos_to_string p0)
              | None -> i.driver <- Some (Dalways (b, spos))))
          | Ast.If { then_; else_; _ } ->
            List.iter targets then_;
            List.iter targets else_
          | Ast.Case { arms; default; _ } ->
            List.iter (fun (_, ss) -> List.iter targets ss) arms;
            List.iter targets default
        in
        List.iter targets body)
    m.items;
  List.iter
    (fun n ->
      let i = Hashtbl.find table n in
      if i.dir = Some Ast.Output && i.driver = None then
        fail i.dpos "output '%s' is never driven" n)
    decl_order;
  (* lowering *)
  let env =
    { table; clock = !clock; helpers = []; counter = 0; prelude = [] }
  in
  let nodes_acc = ref [] in
  let seq_acc = ref [] in
  let helper_names c0 c1 =
    List.init (c1 - c0) (fun k -> "$" ^ string_of_int (c0 + k))
  in
  List.iter
    (function
      | Ast.Decl _ -> ()
      | Ast.Assign { lhs; rhs; apos } ->
        let i = Hashtbl.find table lhs in
        env.prelude <- [];
        let c0 = env.counter in
        let r = lower env rhs in
        nodes_acc :=
          { nstmts = List.rev env.prelude @ [ R.Assign (i.sc_name, r.e) ]
          ; defines = i.sc_name :: helper_names c0 env.counter
          ; npos = apos
          ; nlabel = lhs
          }
          :: !nodes_acc
      | Ast.Always { body; apos; _ } ->
        env.prelude <- [];
        let c0 = env.counter in
        let ss = lower_stmts env body in
        if env.prelude <> [] then
          nodes_acc :=
            { nstmts = List.rev env.prelude
            ; defines = helper_names c0 env.counter
            ; npos = apos
            ; nlabel = "always"
            }
            :: !nodes_acc;
        seq_acc := ss :: !seq_acc)
    m.items;
  let nodes = Array.of_list (List.rev !nodes_acc) in
  let seq = List.concat (List.rev !seq_acc) in
  (* design signal lists *)
  let clock = !clock in
  let inputs =
    List.filter_map
      (fun p ->
        let i = Hashtbl.find table p in
        match i.dir with
        | Some Ast.Input when Some p <> clock ->
          Some { R.dname = p; width = i.width }
        | _ -> None)
      m.ports
  in
  let outputs =
    List.filter_map
      (fun p ->
        let i = Hashtbl.find table p in
        match i.dir with
        | Some Ast.Output -> Some { R.dname = p; width = i.width }
        | _ -> None)
      m.ports
  in
  if outputs = [] then fail m.mpos "module '%s' has no outputs" m.mname;
  let regs =
    List.filter_map
      (fun n ->
        let i = Hashtbl.find table n in
        if i.kind = Ast.Reg then Some { R.dname = i.sc_name; width = i.width }
        else None)
      decl_order
  in
  let wires =
    List.filter_map
      (fun n ->
        let i = Hashtbl.find table n in
        if i.kind = Ast.Wire && i.dir <> Some Ast.Input then
          Some { R.dname = i.sc_name; width = i.width }
        else None)
      decl_order
    @ List.rev env.helpers
  in
  (* schedule combinational nodes into evaluation order *)
  let wire_tbl = Hashtbl.create 16 in
  List.iter (fun (d : R.decl) -> Hashtbl.replace wire_tbl d.dname ()) wires;
  let node_reads =
    Array.map
      (fun nd ->
        List.fold_left stmt_refs [] nd.nstmts
        |> List.filter (fun n ->
               Hashtbl.mem wire_tbl n && not (List.mem n nd.defines))
        |> List.sort_uniq compare)
      nodes
  in
  let defined = Hashtbl.create 16 in
  let rec topo remaining acc =
    if remaining = [] then List.rev acc
    else begin
      let ready, blocked =
        List.partition
          (fun i -> List.for_all (Hashtbl.mem defined) node_reads.(i))
          remaining
      in
      if ready = [] then begin
        let i = List.hd blocked in
        fail nodes.(i).npos "combinational cycle through '%s'"
          nodes.(i).nlabel
      end;
      List.iter
        (fun i ->
          List.iter (fun d -> Hashtbl.replace defined d ()) nodes.(i).defines)
        ready;
      topo blocked (List.rev_append ready acc)
    end
  in
  let order = topo (List.init (Array.length nodes) Fun.id) [] in
  let comb = List.concat_map (fun i -> nodes.(i).nstmts) order in
  let copies =
    List.filter_map
      (fun p ->
        let i = Hashtbl.find table p in
        match i.dir with
        | Some Ast.Output -> Some (R.Assign (p, R.Ref i.sc_name))
        | _ -> None)
      m.ports
  in
  let design =
    { R.name = m.mname
    ; inputs
    ; outputs
    ; regs
    ; wires
    ; body = comb @ copies @ seq
    }
  in
  (* the lowering is constructed to be Check-clean; a residual failure
     is an elaborator bug, reported as a diagnostic rather than raised *)
  (match Sc_rtl.Check.check design with
  | [] -> ()
  | e :: _ -> fail m.mpos "internal elaboration error: %s" e);
  design

let elaborate m =
  match elaborate_exn m with
  | d -> Ok d
  | exception Elab_error (p, msg) -> Error (Lexer.pos_to_string p ^ ": " ^ msg)

let design_of_source src =
  match Parse.parse src with
  | Error e -> Error e
  | Ok m -> elaborate m
