(** Recursive-descent parsing of the synthesizable-Verilog subset.

    Grammar sketch (terminals quoted; [*] = repetition, [?] = option):

    {v
    source    ::= module EOF
    module    ::= "module" id ( "(" ports ")" )? ";" item* "endmodule"
    ports     ::= ansi_port ("," ansi_port)*     (ANSI header)
                | id ("," id)*                   (plain name list)
    ansi_port ::= ("input"|"output") ("wire"|"reg")? range? id
    item      ::= ("input"|"output"|"wire"|"reg") ("wire"|"reg")? range?
                    id ("=" expr)? ("," id)* ";"
                | "assign" id "=" expr ";"
                | "always" "@" "(" edge ("or" edge)* ")" stmt
    range     ::= "[" number ":" number "]"
    edge      ::= "posedge" id
    stmt      ::= "begin" stmt* "end"
                | "if" "(" expr ")" stmt ("else" stmt)?
                | "case" "(" expr ")" arm* ("default" ":"? stmt)? "endcase"
                | id "<=" expr ";"
    arm       ::= expr ("," expr)* ":" stmt
    expr      ::= prec climb over  ?:  |  ^  &  == !=  < <= > >=  << >>
                  + -  ~ -(unary)  with primaries: number, id, id[i],
                  id[h:l], (expr), {expr, ...}
    v}

    Everything outside the subset is rejected with a {e positioned,
    construct-naming} diagnostic — [initial] blocks, [#] delays,
    [negedge]/[@*] sensitivities, blocking [=] inside [always], loops,
    functions/tasks, parameters, [inout] ports, module instantiation,
    multiplication/division, logical [&&]/[||]/[!], replication,
    non-constant bit selects, [casez]/[casex], system tasks and a
    second module in one file.  The exact messages are part of the
    documented surface (see [docs/VERILOG.md]) and are exercised by the
    error-path tests. *)

val parse : string -> (Ast.module_, string) result
(** Parse one module.  Errors are ["line:col: message"] strings, never
    exceptions. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a single expression — for tests and tools. *)
