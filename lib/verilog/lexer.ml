type pos =
  { line : int
  ; col : int
  }

let pos_to_string p = Printf.sprintf "%d:%d" p.line p.col

type token =
  | Id of string
  | Number of { value : int; width : int option }
  | Sym of string
  | Eof

type lexeme =
  { tok : token
  ; pos : pos
  }

let token_to_string = function
  | Id i -> Printf.sprintf "identifier '%s'" i
  | Number { value; width = Some w } -> Printf.sprintf "number %d'd%d" w value
  | Number { value; width = None } -> Printf.sprintf "number %d" value
  | Sym s -> Printf.sprintf "'%s'" s
  | Eof -> "end of input"

exception Error of pos * string

let fail pos fmt = Format.kasprintf (fun s -> raise (Error (pos, s))) fmt

(* literal widths share sc_rtl's 1..30 ceiling: the interpreter and the
   synthesizer both hold buses in OCaml ints *)
let max_width = 30

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$'

let is_dec c = c >= '0' && c <= '9'

let digit_value c =
  if c >= '0' && c <= '9' then Char.code c - Char.code '0'
  else if c >= 'a' && c <= 'f' then 10 + Char.code c - Char.code 'a'
  else if c >= 'A' && c <= 'F' then 10 + Char.code c - Char.code 'A'
  else -1

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let bol = ref 0 (* offset of the current line's first character *) in
  let here () = { line = !line; col = !pos - !bol + 1 } in
  let advance () =
    (if !pos < n && text.[!pos] = '\n' then begin
       incr line;
       bol := !pos + 1
     end);
    incr pos
  in
  let peek k = if !pos + k < n then Some text.[!pos + k] else None in
  let emit p t = tokens := { tok = t; pos = p } :: !tokens in
  (* digits of [base] starting at !pos, underscores skipped; returns the
     value, failing on overflow past 2^max_width or on an empty run *)
  let scan_digits p base what =
    let start = !pos in
    let value = ref 0 in
    let digits = ref 0 in
    let continue = ref true in
    while !continue do
      match peek 0 with
      | Some '_' when !digits > 0 -> advance ()
      | Some c when digit_value c >= 0 && digit_value c < base ->
        value := (!value * base) + digit_value c;
        incr digits;
        if !value >= 1 lsl max_width then
          fail p "%s too large (buses are at most %d bits)" what max_width;
        advance ()
      | _ -> continue := false
    done;
    if !digits = 0 then fail { p with col = start - !bol + 1 } "missing digits in %s" what;
    !value
  in
  (* 'd12, 'b1010, 'hff, 'o17 — the part after the optional size *)
  let scan_based p width =
    advance () (* the quote *);
    let base =
      match peek 0 with
      | Some ('d' | 'D') -> 10
      | Some ('b' | 'B') -> 2
      | Some ('h' | 'H') -> 16
      | Some ('o' | 'O') -> 8
      | Some c -> fail (here ()) "unknown literal base '%c' (expected d, b, h or o)" c
      | None -> fail (here ()) "unexpected end of input in literal"
    in
    advance ();
    let value = scan_digits p base "literal" in
    (match width with
    | Some w when value >= 1 lsl w ->
      fail p "literal value %d does not fit in %d bits" value w
    | _ -> ());
    emit p (Number { value; width })
  in
  while !pos < n do
    let c = text.[!pos] in
    let p = here () in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && text.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if text.[!pos] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then fail p "unterminated block comment"
    end
    else if is_id_start c || c = '$' then begin
      let start = !pos in
      advance ();
      while (match peek 0 with Some c' -> is_id_char c' | None -> false) do
        advance ()
      done;
      emit p (Id (String.sub text start (!pos - start)))
    end
    else if is_dec c then begin
      let value = scan_digits p 10 "constant" in
      match peek 0 with
      | Some '\'' ->
        if value < 1 || value > max_width then
          fail p "literal width %d out of range 1..%d" value max_width;
        scan_based p (Some value)
      | _ -> emit p (Number { value; width = None })
    end
    else if c = '\'' then scan_based p None
    else begin
      let two = if !pos + 1 < n then String.sub text !pos 2 else "" in
      match two with
      | "<=" | ">=" | "==" | "!=" | "<<" | ">>" | "&&" | "||" ->
        emit p (Sym two);
        advance ();
        advance ()
      | _ -> (
        match c with
        | ';' | ',' | ':' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '=' | '<'
        | '>' | '+' | '-' | '&' | '|' | '^' | '~' | '@' | '#' | '*' | '/' | '!'
        | '%' | '.' ->
          emit p (Sym (String.make 1 c));
          advance ()
        | _ -> fail p "unexpected character %C" c)
    end
  done;
  emit (here ()) Eof;
  List.rev !tokens

let tokenize text =
  match tokenize text with
  | toks -> Ok toks
  | exception Error (p, msg) -> Error (pos_to_string p ^ ": " ^ msg)
