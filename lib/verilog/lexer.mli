(** Lexical analysis for the synthesizable-Verilog frontend.

    Every lexeme carries its source position, and every failure is a
    positioned message ([line:col: ...]) rather than an exception — the
    frontend's contract is that a malformed design produces a
    {!Sc_pipeline.Diag.t} the user can act on, never a backtrace.

    The token set covers the supported subset only: identifiers (with
    Verilog's [$] allowed after the first character, and a leading [$]
    reserved for system tasks so the parser can reject them by name),
    sized and unsized numeric literals, and punctuation/operators
    emitted verbatim as {!Sym} — including symbols the parser only ever
    {e rejects} (such as [#], [*] and [&&]), which are lexed so their
    diagnostics can name the construct instead of the character. *)

(** A source position, 1-based in both coordinates. *)
type pos =
  { line : int  (** 1-based line number *)
  ; col : int  (** 1-based column number *)
  }

val pos_to_string : pos -> string
(** ["line:col"] — the prefix every frontend diagnostic carries. *)

(** One lexical token. *)
type token =
  | Id of string
      (** An identifier or keyword ([always], [posedge], ... are plain
          [Id]s; the parser decides what is reserved). *)
  | Number of { value : int; width : int option }
      (** A numeric literal.  [width] is [Some w] for sized literals
          ([12'd0], [4'b1010], [8'hff], [6'o17]) and [None] for plain
          decimals and unsized based literals (['b1]).  Underscores in
          the digits are ignored. *)
  | Sym of string
      (** Punctuation or an operator, spelled as written ([<=], [>>],
          [{], [#], ...).  Two-character operators are single tokens. *)
  | Eof  (** End of input (always the last lexeme). *)

(** A token plus the position of its first character. *)
type lexeme =
  { tok : token
  ; pos : pos
  }

val token_to_string : token -> string
(** Human rendering for diagnostics: [identifier 'clk'], [number 12'd0],
    ['<='], [end of input]. *)

val tokenize : string -> (lexeme list, string) result
(** Scan a whole source text.  The result always ends with an {!Eof}
    lexeme.  Errors (stray characters, malformed or oversized literals,
    unterminated block comments) come back as positioned messages. *)
