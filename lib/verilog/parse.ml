exception Parse_error of Lexer.pos * string

let fail pos fmt = Format.kasprintf (fun s -> raise (Parse_error (pos, s))) fmt

(* words with reserved meaning in full Verilog; the subset's parser
   refuses them as identifiers so diagnostics name the construct *)
let keywords =
  [ "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg"
  ; "assign"; "always"; "posedge"; "negedge"; "or"; "begin"; "end"; "if"
  ; "else"; "case"; "casez"; "casex"; "endcase"; "default"; "initial"
  ; "parameter"; "localparam"; "integer"; "real"; "genvar"; "generate"
  ; "endgenerate"; "function"; "endfunction"; "task"; "endtask"; "for"
  ; "while"; "repeat"; "forever"; "wait"; "fork"; "join"; "signed"; "wand"
  ; "wor"; "tri"; "supply0"; "supply1"; "specify"; "endspecify"; "defparam"
  ]

let is_keyword w = List.mem w keywords

type state =
  { toks : Lexer.lexeme array
  ; mutable i : int
  }

let peek st = st.toks.(st.i).Lexer.tok
let pos st = st.toks.(st.i).Lexer.pos
let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let unexpected st what =
  fail (pos st) "expected %s, found %s" what (Lexer.token_to_string (peek st))

let expect_sym st s =
  match peek st with
  | Lexer.Sym s' when s = s' -> advance st
  | _ -> unexpected st (Printf.sprintf "'%s'" s)

let expect_kw st kw =
  match peek st with
  | Lexer.Id i when i = kw -> advance st
  | _ -> unexpected st (Printf.sprintf "keyword '%s'" kw)

let expect_ident st =
  match peek st with
  | Lexer.Id i when not (is_keyword i) ->
    if String.length i > 0 && i.[0] = '$' then
      fail (pos st) "unsupported system task '%s'" i;
    advance st;
    i
  | Lexer.Id i -> fail (pos st) "'%s' cannot be used as an identifier here" i
  | _ -> unexpected st "an identifier"

let expect_number st =
  match peek st with
  | Lexer.Number { value; _ } ->
    advance st;
    value
  | _ -> unexpected st "a number"

(* --- expressions --- *)

(* precedence climb, loosest first: ?:  |  ^  &  ==/!=  rel  shift  add
   unary  primary.  Unsupported operators get targeted diagnostics at
   the level where full Verilog would bind them. *)
let rec parse_cond st =
  let c = parse_or st in
  match peek st with
  | Lexer.Sym "?" ->
    let cpos = pos st in
    advance st;
    let t = parse_cond st in
    expect_sym st ":";
    let f = parse_cond st in
    Ast.Cond { cond = c; t; f; cpos }
  | _ -> c

and parse_or st =
  let a = parse_xor st in
  match peek st with
  | Lexer.Sym "|" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Or, a, parse_or st, p)
  | Lexer.Sym ("||" | "&&") ->
    fail (pos st)
      "unsupported operator '%s' (use the bitwise '%s' on 1-bit values)"
      (match peek st with Lexer.Sym s -> s | _ -> assert false)
      (match peek st with Lexer.Sym "||" -> "|" | _ -> "&")
  | _ -> a

and parse_xor st =
  let a = parse_and st in
  match peek st with
  | Lexer.Sym "^" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Xor, a, parse_xor st, p)
  | _ -> a

and parse_and st =
  let a = parse_eq st in
  match peek st with
  | Lexer.Sym "&" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.And, a, parse_and st, p)
  | _ -> a

and parse_eq st =
  let a = parse_rel st in
  match peek st with
  | Lexer.Sym "==" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Eq, a, parse_rel st, p)
  | Lexer.Sym "!=" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Ne, a, parse_rel st, p)
  | _ -> a

and parse_rel st =
  let a = parse_shift st in
  match peek st with
  | Lexer.Sym "<" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Lt, a, parse_shift st, p)
  | Lexer.Sym "<=" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Le, a, parse_shift st, p)
  | Lexer.Sym ">" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Gt, a, parse_shift st, p)
  | Lexer.Sym ">=" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Ge, a, parse_shift st, p)
  | _ -> a

and parse_shift st =
  let a = parse_add st in
  match peek st with
  | Lexer.Sym "<<" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Shl, a, parse_add st, p)
  | Lexer.Sym ">>" ->
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Shr, a, parse_add st, p)
  | _ -> a

and parse_add st =
  let rec loop a =
    match peek st with
    | Lexer.Sym "+" ->
      let p = pos st in
      advance st;
      loop (Ast.Binop (Ast.Add, a, parse_unary st, p))
    | Lexer.Sym "-" ->
      let p = pos st in
      advance st;
      loop (Ast.Binop (Ast.Sub, a, parse_unary st, p))
    | Lexer.Sym (("*" | "/" | "%") as op) ->
      fail (pos st)
        "unsupported operator '%s' (multiplication, division and modulo \
         are not in the subset)"
        op
    | _ -> a
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.Sym "~" ->
    let p = pos st in
    advance st;
    Ast.Unop (Ast.Bnot, parse_unary st, p)
  | Lexer.Sym "-" ->
    (* unary minus: two's-complement negate, i.e. 0 - e at the operand's
       width *)
    let p = pos st in
    advance st;
    Ast.Binop (Ast.Sub, Ast.Number { value = 0; width = None; npos = p },
               parse_unary st, p)
  | Lexer.Sym "!" ->
    fail (pos st) "unsupported operator '!' (compare with '== 0' instead)"
  | Lexer.Sym ("&" | "|" | "^") ->
    fail (pos st)
      "unsupported reduction operator '%s' (spell the bits out, e.g. \
       x[1] %s x[0])"
      (match peek st with Lexer.Sym s -> s | _ -> assert false)
      (match peek st with Lexer.Sym s -> s | _ -> assert false)
  | _ -> parse_primary st

and parse_primary st =
  let p = pos st in
  match peek st with
  | Lexer.Sym "#" ->
    fail p "unsupported construct '#' (delays are not synthesizable)"
  | Lexer.Number { value; width } ->
    advance st;
    Ast.Number { value; width; npos = p }
  | Lexer.Sym "(" ->
    advance st;
    let e = parse_cond st in
    expect_sym st ")";
    e
  | Lexer.Sym "{" ->
    advance st;
    let first = parse_cond st in
    (match (first, peek st) with
    | Ast.Number _, Lexer.Sym "{" ->
      fail p "unsupported construct: replication {N{...}}"
    | _ -> ());
    let parts = ref [ first ] in
    while peek st = Lexer.Sym "," do
      advance st;
      parts := parse_cond st :: !parts
    done;
    expect_sym st "}";
    Ast.Concat (List.rev !parts, p)
  | Lexer.Id i when not (is_keyword i) ->
    if String.length i > 0 && i.[0] = '$' then
      fail p "unsupported system task '%s'" i;
    advance st;
    (match peek st with
    | Lexer.Sym "[" ->
      advance st;
      let idx_pos = pos st in
      (match peek st with
      | Lexer.Number { value = hi; _ } -> (
        advance st;
        match peek st with
        | Lexer.Sym ":" ->
          advance st;
          let lo = expect_number st in
          expect_sym st "]";
          Ast.Slice (i, hi, lo, p)
        | _ ->
          expect_sym st "]";
          Ast.Index (i, hi, p))
      | _ ->
        fail idx_pos
          "unsupported non-constant bit select (indices must be numbers)")
    | _ -> Ast.Id (i, p))
  | _ -> unexpected st "an expression"

(* --- statements --- *)

let reject_stmt_keyword st = function
  | "for" | "while" | "repeat" | "forever" ->
    fail (pos st)
      "unsupported construct '%s' (loops are not synthesizable in this \
       subset)"
      (match peek st with Lexer.Id i -> i | _ -> assert false)
  | "casez" | "casex" ->
    fail (pos st)
      "unsupported construct '%s' (only 'case' with constant labels)"
      (match peek st with Lexer.Id i -> i | _ -> assert false)
  | "wait" | "fork" ->
    fail (pos st) "unsupported construct '%s' (simulation-only control)"
      (match peek st with Lexer.Id i -> i | _ -> assert false)
  | _ -> ()

let rec parse_stmt st =
  let p = pos st in
  match peek st with
  | Lexer.Sym "#" ->
    fail p "unsupported construct '#' (delays are not synthesizable)"
  | Lexer.Id "begin" ->
    advance st;
    let body = ref [] in
    while peek st <> Lexer.Id "end" && peek st <> Lexer.Eof do
      body := List.rev_append (parse_stmt st) !body
    done;
    expect_kw st "end";
    List.rev !body
  | Lexer.Id "if" ->
    advance st;
    expect_sym st "(";
    let cond = parse_cond st in
    expect_sym st ")";
    let then_ = parse_stmt st in
    let else_ =
      match peek st with
      | Lexer.Id "else" ->
        advance st;
        parse_stmt st
      | _ -> []
    in
    [ Ast.If { cond; then_; else_; spos = p } ]
  | Lexer.Id "case" ->
    advance st;
    expect_sym st "(";
    let scrutinee = parse_cond st in
    expect_sym st ")";
    let arms = ref [] in
    let default = ref [] in
    let rec arms_loop () =
      match peek st with
      | Lexer.Id "endcase" -> ()
      | Lexer.Id "default" ->
        advance st;
        (match peek st with Lexer.Sym ":" -> advance st | _ -> ());
        default := parse_stmt st;
        arms_loop ()
      | Lexer.Eof -> unexpected st "'endcase'"
      | _ ->
        let labels = ref [ parse_cond st ] in
        while peek st = Lexer.Sym "," do
          advance st;
          labels := parse_cond st :: !labels
        done;
        expect_sym st ":";
        let body = parse_stmt st in
        List.iter (fun l -> arms := (l, body) :: !arms) (List.rev !labels);
        arms_loop ()
    in
    arms_loop ();
    expect_kw st "endcase";
    [ Ast.Case { scrutinee; arms = List.rev !arms; default = !default; spos = p } ]
  | Lexer.Id kw when is_keyword kw ->
    reject_stmt_keyword st kw;
    unexpected st "a statement"
  | Lexer.Id _ -> (
    let target = expect_ident st in
    match peek st with
    | Lexer.Sym "<=" ->
      advance st;
      let rhs = parse_cond st in
      (match peek st with
      | Lexer.Sym "#" ->
        fail (pos st) "unsupported construct '#' (delays are not synthesizable)"
      | _ -> ());
      expect_sym st ";";
      [ Ast.Nonblocking { target; rhs; spos = p } ]
    | Lexer.Sym "=" ->
      fail (pos st)
        "unsupported blocking assignment '=' inside always (use the \
         non-blocking '<=', or 'assign' outside the block)"
    | Lexer.Sym "[" ->
      fail (pos st)
        "unsupported indexed assignment target (assign the whole vector)"
    | _ -> unexpected st "'<='")
  | _ -> unexpected st "a statement"

(* --- declarations and items --- *)

let parse_range st =
  match peek st with
  | Lexer.Sym "[" ->
    let p = pos st in
    advance st;
    let msb = expect_number st in
    expect_sym st ":";
    let lsb = expect_number st in
    expect_sym st "]";
    if lsb <> 0 then fail p "only [N:0] ranges are supported (got [%d:%d])" msb lsb;
    if msb < lsb then fail p "empty range [%d:%d]" msb lsb;
    Some { Ast.msb; lsb }
  | _ -> None

(* ("input"|"output"|"wire"|"reg") ("wire"|"reg")? range? name — the
   common prefix of ANSI ports and declaration items *)
let parse_decl_head st =
  let p = pos st in
  let dir, kind_tok =
    match peek st with
    | Lexer.Id "input" ->
      advance st;
      (Some Ast.Input, None)
    | Lexer.Id "output" ->
      advance st;
      (Some Ast.Output, None)
    | Lexer.Id "inout" -> fail (pos st) "unsupported port direction 'inout'"
    | Lexer.Id "wire" ->
      advance st;
      (None, Some Ast.Wire)
    | Lexer.Id "reg" ->
      advance st;
      (None, Some Ast.Reg)
    | _ -> unexpected st "'input', 'output', 'wire' or 'reg'"
  in
  let kind_tok =
    match (kind_tok, peek st) with
    | None, Lexer.Id "wire" ->
      advance st;
      Some Ast.Wire
    | None, Lexer.Id "reg" ->
      advance st;
      Some Ast.Reg
    | _ -> kind_tok
  in
  (match peek st with
  | Lexer.Id "signed" -> fail (pos st) "unsupported modifier 'signed'"
  | _ -> ());
  let kind =
    match kind_tok with
    | Some k -> k
    | None -> Ast.Wire (* a bare input/output defaults to wire *)
  in
  (* regs make no sense as inputs *)
  (match (dir, kind) with
  | Some Ast.Input, Ast.Reg -> fail p "an input cannot be declared 'reg'"
  | _ -> ());
  let range = parse_range st in
  (dir, kind, range, p)

let parse_ansi_port st =
  let dir, kind, range, p = parse_decl_head st in
  (match dir with
  | None ->
    fail p "ANSI port declarations need a direction ('input' or 'output')"
  | Some _ -> ());
  let name = expect_ident st in
  { Ast.name; dir; kind; range; dpos = p }

(* the port header: either ANSI declarations or a plain name list *)
let parse_ports st =
  match peek st with
  | Lexer.Sym ")" -> ([], [])
  | Lexer.Id ("input" | "output" | "inout") ->
    let decls = ref [ parse_ansi_port st ] in
    while peek st = Lexer.Sym "," do
      advance st;
      decls := parse_ansi_port st :: !decls
    done;
    let decls = List.rev !decls in
    (List.map (fun (d : Ast.decl) -> d.name) decls, decls)
  | _ ->
    let names = ref [ expect_ident st ] in
    while peek st = Lexer.Sym "," do
      advance st;
      names := expect_ident st :: !names
    done;
    (List.rev !names, [])

let parse_edge st =
  match peek st with
  | Lexer.Id "posedge" ->
    advance st;
    let p = pos st in
    let s = expect_ident st in
    (s, p)
  | Lexer.Id "negedge" ->
    fail (pos st) "unsupported edge 'negedge' (only posedge clocking)"
  | _ ->
    fail (pos st)
      "unsupported sensitivity list (only @(posedge CLK [or posedge RST]); \
       use 'assign' for combinational logic)"

let reject_item_keyword st kw =
  match kw with
  | "initial" ->
    fail (pos st)
      "unsupported construct 'initial' (simulation-only; registers power \
       up via your reset logic)"
  | "parameter" | "localparam" | "defparam" ->
    fail (pos st) "unsupported construct '%s' (parameters are not in the subset)"
      kw
  | "integer" | "real" | "genvar" ->
    fail (pos st) "unsupported declaration '%s'" kw
  | "generate" ->
    fail (pos st) "unsupported construct 'generate'"
  | "function" | "task" ->
    fail (pos st) "unsupported construct '%s'" kw
  | "specify" -> fail (pos st) "unsupported construct 'specify'"
  | "wand" | "wor" | "tri" | "supply0" | "supply1" ->
    fail (pos st) "unsupported net type '%s' (only 'wire' and 'reg')" kw
  | _ -> ()

let parse_item st =
  let p = pos st in
  match peek st with
  | Lexer.Sym "#" ->
    fail p "unsupported construct '#' (delays are not synthesizable)"
  | Lexer.Id ("input" | "output" | "inout" | "wire" | "reg") ->
    let dir, kind, range, hp = parse_decl_head st in
    let items = ref [] in
    let one () =
      let name = expect_ident st in
      items := Ast.Decl { name; dir; kind; range; dpos = hp } :: !items;
      (* "wire w = e;" sugars to a declaration plus a continuous assign *)
      match peek st with
      | Lexer.Sym "=" ->
        let ap = pos st in
        advance st;
        if kind = Ast.Reg then
          fail ap
            "unsupported declaration assignment on a reg (drive it from an \
             always block)";
        let rhs = parse_cond st in
        items := Ast.Assign { lhs = name; rhs; apos = ap } :: !items
      | _ -> ()
    in
    one ();
    while peek st = Lexer.Sym "," do
      advance st;
      one ()
    done;
    expect_sym st ";";
    List.rev !items
  | Lexer.Id "assign" ->
    advance st;
    let lhs_pos = pos st in
    let lhs = expect_ident st in
    (match peek st with
    | Lexer.Sym "[" ->
      fail lhs_pos
        "unsupported part-select assignment target (assign the whole vector)"
    | Lexer.Sym "=" -> advance st
    | _ -> unexpected st "'='");
    let rhs = parse_cond st in
    expect_sym st ";";
    [ Ast.Assign { lhs; rhs; apos = p } ]
  | Lexer.Id "always" ->
    advance st;
    (match peek st with
    | Lexer.Sym "@" -> advance st
    | _ -> unexpected st "'@'");
    (match peek st with
    | Lexer.Sym "*" ->
      fail (pos st)
        "unsupported sensitivity '@*' (use 'assign' for combinational logic)"
    | _ -> ());
    expect_sym st "(";
    (match peek st with
    | Lexer.Sym "*" ->
      fail (pos st)
        "unsupported sensitivity '@(*)' (use 'assign' for combinational \
         logic)"
    | _ -> ());
    let edges = ref [ parse_edge st ] in
    while peek st = Lexer.Id "or" do
      advance st;
      edges := parse_edge st :: !edges
    done;
    expect_sym st ")";
    let body = parse_stmt st in
    [ Ast.Always { edges = List.rev !edges; body; apos = p } ]
  | Lexer.Id kw when is_keyword kw ->
    reject_item_keyword st kw;
    unexpected st "a module item"
  | Lexer.Id i ->
    if String.length i > 0 && i.[0] = '$' then
      fail p "unsupported system task '%s'" i
    else
      fail p
        "unsupported construct starting at '%s' (module instantiation is \
         not in the subset; expected 'input', 'output', 'wire', 'reg', \
         'assign' or 'always')"
        i
  | _ -> unexpected st "a module item"

let parse_module st =
  let mpos = pos st in
  expect_kw st "module";
  let mname = expect_ident st in
  let ports, header_decls =
    match peek st with
    | Lexer.Sym "(" ->
      advance st;
      let ps = parse_ports st in
      expect_sym st ")";
      ps
    | _ -> ([], [])
  in
  expect_sym st ";";
  let items = ref (List.map (fun d -> Ast.Decl d) header_decls) in
  while peek st <> Lexer.Id "endmodule" && peek st <> Lexer.Eof do
    items := List.rev_append (parse_item st) !items
  done;
  expect_kw st "endmodule";
  (match peek st with
  | Lexer.Eof -> ()
  | Lexer.Id "module" ->
    fail (pos st) "only one module per file is supported"
  | _ -> unexpected st "end of input");
  { Ast.mname; ports; items = List.rev !items; mpos }

let with_tokens text k =
  match Lexer.tokenize text with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks = Array.of_list toks; i = 0 } in
    match k st with
    | v -> Ok v
    | exception Parse_error (p, msg) -> Error (Lexer.pos_to_string p ^ ": " ^ msg))

let parse text = with_tokens text parse_module

let parse_expr text =
  with_tokens text (fun st ->
      let e = parse_cond st in
      match peek st with
      | Lexer.Eof -> e
      | _ -> unexpected st "end of input")
