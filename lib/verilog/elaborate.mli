(** Elaboration: lowering a parsed Verilog module onto the ISP-level
    {!Sc_rtl.Ast.design}, the shared entry point of the behavioral
    pipeline (compile → optimize → place → route → drc → emit).

    The lowering is semantics-preserving with respect to the subset's
    documented evaluation rules (see [docs/VERILOG.md]):

    - the clock is identified from the [always @(posedge ...)]
      sensitivity lists, removed from the design's inputs (the ISP
      model has an implicit clock) and banned from expressions;
    - the two-edge idiom [always @(posedge clk or posedge rst)] with a
      body of exactly [if (rst) ... else ...] is accepted and realized
      with synchronous reset priority;
    - every Verilog output is given an internal carrier (ISP outputs
      are write-only), so outputs remain readable in expressions;
    - [?:] and concatenation are hoisted through fresh helper wires
      (names start with [$], which no user identifier can), keeping
      every intermediate at its Verilog-determined width;
    - continuous assignments are topologically sorted into evaluation
      order; a combinational cycle is a positioned error;
    - non-blocking assignments keep Verilog's semantics exactly: all
      right-hand sides see pre-edge register values, the last
      assignment in program order wins.

    Expressions are evaluated {e self-determined}: every operation is
    masked at the width of its widest operand, so an addition's carry
    out is lost unless an operand is widened explicitly (e.g.
    [{1'b0, a} + b]).  All diagnostics are positioned
    ["line:col: message"] strings — elaboration never raises. *)

val elaborate : Ast.module_ -> (Sc_rtl.Ast.design, string) result
(** Lower one parsed module.  The resulting design is
    {!Sc_rtl.Check}-clean by construction; any residual check failure
    is reported as an internal error rather than raised. *)

val design_of_source : string -> (Sc_rtl.Ast.design, string) result
(** [parse] composed with {!elaborate}: Verilog source text to an ISP
    design in one step.  This is the function the pipeline's
    [verilog.parse] pass wraps. *)
