(** Abstract syntax of the synthesizable-Verilog subset.

    One [module]/[endmodule] with a port list; [wire]/[reg]
    declarations with [\[msb:lsb\]] ranges; continuous [assign]s; and
    [always @(posedge clk)] blocks (optionally with the classic
    async-reset sensitivity [or posedge rst]) whose bodies are
    non-blocking assignments, [if]/[else] and [case].  Every node
    carries the {!Lexer.pos} of its first token so elaboration errors
    point at source, exactly like parse errors.

    The tree is deliberately close to the concrete syntax — bit
    selects, part selects, [?:] and concatenation survive as themselves
    — and {!Elaborate} owns the semantic lowering onto the ISP-level
    {!Sc_rtl.Ast.design}. *)

(** Unary operators ([~]; unary [-] is desugared to [0 - e] by the
    parser). *)
type unop = Bnot  (** bitwise complement [~] *)

(** Binary operators of the subset.  [Le]/[Ge] are first-class here and
    lowered to negated [Gt]/[Lt] during elaboration. *)
type binop =
  | Add
  | Sub
  | And  (** bitwise [&] *)
  | Or  (** bitwise [|] *)
  | Xor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Shl  (** shift by a constant right operand *)
  | Shr
type expr =
  | Number of { value : int; width : int option; npos : Lexer.pos }
      (** [12'd0] carries [width = Some 12]; a plain [42] carries
          [None]. *)
  | Id of string * Lexer.pos
  | Index of string * int * Lexer.pos  (** constant bit select [x\[3\]] *)
  | Slice of string * int * int * Lexer.pos
      (** constant part select [x\[hi:lo\]] *)
  | Unop of unop * expr * Lexer.pos
  | Binop of binop * expr * expr * Lexer.pos
  | Cond of { cond : expr; t : expr; f : expr; cpos : Lexer.pos }
      (** the conditional operator [c ? t : f] *)
  | Concat of expr list * Lexer.pos  (** [{a, b, ...}], leftmost is
          the most significant part *)

(** Statements allowed inside an [always @(posedge ...)] block. *)
type stmt =
  | Nonblocking of { target : string; rhs : expr; spos : Lexer.pos }
      (** [q <= e;] *)
  | If of { cond : expr; then_ : stmt list; else_ : stmt list; spos : Lexer.pos }
  | Case of
      { scrutinee : expr
      ; arms : (expr * stmt list) list
          (** one entry per label; an arm with several labels is
              flattened into several entries sharing the body *)
      ; default : stmt list
      ; spos : Lexer.pos
      }

(** Port direction (only [input] and [output]; [inout] is rejected at
    parse time). *)
type dir =
  | Input
  | Output

(** Net kind: [wire] (continuous assignment) or [reg] (always-block
    target). *)
type kind =
  | Wire
  | Reg

(** A bit-vector range [\[msb:lsb\]]; a missing range means one bit. *)
type range =
  { msb : int
  ; lsb : int
  }

(** One declared name — from an ANSI port header, a non-ANSI
    [input]/[output] item, or a plain [wire]/[reg] item. *)
type decl =
  { name : string
  ; dir : dir option  (** [None] for internal wires/regs *)
  ; kind : kind
  ; range : range option
  ; dpos : Lexer.pos
  }

(** A module item. *)
type item =
  | Decl of decl
  | Assign of { lhs : string; rhs : expr; apos : Lexer.pos }
      (** continuous assignment [assign w = e;] *)
  | Always of
      { edges : (string * Lexer.pos) list
          (** the [posedge] signals of the sensitivity list, in source
              order (one: the clock; two: clock plus async reset) *)
      ; body : stmt list
      ; apos : Lexer.pos
      }

(** A parsed module: name, port-list names in source order, items. *)
type module_ =
  { mname : string
  ; ports : string list
  ; items : item list
  ; mpos : Lexer.pos
  }

val expr_pos : expr -> Lexer.pos
(** The position of an expression's first token. *)

val pp_expr : Format.formatter -> expr -> unit
(** Concrete-syntax rendering, for tests and diagnostics. *)

val pp_stmt : Format.formatter -> stmt -> unit
