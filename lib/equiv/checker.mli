(** The equivalence checker: certify that two circuits compute the same
    function, or produce a concrete distinguishing input.

    Combinational circuits are compared directly through {!Miter};
    circuits with flip-flops are compared by [k]-frame bounded unrolling
    from the all-zero power-up state ({!Unroll.frames}).  A negative
    verdict always carries a counterexample stimulus that can be — and
    in {!replay} is — run through {!Sc_sim.Engine} on both circuits.

    This is what certifies the compilation stages: raw synthesis vs the
    optimizer ({!Sc_netlist.Optimize}), synthesized datapaths vs
    hand-built netlists, two-level minimization ({!check_covers}), and
    extracted mask artwork vs its source netlist ({!check_artwork}). *)

open Sc_netlist

(** A distinguishing stimulus.  [frames] lists, per clock cycle, the
    value driven on every input port (don't-care bits are 0); on cycle
    [cycle] output [output] differs between the two circuits at bit
    [bit].  Combinational counterexamples have one frame and
    [cycle = 0]. *)
type counterexample =
  { frames : (string * int) list list
  ; output : string
  ; bit : int
  ; cycle : int
  }

type verdict =
  | Equivalent
  | Not_equivalent of counterexample

(** Human-readable verdict, counterexample frames included. *)
val pp_verdict : Format.formatter -> verdict -> unit

(** Does the flattened circuit contain any flip-flop? *)
val is_sequential : Circuit.t -> bool

(** [check ?man ?order ?k a b] — formal equivalence of [a] and [b] with
    input/output correspondence by port name.  Combinational pairs are
    proved for all inputs; sequential pairs for the first [k]
    (default 8) cycles from the all-zero state.  Pass [man] to inspect
    BDD statistics afterwards ({!Bdd.node_count}).
    @raise Miter.Mismatch when the port signatures differ.
    @raise Invalid_argument on combinational cycles. *)
val check :
  ?man:Bdd.man -> ?order:Miter.order -> ?k:int -> Circuit.t -> Circuit.t ->
  verdict

(** [check_cones ?pool ?order ?k a b] — same verdict contract as
    {!check}, computed one output-port cone at a time
    ({!Miter.cone_outputs}), each cone with a fresh BDD manager, run
    concurrently on [pool] (default {!Sc_par.Pool.default}).  Every
    manager allocates variables from the same shared input order, so
    cones agree on the variable space.  The reported disagreement is the
    first differing port in declaration order regardless of pool size;
    the counterexample assignment may differ from {!check}'s (different
    manager, same distinguishing property).  ["bdd.nodes"] gauges the
    sum over all cone managers. *)
val check_cones :
  ?pool:Sc_par.Pool.t -> ?order:Miter.order -> ?k:int -> Circuit.t ->
  Circuit.t -> verdict

(** Proof summary of a successful {!certify}: how many output cones
    were proved and the summed BDD node count across their managers. *)
type certificate =
  { cert_cones : int
  ; cert_nodes : int
  }

(** [certify ?pool ?order ?k a b] — the same per-cone parallel proof as
    {!check_cones}, packaged for the pass manager's [~certify] hooks:
    [Ok certificate] when equivalent, [Error cex] with the
    distinguishing stimulus otherwise.  Emits {b no} Obs telemetry —
    the pass manager replays certificate counters from the cached
    summary so warm and cold QoR snapshots stay byte-identical. *)
val certify :
  ?pool:Sc_par.Pool.t -> ?order:Miter.order -> ?k:int -> Circuit.t ->
  Circuit.t -> (certificate, counterexample) result

(** Outcome of replaying a counterexample in simulation.
    [Indeterminate] means the named output bit was X on at least one
    side at the failing cycle — the witness is neither confirmed nor
    refuted (the BDD model and the 3-valued simulator disagree about
    initialization), which is distinct from a definite
    [Not_reproduced]. *)
type replay_verdict = Reproduced | Not_reproduced | Indeterminate

val replay_verdict_to_string : replay_verdict -> string

(** [replay a b cex] — drive both circuits with the counterexample
    through {!Sc_sim.Engine} (registers forced to 0 first) and report
    whether the named output bit really differs at the named cycle:
    {!Reproduced} confirms the counterexample in simulation. *)
val replay : Circuit.t -> Circuit.t -> counterexample -> replay_verdict

(** [mutate c i] — flip gate [i] (index into the flattened gate list) to
    a different kind of the same arity (AND<->OR, XOR<->XNOR,
    INV<->BUF, ...); MUX2 gets its data inputs swapped.  Fault
    injection for exercising the checker and its counterexamples.
    @raise Invalid_argument when [i] is out of range or the gate is
    sequential or constant. *)
val mutate : Circuit.t -> int -> Circuit.t

(** [check_covers a b] — equivalence of two sum-of-products covers via
    their BDDs; [None] when equivalent, [Some (input, output)] a
    distinguishing minterm and the output it distinguishes.
    @raise Invalid_argument on arity mismatch. *)
val check_covers :
  Sc_logic.Cover.t -> Sc_logic.Cover.t -> (bool array * int) option

(** [check_artwork cell ~inputs ~outputs circuit] — extract [cell]'s
    transistor netlist from its mask geometry ({!Sc_extract.Extractor}),
    tabulate its switch-level function over the named input ports, and
    compare the resulting BDDs against [circuit]'s (whose input/output
    ports must carry the same names, one bit each).  An X on any output
    is a disagreement.  This is layout-versus-netlist, formally.
    @raise Invalid_argument when [inputs] exceeds 12 bits (tabulation is
    exhaustive) or a port is missing.
    @raise Not_found when [cell] lacks "vdd"/"gnd" ports. *)
val check_artwork :
  Sc_layout.Cell.t ->
  inputs:string list ->
  outputs:string list ->
  Circuit.t ->
  verdict
