(** Bounded unrolling of sequential circuits.

    [frames ~k c] turns a circuit with flip-flops into a purely
    combinational one spanning [k] clock cycles: input port [p] becomes
    [p@0 .. p@k-1], output port [o] becomes [o@0 .. o@k-1], and every
    flip-flop output at frame 0 is the constant 0 — the interpreter's
    power-up state, which {!Sc_sim.Engine.force_registers} reproduces
    for counterexample replay.  A [Dff] at frame [f] carries its data
    input of frame [f-1]; a [Dffe] holds its frame [f-1] value unless
    enabled.

    Two circuits agree on all outputs of their [k]-frame unrollings iff
    they are [k]-cycle equivalent from the all-zero state. *)

open Sc_netlist

(** @raise Invalid_argument when [k < 1] or on a combinational cycle. *)
val frames : k:int -> Circuit.t -> Circuit.t

(** [frame_port p f] = ["p@f"], the per-frame port naming. *)
val frame_port : string -> int -> string

(** [split_port "p@f"] = [(p, f)]; [(name, 0)] when unsuffixed. *)
val split_port : string -> string * int
