(** Miter construction: two circuits, one BDD per disagreement.

    Input correspondence is by port name and bit index; both circuits
    must expose identical input and output port signatures
    ({!exception:Mismatch} otherwise).  A shared {!env} assigns one BDD
    variable to every input bit, so the two circuits' output functions
    live in the same variable space and equivalence is handle equality.

    Only combinational circuits are accepted here — unroll sequential
    ones first ({!Unroll.frames}). *)

open Sc_netlist

exception Mismatch of string
(** Port signatures differ (missing port, width or direction clash). *)

(** Variable ordering heuristics.

    - [Declaration]: input bits in port declaration order, lsb first —
      the baseline.
    - [Fanin_dfs]: depth-first traversal of the fanin cones from the
      outputs; inputs get variables in first-visit order.  This places
      inputs that interact (e.g. the two operands of an adder, bit by
      bit) at adjacent levels, which is what keeps datapath BDDs small. *)
type order = Declaration | Fanin_dfs

(** Maps input-port bits to BDD variables (and back, for
    counterexample extraction). *)
type env =
  { man : Bdd.man
  ; var_of : (string * int, int) Hashtbl.t  (** (port, bit) -> variable *)
  ; names : (string * int) array  (** variable -> (port, bit) *)
  }

(** [input_order ?order c] — the heuristic order over [c]'s input bits. *)
val input_order : ?order:order -> Circuit.t -> (string * int) list

(** Allocate variables for an explicit input-bit order. *)
val env_of_order : Bdd.man -> (string * int) list -> env

(** [env_of ?order man c] = [env_of_order man (input_order ?order c)]. *)
val env_of : ?order:order -> Bdd.man -> Circuit.t -> env

(** [outputs env c] — the BDD of every output-port bit of [c], in port
    declaration order.  Flattens and evaluates gates in topological
    order; every evaluation is memoized inside the manager.
    @raise Mismatch when [c] reads an input bit with no variable.
    @raise Invalid_argument on sequential gates or a combinational
    cycle. *)
val outputs : env -> Circuit.t -> (string * Bdd.t array) list

(** [cone_outputs env c names] — as {!outputs}, but only the output
    ports in [names], and only the gates in their fan-in cones are
    evaluated.  One cone per BDD manager is the work unit for parallel
    equivalence checking ({!Checker.check_cones}): cones are independent
    once every manager allocates variables from the same input order. *)
val cone_outputs : env -> Circuit.t -> string list -> (string * Bdd.t array) list

(** [miter env a b] — OR over all output bits of (a_bit XOR b_bit):
    satisfiable exactly when the circuits disagree somewhere.
    @raise Mismatch on differing port signatures. *)
val miter : env -> Circuit.t -> Circuit.t -> Bdd.t

(** [check_signatures a b] — raise {!exception:Mismatch} unless [a] and
    [b] have identical input and output port signatures. *)
val check_signatures : Circuit.t -> Circuit.t -> unit

(** [bdd_of_cover man cover] — one BDD per output of a sum-of-products
    cover, over variables [0 .. ninputs-1] (used to certify two-level
    minimization). *)
val bdd_of_cover : Bdd.man -> Sc_logic.Cover.t -> Bdd.t array
