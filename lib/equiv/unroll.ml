open Sc_netlist

let frame_port name f = Printf.sprintf "%s@%d" name f

let split_port name =
  match String.rindex_opt name '@' with
  | None -> (name, 0)
  | Some i -> (
    let base = String.sub name 0 i in
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some f -> (base, f)
    | None -> (name, 0))

let frames ~k c =
  if k < 1 then invalid_arg "Unroll.frames: k must be >= 1";
  let f, topo = Circuit.comb_topo c in
  let ffs =
    List.filter
      (fun (g : Circuit.gate_inst) -> Gate.is_sequential g.kind)
      f.Circuit.gates
  in
  let b = Builder.create (Printf.sprintf "%s@%dframes" f.Circuit.cname k) in
  let prev = ref [||] in
  for frame = 0 to k - 1 do
    let map = Array.make f.Circuit.net_count (-1) in
    map.(Circuit.false_net) <- Builder.const0;
    map.(Circuit.true_net) <- Builder.const1;
    (* flip-flop outputs: zero at power-up, else last frame's sampled value *)
    List.iter
      (fun (g : Circuit.gate_inst) ->
        map.(g.out) <-
          (if frame = 0 then Builder.const0
           else
             let pm = !prev in
             match g.kind with
             | Gate.Dff -> pm.(g.ins.(0))
             | Gate.Dffe ->
               Builder.mux2 b ~sel:pm.(g.ins.(1)) pm.(g.out) pm.(g.ins.(0))
             | _ -> assert false))
      ffs;
    List.iter
      (fun (p : Circuit.port) ->
        if p.dir = Circuit.In then begin
          let nets =
            Builder.input b (frame_port p.port_name frame) (Array.length p.bits)
          in
          Array.iteri (fun i bit -> map.(bit) <- nets.(i)) p.bits
        end)
      f.Circuit.ports;
    List.iter
      (fun (g : Circuit.gate_inst) ->
        let ins = Array.map (fun n -> map.(n)) g.ins in
        Array.iter (fun n -> assert (n >= 0)) ins;
        map.(g.out) <- Builder.gate b g.kind ins)
      topo;
    List.iter
      (fun (p : Circuit.port) ->
        if p.dir = Circuit.Out then
          Builder.output b
            (frame_port p.port_name frame)
            (Array.map (fun n -> map.(n)) p.bits))
      f.Circuit.ports;
    prev := map
  done;
  Builder.finish b
