(** Hash-consed reduced ordered binary decision diagrams.

    The canonical-form workhorse of the equivalence checker: every
    boolean function over an ordered variable set has exactly one node,
    so function equality is integer equality.  Nodes live in one growable
    arena per manager; {!and_}/{!or_}/{!xor}/{!ite} are memoized
    (dynamic-programming over node pairs), so each distinct sub-problem
    is solved once.

    Variable indices are levels: smaller index = closer to the root.
    Choosing that order well is the whole game for BDD size — the
    ordering heuristics live in {!Miter} where the circuit structure is
    visible. *)

type man
(** A node arena plus unique table and operation caches. *)

type t = private int
(** A node handle.  Handles from different managers must not be mixed.
    Equal handles (of one manager) denote equal functions. *)

(** A fresh manager; [size_hint] pre-sizes the node arena. *)
val create : ?size_hint:int -> unit -> man

val zero : t
(** The constant-false terminal. *)

val one : t
(** The constant-true terminal. *)

val var : man -> int -> t
(** [var m i] — the function of variable [i].
    @raise Invalid_argument when [i < 0]. *)

val not_ : man -> t -> t
(** Complement (memoized, like all operations below). *)

val and_ : man -> t -> t -> t
(** Conjunction. *)

val or_ : man -> t -> t -> t
(** Disjunction. *)

val xor : man -> t -> t -> t
(** Exclusive or. *)

val xnor : man -> t -> t -> t
(** Equivalence (complement of {!xor}). *)

val ite : man -> t -> t -> t -> t
(** [ite m f g h] = if [f] then [g] else [h]. *)

val equal : t -> t -> bool
(** Function equality — integer equality of handles (hash-consing). *)

val is_true : t -> bool
(** Is this the {!one} terminal (a tautology)? *)

val is_false : t -> bool
(** Is this the {!zero} terminal (unsatisfiable)? *)

val node_count : man -> int
(** Nodes allocated in the manager so far (terminals included). *)

val size : man -> t -> int
(** Nodes reachable from a handle, terminals excluded. *)

val support : man -> t -> int list
(** Variables the function actually depends on, ascending. *)

val eval : man -> t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val sat_one : man -> t -> (int * bool) list
(** One satisfying assignment, as [(variable, value)] pairs on a root-to-
    [one] path; variables not listed are don't-care.
    @raise Invalid_argument on [zero]. *)
