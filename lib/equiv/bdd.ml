(* Nodes are ints into three parallel arrays (variable, low child, high
   child).  Ids 0 and 1 are the terminals; their variable is max_int so
   [min] over levels always picks a decision variable first.  The unique
   table enforces strong canonicity (no node with lo = hi, no duplicate
   triples), so semantic equality is [==] on ids. *)

type t = int

type man =
  { mutable vr : int array
  ; mutable lo : int array
  ; mutable hi : int array
  ; mutable n : int  (* next free id *)
  ; unique : (int * int * int, int) Hashtbl.t
  ; binop : (int * int * int, int) Hashtbl.t  (* (op, a, b) -> result *)
  ; neg : (int, int) Hashtbl.t
  ; ite_cache : (int * int * int, int) Hashtbl.t
  }

let zero = 0
let one = 1

let create ?(size_hint = 1024) () =
  let cap = max size_hint 16 in
  let vr = Array.make cap max_int in
  let lo = Array.make cap 0 in
  let hi = Array.make cap 0 in
  lo.(1) <- 1;
  hi.(1) <- 1;
  { vr
  ; lo
  ; hi
  ; n = 2
  ; unique = Hashtbl.create cap
  ; binop = Hashtbl.create cap
  ; neg = Hashtbl.create 64
  ; ite_cache = Hashtbl.create 64
  }

let grow m =
  if m.n = Array.length m.vr then begin
    let cap = 2 * Array.length m.vr in
    let copy a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 m.n;
      a'
    in
    m.vr <- copy m.vr max_int;
    m.lo <- copy m.lo 0;
    m.hi <- copy m.hi 0
  end

let mk m v l h =
  if l = h then l
  else
    match Hashtbl.find_opt m.unique (v, l, h) with
    | Some id -> id
    | None ->
      grow m;
      let id = m.n in
      m.vr.(id) <- v;
      m.lo.(id) <- l;
      m.hi.(id) <- h;
      m.n <- id + 1;
      Hashtbl.add m.unique (v, l, h) id;
      id

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative variable";
  mk m i zero one

let level m x = m.vr.(x)

let rec not_ m x =
  if x = zero then one
  else if x = one then zero
  else
    match Hashtbl.find_opt m.neg x with
    | Some r -> r
    | None ->
      let r = mk m m.vr.(x) (not_ m m.lo.(x)) (not_ m m.hi.(x)) in
      Hashtbl.add m.neg x r;
      r

(* op codes for the shared binary cache *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op x y =
  let shortcut =
    if op = op_and then
      if x = zero || y = zero then Some zero
      else if x = one then Some y
      else if y = one then Some x
      else if x = y then Some x
      else None
    else if op = op_or then
      if x = one || y = one then Some one
      else if x = zero then Some y
      else if y = zero then Some x
      else if x = y then Some x
      else None
    else if x = y then Some zero
    else if x = zero then Some y
    else if y = zero then Some x
    else if x = one then Some (not_ m y)
    else if y = one then Some (not_ m x)
    else None
  in
  match shortcut with
  | Some r -> r
  | None ->
    (* all three ops are commutative: normalize the cache key *)
    let a, b = if x <= y then (x, y) else (y, x) in
    let key = (op, a, b) in
    (match Hashtbl.find_opt m.binop key with
    | Some r -> r
    | None ->
      let va = level m a and vb = level m b in
      let v = min va vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
      Hashtbl.add m.binop key r;
      r)

let and_ m x y = apply m op_and x y
let or_ m x y = apply m op_or x y
let xor m x y = apply m op_xor x y
let xnor m x y = not_ m (xor m x y)

let rec ite m f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else if g = zero && h = one then not_ m f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v = min (level m f) (min (level m g) (level m h)) in
      let cof x = if level m x = v then (m.lo.(x), m.hi.(x)) else (x, x) in
      let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
      let r = mk m v (ite m f0 g0 h0) (ite m f1 g1 h1) in
      Hashtbl.add m.ite_cache key r;
      r

let equal (a : t) (b : t) = a = b
let is_true x = x = one
let is_false x = x = zero
let node_count m = m.n

let reachable m x =
  let seen = Hashtbl.create 64 in
  let rec go x =
    if x > one && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      go m.lo.(x);
      go m.hi.(x)
    end
  in
  go x;
  seen

let size m x = Hashtbl.length (reachable m x)

let support m x =
  let vars = Hashtbl.create 16 in
  Hashtbl.iter (fun id () -> Hashtbl.replace vars m.vr.(id) ()) (reachable m x);
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let rec eval m x env =
  if x = zero then false
  else if x = one then true
  else eval m (if env m.vr.(x) then m.hi.(x) else m.lo.(x)) env

let sat_one m x =
  if x = zero then invalid_arg "Bdd.sat_one: unsatisfiable";
  let rec go x acc =
    if x = one then List.rev acc
    else if m.hi.(x) <> zero then go m.hi.(x) ((m.vr.(x), true) :: acc)
    else go m.lo.(x) ((m.vr.(x), false) :: acc)
  in
  go x []
