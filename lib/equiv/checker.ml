open Sc_netlist

type counterexample =
  { frames : (string * int) list list
  ; output : string
  ; bit : int
  ; cycle : int
  }

type verdict =
  | Equivalent
  | Not_equivalent of counterexample

let pp_verdict ppf = function
  | Equivalent -> Format.fprintf ppf "equivalent"
  | Not_equivalent cex ->
    Format.fprintf ppf "NOT equivalent: %s[%d] differs at cycle %d under"
      cex.output cex.bit cex.cycle;
    List.iteri
      (fun cyc frame ->
        Format.fprintf ppf "@ cycle %d:" cyc;
        List.iter (fun (p, v) -> Format.fprintf ppf " %s=%d" p v) frame)
      cex.frames

let is_sequential c = (Circuit.stats c).Circuit.flipflops > 0

(* first differing output bit, in port declaration order — for unrolled
   circuits that order is frame-major, so the earliest cycle wins *)
let first_diff man oa ob =
  let rec scan = function
    | [] -> None
    | (name, bits_a) :: rest ->
      let bits_b = List.assoc name ob in
      let rec bit i =
        if i >= Array.length bits_a then scan rest
        else
          let d = Bdd.xor man bits_a.(i) bits_b.(i) in
          if Bdd.is_false d then bit (i + 1) else Some (name, i, d)
      in
      bit 0
  in
  scan oa

(* turn a satisfying assignment of the miter into per-cycle stimulus *)
let cex_of_assignment ~seq ~nframes ~(inputs : Circuit.port list) env
    assignment out_name out_bit =
  let values = Hashtbl.create 16 in
  List.iter
    (fun (v, b) ->
      if b then begin
        let pname, bit = env.Miter.names.(v) in
        let base, f = if seq then Unroll.split_port pname else (pname, 0) in
        let cur =
          Option.value ~default:0 (Hashtbl.find_opt values (base, f))
        in
        Hashtbl.replace values (base, f) (cur lor (1 lsl bit))
      end)
    assignment;
  let output, cycle =
    if seq then Unroll.split_port out_name else (out_name, 0)
  in
  (* frames beyond the failing cycle cannot influence the verdict —
     truncate so replay doesn't drive phantom cycles *)
  let frames =
    List.init
      (min nframes (cycle + 1))
      (fun f ->
        List.map
          (fun (p : Circuit.port) ->
            ( p.port_name
            , Option.value ~default:0
                (Hashtbl.find_opt values (p.port_name, f)) ))
          inputs)
  in
  { frames; output; bit = out_bit; cycle }

let check ?man ?order ?(k = 8) a b =
  Sc_obs.Obs.span "equiv" @@ fun () ->
  let man = match man with Some m -> m | None -> Bdd.create () in
  let seq = is_sequential a || is_sequential b in
  let a', b' =
    if seq then (Unroll.frames ~k a, Unroll.frames ~k b) else (a, b)
  in
  Miter.check_signatures a' b';
  let env = Miter.env_of ?order man a' in
  let oa = Miter.outputs env a' and ob = Miter.outputs env b' in
  let verdict = first_diff man oa ob in
  Sc_obs.Obs.gauge "bdd.nodes" (Bdd.node_count man);
  match verdict with
  | None -> Equivalent
  | Some (name, bit, diff) ->
    let assignment = Bdd.sat_one man diff in
    let nframes = if seq then k else 1 in
    let inputs = Circuit.inputs (Circuit.flatten a) in
    Not_equivalent
      (cex_of_assignment ~seq ~nframes ~inputs env assignment name bit)

(* Per-cone parallel check: one task per output port, each with its own
   BDD manager.  All managers allocate variables from the same input
   order, so every cone lives in the same variable space; the verdict is
   the first differing port in declaration order, independent of how
   many domains ran the cones. *)
(* Shared core of {!check_cones} and {!certify}: the verdict plus the
   cone count and summed node count.  Obs-quiet — the callers decide
   what telemetry (if any) to emit. *)
let cones_core ?pool ?order ?(k = 8) a b =
  let pool = match pool with Some p -> p | None -> Sc_par.Pool.default () in
  let seq = is_sequential a || is_sequential b in
  let a', b' =
    if seq then (Unroll.frames ~k a, Unroll.frames ~k b) else (a, b)
  in
  Miter.check_signatures a' b';
  let bits = Miter.input_order ?order a' in
  let out_ports =
    List.filter_map
      (fun (p : Circuit.port) ->
        if p.dir = Circuit.Out then Some p.port_name else None)
      (Circuit.flatten a').Circuit.ports
  in
  let tasks =
    List.map
      (fun pname () ->
        let man = Bdd.create () in
        let env = Miter.env_of_order man bits in
        let oa = Miter.cone_outputs env a' [ pname ] in
        let ob = Miter.cone_outputs env b' [ pname ] in
        let diff =
          match first_diff man oa ob with
          | None -> None
          | Some (name, bit, d) -> Some (name, bit, Bdd.sat_one man d, env)
        in
        (diff, Bdd.node_count man))
      out_ports
  in
  let results = Sc_par.Pool.run ~label:"equiv.cone" pool tasks in
  let nodes = List.fold_left (fun acc (_, nc) -> acc + nc) 0 results in
  let verdict =
    match List.find_map fst results with
    | None -> Equivalent
    | Some (name, bit, assignment, env) ->
      let nframes = if seq then k else 1 in
      let inputs = Circuit.inputs (Circuit.flatten a) in
      Not_equivalent
        (cex_of_assignment ~seq ~nframes ~inputs env assignment name bit)
  in
  (verdict, List.length out_ports, nodes)

let check_cones ?pool ?order ?k a b =
  Sc_obs.Obs.span "equiv" @@ fun () ->
  let verdict, cones, nodes = cones_core ?pool ?order ?k a b in
  Sc_obs.Obs.count "equiv.cones" cones;
  Sc_obs.Obs.gauge "bdd.nodes" nodes;
  verdict

type certificate =
  { cert_cones : int
  ; cert_nodes : int
  }

let certify ?pool ?order ?k a b =
  match cones_core ?pool ?order ?k a b with
  | Equivalent, cones, nodes -> Ok { cert_cones = cones; cert_nodes = nodes }
  | Not_equivalent cex, _, _ -> Error cex

type replay_verdict = Reproduced | Not_reproduced | Indeterminate

let replay_verdict_to_string = function
  | Reproduced -> "reproduced"
  | Not_reproduced -> "not reproduced"
  | Indeterminate -> "indeterminate (X state)"

let replay a b cex =
  let ea = Sc_sim.Engine.create a and eb = Sc_sim.Engine.create b in
  Sc_sim.Engine.force_registers ea Sc_sim.Value.V0;
  Sc_sim.Engine.force_registers eb Sc_sim.Value.V0;
  let rec go cyc = function
    | [] -> Not_reproduced
    | frame :: rest ->
      List.iter
        (fun (p, v) ->
          Sc_sim.Engine.set_input_int ea p v;
          Sc_sim.Engine.set_input_int eb p v)
        frame;
      if cyc = cex.cycle then
        let va = (Sc_sim.Engine.get_output ea cex.output).(cex.bit) in
        let vb = (Sc_sim.Engine.get_output eb cex.output).(cex.bit) in
        match (Sc_sim.Value.to_bool va, Sc_sim.Value.to_bool vb) with
        | Some x, Some y -> if x <> y then Reproduced else Not_reproduced
        | _ -> Indeterminate
      else begin
        Sc_sim.Engine.step ea;
        Sc_sim.Engine.step eb;
        go (cyc + 1) rest
      end
  in
  go 0 cex.frames

let mutate c i =
  let f = Circuit.flatten c in
  let gates = Array.of_list f.Circuit.gates in
  if i < 0 || i >= Array.length gates then
    invalid_arg
      (Printf.sprintf "Checker.mutate: gate %d out of range (%d gates)" i
         (Array.length gates));
  let g = gates.(i) in
  let flip kind = { g with Circuit.kind } in
  let g' =
    match g.Circuit.kind with
    | Gate.And2 -> flip Gate.Or2
    | Gate.Or2 -> flip Gate.And2
    | Gate.Nand2 -> flip Gate.Nor2
    | Gate.Nor2 -> flip Gate.Nand2
    | Gate.Nand3 -> flip Gate.Nor3
    | Gate.Nor3 -> flip Gate.Nand3
    | Gate.Xor2 -> flip Gate.Xnor2
    | Gate.Xnor2 -> flip Gate.Xor2
    | Gate.Inv -> flip Gate.Buf
    | Gate.Buf -> flip Gate.Inv
    | Gate.Mux2 ->
      { g with Circuit.ins = [| g.Circuit.ins.(1); g.Circuit.ins.(0); g.Circuit.ins.(2) |] }
    | Gate.Dff | Gate.Dffe | Gate.Const0 | Gate.Const1 ->
      invalid_arg
        (Printf.sprintf "Checker.mutate: gate %d (%s) is sequential or constant"
           i
           (Gate.to_string g.Circuit.kind))
  in
  gates.(i) <- g';
  Circuit.create
    ~name:(f.Circuit.cname ^ "_mut")
    ~ports:f.Circuit.ports ~gates:(Array.to_list gates) ~insts:[]
    ~net_count:f.Circuit.net_count ~net_names:f.Circuit.net_names

let check_covers (a : Sc_logic.Cover.t) (b : Sc_logic.Cover.t) =
  if
    a.Sc_logic.Cover.ninputs <> b.Sc_logic.Cover.ninputs
    || a.Sc_logic.Cover.noutputs <> b.Sc_logic.Cover.noutputs
  then invalid_arg "Checker.check_covers: arity mismatch";
  let man = Bdd.create () in
  let ba = Miter.bdd_of_cover man a and bb = Miter.bdd_of_cover man b in
  let rec scan o =
    if o >= Array.length ba then None
    else
      let d = Bdd.xor man ba.(o) bb.(o) in
      if Bdd.is_false d then scan (o + 1)
      else begin
        let input = Array.make a.Sc_logic.Cover.ninputs false in
        List.iter (fun (v, bv) -> input.(v) <- bv) (Bdd.sat_one man d);
        Some (input, o)
      end
  in
  scan 0

let check_artwork cell ~inputs ~outputs circuit =
  let n = List.length inputs in
  if n > 12 then
    invalid_arg "Checker.check_artwork: more than 12 inputs to tabulate";
  let net = Sc_extract.Extractor.extract cell in
  let node = Sc_extract.Extractor.node_of net in
  let vdd = node "vdd" and gnd = node "gnd" in
  let man = Bdd.create () in
  let env = Miter.env_of_order man (List.map (fun nm -> (nm, 0)) inputs) in
  let circuit_outs = Miter.outputs env circuit in
  let nouts = List.length outputs in
  let on = Array.make nouts Bdd.zero in
  let undef = Array.make nouts Bdd.zero in
  for v = 0 to (1 lsl n) - 1 do
    let drive =
      List.mapi
        (fun i nm ->
          ( node nm
          , if v land (1 lsl i) <> 0 then Sc_extract.Switch.V1
            else Sc_extract.Switch.V0 ))
        inputs
    in
    let values = Sc_extract.Switch.simulate net ~vdd ~gnd ~inputs:drive in
    let minterm = ref Bdd.one in
    for i = 0 to n - 1 do
      let lit = Bdd.var man i in
      let lit = if v land (1 lsl i) <> 0 then lit else Bdd.not_ man lit in
      minterm := Bdd.and_ man !minterm lit
    done;
    List.iteri
      (fun oi oname ->
        match values.(node oname) with
        | Sc_extract.Switch.V1 -> on.(oi) <- Bdd.or_ man on.(oi) !minterm
        | Sc_extract.Switch.V0 -> ()
        | Sc_extract.Switch.VX -> undef.(oi) <- Bdd.or_ man undef.(oi) !minterm)
      outputs
  done;
  let circuit_bit oname =
    match List.assoc_opt oname circuit_outs with
    | Some bits when Array.length bits = 1 -> bits.(0)
    | Some _ ->
      invalid_arg ("Checker.check_artwork: output " ^ oname ^ " is not 1 bit")
    | None ->
      invalid_arg ("Checker.check_artwork: circuit lacks output " ^ oname)
  in
  let rec scan oi = function
    | [] -> Equivalent
    | oname :: rest ->
      let diff =
        Bdd.or_ man (Bdd.xor man on.(oi) (circuit_bit oname)) undef.(oi)
      in
      if Bdd.is_false diff then scan (oi + 1) rest
      else begin
        let assign = Hashtbl.create 8 in
        List.iter (fun (v, bv) -> Hashtbl.replace assign v bv) (Bdd.sat_one man diff);
        let frame =
          List.mapi
            (fun i nm ->
              (nm, if Option.value ~default:false (Hashtbl.find_opt assign i) then 1 else 0))
            inputs
        in
        Not_equivalent { frames = [ frame ]; output = oname; bit = 0; cycle = 0 }
      end
  in
  scan 0 outputs
