open Sc_netlist

exception Mismatch of string

type order = Declaration | Fanin_dfs

type env =
  { man : Bdd.man
  ; var_of : (string * int, int) Hashtbl.t
  ; names : (string * int) array
  }

let declaration_order c =
  List.concat_map
    (fun (p : Circuit.port) ->
      List.init (Array.length p.bits) (fun i -> (p.port_name, i)))
    (Circuit.inputs c)

let fanin_dfs_order c =
  let f = Circuit.flatten c in
  let driver = Hashtbl.create 256 in
  List.iter (fun (g : Circuit.gate_inst) -> Hashtbl.replace driver g.out g) f.Circuit.gates;
  (* net -> (port, bit) for input bits *)
  let input_bit = Hashtbl.create 64 in
  List.iter
    (fun (p : Circuit.port) ->
      if p.dir = Circuit.In then
        Array.iteri
          (fun i n ->
            if not (Hashtbl.mem input_bit n) then
              Hashtbl.add input_bit n (p.port_name, i))
          p.bits)
    f.Circuit.ports;
  let visited = Array.make f.Circuit.net_count false in
  let acc = ref [] in
  let rec visit n =
    if not visited.(n) then begin
      visited.(n) <- true;
      (match Hashtbl.find_opt input_bit n with
      | Some pb -> acc := pb :: !acc
      | None -> ());
      match Hashtbl.find_opt driver n with
      | Some g -> Array.iter visit g.Circuit.ins
      | None -> ()
    end
  in
  List.iter
    (fun (p : Circuit.port) ->
      if p.dir = Circuit.Out then Array.iter visit p.bits)
    f.Circuit.ports;
  let seen = List.rev !acc in
  (* inputs never reached from an output keep their declaration slot *)
  let missing =
    List.filter (fun pb -> not (List.mem pb seen)) (declaration_order c)
  in
  seen @ missing

let input_order ?(order = Fanin_dfs) c =
  match order with
  | Declaration -> declaration_order c
  | Fanin_dfs -> fanin_dfs_order c

let env_of_order man bits =
  let var_of = Hashtbl.create 64 in
  List.iteri (fun i pb -> Hashtbl.replace var_of pb i) bits;
  { man; var_of; names = Array.of_list bits }

let env_of ?order man c = env_of_order man (input_order ?order c)

(* [restrict = Some names] evaluates only the fan-in cone of the named
   output ports — the work unit for per-cone parallel checking *)
let outputs_gen env c restrict =
  let f, topo = Circuit.comb_topo c in
  if List.exists (fun (g : Circuit.gate_inst) -> Gate.is_sequential g.kind) f.Circuit.gates
  then
    invalid_arg
      ("Miter.outputs: " ^ f.Circuit.cname
     ^ " has flip-flops; unroll it first (Unroll.frames)");
  let selected =
    List.filter
      (fun (p : Circuit.port) ->
        p.dir = Circuit.Out
        &&
        match restrict with
        | None -> true
        | Some names -> List.mem p.port_name names)
      f.Circuit.ports
  in
  let keep =
    match restrict with
    | None -> fun _ -> true
    | Some _ ->
      let driver = Hashtbl.create 256 in
      List.iter
        (fun (g : Circuit.gate_inst) -> Hashtbl.replace driver g.out g)
        f.Circuit.gates;
      let needed = Array.make f.Circuit.net_count false in
      let rec need n =
        if not needed.(n) then begin
          needed.(n) <- true;
          match Hashtbl.find_opt driver n with
          | Some g -> Array.iter need g.Circuit.ins
          | None -> ()
        end
      in
      List.iter
        (fun (p : Circuit.port) -> Array.iter need p.bits)
        selected;
      fun n -> needed.(n)
  in
  let m = env.man in
  let vals = Array.make f.Circuit.net_count Bdd.zero in
  vals.(Circuit.true_net) <- Bdd.one;
  List.iter
    (fun (p : Circuit.port) ->
      if p.dir = Circuit.In then
        Array.iteri
          (fun i n ->
            match Hashtbl.find_opt env.var_of (p.port_name, i) with
            | Some v -> vals.(n) <- Bdd.var m v
            | None ->
              raise
                (Mismatch
                   (Printf.sprintf "input %s[%d] of %s has no variable"
                      p.port_name i f.Circuit.cname)))
          p.bits)
    f.Circuit.ports;
  List.iter
    (fun (g : Circuit.gate_inst) ->
      if keep g.out then begin
        let i k = vals.(g.ins.(k)) in
        let v =
          match g.kind with
          | Gate.Inv -> Bdd.not_ m (i 0)
          | Gate.Buf -> i 0
          | Gate.Nand2 -> Bdd.not_ m (Bdd.and_ m (i 0) (i 1))
          | Gate.Nand3 -> Bdd.not_ m (Bdd.and_ m (i 0) (Bdd.and_ m (i 1) (i 2)))
          | Gate.Nor2 -> Bdd.not_ m (Bdd.or_ m (i 0) (i 1))
          | Gate.Nor3 -> Bdd.not_ m (Bdd.or_ m (i 0) (Bdd.or_ m (i 1) (i 2)))
          | Gate.And2 -> Bdd.and_ m (i 0) (i 1)
          | Gate.Or2 -> Bdd.or_ m (i 0) (i 1)
          | Gate.Xor2 -> Bdd.xor m (i 0) (i 1)
          | Gate.Xnor2 -> Bdd.xnor m (i 0) (i 1)
          | Gate.Mux2 -> Bdd.ite m (i 2) (i 1) (i 0)
          | Gate.Const0 -> Bdd.zero
          | Gate.Const1 -> Bdd.one
          | Gate.Dff | Gate.Dffe -> assert false
        in
        vals.(g.out) <- v
      end)
    topo;
  List.map
    (fun (p : Circuit.port) ->
      (p.Circuit.port_name, Array.map (fun n -> vals.(n)) p.Circuit.bits))
    selected

let outputs env c = outputs_gen env c None
let cone_outputs env c names = outputs_gen env c (Some names)

let signature dir c =
  List.sort compare
    (List.filter_map
       (fun (p : Circuit.port) ->
         if p.dir = dir then Some (p.port_name, Array.length p.bits) else None)
       (Circuit.flatten c).Circuit.ports)

let check_signatures a b =
  let complain what (sa : (string * int) list) sb =
    if sa <> sb then
      raise
        (Mismatch
           (Format.asprintf "%s ports differ: %s has {%s}, %s has {%s}" what
              (Circuit.flatten a).Circuit.cname
              (String.concat ", "
                 (List.map (fun (n, w) -> Printf.sprintf "%s[%d]" n w) sa))
              (Circuit.flatten b).Circuit.cname
              (String.concat ", "
                 (List.map (fun (n, w) -> Printf.sprintf "%s[%d]" n w) sb))))
  in
  complain "input" (signature Circuit.In a) (signature Circuit.In b);
  complain "output" (signature Circuit.Out a) (signature Circuit.Out b)

let miter env a b =
  check_signatures a b;
  let m = env.man in
  let oa = outputs env a and ob = outputs env b in
  List.fold_left
    (fun acc (name, bits_a) ->
      let bits_b = List.assoc name ob in
      let diff = ref acc in
      Array.iteri
        (fun i ba -> diff := Bdd.or_ m !diff (Bdd.xor m ba bits_b.(i)))
        bits_a;
      !diff)
    Bdd.zero oa

let bdd_of_cover man (cover : Sc_logic.Cover.t) =
  let out = Array.make cover.Sc_logic.Cover.noutputs Bdd.zero in
  List.iter
    (fun (cube : Sc_logic.Cube.t) ->
      let prod = ref Bdd.one in
      Array.iteri
        (fun i lit ->
          match lit with
          | Sc_logic.Cube.Zero ->
            prod := Bdd.and_ man !prod (Bdd.not_ man (Bdd.var man i))
          | Sc_logic.Cube.One -> prod := Bdd.and_ man !prod (Bdd.var man i)
          | Sc_logic.Cube.Dash -> ())
        cube.Sc_logic.Cube.lits;
      for o = 0 to cover.Sc_logic.Cover.noutputs - 1 do
        if cube.Sc_logic.Cube.outputs land (1 lsl o) <> 0 then
          out.(o) <- Bdd.or_ man out.(o) !prod
      done)
    cover.Sc_logic.Cover.cubes;
  out
