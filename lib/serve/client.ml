module P = Protocol

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s (is the daemon running?)"
         path (Unix.error_message e))

let rpc fd req =
  match P.write_frame fd (P.string_of_request req) with
  | () -> (
    match P.read_frame fd with
    | Ok (Some payload) -> P.response_of_string payload
    | Ok None -> Error "daemon closed the connection"
    | Error e -> Error e)
  | exception Unix.Unix_error (e, _, _) ->
    Error ("send: " ^ Unix.error_message e)

let close fd = try Unix.close fd with _ -> ()

let with_connection path f =
  match connect path with
  | Error _ as e -> e
  | Ok fd -> Fun.protect ~finally:(fun () -> close fd) (fun () -> f fd)

let one_shot path req = with_connection path (fun fd -> rpc fd req)
