(** The compile daemon's wire protocol: length-prefixed frames carrying
    JSON payloads.

    [scc serve] and [scc client] speak the simplest protocol that can
    multiplex the compiler (the CVC lesson: a fast compiler wants a
    {e simple} server around it, not the reverse).  A {e frame} is a
    4-byte big-endian payload length followed by that many payload
    bytes; the payload is one JSON value printed by {!Sc_obs.Json}.
    Requests and responses are tagged objects ([{"t": "compile", ...}]);
    unknown tags, malformed JSON, truncated frames and oversized lengths
    are all {e rejected as values} — a bad client gets an [Error_reply],
    never a daemon crash.

    Requests carry the design {e source text} inline (the client
    resolves builtin names and file paths before sending), so the
    daemon's dedup key — style, restarts and the source digest — is a
    pure function of the frame and two clients editing the same file
    share one in-flight execution. *)

(** {2 Framing} *)

val max_frame : int
(** Upper bound on a payload length (64 MiB); longer prefixes are
    rejected without allocating. *)

val encode_frame : string -> string
(** The 4-byte length prefix plus the payload, as one string. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, looping over partial writes.  Raises [Unix_error]
    if the peer is gone. *)

val read_frame : Unix.file_descr -> (string option, string) result
(** Read one frame.  [Ok None] is a clean end-of-stream (the peer
    closed between frames); [Error _] is a truncated frame, a negative
    or oversized length, or an I/O failure. *)

(** {2 Requests} *)

(** What to compile: the display name (snapshot [design] field), the
    full source text, the frontend/control style (["gates"] or ["pla"]
    for ISP source, ["verilog"] for Verilog source), the placement
    restart count, and whether every netlist-to-netlist pass must emit
    a translation certificate
    ({!Sc_pipeline.Pipeline.enable_certify}).  [certify] may be absent
    on the wire (pre-certify clients): it decodes as [false]. *)
type compile_spec =
  { design : string
  ; source : string
  ; style : string
  ; restarts : int
  ; certify : bool
  }

type request =
  | Compile of compile_spec  (** compile; answer with the snapshot *)
  | Report of compile_spec  (** compile; answer with the human table *)
  | Diff of { spec : compile_spec; baseline : Sc_obs.Json.t }
      (** compile; diff the snapshot against [baseline] (a snapshot the
          client read from disk) *)
  | Equiv of { a : string; b : string; k : int }
      (** prove two circuits equivalent; specs are [hand:NAME] or
          [isp:NAME] *)
  | Stats  (** server counters: requests, in-flight, dedup hits, ... *)
  | Shutdown  (** stop accepting and exit cleanly *)

(** {2 Responses} *)

(** A successful compilation, measured. *)
type compiled =
  { snapshot : Sc_obs.Json.t  (** {!Sc_metrics.Metrics.to_json} *)
  ; cif_bytes : int
  ; gates : int
  ; flipflops : int
  ; transistors : int
  ; area : int
  ; drc_violations : int
  ; passes : (string * string) list
      (** per-pass outcome, e.g. [("place", "hit (memory)")] *)
  }

(** The [Stats] answer.  [counters] carries the server and cache
    counters plus the per-verb latency distribution
    (["latency.<verb>.count"/".p50_us"/".p95_us"/".p99_us"]).
    [uptime_s], [server_version] (wire field ["version"]) and [verbs]
    (requests decoded per verb) were added by the telemetry protocol
    bump: they are omitted from the wire when absent and decode as
    [None]/[[]] when a pre-telemetry daemon answers — the same
    compatibility discipline as {!compile_spec.certify}. *)
type stats_payload =
  { counters : (string * int) list
  ; uptime_s : int option
  ; server_version : string option
  ; verbs : (string * int) list
  }

type response =
  | Compiled of compiled
  | Reported of string  (** rendered {!Sc_metrics.Metrics.pp_snapshot} *)
  | Diffed of { report : string; regressed : bool }
  | Equiv_verdict of { equivalent : bool; detail : string }
  | Stats_reply of stats_payload
  | Bye  (** acknowledges [Shutdown] *)
  | Error_reply of { stage : string; message : string }
      (** a {!Sc_pipeline.Diag.t} (or protocol error) as a value *)

(** {2 Codecs}

    Total and inverse: every value round-trips, every decode failure is
    an [Error] with a message. *)

val json_of_request : request -> Sc_obs.Json.t
val request_of_json : Sc_obs.Json.t -> (request, string) result
val string_of_request : request -> string
val request_of_string : string -> (request, string) result

val json_of_response : response -> Sc_obs.Json.t
val response_of_json : Sc_obs.Json.t -> (response, string) result
val string_of_response : response -> string
val response_of_string : string -> (response, string) result
