module P = Protocol
module Json = Sc_obs.Json
module Obs = Sc_obs.Obs
module Pipeline = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag
module Metrics = Sc_metrics.Metrics

type stats =
  { requests : int
  ; in_flight : int
  ; dedup_hits : int
  ; executions : int
  }

(* the shared result of one deduplicated execution *)
type compiled =
  { snapshot : Metrics.snapshot
  ; cif_bytes : int
  ; gates : int
  ; flipflops : int
  ; transistors : int
  ; area : int
  ; drc_violations : int
  ; passes : (string * string) list
  }

type outcome = O_ok of compiled | O_diag of Diag.t

type pending = { mutable result : outcome option }

type state =
  { lock : Mutex.t  (* counters, inflight table, conns, stop flag *)
  ; done_cond : Condition.t  (* signalled when an execution lands *)
  ; inflight : (string, pending) Hashtbl.t
  ; mutable requests : int
  ; mutable active : int
  ; mutable dedup_hits : int
  ; mutable executions : int
  ; mutable stop : bool
  ; mutable conns : Unix.file_descr list
  ; mutable threads : Thread.t list
  ; obs_lock : Mutex.t  (* serializes recorder-instrumented executions *)
  ; listen_fd : Unix.file_descr
  ; stop_w : Unix.file_descr  (* self-pipe: wake the accept loop *)
  }

let locked st f = Mutex.protect st.lock f

(* --- the execution path --- *)

(* The Obs recorder is process-global, so executions take [obs_lock]:
   reset, enable, run the pipeline, capture — exactly the single-shot
   [scc isp D --metrics] sequence, which is what keeps a daemon
   snapshot byte-identical to the committed baselines.  Concurrency
   lives everywhere else: socket I/O, dedup waiters, and the cache hits
   that make warm executions cheap enough for the lock not to matter. *)
let do_compile st (spec : P.compile_spec) =
  match spec.style with
  | "gates" | "pla" | "verilog" ->
    Mutex.protect st.obs_lock (fun () ->
        locked st (fun () -> st.executions <- st.executions + 1);
        Obs.reset ();
        Obs.enable ();
        Pipeline.reset_log ();
        (* certification is process-global like the recorder; flipping
           it per request is safe because executions serialize here *)
        if spec.certify then Pipeline.enable_certify ();
        let res =
          Fun.protect
            ~finally:(fun () ->
              if spec.certify then Pipeline.disable_certify ())
            (fun () ->
              match spec.style with
              | "verilog" ->
                Sc_core.Compiler.compile_verilog ~restarts:spec.restarts
                  spec.source
              | "pla" ->
                Sc_core.Compiler.compile_behavior
                  ~style:Sc_core.Compiler.Pla_control ~restarts:spec.restarts
                  spec.source
              | _ ->
                Sc_core.Compiler.compile_behavior
                  ~style:Sc_core.Compiler.Random_logic ~restarts:spec.restarts
                  spec.source)
        in
        let passes =
          List.map
            (fun (name, s) -> (name, Pipeline.status_to_string s))
            (Pipeline.log ())
        in
        match res with
        | Ok (c, circuit) ->
          let snapshot = Metrics.capture ~design:spec.design () in
          Obs.disable ();
          let s = Sc_netlist.Circuit.stats circuit in
          O_ok
            { snapshot
            ; cif_bytes = String.length c.Sc_core.Compiler.cif
            ; gates = s.Sc_netlist.Circuit.gate_total
            ; flipflops = s.Sc_netlist.Circuit.flipflops
            ; transistors = c.Sc_core.Compiler.transistors
            ; area = c.Sc_core.Compiler.area
            ; drc_violations = c.Sc_core.Compiler.drc_violations
            ; passes
            }
        | Error d ->
          Obs.disable ();
          O_diag d)
  | other ->
    O_diag
      (Diag.v ~stage:"serve"
         (Printf.sprintf
            "unknown style %S (expected \"gates\", \"pla\" or \"verilog\")"
            other))

let compile_key (spec : P.compile_spec) =
  Sc_cache.Cache.digest
    (spec.style ^ "|" ^ string_of_int spec.restarts ^ "|"
    ^ (if spec.certify then "certify" else "")
    ^ "\x00" ^ spec.source)

(* run [compute] once per in-flight key: the first requester executes,
   concurrent identical requests wait and share the outcome *)
let deduplicated st key compute =
  let claim =
    locked st (fun () ->
        match Hashtbl.find_opt st.inflight key with
        | Some p ->
          st.dedup_hits <- st.dedup_hits + 1;
          `Join p
        | None ->
          let p = { result = None } in
          Hashtbl.replace st.inflight key p;
          `Execute p)
  in
  match claim with
  | `Join p ->
    Mutex.lock st.lock;
    let rec wait () =
      match p.result with
      | Some r -> r
      | None ->
        Condition.wait st.done_cond st.lock;
        wait ()
    in
    let r = wait () in
    Mutex.unlock st.lock;
    r
  | `Execute p ->
    let r =
      try compute ()
      with e -> O_diag (Diag.of_exn ~stage:"serve" e)
    in
    locked st (fun () ->
        p.result <- Some r;
        Hashtbl.remove st.inflight key;
        Condition.broadcast st.done_cond);
    r

let compile st spec = deduplicated st (compile_key spec) (fun () -> do_compile st spec)

(* --- equiv --- *)

let resolve_circuit spec =
  match String.index_opt spec ':' with
  | Some i -> (
    let kind = String.sub spec 0 i in
    let name = String.sub spec (i + 1) (String.length spec - i - 1) in
    match kind with
    | "hand" -> (
      match name with
      | "counter" -> Ok (Sc_core.Designs.hand_counter ())
      | "traffic" -> Ok (Sc_core.Designs.hand_traffic ())
      | "alu" | "alu4" -> Ok (Sc_core.Designs.hand_alu ())
      | "pdp8" -> Ok (Sc_core.Designs.hand_pdp8 ())
      | "pdp8_dp" -> Ok (Sc_core.Designs.hand_pdp8_dp ())
      | n -> Error ("unknown hand design " ^ n))
    | "isp" -> (
      match Sc_core.Designs.builtin name with
      | Some src -> (
        match Sc_synth.Synth.gates (Sc_core.Designs.parse src) with
        | r -> Ok r.Sc_synth.Synth.circuit
        | exception Diag.Error d -> Error (Diag.to_string d))
      | None -> Error ("unknown builtin design " ^ name))
    | k -> Error ("unknown circuit kind " ^ k ^ " (expected hand: or isp:)"))
  | None -> Error (spec ^ ": expected hand:NAME or isp:NAME")

let do_equiv st ~a ~b ~k =
  match (resolve_circuit a, resolve_circuit b) with
  | Error e, _ | _, Error e -> P.Error_reply { stage = "equiv"; message = e }
  | Ok ca, Ok cb -> (
    (* the BDD engine runs on the shared pool; serialize with compiles *)
    match
      Mutex.protect st.obs_lock (fun () ->
          Sc_equiv.Checker.check_cones ~k ca cb)
    with
    | Sc_equiv.Checker.Equivalent ->
      P.Equiv_verdict { equivalent = true; detail = "equivalent" }
    | Sc_equiv.Checker.Not_equivalent _ as v ->
      P.Equiv_verdict
        { equivalent = false
        ; detail = Format.asprintf "%a" Sc_equiv.Checker.pp_verdict v
        }
    | exception Invalid_argument e ->
      P.Error_reply { stage = "equiv"; message = e }
    | exception Sc_equiv.Miter.Mismatch e ->
      P.Error_reply { stage = "equiv"; message = "port mismatch: " ^ e })

(* --- request dispatch --- *)

let compiled_response (o : outcome) mk =
  match o with
  | O_diag d ->
    P.Error_reply { stage = d.Diag.stage; message = d.Diag.message }
  | O_ok r -> mk r

let server_stats st =
  locked st (fun () ->
      { requests = st.requests
      ; in_flight = st.active
      ; dedup_hits = st.dedup_hits
      ; executions = st.executions
      })

let stats_reply st =
  let s = server_stats st in
  let cache =
    List.fold_left
      (fun (h, dh, m, st', ev) (_, (c : Sc_cache.Cache.stats)) ->
        ( h + c.Sc_cache.Cache.hits
        , dh + c.Sc_cache.Cache.disk_hits
        , m + c.Sc_cache.Cache.misses
        , st' + c.Sc_cache.Cache.stale
        , ev + c.Sc_cache.Cache.evictions ))
      (0, 0, 0, 0, 0)
      (Pipeline.cache_stats ())
  in
  let h, dh, m, stale, ev = cache in
  P.Stats_reply
    [ ("serve.requests", s.requests)
    ; ("serve.in_flight", s.in_flight)
    ; ("serve.dedup_hits", s.dedup_hits)
    ; ("serve.executions", s.executions)
    ; ("cache.hits", h)
    ; ("cache.disk_hits", dh)
    ; ("cache.misses", m)
    ; ("cache.stale", stale)
    ; ("cache.evictions", ev)
    ]

let handle st (req : P.request) : P.response =
  match req with
  | P.Compile spec ->
    compiled_response (compile st spec) (fun r ->
        P.Compiled
          { snapshot = Metrics.to_json r.snapshot
          ; cif_bytes = r.cif_bytes
          ; gates = r.gates
          ; flipflops = r.flipflops
          ; transistors = r.transistors
          ; area = r.area
          ; drc_violations = r.drc_violations
          ; passes = r.passes
          })
  | P.Report spec ->
    compiled_response (compile st spec) (fun r ->
        P.Reported (Format.asprintf "%a" Metrics.pp_snapshot r.snapshot))
  | P.Diff { spec; baseline } -> (
    match Metrics.of_json baseline with
    | Error e -> P.Error_reply { stage = "diff"; message = "baseline: " ^ e }
    | Ok base ->
      compiled_response (compile st spec) (fun r ->
          let report = Metrics.diff base r.snapshot in
          P.Diffed
            { report = Format.asprintf "%a" Metrics.pp_report report
            ; regressed = Metrics.gate report
            }))
  | P.Equiv { a; b; k } -> do_equiv st ~a ~b ~k
  | P.Stats -> stats_reply st
  | P.Shutdown -> P.Bye

let safe_handle st req =
  try handle st req
  with e ->
    let d = Diag.of_exn ~stage:"serve" e in
    P.Error_reply { stage = d.Diag.stage; message = d.Diag.message }

(* --- connections --- *)

let request_stop st =
  let first =
    locked st (fun () ->
        if st.stop then false
        else begin
          st.stop <- true;
          true
        end)
  in
  if first then
    (* one byte on the self-pipe wakes the accept loop's select *)
    try ignore (Unix.write st.stop_w (Bytes.make 1 'x') 0 1) with _ -> ()

let serve_connection st fd =
  let rec loop () =
    match P.read_frame fd with
    | Ok None -> ()
    | Error e ->
      (* protocol violation: answer once, then drop the connection *)
      (try
         P.write_frame fd
           (P.string_of_response
              (P.Error_reply { stage = "protocol"; message = e }))
       with _ -> ())
    | Ok (Some payload) ->
      locked st (fun () ->
          st.requests <- st.requests + 1;
          st.active <- st.active + 1);
      let resp, shutdown =
        match P.request_of_string payload with
        | Error e ->
          (P.Error_reply { stage = "protocol"; message = e }, false)
        | Ok P.Shutdown -> (P.Bye, true)
        | Ok req -> (safe_handle st req, false)
      in
      locked st (fun () -> st.active <- st.active - 1);
      let sent =
        try
          P.write_frame fd (P.string_of_response resp);
          true
        with _ -> false
      in
      if shutdown then request_stop st
      else if sent then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      locked st (fun () ->
          st.conns <- List.filter (fun c -> c != fd) st.conns);
      (* journals are per-thread now; don't let dead threads pile up *)
      Pipeline.drop_log ();
      try Unix.close fd with _ -> ())
    loop

(* --- the daemon --- *)

let run ?(jobs = 1) ?stage_cache ?(handle_signals = true) ~socket () =
  Sc_par.Pool.set_default_size jobs;
  (match stage_cache with
  | Some dir -> Pipeline.enable_cache ~dir ()
  | None -> Pipeline.enable_cache ());
  if Sys.file_exists socket then (try Unix.unlink socket with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let stop_r, stop_w = Unix.pipe () in
  let st =
    { lock = Mutex.create ()
    ; done_cond = Condition.create ()
    ; inflight = Hashtbl.create 16
    ; requests = 0
    ; active = 0
    ; dedup_hits = 0
    ; executions = 0
    ; stop = false
    ; conns = []
    ; threads = []
    ; obs_lock = Mutex.create ()
    ; listen_fd
    ; stop_w
    }
  in
  if handle_signals then begin
    let stop_on _ = request_stop st in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on)
     with Invalid_argument _ -> ());
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ -> ()
  end;
  Printf.eprintf "scc serve: listening on %s (%s, jobs %d)\n%!" socket
    (match stage_cache with
    | Some dir -> "stage cache " ^ dir
    | None -> "stage cache in memory")
    jobs;
  let rec accept_loop () =
    if not (locked st (fun () -> st.stop)) then begin
      match Unix.select [ listen_fd; stop_r ] [] [] (-1.0) with
      | ready, _, _ ->
        if List.memq stop_r ready then () (* stop byte: fall through *)
        else begin
          (match Unix.accept listen_fd with
          | fd, _ ->
            locked st (fun () -> st.conns <- fd :: st.conns);
            let t = Thread.create (fun () -> serve_connection st fd) () in
            locked st (fun () -> st.threads <- t :: st.threads)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
            ());
          accept_loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  accept_loop ();
  (* wake any connection blocked between frames, then drain *)
  let conns = locked st (fun () -> st.conns) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    conns;
  List.iter Thread.join (locked st (fun () -> st.threads));
  (try Unix.close listen_fd with _ -> ());
  (try Unix.close stop_r with _ -> ());
  (try Unix.close stop_w with _ -> ());
  (try Unix.unlink socket with _ -> ());
  let s = server_stats st in
  Printf.eprintf
    "scc serve: shutdown after %d requests (%d executions, %d dedup hits)\n%!"
    s.requests s.executions s.dedup_hits;
  0
