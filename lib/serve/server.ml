module P = Protocol
module Json = Sc_obs.Json
module Obs = Sc_obs.Obs
module Histogram = Sc_obs.Histogram
module Slog = Sc_obs.Slog
module Pipeline = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag
module Metrics = Sc_metrics.Metrics

(* bumped when the stats payload grows; clients render it verbatim *)
let server_version = "serve/2"

type stats =
  { requests : int
  ; in_flight : int
  ; dedup_hits : int
  ; executions : int
  ; peak_executions : int
  }

(* the shared result of one deduplicated execution *)
type compiled =
  { snapshot : Metrics.snapshot
  ; cif_bytes : int
  ; gates : int
  ; flipflops : int
  ; transistors : int
  ; area : int
  ; drc_violations : int
  ; passes : (string * string) list
  }

type outcome = O_ok of compiled | O_diag of Diag.t

type pending = { mutable result : outcome option }

type state =
  { lock : Mutex.t  (* counters, inflight table, conns, stop flag *)
  ; done_cond : Condition.t  (* signalled when an execution lands *)
  ; inflight : (string, pending) Hashtbl.t
  ; mutable requests : int
  ; mutable active : int
  ; mutable dedup_hits : int
  ; mutable executions : int
  ; exec_cond : Condition.t  (* signalled when an execution slot frees *)
  ; exec_slots : int  (* max concurrent execution domains *)
  ; mutable exec_active : int
  ; mutable peak_executions : int  (* high-water mark of [exec_active] *)
  ; verb_counts : (string, int) Hashtbl.t  (* completed requests per verb *)
  ; latency : (string, Histogram.t) Hashtbl.t  (* per-verb, microseconds *)
  ; started : float
  ; slog : Slog.t option
  ; trace_dir : string option
  ; trace_sample : int * int  (* trace the first N of every M executions *)
  ; mutable trace_seq : int  (* executed-compile sequence number *)
  ; mutable conn_seq : int
  ; mutable stop : bool
  ; mutable conns : Unix.file_descr list
  ; mutable threads : Thread.t list
  ; listen_fd : Unix.file_descr
  ; stop_w : Unix.file_descr  (* self-pipe: wake the accept loop *)
  }

let locked st f = Mutex.protect st.lock f

let slog st lvl ~event fields =
  match st.slog with None -> () | Some l -> Slog.log l lvl ~event fields

let jnum i = Json.Num (float_of_int i)

(* --- the execution path --- *)

(* Every pipeline execution runs on a freshly spawned domain with a
   per-request [Obs.Recorder.t] installed as the ambient one, so
   instrumented compiles record concurrently into disjoint recorders —
   no shared observability state, no lock.  (The old design serialized
   every execution on an [obs_lock] because the recorder was
   process-global.)  Spawning a domain rather than running on the
   connection's systhread also buys wall-clock overlap: systhreads of
   one domain share the runtime lock, domains do not, and the joining
   connection thread releases the lock while it waits.  A bounded slot
   count keeps a burst of cold compiles from spawning domains without
   limit; [peak_executions] records the high-water mark of concurrently
   running executions, which bench e16 asserts exceeds 1. *)
let run_on_domain st f =
  Mutex.lock st.lock;
  while st.exec_active >= st.exec_slots do
    Condition.wait st.exec_cond st.lock
  done;
  st.exec_active <- st.exec_active + 1;
  if st.exec_active > st.peak_executions then
    st.peak_executions <- st.exec_active;
  Mutex.unlock st.lock;
  Fun.protect
    ~finally:(fun () ->
      locked st (fun () ->
          st.exec_active <- st.exec_active - 1;
          Condition.broadcast st.exec_cond))
    (fun () -> Domain.join (Domain.spawn f))

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

(* N-in-M sampling by execution sequence number: cheap, deterministic,
   and uniform over windows — production traffic yields traces without
   paying the serialization cost on every request *)
let maybe_trace st ~recorder ~design ~key =
  match st.trace_dir with
  | None -> ()
  | Some dir ->
    let n, m = st.trace_sample in
    let seq =
      locked st (fun () ->
          let s = st.trace_seq in
          st.trace_seq <- s + 1;
          s)
    in
    if seq mod m < n then begin
      let file =
        Printf.sprintf "%s/%06d-%s-%s.trace.json" dir seq (sanitize design)
          (String.sub key 0 (min 8 (String.length key)))
      in
      (try Obs.Recorder.write_trace recorder file
       with Sys_error e ->
         slog st Slog.Warn ~event:"trace"
           [ ("file", Json.Str file); ("error", Json.Str e) ])
    end

(* The per-request sequence inside the domain — fresh recorder, enable,
   compile, capture — is exactly the single-shot [scc isp D --metrics]
   sequence, which is what keeps a daemon snapshot byte-identical to
   the committed baselines.  [with_certify] scopes certification to
   this request: a concurrent plain compile never sees a neighbour's
   [--certify]. *)
let do_compile st ~key (spec : P.compile_spec) =
  match spec.style with
  | "gates" | "pla" | "verilog" ->
    run_on_domain st (fun () ->
        locked st (fun () -> st.executions <- st.executions + 1);
        let recorder = Obs.Recorder.create () in
        Obs.Recorder.enable recorder;
        Obs.with_recorder recorder (fun () ->
            Pipeline.with_certify spec.certify (fun () ->
                Pipeline.reset_log ();
                let res =
                  match spec.style with
                  | "verilog" ->
                    Sc_core.Compiler.compile_verilog ~restarts:spec.restarts
                      spec.source
                  | "pla" ->
                    Sc_core.Compiler.compile_behavior
                      ~style:Sc_core.Compiler.Pla_control
                      ~restarts:spec.restarts spec.source
                  | _ ->
                    Sc_core.Compiler.compile_behavior
                      ~style:Sc_core.Compiler.Random_logic
                      ~restarts:spec.restarts spec.source
                in
                let passes =
                  List.map
                    (fun (name, s) -> (name, Pipeline.status_to_string s))
                    (Pipeline.log ())
                in
                (* this domain's id is never reused: drop its journal *)
                Pipeline.drop_log ();
                Obs.Recorder.disable recorder;
                maybe_trace st ~recorder ~design:spec.design ~key;
                match res with
                | Ok (c, circuit) ->
                  let snapshot =
                    Metrics.capture ~recorder ~design:spec.design ()
                  in
                  let s = Sc_netlist.Circuit.stats circuit in
                  O_ok
                    { snapshot
                    ; cif_bytes = String.length c.Sc_core.Compiler.cif
                    ; gates = s.Sc_netlist.Circuit.gate_total
                    ; flipflops = s.Sc_netlist.Circuit.flipflops
                    ; transistors = c.Sc_core.Compiler.transistors
                    ; area = c.Sc_core.Compiler.area
                    ; drc_violations = c.Sc_core.Compiler.drc_violations
                    ; passes
                    }
                | Error d -> O_diag d)))
  | other ->
    O_diag
      (Diag.v ~stage:"serve"
         (Printf.sprintf
            "unknown style %S (expected \"gates\", \"pla\" or \"verilog\")"
            other))

let compile_key (spec : P.compile_spec) =
  Sc_cache.Cache.digest
    (spec.style ^ "|" ^ string_of_int spec.restarts ^ "|"
    ^ (if spec.certify then "certify" else "")
    ^ "\x00" ^ spec.source)

(* run [compute] once per in-flight key: the first requester executes,
   concurrent identical requests wait and share the outcome.  Returns
   whether this requester executed (for the request log). *)
let deduplicated st key compute =
  let claim =
    locked st (fun () ->
        match Hashtbl.find_opt st.inflight key with
        | Some p ->
          st.dedup_hits <- st.dedup_hits + 1;
          `Join p
        | None ->
          let p = { result = None } in
          Hashtbl.replace st.inflight key p;
          `Execute p)
  in
  match claim with
  | `Join p ->
    Mutex.lock st.lock;
    let rec wait () =
      match p.result with
      | Some r -> r
      | None ->
        Condition.wait st.done_cond st.lock;
        wait ()
    in
    let r = wait () in
    Mutex.unlock st.lock;
    (r, false)
  | `Execute p ->
    let r =
      try compute ()
      with e -> O_diag (Diag.of_exn ~stage:"serve" e)
    in
    locked st (fun () ->
        p.result <- Some r;
        Hashtbl.remove st.inflight key;
        Condition.broadcast st.done_cond);
    (r, true)

let compile st spec =
  let key = compile_key spec in
  let outcome, executed =
    deduplicated st key (fun () -> do_compile st ~key spec)
  in
  (outcome, key, executed)

(* --- equiv --- *)

let resolve_circuit spec =
  match String.index_opt spec ':' with
  | Some i -> (
    let kind = String.sub spec 0 i in
    let name = String.sub spec (i + 1) (String.length spec - i - 1) in
    match kind with
    | "hand" -> (
      match name with
      | "counter" -> Ok (Sc_core.Designs.hand_counter ())
      | "traffic" -> Ok (Sc_core.Designs.hand_traffic ())
      | "alu" | "alu4" -> Ok (Sc_core.Designs.hand_alu ())
      | "pdp8" -> Ok (Sc_core.Designs.hand_pdp8 ())
      | "pdp8_dp" -> Ok (Sc_core.Designs.hand_pdp8_dp ())
      | n -> Error ("unknown hand design " ^ n))
    | "isp" -> (
      match Sc_core.Designs.builtin name with
      | Some src -> (
        match Sc_synth.Synth.gates (Sc_core.Designs.parse src) with
        | r -> Ok r.Sc_synth.Synth.circuit
        | exception Diag.Error d -> Error (Diag.to_string d))
      | None -> Error ("unknown builtin design " ^ name))
    | k -> Error ("unknown circuit kind " ^ k ^ " (expected hand: or isp:)"))
  | None -> Error (spec ^ ": expected hand:NAME or isp:NAME")

let do_equiv st ~a ~b ~k =
  match (resolve_circuit a, resolve_circuit b) with
  | Error e, _ | _, Error e -> P.Error_reply { stage = "equiv"; message = e }
  | Ok ca, Ok cb -> (
    (* the BDD engine runs on the shared pool; like compiles it gets
       its own execution domain and overlaps with everything else *)
    match
      run_on_domain st (fun () ->
          match Sc_equiv.Checker.check_cones ~k ca cb with
          | v -> `Verdict v
          | exception Invalid_argument e -> `Invalid e
          | exception Sc_equiv.Miter.Mismatch e -> `Mismatch e)
    with
    | `Verdict Sc_equiv.Checker.Equivalent ->
      P.Equiv_verdict { equivalent = true; detail = "equivalent" }
    | `Verdict (Sc_equiv.Checker.Not_equivalent _ as v) ->
      P.Equiv_verdict
        { equivalent = false
        ; detail = Format.asprintf "%a" Sc_equiv.Checker.pp_verdict v
        }
    | `Invalid e -> P.Error_reply { stage = "equiv"; message = e }
    | `Mismatch e ->
      P.Error_reply { stage = "equiv"; message = "port mismatch: " ^ e })

(* --- request dispatch --- *)

let compiled_response (o : outcome) mk =
  match o with
  | O_diag d ->
    P.Error_reply { stage = d.Diag.stage; message = d.Diag.message }
  | O_ok r -> mk r

let server_stats st =
  locked st (fun () ->
      { requests = st.requests
      ; in_flight = st.active
      ; dedup_hits = st.dedup_hits
      ; executions = st.executions
      ; peak_executions = st.peak_executions
      })

let latency_counters st =
  let hs =
    locked st (fun () ->
        Hashtbl.fold (fun verb h acc -> (verb, h) :: acc) st.latency [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.concat_map
    (fun (verb, h) ->
      let p q = Histogram.percentile h q in
      [ ("latency." ^ verb ^ ".count", Histogram.count h)
      ; ("latency." ^ verb ^ ".p50_us", p 50.0)
      ; ("latency." ^ verb ^ ".p95_us", p 95.0)
      ; ("latency." ^ verb ^ ".p99_us", p 99.0)
      ])
    hs

let stats_reply st =
  let s = server_stats st in
  let cache =
    List.fold_left
      (fun (h, dh, m, st', ev) (_, (c : Sc_cache.Cache.stats)) ->
        ( h + c.Sc_cache.Cache.hits
        , dh + c.Sc_cache.Cache.disk_hits
        , m + c.Sc_cache.Cache.misses
        , st' + c.Sc_cache.Cache.stale
        , ev + c.Sc_cache.Cache.evictions ))
      (0, 0, 0, 0, 0)
      (Pipeline.cache_stats ())
  in
  let h, dh, m, stale, ev = cache in
  let verbs =
    locked st (fun () ->
        Hashtbl.fold (fun verb n acc -> (verb, n) :: acc) st.verb_counts [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  P.Stats_reply
    { counters =
        [ ("serve.requests", s.requests)
        ; ("serve.in_flight", s.in_flight)
        ; ("serve.dedup_hits", s.dedup_hits)
        ; ("serve.executions", s.executions)
        ; ("serve.peak_executions", s.peak_executions)
        ; ("cache.hits", h)
        ; ("cache.disk_hits", dh)
        ; ("cache.misses", m)
        ; ("cache.stale", stale)
        ; ("cache.evictions", ev)
        ]
        @ latency_counters st
    ; uptime_s = Some (int_of_float (Unix.gettimeofday () -. st.started))
    ; server_version = Some server_version
    ; verbs
    }

(* [handle] answers a request and returns the structured-log fields
   describing what happened (digest, dedup/cache/cert outcome, ...) *)
let pass_counts passes =
  List.fold_left
    (fun (hit, ran) (_, status) ->
      if status = "ran" then (hit, ran + 1)
      else if String.length status >= 3 && String.sub status 0 3 = "hit" then
        (hit + 1, ran)
      else (hit, ran))
    (0, 0) passes

let compile_fields (outcome, key, executed) (spec : P.compile_spec) =
  let base =
    [ ("design", Json.Str spec.design)
    ; ("digest", Json.Str (String.sub key 0 (min 12 (String.length key))))
    ; ("certify", Json.Bool spec.certify)
    ; ("dedup", Json.Bool (not executed))
    ]
  in
  match outcome with
  | O_ok r ->
    let hit, ran = pass_counts r.passes in
    base @ [ ("passes_hit", jnum hit); ("passes_ran", jnum ran) ]
  | O_diag _ -> base

let handle st (req : P.request) : P.response * (string * Json.t) list =
  match req with
  | P.Compile spec ->
    let ((outcome, _, _) as c) = compile st spec in
    ( compiled_response outcome (fun r ->
          P.Compiled
            { snapshot = Metrics.to_json r.snapshot
            ; cif_bytes = r.cif_bytes
            ; gates = r.gates
            ; flipflops = r.flipflops
            ; transistors = r.transistors
            ; area = r.area
            ; drc_violations = r.drc_violations
            ; passes = r.passes
            })
    , compile_fields c spec )
  | P.Report spec ->
    let ((outcome, _, _) as c) = compile st spec in
    ( compiled_response outcome (fun r ->
          P.Reported (Format.asprintf "%a" Metrics.pp_snapshot r.snapshot))
    , compile_fields c spec )
  | P.Diff { spec; baseline } -> (
    match Metrics.of_json baseline with
    | Error e ->
      ( P.Error_reply { stage = "diff"; message = "baseline: " ^ e }
      , [ ("design", Json.Str spec.design) ] )
    | Ok base ->
      let ((outcome, _, _) as c) = compile st spec in
      ( compiled_response outcome (fun r ->
            let report = Metrics.diff base r.snapshot in
            P.Diffed
              { report = Format.asprintf "%a" Metrics.pp_report report
              ; regressed = Metrics.gate report
              })
      , compile_fields c spec ))
  | P.Equiv { a; b; k } ->
    ( do_equiv st ~a ~b ~k
    , [ ("a", Json.Str a); ("b", Json.Str b); ("k", jnum k) ] )
  | P.Stats -> (stats_reply st, [])
  | P.Shutdown -> (P.Bye, [])

let safe_handle st req =
  try handle st req
  with e ->
    let d = Diag.of_exn ~stage:"serve" e in
    (P.Error_reply { stage = d.Diag.stage; message = d.Diag.message }, [])

(* --- connections --- *)

let request_stop st =
  let first =
    locked st (fun () ->
        if st.stop then false
        else begin
          st.stop <- true;
          true
        end)
  in
  if first then
    (* one byte on the self-pipe wakes the accept loop's select *)
    try ignore (Unix.write st.stop_w (Bytes.make 1 'x') 0 1) with _ -> ()

let verb_of_request = function
  | P.Compile _ -> "compile"
  | P.Report _ -> "report"
  | P.Diff _ -> "diff"
  | P.Equiv _ -> "equiv"
  | P.Stats -> "stats"
  | P.Shutdown -> "shutdown"

(* completed-request accounting: the verb count and the latency sample
   land together, so a [stats] scrape always sees them agree *)
let account st verb dur_us =
  let h =
    locked st (fun () ->
        let n = try Hashtbl.find st.verb_counts verb with Not_found -> 0 in
        Hashtbl.replace st.verb_counts verb (n + 1);
        match Hashtbl.find_opt st.latency verb with
        | Some h -> h
        | None ->
          let h = Histogram.create () in
          Hashtbl.add st.latency verb h;
          h)
  in
  Histogram.add h dur_us

let log_request st ~conn ~verb ~dur_us ~resp fields =
  match st.slog with
  | None -> ()
  | Some l ->
    let status, level =
      match resp with
      | P.Error_reply { stage; _ } -> ("error:" ^ stage, Slog.Warn)
      | _ -> ("ok", if verb = "stats" then Slog.Debug else Slog.Info)
    in
    if Slog.would_log l level then
      Slog.log l level ~event:"request"
        ([ ("conn", jnum conn)
         ; ("verb", Json.Str verb)
         ; ("status", Json.Str status)
         ; ("dur_us", jnum dur_us)
         ]
        @ fields)

let serve_connection st conn fd =
  slog st Slog.Debug ~event:"connect" [ ("conn", jnum conn) ];
  let rec loop () =
    match P.read_frame fd with
    | Ok None -> ()
    | Error e ->
      (* protocol violation: answer once, then drop the connection *)
      slog st Slog.Warn ~event:"protocol"
        [ ("conn", jnum conn); ("error", Json.Str e) ];
      (try
         P.write_frame fd
           (P.string_of_response
              (P.Error_reply { stage = "protocol"; message = e }))
       with _ -> ())
    | Ok (Some payload) ->
      let t0 = Unix.gettimeofday () in
      locked st (fun () ->
          st.requests <- st.requests + 1;
          st.active <- st.active + 1);
      let verb, (resp, fields), shutdown =
        match P.request_of_string payload with
        | Error e ->
          ( "protocol"
          , (P.Error_reply { stage = "protocol"; message = e }, [])
          , false )
        | Ok P.Shutdown -> ("shutdown", (P.Bye, []), true)
        | Ok req -> (verb_of_request req, safe_handle st req, false)
      in
      locked st (fun () -> st.active <- st.active - 1);
      let dur_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
      account st verb dur_us;
      log_request st ~conn ~verb ~dur_us ~resp fields;
      let sent =
        try
          P.write_frame fd (P.string_of_response resp);
          true
        with _ -> false
      in
      if shutdown then request_stop st
      else if sent then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      locked st (fun () ->
          st.conns <- List.filter (fun c -> c != fd) st.conns);
      slog st Slog.Debug ~event:"disconnect" [ ("conn", jnum conn) ];
      try Unix.close fd with _ -> ())
    loop

(* --- the daemon --- *)

let run ?(jobs = 1) ?stage_cache ?(handle_signals = true) ?exec_domains ?log
    ?(log_level = Slog.Info) ?trace_dir ?(trace_sample = (1, 1)) ~socket () =
  Sc_par.Pool.set_default_size jobs;
  (match stage_cache with
  | Some dir -> Pipeline.enable_cache ~dir ()
  | None -> Pipeline.enable_cache ());
  let exec_slots =
    match exec_domains with
    | Some n -> max 1 n
    | None -> max 2 (Domain.recommended_domain_count ())
  in
  let trace_sample =
    let n, m = trace_sample in
    let m = max 1 m in
    (max 0 (min n m), m)
  in
  (match trace_dir with
  | Some dir when not (Sys.file_exists dir) -> (
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  let slog_t =
    match log with
    | None -> Ok None
    | Some path -> (
      match Slog.create ~level:log_level path with
      | Ok l -> Ok (Some l)
      | Error e -> Error e)
  in
  match slog_t with
  | Error e ->
    Printf.eprintf "scc serve: cannot open log: %s\n%!" e;
    1
  | Ok slog_t ->
    if Sys.file_exists socket then (try Unix.unlink socket with _ -> ());
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind listen_fd (Unix.ADDR_UNIX socket);
    Unix.listen listen_fd 64;
    let stop_r, stop_w = Unix.pipe () in
    let st =
      { lock = Mutex.create ()
      ; done_cond = Condition.create ()
      ; inflight = Hashtbl.create 16
      ; requests = 0
      ; active = 0
      ; dedup_hits = 0
      ; executions = 0
      ; exec_cond = Condition.create ()
      ; exec_slots
      ; exec_active = 0
      ; peak_executions = 0
      ; verb_counts = Hashtbl.create 8
      ; latency = Hashtbl.create 8
      ; started = Unix.gettimeofday ()
      ; slog = slog_t
      ; trace_dir
      ; trace_sample
      ; trace_seq = 0
      ; conn_seq = 0
      ; stop = false
      ; conns = []
      ; threads = []
      ; listen_fd
      ; stop_w
      }
    in
    if handle_signals then begin
      let stop_on _ = request_stop st in
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on)
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on)
       with Invalid_argument _ -> ());
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      with Invalid_argument _ -> ()
    end;
    Printf.eprintf "scc serve: listening on %s (%s, jobs %d, %d exec slots)\n%!"
      socket
      (match stage_cache with
      | Some dir -> "stage cache " ^ dir
      | None -> "stage cache in memory")
      jobs exec_slots;
    slog st Slog.Info ~event:"start"
      ([ ("socket", Json.Str socket)
       ; ("jobs", jnum jobs)
       ; ("exec_slots", jnum exec_slots)
       ; ("version", Json.Str server_version)
       ]
      @ (match stage_cache with
        | Some dir -> [ ("stage_cache", Json.Str dir) ]
        | None -> [])
      @
      match trace_dir with
      | Some dir ->
        let n, m = trace_sample in
        [ ("trace_dir", Json.Str dir)
        ; ("trace_sample", Json.Str (Printf.sprintf "%d/%d" n m))
        ]
      | None -> []);
    let rec accept_loop () =
      if not (locked st (fun () -> st.stop)) then begin
        match Unix.select [ listen_fd; stop_r ] [] [] (-1.0) with
        | ready, _, _ ->
          if List.memq stop_r ready then () (* stop byte: fall through *)
          else begin
            (match Unix.accept listen_fd with
            | fd, _ ->
              let conn =
                locked st (fun () ->
                    st.conns <- fd :: st.conns;
                    st.conn_seq <- st.conn_seq + 1;
                    st.conn_seq)
              in
              let t = Thread.create (fun () -> serve_connection st conn fd) () in
              locked st (fun () -> st.threads <- t :: st.threads)
            | exception
                Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              ());
            accept_loop ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      end
    in
    accept_loop ();
    (* wake any connection blocked between frames, then drain *)
    let conns = locked st (fun () -> st.conns) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter Thread.join (locked st (fun () -> st.threads));
    (try Unix.close listen_fd with _ -> ());
    (try Unix.close stop_r with _ -> ());
    (try Unix.close stop_w with _ -> ());
    (try Unix.unlink socket with _ -> ());
    let s = server_stats st in
    slog st Slog.Info ~event:"stop"
      [ ("requests", jnum s.requests)
      ; ("executions", jnum s.executions)
      ; ("dedup_hits", jnum s.dedup_hits)
      ; ("peak_executions", jnum s.peak_executions)
      ];
    (match st.slog with Some l -> Slog.close l | None -> ());
    Printf.eprintf
      "scc serve: shutdown after %d requests (%d executions, %d dedup hits, \
       peak %d concurrent)\n\
       %!"
      s.requests s.executions s.dedup_hits s.peak_executions;
    0
