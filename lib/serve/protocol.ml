module Json = Sc_obs.Json

(* --- framing --- *)

let max_frame = 1 lsl 26 (* 64 MiB *)

let encode_frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let write_frame fd payload =
  let data = Bytes.of_string (encode_frame payload) in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd data !off (len - !off) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + n
  done

(* read exactly [n] bytes; [`Eof got] when the stream ends first *)
let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  if !off = n then `Bytes b else `Eof !off

let read_frame fd =
  match read_exact fd 4 with
  | `Eof 0 -> Ok None (* clean close between frames *)
  | `Eof _ -> Error "truncated frame header"
  | `Bytes hdr -> (
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then
      Error (Printf.sprintf "oversized frame: %d bytes (max %d)" len max_frame)
    else
      match read_exact fd len with
      | `Bytes b -> Ok (Some (Bytes.to_string b))
      | `Eof got ->
        Error (Printf.sprintf "truncated frame: got %d of %d bytes" got len))
  | exception Unix.Unix_error (e, _, _) ->
    Error ("read: " ^ Unix.error_message e)

(* --- requests --- *)

type compile_spec =
  { design : string
  ; source : string
  ; style : string
  ; restarts : int
  ; certify : bool
  }

type request =
  | Compile of compile_spec
  | Report of compile_spec
  | Diff of { spec : compile_spec; baseline : Json.t }
  | Equiv of { a : string; b : string; k : int }
  | Stats
  | Shutdown

type compiled =
  { snapshot : Json.t
  ; cif_bytes : int
  ; gates : int
  ; flipflops : int
  ; transistors : int
  ; area : int
  ; drc_violations : int
  ; passes : (string * string) list
  }

type stats_payload =
  { counters : (string * int) list
  ; uptime_s : int option  (* absent on pre-telemetry daemons *)
  ; server_version : string option  (* ditto *)
  ; verbs : (string * int) list  (* per-verb request counts; may be empty *)
  }

type response =
  | Compiled of compiled
  | Reported of string
  | Diffed of { report : string; regressed : bool }
  | Equiv_verdict of { equivalent : bool; detail : string }
  | Stats_reply of stats_payload
  | Bye
  | Error_reply of { stage : string; message : string }

(* --- encoding --- *)

let num i = Json.Num (float_of_int i)

let spec_fields s =
  [ ("design", Json.Str s.design)
  ; ("source", Json.Str s.source)
  ; ("style", Json.Str s.style)
  ; ("restarts", num s.restarts)
  ; ("certify", Json.Bool s.certify)
  ]

let json_of_request = function
  | Compile s -> Json.Obj (("t", Json.Str "compile") :: spec_fields s)
  | Report s -> Json.Obj (("t", Json.Str "report") :: spec_fields s)
  | Diff { spec; baseline } ->
    Json.Obj
      ((("t", Json.Str "diff") :: spec_fields spec)
      @ [ ("baseline", baseline) ])
  | Equiv { a; b; k } ->
    Json.Obj
      [ ("t", Json.Str "equiv"); ("a", Json.Str a); ("b", Json.Str b)
      ; ("k", num k)
      ]
  | Stats -> Json.Obj [ ("t", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("t", Json.Str "shutdown") ]

let json_of_response = function
  | Compiled c ->
    Json.Obj
      [ ("t", Json.Str "compiled")
      ; ("snapshot", c.snapshot)
      ; ("cif_bytes", num c.cif_bytes)
      ; ("gates", num c.gates)
      ; ("flipflops", num c.flipflops)
      ; ("transistors", num c.transistors)
      ; ("area", num c.area)
      ; ("drc_violations", num c.drc_violations)
      ; ( "passes"
        , Json.Arr
            (List.map
               (fun (name, st) ->
                 Json.Obj [ ("pass", Json.Str name); ("status", Json.Str st) ])
               c.passes) )
      ]
  | Reported text ->
    Json.Obj [ ("t", Json.Str "reported"); ("text", Json.Str text) ]
  | Diffed { report; regressed } ->
    Json.Obj
      [ ("t", Json.Str "diffed"); ("report", Json.Str report)
      ; ("regressed", Json.Bool regressed)
      ]
  | Equiv_verdict { equivalent; detail } ->
    Json.Obj
      [ ("t", Json.Str "equiv"); ("equivalent", Json.Bool equivalent)
      ; ("detail", Json.Str detail)
      ]
  | Stats_reply { counters; uptime_s; server_version; verbs } ->
    (* optional fields are omitted when absent, and the decoder
       tolerates their absence — same compatibility discipline as the
       [certify] spec field *)
    let ints kvs = Json.Obj (List.map (fun (k, v) -> (k, num v)) kvs) in
    Json.Obj
      ([ ("t", Json.Str "stats"); ("counters", ints counters) ]
      @ (match uptime_s with Some u -> [ ("uptime_s", num u) ] | None -> [])
      @ (match server_version with
        | Some v -> [ ("version", Json.Str v) ]
        | None -> [])
      @ match verbs with [] -> [] | vs -> [ ("verbs", ints vs) ])
  | Bye -> Json.Obj [ ("t", Json.Str "bye") ]
  | Error_reply { stage; message } ->
    Json.Obj
      [ ("t", Json.Str "error"); ("stage", Json.Str stage)
      ; ("message", Json.Str message)
      ]

(* --- decoding --- *)

let ( let* ) = Result.bind

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "missing or non-integer field %S" name)

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "missing or non-boolean field %S" name)

let spec_of_json j =
  let* design = str_field "design" j in
  let* source = str_field "source" j in
  let* style = str_field "style" j in
  let* restarts = int_field "restarts" j in
  (* absent on pre-certify clients: default false, stay compatible *)
  let* certify =
    match Json.member "certify" j with
    | None -> Ok false
    | Some (Json.Bool b) -> Ok b
    | Some _ -> Error "non-boolean field \"certify\""
  in
  Ok { design; source; style; restarts; certify }

let request_of_json j =
  let* tag = str_field "t" j in
  match tag with
  | "compile" ->
    let* s = spec_of_json j in
    Ok (Compile s)
  | "report" ->
    let* s = spec_of_json j in
    Ok (Report s)
  | "diff" ->
    let* spec = spec_of_json j in
    let* baseline =
      match Json.member "baseline" j with
      | Some b -> Ok b
      | None -> Error "missing field \"baseline\""
    in
    Ok (Diff { spec; baseline })
  | "equiv" ->
    let* a = str_field "a" j in
    let* b = str_field "b" j in
    let* k = int_field "k" j in
    Ok (Equiv { a; b; k })
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | t -> Error (Printf.sprintf "unknown request tag %S" t)

let response_of_json j =
  let* tag = str_field "t" j in
  match tag with
  | "compiled" ->
    let* snapshot =
      match Json.member "snapshot" j with
      | Some s -> Ok s
      | None -> Error "missing field \"snapshot\""
    in
    let* cif_bytes = int_field "cif_bytes" j in
    let* gates = int_field "gates" j in
    let* flipflops = int_field "flipflops" j in
    let* transistors = int_field "transistors" j in
    let* area = int_field "area" j in
    let* drc_violations = int_field "drc_violations" j in
    let* passes =
      match Json.member "passes" j with
      | Some (Json.Arr entries) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* name = str_field "pass" e in
            let* st = str_field "status" e in
            Ok ((name, st) :: acc))
          (Ok []) entries
        |> Result.map List.rev
      | _ -> Error "missing or non-array field \"passes\""
    in
    Ok
      (Compiled
         { snapshot; cif_bytes; gates; flipflops; transistors; area
         ; drc_violations; passes
         })
  | "reported" ->
    let* text = str_field "text" j in
    Ok (Reported text)
  | "diffed" ->
    let* report = str_field "report" j in
    let* regressed = bool_field "regressed" j in
    Ok (Diffed { report; regressed })
  | "equiv" ->
    let* equivalent = bool_field "equivalent" j in
    let* detail = str_field "detail" j in
    Ok (Equiv_verdict { equivalent; detail })
  | "stats" ->
    let ints name = function
      | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Json.Num f when Float.is_integer f ->
              Ok ((k, int_of_float f) :: acc)
            | _ -> Error (Printf.sprintf "non-integer %s %S" name k))
          (Ok []) kvs
        |> Result.map List.rev
      | Some _ -> Error (Printf.sprintf "non-object field %S" name)
      | None -> Error (Printf.sprintf "missing field %S" name)
    in
    let* counters = ints "counters" (Json.member "counters" j) in
    (* the three telemetry fields are absent on pre-telemetry daemons:
       decode to None/[] rather than failing *)
    let* uptime_s =
      match Json.member "uptime_s" j with
      | None -> Ok None
      | Some (Json.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
      | Some _ -> Error "non-integer field \"uptime_s\""
    in
    let* server_version =
      match Json.member "version" j with
      | None -> Ok None
      | Some (Json.Str v) -> Ok (Some v)
      | Some _ -> Error "non-string field \"version\""
    in
    let* verbs =
      match Json.member "verbs" j with
      | None -> Ok []
      | present -> ints "verbs" present
    in
    Ok (Stats_reply { counters; uptime_s; server_version; verbs })
  | "bye" -> Ok Bye
  | "error" ->
    let* stage = str_field "stage" j in
    let* message = str_field "message" j in
    Ok (Error_reply { stage; message })
  | t -> Error (Printf.sprintf "unknown response tag %S" t)

let string_of_request r = Json.to_string (json_of_request r)
let string_of_response r = Json.to_string (json_of_response r)

let parse_then decode s =
  match Json.parse s with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok j -> decode j

let request_of_string s = parse_then request_of_json s
let response_of_string s = parse_then response_of_json s
