(** Client side of the compile daemon: connect, frame one request, read
    one response.

    Connections are plain Unix-domain stream sockets; a connection may
    carry any number of request/response pairs ([scc client] uses one
    per invocation, bench e14 keeps one per worker thread).  All
    failures — daemon not running, protocol violations, the daemon's
    own [Error_reply] — come back as values. *)

val connect : string -> (Unix.file_descr, string) result
(** [connect path] — open a connection to the daemon listening on
    [path]. *)

val rpc :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result
(** Send one request, wait for its response. *)

val close : Unix.file_descr -> unit

val with_connection :
  string -> (Unix.file_descr -> ('a, string) result) -> ('a, string) result
(** Connect, run, always close. *)

val one_shot : string -> Protocol.request -> (Protocol.response, string) result
(** [one_shot path req] — a whole session for a single request. *)
