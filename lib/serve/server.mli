(** The compile daemon: many concurrent clients, one warm stage cache.

    [run] binds a Unix domain socket and serves {!Protocol} frames until
    a [Shutdown] request or (by default) SIGTERM/SIGINT.  Each
    connection gets its own lightweight thread; the threads spend their
    lives in socket I/O and hand actual compilations to one shared
    execution path, so the process-global pass manager
    ({!Sc_pipeline.Pipeline}), its content-addressed stage cache
    ({!Sc_cache.Cache}, sharded on disk when [stage_cache] is given) and
    the {!Sc_par.Pool} worker domains are shared by every client — the
    second client to ask for a design pays cache-hit prices for work the
    first one caused.

    {2 Deduplication}

    Requests are keyed on [digest (style | restarts | source)].  While a
    compilation for a key is in flight, further requests for the same
    key do not execute: they wait on the first one and share its result
    (the server's [dedup_hits] counter records each such join).  Two
    clients saving the same file and recompiling cost one pipeline
    execution.

    {2 Observability}

    The process-global {!Sc_obs.Obs} recorder is session-scoped by the
    server: each executed compilation resets and enables it, runs the
    pipeline, and captures an {!Sc_metrics.Metrics} snapshot before the
    next request may use it (executions are serialized on a dedicated
    lock; connection handling and cache-hit waiters stay concurrent).
    Snapshots are therefore exactly what single-shot
    [scc isp D --metrics] produces — byte-identical QoR — which is what
    bench e14 and the serve-smoke CI job assert.  Server-level counters
    (requests, in-flight, dedup hits, executions) live outside the
    recorder and are served by the [Stats] verb. *)

type stats =
  { requests : int  (** frames answered since startup *)
  ; in_flight : int  (** requests currently being handled *)
  ; dedup_hits : int  (** requests that joined an in-flight execution *)
  ; executions : int  (** pipeline runs actually performed *)
  }

val run :
  ?jobs:int ->
  ?stage_cache:string ->
  ?handle_signals:bool ->
  socket:string ->
  unit ->
  int
(** [run ~socket ()] — bind [socket] (an existing file is replaced),
    serve until shutdown, unlink the socket, and return the process
    exit code.  [jobs] sizes the default worker pool (default 1);
    [stage_cache] persists pass artifacts under the given directory so
    a restarted daemon comes back warm; [handle_signals] (default
    [true]) installs SIGTERM/SIGINT handlers for clean shutdown — pass
    [false] when embedding the server in a test or bench thread. *)
