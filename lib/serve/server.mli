(** The compile daemon: many concurrent clients, one warm stage cache.

    [run] binds a Unix domain socket and serves {!Protocol} frames until
    a [Shutdown] request or (by default) SIGTERM/SIGINT.  Each
    connection gets its own lightweight thread for socket I/O; each
    {e execution} (a compile or equiv the dedup table didn't already
    have in flight) runs on its own freshly spawned domain, so the
    process-global pass manager ({!Sc_pipeline.Pipeline}), its
    content-addressed stage cache ({!Sc_cache.Cache}, sharded on disk
    when [stage_cache] is given) and the {!Sc_par.Pool} worker domains
    are shared by every client — the second client to ask for a design
    pays cache-hit prices for work the first one caused.

    {2 Deduplication}

    Requests are keyed on [digest (style | restarts | certify |
    source)].  While a compilation for a key is in flight, further
    requests for the same key do not execute: they wait on the first
    one and share its result (the server's [dedup_hits] counter records
    each such join).  Two clients saving the same file and recompiling
    cost one pipeline execution.

    {2 Observability}

    Every execution gets its own {!Sc_obs.Obs.Recorder.t}, installed as
    the ambient recorder for its domain ({!Sc_obs.Obs.with_recorder}),
    so instrumented compiles overlap — there is no shared recorder
    state and no lock serializing executions (the [obs_lock] of earlier
    versions is gone).  Certification is scoped the same way
    ({!Sc_pipeline.Pipeline.with_certify}): one request's [--certify]
    never leaks into a concurrent compile.  The per-request sequence —
    fresh recorder, compile, {!Sc_metrics.Metrics.capture} — is exactly
    what single-shot [scc isp D --metrics] does, so daemon snapshots
    stay byte-identical QoR to the committed baselines even under
    concurrency, which bench e16 and the serve-smoke CI job assert.
    Executions are throttled by [exec_domains] slots; the high-water
    mark of concurrently running executions is served as
    [serve.peak_executions].

    {2 Telemetry}

    Three sinks, all optional and all off the execution path:

    - {e histograms}: per-verb request latency in log-bucketed
      {!Sc_obs.Histogram}s, served by the [Stats] verb as
      [latency.<verb>.count/.p50_us/.p95_us/.p99_us] alongside
      [uptime_s], the server version and per-verb request counts;
    - {e structured log} ([log]/[log_level]): a leveled JSONL stream,
      one object per line — per request: verb, design, digest, status,
      duration, dedup/cache/certify outcome; plus lifecycle events
      (start/stop at info, connect/disconnect at debug);
    - {e sampled traces} ([trace_dir]/[trace_sample]): the first N of
      every M executions write their recorder's Chrome trace to
      [trace_dir/<seq>-<design>-<digest>.trace.json], so production
      traffic yields traces without paying for every request. *)

type stats =
  { requests : int  (** frames answered since startup *)
  ; in_flight : int  (** requests currently being handled *)
  ; dedup_hits : int  (** requests that joined an in-flight execution *)
  ; executions : int  (** pipeline runs actually performed *)
  ; peak_executions : int
        (** high-water mark of concurrently running executions *)
  }

val server_version : string
(** Identifies the daemon generation in the [Stats] reply. *)

val run :
  ?jobs:int ->
  ?stage_cache:string ->
  ?handle_signals:bool ->
  ?exec_domains:int ->
  ?log:string ->
  ?log_level:Sc_obs.Slog.level ->
  ?trace_dir:string ->
  ?trace_sample:int * int ->
  socket:string ->
  unit ->
  int
(** [run ~socket ()] — bind [socket] (an existing file is replaced),
    serve until shutdown, unlink the socket, and return the process
    exit code.  [jobs] sizes the default worker pool (default 1);
    [stage_cache] persists pass artifacts under the given directory so
    a restarted daemon comes back warm; [handle_signals] (default
    [true]) installs SIGTERM/SIGINT handlers for clean shutdown — pass
    [false] when embedding the server in a test or bench thread.

    [exec_domains] bounds concurrently running executions (default
    [max 2 (Domain.recommended_domain_count ())]).  [log] appends the
    JSONL structured log to a file, filtered at [log_level] (default
    [Info]).  [trace_dir] enables per-execution Chrome traces, sampled
    [trace_sample = (n, m)]: the first [n] of every [m] executions
    (default [(1, 1)] — every execution). *)
