open Sc_geom
open Sc_tech
open Sc_layout

type pin = { x : int; net : int }

type spec =
  { top : pin list
  ; bottom : pin list
  ; width : int
  }

type routed =
  { height : int
  ; tracks : int
  ; layout : Cell.t
  ; trunk_length : int
  }

exception Unroutable of string

let track_pitch = 7

type side = Top | Bottom

(* A routable unit: one trunk interval of one net, with the pin columns it
   must drop branches to.  Without doglegs a net is one segment spanning
   all pins; with doglegs, one segment per consecutive pin pair. *)
type segment =
  { net : int
  ; x0 : int
  ; x1 : int
  ; pins : (int * side) list  (** columns this segment contacts *)
  ; id : int
  }

let validate spec =
  let all = spec.top @ spec.bottom in
  List.iter
    (fun p ->
      if p.x < 0 || p.x + 2 > spec.width then
        invalid_arg (Printf.sprintf "Channel.route: pin x=%d outside width %d" p.x spec.width))
    all;
  let check_side pins what =
    let sorted = List.sort (fun a b -> Int.compare a.x b.x) pins in
    let rec go = function
      | a :: (b :: _ as rest) ->
        if b.x - a.x < 7 then
          invalid_arg
            (Printf.sprintf "Channel.route: %s pins at %d and %d closer than 7" what a.x b.x);
        go rest
      | [ _ ] | [] -> ()
    in
    go sorted
  in
  check_side spec.top "top";
  check_side spec.bottom "bottom"

(* segment ids are placeholders here; [route] renumbers every segment
   with its own channel-wide counter *)
let segments_of_net ~dogleg net pins =
  let pins = List.sort (fun (x, _) (y, _) -> Int.compare x y) pins in
  match pins with
  | [] | [ _ ] -> []
  | _ when not dogleg ->
    let xs = List.map fst pins in
    [ { net
      ; x0 = List.fold_left min max_int xs
      ; x1 = List.fold_left max min_int xs
      ; pins
      ; id = 0
      }
    ]
  | _ ->
    let rec pairs = function
      | (xa, sa) :: ((xb, sb) :: _ as rest) ->
        { net; x0 = xa; x1 = xb; pins = [ (xa, sa); (xb, sb) ]; id = 0 }
        :: pairs rest
      | [ _ ] | [] -> []
    in
    pairs pins

let route ?(dogleg = false) spec =
  Sc_obs.Obs.span "channel" @@ fun () ->
  validate spec;
  (* group pins by net *)
  let by_net = Hashtbl.create 16 in
  let add side (p : pin) =
    let cur = try Hashtbl.find by_net p.net with Not_found -> [] in
    Hashtbl.replace by_net p.net ((p.x, side) :: cur)
  in
  List.iter (add Top) spec.top;
  List.iter (add Bottom) spec.bottom;
  (* through nets: two pins, same column, opposite sides *)
  let throughs = ref [] in
  let segments = ref [] in
  let seg_id = ref 0 in
  Hashtbl.iter
    (fun net pins ->
      match pins with
      | [ (xa, Top); (xb, Bottom) ] | [ (xa, Bottom); (xb, Top) ] when xa = xb ->
        throughs := xa :: !throughs
      | _ ->
        List.iter
          (fun s ->
            incr seg_id;
            segments := { s with id = !seg_id } :: !segments)
          (segments_of_net ~dogleg net pins))
    by_net;
  let segs = Array.of_list !segments in
  let nsegs = Array.length segs in
  (* vertical constraint graph between segments: in a column with a top pin
     of net a and a bottom pin of net b (a <> b), every a-segment at that
     column must be above every b-segment at that column *)
  let at_column = Hashtbl.create 32 in
  Array.iteri
    (fun i s ->
      List.iter
        (fun (x, side) ->
          let cur = try Hashtbl.find at_column x with Not_found -> [] in
          Hashtbl.replace at_column x ((i, side, s.net) :: cur))
        s.pins)
    segs;
  let preds = Array.make nsegs [] in
  Hashtbl.iter
    (fun _x entries ->
      List.iter
        (fun (i, si, ni) ->
          List.iter
            (fun (j, sj, nj) ->
              if ni <> nj && si = Top && sj = Bottom then
                (* i above j: i is a predecessor of j in top-down filling *)
                preds.(j) <- i :: preds.(j))
            entries)
        entries)
    at_column;
  (* top-down left-edge with constraints *)
  let track_of = Array.make nsegs (-1) in
  let remaining = ref nsegs in
  let track = ref 0 in
  while !remaining > 0 do
    let placeable =
      List.filter
        (fun i ->
          track_of.(i) = -1
          && List.for_all
               (fun j -> track_of.(j) >= 0 && track_of.(j) < !track)
               preds.(i))
        (List.init nsegs (fun i -> i))
    in
    if placeable = [] then
      raise
        (Unroutable
           (if dogleg then "cyclic vertical constraints despite doglegs"
            else "cyclic vertical constraints (try dogleg)"));
    let sorted =
      List.sort (fun a b -> Int.compare segs.(a).x0 segs.(b).x0) placeable
    in
    let last_end = ref min_int in
    List.iter
      (fun i ->
        (* effective occupied interval includes contact surrounds *)
        let left = segs.(i).x0 - 1 and right = segs.(i).x1 + 3 in
        if left >= !last_end + 3 then begin
          track_of.(i) <- !track;
          decr remaining;
          last_end := right
        end)
      sorted;
    incr track
  done;
  let ntracks = !track in
  let height = max 4 (track_pitch * ntracks) in
  (* trunk y of a track, numbered from the top *)
  let trunk_y k = height - 5 - (track_pitch * k) in
  let elements = ref [] in
  let add e = elements := e :: !elements in
  let trunk_length = ref 0 in
  Array.iteri
    (fun i s ->
      let ty = trunk_y track_of.(i) in
      if s.x1 > s.x0 then begin
        add (Cell.box Layer.Metal (Rect.make (s.x0 - 1) ty (s.x1 + 3) (ty + 3)));
        trunk_length := !trunk_length + (s.x1 - s.x0)
      end
      else
        (* degenerate trunk: just the contact pad *)
        add (Cell.box Layer.Metal (Rect.make (s.x0 - 1) ty (s.x0 + 3) (ty + 3)));
      List.iter
        (fun (x, side) ->
          (* contact cut joining branch and trunk *)
          add (Cell.box Layer.Contact (Rect.make x ty (x + 2) (ty + 2)));
          add (Cell.box Layer.Metal (Rect.make (x - 1) (ty - 1) (x + 3) (ty + 3)));
          match side with
          | Top -> add (Cell.box Layer.Poly (Rect.make x ty (x + 2) height))
          | Bottom -> add (Cell.box Layer.Poly (Rect.make x 0 (x + 2) (ty + 2))))
        s.pins)
    segs;
  List.iter
    (fun x -> add (Cell.box Layer.Poly (Rect.make x 0 (x + 2) height)))
    !throughs;
  let layout = Cell.make ~name:"channel" (List.rev !elements) in
  Sc_obs.Obs.count "route.tracks" ntracks;
  Sc_obs.Obs.count "route.height" height;
  { height; tracks = ntracks; layout; trunk_length = !trunk_length }

let river ~width pairs =
  let top = List.mapi (fun i (_, xt) -> { x = xt; net = i }) pairs in
  let bottom = List.mapi (fun i (xb, _) -> { x = xb; net = i }) pairs in
  route { top; bottom; width }
