(** Channel routing.

    The classic two-layer channel model of the period: pins enter a
    horizontal channel from the top and bottom edges at integer x
    positions; each net gets horizontal *metal* trunk segments on tracks
    and vertical *poly* branches to its pins, joined by contacts.

    The router is left-edge with a vertical constraint graph: when a
    column holds a top pin of net [a] and a bottom pin of net [b], [a]'s
    trunk must lie above [b]'s.  With [dogleg] enabled, nets are split at
    their pins into pin-to-pin sub-segments first, which breaks most
    constraint cycles and often lowers the track count (the E-series
    ablation toggles this).

    Pins of the same x and net on both edges connect with a single
    through-branch.  Pin x positions must be at least 7 lambda apart
    (metal surround pitch); violations raise [Invalid_argument]. *)

type pin = { x : int; net : int }

type spec =
  { top : pin list  (** pins on the channel's top edge *)
  ; bottom : pin list
  ; width : int  (** channel width in lambda; pins must fit inside *)
  }

type routed =
  { height : int  (** channel height consumed, in lambda *)
  ; tracks : int
  ; layout : Sc_layout.Cell.t
      (** geometry in channel coordinates: (0,0) bottom-left,
          y grows upward to [height]; pins touched at y=0 / y=height *)
  ; trunk_length : int  (** total horizontal wire length *)
  }

exception Unroutable of string

(** @raise Unroutable when the vertical constraint graph is cyclic and
    doglegs are disabled or cannot break the cycle.

    The whole routing runs inside an {!Sc_obs.Obs.span} named
    ["channel"]: if [Unroutable] (or [Invalid_argument] from pin
    validation) is raised, the span is still closed and recorded —
    [Obs.span] re-raises after finishing the frame — so traces show the
    aborted attempt and the exception reaches the caller unchanged. *)
val route : ?dogleg:bool -> spec -> routed

(** [river ~width pairs] — order-preserving two-row connection: pair
    [(xb, xt)] joins bottom pin at [xb] to top pin at [xt]; implemented as
    a channel with one net per pair. *)
val river : width:int -> (int * int) list -> routed
