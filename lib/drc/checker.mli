(** Lambda design-rule checking.

    The checker flattens a cell and verifies the {!Sc_tech.Rules.deck}:

    - minimum width per rectangle (the 1979-era rectangle discipline:
      generators draw features as rectangles of legal width, so rectangle
      granularity is the right check);
    - minimum spacing between *electrically distinct* groups on a layer —
      rectangles that touch or overlap are merged into one group first, so
      abutting tiles of one wire are never flagged against each other;
    - cross-layer spacing (e.g. poly to unrelated diffusion), where shapes
      with interior overlap are exempt because a poly-over-diffusion
      crossing is a transistor, not a violation (edge abutment without
      overlap is still flagged);
    - enclosure (contact cuts inside metal, glass inside pad metal).

    Checking is O(n log n + k) by plane-sweep over x with an active set;
    every rule — including cross-layer spacing, which sweeps a merged
    xmin-sorted array of both layers — visits only window neighbours.

    The deck decomposes into independent tasks (per rule, per layer, per
    slice of the sorted rectangle array) executed on an {!Sc_par.Pool}
    — the process default unless [?pool] is given.  Task results are
    concatenated in submission order, so the violation list is identical
    at every pool size. *)

open Sc_geom
open Sc_tech
open Sc_layout

type violation =
  { rule : Rules.rule
  ; where : Rect.t  (** a rectangle that witnesses the violation *)
  ; detail : string
  }

val check : ?pool:Sc_par.Pool.t -> Cell.t -> violation list

(** [check_flat boxes] runs the deck on already flattened geometry. *)
val check_flat : ?pool:Sc_par.Pool.t -> Flatten.flat_box list -> violation list

val is_clean : Cell.t -> bool

val pp_violation : Format.formatter -> violation -> unit

val report : Format.formatter -> violation list -> unit
