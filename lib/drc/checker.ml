open Sc_geom
open Sc_tech
open Sc_layout

type violation =
  { rule : Rules.rule
  ; where : Rect.t
  ; detail : string
  }

(* --- rectangle cover: is [target] fully covered by the union of [covers]?
   Recursive splitting: find a cover overlapping the target, split the
   uncovered remainder into at most four rectangles and recurse. *)
let rec covered target covers =
  if Rect.is_empty target then true
  else
    match
      List.find_opt
        (fun c -> Rect.overlaps c target || Rect.contains c target)
        covers
    with
    | None -> false
    | Some c ->
      if Rect.contains c target then true
      else
        let pieces =
          let t = target in
          let frags = ref [] in
          let push x0 y0 x1 y1 =
            if x0 < x1 && y0 < y1 then frags := Rect.make x0 y0 x1 y1 :: !frags
          in
          (* Left and right slabs, then the middle strips above and below. *)
          push t.Rect.xmin t.Rect.ymin (min t.Rect.xmax c.Rect.xmin) t.Rect.ymax;
          push (max t.Rect.xmin c.Rect.xmax) t.Rect.ymin t.Rect.xmax t.Rect.ymax;
          let mx0 = max t.Rect.xmin c.Rect.xmin
          and mx1 = min t.Rect.xmax c.Rect.xmax in
          push mx0 t.Rect.ymin mx1 (min t.Rect.ymax c.Rect.ymin);
          push mx0 (max t.Rect.ymin c.Rect.ymax) mx1 t.Rect.ymax;
          !frags
        in
        List.for_all (fun p -> covered p covers) pieces

(* --- grouping rectangles into electrically connected regions --- *)
let group_regions rects =
  let n = Array.length rects in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (* rects must be sorted by xmin; only neighbours whose x-ranges touch can
     touch geometrically. *)
  for i = 0 to n - 1 do
    let j = ref (i + 1) in
    while !j < n && rects.(!j).Rect.xmin <= rects.(i).Rect.xmax do
      if Rect.touches_or_overlaps rects.(i) rects.(!j) then union i !j;
      incr j
    done
  done;
  Array.init n find

let sorted_array rs =
  let a = Array.of_list rs in
  Array.sort (fun r1 r2 -> Int.compare r1.Rect.xmin r2.Rect.xmin) a;
  a

(* first index in the xmin-sorted [arr] with xmin > x (all of [arr] if
   none) — the exclusive right edge of a sweep window *)
let upper_bound (arr : Rect.t array) x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).Rect.xmin <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* split [0, n) into at most [parts] contiguous ranges *)
let ranges n parts =
  let parts = max 1 (min parts n) in
  let per = (n + parts - 1) / parts in
  List.init parts (fun k -> (k * per, min n ((k + 1) * per)))
  |> List.filter (fun (lo, hi) -> lo < hi)

(* The deck is decomposed into independent tasks (per rule, per layer,
   and — for the scan-heavy rules — per contiguous slice of the sorted
   rectangle array) and run on the worker pool.  Each task accumulates
   its own violations in scan order; concatenating the task results in
   submission order reproduces the sequential list exactly, so any [-j]
   level yields byte-identical reports. *)
let check_flat ?pool flat =
  let pool = match pool with Some p -> p | None -> Sc_par.Pool.default () in
  let by_layer = Array.make Layer.count [] in
  List.iter
    (fun (fb : Flatten.flat_box) ->
      if not (Rect.is_empty fb.rect) then
        let i = Layer.index fb.layer in
        by_layer.(i) <- fb.rect :: by_layer.(i))
    flat;
  let sorted = Array.map sorted_array by_layer in
  let layer_rects l = sorted.(Layer.index l) in
  let shards n = ranges n (4 * Sc_par.Pool.size pool) in
  let collect f =
    let violations = ref [] in
    let add rule where detail =
      violations := { rule; where; detail } :: !violations
    in
    f add;
    List.rev !violations
  in
  (* Width: one task per layer. *)
  let width_tasks =
    List.map
      (fun l () ->
        collect (fun add ->
            let w = Rules.min_width l in
            List.iter
              (fun r ->
                let narrow = min (Rect.width r) (Rect.height r) in
                if narrow < w then
                  add (Rules.Min_width (l, w)) r
                    (Printf.sprintf "feature is %d lambda wide" narrow))
              by_layer.(Layer.index l)))
      Layer.all
  in
  (* Same-layer spacing between distinct regions: one task per layer
     (region grouping needs the whole layer). *)
  let spacing_tasks =
    List.filter_map
      (fun l ->
        let s = Rules.min_spacing l in
        if s > 0 then
          Some
            (fun () ->
              collect (fun add ->
                  let rects = layer_rects l in
                  let region = group_regions rects in
                  let n = Array.length rects in
                  for i = 0 to n - 1 do
                    let j = ref (i + 1) in
                    while
                      !j < n && rects.(!j).Rect.xmin <= rects.(i).Rect.xmax + s
                    do
                      if region.(i) <> region.(!j) then begin
                        let sep = Rect.separation rects.(i) rects.(!j) in
                        if sep < s then
                          add
                            (Rules.Min_spacing (l, l, s))
                            rects.(i)
                            (Printf.sprintf "to %s: %d < %d"
                               (Rect.to_string rects.(!j))
                               sep s)
                      end;
                      incr j
                    done
                  done))
        else None)
      Layer.all
  in
  (* Cross-layer spacing; overlapping or abutting shapes are related
     (transistors, butting contacts) and exempt.  Both layers merge into
     one xmin-sorted array and a single sweep visits exactly the pairs
     whose x-gap can be below [s] — the same window argument
     [group_regions] relies on: every pair is reached from its
     smaller-xmin member.  Sliced into index ranges across the pool. *)
  let cross_tasks =
    List.concat_map
      (fun (la, lb) ->
        let s = Rules.cross_spacing la lb in
        if s > 0 && not (Layer.equal la lb) then begin
          let ra = layer_rects la and rb = layer_rects lb in
          let merged =
            Array.append
              (Array.map (fun r -> (r, true)) ra)
              (Array.map (fun r -> (r, false)) rb)
          in
          Array.sort
            (fun (r1, t1) (r2, t2) ->
              match Int.compare r1.Rect.xmin r2.Rect.xmin with
              | 0 -> compare (t1, r1) (t2, r2)
              | c -> c)
            merged;
          let n = Array.length merged in
          List.map
            (fun (lo, hi) () ->
              collect (fun add ->
                  for i = lo to hi - 1 do
                    let ri, ti = merged.(i) in
                    let j = ref (i + 1) in
                    while
                      !j < n && (fst merged.(!j)).Rect.xmin <= ri.Rect.xmax + s
                    do
                      let rj, tj = merged.(!j) in
                      if ti <> tj then begin
                        let a, b = if ti then (ri, rj) else (rj, ri) in
                        let sep = Rect.separation a b in
                        if (not (Rect.overlaps a b)) && sep < s then
                          add (Rules.Min_spacing (la, lb, s)) a
                            (Printf.sprintf "to %s on %s: %d < %d"
                               (Rect.to_string b) (Layer.to_string lb) sep s)
                      end;
                      incr j
                    done
                  done))
            (shards n)
        end
        else [])
      [ (Layer.Poly, Layer.Diffusion) ]
  in
  (* Enclosure: candidate covers for each inner rectangle are narrowed
     by binary search on the sorted outer array before the recursive
     cover test; sliced across the pool. *)
  let enclosure_tasks =
    List.concat_map
      (fun (inner, outer) ->
        let m = Rules.enclosure ~inner ~outer in
        if m > 0 then begin
          let inners = layer_rects inner in
          let outers = layer_rects outer in
          List.map
            (fun (lo, hi) () ->
              collect (fun add ->
                  for i = lo to hi - 1 do
                    let r = inners.(i) in
                    let target = Rect.inflate m r in
                    let right = upper_bound outers target.Rect.xmax in
                    let candidates = ref [] in
                    for j = right - 1 downto 0 do
                      if outers.(j).Rect.xmax >= target.Rect.xmin then
                        candidates := outers.(j) :: !candidates
                    done;
                    if not (covered target !candidates) then
                      add
                        (Rules.Min_enclosure (inner, outer, m))
                        r
                        (Printf.sprintf "not enclosed by %s with margin %d"
                           (Layer.to_string outer) m)
                  done))
            (shards (Array.length inners))
        end
        else [])
      [ (Layer.Contact, Layer.Metal); (Layer.Glass, Layer.Metal) ]
  in
  Sc_par.Pool.run ~label:"drc.shard" pool
    (width_tasks @ spacing_tasks @ cross_tasks @ enclosure_tasks)
  |> List.concat

let check ?pool cell =
  Sc_obs.Obs.span "drc" @@ fun () ->
  let vs = check_flat ?pool (Flatten.run cell) in
  Sc_obs.Obs.count "drc.violations" (List.length vs);
  vs

let is_clean cell = check cell = []

let pp_violation ppf v =
  Format.fprintf ppf "%a at %a: %s" Rules.pp_rule v.rule Rect.pp v.where v.detail

let report ppf = function
  | [] -> Format.fprintf ppf "DRC clean@."
  | vs ->
    Format.fprintf ppf "%d DRC violations:@." (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs
