open Sc_geom
open Sc_tech
open Sc_layout

type violation =
  { rule : Rules.rule
  ; where : Rect.t
  ; detail : string
  }

(* --- rectangle cover: is [target] fully covered by the union of [covers]?
   Recursive splitting: find a cover overlapping the target, split the
   uncovered remainder into at most four rectangles and recurse. *)
let rec covered target covers =
  if Rect.is_empty target then true
  else
    match
      List.find_opt
        (fun c -> Rect.overlaps c target || Rect.contains c target)
        covers
    with
    | None -> false
    | Some c ->
      if Rect.contains c target then true
      else
        let pieces =
          let t = target in
          let frags = ref [] in
          let push x0 y0 x1 y1 =
            if x0 < x1 && y0 < y1 then frags := Rect.make x0 y0 x1 y1 :: !frags
          in
          (* Left and right slabs, then the middle strips above and below. *)
          push t.Rect.xmin t.Rect.ymin (min t.Rect.xmax c.Rect.xmin) t.Rect.ymax;
          push (max t.Rect.xmin c.Rect.xmax) t.Rect.ymin t.Rect.xmax t.Rect.ymax;
          let mx0 = max t.Rect.xmin c.Rect.xmin
          and mx1 = min t.Rect.xmax c.Rect.xmax in
          push mx0 t.Rect.ymin mx1 (min t.Rect.ymax c.Rect.ymin);
          push mx0 (max t.Rect.ymin c.Rect.ymax) mx1 t.Rect.ymax;
          !frags
        in
        List.for_all (fun p -> covered p covers) pieces

(* --- grouping rectangles into electrically connected regions --- *)
let group_regions rects =
  let n = Array.length rects in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (* rects must be sorted by xmin; only neighbours whose x-ranges touch can
     touch geometrically. *)
  for i = 0 to n - 1 do
    let j = ref (i + 1) in
    while !j < n && rects.(!j).Rect.xmin <= rects.(i).Rect.xmax do
      if Rect.touches_or_overlaps rects.(i) rects.(!j) then union i !j;
      incr j
    done
  done;
  Array.init n find

let sorted_array rs =
  let a = Array.of_list rs in
  Array.sort (fun r1 r2 -> Int.compare r1.Rect.xmin r2.Rect.xmin) a;
  a

let check_flat flat =
  let violations = ref [] in
  let add rule where detail = violations := { rule; where; detail } :: !violations in
  let by_layer = Array.make Layer.count [] in
  List.iter
    (fun (fb : Flatten.flat_box) ->
      if not (Rect.is_empty fb.rect) then
        let i = Layer.index fb.layer in
        by_layer.(i) <- fb.rect :: by_layer.(i))
    flat;
  let layer_rects l = sorted_array by_layer.(Layer.index l) in
  (* Width. *)
  List.iter
    (fun l ->
      let w = Rules.min_width l in
      List.iter
        (fun r ->
          let narrow = min (Rect.width r) (Rect.height r) in
          if narrow < w then
            add (Rules.Min_width (l, w)) r
              (Printf.sprintf "feature is %d lambda wide" narrow))
        by_layer.(Layer.index l))
    Layer.all;
  (* Same-layer spacing between distinct regions. *)
  List.iter
    (fun l ->
      let s = Rules.min_spacing l in
      if s > 0 then begin
        let rects = layer_rects l in
        let region = group_regions rects in
        let n = Array.length rects in
        for i = 0 to n - 1 do
          let j = ref (i + 1) in
          while !j < n && rects.(!j).Rect.xmin <= rects.(i).Rect.xmax + s do
            if region.(i) <> region.(!j) then begin
              let sep = Rect.separation rects.(i) rects.(!j) in
              if sep < s then
                add
                  (Rules.Min_spacing (l, l, s))
                  rects.(i)
                  (Printf.sprintf "to %s: %d < %d" (Rect.to_string rects.(!j)) sep s)
            end;
            incr j
          done
        done
      end)
    Layer.all;
  (* Cross-layer spacing; overlapping or abutting shapes are related
     (transistors, butting contacts) and exempt. *)
  List.iter
    (fun (la, lb) ->
      let s = Rules.cross_spacing la lb in
      if s > 0 && not (Layer.equal la lb) then begin
        let ra = layer_rects la and rb = layer_rects lb in
        Array.iter
          (fun a ->
            Array.iter
              (fun b ->
                let sep = Rect.separation a b in
                if (not (Rect.overlaps a b)) && sep < s then
                  add (Rules.Min_spacing (la, lb, s)) a
                    (Printf.sprintf "to %s on %s: %d < %d" (Rect.to_string b)
                       (Layer.to_string lb) sep s))
              rb)
          ra
      end)
    [ (Layer.Poly, Layer.Diffusion) ];
  (* Enclosure. *)
  List.iter
    (fun (inner, outer) ->
      let m = Rules.enclosure ~inner ~outer in
      if m > 0 then begin
        let outers = by_layer.(Layer.index outer) in
        List.iter
          (fun r ->
            if not (covered (Rect.inflate m r) outers) then
              add
                (Rules.Min_enclosure (inner, outer, m))
                r
                (Printf.sprintf "not enclosed by %s with margin %d"
                   (Layer.to_string outer) m))
          by_layer.(Layer.index inner)
      end)
    [ (Layer.Contact, Layer.Metal); (Layer.Glass, Layer.Metal) ];
  List.rev !violations

let check cell =
  Sc_obs.Obs.span "drc" @@ fun () ->
  let vs = check_flat (Flatten.run cell) in
  Sc_obs.Obs.count "drc.violations" (List.length vs);
  vs

let is_clean cell = check cell = []

let pp_violation ppf v =
  Format.fprintf ppf "%a at %a: %s" Rules.pp_rule v.rule Rect.pp v.where v.detail

let report ppf = function
  | [] -> Format.fprintf ppf "DRC clean@."
  | vs ->
    Format.fprintf ppf "%d DRC violations:@." (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs
