(** A content-addressed memo store: digest keys to compiled results.

    The pipeline recompiles identical content constantly — every [Dff]
    instance shares one library layout, every repeated [scc] run of the
    same source re-places and re-checks the same netlist.  A store maps
    a {e content digest} (MD5 of a canonical serialization — source
    text, flattened geometry, netlist) to the result of compiling it:
    layouts, DRC verdicts, whole [Compiler.compiled] records.

    In memory the store is a bounded LRU (least-recently-used entries
    evicted at [capacity]).  With [~dir] it also persists: every insert
    writes [dir/<shard>/<name>-<digest>] (the shard is the first two
    characters of the digest, so concurrent writers spread over
    subdirectories), and a miss consults the directory before
    recomputing, so results survive the process — a second
    [scc --cache-dir d isp pdp8] skips compilation entirely.  Disk
    values go through [Marshal] behind a magic + format-version header;
    an entry written by an older build (or a torn/foreign file) reads
    back as a miss — counted as ["cache.<name>.stale"] — never as
    garbage.  A directory is trusted input exactly like the source tree
    it caches for.  Writes are safe under concurrent writers, including
    separate processes: each goes to a unique temp name
    ([.tmp.<pid>.<seq>]) and lands with one atomic rename.

    Stores are domain-safe (one mutex each); the computation given to
    {!find_or_add} runs outside the lock, so two domains may race to
    compute the same key — both results are equal by construction and
    the second insert is a no-op.  Cache effectiveness is reported to
    {!Sc_obs.Obs} as ["cache.<name>.hit"] / ["cache.<name>.disk_hit"] /
    ["cache.<name>.miss"] / ["cache.<name>.eviction"], so [--stats]
    tables and [Sc_metrics] snapshots show it; {!stats} exposes the
    same counts programmatically. *)

type 'a t

val create :
  ?capacity:int ->
  ?disk_capacity:int ->
  ?disk_bytes:int ->
  ?dir:string ->
  name:string ->
  unit ->
  'a t
(** [create ~name ()] — an empty store.  [capacity] bounds the
    in-memory entry count (default 256; at least 1).  [dir] enables
    on-disk persistence (created if missing).

    [disk_capacity] / [disk_bytes] bound the {e disk} tier: after each
    persisted write, this store's files across every shard subdirectory
    are counted (and summed, for the byte bound) and least-recently-used
    entries — by mtime; both writes and disk hits refresh it — are
    deleted until the bounds hold, reported as
    ["cache.<name>.disk_evictions"].  Unbounded (the default) stores
    never pay the directory scan.  Stores sharing one directory are
    independent: eviction only ever touches files with this store's
    name prefix. *)

val digest : string -> string
(** MD5 of a canonical byte string, in hex — the content address. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key compute] returns the cached value for [key]
    (refreshing its recency), or runs [compute], stores the result
    under [key], and returns it. *)

val find : 'a t -> string -> 'a option
(** Lookup without computing; refreshes recency on hit. *)

val lookup : 'a t -> string -> [ `Memory of 'a | `Disk of 'a | `Absent ]
(** Value-level lookup that distinguishes where the hit came from.
    [`Memory] refreshes recency and counts a hit; [`Disk] loads the
    value into memory and counts a disk hit; [`Absent] counts nothing —
    pair with {!add} to record the miss once the value is computed.
    This is the stage-cache API: callers that must keep errors out of
    the store (see {!Sc_pipeline.Pipeline}) probe with [lookup] and
    only {!add} successful results, with no exception round-trip. *)

val add : 'a t -> string -> 'a -> unit
(** [add t key v] records a computed-from-scratch value: counts a miss,
    inserts [v] under [key] (refreshing nothing if the key raced in
    already), and persists it when the store has a [dir]. *)

val remove : 'a t -> string -> unit
(** Drop a key from memory and, when persistent, from disk. *)

val clear : 'a t -> unit
(** Drop every in-memory entry (the disk store is left alone) and
    reset the hit/miss counters. *)

type stats =
  { entries : int  (** live in-memory entries *)
  ; capacity : int
  ; hits : int  (** in-memory hits since creation/clear *)
  ; disk_hits : int  (** misses served from [dir] *)
  ; misses : int  (** computed from scratch *)
  ; evictions : int  (** in-memory LRU evictions *)
  ; disk_evictions : int  (** files deleted by the disk-tier LRU bound *)
  ; stale : int
    (** disk entries rejected by the magic/format-version header *)
  }

val stats : 'a t -> stats

val pp_stats : Format.formatter -> stats -> unit
