(* LRU via an intrusive doubly-linked list threaded through the table's
   entries: head = most recent, tail = eviction candidate. *)

type 'a node =
  { nkey : string
  ; nvalue : 'a
  ; mutable prev : 'a node option  (* toward the head / more recent *)
  ; mutable next : 'a node option
  }

type stats =
  { entries : int
  ; capacity : int
  ; hits : int
  ; disk_hits : int
  ; misses : int
  ; evictions : int
  ; disk_evictions : int
  ; stale : int
  }

type 'a t =
  { name : string
  ; cap : int
  ; dir : string option
  ; disk_cap : int option
  ; disk_max_bytes : int option
  ; tbl : (string, 'a node) Hashtbl.t
  ; lock : Mutex.t
  ; mutable head : 'a node option
  ; mutable tail : 'a node option
  ; mutable hits : int
  ; mutable disk_hits : int
  ; mutable misses : int
  ; mutable evictions : int
  ; mutable disk_evictions : int
  ; mutable stale : int
  }

let digest s = Digest.to_hex (Digest.string s)

let create ?(capacity = 256) ?disk_capacity ?disk_bytes ?dir ~name () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  { name
  ; cap = max 1 capacity
  ; dir
  ; disk_cap = Option.map (max 1) disk_capacity
  ; disk_max_bytes = Option.map (max 1) disk_bytes
  ; tbl = Hashtbl.create 64
  ; lock = Mutex.create ()
  ; head = None
  ; tail = None
  ; hits = 0
  ; disk_hits = 0
  ; misses = 0
  ; evictions = 0
  ; disk_evictions = 0
  ; stale = 0
  }

(* --- list surgery; caller holds the lock --- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(* returns how many entries were evicted so the caller can report them
   to Obs outside the lock *)
let insert t key value =
  if Hashtbl.mem t.tbl key then 0
  else begin
    let n = { nkey = key; nvalue = value; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    let evicted = ref 0 in
    while Hashtbl.length t.tbl > t.cap do
      match t.tail with
      | Some last ->
        unlink t last;
        Hashtbl.remove t.tbl last.nkey;
        t.evictions <- t.evictions + 1;
        incr evicted
      | None -> assert false
    done;
    !evicted
  end

(* --- disk layer --- *)

(* Every entry starts with a magic string and a format version, so a
   directory written by an older build (or a torn/foreign file) reads
   back as a miss instead of handing Marshal garbage.  Bump
   [format_version] whenever the meaning or layout of cached artifacts
   changes. *)
let magic = "SCCCACHE"
let format_version = 1

(* Entries are sharded into per-prefix subdirectories so that a hot
   shared directory (many concurrent writers, e.g. under [scc serve])
   never concentrates every rename in one inode, and listing stays
   cheap as the store grows. *)
let shard_of key =
  if String.length key < 2 then "00"
  else
    String.init 2 (fun i ->
        match key.[i] with
        | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c
        | _ -> '_')

let ensure_dir d =
  if not (Sys.file_exists d) then
    try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ()

let file_of t key =
  match t.dir with
  | None -> None
  | Some d ->
    Some (Filename.concat (Filename.concat d (shard_of key)) (t.name ^ "-" ^ key))

let locked t f = Mutex.protect t.lock f

let note ?(n = 1) t what =
  if n > 0 then Sc_obs.Obs.count ("cache." ^ t.name ^ "." ^ what) n

let disk_read t key =
  match file_of t key with
  | Some path when Sys.file_exists path -> (
    let read () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let m =
            try really_input_string ic (String.length magic)
            with End_of_file -> ""
          in
          if not (String.equal m magic) then `Stale
          else if (try input_binary_int ic with End_of_file -> -1)
                  <> format_version
          then `Stale
          else
            match Marshal.from_channel ic with
            | v -> `Value v
            | exception _ -> `Stale)
    in
    match read () with
    | `Value v ->
      (* refresh recency: the disk tier is LRU by mtime, so a read must
         count as a use or hot entries get evicted first *)
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some v
    | `Stale ->
      (* written by another build, or corrupt: a miss, never garbage *)
      locked t (fun () -> t.stale <- t.stale + 1);
      note t "stale";
      None
    | exception _ -> None)
  | _ -> None

(* tmp names must be unique per writer: two processes (or domains)
   racing to persist the same key must not clobber each other's
   in-flight file before the atomic rename *)
let tmp_seq = Atomic.make 0

let rec disk_write t key value =
  match file_of t key with
  | None -> ()
  | Some path -> (
    try
      (match t.dir with Some d -> ensure_dir d | None -> ());
      ensure_dir (Filename.dirname path);
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
          (Atomic.fetch_and_add tmp_seq 1)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          output_binary_int oc format_version;
          Marshal.to_channel oc value []);
      Sys.rename tmp path;
      enforce_disk_bound t
    with _ -> ())

(* Walk this store's files across every shard subdirectory.  Other
   stores sharing the directory are invisible (the [<name>-] prefix
   namespaces them) and in-flight [.tmp.] files are skipped. *)
and disk_files t =
  match t.dir with
  | None -> []
  | Some d ->
    let prefix = t.name ^ "-" in
    let plen = String.length prefix in
    let is_tmp f =
      (* "<prefix><digest>.tmp.<pid>.<seq>" — an in-flight write *)
      let rec scan i =
        i + 4 <= String.length f
        && (String.sub f i 4 = ".tmp" || scan (i + 1))
      in
      scan 0
    in
    let shards = try Sys.readdir d with Sys_error _ -> [||] in
    Array.fold_left
      (fun acc shard ->
        let sdir = Filename.concat d shard in
        if not (try Sys.is_directory sdir with Sys_error _ -> false) then acc
        else
          let files = try Sys.readdir sdir with Sys_error _ -> [||] in
          Array.fold_left
            (fun acc f ->
              if
                String.length f > plen
                && String.sub f 0 plen = prefix
                && not (is_tmp f)
              then begin
                let path = Filename.concat sdir f in
                match Unix.stat path with
                | { Unix.st_mtime; st_size; _ } ->
                  (path, st_mtime, st_size) :: acc
                | exception Unix.Unix_error _ -> acc
              end
              else acc)
            acc files)
      [] shards

(* LRU across shards: when either disk bound is exceeded, delete
   oldest-mtime entries until both hold again.  Runs only on stores
   created with a bound, after each persisted write — unbounded stores
   (the default) never pay the directory scan. *)
and enforce_disk_bound t =
  match (t.disk_cap, t.disk_max_bytes) with
  | None, None -> ()
  | cap, max_bytes ->
    let files =
      List.sort (fun (_, a, _) (_, b, _) -> compare a b) (disk_files t)
    in
    let count = ref (List.length files) in
    let bytes = ref (List.fold_left (fun a (_, _, s) -> a + s) 0 files) in
    let over () =
      (match cap with Some c -> !count > c | None -> false)
      || match max_bytes with Some b -> !bytes > b | None -> false
    in
    let evicted = ref 0 in
    List.iter
      (fun (path, _, size) ->
        if over () then begin
          (try Sys.remove path with Sys_error _ -> ());
          decr count;
          bytes := !bytes - size;
          incr evicted
        end)
      files;
    if !evicted > 0 then begin
      locked t (fun () -> t.disk_evictions <- t.disk_evictions + !evicted);
      note ~n:!evicted t "disk_evictions"
    end

(* --- lookup / insert --- *)

let find t key =
  let hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.nvalue
        | None -> None)
  in
  (match hit with Some _ -> note t "hit" | None -> ());
  hit

let lookup t key =
  match find t key with
  | Some v -> `Memory v
  | None -> (
    match disk_read t key with
    | Some v ->
      let evicted =
        locked t (fun () ->
            t.disk_hits <- t.disk_hits + 1;
            insert t key v)
      in
      note t "disk_hit";
      note ~n:evicted t "eviction";
      `Disk v
    | None -> `Absent)

let add t key v =
  let evicted =
    locked t (fun () ->
        t.misses <- t.misses + 1;
        insert t key v)
  in
  disk_write t key v;
  note t "miss";
  note ~n:evicted t "eviction"

let find_or_add t key compute =
  match lookup t key with
  | `Memory v | `Disk v -> v
  | `Absent ->
    (* compute outside the lock: a racing domain at worst repeats the
       work and the second insert is a no-op *)
    let v = compute () in
    add t key v;
    v

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl key
      | None -> ());
  match file_of t key with
  | Some path when Sys.file_exists path -> ( try Sys.remove path with _ -> ())
  | _ -> ()

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.disk_hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.disk_evictions <- 0;
      t.stale <- 0)

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.tbl
      ; capacity = t.cap
      ; hits = t.hits
      ; disk_hits = t.disk_hits
      ; misses = t.misses
      ; evictions = t.evictions
      ; disk_evictions = t.disk_evictions
      ; stale = t.stale
      })

let pp_stats ppf s =
  Format.fprintf ppf
    "%d/%d entries, %d hits (%d from disk), %d misses, %d evictions%s%s"
    s.entries s.capacity (s.hits + s.disk_hits) s.disk_hits s.misses
    s.evictions
    (if s.disk_evictions > 0 then
       Printf.sprintf ", %d disk evictions" s.disk_evictions
     else "")
    (if s.stale > 0 then Printf.sprintf ", %d stale" s.stale else "")
