(** A fixed-size OCaml 5 [Domain] worker pool with deterministic,
    ordered reduction.

    The pipeline's parallel stages (DRC rule sharding, multi-seed
    placement restarts, per-output equivalence cones) all follow the
    same shape: a list of independent pure tasks whose results must come
    back {e in submission order} so that parallel runs are byte-for-byte
    identical to sequential ones.  [run] provides exactly that contract:

    - results are returned in the order the thunks were given,
      regardless of which domain finished first;
    - if any task raises, the exception of the {e earliest} such task is
      re-raised in the caller once all tasks have settled — again
      independent of scheduling;
    - a pool of size 1 spawns no domains at all and runs every task in
      the calling domain, so [-j 1] is the sequential code path.

    The calling domain participates in the work (a pool of size [n]
    spawns [n - 1] worker domains), so no core idles while the caller
    blocks.  Tasks must not submit work to the pool they run on
    (the caller's slot is occupied; nested submission can deadlock).

    Every task runs inside an {!Sc_obs.Obs.span} (named by [~label])
    when the recorder is enabled; spans carry the worker's domain id,
    so a Chrome trace shows one track per domain and the summary table
    aggregates per-label totals across domains.  Each [run] also
    records the pool width (gauge ["pool.width"]) and per-domain
    completed-task counts (["pool.d<rank>.tasks"], rank 0 = the
    caller), so [Sc_metrics] snapshots expose load imbalance. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] — a pool executing on [domains] domains total
    (the caller plus [domains - 1] spawned workers).  [domains]
    defaults to {!recommended_domains}; values below 1 are clamped
    to 1. *)

val size : t -> int
(** Number of domains the pool executes on, including the caller. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — the sizes bench
    e11 sweeps. *)

val run : ?label:string -> t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] executes every thunk and returns their results in
    submission order.  Deterministic: scheduling affects only timing,
    never results or raised exceptions (the earliest-submitted failure
    wins).  [label] names the per-task Obs spans (default ["par.task"]). *)

val map_list : ?label:string -> t -> ('a -> 'b) -> 'a list -> 'b list

val map_array : ?label:string -> t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Join the pool's worker domains.  Idempotent; the pool must be idle.
    Pools are also shut down automatically at process exit. *)

(** {2 The process-default pool}

    [scc -j N] sets the default size once at startup; library code
    ([Sc_drc.Checker.check], [Placer.best_of], ...) picks the default
    pool up without threading a handle through every signature.  The
    default size is 1 — all parallel call sites degrade to the
    sequential path unless a pool or [-j] says otherwise. *)

val set_default_size : int -> unit
(** Resize the process-default pool (existing default workers are
    joined; the new pool is created lazily on first use). *)

val default_size : unit -> int

val default : unit -> t
(** The process-default pool, created on first use. *)
