(* The queue holds erased thunks; each [run] allocates its own result
   slots and completion counter, so several runs can be in flight at
   once — the serve daemon submits from concurrent request domains.
   Each caller blocks until its own batch settles, helping with the
   work (anyone's work: a helping caller may execute another batch's
   tasks) meanwhile. *)

type t =
  { pool_size : int
  ; lock : Mutex.t
  ; work : Condition.t  (* queue non-empty, or stopping *)
  ; settled : Condition.t  (* some batch finished a task *)
  ; queue : (unit -> unit) Queue.t
  ; mutable stopping : bool
  ; mutable workers : unit Domain.t list
  }

let size t = t.pool_size

let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* take one task if available; runs it outside the lock *)
let try_step t =
  Mutex.lock t.lock;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.lock;
  match task with
  | Some f ->
    f ();
    true
  | None -> false

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.lock
    done;
    let task = Queue.take_opt t.queue in
    Mutex.unlock t.lock;
    match task with
    | Some f ->
      f ();
      loop ()
    | None -> () (* stopping and drained *)
  in
  loop ()

let create ?domains () =
  let pool_size =
    match domains with
    | Some n -> max 1 n
    | None -> recommended_domains ()
  in
  let t =
    { pool_size
    ; lock = Mutex.create ()
    ; work = Condition.create ()
    ; settled = Condition.create ()
    ; queue = Queue.create ()
    ; stopping = false
    ; workers = []
    }
  in
  t.workers <- List.init (pool_size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* completed task i on behalf of [run]: record, count down, wake caller *)
type 'a slot =
  | Pending
  | Done of 'a
  | Raised of exn

let run ?(label = "par.task") t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  (* tasks inherit the submitter's ambient recorder: whoever executes a
     task — a worker domain, or another run's caller helping via
     [try_step] — records its spans and counters into the recorder of
     the run that submitted it, not into its own.  Skipped when the
     submitter is on the default recorder so the single-shot CLI path
     pays nothing. *)
  let amb = Sc_obs.Obs.ambient () in
  let obs = Sc_obs.Obs.Recorder.enabled amb in
  let exec f =
    let f = if obs then fun () -> Sc_obs.Obs.span label f else f in
    if amb == Sc_obs.Obs.default then f ()
    else Sc_obs.Obs.with_recorder amb f
  in
  if obs then Sc_obs.Obs.gauge "pool.width" t.pool_size;
  if t.pool_size <= 1 || n <= 1 then begin
    (* sequential path: no queueing, natural exception propagation *)
    if obs then Sc_obs.Obs.count "pool.d0.tasks" n;
    Array.to_list (Array.map (fun f -> exec f) thunks)
  end
  else begin
    let slots = Array.make n Pending in
    let remaining = ref n in
    (* which domain completed each task, for the load-imbalance gauges:
       rank 0 is the caller, workers rank by spawn order *)
    let ran_on = Array.make n (-1) in
    let rank_of =
      let caller = (Domain.self () :> int) in
      let workers =
        List.mapi (fun i d -> ((Domain.get_id d :> int), i + 1)) t.workers
      in
      fun id -> if id = caller then 0 else List.assoc id workers
    in
    let task i () =
      ran_on.(i) <- (Domain.self () :> int);
      (slots.(i) <-
        (match exec thunks.(i) with
        | v -> Done v
        | exception e -> Raised e));
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.settled;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* the caller works the queue too, then waits for stragglers *)
    while try_step t do
      ()
    done;
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait t.settled t.lock
    done;
    Mutex.unlock t.lock;
    if obs then begin
      Sc_obs.Obs.count (label ^ ".tasks") n;
      let per_rank = Array.make t.pool_size 0 in
      Array.iter
        (fun id -> if id >= 0 then begin
            let r = rank_of id in
            per_rank.(r) <- per_rank.(r) + 1
          end)
        ran_on;
      Array.iteri
        (fun r c ->
          if c > 0 then Sc_obs.Obs.count (Printf.sprintf "pool.d%d.tasks" r) c)
        per_rank
    end;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Raised e -> raise e
           | Pending -> assert false)
         slots)
  end

let map_list ?label t f xs = run ?label t (List.map (fun x () -> f x) xs)

let map_array ?label t f xs =
  Array.of_list (run ?label t (Array.to_list (Array.map (fun x () -> f x) xs)))

(* --- the process-default pool --- *)

let wanted = ref 1
let current : t option ref = ref None

let default_size () = !wanted

let drop_current () =
  match !current with
  | Some p ->
    current := None;
    shutdown p
  | None -> ()

let () = at_exit drop_current

let set_default_size n =
  let n = max 1 n in
  if n <> !wanted then begin
    wanted := n;
    drop_current ()
  end

let default () =
  match !current with
  | Some p -> p
  | None ->
    let p = create ~domains:!wanted () in
    current := Some p;
    p
