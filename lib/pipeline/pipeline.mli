(** A typed pass manager with per-stage content-addressed caching.

    Both compilation paths — behavioral
    (parse → compile → optimize → place → route → drc → emit → measure)
    and structural (elaborate → drc → emit → measure) — are sequences
    of {e passes} over {e staged} values.  A staged value carries its
    content {e key}: the digest of everything that went into producing
    it.  Registering a pass once buys, uniformly:

    - an {!Sc_obs.Obs} span named after the pass;
    - a structured {!Diag} error channel (a pass returns
      [(_, Diag.t) result]; raised {!Diag.Error}s and stray exceptions
      are caught at the stage boundary) — failures are values, never
      cached;
    - a per-pass {!Sc_cache.Cache} entry keyed on
      [digest (name # version | param | input key)], in memory and —
      with {!enable_cache}[ ~dir] — on disk, so identical inputs are
      stage-level hits and an edited parameter (say [--restarts])
      invalidates only the passes downstream of it;
    - a ["pipeline.<name>.<status>"] counter and a run-log entry for
      [--explain];
    - optionally, a {e translation certificate} (see below).

    {2 Key discipline}

    The cache key never includes observability state or pool width, so
    instrumented/uninstrumented and [-j 1]/[-j 4] runs share entries.
    Everything that {e does} affect the artifact must reach the key:
    either via the staged input (its key chains all upstream digests)
    or via [run ~param] for out-of-band knobs (placement restarts,
    entry cell, style).  Two passes registered under the same [name]
    {b must} bake a distinguishing [~param] at every call site
    (e.g. ["style=gates"] vs ["style=pla"]) — the per-pass store is
    shared by name on disk, and colliding keys across artifact types
    would confuse [Marshal].

    {2 Warm-run telemetry}

    A cache hit skips the deep code that emits QoR counters, so each
    pass may register a [replay] hook that re-emits the counters
    derivable from (input, artifact).  Replay runs inside the pass's
    span, only when {!Sc_obs.Obs.enabled}, which keeps warm QoR
    snapshots byte-identical to cold ones.

    {2 Translation certificates}

    A pass whose output claims to mean the same thing as its input (an
    optimizer, a cover minimizer) may register a [certify] hook: given
    (input, artifact) it either returns a {!cert_summary} proof summary
    or refutes the translation with a witness message.  When
    {!enable_certify} is on, {!run} checks the hook {e before}
    accepting an artifact — fresh executions are certified before the
    artifact enters the cache (a refused artifact is never cached), and
    cache hits are certified from a parallel per-pass certificate store
    keyed on the same output key, so warm rebuilds stay all-hit without
    re-proving anything.  A refusal surfaces as a [Diag] whose stage
    names the offending pass, with the run-log entry [Failed].

    Hooks must be Obs-quiet: the manager itself emits
    [equiv.certified_passes], [equiv.certificate.cones],
    [equiv.certificate.nodes] (QoR, replayed identically from the
    cached summary on warm runs), [equiv.certificate_us] (runtime) and
    ["pipeline.<name>.certified"] / ["pipeline.<name>.cert_failed"]
    counters from the summary on every path. *)

type 'a staged = private
  { value : 'a
  ; key : string  (** content digest of everything producing [value] *)
  }

val value : 'a staged -> 'a
val key : 'a staged -> string

val source : string -> string staged
(** Stage a source text; the key is its digest. *)

val inject : tag:string -> repr:string -> 'a -> 'a staged
(** Stage an out-of-band value whose identity is [repr] (must be a
    faithful rendering: equal reprs ⇒ interchangeable values).  [tag]
    namespaces the digest. *)

val pair : 'a staged -> 'b staged -> ('a * 'b) staged
(** Combine two staged values; the key chains both keys. *)

val map : ('a -> 'b) -> 'a staged -> 'b staged
(** A pure view of a staged value: the key is unchanged, so [f] must
    not add information that isn't already pinned by the key. *)

(** {2 Translation certificates} *)

type cert_summary =
  { cert_cones : int  (** independently proven output cones *)
  ; cert_nodes : int  (** peak BDD nodes across the proof (0 if n/a) *)
  }
(** What remains of a successful equivalence proof: enough to replay
    the certificate counters on a warm run.  [Marshal]-safe. *)

type cert_result =
  | Certified of cert_summary
  | Refuted of string
      (** the translation is wrong; the string is a human-readable
          witness (e.g. a rendered counterexample) *)

(** {2 Passes} *)

type ('a, 'b) pass

val register :
  ?version:int ->
  ?replay:('a -> 'b -> unit) ->
  ?certify:('a -> 'b -> cert_result) ->
  name:string ->
  ('a -> ('b, Diag.t) result) ->
  ('a, 'b) pass
(** [register ~name f] — a pass computing ['b] from ['a].  Bump
    [version] (default 1) whenever [f]'s semantics change: it is part
    of the cache key, so stale on-disk artifacts are never replayed.
    [replay] re-emits the pass's QoR counters from (input, artifact)
    on a cache hit; see the module preamble.  [certify] proves the
    artifact equivalent to the input when certification is enabled
    (must be Obs-quiet; a raised {!Diag.Error} counts as a refusal).
    The artifact type must be [Marshal]-safe (no closures) for the
    disk layer. *)

val run :
  ?param:string ->
  ?recorder:Sc_obs.Obs.Recorder.t ->
  ('a, 'b) pass ->
  'a staged ->
  ('b staged, Diag.t) result
(** Run a pass on a staged input: derive the output key, consult the
    pass's cache (when enabled), execute inside an Obs span on a miss,
    certify the artifact (when enabled and the pass has a hook),
    record the outcome in the run log.  Errors — including certificate
    refusals — are returned as values and never enter the cache.

    [recorder] runs the pass with that {!Sc_obs.Obs.Recorder.t}
    installed as the ambient recorder (see
    {!Sc_obs.Obs.with_recorder}): its span, counters and replay output
    land there instead of in the caller's ambient one.  Omitted, the
    caller's ambient recorder applies — which is how the serve daemon
    attributes a whole compile to a per-request recorder with one
    [with_recorder] at the top. *)

(** {2 Cache control} *)

val enable_cache : ?capacity:int -> ?disk_capacity:int -> ?dir:string -> unit -> unit
(** Turn on per-pass caching (process-global).  Without [dir] the
    stores are memory-only; with it, artifacts persist to
    [dir/<pass>-<digest>] and survive the process.  Calling again with
    a different [dir] re-homes every store lazily.  [disk_capacity]
    bounds each pass's on-disk entry count with LRU eviction (see
    {!Sc_cache.Cache.create}); unbounded by default. *)

val disable_cache : unit -> unit
(** Stop consulting/filling the stores (their contents are kept and
    revived by a later {!enable_cache} with the same [dir]). *)

val cache_enabled : unit -> bool

val enable_certify : unit -> unit
(** Check every registered [certify] hook from here on
    (process-global, like {!enable_cache}).  Certificates are cached
    in per-pass ["<name>.cert"] stores when the stage cache is on. *)

val disable_certify : unit -> unit

val with_certify : bool -> (unit -> 'a) -> 'a
(** [with_certify on f] runs [f] with certification forced to [on] for
    the calling (domain, thread) only, restoring the previous scope
    afterwards (also on exceptions).  Overrides nest.  The serve daemon
    wraps each request in this so one connection's [--certify] cannot
    leak into a concurrent compile — unlike {!enable_certify}, which is
    process-global. *)

val certify_enabled : unit -> bool
(** Whether {!run} will certify on this (domain, thread): the innermost
    {!with_certify} if any, else the process-global flag. *)

val clear_caches : unit -> unit
(** Drop every pass's in-memory store and its counters (disk entries
    are left alone) — "process restart" for tests and benches. *)

val cache_stats : unit -> (string * Sc_cache.Cache.stats) list
(** Stats per pass that has a live store, in registration order;
    certificate stores appear as ["<pass>.cert"]. *)

(** {2 Run log — [--explain]} *)

type status =
  | Ran  (** executed (cache miss or caching disabled) *)
  | Hit  (** served from the in-memory store *)
  | Disk_hit  (** served from the on-disk store *)
  | Failed  (** executed and returned a [Diag] *)

val status_to_string : status -> string

val reset_log : unit -> unit

val log : unit -> (string * status) list
(** Pass outcomes since {!reset_log}, in execution order.  The log is
    scoped to the calling (domain, thread), so concurrent compiles —
    one per daemon connection thread — never see each other's
    entries. *)

val drop_log : unit -> unit
(** Forget the calling thread's journal entirely (a terminating daemon
    thread calls this so dead threads don't accumulate journals). *)

val append_log : (string * status) list -> unit
(** Splice entries onto the calling thread's journal, in order.  The
    modular driver compiles each module on its own domain with its own
    journal, then appends the per-module entries (names prefixed
    ["<module>:"]) back into the requesting thread's journal so
    [--explain] shows one merged, deterministic sequence. *)

val pp_explain : Format.formatter -> unit -> unit
(** One ["explain: <pass> <status>"] line per log entry. *)
