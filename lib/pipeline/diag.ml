type t =
  { stage : string
  ; message : string
  }

exception Error of t

let v ~stage message = { stage; message }
let fail ~stage message = raise (Error { stage; message })

let failf ~stage fmt =
  Format.kasprintf (fun message -> fail ~stage message) fmt

let of_exn ~stage = function
  | Error d -> d
  | e -> { stage; message = Printexc.to_string e }

let to_string d = d.stage ^ ": " ^ d.message

(* registering a printer keeps accidental escapes readable in test
   output and crash logs *)
let () =
  Printexc.register_printer (function
    | Error d -> Some ("Diag.Error (" ^ to_string d ^ ")")
    | _ -> None)
