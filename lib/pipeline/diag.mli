(** Structured stage diagnostics.

    Every pass failure in the compiler is a [Diag.t]: the name of the
    stage that failed plus a human-readable message.  Drivers print
    ["stage: message"] and exit nonzero — the user never sees a raw
    OCaml backtrace for an input problem (a malformed design, an FSM
    too wide for the PLA generator, an unbound entry cell).

    Deep code that cannot return a [result] raises {!Error}; the pass
    manager ({!Pipeline.run}) catches it at the stage boundary and
    turns it back into a value.  Code outside the pipeline that calls
    such a function directly (tests, benches) should match on
    [exception Diag.Error d]. *)

type t =
  { stage : string  (** pass that failed, e.g. ["parse"], ["compile"] *)
  ; message : string
  }

exception Error of t

val v : stage:string -> string -> t
(** [v ~stage msg] — a diagnostic value. *)

val fail : stage:string -> string -> 'a
(** [fail ~stage msg] raises {!Error}. *)

val failf : stage:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Formatted {!fail}. *)

val of_exn : stage:string -> exn -> t
(** Adopt an arbitrary exception at a stage boundary: an {!Error}
    keeps its own stage; anything else is printed with
    [Printexc.to_string] under [stage]. *)

val to_string : t -> string
(** ["stage: message"]. *)
