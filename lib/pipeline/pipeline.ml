module Cache = Sc_cache.Cache
module Obs = Sc_obs.Obs

type 'a staged =
  { value : 'a
  ; key : string
  }

let value s = s.value
let key s = s.key

let source text = { value = text; key = Cache.digest ("source\x00" ^ text) }

let inject ~tag ~repr v =
  { value = v; key = Cache.digest (tag ^ "\x00" ^ repr) }

let pair a b = { value = (a.value, b.value); key = Cache.digest (a.key ^ "+" ^ b.key) }

let map f s = { value = f s.value; key = s.key }

(* --- global cache configuration --- *)

(* one store per pass, created lazily against the configuration that is
   current when the pass first runs; a dir change re-homes stores on
   their next use *)
type config =
  { mutable cdir : string option
  ; mutable ccap : int
  ; mutable cdisk_cap : int option
  ; mutable cenabled : bool
  ; mutable ccertify : bool
  }

let config =
  { cdir = None
  ; ccap = 256
  ; cdisk_cap = None
  ; cenabled = false
  ; ccertify = false
  }

(* --- translation certificates --- *)

type cert_summary =
  { cert_cones : int
  ; cert_nodes : int
  }

type cert_result =
  | Certified of cert_summary
  | Refuted of string

type ('a, 'b) pass =
  { name : string
  ; version : int
  ; f : 'a -> ('b, Diag.t) result
  ; replay : ('a -> 'b -> unit) option
  ; certify : ('a -> 'b -> cert_result) option
  ; plock : Mutex.t
    (* guards [store] and [cert_store]: daemon threads race the lazy
       store creation below and would otherwise clobber each other's
       [Cache.t] (losing stats and doubling memory) *)
  ; mutable store : (string option * 'b Cache.t) option
  ; mutable cert_store : (string option * cert_summary Cache.t) option
  }

(* existentially-packed view of each pass for stats/clear *)
type registered =
  { rname : string
  ; rstats : unit -> Cache.stats option
  ; rcert_stats : unit -> Cache.stats option
  ; rclear : unit -> unit
  }

let registry : registered list ref = ref []
let reg_lock = Mutex.create ()

let register ?(version = 1) ?replay ?certify ~name f =
  let pass =
    { name; version; f; replay; certify
    ; plock = Mutex.create ()
    ; store = None
    ; cert_store = None
    }
  in
  let entry =
    { rname = name
    ; rstats =
        (fun () ->
          Mutex.protect pass.plock (fun () ->
              Option.map (fun (_, c) -> Cache.stats c) pass.store))
    ; rcert_stats =
        (fun () ->
          Mutex.protect pass.plock (fun () ->
              Option.map (fun (_, c) -> Cache.stats c) pass.cert_store))
    ; rclear =
        (fun () ->
          Mutex.protect pass.plock (fun () ->
              pass.store <- None;
              pass.cert_store <- None))
    }
  in
  Mutex.protect reg_lock (fun () -> registry := entry :: !registry);
  pass

let enable_cache ?(capacity = 256) ?disk_capacity ?dir () =
  config.cdir <- dir;
  config.ccap <- capacity;
  config.cdisk_cap <- disk_capacity;
  config.cenabled <- true

let disable_cache () = config.cenabled <- false
let cache_enabled () = config.cenabled

let enable_certify () = config.ccertify <- true
let disable_certify () = config.ccertify <- false

(* The process-global flag can be overridden per (domain, thread): the
   serve daemon decides certification per request, and concurrent
   requests must not see each other's choice.  The override is scoped
   by [with_certify] and consulted by every [run] on that context. *)
let cert_overrides : (int * int, bool) Hashtbl.t = Hashtbl.create 8
let cert_lock = Mutex.create ()

let ckey () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let with_certify on f =
  let k = ckey () in
  let prev =
    Mutex.protect cert_lock (fun () ->
        let prev = Hashtbl.find_opt cert_overrides k in
        Hashtbl.replace cert_overrides k on;
        prev)
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect cert_lock (fun () ->
          match prev with
          | None -> Hashtbl.remove cert_overrides k
          | Some p -> Hashtbl.replace cert_overrides k p))
    f

let certify_enabled () =
  match
    Mutex.protect cert_lock (fun () ->
        Hashtbl.find_opt cert_overrides (ckey ()))
  with
  | Some on -> on
  | None -> config.ccertify

let clear_caches () =
  Mutex.protect reg_lock (fun () -> List.iter (fun r -> r.rclear ()) !registry)

let cache_stats () =
  Mutex.protect reg_lock (fun () ->
      List.fold_left
        (fun acc r ->
          let acc =
            match r.rcert_stats () with
            | Some s -> (r.rname ^ ".cert", s) :: acc
            | None -> acc
          in
          match r.rstats () with
          | Some s -> (r.rname, s) :: acc
          | None -> acc)
        [] !registry)

let store_for pass =
  if not config.cenabled then None
  else
    Mutex.protect pass.plock (fun () ->
        match pass.store with
        | Some (dir, c) when dir = config.cdir -> Some c
        | _ ->
          let c =
            Cache.create ~capacity:config.ccap ?disk_capacity:config.cdisk_cap
              ?dir:config.cdir ~name:pass.name ()
          in
          pass.store <- Some (config.cdir, c);
          Some c)

let cert_store_for pass =
  if not config.cenabled then None
  else
    Mutex.protect pass.plock (fun () ->
        match pass.cert_store with
        | Some (dir, c) when dir = config.cdir -> Some c
        | _ ->
          let c =
            Cache.create ~capacity:config.ccap ?disk_capacity:config.cdisk_cap
              ?dir:config.cdir ~name:(pass.name ^ ".cert") ()
          in
          pass.cert_store <- Some (config.cdir, c);
          Some c)

(* --- run log --- *)

type status = Ran | Hit | Disk_hit | Failed

let status_to_string = function
  | Ran -> "ran"
  | Hit -> "hit (memory)"
  | Disk_hit -> "hit (disk)"
  | Failed -> "failed"

let status_key = function
  | Ran -> "ran"
  | Hit -> "hit"
  | Disk_hit -> "disk_hit"
  | Failed -> "failed"

(* One journal per (domain, thread): concurrent compiles — the serve
   daemon runs one per request domain — each see only their own
   pass outcomes through [log]/[pp_explain].  Entries are kept in
   reverse order. *)
let journals : (int * int, (string * status) list ref) Hashtbl.t =
  Hashtbl.create 8

let jlock = Mutex.create ()

let jkey () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let reset_log () =
  Mutex.protect jlock (fun () -> Hashtbl.replace journals (jkey ()) (ref []))

let drop_log () =
  Mutex.protect jlock (fun () -> Hashtbl.remove journals (jkey ()))

let log () =
  Mutex.protect jlock (fun () ->
      match Hashtbl.find_opt journals (jkey ()) with
      | Some entries -> List.rev !entries
      | None -> [])

let append_log entries =
  Mutex.protect jlock (fun () ->
      let k = jkey () in
      let r =
        match Hashtbl.find_opt journals k with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace journals k r;
          r
      in
      List.iter (fun e -> r := e :: !r) entries)

let note_status name st =
  Mutex.protect jlock (fun () ->
      let k = jkey () in
      let entries =
        match Hashtbl.find_opt journals k with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace journals k r;
          r
      in
      entries := (name, st) :: !entries);
  Obs.count ("pipeline." ^ name ^ "." ^ status_key st) 1

let pp_explain ppf () =
  List.iter
    (fun (name, st) ->
      Format.fprintf ppf "explain: %-10s %s@." name (status_to_string st))
    (log ())

(* --- the manager --- *)

(* Certificate telemetry is emitted here — from the summary, on the
   fresh-check and cert-hit paths alike — never by the hooks, so warm
   QoR snapshots stay byte-identical to cold ones. *)
let emit_certificate name s us =
  Obs.count "equiv.certified_passes" 1;
  Obs.count "equiv.certificate.cones" s.cert_cones;
  Obs.count "equiv.certificate.nodes" s.cert_nodes;
  Obs.count "equiv.certificate_us" us;
  Obs.count ("pipeline." ^ name ^ ".certified") 1

let run_ambient ~param pass input =
  let out_key =
    Cache.digest
      (pass.name ^ "#" ^ string_of_int pass.version ^ "|" ^ param ^ "|"
     ^ input.key)
  in
  let exec () =
    Obs.span pass.name (fun () ->
        match pass.f input.value with
        | r -> r
        | exception Diag.Error d -> Error d
        | exception e -> Error (Diag.of_exn ~stage:pass.name e))
  in
  let replay v =
    if Obs.enabled () then
      Obs.span pass.name (fun () ->
          match pass.replay with None -> () | Some g -> g input.value v)
  in
  let certification v =
    match pass.certify with
    | Some check when certify_enabled () ->
      let t0 = Unix.gettimeofday () in
      let finish s =
        let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        emit_certificate pass.name s us;
        Ok ()
      in
      let fresh () =
        match Obs.span "certify" (fun () -> check input.value v) with
        | Certified s -> Ok s
        | Refuted msg ->
          Error
            (Diag.v ~stage:pass.name ("translation certificate refused: " ^ msg))
        | exception Diag.Error d -> Error d
        | exception e -> Error (Diag.of_exn ~stage:pass.name e)
      in
      let refused d =
        Obs.count ("pipeline." ^ pass.name ^ ".cert_failed") 1;
        Error d
      in
      (match cert_store_for pass with
       | None -> (
         match fresh () with Ok s -> finish s | Error d -> refused d)
       | Some cstore -> (
         match Cache.lookup cstore out_key with
         | `Memory s | `Disk s -> finish s
         | `Absent -> (
           match fresh () with
           | Ok s ->
             Cache.add cstore out_key s;
             finish s
           | Error d -> refused d)))
    | _ -> Ok ()
  in
  let ok st v =
    note_status pass.name st;
    Ok { value = v; key = out_key }
  in
  let failed d =
    note_status pass.name Failed;
    Error d
  in
  match store_for pass with
  | None -> (
    match exec () with
    | Ok v -> (
      match certification v with Ok () -> ok Ran v | Error d -> failed d)
    | Error d -> failed d)
  | Some cache -> (
    match Cache.lookup cache out_key with
    | `Memory v -> (
      match certification v with
      | Ok () ->
        replay v;
        ok Hit v
      | Error d -> failed d)
    | `Disk v -> (
      match certification v with
      | Ok () ->
        replay v;
        ok Disk_hit v
      | Error d -> failed d)
    | `Absent -> (
      match exec () with
      | Ok v -> (
        match certification v with
        | Ok () ->
          Cache.add cache out_key v;
          ok Ran v
        | Error d -> failed d)
      | Error d -> failed d))

let run ?(param = "") ?recorder pass input =
  match recorder with
  | None -> run_ambient ~param pass input
  | Some r -> Obs.with_recorder r (fun () -> run_ambient ~param pass input)
