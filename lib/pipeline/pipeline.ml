module Cache = Sc_cache.Cache
module Obs = Sc_obs.Obs

type 'a staged =
  { value : 'a
  ; key : string
  }

let value s = s.value
let key s = s.key

let source text = { value = text; key = Cache.digest ("source\x00" ^ text) }

let inject ~tag ~repr v =
  { value = v; key = Cache.digest (tag ^ "\x00" ^ repr) }

let pair a b = { value = (a.value, b.value); key = Cache.digest (a.key ^ "+" ^ b.key) }

let map f s = { value = f s.value; key = s.key }

(* --- global cache configuration --- *)

(* one store per pass, created lazily against the configuration that is
   current when the pass first runs; a dir change re-homes stores on
   their next use *)
type config =
  { mutable cdir : string option
  ; mutable ccap : int
  ; mutable cenabled : bool
  }

let config = { cdir = None; ccap = 256; cenabled = false }

type ('a, 'b) pass =
  { name : string
  ; version : int
  ; f : 'a -> ('b, Diag.t) result
  ; replay : ('a -> 'b -> unit) option
  ; mutable store : (string option * 'b Cache.t) option
  }

(* existentially-packed view of each pass for stats/clear *)
type registered =
  { rname : string
  ; rstats : unit -> Cache.stats option
  ; rclear : unit -> unit
  }

let registry : registered list ref = ref []
let reg_lock = Mutex.create ()

let register ?(version = 1) ?replay ~name f =
  let pass = { name; version; f; replay; store = None } in
  let entry =
    { rname = name
    ; rstats = (fun () -> Option.map (fun (_, c) -> Cache.stats c) pass.store)
    ; rclear = (fun () -> pass.store <- None)
    }
  in
  Mutex.protect reg_lock (fun () -> registry := entry :: !registry);
  pass

let enable_cache ?(capacity = 256) ?dir () =
  config.cdir <- dir;
  config.ccap <- capacity;
  config.cenabled <- true

let disable_cache () = config.cenabled <- false
let cache_enabled () = config.cenabled

let clear_caches () =
  Mutex.protect reg_lock (fun () -> List.iter (fun r -> r.rclear ()) !registry)

let cache_stats () =
  Mutex.protect reg_lock (fun () ->
      List.fold_left
        (fun acc r ->
          match r.rstats () with
          | Some s -> (r.rname, s) :: acc
          | None -> acc)
        [] !registry)

let store_for pass =
  if not config.cenabled then None
  else
    match pass.store with
    | Some (dir, c) when dir = config.cdir -> Some c
    | _ ->
      let c =
        Cache.create ~capacity:config.ccap ?dir:config.cdir ~name:pass.name ()
      in
      pass.store <- Some (config.cdir, c);
      Some c

(* --- run log --- *)

type status = Ran | Hit | Disk_hit | Failed

let status_to_string = function
  | Ran -> "ran"
  | Hit -> "hit (memory)"
  | Disk_hit -> "hit (disk)"
  | Failed -> "failed"

let status_key = function
  | Ran -> "ran"
  | Hit -> "hit"
  | Disk_hit -> "disk_hit"
  | Failed -> "failed"

let journal : (string * status) list ref = ref [] (* reverse order *)
let jlock = Mutex.create ()

let reset_log () = Mutex.protect jlock (fun () -> journal := [])
let log () = Mutex.protect jlock (fun () -> List.rev !journal)

let note_status name st =
  Mutex.protect jlock (fun () -> journal := (name, st) :: !journal);
  Obs.count ("pipeline." ^ name ^ "." ^ status_key st) 1

let pp_explain ppf () =
  List.iter
    (fun (name, st) ->
      Format.fprintf ppf "explain: %-10s %s@." name (status_to_string st))
    (log ())

(* --- the manager --- *)

let run ?(param = "") pass input =
  let out_key =
    Cache.digest
      (pass.name ^ "#" ^ string_of_int pass.version ^ "|" ^ param ^ "|"
     ^ input.key)
  in
  let exec () =
    Obs.span pass.name (fun () ->
        match pass.f input.value with
        | r -> r
        | exception Diag.Error d -> Error d
        | exception e -> Error (Diag.of_exn ~stage:pass.name e))
  in
  let replay v =
    if Obs.enabled () then
      Obs.span pass.name (fun () ->
          match pass.replay with None -> () | Some g -> g input.value v)
  in
  let ok st v =
    note_status pass.name st;
    Ok { value = v; key = out_key }
  in
  let failed d =
    note_status pass.name Failed;
    Error d
  in
  match store_for pass with
  | None -> (
    match exec () with Ok v -> ok Ran v | Error d -> failed d)
  | Some cache -> (
    match Cache.lookup cache out_key with
    | `Memory v ->
      replay v;
      ok Hit v
    | `Disk v ->
      replay v;
      ok Disk_hit v
    | `Absent -> (
      match exec () with
      | Ok v ->
        Cache.add cache out_key v;
        ok Ran v
      | Error d -> failed d))
