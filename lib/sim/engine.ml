open Sc_netlist

type t =
  { flat : Circuit.t
  ; values : Value.t array  (* per net *)
  ; gates : Circuit.gate_inst array
  ; fanout : int list array  (* net -> indices of gates reading it *)
  ; queued : bool array  (* per gate: already scheduled *)
  ; queue : int Queue.t
  ; mutable events : int
  ; name_index : (string, Circuit.net) Hashtbl.t
  }

let circuit t = t.flat

let schedule t idx =
  if not t.queued.(idx) then begin
    t.queued.(idx) <- true;
    Queue.add idx t.queue
  end

let set_net t n v =
  if not (Value.equal t.values.(n) v) then begin
    t.values.(n) <- v;
    List.iter (schedule t) t.fanout.(n)
  end

let settle t =
  while not (Queue.is_empty t.queue) do
    let idx = Queue.pop t.queue in
    t.queued.(idx) <- false;
    let g = t.gates.(idx) in
    if not (Gate.is_sequential g.Circuit.kind) then begin
      t.events <- t.events + 1;
      let ins = Array.map (fun n -> t.values.(n)) g.Circuit.ins in
      set_net t g.Circuit.out (Value.eval_gate g.Circuit.kind ins)
    end
  done

let create c =
  (match Circuit.check c with
  | [] -> ()
  | p :: _ -> invalid_arg ("Engine.create: " ^ p));
  if Circuit.has_combinational_cycle c then
    invalid_arg "Engine.create: combinational cycle";
  let flat = Circuit.flatten c in
  let gates = Array.of_list flat.Circuit.gates in
  let values = Array.make flat.Circuit.net_count Value.VX in
  values.(Circuit.false_net) <- Value.V0;
  values.(Circuit.true_net) <- Value.V1;
  let fanout = Array.make flat.Circuit.net_count [] in
  Array.iteri
    (fun idx g ->
      Array.iter (fun n -> fanout.(n) <- idx :: fanout.(n)) g.Circuit.ins)
    gates;
  let name_index = Hashtbl.create 64 in
  List.iter
    (fun (n, nm) -> Hashtbl.replace name_index nm n)
    flat.Circuit.net_names;
  let t =
    { flat
    ; values
    ; gates
    ; fanout
    ; queued = Array.make (Array.length gates) false
    ; queue = Queue.create ()
    ; events = 0
    ; name_index
    }
  in
  (* evaluate everything once so constants and defaults propagate *)
  Array.iteri (fun idx _ -> schedule t idx) gates;
  settle t;
  t

let port t name =
  match Circuit.find_port_opt t.flat name with
  | Some p -> p
  | None -> raise Not_found

let set_input t name vs =
  let p = port t name in
  if p.Circuit.dir <> Circuit.In then
    invalid_arg ("Engine.set_input: not an input port: " ^ name);
  if Array.length vs <> Array.length p.Circuit.bits then
    invalid_arg ("Engine.set_input: width mismatch on " ^ name);
  Array.iteri (fun i n -> set_net t n vs.(i)) p.Circuit.bits;
  settle t

let set_input_int t name v =
  let p = port t name in
  let w = Array.length p.Circuit.bits in
  set_input t name
    (Array.init w (fun i -> Value.of_bool (v land (1 lsl i) <> 0)))

let force_registers t v =
  Array.iter
    (fun g ->
      if Gate.is_sequential g.Circuit.kind then set_net t g.Circuit.out v)
    t.gates;
  settle t

let step t =
  (* sample all flip-flop inputs simultaneously, then update outputs *)
  let updates = ref [] in
  Array.iter
    (fun g ->
      match g.Circuit.kind with
      | Gate.Dff ->
        updates := (g.Circuit.out, t.values.(g.Circuit.ins.(0))) :: !updates
      | Gate.Dffe ->
        let d = t.values.(g.Circuit.ins.(0))
        and en = t.values.(g.Circuit.ins.(1)) in
        let q = t.values.(g.Circuit.out) in
        let next =
          match en with
          | Value.V1 -> d
          | Value.V0 -> q
          | Value.VX -> if Value.equal d q then d else Value.VX
        in
        updates := (g.Circuit.out, next) :: !updates
      | _ -> ())
    t.gates;
  List.iter (fun (n, v) -> set_net t n v) !updates;
  settle t

let run t n =
  for _ = 1 to n do
    step t
  done

let get_output t name =
  let p = port t name in
  Array.map (fun n -> t.values.(n)) p.Circuit.bits

let get_output_int t name =
  let vs = get_output t name in
  let rec go i acc =
    if i >= Array.length vs then Some acc
    else
      match Value.to_bool vs.(i) with
      | Some true -> go (i + 1) (acc lor (1 lsl i))
      | Some false -> go (i + 1) acc
      | None -> None
  in
  go 0 0

let net_value t n = t.values.(n)

let net_by_name t name = Hashtbl.find_opt t.name_index name

let events t = t.events

let port_snapshot t =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf p.Circuit.port_name;
      Buffer.add_char buf '=';
      (* msb first for readability *)
      for i = Array.length p.Circuit.bits - 1 downto 0 do
        Buffer.add_char buf (Value.to_char t.values.(p.Circuit.bits.(i)))
      done;
      Buffer.add_char buf ' ')
    t.flat.Circuit.ports;
  String.trim (Buffer.contents buf)
