(** Three-valued logic for simulation: 0, 1 and unknown.

    The X value gives honest answers about uninitialized state: a
    flip-flop that was never loaded reads X, and X is contagious except
    through controlling inputs (0 AND X = 0, 1 OR X = 1). *)

type t = V0 | V1 | VX

(** [true] is {!V1}, [false] is {!V0}. *)
val of_bool : bool -> t

(** [None] on {!VX}. *)
val to_bool : t -> bool option

(** [false] exactly on {!VX}. *)
val is_known : t -> bool

(** Three-valued NOT: X stays X. *)
val inv : t -> t

(** Three-valued AND: 0 dominates, X otherwise contagious. *)
val and_ : t -> t -> t

(** Three-valued OR: 1 dominates, X otherwise contagious. *)
val or_ : t -> t -> t

(** Three-valued XOR: any X input yields X. *)
val xor : t -> t -> t

(** [mux a0 a1 sel]: X select resolves only when both ways agree. *)
val mux : t -> t -> t -> t

(** [eval_gate kind ins] — the 3-valued semantics of a combinational gate.
    @raise Invalid_argument on sequential kinds. *)
val eval_gate : Sc_netlist.Gate.kind -> t array -> t

(** Structural equality ([VX] equals only [VX]). *)
val equal : t -> t -> bool

(** ['0'], ['1'] or ['x'] — the waveform-dump alphabet. *)
val to_char : t -> char

(** Pretty-print as {!to_char}. *)
val pp : Format.formatter -> t -> unit
