(** Event-driven gate-level simulation.

    The engine flattens the circuit once, builds fanout tables and then
    propagates value changes through delta cycles until quiescence
    ({!settle}).  {!step} is one synchronous clock edge: all flip-flops
    sample their inputs simultaneously, then the combinational logic
    settles.  This is the "verification by simulation" role the paper
    assigns to behavioral/structural descriptions. *)

open Sc_netlist

type t

(** @raise Invalid_argument when the circuit fails {!Circuit.check} or has
    a combinational cycle. *)
val create : Circuit.t -> t

val circuit : t -> Circuit.t
(** The flattened circuit being simulated. *)

(** [set_input t name values] drives an input port (index 0 = lsb);
    combinational logic settles immediately.
    @raise Not_found on unknown port. *)
val set_input : t -> string -> Value.t array -> unit

(** [set_input_int t name v] drives the port with the binary encoding
    of [v]. *)
val set_input_int : t -> string -> int -> unit

(** [force_registers t v] drives every flip-flop output to [v] and lets
    the logic settle — a power-on-reset jig.  [Sc_equiv] counterexamples
    are stated from the all-zero state; forcing [V0] before replay makes
    the engine reproduce them exactly. *)
val force_registers : t -> Value.t -> unit

(** One clock edge: flip-flops load, then logic settles. *)
val step : t -> unit

(** [run t n] — [n] clock edges. *)
val run : t -> int -> unit

(** The current three-valued settled value of an output port (lsb
    first). *)
val get_output : t -> string -> Value.t array

(** [None] when any bit is X. *)
val get_output_int : t -> string -> int option

(** The settled value of one net of the flattened circuit. *)
val net_value : t -> Circuit.net -> Value.t

(** [net_by_name t name] looks a net up by its hierarchical debug name. *)
val net_by_name : t -> string -> Circuit.net option

(** Number of gate evaluations performed so far (simulation effort). *)
val events : t -> int

(** [vcd_line t] — all port values, as a compact "name=bits" string. *)
val port_snapshot : t -> string
