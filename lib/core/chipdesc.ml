type source_module =
  { sm_name : string
  ; sm_text : string
  }

type port_decl =
  { pd_name : string
  ; pd_width : int
  }

type instance =
  { ci_name : string
  ; ci_module : string
  }

type endpoint =
  | Cport of string
  | Ipin of string * string

type chip_decl =
  { ch_name : string
  ; ch_inputs : port_decl list
  ; ch_outputs : port_decl list
  ; ch_insts : instance list
  ; ch_connects : (endpoint * endpoint) list
  }

type t =
  { modules : source_module list
  ; chip : chip_decl option
  }

(* --- lexical split ---------------------------------------------------- *)

let strip_comment line =
  let rec find i =
    if i + 1 >= String.length line then None
    else if line.[i] = '-' && line.[i + 1] = '-' then Some i
    else find (i + 1)
  in
  match find 0 with None -> line | Some i -> String.sub line 0 i

let first_word line =
  let line = strip_comment line in
  let n = String.length line in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip (i + 1) else i in
  let s = skip 0 in
  let rec take i =
    if i < n && (line.[i] = '_' || ('a' <= line.[i] && line.[i] <= 'z')
                 || ('A' <= line.[i] && line.[i] <= 'Z')
                 || ('0' <= line.[i] && line.[i] <= '9'))
    then take (i + 1)
    else i
  in
  String.sub line s (take s - s)

let is_modular src =
  List.exists (fun l -> first_word l = "chip") (String.split_on_char '\n' src)

(* Cut at top-level "module"/"chip" keyword lines.  The ISP grammar
   nests [end]s, so keyword lines — not end-counting — delimit blocks;
   both keywords are only ever top-level in this dialect. *)
let blocks src =
  let lines = String.split_on_char '\n' src in
  let flush acc cur =
    match cur with
    | None -> acc
    | Some (kw, ls) -> (kw, String.concat "\n" (List.rev ls)) :: acc
  in
  let acc, cur =
    List.fold_left
      (fun (acc, cur) line ->
        match first_word line with
        | ("module" | "chip") as kw -> (flush acc cur, Some (kw, [ line ]))
        | _ -> (
          match cur with
          | None -> (acc, None) (* preamble before the first block *)
          | Some (kw, ls) -> (acc, Some (kw, line :: ls))))
      ([], None) lines
  in
  List.rev (flush acc cur)

(* --- chip block tokens ------------------------------------------------ *)

type token = Ident of string | Int of int | Sym of char

let tokenize text =
  let buf = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = strip_comment line in
      let n = String.length line in
      let i = ref 0 in
      while !i < n do
        let c = line.[!i] in
        if c = ' ' || c = '\t' || c = '\r' then incr i
        else if ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c = '_'
        then begin
          let s = !i in
          while
            !i < n
            &&
            let c = line.[!i] in
            ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
            || ('0' <= c && c <= '9') || c = '_'
          do
            incr i
          done;
          buf := Ident (String.sub line s (!i - s)) :: !buf
        end
        else if '0' <= c && c <= '9' then begin
          let s = !i in
          while !i < n && '0' <= line.[!i] && line.[!i] <= '9' do
            incr i
          done;
          buf := Int (int_of_string (String.sub line s (!i - s))) :: !buf
        end
        else begin
          buf := Sym c :: !buf;
          incr i
        end
      done)
    lines;
  List.rev !buf

(* --- chip block parser ------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_chip text =
  let toks = ref (tokenize text) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> None
    | t :: rest ->
      toks := rest;
      Some t
  in
  let expect_sym c =
    match next () with
    | Some (Sym s) when s = c -> Ok ()
    | _ -> err "chip %s: expected '%c'" text c
  in
  let ident what =
    match next () with
    | Some (Ident s) -> Ok s
    | _ -> err "chip block: expected %s" what
  in
  let rec ports acc =
    let* name = ident "a port name" in
    let* () = expect_sym '[' in
    let* w =
      match next () with
      | Some (Int w) when w >= 1 -> Ok w
      | _ -> err "port %s: expected a positive width" name
    in
    let* () = expect_sym ']' in
    let acc = { pd_name = name; pd_width = w } :: acc in
    match next () with
    | Some (Sym ',') -> ports acc
    | Some (Sym ';') -> Ok (List.rev acc)
    | _ -> err "port list after %s: expected ',' or ';'" name
  in
  let endpoint () =
    let* a = ident "a port or instance reference" in
    match peek () with
    | Some (Sym '.') ->
      ignore (next ());
      let* p = ident (Printf.sprintf "a port of instance %s" a) in
      Ok (Ipin (a, p))
    | _ -> Ok (Cport a)
  in
  match next () with
  | Some (Ident "chip") -> (
    let* name = ident "the chip name" in
    let* () = expect_sym ';' in
    let rec sections inputs outputs insts conns =
      match next () with
      | Some (Ident "inputs") ->
        let* ps = ports [] in
        sections (inputs @ ps) outputs insts conns
      | Some (Ident "outputs") ->
        let* ps = ports [] in
        sections inputs (outputs @ ps) insts conns
      | Some (Ident "instances") ->
        let rec insts_loop acc =
          match peek () with
          | Some (Ident ("inputs" | "outputs" | "instances" | "connect" | "end"))
          | None ->
            Ok acc
          | _ ->
            let* iname = ident "an instance name" in
            let* () = expect_sym ':' in
            let* mname = ident "a module name" in
            let* () = expect_sym ';' in
            insts_loop (acc @ [ { ci_name = iname; ci_module = mname } ])
        in
        let* is = insts_loop [] in
        sections inputs outputs (insts @ is) conns
      | Some (Ident "connect") ->
        let rec conns_loop acc =
          match peek () with
          | Some (Ident ("inputs" | "outputs" | "instances" | "connect" | "end"))
          | None ->
            Ok acc
          | _ ->
            let* sink = endpoint () in
            let* () = expect_sym '=' in
            let* src = endpoint () in
            let* () = expect_sym ';' in
            conns_loop (acc @ [ (sink, src) ])
        in
        let* cs = conns_loop [] in
        sections inputs outputs insts (conns @ cs)
      | Some (Ident "end") ->
        Ok
          { ch_name = name
          ; ch_inputs = inputs
          ; ch_outputs = outputs
          ; ch_insts = insts
          ; ch_connects = conns
          }
      | Some _ -> err "chip %s: unexpected token (expected a section or end)" name
      | None -> err "chip %s: missing end" name
    in
    sections [] [] [] [])
  | _ -> err "chip block does not start with 'chip'"

let module_name text =
  match tokenize text with
  | Ident "module" :: Ident n :: _ -> Ok n
  | _ -> Error "module block does not start with 'module <name>;'"

let dup_by f l =
  let rec go seen = function
    | [] -> None
    | x :: rest -> if List.mem (f x) seen then Some x else go (f x :: seen) rest
  in
  go [] l

let split src =
  let bs = blocks src in
  if bs = [] then err "no module or chip blocks found"
  else
    let* modules, chips =
      List.fold_left
        (fun acc (kw, text) ->
          let* ms, cs = acc in
          match kw with
          | "module" ->
            let* n = module_name text in
            Ok (ms @ [ { sm_name = n; sm_text = text } ], cs)
          | _ ->
            let* c = parse_chip text in
            Ok (ms, cs @ [ c ]))
        (Ok ([], []))
        bs
    in
    let* chip =
      match chips with
      | [] -> Ok None
      | [ c ] -> Ok (Some c)
      | c :: _ -> err "multiple chip blocks (first: %s)" c.ch_name
    in
    let* () =
      match dup_by (fun m -> m.sm_name) modules with
      | Some m -> err "duplicate module %s" m.sm_name
      | None -> Ok ()
    in
    match chip with
    | None -> Ok { modules; chip }
    | Some c -> (
      let* () =
        match dup_by (fun i -> i.ci_name) c.ch_insts with
        | Some i -> err "chip %s: duplicate instance %s" c.ch_name i.ci_name
        | None -> Ok ()
      in
      match
        List.find_opt
          (fun i ->
            not (List.exists (fun m -> m.sm_name = i.ci_module) modules))
          c.ch_insts
      with
      | Some i ->
        err "chip %s: instance %s names unknown module %s" c.ch_name i.ci_name
          i.ci_module
      | None -> Ok { modules; chip })

(* --- signature-level resolution --------------------------------------- *)

type bit =
  { b_end : endpoint
  ; b_idx : int
  }

type chip_net =
  { cn_src : bit
  ; cn_sinks : bit list
  }

let bit_name ep ~width idx =
  let base = match ep with Cport p -> p | Ipin (_, p) -> p in
  if width = 1 then base else Printf.sprintf "%s[%d]" base idx

let resolve chip ~sigs =
  let module Sig = Sc_netlist.Signature in
  (* direction seen from the chip's router: `Source can drive a net,
     `Sink must be driven *)
  let classify ep =
    match ep with
    | Cport p -> (
      match
        ( List.find_opt (fun d -> d.pd_name = p) chip.ch_inputs
        , List.find_opt (fun d -> d.pd_name = p) chip.ch_outputs )
      with
      | Some d, _ ->
        Ok (`Source, d.pd_width, Printf.sprintf "chip input %s[%d]" p d.pd_width)
      | _, Some d ->
        Ok (`Sink, d.pd_width, Printf.sprintf "chip output %s[%d]" p d.pd_width)
      | None, None -> err "chip %s has no port %s" chip.ch_name p)
    | Ipin (iname, pname) -> (
      match List.find_opt (fun x -> x.ci_name = iname) chip.ch_insts with
      | None -> err "unknown instance %s" iname
      | Some inst -> (
        match sigs inst.ci_module with
        | None -> err "no signature for module %s" inst.ci_module
        | Some s -> (
          match Sig.find s pname with
          | None ->
            err "instance %s: module %s has no port %s" iname inst.ci_module
              pname
          | Some p ->
            let dir, word =
              match p.Sig.sdir with
              | Sc_netlist.Circuit.In -> (`Sink, "in")
              | Sc_netlist.Circuit.Out -> (`Source, "out")
            in
            Ok
              ( dir
              , p.Sig.swidth
              , Printf.sprintf "%s.%s (module %s, %s %s[%d])" iname pname
                  inst.ci_module word pname p.Sig.swidth ))))
  in
  let* conns =
    List.fold_left
      (fun acc (sink, src) ->
        let* acc = acc in
        let* sdir, sw, sdescr = classify sink in
        let* ddir, dw, ddescr = classify src in
        if sdir <> `Sink then
          err "connection sink %s is a driver, not a destination" sdescr
        else if ddir <> `Source then
          err "connection source %s is an input, it cannot drive" ddescr
        else if sw <> dw then
          err "width mismatch: %s connected to %s" sdescr ddescr
        else Ok ((sink, src, sw, sdescr) :: acc))
      (Ok []) chip.ch_connects
  in
  let conns = List.rev conns in
  (* one driver per sink bit *)
  let sink_bits : (endpoint * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let* () =
    List.fold_left
      (fun acc (sink, _, w, sdescr) ->
        let* () = acc in
        let rec go k =
          if k = w then Ok ()
          else if Hashtbl.mem sink_bits (sink, k) then
            err "%s bit %d is driven more than once" sdescr k
          else begin
            Hashtbl.add sink_bits (sink, k) ();
            go (k + 1)
          end
        in
        go 0)
      (Ok ()) conns
  in
  (* completeness: every chip output and every instance input driven *)
  let* () =
    List.fold_left
      (fun acc d ->
        let* () = acc in
        let rec go k =
          if k = d.pd_width then Ok ()
          else if Hashtbl.mem sink_bits (Cport d.pd_name, k) then go (k + 1)
          else
            err "chip output %s bit %d is not driven by any connection"
              d.pd_name k
        in
        go 0)
      (Ok ()) chip.ch_outputs
  in
  let* () =
    List.fold_left
      (fun acc inst ->
        let* () = acc in
        match sigs inst.ci_module with
        | None -> err "no signature for module %s" inst.ci_module
        | Some s ->
          List.fold_left
            (fun acc (p : Sig.port_sig) ->
              let* () = acc in
              if p.Sig.sdir <> Sc_netlist.Circuit.In then Ok ()
              else
                let rec go k =
                  if k = p.Sig.swidth then Ok ()
                  else if
                    Hashtbl.mem sink_bits (Ipin (inst.ci_name, p.Sig.sname), k)
                  then go (k + 1)
                  else
                    err
                      "instance %s (module %s): input %s bit %d is not \
                       connected"
                      inst.ci_name inst.ci_module p.Sig.sname k
                in
                go 0)
            (Ok ()) s.Sig.sports)
      (Ok ()) chip.ch_insts
  in
  (* group by source bit so fanout shares one net *)
  let tbl : (endpoint * int, bit list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (sink, src, w, _) ->
      for k = 0 to w - 1 do
        let key = (src, k) in
        (if not (Hashtbl.mem tbl key) then begin
           Hashtbl.add tbl key (ref []);
           order := key :: !order
         end);
        let r = Hashtbl.find tbl key in
        r := { b_end = sink; b_idx = k } :: !r
      done)
    conns;
  Ok
    (List.rev_map
       (fun ((src_ep, k) as key) ->
         { cn_src = { b_end = src_ep; b_idx = k }
         ; cn_sinks = List.rev !(Hashtbl.find tbl key)
         })
       !order)

let endpoint_repr = function
  | Cport p -> p
  | Ipin (i, p) -> i ^ "." ^ p

let decl_repr c =
  Printf.sprintf "chip %s;inputs %s;outputs %s;instances %s;connect %s"
    c.ch_name
    (String.concat ","
       (List.map (fun d -> Printf.sprintf "%s[%d]" d.pd_name d.pd_width) c.ch_inputs))
    (String.concat ","
       (List.map (fun d -> Printf.sprintf "%s[%d]" d.pd_name d.pd_width) c.ch_outputs))
    (String.concat ","
       (List.map (fun i -> i.ci_name ^ ":" ^ i.ci_module) c.ch_insts))
    (String.concat ","
       (List.map
          (fun (sink, src) -> endpoint_repr sink ^ "=" ^ endpoint_repr src)
          c.ch_connects))
