(** Multi-module chip descriptions.

    A modular source file holds several ordinary ISP [module] blocks
    plus one [chip] block naming the top level:

    {v
    module alu4; ... end
    module regfile; ... end

    chip system;
    inputs op[2], a[4];
    outputs y[4];
    instances
      u_alu : alu4;
      u_reg : regfile;
    connect
      u_alu.a = a;
      u_reg.d = u_alu.y;
      y = u_reg.q;
    end
    v}

    {!split} is purely lexical: it cuts the file at top-level
    [module]/[chip] keywords, so each module block's {e raw text} is
    the unit of content addressing — editing one module leaves every
    other block's digest (and its cached sub-pipeline) untouched.
    Semantic binding against the compiled modules' interface
    signatures happens in {!resolve}, once signatures exist. *)

type source_module =
  { sm_name : string
  ; sm_text : string  (** the raw block text, the digest unit *)
  }

type port_decl =
  { pd_name : string
  ; pd_width : int
  }

type instance =
  { ci_name : string
  ; ci_module : string
  }

type endpoint =
  | Cport of string  (** a chip-level port *)
  | Ipin of string * string  (** (instance name, port name) *)

type chip_decl =
  { ch_name : string
  ; ch_inputs : port_decl list
  ; ch_outputs : port_decl list
  ; ch_insts : instance list
  ; ch_connects : (endpoint * endpoint) list  (** (sink, source) pairs *)
  }

type t =
  { modules : source_module list  (** in file order *)
  ; chip : chip_decl option
  }

val is_modular : string -> bool
(** The source contains a top-level [chip] block (cheap, lexical). *)

val split : string -> (t, string) result
(** Cut the source into module blocks and parse the chip block.
    Lexical/syntactic errors only; duplicate module or instance names
    and instances of unknown modules are reported here too. *)

(** {2 Signature-level resolution} *)

type bit =
  { b_end : endpoint
  ; b_idx : int
  }

type chip_net =
  { cn_src : bit
  ; cn_sinks : bit list
  }

val bit_name : endpoint -> width:int -> int -> string
(** Bit-level pin name: ["a"] for a 1-wide port, ["a[3]"] otherwise
    (instance endpoints render just the port part — the instance is
    carried separately). *)

val resolve :
  chip_decl ->
  sigs:(string -> Sc_netlist.Signature.t option) ->
  (chip_net list, string) result
(** Bind the chip's connections against each instance module's
    interface signature: directions (a sink is a chip output or an
    instance input; a source is a chip input or an instance output),
    widths, single-driver discipline, and completeness (every instance
    input and chip output driven).  Nets are grouped by source bit, so
    fanout shares one net.  Errors name the instances, modules and
    ports involved. *)

val decl_repr : chip_decl -> string
(** Canonical one-line rendering of the chip declaration — the chip
    block's contribution to the assembly pass's cache key (equal reprs
    imply interchangeable declarations). *)
