open Sc_netlist

(* --- behavioral sources --- *)

let counter_src =
  {|
-- 4-bit loadable counter with synchronous reset
module counter;
inputs reset[1], load[1], data[4];
outputs q[4];
registers count[4];
behavior
  if reset == 1 then count := 0;
  else
    if load == 1 then count := data;
    else count := count + 1;
    end
  end
  q := count;
end
|}

let traffic_src =
  {|
-- two-street traffic light with a car sensor on the side street
module traffic;
inputs car[1], reset[1];
outputs ns[3], ew[3];
registers state[2], timer[2];
behavior
  if reset == 1 then state := 0; timer := 0;
  else
    decode state
      0: if car == 1 then state := 1; end
      1: state := 2; timer := 0;
      2: if timer == 3 then state := 3; else timer := timer + 1; end
      3: state := 0;
    end
  end
  decode state
    0: ns := 1; ew := 4;
    1: ns := 2; ew := 4;
    2: ns := 4; ew := 1;
    3: ns := 4; ew := 2;
  end
end
|}

let alu_src =
  {|
-- accumulator ALU: add, subtract, and, xor; zero flag
module alu4;
inputs op[2], a[4], b[4];
outputs y[4], z[1];
registers acc[4];
behavior
  decode op
    0: acc := a + b;
    1: acc := a - b;
    2: acc := a & b;
    3: acc := a ^ b;
  end
  y := acc;
  z := acc == 0;
end
|}

let gray_src =
  {|
-- 3-bit Gray-code cycle
module gray;
inputs reset[1];
outputs g[3];
registers s[3];
behavior
  if reset == 1 then s := 0;
  else s := s + 1;
  end
  g := s ^ (s >> 1);
end
|}

let seqdet_src =
  {|
-- Mealy detector for the overlapping pattern 1011
module seqdet;
inputs x[1], reset[1];
outputs hit[1];
registers st[2];
behavior
  hit := 0;
  if reset == 1 then st := 0;
  else
    decode st
      0: if x == 1 then st := 1; else st := 0; end
      1: if x == 1 then st := 1; else st := 2; end
      2: if x == 1 then st := 3; else st := 0; end
      3: if x == 1 then st := 1; hit := 1; else st := 2; end
    end
  end
end
|}

let pdp8_src =
  {|
-- the mini PDP-8: 8-bit accumulator machine, 4-bit PC, four scratch
-- words standing in for core memory; instructions arrive on a port.
-- encoding: inst[7:5] opcode, inst[4:3] scratch address,
-- inst[2:0] OPR micro-ops / low JMP target bits.
-- opcodes: 0 AND, 1 TAD, 2 ISZ, 3 DCA, 5 JMP, 7 OPR (4, 6 are no-ops)
-- written module-style: one memory read bus and one shared adder
module pdp8;
inputs inst[8], reset[1];
outputs pc_out[4], ac_out[8];
registers pc[4], ac[8], m0[8], m1[8], m2[8], m3[8];
wires op[3], mem[8], adda[8], addb[8], sum[8];
behavior
  op := inst >> 5;
  decode (inst >> 3) & 3
    0: mem := m0;
    1: mem := m1;
    2: mem := m2;
    3: mem := m3;
  end
  -- shared adder operand selection:
  --   TAD: ac + mem; ISZ: mem + 1; OPR IAC: ac + 1; OPR CMA+IAC: ~ac + 1
  adda := ac;
  addb := 1;
  if op == 1 then addb := mem; end
  if op == 2 then adda := mem; end
  if op == 7 then
    if inst[1] == 1 then adda := ~ac; end
  end
  sum := adda + addb;
  if reset == 1 then
    pc := 0; ac := 0; m0 := 0; m1 := 0; m2 := 0; m3 := 0;
  else
    pc := pc + 1;
    decode op
      0: ac := ac & mem;
      1: ac := sum;
      2: decode (inst >> 3) & 3
           0: m0 := sum;
           1: m1 := sum;
           2: m2 := sum;
           3: m3 := sum;
         end
         if sum == 0 then pc := pc + 2; end
      3: decode (inst >> 3) & 3
           0: m0 := ac;
           1: m1 := ac;
           2: m2 := ac;
           3: m3 := ac;
         end
         ac := 0;
      5: pc := inst & 15;
      7: decode inst & 7
           1: ac := 0;
           2: ac := ~ac;
           3: ac := 255;
           4: ac := sum;
           5: ac := 1;
           6: ac := sum;
           7: ac := 0;
         end
    end
  end
  pc_out := pc;
  ac_out := ac;
end
|}

let pdp8_dp_src =
  {|
-- the PDP-8 datapath alone: scratch read bus, shared adder with its
-- operand selection, and the zero flag; register-free so it can be
-- equivalence-checked combinationally against the hand sub-blocks
module pdp8_dp;
inputs inst[8], ac[8], m0[8], m1[8], m2[8], m3[8];
outputs mem[8], sum[8], sum_zero[1];
wires op[3], membus[8], adda[8], addb[8], s[8];
behavior
  op := inst >> 5;
  decode (inst >> 3) & 3
    0: membus := m0;
    1: membus := m1;
    2: membus := m2;
    3: membus := m3;
  end
  mem := membus;
  adda := ac;
  addb := 1;
  if op == 1 then addb := membus; end
  if op == 2 then adda := membus; end
  if op == 7 then
    if inst[1] == 1 then adda := ~ac; end
  end
  s := adda + addb;
  sum := s;
  sum_zero := s == 0;
end
|}

let parse src =
  match Sc_rtl.Parser.parse src with
  | Ok d -> d
  | Error e -> Sc_pipeline.Diag.fail ~stage:"parse" e

(* --- hand-built structural baselines --- *)

(* A hand incrementer: half-adder chain, much cheaper than a general
   ripple adder built from full adders. *)
let increment b q =
  let w = Array.length q in
  let out = Array.make w Builder.const0 in
  let carry = ref Builder.const1 in
  for i = 0 to w - 1 do
    out.(i) <- Builder.xor2 b q.(i) !carry;
    if i < w - 1 then carry := Builder.and2 b q.(i) !carry
  done;
  out

let reset_gate b reset d = Array.map (fun n -> Builder.and2 b n (Builder.not_ b reset)) d

let hand_counter () =
  let b = Builder.create "counter_hand" in
  let reset = (Builder.input b "reset" 1).(0) in
  let load = (Builder.input b "load" 1).(0) in
  let data = Builder.input b "data" 4 in
  let q = Builder.fresh_vec b 4 in
  let inc = increment b q in
  let next = Builder.mux_vec b ~sel:load inc data in
  let next = reset_gate b reset next in
  Array.iteri (fun i d -> Builder.gate_into b Gate.Dff [| d |] q.(i)) next;
  Builder.output b "q" q;
  Builder.finish b

let hand_traffic () =
  let b = Builder.create "traffic_hand" in
  let car = (Builder.input b "car" 1).(0) in
  let reset = (Builder.input b "reset" 1).(0) in
  let s = Builder.fresh_vec b 2 in
  let t = Builder.fresh_vec b 2 in
  let n0 = Builder.not_ b s.(0) and n1 = Builder.not_ b s.(1) in
  let s_is k =
    match k with
    | 0 -> Builder.and2 b n1 n0
    | 1 -> Builder.and2 b n1 s.(0)
    | 2 -> Builder.and2 b s.(1) n0
    | _ -> Builder.and2 b s.(1) s.(0)
  in
  let s0' = s_is 0 and s1' = s_is 1 and s2' = s_is 2 in
  let t_full = Builder.and2 b t.(1) t.(0) in
  (* hand-minimized next state: ns1 = s1 xor s0 pattern; written directly *)
  let ns1 = Builder.or2 b s1' s2' in
  let ns0 =
    Builder.or2 b (Builder.and2 b s0' car) (Builder.and2 b s2' t_full)
  in
  (* timer: cleared in s1, counts in s2 while not full *)
  let count_en = Builder.and2 b s2' (Builder.not_ b t_full) in
  let tinc = increment b t in
  let nt0 = Builder.and2 b (Builder.mux2 b ~sel:count_en t.(0) tinc.(0)) (Builder.not_ b s1') in
  let nt1 = Builder.and2 b (Builder.mux2 b ~sel:count_en t.(1) tinc.(1)) (Builder.not_ b s1') in
  let next = reset_gate b reset [| ns0; ns1; nt0; nt1 |] in
  Builder.gate_into b Gate.Dff [| next.(0) |] s.(0);
  Builder.gate_into b Gate.Dff [| next.(1) |] s.(1);
  Builder.gate_into b Gate.Dff [| next.(2) |] t.(0);
  Builder.gate_into b Gate.Dff [| next.(3) |] t.(1);
  (* lamps decoded straight from the state bits *)
  let s3' = s_is 3 in
  Builder.output b "ns" [| s0'; s1'; Builder.or2 b s2' s3' |];
  Builder.output b "ew" [| s2'; s3'; Builder.or2 b s0' s1' |];
  Builder.finish b

let hand_alu () =
  let b = Builder.create "alu_hand" in
  let op = Builder.input b "op" 2 in
  let a = Builder.input b "a" 4 in
  let bv = Builder.input b "b" 4 in
  let acc = Builder.fresh_vec b 4 in
  (* one shared adder does add and subtract *)
  let sub = Builder.and2 b op.(0) (Builder.not_ b op.(1)) in
  let b_adj = Array.map (fun n -> Builder.xor2 b n sub) bv in
  let sum, _ = Builder.adder b ~cin:sub a b_adj in
  let ands = Array.map2 (Builder.and2 b) a bv in
  let xors = Array.map2 (Builder.xor2 b) a bv in
  let logic = Builder.mux_vec b ~sel:op.(0) ands xors in
  let next = Builder.mux_vec b ~sel:op.(1) sum logic in
  Array.iteri (fun i d -> Builder.gate_into b Gate.Dff [| d |] acc.(i)) next;
  Builder.output b "y" acc;
  Builder.output b "z"
    [| Builder.not_ b (Builder.or_reduce b (Array.to_list acc)) |];
  Builder.finish b

let hand_pdp8 () =
  let b = Builder.create "pdp8_hand" in
  let inst = Builder.input b "inst" 8 in
  let reset = (Builder.input b "reset" 1).(0) in
  let pc = Builder.fresh_vec b 4 in
  let ac = Builder.fresh_vec b 8 in
  let m = Array.init 4 (fun _ -> Builder.fresh_vec b 8) in
  (* opcode decode (one-hot) *)
  let i5 = inst.(5) and i6 = inst.(6) and i7 = inst.(7) in
  let n5 = Builder.not_ b i5 and n6 = Builder.not_ b i6 and n7 = Builder.not_ b i7 in
  let op_and = Builder.and_reduce b [ n7; n6; n5 ] in
  let op_tad = Builder.and_reduce b [ n7; n6; i5 ] in
  let op_isz = Builder.and_reduce b [ n7; i6; n5 ] in
  let op_dca = Builder.and_reduce b [ n7; i6; i5 ] in
  let op_jmp = Builder.and_reduce b [ i7; n6; i5 ] in
  let op_opr = Builder.and_reduce b [ i7; i6; i5 ] in
  (* scratch-word read bus *)
  let mem =
    Array.init 8 (fun k ->
        let low = Builder.mux2 b ~sel:inst.(3) m.(0).(k) m.(1).(k) in
        let high = Builder.mux2 b ~sel:inst.(3) m.(2).(k) m.(3).(k) in
        Builder.mux2 b ~sel:inst.(4) low high)
  in
  (* one shared 8-bit adder:
       TAD: ac + mem;  ISZ: mem + 1;  OPR IAC: ac + 1;  OPR CMA+IAC: ~ac + 1 *)
  let cma = Builder.and2 b op_opr inst.(1) in
  let ac_or_not = Array.map (fun n -> Builder.xor2 b n cma) ac in
  let add_a = Builder.mux_vec b ~sel:op_isz ac_or_not mem in
  let one = Array.init 8 (fun i -> if i = 0 then Builder.const1 else Builder.const0) in
  let add_b = Builder.mux_vec b ~sel:op_tad one mem in
  let sum, _ = Builder.adder b add_a add_b in
  let sum_zero = Builder.not_ b (Builder.or_reduce b (Array.to_list sum)) in
  (* accumulator next value *)
  let and_val = Array.map2 (Builder.and2 b) ac mem in
  let zero8 = Array.make 8 Builder.const0 in
  let ones8 = Array.make 8 Builder.const1 in
  let not_ac = Array.map (Builder.not_ b) ac in
  (* OPR table on inst[2:0]: 0 hold, 1 zero, 2 ~ac, 3 255, 4 sum, 5 one,
     6 sum, 7 zero *)
  let opr_low0 = Builder.mux_vec b ~sel:inst.(0) ac zero8 in
  let opr_low1 = Builder.mux_vec b ~sel:inst.(0) not_ac ones8 in
  let opr_low = Builder.mux_vec b ~sel:inst.(1) opr_low0 opr_low1 in
  let opr_high0 = Builder.mux_vec b ~sel:inst.(0) sum one in
  let opr_high1 = Builder.mux_vec b ~sel:inst.(0) sum zero8 in
  let opr_high = Builder.mux_vec b ~sel:inst.(1) opr_high0 opr_high1 in
  let opr_val = Builder.mux_vec b ~sel:inst.(2) opr_low opr_high in
  let ac_next = Builder.mux_vec b ~sel:op_tad and_val sum in
  let ac_next = Builder.mux_vec b ~sel:op_opr ac_next opr_val in
  let ac_next = Builder.mux_vec b ~sel:op_dca ac_next zero8 in
  let ac_en =
    Builder.or_reduce b [ op_and; op_tad; op_dca; op_opr; reset ]
  in
  let ac_next = reset_gate b reset ac_next in
  Array.iteri
    (fun i d -> Builder.gate_into b Gate.Dffe [| d; ac_en |] ac.(i))
    ac_next;
  (* scratch words: ISZ writes sum, DCA writes ac *)
  let wr_val = Builder.mux_vec b ~sel:op_dca sum ac in
  for k = 0 to 3 do
    let a1 = if k land 2 <> 0 then inst.(4) else Builder.not_ b inst.(4) in
    let a0 = if k land 1 <> 0 then inst.(3) else Builder.not_ b inst.(3) in
    let hit = Builder.and2 b a1 a0 in
    let en =
      Builder.or2 b
        (Builder.and2 b hit (Builder.or2 b op_isz op_dca))
        reset
    in
    let d = reset_gate b reset wr_val in
    Array.iteri
      (fun i dn -> Builder.gate_into b Gate.Dffe [| dn; en |] m.(k).(i))
      d
  done;
  (* program counter: +1, +2 on ISZ skip, or JMP target *)
  let skip = Builder.and2 b op_isz sum_zero in
  let pc_inc =
    (* pc + (skip ? 2 : 1) using one small adder *)
    let addend =
      [| Builder.not_ b skip; skip; Builder.const0; Builder.const0 |]
    in
    fst (Builder.adder b pc addend)
  in
  let target = Array.sub inst 0 4 in
  let pc_next = Builder.mux_vec b ~sel:op_jmp pc_inc target in
  let pc_next = reset_gate b reset pc_next in
  Array.iteri (fun i d -> Builder.gate_into b Gate.Dff [| d |] pc.(i)) pc_next;
  Builder.output b "pc_out" pc;
  Builder.output b "ac_out" ac;
  Builder.finish b

(* The hand machine's shared sub-blocks, standalone: same read bus,
   operand selection, adder and zero flag as hand_pdp8 above, with the
   registers replaced by input ports.  Port-compatible with the
   synthesized pdp8_dp_src so the two can be mitered (E9). *)
let hand_pdp8_dp () =
  let b = Builder.create "pdp8_dp_hand" in
  let inst = Builder.input b "inst" 8 in
  let ac = Builder.input b "ac" 8 in
  let m = Array.init 4 (fun k -> Builder.input b (Printf.sprintf "m%d" k) 8) in
  let i5 = inst.(5) and i6 = inst.(6) and i7 = inst.(7) in
  let n5 = Builder.not_ b i5 and n6 = Builder.not_ b i6 and n7 = Builder.not_ b i7 in
  let op_tad = Builder.and_reduce b [ n7; n6; i5 ] in
  let op_isz = Builder.and_reduce b [ n7; i6; n5 ] in
  let op_opr = Builder.and_reduce b [ i7; i6; i5 ] in
  let mem =
    Array.init 8 (fun k ->
        let low = Builder.mux2 b ~sel:inst.(3) m.(0).(k) m.(1).(k) in
        let high = Builder.mux2 b ~sel:inst.(3) m.(2).(k) m.(3).(k) in
        Builder.mux2 b ~sel:inst.(4) low high)
  in
  let cma = Builder.and2 b op_opr inst.(1) in
  let ac_or_not = Array.map (fun n -> Builder.xor2 b n cma) ac in
  let add_a = Builder.mux_vec b ~sel:op_isz ac_or_not mem in
  let one = Array.init 8 (fun i -> if i = 0 then Builder.const1 else Builder.const0) in
  let add_b = Builder.mux_vec b ~sel:op_tad one mem in
  let sum, _ = Builder.adder b add_a add_b in
  let sum_zero = Builder.not_ b (Builder.or_reduce b (Array.to_list sum)) in
  Builder.output b "mem" mem;
  Builder.output b "sum" sum;
  Builder.output b "sum_zero" [| sum_zero |];
  Builder.finish b

(* --- stimulus --- *)

let counter_stim cyc =
  [ ("reset", if cyc = 0 then 1 else 0)
  ; ("load", if cyc mod 11 = 7 then 1 else 0)
  ; ("data", (cyc * 5) land 15)
  ]

let traffic_stim cyc =
  [ ("reset", if cyc = 0 then 1 else 0); ("car", (cyc / 3) land 1) ]

let alu_stim cyc =
  [ ("op", cyc land 3); ("a", cyc land 15); ("b", (cyc * 7) land 15) ]

let gray_stim cyc = [ ("reset", if cyc = 0 then 1 else 0) ]

let seqdet_stim cyc =
  (* feed a pattern-rich bit stream *)
  let bits = 0b110101101101011 in
  [ ("reset", if cyc = 0 then 1 else 0); ("x", (bits lsr (cyc mod 15)) land 1) ]

let pdp8_program =
  [| 0xE5 (* OPR CLA+IAC : ac := 1 *)
   ; 0x68 (* DCA m1      : m1 := 1, ac := 0 *)
   ; 0xE5 (* OPR CLA+IAC : ac := 1 *)
   ; 0x28 (* TAD m1      : ac := 2 *)
   ; 0x28 (* TAD m1      : ac := 3 *)
   ; 0x70 (* DCA m2      : m2 := 3, ac := 0 *)
   ; 0x48 (* ISZ m1      : m1 := 2 *)
   ; 0x08 (* AND m1      : ac := 0 *)
   ; 0xE2 (* OPR CMA     : ac := 255 *)
   ; 0x50 (* ISZ m2      : m2 := 4 *)
   ; 0xE6 (* OPR CMA+IAC : ac := 1 *)
   ; 0x30 (* TAD m2      : ac := 5 *)
   ; 0xA2 (* JMP 2 *)
   ; 0xE7 (* OPR CLA+CMA+IAC : ac := 0 *)
   ; 0x78 (* DCA m3 *)
   ; 0x58 (* ISZ m3 *)
  |]

let pdp8_stim cyc =
  if cyc = 0 then [ ("reset", 1); ("inst", 0) ]
  else
    [ ("reset", 0)
    ; ("inst", pdp8_program.((cyc - 1) mod Array.length pdp8_program))
    ]

(* --- the modular reference design: separate compilation workload --- *)

let system_src =
  {|
-- two-module system: a combinational mixer feeding an accumulator.
-- Each module block compiles through its own sub-pipeline; the chip
-- block binds them by interface signature and macro-assembles them.

module mixer;
inputs a[4], b[4];
outputs y[4];
behavior
  y := a ^ b;
end

module accum;
inputs d[4], reset[1];
outputs q[4];
registers acc[4];
behavior
  if reset == 1 then acc := 0;
  else acc := acc + d;
  end
  q := acc;
end

chip system;
inputs a[4], b[4], reset[1];
outputs q[4];
instances
  u_mix : mixer;
  u_acc : accum;
connect
  u_mix.a = a;
  u_mix.b = b;
  u_acc.d = u_mix.y;
  u_acc.reset = reset;
  q = u_acc.q;
end
|}

let all () =
  [ ("counter", counter_src, Some (hand_counter ()), counter_stim, 50)
  ; ("traffic", traffic_src, Some (hand_traffic ()), traffic_stim, 80)
  ; ("alu4", alu_src, Some (hand_alu ()), alu_stim, 64)
  ; ("gray", gray_src, None, gray_stim, 24)
  ; ("seqdet", seqdet_src, None, seqdet_stim, 60)
  ; ("pdp8", pdp8_src, Some (hand_pdp8 ()), pdp8_stim, 120)
  ]

let builtin = function
  | "counter" -> Some counter_src
  | "traffic" -> Some traffic_src
  | "alu" | "alu4" -> Some alu_src
  | "gray" -> Some gray_src
  | "seqdet" -> Some seqdet_src
  | "pdp8" -> Some pdp8_src
  | "pdp8_dp" -> Some pdp8_dp_src
  | "system" -> Some system_src
  | _ -> None
