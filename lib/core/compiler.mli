(** The silicon compiler facade: "a completely textual description of a
    design translated to layout data".

    Two front doors, one per definition of silicon compilation debated in
    the paper:

    - {!compile_layout}: structural/graphical path — layout-language text
      straight to artwork;
    - {!compile_behavior}: behavioral path — ISP text through synthesis,
      placement and cell layout.

    Both are thin drivers over {!Sc_pipeline.Pipeline} pass sequences:

    {v
    behavioral  parse ────────┐
    verilog     verilog.parse ┴ compile ─ optimize ─ place ─ route
                parse ─ compile ─ place                      (pla)
    structural  elaborate
    then, for every path:       ─ drc ─ emit ─ measure
    v}

    The Verilog front door ({!compile_verilog}) elaborates a
    synthesizable-Verilog module to the same design IR the ISP parser
    produces, then runs the identical standard-cell pass sequence.

    Each pass gets a span, a stage-cache entry and a [Diag] error
    boundary from the manager; enable {!Sc_pipeline.Pipeline.enable_cache}
    (or [scc --stage-cache DIR]) and recompiling after a [--restarts]
    change reruns only place→measure.  Failures come back as
    {!Sc_pipeline.Diag.t} values — stage name plus message — never as
    raw exceptions, and are never cached. *)

open Sc_layout

(** How the behavioral path realizes control and logic: [Random_logic]
    (standard-cell gates) or [Pla_control] (FSM extraction to a PLA). *)
type behavior_style = Random_logic | Pla_control

(** A finished compilation: the layout plus the measurements every
    front door reports. *)
type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int  (** bounding box, square lambda *)
  ; transistors : int
  }

(** Every front door takes an optional [recorder]: the whole pass
    sequence — spans, counters, pool tasks it fans out — records into
    that {!Sc_obs.Obs.Recorder.t} (installed as ambient for the run,
    see {!Sc_obs.Obs.with_recorder}).  Omitted, the caller's ambient
    recorder applies; single-shot tools never pass it.  The serve
    daemon passes a fresh recorder per request so concurrent compiles
    record independently. *)

(** Structural path: layout-language source to artwork. *)
val compile_layout :
  ?recorder:Sc_obs.Obs.Recorder.t ->
  ?entry:string ->
  ?args:int list ->
  string ->
  (compiled, Sc_pipeline.Diag.t) result

(** Behavioral path: ISP source to a placed layout of standard cells (or
    a PLA plus registers).  Also returns the synthesized circuit.

    A source containing a top-level [chip] block
    ({!Sc_core.Chipdesc.is_modular}) dispatches to separate compilation
    ({!compile_modular}); [style] must then be [Random_logic] and
    [inject_fault] is ignored.
    [restarts] selects multi-start placement (default 0; it is a
    place-pass parameter, so under a stage cache changing it leaves
    parse/compile/optimize hits).  [inject_fault] deliberately
    miscompiles the optimize pass on the gates path
    ({!Sc_synth.Synth.optimize_result}'s [inject]) — a live target for
    {!Sc_pipeline.Pipeline.enable_certify}; like restarts it is pinned
    by a pass param, so faulty artifacts never share cache keys with
    honest ones (ignored by [Pla_control]). *)
val compile_behavior :
  ?recorder:Sc_obs.Obs.Recorder.t ->
  ?style:behavior_style ->
  ?restarts:int ->
  ?inject_fault:int ->
  string ->
  (compiled * Sc_netlist.Circuit.t, Sc_pipeline.Diag.t) result

(** Separate compilation: a multi-module source with a [chip] block
    ({!Sc_core.Chipdesc}).  Each module block runs its own sub-pipeline
    (parse → compile → optimize → place → route → drc → emit → measure)
    keyed on that block's raw text, on its own domain with its own
    recorder and run journal — editing one module re-runs exactly that
    module's passes plus assembly.  Concurrent compiles of the same
    module text (the serve daemon) share one in-flight run.  The
    assembly pass packs the per-module layouts into a macro row with a
    routed channel ({!Sc_chip.Assemble.pack}) inside the pad frame;
    whole-chip drc/emit/measure finish.  The returned circuit is the
    hierarchical stitch of the optimized module circuits under the
    chip's connections.  Per-module journal rows appear as
    [module:pass]; per-module QoR totals merge into the ambient
    recorder as [module.NAME.key] gauges. *)
val compile_modular :
  ?recorder:Sc_obs.Obs.Recorder.t ->
  ?restarts:int ->
  string ->
  (compiled * Sc_netlist.Circuit.t, Sc_pipeline.Diag.t) result

(** Verilog path: a synthesizable-Verilog module to a placed
    standard-cell layout, through the same compile → optimize → place →
    route → drc → emit → measure sequence as {!compile_behavior} (the
    frontends differ only in their parse pass, so everything downstream
    shares the stage cache's behavior).  Parse and elaboration failures
    come back as stage ["verilog.parse"] diagnostics whose messages
    carry [line:col:] positions.  [inject_fault] as in
    {!compile_behavior}. *)
val compile_verilog :
  ?recorder:Sc_obs.Obs.Recorder.t ->
  ?restarts:int ->
  ?inject_fault:int ->
  string ->
  (compiled * Sc_netlist.Circuit.t, Sc_pipeline.Diag.t) result

(** Elaborate Verilog source to the shared design IR without running
    the pipeline (for [scc verilog --dump-isp], equivalence drivers and
    tests).  Same ["verilog.parse"] diagnostics as {!compile_verilog}. *)
val verilog_design :
  string -> (Sc_rtl.Ast.design, Sc_pipeline.Diag.t) result

(** Place a gate-level circuit as standard-cell rows (the physical view
    used by the behavioral path and experiments).  [restarts] > 0 runs
    that many extra random-start placements concurrently on the default
    worker pool ({!Sc_place.Placer.best_of}) and keeps the lowest-HPWL
    result; the default 0 is the constructive placement alone.  The
    route-measurement stage runs unconditionally, so
    [route.tracks]/[route.height]/[route.channels] are always reported
    when a recorder is on. *)
val layout_of_circuit :
  ?restarts:int -> name:string -> Sc_netlist.Circuit.t -> Cell.t

(** Emit a cell hierarchy as CIF text ({!Sc_cif.Emit.to_string}). *)
val to_cif : Cell.t -> string

(** Measure an existing layout the same way the compilers do. *)
val measure : Cell.t -> compiled
