(** The silicon compiler facade: "a completely textual description of a
    design translated to layout data".

    Two front doors, one per definition of silicon compilation debated in
    the paper:

    - {!compile_layout}: structural/graphical path — layout-language text
      straight to artwork;
    - {!compile_behavior}: behavioral path — ISP text through synthesis,
      placement and cell layout.

    Both end at CIF via {!to_cif}. *)

open Sc_layout

(** How the behavioral path realizes control and logic: [Random_logic]
    (standard-cell gates) or [Pla_control] (FSM extraction to a PLA). *)
type behavior_style = Random_logic | Pla_control

(** A finished compilation: the layout plus the measurements every
    front door reports. *)
type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int  (** bounding box, square lambda *)
  ; transistors : int
  }

(** Structural path: layout-language source to artwork. *)
val compile_layout :
  ?entry:string -> ?args:int list -> string -> (compiled, string) result

(** Behavioral path: ISP source to a placed layout of standard cells (or
    a PLA plus registers).  Also returns the synthesized circuit.
    [restarts] is forwarded to {!layout_of_circuit} (multi-start
    placement; default 0). *)
val compile_behavior :
  ?style:behavior_style ->
  ?restarts:int ->
  string ->
  (compiled * Sc_netlist.Circuit.t, string) result

(** Place a gate-level circuit as standard-cell rows (the physical view
    used by the behavioral path and experiments).  [restarts] > 0 runs
    that many extra random-start placements concurrently on the default
    worker pool ({!Sc_place.Placer.best_of}) and keeps the lowest-HPWL
    result; the default 0 is the constructive placement alone. *)
val layout_of_circuit :
  ?restarts:int -> name:string -> Sc_netlist.Circuit.t -> Cell.t

(** Emit a cell hierarchy as CIF text ({!Sc_cif.Emit.to_string}). *)
val to_cif : Cell.t -> string

(** Whole-compilation memoization for the behavioral path.  When
    enabled, {!compile_behavior} is keyed by the digest of (style,
    source text): an identical request returns the stored
    [compiled * circuit] without re-synthesizing.  With [?dir] the
    store persists across processes ({!Sc_cache.Cache}); failed
    compilations are never cached.  Disabled by default. *)
module Result_cache : sig
  val enable : ?dir:string -> unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool

  (** [None] when disabled. *)
  val stats : unit -> Sc_cache.Cache.stats option
end

(** Measure an existing layout the same way the compilers do. *)
val measure : Cell.t -> compiled
