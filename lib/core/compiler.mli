(** The silicon compiler facade: "a completely textual description of a
    design translated to layout data".

    Two front doors, one per definition of silicon compilation debated in
    the paper:

    - {!compile_layout}: structural/graphical path — layout-language text
      straight to artwork;
    - {!compile_behavior}: behavioral path — ISP text through synthesis,
      placement and cell layout.

    Both end at CIF via {!to_cif}. *)

open Sc_layout

(** How the behavioral path realizes control and logic: [Random_logic]
    (standard-cell gates) or [Pla_control] (FSM extraction to a PLA). *)
type behavior_style = Random_logic | Pla_control

(** A finished compilation: the layout plus the measurements every
    front door reports. *)
type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int  (** bounding box, square lambda *)
  ; transistors : int
  }

(** Structural path: layout-language source to artwork. *)
val compile_layout :
  ?entry:string -> ?args:int list -> string -> (compiled, string) result

(** Behavioral path: ISP source to a placed layout of standard cells (or
    a PLA plus registers).  Also returns the synthesized circuit. *)
val compile_behavior :
  ?style:behavior_style ->
  string ->
  (compiled * Sc_netlist.Circuit.t, string) result

(** Place a gate-level circuit as standard-cell rows (the physical view
    used by the behavioral path and experiments). *)
val layout_of_circuit : name:string -> Sc_netlist.Circuit.t -> Cell.t

(** Emit a cell hierarchy as CIF text ({!Sc_cif.Emit.to_string}). *)
val to_cif : Cell.t -> string

(** Measure an existing layout the same way the compilers do. *)
val measure : Cell.t -> compiled
