open Sc_layout
module Obs = Sc_obs.Obs

type behavior_style = Random_logic | Pla_control

type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int
  ; transistors : int
  }

(* DRC and CIF emission carry their own "drc" / "emit" spans, so
   measuring a layout is what populates those rows of the stage table. *)
let measure layout =
  let c =
    { layout
    ; cif = Sc_cif.Emit.to_string layout
    ; drc_violations = List.length (Sc_drc.Checker.check layout)
    ; area = Cell.area layout
    ; transistors = Stats.transistor_count layout
    }
  in
  if Obs.enabled () then begin
    Obs.gauge "area" c.area;
    Obs.gauge "layout.transistors" c.transistors;
    Obs.gauge "layout.cells" (List.length (Cell.all_cells layout));
    Obs.gauge "layout.rects" (Cell.flat_rect_count layout)
  end;
  c

let to_cif = Sc_cif.Emit.to_string

let compile_layout ?entry ?args src =
  match Obs.span "parse" (fun () -> Sc_lang.Lang.compile ?entry ?args src) with
  | Ok cell -> Ok (measure cell)
  | Error e -> Error (Sc_lang.Lang.error_to_string e)

let place_circuit ?(restarts = 0) circuit =
  let problem = Sc_place.Placer.problem_of_circuit circuit in
  if restarts <= 0 then Sc_place.Placer.ordered problem
  else Sc_place.Placer.best_of ~seeds:restarts problem

let layout_of_circuit ?restarts ~name circuit =
  let placement, layout =
    Obs.span "place" (fun () ->
        let pl = place_circuit ?restarts circuit in
        (pl, Sc_place.Placer.to_layout ~name pl))
  in
  (* The row channels are left at a fixed pitch in the emitted artwork;
     routing them is pure measurement (channel heights, track counts),
     so the route stage only runs when someone is watching. *)
  if Obs.enabled () then
    Obs.span "route" (fun () ->
        match Sc_place.Placer.route_channels placement with
        | rc ->
          Obs.count "route.channels"
            (List.length rc.Sc_place.Placer.channels)
        | exception _ -> ());
  layout

module Result_cache = struct
  let store : (compiled * Sc_netlist.Circuit.t) Sc_cache.Cache.t option ref =
    ref None

  let enable ?dir () =
    store := Some (Sc_cache.Cache.create ?dir ~name:"behavior" ())

  let disable () = store := None
  let enabled () = Option.is_some !store
  let stats () = Option.map Sc_cache.Cache.stats !store

  let style_tag = function
    | Random_logic -> "random_logic"
    | Pla_control -> "pla_control"

  (* restarts is part of the key: it changes the placement, hence the
     layout the digest stands for *)
  let key ~restarts style src =
    Sc_cache.Cache.digest
      (style_tag style ^ ":" ^ string_of_int restarts ^ "\x00" ^ src)

  exception Failed of string
end

let rec compile_behavior ?(style = Random_logic) ?(restarts = 0) src =
  match !Result_cache.store with
  | None -> compile_behavior_uncached ~style ~restarts src
  | Some cache -> (
    (* errors are not cached: only a successful compilation is content
       worth addressing, and failures are cheap (they stop at parse) *)
    match
      Sc_cache.Cache.find_or_add cache
        (Result_cache.key ~restarts style src)
        (fun () ->
          match compile_behavior_uncached ~style ~restarts src with
          | Ok r -> r
          | Error e -> raise (Result_cache.Failed e))
    with
    | r -> Ok r
    | exception Result_cache.Failed e -> Error e)

and compile_behavior_uncached ~style ~restarts src =
  let parsed =
    Obs.span "parse" (fun () ->
        match Sc_rtl.Parser.parse src with
        | Error e -> Error ("parse: " ^ e)
        | Ok design -> (
          match Sc_rtl.Check.check design with
          | e :: _ -> Error ("check: " ^ e)
          | [] -> Ok design))
  in
  match parsed with
  | Error e -> Error e
  | Ok design -> (
    match style with
    | Random_logic ->
      let r = Sc_synth.Synth.gates design in
      let layout =
        layout_of_circuit ~restarts ~name:design.Sc_rtl.Ast.name
          r.Sc_synth.Synth.circuit
      in
      Ok (measure layout, r.Sc_synth.Synth.circuit)
    | Pla_control -> (
      match Sc_synth.Synth.pla_fsm design with
      | r, pla ->
        (* physical view: the PLA block above a row of state registers *)
        let state_bits =
          List.fold_left
            (fun a (d : Sc_rtl.Ast.decl) -> a + d.width)
            0 design.Sc_rtl.Ast.regs
        in
        let dff = Sc_stdcell.Library.layout_of Sc_netlist.Gate.Dff in
        let layout =
          Obs.span "place" (fun () ->
              if state_bits = 0 then pla.Sc_pla.Generator.layout
              else
                Compose.above ~name:design.Sc_rtl.Ast.name ~sep:20
                  (Compose.row ~name:"state_row"
                     (List.init state_bits (fun _ -> dff)))
                  pla.Sc_pla.Generator.layout)
        in
        Ok (measure layout, r.Sc_synth.Synth.circuit)
      | exception Invalid_argument msg -> Error msg))
