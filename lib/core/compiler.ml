open Sc_layout
module Obs = Sc_obs.Obs
module P = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag

type behavior_style = Random_logic | Pla_control

type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int
  ; transistors : int
  }

let to_cif = Sc_cif.Emit.to_string

(* DRC and CIF emission carry their own "drc" / "emit" spans, so
   measuring a layout is what populates those rows of the stage table. *)
let measure layout =
  let c =
    { layout
    ; cif = Sc_cif.Emit.to_string layout
    ; drc_violations = List.length (Sc_drc.Checker.check layout)
    ; area = Cell.area layout
    ; transistors = Stats.transistor_count layout
    }
  in
  if Obs.enabled () then begin
    Obs.gauge "area" c.area;
    Obs.gauge "layout.transistors" c.transistors;
    Obs.gauge "layout.cells" (List.length (Cell.all_cells layout));
    Obs.gauge "layout.rects" (Cell.flat_rect_count layout)
  end;
  c

let place_circuit ?(restarts = 0) circuit =
  let problem = Sc_place.Placer.problem_of_circuit circuit in
  if restarts <= 0 then Sc_place.Placer.ordered problem
  else Sc_place.Placer.best_of ~seeds:restarts problem

(* Routing the row channels is pure measurement on this artwork style
   (the rows stay at a fixed pitch), but it is a QoR source —
   route.tracks/height/channels — so it runs unconditionally; a
   pathological channel is reported as "no summary", never an abort. *)
type route_summary =
  { rchannels : int
  ; rtracks : int
  ; rheight : int
  }

let route_placement placement =
  match Sc_place.Placer.route_channels placement with
  | rc ->
    Some
      { rchannels = List.length rc.Sc_place.Placer.channels
      ; rtracks =
          List.fold_left
            (fun a (r : Sc_route.Channel.routed) -> a + r.tracks)
            0 rc.Sc_place.Placer.channels
      ; rheight = rc.Sc_place.Placer.total_height
      }
  | exception _ -> None

let layout_of_circuit ?restarts ~name circuit =
  let placement, layout =
    Obs.span "place" (fun () ->
        let pl = place_circuit ?restarts circuit in
        (pl, Sc_place.Placer.to_layout ~name pl))
  in
  Obs.span "route" (fun () ->
      match route_placement placement with
      | Some s -> Obs.count "route.channels" s.rchannels
      | None -> ());
  layout

(* --- the pass sequences ----------------------------------------------
   Every stage both compilation paths run is registered once with
   Sc_pipeline: the manager derives the span, the Diag boundary, the
   stage cache and the run log.  Key discipline (see pipeline.mli):
   same-named passes over different artifact types bake a "style=..."
   param at the call site; out-of-band knobs (restarts, entry, args)
   travel as params too, so editing one invalidates exactly the passes
   downstream of it. *)

let parse_pass : (string, Sc_rtl.Ast.design) P.pass =
  P.register ~name:"parse" (fun src ->
      match Sc_rtl.Parser.parse src with
      | Error e -> Error (Diag.v ~stage:"parse" e)
      | Ok design -> (
        match Sc_rtl.Check.check design with
        | e :: _ -> Error (Diag.v ~stage:"parse" ("check: " ^ e))
        | [] -> Ok design))

let compile_gates_pass : (Sc_rtl.Ast.design, Sc_netlist.Circuit.t) P.pass =
  P.register ~name:"compile" (fun design ->
      Ok (Sc_synth.Synth.translate design))

type optimized =
  { oresult : Sc_synth.Synth.result
  ; gates_in : int
  ; gates_out : int
  }

(* Bound for per-pass translation certificates on sequential designs —
   the same horizon Synth.gates ~selfcheck uses. *)
let certify_k = 4

let cert_of_circuits reference candidate =
  match Sc_equiv.Checker.certify ~k:certify_k reference candidate with
  | Ok c ->
    P.Certified
      { P.cert_cones = c.Sc_equiv.Checker.cert_cones
      ; cert_nodes = c.Sc_equiv.Checker.cert_nodes
      }
  | Error cex ->
    P.Refuted
      (Format.asprintf "@[<v>%a@]" Sc_equiv.Checker.pp_verdict
         (Sc_equiv.Checker.Not_equivalent cex))

(* the fault-injection knob rides in the value but is pinned by the
   run-site ~param, mirroring the restarts discipline on place *)
let optimize_pass : (Sc_netlist.Circuit.t * int option, optimized) P.pass =
  P.register ~name:"optimize"
    ~replay:(fun _ o ->
      Obs.count "optimize.gates_in" o.gates_in;
      Obs.count "optimize.gates_out" o.gates_out;
      Sc_synth.Synth.replay_gauges o.oresult)
    ~certify:(fun (raw, _) o ->
      cert_of_circuits raw o.oresult.Sc_synth.Synth.circuit)
    (fun (raw, inject) ->
      let gates_in =
        List.length (Sc_netlist.Circuit.flatten raw).Sc_netlist.Circuit.gates
      in
      let r = Sc_synth.Synth.optimize_result ?inject raw in
      Ok
        { oresult = r
        ; gates_in
        ; gates_out =
            List.length
              (Sc_netlist.Circuit.flatten r.Sc_synth.Synth.circuit)
                .Sc_netlist.Circuit.gates
        })

type placed =
  { placement : Sc_place.Placer.placement
  ; playout : Cell.t
  }

(* the restarts knob rides in the value but is pinned by the run-site
   ~param (see the key discipline above), so a --restarts edit
   invalidates place and everything downstream, nothing upstream *)
let place_pass : (Sc_netlist.Circuit.t * string * int, placed) P.pass =
  P.register ~name:"place"
    ~replay:(fun _ p ->
      Obs.gauge "place.hpwl" (Sc_place.Placer.hpwl p.placement);
      Obs.gauge "place.rows" p.placement.Sc_place.Placer.nrows;
      Obs.gauge "place.cells"
        (Array.length p.placement.Sc_place.Placer.x))
    (fun (circuit, name, restarts) ->
      let pl = place_circuit ~restarts circuit in
      Ok { placement = pl; playout = Sc_place.Placer.to_layout ~name pl })

let route_pass : (Sc_place.Placer.placement, route_summary option) P.pass =
  P.register ~name:"route"
    ~replay:(fun _ s ->
      match s with
      | None -> ()
      | Some s ->
        (* with zero channels the fresh path never reaches
           Channel.route, so no tracks/height counters exist to
           replay — emitting zeros here would make warm snapshots
           differ from cold ones *)
        if s.rchannels > 0 then begin
          Obs.count "route.tracks" s.rtracks;
          Obs.count "route.height" s.rheight
        end;
        Obs.count "route.channels" s.rchannels)
    (fun placement ->
      match route_placement placement with
      | Some s ->
        Obs.count "route.channels" s.rchannels;
        Ok (Some s)
      | None -> Ok None)

let drc_pass : (Cell.t, int) P.pass =
  P.register ~name:"drc"
    ~replay:(fun _ n -> Obs.count "drc.violations" n)
    (fun layout -> Ok (List.length (Sc_drc.Checker.check layout)))

let emit_pass : (Cell.t, Sc_cif.Emit.emitted) P.pass =
  P.register ~name:"emit"
    ~replay:(fun _ e -> Sc_cif.Emit.replay_counters e)
    (fun layout -> Ok (Sc_cif.Emit.emit layout))

type measured =
  { marea : int
  ; mtransistors : int
  ; mcells : int
  ; mrects : int
  }

let measure_gauges m =
  Obs.gauge "area" m.marea;
  Obs.gauge "layout.transistors" m.mtransistors;
  Obs.gauge "layout.cells" m.mcells;
  Obs.gauge "layout.rects" m.mrects

let measure_pass : (Cell.t, measured) P.pass =
  P.register ~name:"measure"
    ~replay:(fun _ m -> measure_gauges m)
    (fun layout ->
      let m =
        { marea = Cell.area layout
        ; mtransistors = Stats.transistor_count layout
        ; mcells = List.length (Cell.all_cells layout)
        ; mrects = Cell.flat_rect_count layout
        }
      in
      measure_gauges m;
      Ok m)

type pla_compiled =
  { presult : Sc_synth.Synth.result
  ; pla : Sc_pla.Generator.t
  ; state_bits : int
  ; pname : string
  }

let compile_pla_pass : (Sc_rtl.Ast.design, pla_compiled) P.pass =
  P.register ~name:"compile"
    ~certify:(fun design pc ->
      (* the minimize sub-step is what needs a certificate: the realized
         (minimized) cover against the cover enumerated straight from
         the reference semantics *)
      let spec = Sc_synth.Synth.fsm_cover design in
      match
        Sc_equiv.Checker.check_covers spec pc.pla.Sc_pla.Generator.cover
      with
      | None ->
        P.Certified
          { P.cert_cones = spec.Sc_logic.Cover.noutputs; cert_nodes = 0 }
      | Some (input, o) ->
        P.Refuted
          (Printf.sprintf
             "minimized PLA cover differs from the enumerated FSM on output \
              %d under input %s"
             o
             (String.concat ""
                (List.rev_map
                   (fun b -> if b then "1" else "0")
                   (Array.to_list input)))))
    (fun design ->
      let r, pla = Sc_synth.Synth.pla_fsm design in
      Ok
        { presult = r
        ; pla
        ; state_bits =
            List.fold_left
              (fun a (d : Sc_rtl.Ast.decl) -> a + d.width)
              0 design.Sc_rtl.Ast.regs
        ; pname = design.Sc_rtl.Ast.name
        })

(* physical view: the PLA block above a row of state registers *)
let place_pla_pass : (pla_compiled, Cell.t) P.pass =
  P.register ~name:"place" (fun pc ->
      if pc.state_bits = 0 then Ok pc.pla.Sc_pla.Generator.layout
      else
        let dff = Sc_stdcell.Library.layout_of Sc_netlist.Gate.Dff in
        Ok
          (Compose.above ~name:pc.pname ~sep:20
             (Compose.row ~name:"state_row"
                (List.init pc.state_bits (fun _ -> dff)))
             pc.pla.Sc_pla.Generator.layout))

let elaborate_pass : (string * (string option * int list), Cell.t) P.pass =
  P.register ~name:"elaborate" (fun (src, (entry, args)) ->
      match Sc_lang.Lang.compile ?entry ~args src with
      | Ok cell -> Ok cell
      | Error e -> Error (Diag.v ~stage:"elaborate" (Sc_lang.Lang.error_to_string e)))

let parse_verilog_pass : (string, Sc_rtl.Ast.design) P.pass =
  P.register ~name:"verilog.parse" (fun src ->
      match Sc_verilog.Elaborate.design_of_source src with
      | Error e -> Error (Diag.v ~stage:"verilog.parse" e)
      | Ok design -> Ok design)

(* --- drivers --- *)

let ( let* ) = Result.bind

(* the back half shared by every path: layout -> drc / cif / stats *)
let finish_layout layout_staged =
  let* drc = P.run drc_pass layout_staged in
  let* emitted = P.run emit_pass layout_staged in
  let* m = P.run measure_pass layout_staged in
  let mv = P.value m in
  Ok
    { layout = P.value layout_staged
    ; cif = (P.value emitted).Sc_cif.Emit.text
    ; drc_violations = P.value drc
    ; area = mv.marea
    ; transistors = mv.mtransistors
    }

(* the standard-cell middle shared by both behavioral frontends: the
   ISP and Verilog parse passes produce the same design IR, so
   compile → optimize → place → route run identically (and share cache
   keys through the staged input's digest) *)
let gates_path ~restarts ?inject design =
  let* raw = P.run ~param:"style=gates" compile_gates_pass design in
  let* opt =
    P.run
      ~param:
        (match inject with
        | None -> ""
        | Some i -> Printf.sprintf "inject=%d" i)
      optimize_pass
      (P.map (fun c -> (c, inject)) raw)
  in
  let circuit = (P.value opt).oresult.Sc_synth.Synth.circuit in
  let* placed =
    P.run
      ~param:(Printf.sprintf "style=gates;restarts=%d" restarts)
      place_pass
      (P.map
         (fun o ->
           let c = o.oresult.Sc_synth.Synth.circuit in
           (c, c.Sc_netlist.Circuit.cname, restarts))
         opt)
  in
  let* _route = P.run route_pass (P.map (fun p -> p.placement) placed) in
  Ok (P.map (fun p -> p.playout) placed, circuit)

(* [?recorder] on the drivers installs a per-run Obs recorder around
   the whole pass sequence (see [Sc_obs.Obs.with_recorder]): every
   span/counter below — including pool tasks the passes fan out —
   lands in that recorder.  Omitted, the ambient recorder applies and
   single-shot callers are unchanged. *)
let recorded recorder f =
  match recorder with
  | None -> f ()
  | Some r -> Sc_obs.Obs.with_recorder r f

let compile_behavior_flat ?recorder ?(style = Random_logic) ?(restarts = 0)
    ?inject_fault src =
  recorded recorder @@ fun () ->
  let* design = P.run parse_pass (P.source src) in
  let* layout_staged, circuit =
    match style with
    | Random_logic -> gates_path ~restarts ?inject:inject_fault design
    | Pla_control ->
      let* pc = P.run ~param:"style=pla" compile_pla_pass design in
      let circuit = (P.value pc).presult.Sc_synth.Synth.circuit in
      let* layout = P.run ~param:"style=pla" place_pla_pass pc in
      Ok (layout, circuit)
  in
  let* c = finish_layout layout_staged in
  Ok (c, circuit)

let compile_verilog ?recorder ?(restarts = 0) ?inject_fault src =
  recorded recorder @@ fun () ->
  let* design = P.run parse_verilog_pass (P.source src) in
  let* layout_staged, circuit =
    gates_path ~restarts ?inject:inject_fault design
  in
  let* c = finish_layout layout_staged in
  Ok (c, circuit)

let verilog_design src =
  match Sc_verilog.Elaborate.design_of_source src with
  | Ok d -> Ok d
  | Error e -> Error (Diag.v ~stage:"verilog.parse" e)

let compile_layout ?recorder ?entry ?(args = []) src =
  recorded recorder @@ fun () ->
  let param =
    Printf.sprintf "entry=%s;args=%s"
      (Option.value ~default:"" entry)
      (String.concat "," (List.map string_of_int args))
  in
  let* layout =
    P.run ~param elaborate_pass
      (P.map (fun s -> (s, (entry, args))) (P.source src))
  in
  finish_layout layout

(* --- modular compilation ----------------------------------------------
   A source with a [chip] block compiles at module granularity: each
   module block runs its own sub-pipeline (parse → compile → optimize →
   place → route → drc → emit → measure) keyed on that block's raw
   text, on its own domain with its own Obs recorder and run journal;
   the chip then assembles the per-module layouts into a macro row with
   a routed channel (Sc_chip.Assemble.pack) inside a pad frame, and
   whole-chip drc/emit/measure finish the job.  Editing one module
   invalidates exactly that module's stage keys plus the assembly. *)

type module_compiled =
  { mc_name : string
  ; mc_sig : Sc_netlist.Signature.t
  ; mc_circuit : Sc_netlist.Circuit.t  (** optimized *)
  ; mc_layout : Cell.t
  ; mc_key : string  (** staged key of the module layout *)
  ; mc_drc : int
  ; mc_measure : measured
  }

(* one module run, with the journal and telemetry the caller merges *)
type module_run =
  { mr : (module_compiled, Diag.t) result
  ; mr_log : (string * P.status) list
  ; mr_totals : (string * int) list
  }

(* Runs on its own domain: a fresh recorder isolates the module's QoR
   gauges (concurrent modules would clobber each other's last-write
   gauges in a shared recorder), a fresh journal isolates --explain
   rows; both are merged deterministically by the caller. *)
let run_module ~record ~certify ~restarts text () =
  let rec_ = Sc_obs.Obs.Recorder.create () in
  if record then Sc_obs.Obs.Recorder.enable rec_;
  Sc_obs.Obs.with_recorder rec_ @@ fun () ->
  P.with_certify certify @@ fun () ->
  P.reset_log ();
  let mr =
    let* design = P.run parse_pass (P.source text) in
    let* layout_staged, circuit = gates_path ~restarts design in
    let* drc = P.run drc_pass layout_staged in
    let* _emitted = P.run emit_pass layout_staged in
    let* m = P.run measure_pass layout_staged in
    Ok
      { mc_name = circuit.Sc_netlist.Circuit.cname
      ; mc_sig = Sc_netlist.Signature.of_circuit circuit
      ; mc_circuit = circuit
      ; mc_layout = P.value layout_staged
      ; mc_key = P.key layout_staged
      ; mc_drc = P.value drc
      ; mc_measure = P.value m
      }
  in
  let mr_log = P.log () in
  P.drop_log ();
  { mr; mr_log; mr_totals = Sc_obs.Obs.Recorder.totals rec_ }

(* In-flight dedup across concurrent modular compiles (the serve
   daemon's overlapping requests): the first arrival computes, everyone
   else blocks for the shared result.  Entries live only while the
   compute runs — afterwards the stage cache serves repeats. *)
let mod_inflight : (string, module_run option ref) Hashtbl.t = Hashtbl.create 8
let mod_lock = Mutex.create ()
let mod_cond = Condition.create ()

let shared_module_run key compute =
  Mutex.lock mod_lock;
  match Hashtbl.find_opt mod_inflight key with
  | Some cell ->
    let rec await () =
      match !cell with
      | Some r -> r
      | None ->
        Condition.wait mod_cond mod_lock;
        await ()
    in
    let r = await () in
    Mutex.unlock mod_lock;
    (`Shared, r)
  | None ->
    let cell = ref None in
    Hashtbl.add mod_inflight key cell;
    Mutex.unlock mod_lock;
    let finish r =
      Mutex.lock mod_lock;
      cell := Some r;
      Hashtbl.remove mod_inflight key;
      Condition.broadcast mod_cond;
      Mutex.unlock mod_lock
    in
    (match compute () with
    | r ->
      finish r;
      (`Fresh, r)
    | exception e ->
      (* never leave waiters hanging: surface the exception as a Diag *)
      finish
        { mr = Error (Diag.of_exn ~stage:"module" e)
        ; mr_log = []
        ; mr_totals = []
        };
      raise e)

(* bounded fan-out on dedicated domains: module pipelines submit their
   own shard work to the shared Sc_par pool, so they must not run *on*
   that pool (nested submission); one domain per in-flight module
   mirrors the serve daemon's request isolation.  jobs <= 1 still
   spawns (journal and recorder isolation) but strictly one at a
   time, keeping -j1 runs deterministic by construction. *)
let fan_out ~jobs tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  if jobs <= 1 then
    Array.iteri
      (fun i t -> results.(i) <- Some (Domain.join (Domain.spawn t)))
      tasks
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min jobs n) (fun _ -> Domain.spawn worker)
    in
    List.iter Domain.join spawned
  end;
  Array.map Option.get results

(* --- the assembly pass --- *)

type assembled =
  { aframed : Cell.t
  ; acore_area : int
  ; amacros : int
  ; arow_width : int
  ; arow_height : int
  ; atracks : int
  ; achannel_height : int
  ; atrunk : int
  ; apads : int
  }

let assembly_gauges a =
  Obs.gauge "assembly.macros" a.amacros;
  Obs.gauge "assembly.row_width" a.arow_width;
  Obs.gauge "assembly.row_height" a.arow_height;
  Obs.gauge "assembly.channel_tracks" a.atracks;
  Obs.gauge "assembly.channel_height" a.achannel_height;
  Obs.gauge "assembly.trunk_length" a.atrunk;
  Obs.gauge "assembly.core_area" a.acore_area;
  Obs.gauge "assembly.pads" a.apads

let sig_port_bits (s : Sc_netlist.Signature.t) =
  List.concat_map
    (fun (p : Sc_netlist.Signature.port_sig) ->
      List.init p.swidth (fun k ->
          Chipdesc.bit_name (Chipdesc.Cport p.sname) ~width:p.swidth k))
    s.Sc_netlist.Signature.sports

let assemble_pass : (Chipdesc.chip_decl * module_compiled list, assembled) P.pass
    =
  P.register ~name:"assemble"
    ~replay:(fun _ a ->
      Obs.count "route.tracks" a.atracks;
      Obs.count "route.height" a.achannel_height;
      assembly_gauges a)
    (fun (chip, mods) ->
      let mod_of name =
        List.find_opt (fun mc -> mc.mc_name = name) mods
      in
      let sig_of name = Option.map (fun mc -> mc.mc_sig) (mod_of name) in
      match Chipdesc.resolve chip ~sigs:sig_of with
      | Error e -> Error (Diag.v ~stage:"assemble" e)
      | Ok nets ->
        let macros =
          List.map
            (fun (i : Chipdesc.instance) ->
              match mod_of i.ci_module with
              | None ->
                Diag.fail ~stage:"assemble"
                  (Printf.sprintf "no compiled module %s" i.ci_module)
              | Some mc ->
                { Sc_chip.Assemble.mi_name = i.ci_name
                ; mi_pins = sig_port_bits mc.mc_sig
                ; mi_cell = mc.mc_layout
                })
            chip.Chipdesc.ch_insts
        in
        let port_bits decls =
          List.concat_map
            (fun (d : Chipdesc.port_decl) ->
              List.init d.pd_width (fun k ->
                  Chipdesc.bit_name (Chipdesc.Cport d.pd_name) ~width:d.pd_width
                    k))
            decls
        in
        let chip_ports =
          port_bits chip.Chipdesc.ch_inputs @ port_bits chip.Chipdesc.ch_outputs
        in
        let width_of (ep : Chipdesc.endpoint) =
          match ep with
          | Chipdesc.Cport p -> (
            match
              List.find_opt
                (fun (d : Chipdesc.port_decl) -> d.pd_name = p)
                (chip.Chipdesc.ch_inputs @ chip.Chipdesc.ch_outputs)
            with
            | Some d -> d.pd_width
            | None -> Diag.fail ~stage:"assemble" ("no chip port " ^ p))
          | Chipdesc.Ipin (i, p) -> (
            match
              List.find_opt
                (fun (x : Chipdesc.instance) -> x.ci_name = i)
                chip.Chipdesc.ch_insts
            with
            | None -> Diag.fail ~stage:"assemble" ("no instance " ^ i)
            | Some inst -> (
              match
                Option.bind (sig_of inst.ci_module) (fun s ->
                    Sc_netlist.Signature.find s p)
              with
              | Some ps -> ps.Sc_netlist.Signature.swidth
              | None -> Diag.fail ~stage:"assemble" ("no pin " ^ i ^ "." ^ p)))
        in
        let endpoint (b : Chipdesc.bit) =
          let w = width_of b.Chipdesc.b_end in
          match b.Chipdesc.b_end with
          | Chipdesc.Cport _ ->
            Sc_chip.Assemble.Chip
              (Chipdesc.bit_name b.Chipdesc.b_end ~width:w b.Chipdesc.b_idx)
          | Chipdesc.Ipin (i, _) ->
            Sc_chip.Assemble.Pin
              (i, Chipdesc.bit_name b.Chipdesc.b_end ~width:w b.Chipdesc.b_idx)
        in
        let anets =
          List.map
            (fun (n : Chipdesc.chip_net) ->
              { Sc_chip.Assemble.net_name =
                  (let w = width_of n.cn_src.Chipdesc.b_end in
                   Chipdesc.bit_name n.cn_src.Chipdesc.b_end ~width:w
                     n.cn_src.Chipdesc.b_idx)
              ; ends = List.map endpoint (n.cn_src :: n.cn_sinks)
              })
            nets
        in
        let packed =
          Sc_chip.Assemble.pack ~name:(chip.Chipdesc.ch_name ^ "_core") ~macros
            ~chip_ports ~nets:anets ()
        in
        let pads = max 4 (List.length chip_ports) in
        let framed =
          Sc_chip.Assemble.assemble ~name:chip.Chipdesc.ch_name
            ~core:packed.Sc_chip.Assemble.core ~pads ()
        in
        let a =
          { aframed = framed.Sc_chip.Assemble.chip
          ; acore_area = framed.Sc_chip.Assemble.core_area
          ; amacros = packed.Sc_chip.Assemble.macro_count
          ; arow_width = packed.Sc_chip.Assemble.row_width
          ; arow_height = packed.Sc_chip.Assemble.row_height
          ; atracks = packed.Sc_chip.Assemble.channel_tracks
          ; achannel_height = packed.Sc_chip.Assemble.channel_height
          ; atrunk = packed.Sc_chip.Assemble.trunk_length
          ; apads = framed.Sc_chip.Assemble.pads
          }
        in
        assembly_gauges a;
        Ok a)

(* --- stitching: the whole-chip hierarchical circuit --- *)

let stitch chip mods nets =
  let module C = Chipdesc in
  let module B = Sc_netlist.Builder in
  let b = B.create chip.C.ch_name in
  let source_nets : (C.endpoint * int, Sc_netlist.Circuit.net) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (d : C.port_decl) ->
      let v = B.input b d.pd_name d.pd_width in
      Array.iteri (fun k n -> Hashtbl.add source_nets (C.Cport d.pd_name, k) n) v)
    chip.C.ch_inputs;
  let mod_of name = List.find (fun mc -> mc.mc_name = name) mods in
  List.iter
    (fun (i : C.instance) ->
      let mc = mod_of i.ci_module in
      List.iter
        (fun (p : Sc_netlist.Circuit.port) ->
          if p.dir = Sc_netlist.Circuit.Out then begin
            let v = B.fresh_vec b (Array.length p.bits) in
            Array.iteri
              (fun k n ->
                Hashtbl.add source_nets (C.Ipin (i.ci_name, p.port_name), k) n)
              v
          end)
        mc.mc_circuit.Sc_netlist.Circuit.ports)
    chip.C.ch_insts;
  (* sink bit -> the net of its driving source bit *)
  let sink_nets : (C.endpoint * int, Sc_netlist.Circuit.net) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (n : C.chip_net) ->
      let src = Hashtbl.find source_nets (n.cn_src.C.b_end, n.cn_src.C.b_idx) in
      List.iter
        (fun (s : C.bit) -> Hashtbl.add sink_nets (s.C.b_end, s.C.b_idx) src)
        n.cn_sinks)
    nets;
  List.iter
    (fun (i : C.instance) ->
      let mc = mod_of i.ci_module in
      let conns =
        List.map
          (fun (p : Sc_netlist.Circuit.port) ->
            let w = Array.length p.bits in
            let arr =
              match p.dir with
              | Sc_netlist.Circuit.In ->
                Array.init w (fun k ->
                    Hashtbl.find sink_nets (C.Ipin (i.ci_name, p.port_name), k))
              | Sc_netlist.Circuit.Out ->
                Array.init w (fun k ->
                    Hashtbl.find source_nets (C.Ipin (i.ci_name, p.port_name), k))
            in
            (p.port_name, arr))
          mc.mc_circuit.Sc_netlist.Circuit.ports
      in
      B.inst b ~name:i.ci_name mc.mc_circuit conns)
    chip.C.ch_insts;
  List.iter
    (fun (d : C.port_decl) ->
      B.output b d.pd_name
        (Array.init d.pd_width (fun k ->
             Hashtbl.find sink_nets (C.Cport d.pd_name, k))))
    chip.C.ch_outputs;
  B.finish b

(* --- the modular driver --- *)

let runtime_total_key k =
  let has_prefix p =
    String.length k >= String.length p && String.sub k 0 (String.length p) = p
  in
  let has_suffix s =
    let n = String.length s and m = String.length k in
    m >= n && String.sub k (m - n) n = s
  in
  has_prefix "stage." || has_prefix "cache." || has_prefix "pool."
  || has_prefix "pipeline." || has_suffix ".tasks" || has_suffix ".calls"
  || has_suffix "_us"

let compile_modular ?recorder ?(restarts = 0) src =
  recorded recorder @@ fun () ->
  match Chipdesc.split src with
  | Error e -> Error (Diag.v ~stage:"chip" e)
  | Ok { Chipdesc.chip = None; _ } ->
    Error (Diag.v ~stage:"chip" "modular source has no chip block")
  | Ok { Chipdesc.modules; chip = Some chip } ->
    (* compile each instantiated module once, in file order *)
    let used =
      List.filter
        (fun (m : Chipdesc.source_module) ->
          List.exists
            (fun (i : Chipdesc.instance) -> i.ci_module = m.sm_name)
            chip.Chipdesc.ch_insts)
        modules
    in
    let record = Obs.enabled () in
    let certify = P.certify_enabled () in
    let jobs = Sc_par.Pool.default_size () in
    let tasks =
      Array.of_list
        (List.map
           (fun (m : Chipdesc.source_module) () ->
             let key =
               Sc_cache.Cache.digest
                 (Printf.sprintf "modular-module\x00%s\x00restarts=%d;certify=%b"
                    m.sm_text restarts certify)
             in
             shared_module_run key
               (run_module ~record ~certify ~restarts m.sm_text))
           used)
    in
    let runs = fan_out ~jobs tasks in
    if Obs.enabled () then Obs.gauge "modular.modules" (Array.length runs);
    (* merge journals and telemetry deterministically, in file order;
       a run served by the in-flight dedup reports its passes as hits *)
    Array.iteri
      (fun i (how, r) ->
        let m = List.nth used i in
        let entries =
          match how with
          | `Fresh -> r.mr_log
          | `Shared ->
            Obs.count "modular.shared.calls" 1;
            List.map (fun (n, _) -> (n, P.Hit)) r.mr_log
        in
        P.append_log
          (List.map
             (fun (n, st) -> (m.Chipdesc.sm_name ^ ":" ^ n, st))
             entries);
        if Obs.enabled () then
          List.iter
            (fun (k, v) ->
              if runtime_total_key k then Obs.count k v
              else
                Obs.gauge ("module." ^ m.Chipdesc.sm_name ^ "." ^ k) v)
            r.mr_totals)
      runs;
    let* mods =
      Array.fold_left
        (fun acc (_, r) ->
          let* acc = acc in
          match r.mr with
          | Ok mc -> Ok (mc :: acc)
          | Error d ->
            Error { d with Diag.stage = "module:" ^ d.Diag.stage })
        (Ok []) runs
    in
    let mods = List.rev mods in
    let staged =
      P.inject ~tag:"assembly"
        ~repr:
          (Chipdesc.decl_repr chip ^ "\x00"
          ^ String.concat ";"
              (List.map
                 (fun mc ->
                   Printf.sprintf "%s=%s:%s" mc.mc_name mc.mc_key
                     (Sc_netlist.Signature.digest mc.mc_sig))
                 mods)
          ^ Printf.sprintf "\x00restarts=%d" restarts)
        (chip, mods)
    in
    let* assembled = P.run assemble_pass staged in
    let* c = finish_layout (P.map (fun a -> a.aframed) assembled) in
    let* nets =
      match
        Chipdesc.resolve chip ~sigs:(fun n ->
            List.find_opt (fun mc -> mc.mc_name = n) mods
            |> Option.map (fun mc -> mc.mc_sig))
      with
      | Ok nets -> Ok nets
      | Error e -> Error (Diag.v ~stage:"chip" e)
    in
    let circuit = stitch chip mods nets in
    Ok (c, circuit)

(* the behavioral front door dispatches on the source: a [chip] block
   means separate compilation, anything else takes the flat path *)
let compile_behavior ?recorder ?(style = Random_logic) ?(restarts = 0)
    ?inject_fault src =
  if Chipdesc.is_modular src then
    match style with
    | Pla_control ->
      Error
        (Diag.v ~stage:"chip"
           "modular designs use the gates style (no --style pla)")
    | Random_logic -> compile_modular ?recorder ~restarts src
  else compile_behavior_flat ?recorder ~style ~restarts ?inject_fault src
