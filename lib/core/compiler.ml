open Sc_layout
module Obs = Sc_obs.Obs

type behavior_style = Random_logic | Pla_control

type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int
  ; transistors : int
  }

(* DRC and CIF emission carry their own "drc" / "emit" spans, so
   measuring a layout is what populates those rows of the stage table. *)
let measure layout =
  { layout
  ; cif = Sc_cif.Emit.to_string layout
  ; drc_violations = List.length (Sc_drc.Checker.check layout)
  ; area = Cell.area layout
  ; transistors = Stats.transistor_count layout
  }

let to_cif = Sc_cif.Emit.to_string

let compile_layout ?entry ?args src =
  match Obs.span "parse" (fun () -> Sc_lang.Lang.compile ?entry ?args src) with
  | Ok cell -> Ok (measure cell)
  | Error e -> Error (Sc_lang.Lang.error_to_string e)

let place_circuit circuit =
  let problem = Sc_place.Placer.problem_of_circuit circuit in
  Sc_place.Placer.ordered problem

let layout_of_circuit ~name circuit =
  let placement, layout =
    Obs.span "place" (fun () ->
        let pl = place_circuit circuit in
        (pl, Sc_place.Placer.to_layout ~name pl))
  in
  (* The row channels are left at a fixed pitch in the emitted artwork;
     routing them is pure measurement (channel heights, track counts),
     so the route stage only runs when someone is watching. *)
  if Obs.enabled () then
    Obs.span "route" (fun () ->
        match Sc_place.Placer.route_channels placement with
        | rc ->
          Obs.count "route.channels"
            (List.length rc.Sc_place.Placer.channels)
        | exception _ -> ());
  layout

let compile_behavior ?(style = Random_logic) src =
  let parsed =
    Obs.span "parse" (fun () ->
        match Sc_rtl.Parser.parse src with
        | Error e -> Error ("parse: " ^ e)
        | Ok design -> (
          match Sc_rtl.Check.check design with
          | e :: _ -> Error ("check: " ^ e)
          | [] -> Ok design))
  in
  match parsed with
  | Error e -> Error e
  | Ok design -> (
    match style with
    | Random_logic ->
      let r = Sc_synth.Synth.gates design in
      let layout =
        layout_of_circuit ~name:design.Sc_rtl.Ast.name r.Sc_synth.Synth.circuit
      in
      Ok (measure layout, r.Sc_synth.Synth.circuit)
    | Pla_control -> (
      match Sc_synth.Synth.pla_fsm design with
      | r, pla ->
        (* physical view: the PLA block above a row of state registers *)
        let state_bits =
          List.fold_left
            (fun a (d : Sc_rtl.Ast.decl) -> a + d.width)
            0 design.Sc_rtl.Ast.regs
        in
        let dff = Sc_stdcell.Library.layout_of Sc_netlist.Gate.Dff in
        let layout =
          Obs.span "place" (fun () ->
              if state_bits = 0 then pla.Sc_pla.Generator.layout
              else
                Compose.above ~name:design.Sc_rtl.Ast.name ~sep:20
                  (Compose.row ~name:"state_row"
                     (List.init state_bits (fun _ -> dff)))
                  pla.Sc_pla.Generator.layout)
        in
        Ok (measure layout, r.Sc_synth.Synth.circuit)
      | exception Invalid_argument msg -> Error msg))
