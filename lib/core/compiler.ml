open Sc_layout
module Obs = Sc_obs.Obs
module P = Sc_pipeline.Pipeline
module Diag = Sc_pipeline.Diag

type behavior_style = Random_logic | Pla_control

type compiled =
  { layout : Cell.t
  ; cif : string
  ; drc_violations : int
  ; area : int
  ; transistors : int
  }

let to_cif = Sc_cif.Emit.to_string

(* DRC and CIF emission carry their own "drc" / "emit" spans, so
   measuring a layout is what populates those rows of the stage table. *)
let measure layout =
  let c =
    { layout
    ; cif = Sc_cif.Emit.to_string layout
    ; drc_violations = List.length (Sc_drc.Checker.check layout)
    ; area = Cell.area layout
    ; transistors = Stats.transistor_count layout
    }
  in
  if Obs.enabled () then begin
    Obs.gauge "area" c.area;
    Obs.gauge "layout.transistors" c.transistors;
    Obs.gauge "layout.cells" (List.length (Cell.all_cells layout));
    Obs.gauge "layout.rects" (Cell.flat_rect_count layout)
  end;
  c

let place_circuit ?(restarts = 0) circuit =
  let problem = Sc_place.Placer.problem_of_circuit circuit in
  if restarts <= 0 then Sc_place.Placer.ordered problem
  else Sc_place.Placer.best_of ~seeds:restarts problem

(* Routing the row channels is pure measurement on this artwork style
   (the rows stay at a fixed pitch), but it is a QoR source —
   route.tracks/height/channels — so it runs unconditionally; a
   pathological channel is reported as "no summary", never an abort. *)
type route_summary =
  { rchannels : int
  ; rtracks : int
  ; rheight : int
  }

let route_placement placement =
  match Sc_place.Placer.route_channels placement with
  | rc ->
    Some
      { rchannels = List.length rc.Sc_place.Placer.channels
      ; rtracks =
          List.fold_left
            (fun a (r : Sc_route.Channel.routed) -> a + r.tracks)
            0 rc.Sc_place.Placer.channels
      ; rheight = rc.Sc_place.Placer.total_height
      }
  | exception _ -> None

let layout_of_circuit ?restarts ~name circuit =
  let placement, layout =
    Obs.span "place" (fun () ->
        let pl = place_circuit ?restarts circuit in
        (pl, Sc_place.Placer.to_layout ~name pl))
  in
  Obs.span "route" (fun () ->
      match route_placement placement with
      | Some s -> Obs.count "route.channels" s.rchannels
      | None -> ());
  layout

(* --- the pass sequences ----------------------------------------------
   Every stage both compilation paths run is registered once with
   Sc_pipeline: the manager derives the span, the Diag boundary, the
   stage cache and the run log.  Key discipline (see pipeline.mli):
   same-named passes over different artifact types bake a "style=..."
   param at the call site; out-of-band knobs (restarts, entry, args)
   travel as params too, so editing one invalidates exactly the passes
   downstream of it. *)

let parse_pass : (string, Sc_rtl.Ast.design) P.pass =
  P.register ~name:"parse" (fun src ->
      match Sc_rtl.Parser.parse src with
      | Error e -> Error (Diag.v ~stage:"parse" e)
      | Ok design -> (
        match Sc_rtl.Check.check design with
        | e :: _ -> Error (Diag.v ~stage:"parse" ("check: " ^ e))
        | [] -> Ok design))

let compile_gates_pass : (Sc_rtl.Ast.design, Sc_netlist.Circuit.t) P.pass =
  P.register ~name:"compile" (fun design ->
      Ok (Sc_synth.Synth.translate design))

type optimized =
  { oresult : Sc_synth.Synth.result
  ; gates_in : int
  ; gates_out : int
  }

(* Bound for per-pass translation certificates on sequential designs —
   the same horizon Synth.gates ~selfcheck uses. *)
let certify_k = 4

let cert_of_circuits reference candidate =
  match Sc_equiv.Checker.certify ~k:certify_k reference candidate with
  | Ok c ->
    P.Certified
      { P.cert_cones = c.Sc_equiv.Checker.cert_cones
      ; cert_nodes = c.Sc_equiv.Checker.cert_nodes
      }
  | Error cex ->
    P.Refuted
      (Format.asprintf "@[<v>%a@]" Sc_equiv.Checker.pp_verdict
         (Sc_equiv.Checker.Not_equivalent cex))

(* the fault-injection knob rides in the value but is pinned by the
   run-site ~param, mirroring the restarts discipline on place *)
let optimize_pass : (Sc_netlist.Circuit.t * int option, optimized) P.pass =
  P.register ~name:"optimize"
    ~replay:(fun _ o ->
      Obs.count "optimize.gates_in" o.gates_in;
      Obs.count "optimize.gates_out" o.gates_out;
      Sc_synth.Synth.replay_gauges o.oresult)
    ~certify:(fun (raw, _) o ->
      cert_of_circuits raw o.oresult.Sc_synth.Synth.circuit)
    (fun (raw, inject) ->
      let gates_in =
        List.length (Sc_netlist.Circuit.flatten raw).Sc_netlist.Circuit.gates
      in
      let r = Sc_synth.Synth.optimize_result ?inject raw in
      Ok
        { oresult = r
        ; gates_in
        ; gates_out =
            List.length
              (Sc_netlist.Circuit.flatten r.Sc_synth.Synth.circuit)
                .Sc_netlist.Circuit.gates
        })

type placed =
  { placement : Sc_place.Placer.placement
  ; playout : Cell.t
  }

(* the restarts knob rides in the value but is pinned by the run-site
   ~param (see the key discipline above), so a --restarts edit
   invalidates place and everything downstream, nothing upstream *)
let place_pass : (Sc_netlist.Circuit.t * string * int, placed) P.pass =
  P.register ~name:"place"
    ~replay:(fun _ p ->
      Obs.gauge "place.hpwl" (Sc_place.Placer.hpwl p.placement);
      Obs.gauge "place.rows" p.placement.Sc_place.Placer.nrows;
      Obs.gauge "place.cells"
        (Array.length p.placement.Sc_place.Placer.x))
    (fun (circuit, name, restarts) ->
      let pl = place_circuit ~restarts circuit in
      Ok { placement = pl; playout = Sc_place.Placer.to_layout ~name pl })

let route_pass : (Sc_place.Placer.placement, route_summary option) P.pass =
  P.register ~name:"route"
    ~replay:(fun _ s ->
      match s with
      | None -> ()
      | Some s ->
        Obs.count "route.tracks" s.rtracks;
        Obs.count "route.height" s.rheight;
        Obs.count "route.channels" s.rchannels)
    (fun placement ->
      match route_placement placement with
      | Some s ->
        Obs.count "route.channels" s.rchannels;
        Ok (Some s)
      | None -> Ok None)

let drc_pass : (Cell.t, int) P.pass =
  P.register ~name:"drc"
    ~replay:(fun _ n -> Obs.count "drc.violations" n)
    (fun layout -> Ok (List.length (Sc_drc.Checker.check layout)))

let emit_pass : (Cell.t, Sc_cif.Emit.emitted) P.pass =
  P.register ~name:"emit"
    ~replay:(fun _ e -> Sc_cif.Emit.replay_counters e)
    (fun layout -> Ok (Sc_cif.Emit.emit layout))

type measured =
  { marea : int
  ; mtransistors : int
  ; mcells : int
  ; mrects : int
  }

let measure_gauges m =
  Obs.gauge "area" m.marea;
  Obs.gauge "layout.transistors" m.mtransistors;
  Obs.gauge "layout.cells" m.mcells;
  Obs.gauge "layout.rects" m.mrects

let measure_pass : (Cell.t, measured) P.pass =
  P.register ~name:"measure"
    ~replay:(fun _ m -> measure_gauges m)
    (fun layout ->
      let m =
        { marea = Cell.area layout
        ; mtransistors = Stats.transistor_count layout
        ; mcells = List.length (Cell.all_cells layout)
        ; mrects = Cell.flat_rect_count layout
        }
      in
      measure_gauges m;
      Ok m)

type pla_compiled =
  { presult : Sc_synth.Synth.result
  ; pla : Sc_pla.Generator.t
  ; state_bits : int
  ; pname : string
  }

let compile_pla_pass : (Sc_rtl.Ast.design, pla_compiled) P.pass =
  P.register ~name:"compile"
    ~certify:(fun design pc ->
      (* the minimize sub-step is what needs a certificate: the realized
         (minimized) cover against the cover enumerated straight from
         the reference semantics *)
      let spec = Sc_synth.Synth.fsm_cover design in
      match
        Sc_equiv.Checker.check_covers spec pc.pla.Sc_pla.Generator.cover
      with
      | None ->
        P.Certified
          { P.cert_cones = spec.Sc_logic.Cover.noutputs; cert_nodes = 0 }
      | Some (input, o) ->
        P.Refuted
          (Printf.sprintf
             "minimized PLA cover differs from the enumerated FSM on output \
              %d under input %s"
             o
             (String.concat ""
                (List.rev_map
                   (fun b -> if b then "1" else "0")
                   (Array.to_list input)))))
    (fun design ->
      let r, pla = Sc_synth.Synth.pla_fsm design in
      Ok
        { presult = r
        ; pla
        ; state_bits =
            List.fold_left
              (fun a (d : Sc_rtl.Ast.decl) -> a + d.width)
              0 design.Sc_rtl.Ast.regs
        ; pname = design.Sc_rtl.Ast.name
        })

(* physical view: the PLA block above a row of state registers *)
let place_pla_pass : (pla_compiled, Cell.t) P.pass =
  P.register ~name:"place" (fun pc ->
      if pc.state_bits = 0 then Ok pc.pla.Sc_pla.Generator.layout
      else
        let dff = Sc_stdcell.Library.layout_of Sc_netlist.Gate.Dff in
        Ok
          (Compose.above ~name:pc.pname ~sep:20
             (Compose.row ~name:"state_row"
                (List.init pc.state_bits (fun _ -> dff)))
             pc.pla.Sc_pla.Generator.layout))

let elaborate_pass : (string * (string option * int list), Cell.t) P.pass =
  P.register ~name:"elaborate" (fun (src, (entry, args)) ->
      match Sc_lang.Lang.compile ?entry ~args src with
      | Ok cell -> Ok cell
      | Error e -> Error (Diag.v ~stage:"elaborate" (Sc_lang.Lang.error_to_string e)))

let parse_verilog_pass : (string, Sc_rtl.Ast.design) P.pass =
  P.register ~name:"verilog.parse" (fun src ->
      match Sc_verilog.Elaborate.design_of_source src with
      | Error e -> Error (Diag.v ~stage:"verilog.parse" e)
      | Ok design -> Ok design)

(* --- drivers --- *)

let ( let* ) = Result.bind

(* the back half shared by every path: layout -> drc / cif / stats *)
let finish_layout layout_staged =
  let* drc = P.run drc_pass layout_staged in
  let* emitted = P.run emit_pass layout_staged in
  let* m = P.run measure_pass layout_staged in
  let mv = P.value m in
  Ok
    { layout = P.value layout_staged
    ; cif = (P.value emitted).Sc_cif.Emit.text
    ; drc_violations = P.value drc
    ; area = mv.marea
    ; transistors = mv.mtransistors
    }

(* the standard-cell middle shared by both behavioral frontends: the
   ISP and Verilog parse passes produce the same design IR, so
   compile → optimize → place → route run identically (and share cache
   keys through the staged input's digest) *)
let gates_path ~restarts ?inject design =
  let* raw = P.run ~param:"style=gates" compile_gates_pass design in
  let* opt =
    P.run
      ~param:
        (match inject with
        | None -> ""
        | Some i -> Printf.sprintf "inject=%d" i)
      optimize_pass
      (P.map (fun c -> (c, inject)) raw)
  in
  let circuit = (P.value opt).oresult.Sc_synth.Synth.circuit in
  let* placed =
    P.run
      ~param:(Printf.sprintf "style=gates;restarts=%d" restarts)
      place_pass
      (P.map
         (fun o ->
           let c = o.oresult.Sc_synth.Synth.circuit in
           (c, c.Sc_netlist.Circuit.cname, restarts))
         opt)
  in
  let* _route = P.run route_pass (P.map (fun p -> p.placement) placed) in
  Ok (P.map (fun p -> p.playout) placed, circuit)

(* [?recorder] on the drivers installs a per-run Obs recorder around
   the whole pass sequence (see [Sc_obs.Obs.with_recorder]): every
   span/counter below — including pool tasks the passes fan out —
   lands in that recorder.  Omitted, the ambient recorder applies and
   single-shot callers are unchanged. *)
let recorded recorder f =
  match recorder with
  | None -> f ()
  | Some r -> Sc_obs.Obs.with_recorder r f

let compile_behavior ?recorder ?(style = Random_logic) ?(restarts = 0)
    ?inject_fault src =
  recorded recorder @@ fun () ->
  let* design = P.run parse_pass (P.source src) in
  let* layout_staged, circuit =
    match style with
    | Random_logic -> gates_path ~restarts ?inject:inject_fault design
    | Pla_control ->
      let* pc = P.run ~param:"style=pla" compile_pla_pass design in
      let circuit = (P.value pc).presult.Sc_synth.Synth.circuit in
      let* layout = P.run ~param:"style=pla" place_pla_pass pc in
      Ok (layout, circuit)
  in
  let* c = finish_layout layout_staged in
  Ok (c, circuit)

let compile_verilog ?recorder ?(restarts = 0) ?inject_fault src =
  recorded recorder @@ fun () ->
  let* design = P.run parse_verilog_pass (P.source src) in
  let* layout_staged, circuit =
    gates_path ~restarts ?inject:inject_fault design
  in
  let* c = finish_layout layout_staged in
  Ok (c, circuit)

let verilog_design src =
  match Sc_verilog.Elaborate.design_of_source src with
  | Ok d -> Ok d
  | Error e -> Error (Diag.v ~stage:"verilog.parse" e)

let compile_layout ?recorder ?entry ?(args = []) src =
  recorded recorder @@ fun () ->
  let param =
    Printf.sprintf "entry=%s;args=%s"
      (Option.value ~default:"" entry)
      (String.concat "," (List.map string_of_int args))
  in
  let* layout =
    P.run ~param elaborate_pass
      (P.map (fun s -> (s, (entry, args))) (P.source src))
  in
  finish_layout layout
