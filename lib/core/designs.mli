(** The experiment workloads.

    Behavioral (ISP) sources for every design the experiments compile,
    plus hand-crafted structural baselines built directly on the standard
    module library — the stand-ins for the paper's "commercial design"
    comparison points (claim C4).  Each hand design implements exactly
    the same cycle semantics as its ISP description; tests verify both
    against the behavioral interpreter. *)

open Sc_netlist

(** 4-bit loadable counter with synchronous reset. *)
val counter_src : string

(** Traffic-light controller (2-bit state, car sensor, timer). *)
val traffic_src : string

(** 4-bit accumulator ALU (add/sub/and/xor) with zero flag. *)
val alu_src : string

(** 3-bit Gray-code cycle generator. *)
val gray_src : string

(** "1011" sequence detector (Mealy, 2-bit state). *)
val seqdet_src : string

(** The mini PDP-8: an 8-bit accumulator machine with a 4-bit PC, four
    8-bit scratch words in place of core memory (instructions arrive on
    an input port from an external store), and the classic instruction
    set: AND, TAD, ISZ, DCA, JMP and the OPR microcoded group
    (CLA/CMA/IAC combinations).  Encoding: bits 7..5 opcode, 4..3
    scratch-word address, 2..0 OPR micro-op field / JMP target low bits. *)
val pdp8_src : string

(** The PDP-8's combinational datapath alone — the scratch-word read
    bus, the shared adder with its operand selection, and the zero flag
    — exposed as a register-free module so the synthesized datapath can
    be equivalence-checked against the hand netlist's shared sub-blocks
    ({!hand_pdp8_dp}, E9). *)
val pdp8_dp_src : string

(** The modular reference design: a combinational mixer module feeding
    an accumulator module, bound by a [chip] block — the separate
    compilation workload ({!Sc_core.Chipdesc}, bench e17). *)
val system_src : string

(** Parsed designs (panics on internal parse error — these are fixtures). *)
val parse : string -> Sc_rtl.Ast.design

(** {2 Hand-built structural baselines} *)

(** The counter as a hand netlist: ripple increment, reset gating. *)
val hand_counter : unit -> Circuit.t

(** The traffic controller with hand-minimized next-state equations. *)
val hand_traffic : unit -> Circuit.t

(** The ALU around one shared adder (the classic structural trick). *)
val hand_alu : unit -> Circuit.t

(** The full hand PDP-8: shared adder, enable-gated registers, read bus. *)
val hand_pdp8 : unit -> Circuit.t

(** The hand PDP-8's shared sub-blocks (read bus, shared adder, zero
    flag) as a standalone combinational circuit, port-compatible with
    the synthesized {!pdp8_dp_src}. *)
val hand_pdp8_dp : unit -> Circuit.t

(** {2 Per-design stimulus generators for verification, cycle -> inputs} *)

(** Reset on cycle 0, then free-running count with occasional loads. *)
val counter_stim : int -> (string * int) list

(** Cars arriving in bursts against the timer. *)
val traffic_stim : int -> (string * int) list

(** Cycles through the opcodes with varying operands. *)
val alu_stim : int -> (string * int) list

(** Reset, then let the Gray cycle run. *)
val gray_stim : int -> (string * int) list

(** A bit stream containing (and teasing) the "1011" pattern. *)
val seqdet_stim : int -> (string * int) list

(** Drives a small program through the PDP-8: reset, arithmetic on the
    scratch words, OPR group, a JMP loop. *)
val pdp8_stim : int -> (string * int) list

(** [builtin name] — the ISP source of a builtin design: [counter],
    [traffic], [alu]/[alu4], [gray], [seqdet], [pdp8], [pdp8_dp],
    [system] (modular).  The single lookup [scc isp], [scc client] and
    the daemon's equiv resolver all share. *)
val builtin : string -> string option

(** (name, ISP source, hand baseline if any, stimulus, verify cycles) *)
val all :
  unit ->
  (string * string * Circuit.t option * (int -> (string * int) list) * int) list
