open Sc_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile_ok ?entry ?args src =
  match Sc_lang.Lang.compile ?entry ?args src with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile error: %s" (Sc_lang.Lang.error_to_string e)

let test_box_and_port () =
  let c =
    compile_ok
      {|
cell main() {
  box metal 0 0 10 4;
  box poly 2 6 4 12;
  port a poly 2 6 2 8;
}
|}
  in
  check_int "two boxes" 2 (List.length c.Cell.elements);
  check_bool "port present" true (Cell.find_port_opt c "a" <> None);
  check_int "width" 10 (Cell.width c)

let test_parameterisation () =
  let c = compile_ok ~args:[ 5 ] {|
cell strip(n) {
  box metal 0 0 n*10 4;
}
|} in
  check_int "parameterised width" 50 (Cell.width c)

let test_for_loop_and_arith () =
  let c =
    compile_ok ~args:[ 4 ]
      {|
cell tile() { box metal 0 0 4 4; }
cell main(n) {
  for i = 0 to n-1 {
    inst tile() at (i*10, 0);
  }
}
|}
  in
  check_int "four instances" 4 (List.length c.Cell.instances);
  check_int "extent" 34 (Cell.width c)

let test_hierarchy_shares_definitions () =
  let c =
    compile_ok
      {|
cell tile() { box metal 0 0 4 4; }
cell main() {
  for i = 0 to 9 { inst tile() at (i*10, 0); }
}
|}
  in
  (* one shared tile definition plus main *)
  check_int "two cells" 2 (List.length (Cell.all_cells c))

let test_parameterised_sharing () =
  let c =
    compile_ok
      {|
cell tile(w) { box metal 0 0 w 4; }
cell main() {
  inst tile(8) at (0,0);
  inst tile(8) at (20,0);
  inst tile(12) at (40,0);
}
|}
  in
  (* tile(8) shared, tile(12) separate, main *)
  check_int "three cells" 3 (List.length (Cell.all_cells c))

let test_if_and_let () =
  let c =
    compile_ok ~args:[ 7 ]
      {|
cell main(n) {
  let w = n * 2;
  if n > 5 {
    box metal 0 0 w 4;
  } else {
    box metal 0 0 4 4;
  }
}
|}
  in
  check_int "then branch" 14 (Cell.width c)

let test_wire () =
  let c =
    compile_ok
      {|
cell main() {
  wire metal 4 (0,10) (20,10) (20,30);
}
|}
  in
  check_bool "has geometry" true (Cell.bbox c <> None);
  check_int "bbox height" 24 (Cell.height c)

let test_stdcell_builtins_and_combinators () =
  let c =
    compile_ok
      {|
cell main() {
  inst beside(inv(), nand2()) at (0,0);
  inst rowof(3, nor2()) at (0, 50);
}
|}
  in
  check_bool "DRC clean" true (Sc_drc.Checker.is_clean c);
  check_int "two instances" 2 (List.length c.Cell.instances)

let test_width_height_builtins () =
  let c =
    compile_ok
      {|
cell main() {
  let w = width(inv());
  box metal 0 0 w 4;
}
|}
  in
  check_int "inv width" 14 (Cell.width c)

let test_orient () =
  let c =
    compile_ok
      {|
cell bar() { box metal 0 0 10 2; }
cell main() {
  inst bar() at (0,0) orient R90;
}
|}
  in
  (* R90 turns 10x2 into 2x10 *)
  check_int "rotated" 10 (Cell.height c)

let test_entry_selection () =
  let src = {|
cell a() { box metal 0 0 4 4; }
cell b() { box metal 0 0 8 4; }
|} in
  check_int "default entry is last" 8 (Cell.width (compile_ok src));
  check_int "named entry" 4 (Cell.width (compile_ok ~entry:"a" src))

let test_errors () =
  let expect_error ?entry ?args src pattern =
    match Sc_lang.Lang.compile ?entry ?args src with
    | Ok _ -> Alcotest.failf "expected error matching %s" pattern
    | Error e ->
      let msg = Sc_lang.Lang.error_to_string e in
      let contains =
        let n = String.length msg and m = String.length pattern in
        let rec go i = i + m <= n && (String.sub msg i m = pattern || go (i + 1)) in
        go 0
      in
      check_bool (pattern ^ " in " ^ msg) true contains
  in
  expect_error "cell main() { box copper 0 0 4 4; }" "unknown layer";
  expect_error "cell main() { inst ghost(); }" "unknown cell";
  expect_error "cell main() { wire metal 3 (0,0) (8,0); }" "even";
  expect_error "cell main() { wire metal 4 (0,0) (8,6); }" "Manhattan";
  expect_error "cell main(n) { box metal 0 0 n 4; }" "expects 1 arguments";
  expect_error "cell inv() { box metal 0 0 4 4; }" "shadows a builtin";
  expect_error "cell main() { let x = 1/0; box metal 0 0 4 4; }" "division";
  expect_error
    "cell r(n) { inst r(n) at (10, 0); } cell main() { inst r(3); }"
    "too deep"

let test_compiles_to_clean_cif () =
  (* the paper's end-to-end claim: text -> layout -> manufacturing data *)
  let c =
    compile_ok ~args:[ 6 ]
      {|
cell tile() {
  box diff 0 0 8 4;
  box metal 0 6 8 9;
}
cell main(n) {
  for i = 0 to n-1 { inst tile() at (i*12, 0); }
}
|}
  in
  check_bool "DRC clean" true (Sc_drc.Checker.is_clean c);
  check_bool "CIF roundtrip" true (Sc_cif.Elaborate.roundtrip_ok c)

let suite =
  [ Alcotest.test_case "box and port" `Quick test_box_and_port
  ; Alcotest.test_case "parameterisation" `Quick test_parameterisation
  ; Alcotest.test_case "for loop" `Quick test_for_loop_and_arith
  ; Alcotest.test_case "hierarchy shares definitions" `Quick test_hierarchy_shares_definitions
  ; Alcotest.test_case "parameterised sharing" `Quick test_parameterised_sharing
  ; Alcotest.test_case "if and let" `Quick test_if_and_let
  ; Alcotest.test_case "wire" `Quick test_wire
  ; Alcotest.test_case "stdcell builtins" `Quick test_stdcell_builtins_and_combinators
  ; Alcotest.test_case "width/height builtins" `Quick test_width_height_builtins
  ; Alcotest.test_case "orientation" `Quick test_orient
  ; Alcotest.test_case "entry selection" `Quick test_entry_selection
  ; Alcotest.test_case "errors" `Quick test_errors
  ; Alcotest.test_case "text to clean CIF" `Quick test_compiles_to_clean_cif
  ]
