test/test_logic.ml: Alcotest Array Cover Cube Expr Minimize Printf QCheck QCheck_alcotest Sc_logic
