test/test_drc.ml: Alcotest Cell Checker Layer List QCheck QCheck_alcotest Rect Rules Sc_drc Sc_geom Sc_layout Sc_tech Transform
