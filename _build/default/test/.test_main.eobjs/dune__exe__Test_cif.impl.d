test/test_cif.ml: Alcotest Ast Cell Elaborate Emit Flatten Layer List Point Printf QCheck QCheck_alcotest Rect Sc_cif Sc_geom Sc_layout Sc_tech String Transform
