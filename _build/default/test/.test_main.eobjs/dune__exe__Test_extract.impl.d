test/test_extract.ml: Alcotest Array Cell Extractor List Printf QCheck QCheck_alcotest Sc_cif Sc_drc Sc_extract Sc_layout Sc_logic Sc_pla Sc_stdcell Switch
