test/test_netlist.ml: Alcotest Array Builder Circuit Gate List Optimize Printf QCheck QCheck_alcotest Sc_netlist Sc_sim String Timing
