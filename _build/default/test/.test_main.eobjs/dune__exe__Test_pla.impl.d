test/test_pla.ml: Alcotest Array Cover Cube Engine Format List Option Printf QCheck QCheck_alcotest Sc_drc Sc_layout Sc_logic Sc_pla Sc_rom Sc_sim
