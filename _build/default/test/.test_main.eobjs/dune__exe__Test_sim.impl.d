test/test_sim.ml: Alcotest Array Builder Engine Gate Option Printf QCheck QCheck_alcotest Sc_netlist Sc_sim String
