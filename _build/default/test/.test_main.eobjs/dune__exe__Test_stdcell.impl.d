test/test_stdcell.ml: Alcotest Array Builder Cell Flatten Format Gate Library List Nmos Sc_cif Sc_drc Sc_geom Sc_layout Sc_netlist Sc_stdcell Sc_tech Stats
