test/test_chip.ml: Alcotest Assemble Cell Format List Sc_chip Sc_cif Sc_drc Sc_geom Sc_layout Sc_tech
