test/test_place_route.ml: Alcotest Array Builder List Printf QCheck QCheck_alcotest Sc_drc Sc_layout Sc_netlist Sc_place Sc_route
