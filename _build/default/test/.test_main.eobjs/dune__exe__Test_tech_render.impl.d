test/test_tech_render.ml: Alcotest Cell Filename Format Layer List Render Rules Sc_geom Sc_layout Sc_stdcell Sc_tech String Sys
