test/test_rtl.ml: Alcotest Ast Check Format Interp List Parser Printf Sc_rtl String
