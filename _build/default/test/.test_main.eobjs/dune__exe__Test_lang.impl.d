test/test_lang.ml: Alcotest Cell List Sc_cif Sc_drc Sc_lang Sc_layout String
