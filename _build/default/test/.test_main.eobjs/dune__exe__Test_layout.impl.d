test/test_layout.ml: Alcotest Cell Compose Flatten Layer List Point Printf Rect Sc_geom Sc_layout Sc_tech Stats Transform
