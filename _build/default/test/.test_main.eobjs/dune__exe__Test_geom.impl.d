test/test_geom.ml: Alcotest Format List Path Point QCheck QCheck_alcotest Rect Sc_geom Transform
