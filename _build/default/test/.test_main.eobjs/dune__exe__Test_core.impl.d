test/test_core.ml: Alcotest Compiler Designs List Printf Sc_core Sc_netlist Sc_rtl Sc_synth String
