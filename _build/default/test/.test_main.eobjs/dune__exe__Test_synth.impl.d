test/test_synth.ml: Alcotest Array List Parser Printf QCheck QCheck_alcotest Sc_drc Sc_netlist Sc_pla Sc_rtl Sc_synth
