open Sc_rtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter_src =
  {|
-- 4-bit counter with synchronous reset and load
module counter;
inputs reset[1], load[1], data[4];
outputs q[4];
registers count[4];
behavior
  if reset == 1 then count := 0;
  else
    if load == 1 then count := data;
    else count := count + 1;
    end
  end
  q := count;
end
|}

let parse_ok src =
  match Parser.parse src with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_counter () =
  let d = parse_ok counter_src in
  check_int "inputs" 3 (List.length d.Ast.inputs);
  check_int "outputs" 1 (List.length d.Ast.outputs);
  check_int "registers" 1 (List.length d.Ast.regs);
  Alcotest.(check (list string)) "checks clean" [] (Check.check d)

let test_parse_expr_precedence () =
  match Parser.parse_expr "a + b & c" with
  | Ok (Ast.Binop (Ast.And, Ast.Binop (Ast.Add, _, _), _)) -> ()
  | Ok e -> Alcotest.failf "wrong tree: %s" (Format.asprintf "%a" Ast.pp_expr e)
  | Error e -> Alcotest.fail e

let test_parse_literals () =
  (match Parser.parse_expr "0x1f" with
  | Ok (Ast.Const 31) -> ()
  | _ -> Alcotest.fail "hex literal");
  match Parser.parse_expr "0b1010" with
  | Ok (Ast.Const 10) -> ()
  | _ -> Alcotest.fail "binary literal"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    [ "module x behavior end" (* missing ; *)
    ; "module x; behavior y = 1; end" (* = instead of := *)
    ; "module x; behavior if a then end" (* missing end for module *)
    ]

let test_check_catches () =
  let reject src expect_substring =
    let d = parse_ok src in
    let errs = Check.check d in
    check_bool
      (Printf.sprintf "%s reported" expect_substring)
      true
      (List.exists
         (fun e ->
           let rec contains i =
             i + String.length expect_substring <= String.length e
             && (String.sub e i (String.length expect_substring)
                 = expect_substring
                || contains (i + 1))
           in
           contains 0)
         errs)
  in
  reject "module x; inputs a[1]; outputs y[1]; behavior y := b; end"
    "undeclared";
  reject "module x; inputs a[1]; outputs y[1]; behavior a := 1; y := 0; end"
    "input";
  reject "module x; inputs a[1]; outputs y[1]; behavior if a == 1 then y := 1; end end"
    "every path";
  reject "module x; inputs a[4]; outputs y[1]; behavior y := a[7]; end"
    "out of range";
  reject "module x; inputs a[4], s[2]; outputs y[4]; behavior y := a << s; end"
    "constant";
  reject "module x; outputs y[1]; behavior y := y; end" "write-only"

let test_interp_counter () =
  let t = Interp.create (parse_ok counter_src) in
  Interp.set_input t "reset" 1;
  Interp.step t;
  check_int "reset" 0 (Interp.reg t "count");
  Interp.set_input t "reset" 0;
  for i = 1 to 20 do
    Interp.step t;
    check_int "count" (i land 15) (Interp.reg t "count");
    (* outputs read registers non-blocking: q lags count by one cycle *)
    check_int "q lags" ((i - 1) land 15) (Interp.output t "q")
  done;
  Interp.set_input t "load" 1;
  Interp.set_input t "data" 9;
  Interp.step t;
  check_int "loaded" 9 (Interp.reg t "count");
  Interp.set_input t "load" 0;
  Interp.step t;
  check_int "counts from load" 10 (Interp.reg t "count");
  check_int "q shows load" 9 (Interp.output t "q")

let test_interp_nonblocking_registers () =
  (* swap: both registers read pre-cycle values *)
  let src =
    {|
module swap;
inputs seed[1];
outputs x[4], y[4];
registers a[4], b[4];
behavior
  if seed == 1 then a := 1; b := 2;
  else a := b; b := a;
  end
  x := a; y := b;
end
|}
  in
  let t = Interp.create (parse_ok src) in
  Interp.set_input t "seed" 1;
  Interp.step t;
  Interp.set_input t "seed" 0;
  Interp.step t;
  check_int "a got old b" 2 (Interp.reg t "a");
  check_int "b got old a" 1 (Interp.reg t "b");
  Interp.step t;
  check_int "swapped back" 1 (Interp.reg t "a")

let test_interp_output_chaining () =
  (* outputs update combinationally within the cycle; later statements
     override earlier ones *)
  let src =
    {|
module chain;
inputs a[2];
outputs y[2];
behavior
  y := a;
  if a == 3 then y := 0; end
end
|}
  in
  let t = Interp.create (parse_ok src) in
  Interp.set_input t "a" 2;
  Interp.step t;
  check_int "passes" 2 (Interp.output t "y");
  Interp.set_input t "a" 3;
  Interp.step t;
  check_int "overridden" 0 (Interp.output t "y")

let test_interp_decode () =
  let src =
    {|
module dec;
inputs s[2];
outputs y[4];
behavior
  decode s
    0: y := 1;
    1: y := 2;
    2: y := 4;
    default: y := 8;
  end
end
|}
  in
  let t = Interp.create (parse_ok src) in
  List.iter
    (fun (s, expected) ->
      Interp.set_input t "s" s;
      Interp.step t;
      check_int (Printf.sprintf "case %d" s) expected (Interp.output t "y"))
    [ (0, 1); (1, 2); (2, 4); (3, 8) ]

let test_interp_operators () =
  let src =
    {|
module ops;
inputs a[4], b[4];
outputs sum[4], diff[4], lt[1], gt[1], eq[1], sh[4], inv[4];
behavior
  sum := a + b;
  diff := a - b;
  lt := a < b;
  gt := a > b;
  eq := a == b;
  sh := a << 1;
  inv := ~a;
end
|}
  in
  let t = Interp.create (parse_ok src) in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Interp.set_input t "a" a;
      Interp.set_input t "b" b;
      Interp.step t;
      check_int "sum" ((a + b) land 15) (Interp.output t "sum");
      check_int "diff" ((a - b) land 15) (Interp.output t "diff");
      check_int "lt" (if a < b then 1 else 0) (Interp.output t "lt");
      check_int "gt" (if a > b then 1 else 0) (Interp.output t "gt");
      check_int "eq" (if a = b then 1 else 0) (Interp.output t "eq");
      check_int "sh" ((a lsl 1) land 15) (Interp.output t "sh");
      check_int "inv" (lnot a land 15) (Interp.output t "inv")
    done
  done

let test_pp_roundtrip () =
  let d = parse_ok counter_src in
  let printed = Format.asprintf "%a" Ast.pp d in
  let d2 = parse_ok printed in
  check_bool "reparse equal" true (d = d2)


(* --- wires: combinational temporaries --- *)

let wires_src =
  {|
module shared;
inputs sel[1], a[4], b[4];
outputs y[4], carrylike[4];
wires operand[4], sum[4];
behavior
  if sel == 1 then operand := b; else operand := a; end
  sum := a + operand;
  y := sum;
  carrylike := sum & operand;
end
|}

let test_wires_blocking_reads () =
  let t = Interp.create (parse_ok wires_src) in
  Interp.set_input t "a" 3;
  Interp.set_input t "b" 5;
  Interp.set_input t "sel" 1;
  Interp.step t;
  check_int "sum through wire" 8 (Interp.output t "y");
  check_int "wire reused" (8 land 5) (Interp.output t "carrylike");
  Interp.set_input t "sel" 0;
  Interp.step t;
  check_int "other operand" 6 (Interp.output t "y")

let test_wires_carry_no_state () =
  (* a wire assigned under one condition and re-assigned unconditionally
     the next cycle never leaks the previous cycle's value *)
  let src =
    {|
module w;
inputs x[2];
outputs y[2];
wires t[2];
behavior
  t := x;
  y := t;
end
|}
  in
  let t = Interp.create (parse_ok src) in
  Interp.set_input t "x" 3;
  Interp.step t;
  check_int "first" 3 (Interp.output t "y");
  Interp.set_input t "x" 0;
  Interp.step t;
  check_int "no stale value" 0 (Interp.output t "y")

let test_wire_read_before_assign_rejected () =
  let d =
    parse_ok
      "module w; inputs a[1]; outputs y[1]; wires t[1]; behavior y := t; t := a; end"
  in
  check_bool "rejected" true
    (List.exists
       (fun e ->
         let pat = "read before assignment" in
         let n = String.length e and m = String.length pat in
         let rec go i = i + m <= n && (String.sub e i m = pat || go (i + 1)) in
         go 0)
       (Check.check d))

let test_wire_conditional_read_rejected () =
  (* assigned only in one branch, read after the join: rejected *)
  let d =
    parse_ok
      {|
module w;
inputs a[1];
outputs y[1];
wires t[1];
behavior
  if a == 1 then t := 1; end
  y := t;
end
|}
  in
  check_bool "rejected" true (Check.check d <> [])

let test_wire_branch_covered_read_ok () =
  let d =
    parse_ok
      {|
module w;
inputs a[1];
outputs y[1];
wires t[1];
behavior
  if a == 1 then t := 1; else t := 0; end
  y := t;
end
|}
  in
  Alcotest.(check (list string)) "accepted" [] (Check.check d)

let suite =
  [ Alcotest.test_case "parse counter" `Quick test_parse_counter
  ; Alcotest.test_case "expression precedence" `Quick test_parse_expr_precedence
  ; Alcotest.test_case "literals" `Quick test_parse_literals
  ; Alcotest.test_case "parse errors" `Quick test_parse_errors
  ; Alcotest.test_case "checker catches misuse" `Quick test_check_catches
  ; Alcotest.test_case "interp counter" `Quick test_interp_counter
  ; Alcotest.test_case "non-blocking registers" `Quick test_interp_nonblocking_registers
  ; Alcotest.test_case "output chaining" `Quick test_interp_output_chaining
  ; Alcotest.test_case "decode" `Quick test_interp_decode
  ; Alcotest.test_case "operators exhaustive" `Quick test_interp_operators
  ; Alcotest.test_case "pretty-print roundtrip" `Quick test_pp_roundtrip
  ; Alcotest.test_case "wires: blocking reads" `Quick test_wires_blocking_reads
  ; Alcotest.test_case "wires: no state" `Quick test_wires_carry_no_state
  ; Alcotest.test_case "wires: read-before-assign rejected" `Quick test_wire_read_before_assign_rejected
  ; Alcotest.test_case "wires: conditional read rejected" `Quick test_wire_conditional_read_rejected
  ; Alcotest.test_case "wires: covered read accepted" `Quick test_wire_branch_covered_read_ok
  ]
