open Sc_geom
open Sc_tech
open Sc_layout
open Sc_cif

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let leaf =
  Cell.make ~name:"leaf"
    ~ports:[ Cell.port "p" Layer.Metal (Rect.make 4 0 4 2) ]
    [ Cell.box Layer.Metal (Rect.make 0 0 4 2)
    ; Cell.box Layer.Poly (Rect.make 1 0 3 5)
    ]

let hierarchical =
  let mid =
    Cell.make ~name:"mid"
      ~instances:
        [ Cell.instantiate ~name:"a" leaf
        ; Cell.instantiate ~name:"b"
            ~trans:(Transform.make ~orient:Transform.R90 (Point.make 10 3))
            leaf
        ]
      [ Cell.wire Layer.Diffusion ~width:2 [ Point.make 0 8; Point.make 12 8 ] ]
  in
  Cell.make ~name:"top"
    ~instances:
      [ Cell.instantiate ~name:"m0" mid
      ; Cell.instantiate ~name:"m1"
          ~trans:(Transform.make ~orient:Transform.MX (Point.make 0 30))
          mid
      ]
    []

let test_ast_check_ok () =
  let file = Emit.file_of_cell hierarchical in
  Alcotest.(check (list string)) "well-formed" [] (Ast.check file)

let test_ast_check_catches () =
  let bad = [ Ast.Def_start (1, 100, 1); Ast.Def_start (2, 100, 1) ] in
  check_bool "nested DS reported" true (List.length (Ast.check bad) > 0);
  let bad2 = [ Ast.Box { length = 2; width = 2; cx = 1; cy = 1 }; Ast.End ] in
  check_bool "geometry outside DS reported" true (List.length (Ast.check bad2) > 0)

let test_emit_contains_symbols () =
  let s = Emit.to_string hierarchical in
  check_bool "has DS" true (String.length s > 0 && String.index_opt s 'D' <> None);
  (* three symbols: leaf, mid, top *)
  let count_sub sub =
    let n = ref 0 in
    let ls = String.length s and lsub = String.length sub in
    for i = 0 to ls - lsub do
      if String.sub s i lsub = sub then incr n
    done;
    !n
  in
  check_int "three DS" 3 (count_sub "DS ");
  check_int "three DF" 3 (count_sub "DF;")

let test_roundtrip_simple () =
  check_bool "leaf roundtrips" true (Elaborate.roundtrip_ok leaf)

let test_roundtrip_hierarchical () =
  check_bool "hierarchy roundtrips" true (Elaborate.roundtrip_ok hierarchical)

let test_roundtrip_all_orients () =
  List.iter
    (fun o ->
      let c =
        Cell.make ~name:"o"
          ~instances:
            [ Cell.instantiate ~name:"i"
                ~trans:(Transform.make ~orient:o (Point.make 7 (-3)))
                leaf
            ]
          []
      in
      check_bool (Transform.orient_to_string o) true (Elaborate.roundtrip_ok c))
    Transform.all_orients

let test_roundtrip_ports () =
  match Elaborate.of_string (Emit.to_string leaf) with
  | Error e -> Alcotest.fail (Elaborate.error_to_string e)
  | Ok c ->
    let p = Cell.find_port c "p" in
    check_bool "port centre preserved" true
      (Point.equal (Rect.center p.Cell.rect) (Point.make 4 1));
    Alcotest.(check string) "cell name preserved" "leaf" c.Cell.name

let test_parse_box_direction () =
  let text = "DS 1 250 1;\nL NM;\nB 4 2 2 1 0 1;\nDF;\nC 1;\nE" in
  match Elaborate.of_string text with
  | Error e -> Alcotest.fail (Elaborate.error_to_string e)
  | Ok c ->
    (* direction (0,1) swaps length and width: the box is 2 wide, 4 tall *)
    let boxes = Flatten.run c in
    check_int "one box" 1 (List.length boxes);
    let b = List.hd boxes in
    check_bool "rotated box" true (Rect.equal b.Flatten.rect (Rect.make 1 (-1) 3 3))

let test_parse_wire () =
  let text = "DS 1 250 1;\nL NP;\nW 2 0 0 6 0;\nDF;\nC 1;\nE" in
  match Elaborate.of_string text with
  | Error e -> Alcotest.fail (Elaborate.error_to_string e)
  | Ok c ->
    let boxes = Flatten.run c in
    check_int "one segment" 1 (List.length boxes);
    check_bool "padded rect" true
      (Rect.equal (List.hd boxes).Flatten.rect (Rect.make (-1) (-1) 7 1))

let test_parse_polygon_rect () =
  let text = "DS 1 250 1;\nL ND;\nP 0 0 0 4 6 4 6 0;\nDF;\nC 1;\nE" in
  match Elaborate.of_string text with
  | Error e -> Alcotest.fail (Elaborate.error_to_string e)
  | Ok c ->
    check_bool "rectangle recovered" true
      (Rect.equal (List.hd (Flatten.run c)).Flatten.rect (Rect.make 0 0 6 4))

let test_parse_comments_and_lowercase () =
  let text = "(header comment (nested));\nDS 1 250 1;\nL NM;\nBox 4 4 2 2;\nDF;\nC 1;\nE" in
  match Elaborate.of_string text with
  | Error e -> Alcotest.fail (Elaborate.error_to_string e)
  | Ok c -> check_int "one box" 1 (List.length (Flatten.run c))

let test_errors () =
  let unknown_layer = "DS 1 250 1;\nL XX;\nB 2 2 1 1;\nDF;\nE" in
  (match Elaborate.of_string unknown_layer with
  | Error (Elaborate.Unknown_layer _) -> ()
  | _ -> Alcotest.fail "expected unknown layer");
  let undefined = "DS 1 250 1;\nC 9;\nDF;\nE" in
  (match Elaborate.of_string undefined with
  | Error (Elaborate.Undefined_symbol 9) -> ()
  | _ -> Alcotest.fail "expected undefined symbol");
  let offgrid = "DS 1 3 1;\nL NM;\nB 2 2 1 1;\nDF;\nE" in
  (match Elaborate.of_string offgrid with
  | Error (Elaborate.Off_grid _) -> ()
  | _ -> Alcotest.fail "expected off-grid");
  match Elaborate.of_string "garbage @!" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

(* property: random cell hierarchies roundtrip exactly *)
let gen_cell =
  let open QCheck.Gen in
  let gen_rect =
    map2
      (fun (x, y) (w, h) -> Rect.make x y (x + 1 + w) (y + 1 + h))
      (pair (int_range (-20) 20) (int_range (-20) 20))
      (pair (int_range 0 15) (int_range 0 15))
  in
  let gen_layer = oneofl [ Layer.Diffusion; Layer.Poly; Layer.Metal; Layer.Contact ] in
  let gen_leaf =
    map2
      (fun boxes i ->
        Cell.make ~name:(Printf.sprintf "leaf%d" i)
          (List.map (fun (l, r) -> Cell.box l r) boxes))
      (list_size (int_range 1 5) (pair gen_layer gen_rect))
      (int_range 0 1000)
  in
  let gen_trans =
    map2
      (fun o (x, y) -> Transform.make ~orient:o (Point.make x y))
      (oneofl Transform.all_orients)
      (pair (int_range (-30) 30) (int_range (-30) 30))
  in
  let* leaves = list_size (int_range 1 3) gen_leaf in
  let* placements =
    list_size (int_range 1 6)
      (pair (int_range 0 (List.length leaves - 1)) gen_trans)
  in
  return
    (Cell.make ~name:"top"
       ~instances:
         (List.mapi
            (fun k (i, t) ->
              Cell.instantiate ~name:(Printf.sprintf "i%d" k) ~trans:t
                (List.nth leaves i))
            placements)
       [])

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random hierarchies roundtrip through CIF" ~count:100
       (QCheck.make gen_cell) Elaborate.roundtrip_ok)

let suite =
  [ Alcotest.test_case "ast check accepts emitted file" `Quick test_ast_check_ok
  ; Alcotest.test_case "ast check catches misuse" `Quick test_ast_check_catches
  ; Alcotest.test_case "emit contains symbols" `Quick test_emit_contains_symbols
  ; Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple
  ; Alcotest.test_case "roundtrip hierarchical" `Quick test_roundtrip_hierarchical
  ; Alcotest.test_case "roundtrip all orientations" `Quick test_roundtrip_all_orients
  ; Alcotest.test_case "roundtrip ports and names" `Quick test_roundtrip_ports
  ; Alcotest.test_case "parse box with direction" `Quick test_parse_box_direction
  ; Alcotest.test_case "parse wire" `Quick test_parse_wire
  ; Alcotest.test_case "parse rectangular polygon" `Quick test_parse_polygon_rect
  ; Alcotest.test_case "parse comments and lowercase" `Quick test_parse_comments_and_lowercase
  ; Alcotest.test_case "elaboration errors" `Quick test_errors
  ; prop_roundtrip
  ]
