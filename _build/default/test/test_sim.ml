open Sc_netlist
open Sc_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let adder4 () =
  let b = Builder.create "adder4" in
  let xs = Builder.input b "x" 4 in
  let ys = Builder.input b "y" 4 in
  let sums, cout = Builder.adder b xs ys in
  Builder.output b "sum" sums;
  Builder.output b "cout" [| cout |];
  Builder.finish b

let counter4 () =
  (* 4-bit counter with synchronous reset *)
  let b = Builder.create "counter4" in
  let reset = (Builder.input b "reset" 1).(0) in
  let q = Builder.fresh_vec b 4 in
  let one = Array.init 4 (fun i -> if i = 0 then Builder.const1 else Builder.const0) in
  let next, _ = Builder.adder b q one in
  let gated = Array.map (fun n -> Builder.and2 b n (Builder.not_ b reset)) next in
  Array.iteri (fun i d -> Builder.gate_into b Gate.Dff [| d |] q.(i)) gated;
  Builder.output b "q" q;
  Builder.finish b

let test_adder_exhaustive () =
  let t = Engine.create (adder4 ()) in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Engine.set_input_int t "x" x;
      Engine.set_input_int t "y" y;
      (match Engine.get_output_int t "sum" with
      | Some s -> check_int (Printf.sprintf "%d+%d" x y) ((x + y) land 15) s
      | None -> Alcotest.fail "X on sum");
      match Engine.get_output_int t "cout" with
      | Some c -> check_int "carry" ((x + y) lsr 4) c
      | None -> Alcotest.fail "X on cout"
    done
  done

let test_counter_counts () =
  let t = Engine.create (counter4 ()) in
  Engine.set_input_int t "reset" 1;
  Engine.step t;
  check_int "reset to zero" 0 (Option.get (Engine.get_output_int t "q"));
  Engine.set_input_int t "reset" 0;
  for expected = 1 to 20 do
    Engine.step t;
    check_int "count" (expected land 15)
      (Option.get (Engine.get_output_int t "q"))
  done

let test_uninitialized_ff_is_x () =
  let t = Engine.create (counter4 ()) in
  (* before any reset the counter state is unknown *)
  Engine.set_input_int t "reset" 0;
  check_bool "q is X" true (Engine.get_output_int t "q" = None)

let test_x_blocked_by_controlling_zero () =
  let b = Builder.create "ctrl" in
  let a = (Builder.input b "a" 1).(0) in
  let q = Builder.dff b (Builder.not_ b a) in
  (* q is X before any clock; AND with 0 must still read 0 *)
  let y = Builder.and2 b q Builder.const0 in
  let z = Builder.or2 b q Builder.const1 in
  Builder.output b "y" [| y |];
  Builder.output b "z" [| z |];
  let t = Engine.create (Builder.finish b) in
  Engine.set_input_int t "a" 0;
  check_int "0 and X" 0 (Option.get (Engine.get_output_int t "y"));
  check_int "1 or X" 1 (Option.get (Engine.get_output_int t "z"))

let test_mux_x_select_agreement () =
  let b = Builder.create "muxx" in
  let d = (Builder.input b "d" 1).(0) in
  let sel_x = Builder.dff b d in
  (* mux with equal data resolves despite X select *)
  let y = Builder.mux2 b ~sel:sel_x d d in
  Builder.output b "y" [| y |];
  let t = Engine.create (Builder.finish b) in
  Engine.set_input_int t "d" 1;
  check_int "agreeing mux" 1 (Option.get (Engine.get_output_int t "y"))

let test_dffe_holds () =
  let b = Builder.create "hold" in
  let d = (Builder.input b "d" 1).(0) in
  let en = (Builder.input b "en" 1).(0) in
  let q = Builder.dffe b ~en d in
  Builder.output b "q" [| q |];
  let t = Engine.create (Builder.finish b) in
  Engine.set_input_int t "d" 1;
  Engine.set_input_int t "en" 1;
  Engine.step t;
  check_int "loaded" 1 (Option.get (Engine.get_output_int t "q"));
  Engine.set_input_int t "d" 0;
  Engine.set_input_int t "en" 0;
  Engine.step t;
  check_int "held" 1 (Option.get (Engine.get_output_int t "q"));
  Engine.set_input_int t "en" 1;
  Engine.step t;
  check_int "loaded new" 0 (Option.get (Engine.get_output_int t "q"))

let test_rejects_cyclic () =
  let b = Builder.create "cyc" in
  let n1 = Builder.fresh b in
  let n2 = Builder.fresh b in
  Builder.gate_into b Gate.Inv [| n2 |] n1;
  Builder.gate_into b Gate.Inv [| n1 |] n2;
  Builder.output b "y" [| n2 |];
  let c = Builder.finish b in
  check_bool "rejected" true
    (try
       ignore (Engine.create c);
       false
     with Invalid_argument _ -> true)

let test_events_counted () =
  let t = Engine.create (adder4 ()) in
  let e0 = Engine.events t in
  Engine.set_input_int t "x" 5;
  Engine.set_input_int t "y" 7;
  check_bool "events advance" true (Engine.events t > e0)

let test_snapshot () =
  let t = Engine.create (adder4 ()) in
  Engine.set_input_int t "x" 3;
  Engine.set_input_int t "y" 1;
  let s = Engine.port_snapshot t in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "mentions sum" true (contains "sum=0100")

(* property: simulated ripple adder equals machine addition on random pairs
   of widths up to 8 *)
let prop_adder_random =
  let gen = QCheck.Gen.(triple (int_range 1 8) (int_range 0 255) (int_range 0 255)) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random-width adders add" ~count:60
       (QCheck.make gen) (fun (w, x, y) ->
         let x = x land ((1 lsl w) - 1) and y = y land ((1 lsl w) - 1) in
         let b = Builder.create "a" in
         let xs = Builder.input b "x" w in
         let ys = Builder.input b "y" w in
         let sums, cout = Builder.adder b xs ys in
         Builder.output b "sum" sums;
         Builder.output b "cout" [| cout |];
         let t = Engine.create (Builder.finish b) in
         Engine.set_input_int t "x" x;
         Engine.set_input_int t "y" y;
         Engine.get_output_int t "sum" = Some ((x + y) land ((1 lsl w) - 1))
         && Engine.get_output_int t "cout" = Some ((x + y) lsr w)))

let suite =
  [ Alcotest.test_case "adder exhaustive" `Quick test_adder_exhaustive
  ; Alcotest.test_case "counter counts" `Quick test_counter_counts
  ; Alcotest.test_case "uninitialized ff reads X" `Quick test_uninitialized_ff_is_x
  ; Alcotest.test_case "controlling values beat X" `Quick test_x_blocked_by_controlling_zero
  ; Alcotest.test_case "mux X select agreement" `Quick test_mux_x_select_agreement
  ; Alcotest.test_case "dffe holds" `Quick test_dffe_holds
  ; Alcotest.test_case "cyclic circuit rejected" `Quick test_rejects_cyclic
  ; Alcotest.test_case "events counted" `Quick test_events_counted
  ; Alcotest.test_case "port snapshot" `Quick test_snapshot
  ; prop_adder_random
  ]
