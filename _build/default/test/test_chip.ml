open Sc_layout
open Sc_chip

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let core_with_ports () =
  (* a simple core: a metal block with ports on each side *)
  Cell.make ~name:"core"
    ~ports:
      [ Cell.port "south" Sc_tech.Layer.Metal (Sc_geom.Rect.make 96 0 104 0)
      ; Cell.port "north" Sc_tech.Layer.Metal (Sc_geom.Rect.make 96 200 104 200)
      ; Cell.port "west" Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 96 0 104)
      ; Cell.port "east" Sc_tech.Layer.Metal (Sc_geom.Rect.make 200 96 200 104)
      ]
    [ Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 200 200) ]

let test_pad_is_clean () =
  check_bool "pad DRC" true (Sc_drc.Checker.is_clean (Assemble.pad ()))

let test_assembly_structure () =
  let a = Assemble.assemble ~name:"chip" ~core:(core_with_ports ()) ~pads:12 () in
  check_int "pad count" 12 a.Assemble.pads;
  (* 12 pads + 1 core instance *)
  check_int "instances" 13 (List.length a.Assemble.chip.Cell.instances);
  check_bool "overhead above 1" true (a.Assemble.overhead > 1.0);
  (* every pad exposes its pin as a chip port *)
  check_int "chip ports" 12 (List.length a.Assemble.chip.Cell.ports)

let test_assembly_drc_clean () =
  let a = Assemble.assemble ~name:"chip" ~core:(core_with_ports ()) ~pads:8 () in
  Alcotest.(check (list string)) "clean" []
    (List.map
       (Format.asprintf "%a" Sc_drc.Checker.pp_violation)
       (Sc_drc.Checker.check a.Assemble.chip))

let test_assembly_with_bindings () =
  (* pad 0 is on the bottom; bind it to the core's south port *)
  let a =
    Assemble.assemble
      ~bind:[ (0, "south") ]
      ~name:"chip" ~core:(core_with_ports ()) ~pads:4 ()
  in
  check_bool "clean with binding" true (Sc_drc.Checker.is_clean a.Assemble.chip)

let test_bad_binding_rejected () =
  check_bool "raises" true
    (try
       ignore
         (Assemble.assemble
            ~bind:[ (0, "nowhere") ]
            ~name:"chip" ~core:(core_with_ports ()) ~pads:4 ());
       false
     with Invalid_argument _ -> true)

let test_min_pads () =
  check_bool "raises" true
    (try
       ignore (Assemble.assemble ~name:"c" ~core:(core_with_ports ()) ~pads:3 ());
       false
     with Invalid_argument _ -> true)

let test_overhead_shrinks_with_core () =
  (* bigger cores amortize the pad ring: overhead must fall *)
  let core n =
    Cell.make ~name:"c"
      [ Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 n n) ]
  in
  let small = Assemble.assemble ~name:"s" ~core:(core 100) ~pads:8 () in
  let big = Assemble.assemble ~name:"b" ~core:(core 600) ~pads:8 () in
  check_bool "amortized" true (big.Assemble.overhead < small.Assemble.overhead)

let test_cif_roundtrip () =
  let a = Assemble.assemble ~name:"chip" ~core:(core_with_ports ()) ~pads:6 () in
  check_bool "roundtrips" true (Sc_cif.Elaborate.roundtrip_ok a.Assemble.chip)

let suite =
  [ Alcotest.test_case "pad DRC clean" `Quick test_pad_is_clean
  ; Alcotest.test_case "assembly structure" `Quick test_assembly_structure
  ; Alcotest.test_case "assembly DRC clean" `Quick test_assembly_drc_clean
  ; Alcotest.test_case "assembly with bindings" `Quick test_assembly_with_bindings
  ; Alcotest.test_case "bad binding rejected" `Quick test_bad_binding_rejected
  ; Alcotest.test_case "minimum pads" `Quick test_min_pads
  ; Alcotest.test_case "overhead amortizes" `Quick test_overhead_shrinks_with_core
  ; Alcotest.test_case "chip CIF roundtrip" `Quick test_cif_roundtrip
  ]
