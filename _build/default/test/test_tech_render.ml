open Sc_tech
open Sc_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- technology --- *)

let test_layer_cif_names_roundtrip () =
  List.iter
    (fun l ->
      match Layer.of_cif_name (Layer.cif_name l) with
      | Some l' -> check_bool (Layer.to_string l) true (Layer.equal l l')
      | None -> Alcotest.fail "missing roundtrip")
    Layer.all;
  check_bool "unknown rejected" true (Layer.of_cif_name "XX" = None)

let test_layer_indices_dense () =
  let idx = List.map Layer.index Layer.all in
  Alcotest.(check (list int)) "dense" [ 0; 1; 2; 3; 4; 5; 6 ] idx;
  check_int "count" (List.length Layer.all) Layer.count

let test_rule_deck_values () =
  (* the Mead-Conway numbers *)
  check_int "diff width" 2 (Rules.min_width Layer.Diffusion);
  check_int "poly width" 2 (Rules.min_width Layer.Poly);
  check_int "metal width" 3 (Rules.min_width Layer.Metal);
  check_int "diff spacing" 3 (Rules.min_spacing Layer.Diffusion);
  check_int "poly spacing" 2 (Rules.min_spacing Layer.Poly);
  check_int "metal spacing" 3 (Rules.min_spacing Layer.Metal);
  check_int "poly-diff" 1 (Rules.cross_spacing Layer.Poly Layer.Diffusion);
  check_int "symmetric" 1 (Rules.cross_spacing Layer.Diffusion Layer.Poly);
  check_int "contact in metal" 1
    (Rules.enclosure ~inner:Layer.Contact ~outer:Layer.Metal);
  check_int "no bogus enclosure" 0
    (Rules.enclosure ~inner:Layer.Metal ~outer:Layer.Contact);
  check_int "lambda scale" 250 Rules.centimicrons_per_lambda

let test_rule_deck_covers_all_layers () =
  List.iter
    (fun l ->
      check_bool (Layer.to_string l ^ " has width rule") true
        (Rules.min_width l >= 1))
    Layer.all

let test_rule_pp () =
  let s = Format.asprintf "%a" Rules.pp_rule (List.hd Rules.deck) in
  check_bool "prints something" true (String.length s > 5)

(* --- SVG rendering --- *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_svg_structure () =
  let svg = Render.to_svg (Sc_stdcell.Nmos.inv ()) in
  check_bool "svg element" true (contains svg "<svg");
  check_bool "closed" true (contains svg "</svg>");
  (* all four drawn layers of the inverter appear *)
  check_bool "diffusion colour" true (contains svg "#2e8b57");
  check_bool "poly colour" true (contains svg "#d0312d");
  check_bool "metal colour" true (contains svg "#3a6ea5");
  check_bool "contact colour" true (contains svg "#111111");
  (* port labels *)
  check_bool "port a labelled" true (contains svg ">a<");
  check_bool "port y labelled" true (contains svg ">y<")

let test_svg_rect_count () =
  let cell =
    Cell.make ~name:"two"
      [ Cell.box Layer.Metal (Sc_geom.Rect.make 0 0 4 4)
      ; Cell.box Layer.Poly (Sc_geom.Rect.make 10 0 14 4)
      ]
  in
  let svg = Render.to_svg cell in
  (* background + 2 boxes *)
  let count = ref 0 in
  let m = "<rect" in
  let n = String.length svg in
  for i = 0 to n - String.length m do
    if String.sub svg i (String.length m) = m then incr count
  done;
  check_int "rect elements" 3 !count

let test_svg_scale () =
  let cell =
    Cell.make ~name:"c" [ Cell.box Layer.Metal (Sc_geom.Rect.make 0 0 10 10) ]
  in
  let s1 = Render.to_svg ~scale:1 cell in
  let s5 = Render.to_svg ~scale:5 cell in
  check_bool "bigger scale, bigger canvas" true
    (String.length s5 >= String.length s1 && contains s5 "width=\"90\"")

let test_svg_write () =
  let path = Filename.temp_file "render" ".svg" in
  Render.write_svg path (Sc_stdcell.Nmos.nor2 ());
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "file written" true (len > 200)

let suite =
  [ Alcotest.test_case "layer CIF names roundtrip" `Quick test_layer_cif_names_roundtrip
  ; Alcotest.test_case "layer indices dense" `Quick test_layer_indices_dense
  ; Alcotest.test_case "rule deck values" `Quick test_rule_deck_values
  ; Alcotest.test_case "rule deck covers layers" `Quick test_rule_deck_covers_all_layers
  ; Alcotest.test_case "rule pretty-print" `Quick test_rule_pp
  ; Alcotest.test_case "svg structure" `Quick test_svg_structure
  ; Alcotest.test_case "svg rect count" `Quick test_svg_rect_count
  ; Alcotest.test_case "svg scale" `Quick test_svg_scale
  ; Alcotest.test_case "svg write" `Quick test_svg_write
  ]
