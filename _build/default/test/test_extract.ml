open Sc_layout
open Sc_extract

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let devices net = List.length net.Extractor.devices

let depletions net =
  List.length (List.filter (fun d -> d.Extractor.depletion) net.Extractor.devices)

(* --- extraction on the primitive standard cells --- *)

let test_inv_extraction () =
  let net = Extractor.extract (Sc_stdcell.Nmos.inv ()) in
  check_int "devices" 2 (devices net);
  check_int "one depletion load" 1 (depletions net);
  Alcotest.(check (list string)) "no warnings" [] net.Extractor.warnings;
  (* vdd, gnd, a, y are distinct electrical nodes *)
  let n name = Extractor.node_of net name in
  let all = [ n "vdd"; n "gnd"; n "a"; n "y" ] in
  check_int "four distinct nodes" 4 (List.length (List.sort_uniq compare all))

let test_primitive_device_counts () =
  List.iter
    (fun (cell, expected) ->
      let net = Extractor.extract cell in
      check_int cell.Cell.name expected (devices net);
      Alcotest.(check (list string)) (cell.Cell.name ^ " warnings") []
        net.Extractor.warnings)
    [ (Sc_stdcell.Nmos.inv (), 2)
    ; (Sc_stdcell.Nmos.nand 2, 3)
    ; (Sc_stdcell.Nmos.nand 3, 4)
    ; (Sc_stdcell.Nmos.nor2 (), 3)
    ]

let test_row_extraction_sums () =
  let row =
    Sc_stdcell.Nmos.row "r"
      [ Sc_stdcell.Nmos.inv (); Sc_stdcell.Nmos.nand 2; Sc_stdcell.Nmos.nor2 () ]
  in
  let net = Extractor.extract row in
  check_int "devices sum" (2 + 3 + 3) (devices net);
  check_int "three loads" 3 (depletions net)

(* --- the artwork computes (switch-level) --- *)

let test_inv_computes () =
  check_bool "inv" true
    (Switch.verify_logic (Sc_stdcell.Nmos.inv ()) ~inputs:[ "a" ]
       ~outputs:[ "y" ] (fun b -> [| not b.(0) |]))

let test_nand2_computes () =
  check_bool "nand2" true
    (Switch.verify_logic (Sc_stdcell.Nmos.nand 2) ~inputs:[ "a"; "b" ]
       ~outputs:[ "y" ] (fun b -> [| not (b.(0) && b.(1)) |]))

let test_nand3_computes () =
  check_bool "nand3" true
    (Switch.verify_logic (Sc_stdcell.Nmos.nand 3) ~inputs:[ "a"; "b"; "c" ]
       ~outputs:[ "y" ] (fun b -> [| not (b.(0) && b.(1) && b.(2)) |]))

let test_nor2_computes () =
  check_bool "nor2" true
    (Switch.verify_logic (Sc_stdcell.Nmos.nor2 ()) ~inputs:[ "a"; "b" ]
       ~outputs:[ "y" ] (fun b -> [| not (b.(0) || b.(1)) |]))

let test_wrong_spec_rejected () =
  (* the verifier must actually be able to fail *)
  check_bool "inv is not a buffer" false
    (Switch.verify_logic (Sc_stdcell.Nmos.inv ()) ~inputs:[ "a" ]
       ~outputs:[ "y" ] (fun b -> [| b.(0) |]))

let test_x_propagation () =
  (* undriven input: output must be X, not a confident value *)
  let net = Extractor.extract (Sc_stdcell.Nmos.inv ()) in
  let values =
    Switch.simulate net
      ~vdd:(Extractor.node_of net "vdd")
      ~gnd:(Extractor.node_of net "gnd")
      ~inputs:[]
  in
  check_bool "output X with floating gate" true
    (values.(Extractor.node_of net "y") = Switch.VX)

(* --- LVS-lite: the PLA artwork matches its personality matrix --- *)

let traffic_cover =
  Sc_logic.Cover.of_rows ~ninputs:2 ~noutputs:6
    [ ("00", "100001")
    ; ("01", "010001")
    ; ("10", "001100")
    ; ("11", "001010")
    ]

let pla_lvs (pla : Sc_pla.Generator.t) =
  let net = Extractor.extract pla.Sc_pla.Generator.layout in
  let cover = pla.Sc_pla.Generator.cover in
  let n_in = cover.Sc_logic.Cover.ninputs in
  let n_out = cover.Sc_logic.Cover.noutputs in
  let rows = pla.Sc_pla.Generator.rows in
  (* total devices: programmed sites plus one pull-up per row and column *)
  check_int "device total"
    (pla.Sc_pla.Generator.and_devices + pla.Sc_pla.Generator.or_devices + rows
   + n_out)
    (devices net);
  check_int "depletion loads" (rows + n_out) (depletions net);
  let vdd = Extractor.node_of net "vdd" in
  (* row nodes: non-vdd terminals of depletion pull-ups whose gate is that
     same node (gate tied to source through the buried contact) *)
  let row_nodes =
    List.filter_map
      (fun (d : Extractor.device) ->
        if d.Extractor.depletion then
          match List.filter (fun t -> t <> vdd) d.Extractor.terminals with
          | [ t ] when t = d.Extractor.gate -> Some t
          | _ -> None
        else None)
      net.Extractor.devices
  in
  check_int "every pull-up is gate-tied" (rows + n_out) (List.length row_nodes);
  (* per input column: programmed device count matches the cover *)
  for i = 0 to n_in - 1 do
    let count_lit lit =
      List.length
        (List.filter
           (fun (c : Sc_logic.Cube.t) -> c.Sc_logic.Cube.lits.(i) = lit)
           cover.Sc_logic.Cover.cubes)
    in
    let gate_count port =
      let node = Extractor.node_of net port in
      List.length
        (List.filter
           (fun (d : Extractor.device) ->
             (not d.Extractor.depletion) && d.Extractor.gate = node)
           net.Extractor.devices)
    in
    check_int
      (Printf.sprintf "true column %d" i)
      (count_lit Sc_logic.Cube.Zero)
      (gate_count (Printf.sprintf "in%d_t" i));
    check_int
      (Printf.sprintf "complement column %d" i)
      (count_lit Sc_logic.Cube.One)
      (gate_count (Printf.sprintf "in%d_c" i))
  done;
  (* per output column: drain count matches the cover *)
  for o = 0 to n_out - 1 do
    let node = Extractor.node_of net (Printf.sprintf "out%d" o) in
    let drains =
      List.length
        (List.filter
           (fun (d : Extractor.device) ->
             (not d.Extractor.depletion)
             && List.mem node d.Extractor.terminals)
           net.Extractor.devices)
    in
    let expected =
      List.length
        (List.filter
           (fun (c : Sc_logic.Cube.t) ->
             c.Sc_logic.Cube.outputs land (1 lsl o) <> 0)
           cover.Sc_logic.Cover.cubes)
    in
    check_int (Printf.sprintf "output column %d" o) expected drains
  done

let test_pla_artwork_matches_personality () =
  pla_lvs (Sc_pla.Generator.generate ~minimize:false traffic_cover)

let test_pla_artwork_matches_personality_minimized () =
  pla_lvs (Sc_pla.Generator.generate ~minimize:true traffic_cover)

let prop_random_pla_lvs =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* m = int_range 1 3 in
      let gen_cube =
        let* lits =
          array_size (return n)
            (oneofl [ Sc_logic.Cube.Zero; Sc_logic.Cube.One; Sc_logic.Cube.Dash ])
        in
        let* mask = int_range 1 ((1 lsl m) - 1) in
        return (Sc_logic.Cube.make lits mask)
      in
      let* cubes = list_size (int_range 1 5) gen_cube in
      return (Sc_logic.Cover.make ~ninputs:n ~noutputs:m cubes))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random PLA artwork matches its personality"
       ~count:20 (QCheck.make gen) (fun cover ->
         let pla = Sc_pla.Generator.generate ~minimize:false cover in
         let net = Extractor.extract pla.Sc_pla.Generator.layout in
         devices net
         = pla.Sc_pla.Generator.and_devices + pla.Sc_pla.Generator.or_devices
           + pla.Sc_pla.Generator.rows + cover.Sc_logic.Cover.noutputs))


(* --- the PLA artwork computes its cover at switch level --- *)

let pla_artwork_computes cover =
  let pla = Sc_pla.Generator.generate ~minimize:false cover in
  let net = Extractor.extract pla.Sc_pla.Generator.layout in
  let node = Extractor.node_of net in
  let vdd = node "vdd" and gnd = node "gnd" in
  let n = cover.Sc_logic.Cover.ninputs in
  let m = cover.Sc_logic.Cover.noutputs in
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let bits = Array.init n (fun i -> v land (1 lsl i) <> 0) in
    let inputs =
      List.concat
        (List.init n (fun i ->
             [ ( node (Printf.sprintf "in%d_t" i)
               , if bits.(i) then Switch.V1 else Switch.V0 )
             ; ( node (Printf.sprintf "in%d_c" i)
               , if bits.(i) then Switch.V0 else Switch.V1 )
             ]))
    in
    let values = Switch.simulate net ~vdd ~gnd ~inputs in
    let expected = Sc_logic.Cover.eval cover bits in
    for o = 0 to m - 1 do
      (* the raw NOR-plane column carries the complemented function; the
         netlist view's output buffer restores the polarity *)
      let want = if expected.(o) then Switch.V0 else Switch.V1 in
      if values.(node (Printf.sprintf "out%d" o)) <> want then ok := false
    done
  done;
  !ok

let test_pla_artwork_computes () =
  check_bool "traffic PLA artwork computes its cover" true
    (pla_artwork_computes traffic_cover)

let test_pla_artwork_computes_adder () =
  let cover =
    Sc_logic.Cover.of_function ~ninputs:3 ~noutputs:2 (fun b ->
        let a = b.(0) and x = b.(1) and c = b.(2) in
        [| a <> x <> c; (a && x) || (a && c) || (x && c) |])
  in
  check_bool "full-adder PLA artwork computes" true (pla_artwork_computes cover)

let prop_random_pla_artwork_computes =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* m = int_range 1 3 in
      let gen_cube =
        let* lits =
          array_size (return n)
            (oneofl [ Sc_logic.Cube.Zero; Sc_logic.Cube.One; Sc_logic.Cube.Dash ])
        in
        let* mask = int_range 1 ((1 lsl m) - 1) in
        return (Sc_logic.Cube.make lits mask)
      in
      let* cubes = list_size (int_range 1 5) gen_cube in
      return (Sc_logic.Cover.make ~ninputs:n ~noutputs:m cubes))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random PLA artwork computes its cover" ~count:15
       (QCheck.make gen) pla_artwork_computes)


(* --- a routed multi-cell module: cells + interconnect = circuit --- *)

let test_routed_chain_artwork () =
  List.iter
    (fun n ->
      let c = Sc_stdcell.Nmos.routed_chain n in
      check_bool (Printf.sprintf "chain%d DRC" n) true (Sc_drc.Checker.is_clean c);
      let net = Extractor.extract c in
      check_int (Printf.sprintf "chain%d devices" n) (2 * n) (devices net);
      Alcotest.(check (list string)) "no warnings" [] net.Extractor.warnings;
      check_bool
        (Printf.sprintf "chain%d computes" n)
        true
        (Switch.verify_logic c ~inputs:[ "a" ] ~outputs:[ "y" ] (fun b ->
             [| (if n mod 2 = 0 then b.(0) else not b.(0)) |])))
    [ 1; 2; 3; 6 ]

let test_routed_chain_cif_roundtrip () =
  check_bool "roundtrips" true
    (Sc_cif.Elaborate.roundtrip_ok (Sc_stdcell.Nmos.routed_chain 4))

let suite =
  [ Alcotest.test_case "inv extraction" `Quick test_inv_extraction
  ; Alcotest.test_case "primitive device counts" `Quick test_primitive_device_counts
  ; Alcotest.test_case "row extraction sums" `Quick test_row_extraction_sums
  ; Alcotest.test_case "inv artwork computes" `Quick test_inv_computes
  ; Alcotest.test_case "nand2 artwork computes" `Quick test_nand2_computes
  ; Alcotest.test_case "nand3 artwork computes" `Quick test_nand3_computes
  ; Alcotest.test_case "nor2 artwork computes" `Quick test_nor2_computes
  ; Alcotest.test_case "wrong spec rejected" `Quick test_wrong_spec_rejected
  ; Alcotest.test_case "X propagation" `Quick test_x_propagation
  ; Alcotest.test_case "PLA artwork matches personality" `Quick test_pla_artwork_matches_personality
  ; Alcotest.test_case "PLA artwork (minimized) matches" `Quick test_pla_artwork_matches_personality_minimized
  ; prop_random_pla_lvs
  ; Alcotest.test_case "PLA artwork computes (traffic)" `Quick test_pla_artwork_computes
  ; Alcotest.test_case "PLA artwork computes (adder)" `Quick test_pla_artwork_computes_adder
  ; prop_random_pla_artwork_computes
  ; Alcotest.test_case "routed chain artwork" `Quick test_routed_chain_artwork
  ; Alcotest.test_case "routed chain CIF roundtrip" `Quick test_routed_chain_cif_roundtrip
  ]
