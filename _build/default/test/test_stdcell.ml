open Sc_layout
open Sc_netlist
open Sc_stdcell

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_all_cells_drc_clean () =
  List.iter
    (fun (c : Library.cell) ->
      Alcotest.(check (list string))
        (Gate.to_string c.kind)
        []
        (List.map
           (Format.asprintf "%a" Sc_drc.Checker.pp_violation)
           (Sc_drc.Checker.check c.layout)))
    (Library.all ())

let test_uniform_height () =
  List.iter
    (fun (c : Library.cell) ->
      check_int (Gate.to_string c.kind) Nmos.cell_height c.height)
    (Library.all ())

let test_primitive_transistor_geometry () =
  (* the drawn layouts contain the expected number of gate crossings *)
  check_int "inv has 2 devices" 2 (Stats.transistor_count (Nmos.inv ()));
  check_int "nand2 has 3" 3 (Stats.transistor_count (Nmos.nand 2));
  check_int "nand3 has 4" 4 (Stats.transistor_count (Nmos.nand 3));
  check_int "nor2 has 3" 3 (Stats.transistor_count (Nmos.nor2 ()))

let test_geometry_matches_characterization () =
  (* Gate.transistors matches the drawn devices for the primitive cells *)
  List.iter
    (fun kind ->
      check_int (Gate.to_string kind) (Gate.transistors kind)
        (Stats.transistor_count (Library.layout_of kind)))
    [ Gate.Inv; Gate.Nand2; Gate.Nand3; Gate.Nor2 ]

let test_row_abutment_clean_and_connected () =
  let r =
    Nmos.row "r4" [ Nmos.inv (); Nmos.nand 2; Nmos.nor2 (); Nmos.nand 3 ]
  in
  check_bool "row DRC clean" true (Sc_drc.Checker.is_clean r);
  (* rails must merge into one region per rail: flatten metal and check the
     bottom rail spans the full width *)
  let metal = Flatten.run_layer r Sc_tech.Layer.Metal in
  let width = Cell.width r in
  let bottom_covered =
    List.exists
      (fun rect -> rect.Sc_geom.Rect.ymin = 0 && Sc_geom.Rect.width rect >= 14)
      metal
  in
  check_bool "rails present" true bottom_covered;
  check_int "row width is sum" (14 + 14 + 20 + 14) width

let test_ports_exposed () =
  let inv = Nmos.inv () in
  check_bool "a" true (Cell.find_port_opt inv "a" <> None);
  check_bool "y" true (Cell.find_port_opt inv "y" <> None);
  check_bool "vdd" true (Cell.find_port_opt inv "vdd" <> None);
  check_bool "gnd" true (Cell.find_port_opt inv "gnd" <> None);
  let n3 = Nmos.nand 3 in
  check_bool "c on nand3" true (Cell.find_port_opt n3 "c" <> None)

let test_output_port_on_right_edge () =
  List.iter
    (fun cell ->
      let p = Cell.find_port cell "y" in
      check_int
        (cell.Cell.name ^ " y at right edge")
        (Cell.width cell)
        p.Cell.rect.Sc_geom.Rect.xmin)
    [ Nmos.inv (); Nmos.nand 2; Nmos.nand 3; Nmos.nor2 () ]

let test_area_ordering () =
  (* composites must cost more than their parts *)
  let a k = (Library.get k).Library.area in
  check_bool "and2 > nand2" true (a Gate.And2 > a Gate.Nand2);
  check_bool "xor2 > and2" true (a Gate.Xor2 > a Gate.And2);
  check_bool "dff > xor2" true (a Gate.Dff > a Gate.Xor2);
  check_bool "dffe > dff" true (a Gate.Dffe > a Gate.Dff)

let test_circuit_cell_area () =
  let b = Builder.create "c" in
  let x = (Builder.input b "x" 1).(0) in
  let y = Builder.not_ b x in
  let z = Builder.and2 b x y in
  Builder.output b "z" [| z |];
  let c = Builder.finish b in
  check_int "inv + and2"
    ((Library.get Gate.Inv).Library.area + (Library.get Gate.And2).Library.area)
    (Library.circuit_cell_area c)

let test_cells_roundtrip_cif () =
  List.iter
    (fun (c : Library.cell) ->
      check_bool
        (Gate.to_string c.kind ^ " roundtrips")
        true
        (Sc_cif.Elaborate.roundtrip_ok c.layout))
    (Library.all ())

let suite =
  [ Alcotest.test_case "all cells DRC clean" `Quick test_all_cells_drc_clean
  ; Alcotest.test_case "uniform cell height" `Quick test_uniform_height
  ; Alcotest.test_case "primitive device counts" `Quick test_primitive_transistor_geometry
  ; Alcotest.test_case "geometry matches characterization" `Quick test_geometry_matches_characterization
  ; Alcotest.test_case "row abutment" `Quick test_row_abutment_clean_and_connected
  ; Alcotest.test_case "ports exposed" `Quick test_ports_exposed
  ; Alcotest.test_case "output port on right edge" `Quick test_output_port_on_right_edge
  ; Alcotest.test_case "area ordering" `Quick test_area_ordering
  ; Alcotest.test_case "circuit cell area" `Quick test_circuit_cell_area
  ; Alcotest.test_case "cells roundtrip CIF" `Quick test_cells_roundtrip_cif
  ]
