open Sc_geom
open Sc_tech
open Sc_layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A 4x4 metal tile with a port on its east edge. *)
let tile ?(name = "tile") () =
  Cell.make ~name
    ~ports:[ Cell.port "e" Layer.Metal (Rect.make 4 1 4 3) ]
    [ Cell.box Layer.Metal (Rect.make 0 0 4 4) ]

let test_make_rejects_duplicates () =
  Alcotest.check_raises "duplicate port"
    (Invalid_argument "Cell.make: duplicate port \"p\"") (fun () ->
      ignore
        (Cell.make ~name:"bad"
           ~ports:
             [ Cell.port "p" Layer.Metal (Rect.make 0 0 1 1)
             ; Cell.port "p" Layer.Poly (Rect.make 2 2 3 3)
             ]
           []))

let test_bbox_includes_instances () =
  let t = tile () in
  let parent =
    Cell.make ~name:"parent"
      ~instances:[ Cell.instantiate ~name:"a" ~trans:(Transform.translation 10 0) t ]
      [ Cell.box Layer.Poly (Rect.make 0 0 2 2) ]
  in
  check_bool "bbox" true
    (Rect.equal (Cell.bbox_or_zero parent) (Rect.make 0 0 14 4))

let test_bbox_with_rotation () =
  let t =
    Cell.make ~name:"t" [ Cell.box Layer.Metal (Rect.make 0 0 6 2) ]
  in
  let parent =
    Cell.make ~name:"p"
      ~instances:
        [ Cell.instantiate ~name:"r"
            ~trans:(Transform.make ~orient:Transform.R90 (Point.make 0 0))
            t
        ]
      []
  in
  (* R90 maps (6,2) to (-2,6). *)
  check_bool "rotated bbox" true
    (Rect.equal (Cell.bbox_or_zero parent) (Rect.make (-2) 0 0 6))

let test_translate_to_origin () =
  let c =
    Cell.make ~name:"c" [ Cell.box Layer.Metal (Rect.make (-3) 5 1 9) ]
  in
  let c' = Cell.translate_to_origin c in
  check_bool "origin" true (Rect.equal (Cell.bbox_or_zero c') (Rect.make 0 0 4 4))

let test_beside_and_above () =
  let a = tile ~name:"a" () and b = tile ~name:"b" () in
  let r = Compose.beside ~name:"r" ~sep:2 a b in
  check_int "beside width" 10 (Cell.width r);
  check_int "beside height" 4 (Cell.height r);
  let c = Compose.above ~name:"c" a b in
  check_int "above height" 8 (Cell.height c);
  check_int "above width" 4 (Cell.width c)

let test_row_col () =
  let cells = List.init 5 (fun i -> tile ~name:(Printf.sprintf "t%d" i) ()) in
  let r = Compose.row ~name:"r" ~sep:1 cells in
  check_int "row width" 24 (Cell.width r);
  let c = Compose.col ~name:"c" cells in
  check_int "col height" 20 (Cell.height c);
  (* ports re-exported with instance prefixes *)
  check_bool "port present" true (Cell.find_port_opt r "i2.e" <> None)

let test_array () =
  let t = tile () in
  let a = Compose.array ~name:"arr" ~nx:3 ~ny:2 t in
  check_int "array width" 12 (Cell.width a);
  check_int "array height" 8 (Cell.height a);
  check_int "instances" 6 (List.length a.Cell.instances);
  (* flattening multiplies the single box by 6 *)
  check_int "flat rects" 6 (List.length (Flatten.run a))

let test_array_shares_definition () =
  let t = tile () in
  let a = Compose.array ~name:"arr" ~nx:10 ~ny:10 t in
  check_int "two distinct cells" 2 (List.length (Cell.all_cells a))

let test_abut_aligns_ports () =
  let a = tile ~name:"a" () in
  let b =
    Cell.make ~name:"b"
      ~ports:[ Cell.port "w" Layer.Metal (Rect.make 0 1 0 3) ]
      [ Cell.box Layer.Metal (Rect.make 0 0 4 4) ]
  in
  let j = Compose.abut ~name:"j" a "e" b "w" in
  (* b's west port centre lands on a's east port centre: b spans x=4..8 *)
  check_bool "joined bbox" true
    (Rect.equal (Cell.bbox_or_zero j) (Rect.make 0 0 8 4));
  let pa = List.find (fun (p : Cell.port) -> p.pname = "i0.e") j.Cell.ports in
  let pb = List.find (fun (p : Cell.port) -> p.pname = "i1.w") j.Cell.ports in
  check_bool "port rects coincide" true
    (Point.equal (Rect.center pa.rect) (Rect.center pb.rect))

let test_all_cells_children_first () =
  let leaf = tile ~name:"leaf" () in
  let mid = Compose.row ~name:"mid" [ leaf; leaf ] in
  let top = Compose.col ~name:"top" [ mid; mid ] in
  let names = List.map (fun (c : Cell.t) -> c.name) (Cell.all_cells top) in
  Alcotest.(check (list string)) "order" [ "leaf"; "mid"; "top" ] names

let test_expose () =
  let t = tile () in
  let r = Compose.row ~name:"r" [ t; t ] in
  let r = Compose.expose r [ ("i1.e", "out") ] in
  let p = Cell.find_port r "out" in
  check_bool "exposed at east of second tile" true
    (Point.equal (Rect.center p.Cell.rect) (Point.make 8 2))

let test_transistor_count () =
  (* poly crossing diffusion = 1 transistor; two parallel gates = 2 *)
  let one =
    Cell.make ~name:"t1"
      [ Cell.box Layer.Diffusion (Rect.make 0 2 10 6)
      ; Cell.box Layer.Poly (Rect.make 4 0 6 8)
      ]
  in
  check_int "one gate" 1 (Stats.transistor_count one);
  let two = Cell.add one [ Cell.box Layer.Poly (Rect.make 8 0 10 8) ] in
  check_int "two gates" 2 (Stats.transistor_count two);
  (* a gate drawn as two abutting poly boxes still counts once *)
  let split =
    Cell.make ~name:"t2"
      [ Cell.box Layer.Diffusion (Rect.make 0 2 10 6)
      ; Cell.box Layer.Poly (Rect.make 4 0 6 4)
      ; Cell.box Layer.Poly (Rect.make 4 4 6 8)
      ]
  in
  check_int "split gate counts once" 1 (Stats.transistor_count split)

let test_stats_measure () =
  let t = tile () in
  let a = Compose.array ~name:"arr" ~nx:2 ~ny:2 t in
  let s = Stats.measure a in
  check_int "bbox area" 64 s.Stats.bbox_area;
  check_int "metal area" 64 (Stats.layer_area s Layer.Metal);
  check_int "instances" 4 s.Stats.instances;
  check_int "cells" 2 s.Stats.cells

let test_flatten_ports_qualified () =
  let t = tile () in
  let r = Compose.row ~name:"r" [ t; t ] in
  let ports = Flatten.ports r in
  let names = List.sort compare (List.map (fun (p : Cell.port) -> p.Cell.pname) ports) in
  (* row exports qualified copies at the top cell, plus the originals seen
     through each instance *)
  check_bool "contains i0.e" true (List.mem "i0.e" names)

let suite =
  [ Alcotest.test_case "make rejects duplicate ports" `Quick test_make_rejects_duplicates
  ; Alcotest.test_case "bbox includes instances" `Quick test_bbox_includes_instances
  ; Alcotest.test_case "bbox with rotation" `Quick test_bbox_with_rotation
  ; Alcotest.test_case "translate to origin" `Quick test_translate_to_origin
  ; Alcotest.test_case "beside and above" `Quick test_beside_and_above
  ; Alcotest.test_case "row and col" `Quick test_row_col
  ; Alcotest.test_case "array" `Quick test_array
  ; Alcotest.test_case "array shares definition" `Quick test_array_shares_definition
  ; Alcotest.test_case "abut aligns ports" `Quick test_abut_aligns_ports
  ; Alcotest.test_case "all_cells children first" `Quick test_all_cells_children_first
  ; Alcotest.test_case "expose" `Quick test_expose
  ; Alcotest.test_case "transistor count" `Quick test_transistor_count
  ; Alcotest.test_case "stats measure" `Quick test_stats_measure
  ; Alcotest.test_case "flatten ports qualified" `Quick test_flatten_ports_qualified
  ]
