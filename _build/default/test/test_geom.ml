open Sc_geom

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- generators --- *)

let small_int = QCheck.Gen.int_range (-50) 50

let gen_point = QCheck.Gen.map2 Point.make small_int small_int

let gen_rect =
  QCheck.Gen.map2
    (fun (x0, y0) (x1, y1) -> Rect.make x0 y0 x1 y1)
    (QCheck.Gen.pair small_int small_int)
    (QCheck.Gen.pair small_int small_int)

let gen_orient = QCheck.Gen.oneofl Transform.all_orients

let gen_transform =
  QCheck.Gen.map2
    (fun o p -> Transform.make ~orient:o p)
    gen_orient gen_point

let arb_rect = QCheck.make ~print:Rect.to_string gen_rect

let arb_rect2 = QCheck.make
    ~print:(fun (a, b) -> Rect.to_string a ^ " " ^ Rect.to_string b)
    (QCheck.Gen.pair gen_rect gen_rect)

let arb_transform_point =
  QCheck.make
    ~print:(fun (t, p) -> Format.asprintf "%a %a" Transform.pp t Point.pp p)
    (QCheck.Gen.pair gen_transform gen_point)

let arb_two_transforms_point =
  QCheck.make (QCheck.Gen.triple gen_transform gen_transform gen_point)

let qtest name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

(* --- unit tests --- *)

let test_rect_normalizes () =
  let r = Rect.make 5 7 2 3 in
  check "xmin" 2 r.Rect.xmin;
  check "ymin" 3 r.Rect.ymin;
  check "width" 3 (Rect.width r);
  check "height" 4 (Rect.height r);
  check "area" 12 (Rect.area r)

let test_rect_center_corner () =
  let r = Rect.of_corner_wh ~x:2 ~y:3 ~w:4 ~h:6 in
  Alcotest.check Alcotest.bool "center" true
    (Point.equal (Rect.center r) (Point.make 4 6));
  let c = Rect.of_center_wh ~cx:0 ~cy:0 ~w:4 ~h:4 in
  check "cxmin" (-2) c.Rect.xmin;
  check "cxmax" 2 c.Rect.xmax

let test_rect_relations () =
  let a = Rect.make 0 0 4 4 and b = Rect.make 4 0 8 4 in
  check_bool "abutting do not overlap" false (Rect.overlaps a b);
  check_bool "abutting touch" true (Rect.touches_or_overlaps a b);
  check "separation of abutting" 0 (Rect.separation a b);
  let c = Rect.make 6 0 9 4 in
  check "separation gap" 2 (Rect.separation a c);
  let d = Rect.make 6 9 9 12 in
  check "diagonal separation is max gap" 5 (Rect.separation a d)

let test_rect_inflate_negative () =
  let r = Rect.make 0 0 10 10 in
  let shrunk = Rect.inflate (-3) r in
  check "shrunk width" 4 (Rect.width shrunk);
  let collapsed = Rect.inflate (-7) r in
  check_bool "over-shrink collapses" true (Rect.is_empty collapsed)

let test_path_rects () =
  let p = Path.make ~width:2 [ Point.make 0 0; Point.make 10 0; Point.make 10 8 ] in
  Alcotest.(check int) "length" 18 (Path.length p);
  let rs = Path.to_rects p in
  Alcotest.(check int) "two segments" 2 (List.length rs);
  let h = List.nth rs 0 in
  check_bool "horizontal segment padded" true
    (Rect.equal h (Rect.make (-1) (-1) 11 1));
  check_bool "manhattan" true (Path.is_manhattan p)

let test_path_rejects () =
  Alcotest.check_raises "odd width" (Invalid_argument "Path.to_rects: width must be even (half-width padding)")
    (fun () -> ignore (Path.to_rects (Path.make ~width:3 [ Point.origin; Point.make 4 0 ])));
  Alcotest.check_raises "diagonal" (Invalid_argument "Path.to_rects: non-Manhattan segment")
    (fun () -> ignore (Path.to_rects (Path.make ~width:2 [ Point.origin; Point.make 4 3 ])))

let test_transform_known_values () =
  let p = Point.make 3 1 in
  let app o = Transform.apply (Transform.make ~orient:o Point.origin) p in
  check_bool "R90" true (Point.equal (app Transform.R90) (Point.make (-1) 3));
  check_bool "R180" true (Point.equal (app Transform.R180) (Point.make (-3) (-1)));
  check_bool "MX" true (Point.equal (app Transform.MX) (Point.make 3 (-1)));
  check_bool "MY" true (Point.equal (app Transform.MY) (Point.make (-3) 1));
  check_bool "MX90" true (Point.equal (app Transform.MX90) (Point.make 1 3))

let test_orient_group_closure () =
  List.iter
    (fun a ->
      List.iter
        (fun b -> ignore (Transform.orient_compose a b))
        Transform.all_orients)
    Transform.all_orients

(* --- properties --- *)

let prop_inter_subset =
  qtest "inter result is inside both" 500
    arb_rect2
    (fun (a, b) ->
      match Rect.inter a b with
      | None -> true
      | Some i -> Rect.contains a i && Rect.contains b i)

let prop_union_superset =
  qtest "union_bbox contains both" 500 arb_rect2 (fun (a, b) ->
      let u = Rect.union_bbox a b in
      Rect.contains u a && Rect.contains u b)

let prop_separation_sym =
  qtest "separation is symmetric" 500 arb_rect2 (fun (a, b) ->
      Rect.separation a b = Rect.separation b a)

let prop_separation_zero_iff_touch =
  qtest "separation 0 iff touching" 500 arb_rect2 (fun (a, b) ->
      Rect.separation a b = 0 = Rect.touches_or_overlaps a b)

let prop_compose_is_apply_apply =
  qtest "compose agrees with nested apply" 1000 arb_two_transforms_point
    (fun (t1, t2, p) ->
      Point.equal
        (Transform.apply (Transform.compose t1 t2) p)
        (Transform.apply t1 (Transform.apply t2 p)))

let prop_invert_roundtrip =
  qtest "invert undoes apply" 1000 arb_transform_point (fun (t, p) ->
      Point.equal (Transform.apply (Transform.invert t) (Transform.apply t p)) p)

let prop_apply_rect_matches_corners =
  qtest "apply_rect is the corner image bbox" 500
    (QCheck.make (QCheck.Gen.pair gen_transform gen_rect))
    (fun (t, r) ->
      let lo, hi = Rect.corners r in
      let p = Transform.apply t lo and q = Transform.apply t hi in
      Rect.equal (Transform.apply_rect t r)
        (Rect.make p.Point.x p.Point.y q.Point.x q.Point.y))

let prop_rect_area_preserved =
  qtest "transform preserves area" 500
    (QCheck.make (QCheck.Gen.pair gen_transform gen_rect))
    (fun (t, r) -> Rect.area (Transform.apply_rect t r) = Rect.area r)

let suite =
  [ Alcotest.test_case "rect normalizes" `Quick test_rect_normalizes
  ; Alcotest.test_case "rect center/corner constructors" `Quick test_rect_center_corner
  ; Alcotest.test_case "rect relations" `Quick test_rect_relations
  ; Alcotest.test_case "rect negative inflate" `Quick test_rect_inflate_negative
  ; Alcotest.test_case "path to rects" `Quick test_path_rects
  ; Alcotest.test_case "path rejects bad input" `Quick test_path_rejects
  ; Alcotest.test_case "transform known values" `Quick test_transform_known_values
  ; Alcotest.test_case "orient group closed" `Quick test_orient_group_closure
  ; prop_inter_subset
  ; prop_union_superset
  ; prop_separation_sym
  ; prop_separation_zero_iff_touch
  ; prop_compose_is_apply_apply
  ; prop_invert_roundtrip
  ; prop_apply_rect_matches_corners
  ; prop_rect_area_preserved
  ]
