open Sc_logic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bits_of_int n v = Array.init n (fun i -> v land (1 lsl i) <> 0)

let brute_equal ?dontcare a b =
  let n = a.Cover.ninputs in
  let care v =
    match dontcare with
    | None -> true
    | Some dc ->
      (* a minterm is a care point for output o when dc does not cover it;
         compare outputs only at care points *)
      ignore dc;
      ignore v;
      true
  in
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    if care v then begin
      let ea = Cover.eval a (bits_of_int n v) in
      let eb = Cover.eval b (bits_of_int n v) in
      (match dontcare with
      | None -> if ea <> eb then ok := false
      | Some dc ->
        let edc = Cover.eval dc (bits_of_int n v) in
        Array.iteri
          (fun o va -> if (not edc.(o)) && va <> eb.(o) then ok := false)
          ea)
    end
  done;
  !ok

(* --- cube unit tests --- *)

let test_cube_basics () =
  let c = Cube.of_string "01-" 1 in
  check_int "inputs" 3 (Cube.num_inputs c);
  check_int "free" 1 (Cube.free_count c);
  check_bool "covers 010" true (Cube.covers_input c [| false; true; false |]);
  check_bool "covers 011" true (Cube.covers_input c [| false; true; true |]);
  check_bool "not 110" false (Cube.covers_input c [| true; true; false |])

let test_cube_merge () =
  let a = Cube.of_string "010" 3 and b = Cube.of_string "011" 1 in
  (match Cube.merge a b with
  | Some m ->
    Alcotest.(check string) "merged" "01-#1" (Cube.to_string m)
  | None -> Alcotest.fail "expected merge");
  (* distance 2: no merge *)
  check_bool "no merge at distance 2" true
    (Cube.merge (Cube.of_string "00-" 1) (Cube.of_string "11-" 1) = None);
  (* differing dash positions: no merge *)
  check_bool "no merge with misaligned dashes" true
    (Cube.merge (Cube.of_string "0-0" 1) (Cube.of_string "100" 1) = None)

let test_cube_inter () =
  let a = Cube.of_string "1--" 3 and b = Cube.of_string "-0-" 1 in
  (match Cube.inter a b with
  | Some i -> Alcotest.(check string) "inter" "10-#1" (Cube.to_string i)
  | None -> Alcotest.fail "expected intersection");
  check_bool "disjoint inputs" true
    (Cube.inter (Cube.of_string "1--" 1) (Cube.of_string "0--" 1) = None);
  check_bool "disjoint outputs" true
    (Cube.inter (Cube.of_string "---" 2) (Cube.of_string "---" 1) = None)

(* --- cover tests --- *)

let test_tautology () =
  let t =
    Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("1-", "1"); ("0-", "1") ]
  in
  check_bool "x | !x is tautology" true (Cover.tautology t);
  let nt = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("1-", "1"); ("01", "1") ] in
  check_bool "x | (!x & y) is not" false (Cover.tautology nt)

let test_cube_covered () =
  let f =
    Cover.of_rows ~ninputs:3 ~noutputs:1
      [ ("11-", "1"); ("1-1", "1"); ("-11", "1"); ("110", "1") ]
  in
  check_bool "11- covered" true (Cover.cube_covered (Cube.of_string "11-" 1) f);
  check_bool "1-- not covered" false
    (Cover.cube_covered (Cube.of_string "1--" 1) f)

let test_equivalent () =
  let a = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("10", "1"); ("11", "1") ] in
  let b = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("1-", "1") ] in
  check_bool "a = x" true (Cover.equivalent a b);
  let c = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("-1", "1") ] in
  check_bool "x <> y" false (Cover.equivalent a c)

(* --- minimization --- *)

let full_adder =
  (* inputs a b cin; outputs sum carry *)
  Cover.of_function ~ninputs:3 ~noutputs:2 (fun bits ->
      let a = bits.(0) and b = bits.(1) and cin = bits.(2) in
      let sum = a <> b <> cin in
      let carry = (a && b) || (a && cin) || (b && cin) in
      [| sum; carry |])

let test_qm_full_adder () =
  let m = Minimize.minimize ~exact:true full_adder in
  check_bool "equivalent" true (brute_equal full_adder m);
  (* sum needs its 4 minterms, carry its 3 primes, but ab.cin is shared:
     the classic multi-output minimum is 7 terms or fewer *)
  check_bool "term count sane" true (Cover.term_count m <= 7);
  check_bool "verify" true
    (Minimize.verify ~original:full_adder ~minimized:m ())

let test_qm_collapse_to_one () =
  let f = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("10", "1"); ("11", "1") ] in
  let m = Minimize.minimize ~exact:true f in
  check_int "single cube" 1 (Cover.term_count m);
  check_bool "equivalent" true (brute_equal f m)

let test_qm_with_dontcare () =
  let f = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("10", "1") ] in
  let dc = Cover.of_rows ~ninputs:2 ~noutputs:1 [ ("11", "1") ] in
  let m = Minimize.minimize ~dontcare:dc ~exact:true f in
  check_int "dc absorbed" 1 (Cover.term_count m);
  check_int "one literal" 1 (Cover.literal_count m);
  check_bool "care-set equivalent" true (brute_equal ~dontcare:dc f m)

let test_heuristic_full_adder () =
  let m = Minimize.heuristic full_adder in
  check_bool "equivalent" true (brute_equal full_adder m)

let test_seven_seg_decoder () =
  (* BCD to 7-segment (0-9, 10-15 don't care) is the classic multi-output
     example; check the minimizer shrinks it and stays correct. *)
  let segs v =
    (* segments a-g for digit v *)
    let table =
      [| 0b1111110; 0b0110000; 0b1101101; 0b1111001; 0b0110011
       ; 0b1011011; 0b1011111; 0b1110000; 0b1111111; 0b1111011
      |]
    in
    table.(v)
  in
  let on = ref [] in
  let dc = ref [] in
  for v = 0 to 15 do
    let bits = bits_of_int 4 v in
    if v <= 9 then begin
      let mask = segs v in
      if mask <> 0 then on := Cube.minterm bits mask :: !on
    end
    else dc := Cube.minterm bits 0b1111111 :: !dc
  done;
  let on = Cover.make ~ninputs:4 ~noutputs:7 !on in
  let dc = Cover.make ~ninputs:4 ~noutputs:7 !dc in
  let m = Minimize.minimize ~dontcare:dc ~exact:true on in
  check_bool "shrinks" true (Cover.term_count m < Cover.term_count on);
  check_bool "care-set equivalent" true (brute_equal ~dontcare:dc on m);
  check_bool "verify" true (Minimize.verify ~dontcare:dc ~original:on ~minimized:m ())

(* --- expressions --- *)

let test_expr_to_cover () =
  let open Expr in
  let e = var 0 &&& not_ (var 1) ||| (var 2 &&& var 1) in
  let cover = to_cover ~ninputs:3 [ e ] in
  check_int "two terms" 2 (Cover.term_count cover);
  for v = 0 to 7 do
    let bits = bits_of_int 3 v in
    check_bool
      (Printf.sprintf "agree at %d" v)
      (eval (fun i -> bits.(i)) e)
      (Cover.eval cover bits).(0)
  done

let test_expr_shares_terms () =
  let open Expr in
  let t = var 0 &&& var 1 in
  let cover = to_cover ~ninputs:2 [ t; t ||| var 0 ] in
  (* the product x0x1 appears in both outputs but as one shared cube *)
  check_int "terms shared" 2 (Cover.term_count cover)

let test_expr_xor () =
  let open Expr in
  let e = xor (var 0) (xor (var 1) (var 2)) in
  let cover = to_cover ~ninputs:3 [ e ] in
  for v = 0 to 7 do
    let bits = bits_of_int 3 v in
    check_bool "xor agrees"
      (eval (fun i -> bits.(i)) e)
      (Cover.eval cover bits).(0)
  done

(* --- properties --- *)

let gen_cover =
  let open QCheck.Gen in
  let* n = int_range 2 5 in
  let* m = int_range 1 3 in
  let gen_lit = oneofl [ Cube.Zero; Cube.One; Cube.Dash ] in
  let gen_cube =
    let* lits = array_size (return n) gen_lit in
    let* mask = int_range 1 ((1 lsl m) - 1) in
    return (Cube.make lits mask)
  in
  let* cubes = list_size (int_range 1 8) gen_cube in
  return (Cover.make ~ninputs:n ~noutputs:m cubes)

let prop_minimize_equivalent engine name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:150 (QCheck.make gen_cover) (fun cover ->
         let m = engine cover in
         brute_equal cover m))

let prop_exact = prop_minimize_equivalent
    (fun c -> Minimize.minimize ~exact:true c)
    "exact minimization preserves the function"

let prop_heuristic = prop_minimize_equivalent
    Minimize.heuristic
    "heuristic minimization preserves the function"

let prop_exact_not_bigger =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"minimization never grows literal cost wildly"
       ~count:100 (QCheck.make gen_cover) (fun cover ->
         let m = Minimize.minimize ~exact:true cover in
         Cover.term_count m <= max 1 (Cover.term_count cover)))

let prop_expr_cover_agree =
  let gen_expr =
    let open QCheck.Gen in
    let rec go depth =
      if depth = 0 then
        oneof [ map Expr.var (int_range 0 3); map (fun b -> Expr.Const b) bool ]
      else
        let sub = go (depth - 1) in
        oneof
          [ map Expr.var (int_range 0 3)
          ; map Expr.not_ sub
          ; map2 (fun a b -> Expr.And [ a; b ]) sub sub
          ; map2 (fun a b -> Expr.Or [ a; b ]) sub sub
          ; map2 Expr.xor sub sub
          ]
    in
    go 3
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"expr and its cover agree everywhere" ~count:200
       (QCheck.make ~print:Expr.to_string gen_expr) (fun e ->
         match Expr.to_cover ~ninputs:4 [ e ] with
         | cover ->
           let ok = ref true in
           for v = 0 to 15 do
             let bits = bits_of_int 4 v in
             if Expr.eval (fun i -> bits.(i)) e <> (Cover.eval cover bits).(0)
             then ok := false
           done;
           !ok))

let suite =
  [ Alcotest.test_case "cube basics" `Quick test_cube_basics
  ; Alcotest.test_case "cube merge" `Quick test_cube_merge
  ; Alcotest.test_case "cube intersection" `Quick test_cube_inter
  ; Alcotest.test_case "tautology" `Quick test_tautology
  ; Alcotest.test_case "cube covered by cover" `Quick test_cube_covered
  ; Alcotest.test_case "cover equivalence" `Quick test_equivalent
  ; Alcotest.test_case "QM full adder" `Quick test_qm_full_adder
  ; Alcotest.test_case "QM collapses pair" `Quick test_qm_collapse_to_one
  ; Alcotest.test_case "QM with dont-cares" `Quick test_qm_with_dontcare
  ; Alcotest.test_case "heuristic full adder" `Quick test_heuristic_full_adder
  ; Alcotest.test_case "7-segment decoder" `Quick test_seven_seg_decoder
  ; Alcotest.test_case "expr to cover" `Quick test_expr_to_cover
  ; Alcotest.test_case "expr shares terms" `Quick test_expr_shares_terms
  ; Alcotest.test_case "expr xor chain" `Quick test_expr_xor
  ; prop_exact
  ; prop_heuristic
  ; prop_exact_not_bigger
  ; prop_expr_cover_agree
  ]
