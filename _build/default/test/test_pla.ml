open Sc_logic
open Sc_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bits_of_int n v = Array.init n (fun i -> v land (1 lsl i) <> 0)

let sim_matches_cover (pla : Sc_pla.Generator.t) =
  let cover = pla.Sc_pla.Generator.cover in
  let n = cover.Cover.ninputs in
  let t = Engine.create pla.Sc_pla.Generator.netlist in
  let ok = ref true in
  for v = 0 to (1 lsl n) - 1 do
    Engine.set_input_int t "in" v;
    let expected = ref 0 in
    Array.iteri
      (fun o b -> if b then expected := !expected lor (1 lsl o))
      (Cover.eval cover (bits_of_int n v));
    if Engine.get_output_int t "out" <> Some !expected then ok := false
  done;
  !ok

let traffic_cover =
  (* a small traffic-light controller's combinational core: 2-bit state ->
     6 lamp outputs (NS green/yellow/red, EW green/yellow/red) *)
  Cover.of_rows ~ninputs:2 ~noutputs:6
    [ ("00", "100001")
    ; ("01", "010001")
    ; ("10", "001100")
    ; ("11", "001010")
    ]

let test_netlist_equals_cover () =
  let pla = Sc_pla.Generator.generate ~minimize:false traffic_cover in
  check_bool "netlist = cover" true (sim_matches_cover pla)

let test_netlist_equals_cover_minimized () =
  let pla = Sc_pla.Generator.generate ~minimize:true traffic_cover in
  check_bool "minimized netlist = cover" true (sim_matches_cover pla);
  check_bool "minimized vs original function" true
    (Cover.equivalent pla.Sc_pla.Generator.cover traffic_cover)

let test_layout_drc_clean () =
  let pla = Sc_pla.Generator.generate ~minimize:false traffic_cover in
  Alcotest.(check (list string)) "clean" []
    (List.map
       (Format.asprintf "%a" Sc_drc.Checker.pp_violation)
       (Sc_drc.Checker.check pla.Sc_pla.Generator.layout))

let test_device_counts () =
  let pla = Sc_pla.Generator.generate ~minimize:false traffic_cover in
  check_int "AND devices = bound literals"
    (Cover.literal_count traffic_cover)
    pla.Sc_pla.Generator.and_devices;
  check_int "OR devices = output bits"
    (Cover.output_count traffic_cover)
    pla.Sc_pla.Generator.or_devices

let test_area_matches_prediction () =
  let pla = Sc_pla.Generator.generate ~minimize:false traffic_cover in
  let c = pla.Sc_pla.Generator.layout in
  check_int "area"
    (Sc_pla.Generator.predicted_area ~ninputs:2 ~noutputs:6 ~terms:4)
    (Sc_layout.Cell.area c)

let test_minimize_shrinks () =
  (* redundant cover: four minterms of x0 collapse to one row *)
  let c =
    Cover.of_rows ~ninputs:3 ~noutputs:1
      [ ("100", "1"); ("101", "1"); ("110", "1"); ("111", "1") ]
  in
  let raw = Sc_pla.Generator.generate ~minimize:false c in
  let min = Sc_pla.Generator.generate ~minimize:true c in
  check_int "raw rows" 4 raw.Sc_pla.Generator.rows;
  check_int "minimized rows" 1 min.Sc_pla.Generator.rows;
  check_bool "smaller layout" true
    (Sc_layout.Cell.area min.Sc_pla.Generator.layout
    < Sc_layout.Cell.area raw.Sc_pla.Generator.layout)

let test_ports_present () =
  let pla = Sc_pla.Generator.generate ~minimize:false traffic_cover in
  let c = pla.Sc_pla.Generator.layout in
  List.iter
    (fun p ->
      check_bool p true (Sc_layout.Cell.find_port_opt c p <> None))
    [ "in0_t"; "in0_c"; "in1_t"; "in1_c"; "out0"; "out5"; "vdd" ]

let gen_cover =
  let open QCheck.Gen in
  let* n = int_range 1 4 in
  let* m = int_range 1 4 in
  let gen_cube =
    let* lits =
      array_size (return n) (oneofl [ Cube.Zero; Cube.One; Cube.Dash ])
    in
    let* mask = int_range 1 ((1 lsl m) - 1) in
    return (Cube.make lits mask)
  in
  let* cubes = list_size (int_range 1 6) gen_cube in
  return (Cover.make ~ninputs:n ~noutputs:m cubes)

let prop_random_pla_simulates =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random PLA netlists compute their cover" ~count:60
       (QCheck.make gen_cover) (fun cover ->
         sim_matches_cover (Sc_pla.Generator.generate ~minimize:false cover)))

let prop_random_pla_drc_clean =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random PLA layouts are DRC clean" ~count:25
       (QCheck.make gen_cover) (fun cover ->
         Sc_drc.Checker.is_clean
           (Sc_pla.Generator.generate ~minimize:false cover).Sc_pla.Generator.layout))

(* --- ROM --- *)

let test_rom_reads_contents () =
  let contents = [| 0x3A; 0x01; 0x00; 0x7F; 0x55; 0x2A; 0x10; 0x6C |] in
  let rom = Sc_rom.Rom.generate ~bits:7 contents in
  let t = Engine.create (Sc_rom.Rom.netlist rom) in
  Array.iteri
    (fun addr word ->
      Engine.set_input_int t "in" addr;
      check_int (Printf.sprintf "word %d" addr) (word land 0x7F)
        (Option.get (Engine.get_output_int t "out")))
    contents

let test_rom_drc_clean () =
  let rom = Sc_rom.Rom.generate ~bits:4 [| 1; 2; 3; 4; 5; 6; 7; 8 |] in
  check_bool "clean" true (Sc_drc.Checker.is_clean (Sc_rom.Rom.layout rom))

let test_rom_area_prediction () =
  (* dense contents: every word non-zero, prediction is exact *)
  let contents = Array.init 8 (fun i -> i + 1) in
  let rom = Sc_rom.Rom.generate ~bits:4 contents in
  check_int "area"
    (Sc_rom.Rom.predicted_area ~words:8 ~bits:4)
    (Sc_layout.Cell.area (Sc_rom.Rom.layout rom))

let test_rom_optimize_not_bigger () =
  let contents = Array.init 16 (fun i -> if i < 8 then 0x0F else 0x01) in
  let plain = Sc_rom.Rom.generate ~bits:4 contents in
  let opt = Sc_rom.Rom.generate ~optimize:true ~bits:4 contents in
  check_bool "optimized smaller" true
    (Sc_layout.Cell.area (Sc_rom.Rom.layout opt)
    <= Sc_layout.Cell.area (Sc_rom.Rom.layout plain));
  (* and still correct *)
  let t = Engine.create (Sc_rom.Rom.netlist opt) in
  Array.iteri
    (fun addr word ->
      Engine.set_input_int t "in" addr;
      check_int "word" word (Option.get (Engine.get_output_int t "out")))
    contents

let test_rom_rejects_bad_args () =
  check_bool "empty rejected" true
    (try
       ignore (Sc_rom.Rom.generate ~bits:4 [||]);
       false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "netlist equals cover" `Quick test_netlist_equals_cover
  ; Alcotest.test_case "minimized netlist equals cover" `Quick test_netlist_equals_cover_minimized
  ; Alcotest.test_case "layout DRC clean" `Quick test_layout_drc_clean
  ; Alcotest.test_case "device counts" `Quick test_device_counts
  ; Alcotest.test_case "area matches prediction" `Quick test_area_matches_prediction
  ; Alcotest.test_case "minimization shrinks layout" `Quick test_minimize_shrinks
  ; Alcotest.test_case "ports present" `Quick test_ports_present
  ; prop_random_pla_simulates
  ; prop_random_pla_drc_clean
  ; Alcotest.test_case "ROM reads contents" `Quick test_rom_reads_contents
  ; Alcotest.test_case "ROM DRC clean" `Quick test_rom_drc_clean
  ; Alcotest.test_case "ROM area prediction" `Quick test_rom_area_prediction
  ; Alcotest.test_case "ROM optimize not bigger" `Quick test_rom_optimize_not_bigger
  ; Alcotest.test_case "ROM rejects bad args" `Quick test_rom_rejects_bad_args
  ]
