(* scc — the silicon compiler command line.

   Subcommands:
     scc layout FILE    compile a layout-language program to CIF
     scc behavior FILE  compile an ISP behavioral description to CIF
     scc drc FILE       design-rule-check a CIF file
     scc stats FILE     report area/device statistics of a CIF file
     scc sim FILE       interpret an ISP description with a trivial stimulus
     scc extract FILE   extract the transistor circuit from CIF geometry
     scc svg FILE       render CIF artwork as SVG *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)

let report_compiled (c : Sc_core.Compiler.compiled) =
  Printf.eprintf "cell %s: %dx%d lambda, %d transistors, DRC %s\n%!"
    c.Sc_core.Compiler.layout.Sc_layout.Cell.name
    (Sc_layout.Cell.width c.Sc_core.Compiler.layout)
    (Sc_layout.Cell.height c.Sc_core.Compiler.layout)
    c.Sc_core.Compiler.transistors
    (if c.Sc_core.Compiler.drc_violations = 0 then "clean"
     else string_of_int c.Sc_core.Compiler.drc_violations ^ " violations")

(* --- layout --- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input file.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write CIF to $(docv).")

let entry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "entry" ] ~docv:"CELL" ~doc:"Entry cell (default: last defined).")

let args_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "a"; "args" ] ~docv:"INTS" ~doc:"Entry cell arguments.")

let layout_cmd =
  let run file entry args output =
    match Sc_core.Compiler.compile_layout ?entry ~args (read_file file) with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok c ->
      report_compiled c;
      write_out output c.Sc_core.Compiler.cif;
      0
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Compile a layout-language program to CIF.")
    Term.(const run $ file_arg $ entry_arg $ args_arg $ output_arg)

(* --- behavior --- *)

let style_arg =
  Arg.(
    value
    & opt (enum [ ("gates", Sc_core.Compiler.Random_logic); ("pla", Sc_core.Compiler.Pla_control) ])
        Sc_core.Compiler.Random_logic
    & info [ "s"; "style" ] ~docv:"STYLE"
        ~doc:"Control style: $(b,gates) (random logic) or $(b,pla).")

let behavior_cmd =
  let run file style output =
    match Sc_core.Compiler.compile_behavior ~style (read_file file) with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok (c, circuit) ->
      let s = Sc_netlist.Circuit.stats circuit in
      Printf.eprintf "netlist: %d gates, %d flip-flops\n%!"
        s.Sc_netlist.Circuit.gate_total s.Sc_netlist.Circuit.flipflops;
      report_compiled c;
      write_out output c.Sc_core.Compiler.cif;
      0
  in
  Cmd.v
    (Cmd.info "behavior" ~doc:"Compile an ISP behavioral description to CIF.")
    Term.(const run $ file_arg $ style_arg $ output_arg)

(* --- drc / stats on CIF files --- *)

let with_cif file k =
  match Sc_cif.Elaborate.of_string (read_file file) with
  | Error e ->
    Printf.eprintf "error: %s\n" (Sc_cif.Elaborate.error_to_string e);
    1
  | Ok cell -> k cell

let drc_cmd =
  let run file =
    with_cif file (fun cell ->
        let vs = Sc_drc.Checker.check cell in
        Sc_drc.Checker.report Format.std_formatter vs;
        if vs = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "drc" ~doc:"Design-rule-check a CIF file.")
    Term.(const run $ file_arg)

let stats_cmd =
  let run file =
    with_cif file (fun cell ->
        Format.printf "%a@." Sc_layout.Stats.pp (Sc_layout.Stats.measure cell);
        0)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Report area and device statistics of a CIF file.")
    Term.(const run $ file_arg)

(* --- extract --- *)

let extract_cmd =
  let run file =
    with_cif file (fun cell ->
        let net = Sc_extract.Extractor.extract cell in
        Format.printf "%a@." Sc_extract.Extractor.pp net;
        List.iter (fun w -> Printf.printf "  warning: %s\n" w)
          net.Sc_extract.Extractor.warnings;
        List.iter
          (fun (name, node) -> Printf.printf "  port %s = node %d\n" name node)
          net.Sc_extract.Extractor.named;
        if net.Sc_extract.Extractor.warnings = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract the transistor circuit from a CIF file's geometry.")
    Term.(const run $ file_arg)

(* --- svg --- *)

let svg_cmd =
  let run file output =
    with_cif file (fun cell ->
        let svg = Sc_layout.Render.to_svg cell in
        write_out output svg;
        0)
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Render a CIF file as SVG artwork.")
    Term.(const run $ file_arg $ output_arg)

(* --- sim --- *)

let cycles_arg =
  Arg.(value & opt int 16 & info [ "n"; "cycles" ] ~docv:"N" ~doc:"Cycles to run.")

let sim_cmd =
  let run file cycles =
    match Sc_rtl.Parser.parse (read_file file) with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      1
    | Ok design -> (
      match Sc_rtl.Check.check design with
      | e :: _ ->
        Printf.eprintf "check error: %s\n" e;
        1
      | [] ->
        let t = Sc_rtl.Interp.create design in
        let has_reset =
          List.exists
            (fun (d : Sc_rtl.Ast.decl) -> d.dname = "reset")
            design.Sc_rtl.Ast.inputs
        in
        for cyc = 0 to cycles - 1 do
          if has_reset then
            Sc_rtl.Interp.set_input t "reset" (if cyc = 0 then 1 else 0);
          Sc_rtl.Interp.step t;
          Printf.printf "cycle %2d:" cyc;
          List.iter
            (fun (d : Sc_rtl.Ast.decl) ->
              Printf.printf " %s=%d" d.dname (Sc_rtl.Interp.output t d.dname))
            design.Sc_rtl.Ast.outputs;
          print_newline ()
        done;
        0)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Interpret an ISP description (reset asserted on cycle 0, other \
          inputs zero).")
    Term.(const run $ file_arg $ cycles_arg)

let () =
  let doc = "the silicon compiler: textual descriptions to layout data" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "scc" ~version:"1.0" ~doc)
          [ layout_cmd; behavior_cmd; drc_cmd; stats_cmd; sim_cmd; extract_cmd; svg_cmd ]))
