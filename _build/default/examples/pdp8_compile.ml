(* The paper's C4 claim, reproduced end to end: compile a (mini) PDP-8
   from its ISP behavioral description and compare the result against a
   hand-crafted design of the same machine — the stand-in for the
   "commercial design" of reference [6].

   Both implementations are verified cycle-for-cycle against the
   behavioral interpreter while running a small program, then measured.

   Run:  dune exec examples/pdp8_compile.exe  *)

let () =
  let design = Sc_core.Designs.parse Sc_core.Designs.pdp8_src in
  Printf.printf "compiling the mini PDP-8 from its ISP description...\n";
  let compiled = Sc_synth.Synth.gates design in
  let hand = Sc_core.Designs.hand_pdp8 () in
  let hand_stats = Sc_netlist.Circuit.stats hand in
  let cs = compiled.Sc_synth.Synth.stats in
  (* both must implement the ISA *)
  let ok_compiled =
    Sc_synth.Synth.verify_against_interp design compiled.Sc_synth.Synth.circuit
      120 Sc_core.Designs.pdp8_stim
  in
  let ok_hand =
    Sc_synth.Synth.verify_against_interp design hand 120 Sc_core.Designs.pdp8_stim
  in
  Printf.printf "ISA verification: compiled %s, hand %s\n"
    (if ok_compiled then "ok" else "FAILED")
    (if ok_hand then "ok" else "FAILED");
  let hand_area = Sc_stdcell.Library.circuit_cell_area hand in
  let hand_path = Sc_netlist.Timing.critical_path hand in
  Printf.printf "\n%-22s %10s %10s %8s\n" "" "compiled" "hand" "ratio";
  let row name a b =
    Printf.printf "%-22s %10d %10d %8.2f\n" name a b
      (float_of_int a /. float_of_int b)
  in
  row "gates" cs.Sc_netlist.Circuit.gate_total hand_stats.Sc_netlist.Circuit.gate_total;
  row "transistors" cs.Sc_netlist.Circuit.transistors
    hand_stats.Sc_netlist.Circuit.transistors;
  row "cell area (sq lambda)" compiled.Sc_synth.Synth.cell_area hand_area;
  row "critical path (tau)" compiled.Sc_synth.Synth.critical_path hand_path;
  Printf.printf
    "\npaper's claim (ref [6]): chip count within 50%% of the commercial design\n";
  (* run the little program and show the machine working *)
  let eng = Sc_sim.Engine.create compiled.Sc_synth.Synth.circuit in
  Printf.printf "\nrunning the demo program on the compiled machine:\n";
  for cyc = 0 to 14 do
    List.iter
      (fun (n, v) -> Sc_sim.Engine.set_input_int eng n v)
      (Sc_core.Designs.pdp8_stim cyc);
    Sc_sim.Engine.step eng;
    match
      ( Sc_sim.Engine.get_output_int eng "pc_out"
      , Sc_sim.Engine.get_output_int eng "ac_out" )
    with
    | Some pc, Some ac -> Printf.printf "  cycle %2d: pc=%2d ac=%3d\n" cyc pc ac
    | _ -> Printf.printf "  cycle %2d: (settling)\n" cyc
  done;
  (* and produce manufacturing data for the compiled machine *)
  let layout =
    Sc_core.Compiler.layout_of_circuit ~name:"pdp8" compiled.Sc_synth.Synth.circuit
  in
  let path = Filename.temp_file "pdp8" ".cif" in
  Sc_cif.Emit.write path layout;
  Printf.printf "\nplaced layout: %dx%d lambda, DRC %s; CIF at %s\n"
    (Sc_layout.Cell.width layout)
    (Sc_layout.Cell.height layout)
    (if Sc_drc.Checker.is_clean layout then "clean" else "VIOLATIONS")
    path
