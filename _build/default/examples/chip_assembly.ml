(* Parameterised chip assembly (claim C6): one program turns any core
   into a complete bonded chip — pad ring, stubs, overglass openings —
   and the same program scales from a tiny counter to a processor.

   Run:  dune exec examples/chip_assembly.exe  *)

let assemble_and_report name circuit pads =
  let core = Sc_core.Compiler.layout_of_circuit ~name circuit in
  let a = Sc_chip.Assemble.assemble ~name:(name ^ "_chip") ~core ~pads () in
  let clean = Sc_drc.Checker.is_clean a.Sc_chip.Assemble.chip in
  Printf.printf "%-10s %5d pads %10d core %12d chip  x%-5.2f DRC %s\n" name
    a.Sc_chip.Assemble.pads a.Sc_chip.Assemble.core_area
    a.Sc_chip.Assemble.chip_area a.Sc_chip.Assemble.overhead
    (if clean then "clean" else "VIOLATIONS");
  a

let () =
  Printf.printf "assembling chips around synthesized cores:\n\n";
  let counter =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.counter_src))
      .Sc_synth.Synth.circuit
  in
  let alu =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.alu_src))
      .Sc_synth.Synth.circuit
  in
  let pdp8 =
    (Sc_synth.Synth.gates (Sc_core.Designs.parse Sc_core.Designs.pdp8_src))
      .Sc_synth.Synth.circuit
  in
  let _ = assemble_and_report "counter" counter 12 in
  let _ = assemble_and_report "alu4" alu 12 in
  let chip = assemble_and_report "pdp8" pdp8 16 in
  (* the full chip as manufacturing data *)
  let path = Filename.temp_file "pdp8_chip" ".cif" in
  Sc_cif.Emit.write path chip.Sc_chip.Assemble.chip;
  Printf.printf "\nPDP-8 chip artwork written to %s\n" path;
  (* the same parameterised program, swept (a preview of experiment E6) *)
  Printf.printf "\npad-count sweep on the alu core:\n";
  List.iter
    (fun pads ->
      let core = Sc_core.Compiler.layout_of_circuit ~name:"alu4" alu in
      let a = Sc_chip.Assemble.assemble ~name:"alu_chip" ~core ~pads () in
      Printf.printf "  %2d pads -> chip %d sq lambda (x%.2f)\n" pads
        a.Sc_chip.Assemble.chip_area a.Sc_chip.Assemble.overhead)
    [ 4; 8; 16; 24; 32 ]
