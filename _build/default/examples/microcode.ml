(* A microcoded machine: the ROM generator used as a control store.

   The paper's "microscopic" silicon compilation: a regular block
   programmed for a specific function.  Here the function is a microcode
   program — each word holds (next address, lamp outputs) — and the ROM's
   gate-level netlist view is wired to a state register to make a
   sequencer.  The ROM's artwork is the same personality-programmed PLA
   structure measured in E3.

   Run:  dune exec examples/microcode.exe  *)

let () =
  (* 8 microinstructions, 7 bits each: [6:4] lamp pattern, [3:0] next *)
  let word ~next ~lamps = (lamps lsl 4) lor next in
  let program =
    [| word ~next:1 ~lamps:0b001 (* 0: red *)
     ; word ~next:2 ~lamps:0b011 (* 1: red+yellow *)
     ; word ~next:3 ~lamps:0b100 (* 2: green *)
     ; word ~next:4 ~lamps:0b100 (* 3: green (hold) *)
     ; word ~next:5 ~lamps:0b010 (* 4: yellow *)
     ; word ~next:0 ~lamps:0b001 (* 5: red, wrap *)
     ; word ~next:0 ~lamps:0b000 (* 6: unused *)
     ; word ~next:0 ~lamps:0b000 (* 7: unused *)
    |]
  in
  let rom = Sc_rom.Rom.generate ~bits:7 ~name:"ustore" program in
  Printf.printf "%s\n" (Format.asprintf "%a" Sc_rom.Rom.pp_summary rom);
  Printf.printf "control store artwork: %dx%d lambda, DRC %s\n\n"
    (Sc_layout.Cell.width (Sc_rom.Rom.layout rom))
    (Sc_layout.Cell.height (Sc_rom.Rom.layout rom))
    (if Sc_drc.Checker.is_clean (Sc_rom.Rom.layout rom) then "clean"
     else "VIOLATIONS");
  (* wire the ROM netlist to a state register: a microcoded sequencer *)
  let open Sc_netlist in
  let b = Builder.create "sequencer" in
  let reset = (Builder.input b "reset" 1).(0) in
  let state = Builder.fresh_vec b 3 in
  let uword = Builder.fresh_vec b 7 in
  Builder.inst b ~name:"ustore" (Sc_rom.Rom.netlist rom)
    [ ("in", state); ("out", uword) ];
  let next =
    Array.init 3 (fun i -> Builder.and2 b uword.(i) (Builder.not_ b reset))
  in
  Array.iteri (fun i d -> Builder.gate_into b Gate.Dff [| d |] state.(i)) next;
  Builder.output b "lamps" (Array.sub uword 4 3);
  let circuit = Builder.finish b in
  let eng = Sc_sim.Engine.create circuit in
  Printf.printf "cycle | R Y G\n";
  for cyc = 0 to 11 do
    Sc_sim.Engine.set_input_int eng "reset" (if cyc = 0 then 1 else 0);
    (match Sc_sim.Engine.get_output_int eng "lamps" with
    | Some v ->
      Printf.printf "  %2d  | %c %c %c\n" cyc
        (if v land 1 <> 0 then '*' else '.')
        (if v land 2 <> 0 then '*' else '.')
        (if v land 4 <> 0 then '*' else '.')
    | None -> Printf.printf "  %2d  | (settling)\n" cyc);
    Sc_sim.Engine.step eng
  done;
  Printf.printf
    "\nthe same sequence is changed by reprogramming the store, not by \
     redesign:\n";
  let fast = Array.map (fun w -> w) program in
  fast.(3) <- (0b010 lsl 4) lor 4;
  (* skip the green hold *)
  let rom2 = Sc_rom.Rom.generate ~bits:7 ~name:"ustore2" fast in
  Printf.printf "reprogrammed ROM: %d rows, same frame, DRC %s\n"
    rom2.Sc_rom.Rom.pla.Sc_pla.Generator.rows
    (if Sc_drc.Checker.is_clean (Sc_rom.Rom.layout rom2) then "clean"
     else "VIOLATIONS")
