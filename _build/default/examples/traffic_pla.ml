(* A regular block programmed for a specific function (claim C2), shown
   both ways the paper frames silicon compilation:

   - behavioral: the traffic-light controller's ISP description is
     compiled to an FSM realized as a PLA plus a register row;
   - structural: the same machine as random logic from the gates backend.

   The PLA is then simulated through its gate-level netlist view and the
   lamp sequence printed.

   Run:  dune exec examples/traffic_pla.exe  *)

let lamp_names = [| "G"; "Y"; "R" |]

let show_lamps v =
  let parts = ref [] in
  for i = 2 downto 0 do
    if v land (1 lsl i) <> 0 then parts := lamp_names.(i) :: !parts
  done;
  match !parts with [] -> "-" | l -> String.concat "" l

let () =
  let design = Sc_core.Designs.parse Sc_core.Designs.traffic_src in
  (* behavioral path: FSM -> minimized cover -> PLA *)
  let pla_result, pla = Sc_synth.Synth.pla_fsm design in
  Format.printf "%a@." Sc_pla.Generator.pp_summary pla;
  Printf.printf "PLA layout DRC: %s\n"
    (if Sc_drc.Checker.is_clean pla.Sc_pla.Generator.layout then "clean"
     else "VIOLATIONS");
  (* structural path for comparison *)
  let gates = Sc_synth.Synth.gates design in
  Printf.printf
    "area (sq lambda): PLA control %d vs random logic %d; critical path: %d vs %d tau\n"
    pla_result.Sc_synth.Synth.cell_area gates.Sc_synth.Synth.cell_area
    pla_result.Sc_synth.Synth.critical_path gates.Sc_synth.Synth.critical_path;
  (* drive the PLA-based controller through a day at the junction *)
  let eng = Sc_sim.Engine.create pla_result.Sc_synth.Synth.circuit in
  Printf.printf "\n cycle car | NS  EW\n";
  for cyc = 0 to 17 do
    let car = if cyc >= 2 && cyc <= 4 then 1 else 0 in
    Sc_sim.Engine.set_input_int eng "reset" (if cyc = 0 then 1 else 0);
    Sc_sim.Engine.set_input_int eng "car" car;
    let ns = Sc_sim.Engine.get_output_int eng "ns" in
    let ew = Sc_sim.Engine.get_output_int eng "ew" in
    (match (ns, ew) with
    | Some ns, Some ew ->
      Printf.printf "  %2d    %d  | %-3s %-3s\n" cyc car (show_lamps ns)
        (show_lamps ew)
    | _ -> Printf.printf "  %2d    %d  | (uninitialized)\n" cyc car);
    Sc_sim.Engine.step eng
  done;
  (* write the PLA artwork *)
  let path = Filename.temp_file "traffic_pla" ".cif" in
  Sc_cif.Emit.write path pla.Sc_pla.Generator.layout;
  Printf.printf "\nPLA artwork written to %s\n" path
