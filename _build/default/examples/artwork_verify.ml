(* Verification by simulation — of the artwork itself.

   The paper closes by asking what role behavioral descriptions should
   play, "so that verification by simulation can be carried out".  This
   example goes one step further: it extracts the transistor circuit
   back out of the generated mask geometry (channels where poly crosses
   diffusion, contacts, buried gate ties, depletion loads) and simulates
   that at switch level — the NMOS ratioed-logic model — proving the
   *artwork* computes, not merely the netlist it came from.

   Run:  dune exec examples/artwork_verify.exe  *)

let show_cell name cell inputs spec =
  let net = Sc_extract.Extractor.extract cell in
  let ok = Sc_extract.Switch.verify_logic cell ~inputs ~outputs:[ "y" ] spec in
  Printf.printf "%-8s: %s -> computes %s: %b\n" name
    (Format.asprintf "%a" Sc_extract.Extractor.pp net)
    name ok

let () =
  Printf.printf "extracting and simulating the standard cells' masks:\n";
  show_cell "inv" (Sc_stdcell.Nmos.inv ()) [ "a" ] (fun b -> [| not b.(0) |]);
  show_cell "nand2" (Sc_stdcell.Nmos.nand 2) [ "a"; "b" ] (fun b ->
      [| not (b.(0) && b.(1)) |]);
  show_cell "nor2" (Sc_stdcell.Nmos.nor2 ()) [ "a"; "b" ] (fun b ->
      [| not (b.(0) || b.(1)) |]);
  (* now a programmed PLA: a BCD "is prime" detector *)
  Printf.printf "\na PLA programmed as a BCD prime detector (2,3,5,7):\n";
  let cover =
    Sc_logic.Cover.of_function ~ninputs:4 ~noutputs:1 (fun bits ->
        let v =
          (if bits.(0) then 1 else 0)
          lor (if bits.(1) then 2 else 0)
          lor (if bits.(2) then 4 else 0)
          lor if bits.(3) then 8 else 0
        in
        [| v = 2 || v = 3 || v = 5 || v = 7 |])
  in
  let pla = Sc_pla.Generator.generate cover in
  Printf.printf "%s\n" (Format.asprintf "%a" Sc_pla.Generator.pp_summary pla);
  let net = Sc_extract.Extractor.extract pla.Sc_pla.Generator.layout in
  Printf.printf "%s\n" (Format.asprintf "%a" Sc_extract.Extractor.pp net);
  let node = Sc_extract.Extractor.node_of net in
  Printf.printf "\n  v | prime? | artwork says\n";
  let all_ok = ref true in
  for v = 0 to 9 do
    let bits = Array.init 4 (fun i -> v land (1 lsl i) <> 0) in
    let inputs =
      List.concat
        (List.init 4 (fun i ->
             [ ( node (Printf.sprintf "in%d_t" i)
               , if bits.(i) then Sc_extract.Switch.V1 else Sc_extract.Switch.V0 )
             ; ( node (Printf.sprintf "in%d_c" i)
               , if bits.(i) then Sc_extract.Switch.V0 else Sc_extract.Switch.V1 )
             ]))
    in
    let values =
      Sc_extract.Switch.simulate net ~vdd:(node "vdd") ~gnd:(node "gnd") ~inputs
    in
    (* the NOR-plane column carries the complement; invert for display *)
    let raw = values.(node "out0") in
    let says =
      match raw with
      | Sc_extract.Switch.V0 -> "prime"
      | Sc_extract.Switch.V1 -> "not prime"
      | Sc_extract.Switch.VX -> "???"
    in
    let expected = (Sc_logic.Cover.eval cover bits).(0) in
    let agrees =
      raw = if expected then Sc_extract.Switch.V0 else Sc_extract.Switch.V1
    in
    if not agrees then all_ok := false;
    Printf.printf "  %d | %-6s | %s\n" v
      (if expected then "prime" else "no")
      says
  done;
  Printf.printf "\nartwork agrees with the specification on all inputs: %b\n"
    !all_ok
