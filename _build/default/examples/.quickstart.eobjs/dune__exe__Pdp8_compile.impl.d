examples/pdp8_compile.ml: Filename List Printf Sc_cif Sc_core Sc_drc Sc_layout Sc_netlist Sc_sim Sc_stdcell Sc_synth
