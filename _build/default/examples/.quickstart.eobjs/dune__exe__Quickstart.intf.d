examples/quickstart.mli:
