examples/quickstart.ml: Filename Printf Sc_cif Sc_core Sc_layout String
