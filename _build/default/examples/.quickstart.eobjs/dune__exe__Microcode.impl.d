examples/microcode.ml: Array Builder Format Gate Printf Sc_drc Sc_layout Sc_netlist Sc_pla Sc_rom Sc_sim
