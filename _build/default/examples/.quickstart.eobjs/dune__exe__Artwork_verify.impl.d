examples/artwork_verify.ml: Array Format List Printf Sc_extract Sc_logic Sc_pla Sc_stdcell
