examples/artwork_verify.mli:
