examples/traffic_pla.mli:
