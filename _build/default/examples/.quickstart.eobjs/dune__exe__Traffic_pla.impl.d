examples/traffic_pla.ml: Array Filename Format Printf Sc_cif Sc_core Sc_drc Sc_pla Sc_sim Sc_synth String
