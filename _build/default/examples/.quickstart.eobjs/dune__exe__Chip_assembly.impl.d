examples/chip_assembly.ml: Filename List Printf Sc_chip Sc_cif Sc_core Sc_drc Sc_synth
