examples/microcode.mli:
