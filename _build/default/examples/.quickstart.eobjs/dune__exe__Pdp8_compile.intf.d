examples/pdp8_compile.mli:
