(** Static checks on behavioral designs.

    Verifies: unique declarations; every referenced name is declared;
    assignment targets are outputs or registers (never inputs); outputs
    are write-only in expressions (read a register instead, which keeps
    outputs purely combinational); bit selects are in range; shift
    amounts are constant; widths are in 1..30 (the interpreter and
    synthesizer use OCaml ints); and every output is assigned on every
    execution path, so the synthesized logic is fully combinationally
    defined. *)

val check : Ast.design -> string list
(** Empty list = well-formed. *)

(** Width of an expression under the design's declarations: arithmetic
    and bitwise operators take the wider operand's width, comparisons
    have width 1, a bit-select has width 1, constants take the width of
    their context (here: their minimal width).
    @raise Not_found for undeclared names. *)
val expr_width : Ast.design -> Ast.expr -> int

val find_decl : Ast.design -> string -> Ast.decl option
