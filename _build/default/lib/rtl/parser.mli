(** Parsing the behavioral language.

    Concrete syntax (comments run from "--" to end of line):

    {v
    module counter;
    inputs reset[1], load[1], data[4];
    outputs q[4];
    registers count[4];
    behavior
      if reset == 1 then count := 0;
      else if load == 1 then count := data;
      else count := count + 1;
      end end
      q := count;
    end
    v}

    Statements: assignment [target := expr;]; conditional
    [if e then ... else ... end] (else part optional); and
    [decode e  K: ... default: ... end].  Expression operators by
    loosening precedence: [~] (complement), [+ -], [<< >>] (constant
    shifts), comparisons, [&], [^], [|].  Literals are decimal, [0x...]
    or [0b...].  [name\[i\]] selects a bit. *)

val parse : string -> (Ast.design, string) result

val parse_file : string -> (Ast.design, string) result

(** Parse a single expression, for tests and tools. *)
val parse_expr : string -> (Ast.expr, string) result
