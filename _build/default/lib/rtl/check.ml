let max_width = 30

let all_decls (d : Ast.design) = d.inputs @ d.outputs @ d.regs @ d.wires

let find_decl d name =
  List.find_opt (fun (dd : Ast.decl) -> dd.dname = name) (all_decls d)

let rec min_const_width v = if v <= 1 then 1 else 1 + min_const_width (v / 2)

let rec expr_width d = function
  | Ast.Const v -> min_const_width v
  | Ast.Ref n -> (
    match find_decl d n with
    | Some dd -> dd.width
    | None -> raise Not_found)
  | Ast.Bit _ -> 1
  | Ast.Unop (Ast.Not, e) -> expr_width d e
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt), _, _) -> 1
  | Ast.Binop (Ast.Shl, a, _) -> expr_width d a
  | Ast.Binop (Ast.Shr, a, b) -> (
    (* a constant shift narrows the result *)
    match b with
    | Ast.Const k -> max 1 (expr_width d a - k)
    | _ -> expr_width d a)
  | Ast.Binop (Ast.And, a, Ast.Const c) | Ast.Binop (Ast.And, Ast.Const c, a)
    ->
    (* masking with a constant narrows the result *)
    min (expr_width d a) (min_const_width c)
  | Ast.Binop (_, a, b) -> max (expr_width d a) (expr_width d b)

let check (d : Ast.design) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  (* declarations *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (dd : Ast.decl) ->
      if Hashtbl.mem seen dd.dname then err "duplicate declaration %s" dd.dname;
      Hashtbl.replace seen dd.dname ();
      if dd.width < 1 || dd.width > max_width then
        err "%s: width %d out of range 1..%d" dd.dname dd.width max_width)
    (all_decls d);
  let is_input n = List.exists (fun (dd : Ast.decl) -> dd.dname = n) d.inputs in
  let is_output n = List.exists (fun (dd : Ast.decl) -> dd.dname = n) d.outputs in
  let is_wire n = List.exists (fun (dd : Ast.decl) -> dd.dname = n) d.wires in
  let module S = Set.Make (String) in
  (* [defined] tracks names definitely assigned so far in the cycle; a
     wire may only be read once it is in [defined] *)
  let rec check_expr defined = function
    | Ast.Const v -> if v < 0 then err "negative constant %d" v
    | Ast.Ref n ->
      if find_decl d n = None then err "undeclared name %s" n
      else if is_output n then
        err "output %s is write-only (copy through a register)" n
      else if is_wire n && not (S.mem n defined) then
        err "wire %s read before assignment" n
    | Ast.Bit (n, i) -> (
      match find_decl d n with
      | None -> err "undeclared name %s" n
      | Some dd ->
        if is_output n then
          err "output %s is write-only (copy through a register)" n;
        if is_wire n && not (S.mem n defined) then
          err "wire %s read before assignment" n;
        if i < 0 || i >= dd.width then
          err "bit select %s[%d] out of range (width %d)" n i dd.width)
    | Ast.Unop (_, e) -> check_expr defined e
    | Ast.Binop ((Ast.Shl | Ast.Shr), a, b) ->
      check_expr defined a;
      (match b with
      | Ast.Const _ -> ()
      | _ -> err "shift amount must be a constant")
    | Ast.Binop (_, a, b) ->
      check_expr defined a;
      check_expr defined b
  in
  (* statements; threads the definitely-assigned set in execution order *)
  let rec definite defined stmts = List.fold_left definite_stmt defined stmts
  and definite_stmt defined = function
    | Ast.Assign (n, e) ->
      check_expr defined e;
      (match find_decl d n with
      | None ->
        err "assignment to undeclared name %s" n;
        defined
      | Some _ when is_input n ->
        err "assignment to input %s" n;
        defined
      | Some _ -> S.add n defined)
    | Ast.If (c, t, e) ->
      check_expr defined c;
      S.inter (definite defined t) (definite defined e)
    | Ast.Decode (scrutinee, cases, dflt) ->
      check_expr defined scrutinee;
      let w = try expr_width d scrutinee with Not_found -> max_width in
      List.iter
        (fun (v, _) ->
          if w < max_width && v >= 1 lsl w then
            err "decode case %d unreachable (scrutinee width %d)" v w)
        cases;
      let case_sets = List.map (fun (_, ss) -> definite defined ss) cases in
      let inter_all = function
        | first :: rest -> List.fold_left S.inter first rest
        | [] -> defined
      in
      (* without a default covering the whole range, nothing is definite
         unless the cases are exhaustive *)
      let exhaustive_cases =
        w < max_width
        && List.for_all
             (fun v -> List.mem_assoc v cases)
             (List.init (1 lsl w) (fun i -> i))
      in
      if dflt <> [] then inter_all (definite defined dflt :: case_sets)
      else if exhaustive_cases then inter_all case_sets
      else begin
        (* still typecheck an absent default's cases' bodies *)
        defined
      end
  in
  let assigned = definite S.empty d.body in
  List.iter
    (fun (dd : Ast.decl) ->
      if not (S.mem dd.dname assigned) then
        err "output %s is not assigned on every path" dd.dname)
    d.outputs;
  List.rev !errs
