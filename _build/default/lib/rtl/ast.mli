(** Abstract syntax of the behavioral description language.

    A small ISP-flavoured register-transfer language (after Barbacci et
    al.'s ISPS, the paper's reference [4]): a design declares inputs,
    outputs and registers with bit widths, and a behaviour — a statement
    list executed once per clock cycle.  Register assignments take effect
    at the end of the cycle (all right-hand sides see pre-cycle values);
    textual order gives priority (last assignment wins).  Outputs are
    combinational and must be assigned on every path. *)

type unop = Not  (** bitwise complement *)

type binop =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Lt
  | Gt
  | Shl  (** shift by a constant right operand *)
  | Shr

type expr =
  | Const of int
  | Ref of string
  | Bit of string * int  (** single-bit select *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Decode of expr * (int * stmt list) list * stmt list
      (** decode e: cases by constant, with default *)

type decl = { dname : string; width : int }

type design =
  { name : string
  ; inputs : decl list
  ; outputs : decl list
  ; regs : decl list
  ; wires : decl list
      (** combinational temporaries: assigned then read within one cycle
          (blocking); they carry no state *)
  ; body : stmt list
  }

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : Format.formatter -> stmt -> unit

val pp : Format.formatter -> design -> unit
