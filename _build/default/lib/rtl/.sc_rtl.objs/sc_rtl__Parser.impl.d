lib/rtl/parser.ml: Ast Format Fun List String
