lib/rtl/interp.ml: Array Ast Check Hashtbl List
