lib/rtl/check.ml: Ast Format Hashtbl List Set String
