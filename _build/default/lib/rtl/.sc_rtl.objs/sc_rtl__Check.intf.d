lib/rtl/check.mli: Ast
