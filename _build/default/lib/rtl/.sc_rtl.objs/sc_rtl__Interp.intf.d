lib/rtl/interp.mli: Ast
