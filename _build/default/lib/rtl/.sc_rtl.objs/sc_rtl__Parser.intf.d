lib/rtl/parser.mli: Ast
