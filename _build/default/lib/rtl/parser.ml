type token =
  | Tident of string
  | Tint of int
  | Tsym of string  (** punctuation and operators, as written *)
  | Teof

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let keywords =
  [ "module"; "inputs"; "outputs"; "registers"; "wires"; "behavior"; "if"
  ; "then"; "else"; "end"; "decode"; "default"
  ]

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let emit t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !pos < n do
    let c = text.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && !pos + 1 < n && text.[!pos + 1] = '-' then begin
      (* comment to end of line *)
      while !pos < n && text.[!pos] <> '\n' do
        incr pos
      done
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !pos in
      while !pos < n && is_ident_char text.[!pos] do
        incr pos
      done;
      emit (Tident (String.sub text start (!pos - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      incr pos;
      let base, digits_start =
        if c = '0' && !pos < n && (text.[!pos] = 'x' || text.[!pos] = 'b') then begin
          let b = if text.[!pos] = 'x' then 16 else 2 in
          incr pos;
          (b, !pos)
        end
        else (10, start)
      in
      let is_digit ch =
        match base with
        | 16 ->
          (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')
          || (ch >= 'A' && ch <= 'F')
        | 2 -> ch = '0' || ch = '1'
        | _ -> ch >= '0' && ch <= '9'
      in
      while !pos < n && is_digit text.[!pos] do
        incr pos
      done;
      let digits = String.sub text digits_start (!pos - digits_start) in
      let value =
        match base with
        | 16 -> int_of_string ("0x" ^ digits)
        | 2 -> int_of_string ("0b" ^ digits)
        | _ -> int_of_string digits
      in
      emit (Tint value)
    end
    else begin
      let two =
        if !pos + 1 < n then String.sub text !pos 2 else ""
      in
      match two with
      | ":=" | "==" | "!=" | "<<" | ">>" ->
        emit (Tsym two);
        pos := !pos + 2
      | _ -> (
        match c with
        | ';' | ',' | ':' | '<' | '>' | '+' | '-' | '&' | '^' | '|' | '~'
        | '(' | ')' | '[' | ']' ->
          emit (Tsym (String.make 1 c));
          incr pos
        | _ -> fail "unexpected character %C" c)
    end;
    ignore (peek ())
  done;
  emit Teof;
  List.rev !tokens

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> Teof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect_sym st s =
  match peek st with
  | Tsym s' when s = s' -> advance st
  | t ->
    fail "expected %S, found %s" s
      (match t with
      | Tident i -> i
      | Tint v -> string_of_int v
      | Tsym s -> s
      | Teof -> "end of input")

let expect_kw st kw =
  match peek st with
  | Tident i when i = kw -> advance st
  | _ -> fail "expected keyword %S" kw

let expect_ident st =
  match peek st with
  | Tident i when not (List.mem i keywords) ->
    advance st;
    i
  | Tident i -> fail "unexpected keyword %S" i
  | _ -> fail "expected identifier"

let expect_int st =
  match peek st with
  | Tint v ->
    advance st;
    v
  | _ -> fail "expected integer"

(* expressions, loosest first: | ^ & cmp shift add unary atom *)
let rec parse_or st =
  let a = parse_xor st in
  match peek st with
  | Tsym "|" ->
    advance st;
    Ast.Binop (Ast.Or, a, parse_or st)
  | _ -> a

and parse_xor st =
  let a = parse_and st in
  match peek st with
  | Tsym "^" ->
    advance st;
    Ast.Binop (Ast.Xor, a, parse_xor st)
  | _ -> a

and parse_and st =
  let a = parse_cmp st in
  match peek st with
  | Tsym "&" ->
    advance st;
    Ast.Binop (Ast.And, a, parse_and st)
  | _ -> a

and parse_cmp st =
  let a = parse_shift st in
  match peek st with
  | Tsym "==" ->
    advance st;
    Ast.Binop (Ast.Eq, a, parse_shift st)
  | Tsym "!=" ->
    advance st;
    Ast.Binop (Ast.Ne, a, parse_shift st)
  | Tsym "<" ->
    advance st;
    Ast.Binop (Ast.Lt, a, parse_shift st)
  | Tsym ">" ->
    advance st;
    Ast.Binop (Ast.Gt, a, parse_shift st)
  | _ -> a

and parse_shift st =
  let a = parse_add st in
  match peek st with
  | Tsym "<<" ->
    advance st;
    Ast.Binop (Ast.Shl, a, parse_add st)
  | Tsym ">>" ->
    advance st;
    Ast.Binop (Ast.Shr, a, parse_add st)
  | _ -> a

and parse_add st =
  let rec loop a =
    match peek st with
    | Tsym "+" ->
      advance st;
      loop (Ast.Binop (Ast.Add, a, parse_unary st))
    | Tsym "-" ->
      advance st;
      loop (Ast.Binop (Ast.Sub, a, parse_unary st))
    | _ -> a
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Tsym "~" ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Tint v ->
    advance st;
    Ast.Const v
  | Tsym "(" ->
    advance st;
    let e = parse_or st in
    expect_sym st ")";
    e
  | Tident i when not (List.mem i keywords) ->
    advance st;
    (match peek st with
    | Tsym "[" ->
      advance st;
      let b = expect_int st in
      expect_sym st "]";
      Ast.Bit (i, b)
    | _ -> Ast.Ref i)
  | _ -> fail "expected expression"

let starts_stmt = function
  | Tident i -> not (List.mem i keywords) || i = "if" || i = "decode"
  | _ -> false

let rec parse_stmt st =
  match peek st with
  | Tident "if" ->
    advance st;
    let c = parse_or st in
    expect_kw st "then";
    let t = parse_stmts st in
    let e =
      match peek st with
      | Tident "else" ->
        advance st;
        parse_stmts st
      | _ -> []
    in
    expect_kw st "end";
    Ast.If (c, t, e)
  | Tident "decode" ->
    advance st;
    let scrutinee = parse_or st in
    let cases = ref [] in
    let dflt = ref [] in
    let rec cases_loop () =
      match peek st with
      | Tint v ->
        advance st;
        expect_sym st ":";
        cases := (v, parse_stmts st) :: !cases;
        cases_loop ()
      | Tident "default" ->
        advance st;
        expect_sym st ":";
        dflt := parse_stmts st;
        cases_loop ()
      | _ -> ()
    in
    cases_loop ();
    expect_kw st "end";
    Ast.Decode (scrutinee, List.rev !cases, !dflt)
  | _ ->
    let target = expect_ident st in
    expect_sym st ":=";
    let e = parse_or st in
    expect_sym st ";";
    Ast.Assign (target, e)

and parse_stmts st =
  let acc = ref [] in
  while starts_stmt (peek st) do
    acc := parse_stmt st :: !acc
  done;
  List.rev !acc

let parse_decls st =
  let rec loop acc =
    let name = expect_ident st in
    expect_sym st "[";
    let w = expect_int st in
    expect_sym st "]";
    let acc = { Ast.dname = name; width = w } :: acc in
    match peek st with
    | Tsym "," ->
      advance st;
      loop acc
    | _ ->
      expect_sym st ";";
      List.rev acc
  in
  loop []

let parse_design st =
  expect_kw st "module";
  let name = expect_ident st in
  expect_sym st ";";
  let inputs = ref [] and outputs = ref [] and regs = ref [] in
  let wires = ref [] in
  let rec sections () =
    match peek st with
    | Tident "inputs" ->
      advance st;
      inputs := !inputs @ parse_decls st;
      sections ()
    | Tident "outputs" ->
      advance st;
      outputs := !outputs @ parse_decls st;
      sections ()
    | Tident "registers" ->
      advance st;
      regs := !regs @ parse_decls st;
      sections ()
    | Tident "wires" ->
      advance st;
      wires := !wires @ parse_decls st;
      sections ()
    | _ -> ()
  in
  sections ();
  expect_kw st "behavior";
  let body = parse_stmts st in
  expect_kw st "end";
  (match peek st with
  | Teof -> ()
  | _ -> fail "trailing input after final end");
  { Ast.name
  ; inputs = !inputs
  ; outputs = !outputs
  ; regs = !regs
  ; wires = !wires
  ; body
  }

let parse text =
  match parse_design { toks = tokenize text } with
  | d -> Ok d
  | exception Error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let parse_expr text =
  let st = { toks = tokenize text } in
  match
    let e = parse_or st in
    match peek st with Teof -> e | _ -> fail "trailing input"
  with
  | e -> Ok e
  | exception Error msg -> Error msg
