type unop = Not

type binop = Add | Sub | And | Or | Xor | Eq | Ne | Lt | Gt | Shl | Shr

type expr =
  | Const of int
  | Ref of string
  | Bit of string * int
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Decode of expr * (int * stmt list) list * stmt list

type decl = { dname : string; width : int }

type design =
  { name : string
  ; inputs : decl list
  ; outputs : decl list
  ; regs : decl list
  ; wires : decl list
  ; body : stmt list
  }

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Shl -> "<<"
  | Shr -> ">>"

let rec pp_expr ppf = function
  | Const v -> Format.fprintf ppf "%d" v
  | Ref n -> Format.pp_print_string ppf n
  | Bit (n, i) -> Format.fprintf ppf "%s[%d]" n i
  | Unop (Not, e) -> Format.fprintf ppf "~%a" pp_atom e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

and pp_atom ppf e =
  match e with
  | Const _ | Ref _ | Bit _ -> pp_expr ppf e
  | _ -> Format.fprintf ppf "(%a)" pp_expr e

let rec pp_stmt ppf = function
  | Assign (n, e) -> Format.fprintf ppf "%s := %a;" n pp_expr e
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if %a then@ %a@]@ end" pp_expr c pp_stmts t
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a then@ %a@]@ @[<v 2>else@ %a@]@ end"
      pp_expr c pp_stmts t pp_stmts e
  | Decode (e, cases, dflt) ->
    Format.fprintf ppf "@[<v 2>decode %a@ " pp_expr e;
    List.iter
      (fun (v, ss) -> Format.fprintf ppf "@[<v 2>%d:@ %a@]@ " v pp_stmts ss)
      cases;
    if dflt <> [] then Format.fprintf ppf "@[<v 2>default:@ %a@]@ " pp_stmts dflt;
    Format.fprintf ppf "@]end"

and pp_stmts ppf ss =
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_stmt ppf ss

let pp_decls ppf what decls =
  if decls <> [] then begin
    Format.fprintf ppf "%s " what;
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf d -> Format.fprintf ppf "%s[%d]" d.dname d.width)
      ppf decls;
    Format.fprintf ppf ";@ "
  end

let pp ppf d =
  Format.fprintf ppf "@[<v>module %s;@ " d.name;
  pp_decls ppf "inputs" d.inputs;
  pp_decls ppf "outputs" d.outputs;
  pp_decls ppf "registers" d.regs;
  pp_decls ppf "wires" d.wires;
  Format.fprintf ppf "@[<v 2>behavior@ %a@]@ end@]" pp_stmts d.body
