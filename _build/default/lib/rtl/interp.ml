type t =
  { design : Ast.design
  ; inputs : (string, int) Hashtbl.t
  ; regs : (string, int) Hashtbl.t
  ; outputs : (string, int) Hashtbl.t
  }

let mask w v = v land ((1 lsl w) - 1)

let create design =
  (match Check.check design with
  | [] -> ()
  | e :: _ -> invalid_arg ("Interp.create: " ^ e));
  let t =
    { design
    ; inputs = Hashtbl.create 8
    ; regs = Hashtbl.create 8
    ; outputs = Hashtbl.create 8
    }
  in
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace t.inputs d.dname 0) design.inputs;
  (* registers power up at zero: the interpreter is the reference model,
     and the synthesized circuits are driven through a reset before any
     comparison *)
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace t.regs d.dname 0) design.regs;
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace t.outputs d.dname 0) design.outputs;
  (* wires share the combinational table; the checker guarantees every
     read is preceded by an assignment in the same cycle *)
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace t.outputs d.dname 0) design.wires;
  t

let design t = t.design

let width t name =
  match Check.find_decl t.design name with
  | Some d -> d.Ast.width
  | None -> raise Not_found

let set_input t name v =
  if not (Hashtbl.mem t.inputs name) then raise Not_found;
  Hashtbl.replace t.inputs name (mask (width t name) v)

(* environment during a step: pending assignments shadow pre-cycle state *)
let lookup t pending name =
  match Hashtbl.find_opt pending name with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt t.inputs name with
    | Some v -> v
    | None -> (
      match Hashtbl.find_opt t.regs name with
      | Some v -> v
      | None -> Hashtbl.find t.outputs name))

let rec eval t pending e =
  match (e : Ast.expr) with
  | Ast.Const v -> v
  | Ast.Ref n -> lookup t pending n
  | Ast.Bit (n, i) -> (lookup t pending n lsr i) land 1
  | Ast.Unop (Ast.Not, e') ->
    let w = Check.expr_width t.design e' in
    mask w (lnot (eval t pending e'))
  | Ast.Binop (op, a, b) ->
    let va = eval t pending a in
    let w = Check.expr_width t.design (Ast.Binop (op, a, b)) in
    (match op with
    | Ast.Add -> mask w (va + eval t pending b)
    | Ast.Sub -> mask w (va - eval t pending b)
    | Ast.And -> va land eval t pending b
    | Ast.Or -> va lor eval t pending b
    | Ast.Xor -> va lxor eval t pending b
    | Ast.Eq -> if va = eval t pending b then 1 else 0
    | Ast.Ne -> if va <> eval t pending b then 1 else 0
    | Ast.Lt -> if va < eval t pending b then 1 else 0
    | Ast.Gt -> if va > eval t pending b then 1 else 0
    | Ast.Shl -> mask w (va lsl eval t pending b)
    | Ast.Shr -> va lsr eval t pending b)

(* Register reads during a step must see PRE-cycle values even after a
   pending register assignment (non-blocking semantics).  The pending
   table therefore shadows outputs immediately but register reads bypass
   it: we keep two tables. *)
let step t =
  let pending_out = Hashtbl.create 8 in
  let pending_reg = Hashtbl.create 8 in
  let is_reg n = List.exists (fun (d : Ast.decl) -> d.Ast.dname = n) t.design.regs in
  (* a wrapper environment: assignments recorded per class; reads of
     registers use pre-cycle values, reads of outputs see the pending
     value (combinational chaining) *)
  let lookup2 name =
    match Hashtbl.find_opt pending_out name with
    | Some v when not (is_reg name) -> v
    | _ -> (
      match Hashtbl.find_opt t.inputs name with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt t.regs name with
        | Some v -> v
        | None -> Hashtbl.find t.outputs name))
  in
  let rec eval2 e =
    match (e : Ast.expr) with
    | Ast.Const v -> v
    | Ast.Ref n -> lookup2 n
    | Ast.Bit (n, i) -> (lookup2 n lsr i) land 1
    | Ast.Unop (Ast.Not, e') ->
      let w = Check.expr_width t.design e' in
      mask w (lnot (eval2 e'))
    | Ast.Binop (op, a, b) ->
      let va = eval2 a in
      let vb = eval2 b in
      let w = Check.expr_width t.design (Ast.Binop (op, a, b)) in
      (match op with
      | Ast.Add -> mask w (va + vb)
      | Ast.Sub -> mask w (va - vb)
      | Ast.And -> va land vb
      | Ast.Or -> va lor vb
      | Ast.Xor -> va lxor vb
      | Ast.Eq -> if va = vb then 1 else 0
      | Ast.Ne -> if va <> vb then 1 else 0
      | Ast.Lt -> if va < vb then 1 else 0
      | Ast.Gt -> if va > vb then 1 else 0
      | Ast.Shl -> mask w (va lsl vb)
      | Ast.Shr -> va lsr vb)
  in
  let rec exec2 stmts = List.iter exec_stmt2 stmts
  and exec_stmt2 = function
    | Ast.Assign (n, e) ->
      let v = mask (width t n) (eval2 e) in
      if is_reg n then Hashtbl.replace pending_reg n v
      else Hashtbl.replace pending_out n v
    | Ast.If (c, th, el) -> if eval2 c <> 0 then exec2 th else exec2 el
    | Ast.Decode (e, cases, dflt) -> (
      match List.assoc_opt (eval2 e) cases with
      | Some ss -> exec2 ss
      | None -> exec2 dflt)
  in
  exec2 t.design.body;
  Hashtbl.iter (fun n v -> Hashtbl.replace t.outputs n v) pending_out;
  Hashtbl.iter (fun n v -> Hashtbl.replace t.regs n v) pending_reg

let output t name =
  if not (List.exists (fun (d : Ast.decl) -> d.Ast.dname = name) t.design.outputs)
  then raise Not_found;
  Hashtbl.find t.outputs name

let reg t name =
  if not (List.exists (fun (d : Ast.decl) -> d.Ast.dname = name) t.design.regs)
  then raise Not_found;
  Hashtbl.find t.regs name

let set_reg t name v =
  if not (List.exists (fun (d : Ast.decl) -> d.Ast.dname = name) t.design.regs)
  then raise Not_found;
  Hashtbl.replace t.regs name (mask (width t name) v)

let run t cycles inputs =
  Array.init cycles (fun cyc ->
      List.iter (fun (n, v) -> set_input t n v) (inputs cyc);
      step t;
      List.map
        (fun (d : Ast.decl) -> (d.dname, output t d.dname))
        t.design.outputs)

let eval_expr t e = eval t (Hashtbl.create 1) e
