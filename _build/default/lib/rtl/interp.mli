(** Cycle-accurate interpretation of behavioral designs.

    The interpreter is the language's reference semantics — "verification
    by simulation" on the behavioral description itself — and the oracle
    the synthesizer's netlists are tested against.

    Values are plain integers masked to their declared widths.  One
    {!step} evaluates the whole behaviour with pre-cycle register values,
    then commits register updates. *)

type t

(** @raise Invalid_argument when {!Check.check} reports errors. *)
val create : Ast.design -> t

val design : t -> Ast.design

(** [set_input t name v] — masked to the declared width.
    @raise Not_found on unknown input. *)
val set_input : t -> string -> int -> unit

(** Run one clock cycle; outputs and registers update. *)
val step : t -> unit

(** Value of an output after the latest [step].
    @raise Not_found on unknown output. *)
val output : t -> string -> int

(** Current register value. *)
val reg : t -> string -> int

(** Force a register value (masked).  Used by the synthesizer to
    enumerate the state space and by tests.
    @raise Not_found on unknown register. *)
val set_reg : t -> string -> int -> unit

(** [run t cycles inputs] — convenience: [inputs] maps cycle index to
    input assignments; returns per-cycle output snapshots. *)
val run :
  t -> int -> (int -> (string * int) list) -> (string * int) list array

(** Evaluate an expression in the current pre-step environment (inputs and
    registers only; for tests). *)
val eval_expr : t -> Ast.expr -> int
