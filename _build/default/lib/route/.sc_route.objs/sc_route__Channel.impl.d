lib/route/channel.ml: Array Cell Hashtbl Int Layer List Printf Rect Sc_geom Sc_layout Sc_tech
