lib/route/channel.mli: Sc_layout
