open Sc_geom
open Sc_tech
open Sc_layout

let cell_height = 40

(* Shared frame pieces.  All coordinates in lambda; the geometry was laid
   out against the Rules deck: 2-lambda poly/diff, 3-lambda metal,
   2x2 contacts with 1-lambda metal surround, 2-lambda implant margin. *)

let rails w =
  [ Cell.box Layer.Metal (Rect.make 0 0 w 3)
  ; Cell.box Layer.Metal (Rect.make 0 37 w 40)
  ]

let rail_ports w =
  ignore w;
  [ Cell.port "gnd" Layer.Metal (Rect.make 0 0 0 3)
  ; Cell.port "vdd" Layer.Metal (Rect.make 0 37 0 40)
  ]

(* metal-covered contact: cut at (x,y)..(x+2,y+2), metal surround 1 *)
let contact x y =
  [ Cell.box Layer.Contact (Rect.make x y (x + 2) (y + 2))
  ; Cell.box Layer.Metal (Rect.make (x - 1) (y - 1) (x + 3) (y + 3))
  ]

let input_names = [| "a"; "b"; "c" |]

(* Series-pulldown cell (inverter = 1 gate, NAND2/3 = 2/3 gates): one
   vertical diffusion column, input gates stacked 5 lambda apart, output
   node contacted above the top gate, depletion pull-up at the top with
   gate strapped to the output. *)
let series_cell name n =
  assert (n >= 1 && n <= 3);
  let w = 14 in
  let yo = 11 + (5 * (n - 1)) in
  (* output contact bottom *)
  let elements =
    rails w
    @ [ (* diffusion column through pulldowns, output node and pull-up *)
        Cell.box Layer.Diffusion (Rect.make 5 1 7 39)
      ]
    (* GND contact *)
    @ contact 5 1
    (* input gates *)
    @ List.concat
        (List.init n (fun i ->
             let y = 6 + (5 * i) in
             [ Cell.box Layer.Poly (Rect.make 1 y 9 (y + 2)) ]))
    (* output node contact, strip to the right edge, strap up to pull-up *)
    @ contact 5 yo
    @ [ Cell.box Layer.Metal (Rect.make 4 (yo - 1) w (yo + 3))
      ; Cell.box Layer.Metal (Rect.make 10 (yo - 1) w 29)
      ]
    (* depletion pull-up: gate at y 26..28, implant, gate-output contact *)
    @ [ Cell.box Layer.Poly (Rect.make 3 26 11 28)
      ; Cell.box Layer.Implant (Rect.make 3 24 9 30)
      ]
    @ contact 9 26
    (* VDD contact *)
    @ contact 5 37
  in
  let ports =
    rail_ports w
    @ List.init n (fun i ->
          let y = 6 + (5 * i) in
          Cell.port input_names.(i) Layer.Poly (Rect.make 1 y 1 (y + 2)))
    @ [ Cell.port "y" Layer.Metal (Rect.make w yo w (yo + 2)) ]
  in
  Cell.make ~name ~ports elements

let inv () = series_cell "inv" 1

let nand n =
  if n < 2 || n > 3 then invalid_arg "Nmos.nand: n must be 2 or 3";
  series_cell (Printf.sprintf "nand%d" n) n

(* Two-input NOR: two pulldown columns, each GND-contacted at the bottom
   and joined at the output; the second column carries the depletion
   pull-up above its output contact. *)
let nor2 () =
  let w = 20 in
  let elements =
    rails w
    @ [ (* column A: GND @1, gate a @6..8, output contact @11 *)
        Cell.box Layer.Diffusion (Rect.make 5 1 7 14)
      ; (* column B: GND @1, gate b @16..18, output contact @21,
           pull-up @26..28, VDD @37 *)
        Cell.box Layer.Diffusion (Rect.make 11 1 13 39)
      ]
    @ contact 5 1
    @ contact 11 1
    (* gate a crosses column A only *)
    @ [ Cell.box Layer.Poly (Rect.make 1 6 9 8) ]
    (* gate b runs above column A's diffusion top and crosses column B *)
    @ [ Cell.box Layer.Poly (Rect.make 1 16 15 18) ]
    (* column A output contact and vertical link up to the join *)
    @ contact 5 11
    @ [ Cell.box Layer.Metal (Rect.make 4 10 8 24) ]
    (* column B output contact, join strip, strap to pull-up and east port *)
    @ contact 11 21
    @ [ Cell.box Layer.Metal (Rect.make 4 20 14 24)
      ; Cell.box Layer.Metal (Rect.make 14 20 w 24)
      ; Cell.box Layer.Metal (Rect.make 14 20 18 29)
      ]
    (* depletion pull-up on column B *)
    @ [ Cell.box Layer.Poly (Rect.make 9 26 17 28)
      ; Cell.box Layer.Implant (Rect.make 9 24 15 30)
      ]
    @ contact 15 26
    @ contact 11 37
  in
  let ports =
    rail_ports w
    @ [ Cell.port "a" Layer.Poly (Rect.make 1 6 1 8)
      ; Cell.port "b" Layer.Poly (Rect.make 1 16 1 18)
      ; Cell.port "y" Layer.Metal (Rect.make w 21 w 23)
      ]
  in
  Cell.make ~name:"nor2" ~ports elements

let row name cells = Compose.row ~name cells

(* Inter-cell routing for [routed_chain]: stage pitch is the inverter
   width plus a 10-lambda gap.  From stage k's output port (metal, right
   edge, y 10..14) a metal jog runs into the gap and drops onto a
   poly-metal contact; the contact's poly column runs down and joins a
   leftward extension of stage k+1's input line. *)
let routed_chain n =
  if n < 1 then invalid_arg "Nmos.routed_chain: n must be positive";
  let inv_cell = inv () in
  let w = Cell.width inv_cell in
  let gap = 10 in
  let pitchx = w + gap in
  let instances =
    List.init n (fun k ->
        Cell.instantiate
          ~name:(Printf.sprintf "s%d" k)
          ~trans:(Transform.translation (k * pitchx) 0)
          inv_cell)
  in
  let wires = ref [] in
  let add e = wires := e :: !wires in
  for k = 0 to n - 2 do
    let x0 = k * pitchx in
    (* metal jog from the output port into the gap *)
    add (Cell.box Layer.Metal (Rect.make (x0 + w) 11 (x0 + w + 9) 15));
    (* poly-metal contact in the gap *)
    add (Cell.box Layer.Contact (Rect.make (x0 + w + 6) 12 (x0 + w + 8) 14));
    (* poly column down to the next stage's input line, plus the
       leftward extension of that line *)
    add (Cell.box Layer.Poly (Rect.make (x0 + w + 6) 6 (x0 + w + 8) 16));
    add (Cell.box Layer.Poly (Rect.make (x0 + w + 6) 6 (x0 + pitchx + 1) 8))
  done;
  (* one shared rail pair spanning the gaps so supplies stay connected *)
  add (Cell.box Layer.Metal (Rect.make 0 0 (((n - 1) * pitchx) + w) 3));
  add (Cell.box Layer.Metal (Rect.make 0 37 (((n - 1) * pitchx) + w) 40));
  let last = (n - 1) * pitchx in
  let ports =
    [ Cell.port "a" Layer.Poly (Rect.make 1 6 1 8)
    ; Cell.port "y" Layer.Metal (Rect.make (last + w) 11 (last + w) 13)
    ; Cell.port "gnd" Layer.Metal (Rect.make 0 0 0 3)
    ; Cell.port "vdd" Layer.Metal (Rect.make 0 37 0 40)
    ]
  in
  Cell.make
    ~name:(Printf.sprintf "chain%d" n)
    ~ports ~instances (List.rev !wires)
