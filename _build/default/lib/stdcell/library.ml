open Sc_layout
open Sc_netlist

type cell =
  { kind : Gate.kind
  ; layout : Cell.t
  ; area : int
  ; width : int
  ; height : int
  ; transistors : int
  ; delay : int
  }

(* Composite cells are rows of primitives; the layouts match the classic
   NAND-only constructions so the area is honest even though intra-cell
   wiring is abstracted. *)
let rec build_layout kind =
  match (kind : Gate.kind) with
  | Gate.Inv -> Nmos.inv ()
  | Gate.Nand2 -> Nmos.nand 2
  | Gate.Nand3 -> Nmos.nand 3
  | Gate.Nor2 -> Nmos.nor2 ()
  | Gate.Buf -> Nmos.row "buf" [ Nmos.inv (); Nmos.inv () ]
  | Gate.And2 -> Nmos.row "and2" [ Nmos.nand 2; Nmos.inv () ]
  | Gate.Or2 -> Nmos.row "or2" [ Nmos.nor2 (); Nmos.inv () ]
  | Gate.Nor3 ->
    (* nor3(a,b,c) = nor2(or2(a,b), c) *)
    Nmos.row "nor3" [ Nmos.nor2 (); Nmos.inv (); Nmos.nor2 () ]
  | Gate.Xor2 ->
    Nmos.row "xor2"
      [ Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 2 ]
  | Gate.Xnor2 -> Nmos.row "xnor2" [ build_layout Gate.Xor2; Nmos.inv () ]
  | Gate.Mux2 ->
    Nmos.row "mux2" [ Nmos.inv (); Nmos.nand 2; Nmos.nand 2; Nmos.nand 2 ]
  | Gate.Dff ->
    Nmos.row "dff"
      [ Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 2; Nmos.nand 3
      ; Nmos.nand 2
      ]
  | Gate.Dffe -> Nmos.row "dffe" [ build_layout Gate.Dff; build_layout Gate.Mux2 ]
  | Gate.Const0 | Gate.Const1 ->
    (* a tie-off: a strip of rail-height with no devices *)
    Cell.make
      ~name:(Gate.to_string kind)
      ~ports:
        [ Cell.port "y" Sc_tech.Layer.Metal (Sc_geom.Rect.make 4 0 4 3) ]
      [ Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 0 4 3)
      ; Cell.box Sc_tech.Layer.Metal (Sc_geom.Rect.make 0 37 4 40)
      ]

let cache : (Gate.kind, cell) Hashtbl.t = Hashtbl.create 16

let get kind =
  match Hashtbl.find_opt cache kind with
  | Some c -> c
  | None ->
    let layout = build_layout kind in
    let c =
      { kind
      ; layout
      ; area = Cell.area layout
      ; width = Cell.width layout
      ; height = Cell.height layout
      ; transistors = Gate.transistors kind
      ; delay = Gate.delay kind
      }
    in
    Hashtbl.add cache kind c;
    c

let layout_of kind = (get kind).layout

let all () = List.map get Gate.all

let circuit_cell_area c =
  let s = Circuit.stats c in
  List.fold_left
    (fun acc (kind, n) -> acc + (n * (get kind).area))
    0 s.Circuit.by_kind

let pp_cell ppf c =
  Format.fprintf ppf "%a: %dx%d lambda, %d transistors, delay %d" Gate.pp
    c.kind c.width c.height c.transistors c.delay
