(** Transistor-level NMOS primitive cell layouts.

    All primitive cells share the standard-cell frame: height 40 lambda,
    a 3-lambda GND rail along the bottom and VDD rail along the top that
    span the full cell width, so cells placed in a row connect their
    supplies by abutment (the Mead–Conway wiring-management idiom the
    paper's C5 claim is about).

    Every generated cell passes the {!Sc_drc} deck; tests enforce this.

    Ports: inputs ["a"], ["b"], ["c"] on poly at the left edge, output
    ["y"] on metal at the right edge, rails ["vdd"] / ["gnd"] at the left
    edge of their rails. *)

open Sc_layout

(** Frame height in lambda. *)
val cell_height : int

(** Depletion-load inverter. *)
val inv : unit -> Cell.t

(** Series pulldown (NAND) with [n] inputs, n = 2 or 3. *)
val nand : int -> Cell.t

(** Two-input parallel pulldown (NOR). *)
val nor2 : unit -> Cell.t

(** [row name cells] abuts cells left-to-right; rails line up by
    construction. *)
val row : string -> Cell.t list -> Cell.t

(** [routed_chain n] — [n] inverters placed with a 10-lambda routing gap
    and *wired*: each stage's metal output jogs to a poly-metal contact
    on the next stage's input line.  The result is a complete, routed,
    DRC-clean multi-cell module whose artwork computes
    [y = a] for even [n] and [y = not a] for odd [n] (verified by
    extraction and switch-level simulation in the tests).  Ports:
    ["a"], ["y"], ["vdd"], ["gnd"].
    @raise Invalid_argument when [n < 1]. *)
val routed_chain : int -> Cell.t
