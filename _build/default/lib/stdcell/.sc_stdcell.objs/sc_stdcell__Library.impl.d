lib/stdcell/library.ml: Cell Circuit Format Gate Hashtbl List Nmos Sc_geom Sc_layout Sc_netlist Sc_tech
