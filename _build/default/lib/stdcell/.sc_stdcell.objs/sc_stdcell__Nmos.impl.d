lib/stdcell/nmos.ml: Array Cell Compose Layer List Printf Rect Sc_geom Sc_layout Sc_tech Transform
