lib/stdcell/nmos.mli: Cell Sc_layout
