lib/stdcell/library.mli: Cell Circuit Format Gate Sc_layout Sc_netlist
