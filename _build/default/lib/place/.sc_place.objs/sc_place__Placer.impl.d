lib/place/placer.ml: Array Circuit Float Format Gate Hashtbl List Point Printf Random Sc_geom Sc_layout Sc_netlist Sc_route Sc_stdcell Transform
