lib/place/placer.mli: Circuit Format Gate Sc_layout Sc_netlist Sc_route
