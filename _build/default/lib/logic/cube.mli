(** Cubes of a multi-output boolean cover.

    A cube is a product term over [n] input variables — each literal is
    0, 1 or don't-care — together with the set of outputs it drives,
    kept as a bitmask (so at most 62 outputs).  This is the PLA
    personality-row view of logic: the input part is the AND plane, the
    output mask the OR plane. *)

type lit = Zero | One | Dash

type t = private { lits : lit array; outputs : int }

(** [make lits outputs] with [outputs] a non-zero bitmask.
    @raise Invalid_argument when [outputs] is 0 or negative. *)
val make : lit array -> int -> t

(** [of_string s outputs] parses "01-0" notation. *)
val of_string : string -> int -> t

(** [minterm bits outputs] builds a full cube from booleans. *)
val minterm : bool array -> int -> t

val num_inputs : t -> int

(** Number of Dash literals. *)
val free_count : t -> int

(** [covers_input c bits] — does the input part contain the minterm? *)
val covers_input : t -> bool array -> bool

(** [covers c c'] — input part of [c] contains that of [c'] and the output
    mask of [c] is a superset of [c']'s. *)
val covers : t -> t -> bool

(** [input_covers c c'] — containment on the input part only. *)
val input_covers : t -> t -> bool

(** Input-part intersection, [None] if empty. The output mask of the result
    is the intersection; [None] as well if the masks are disjoint. *)
val inter : t -> t -> t option

(** Hamming-style distance of the input parts: number of variables where
    one has 0 and the other 1. *)
val distance : t -> t -> int

(** [merge c c'] — when the input parts are at distance exactly 1 and the
    output masks intersect, the QM merge: the differing variable goes to
    Dash, outputs to the intersection. *)
val merge : t -> t -> t option

(** [raise_lit c i] sets literal [i] to Dash. *)
val raise_lit : t -> int -> t

(** [cofactor_lit c i v] restricts variable [i] to value [v]: [None] if the
    cube does not intersect that half-space, otherwise the cube with
    literal [i] erased to Dash. *)
val cofactor_lit : t -> int -> bool -> t option

(** [restrict_outputs c mask] intersects the output mask; [None] if empty. *)
val restrict_outputs : t -> int -> t option

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit
