(** Multi-output sum-of-products covers.

    A cover is the logic-level description of a PLA: a set of cubes over a
    fixed number of inputs and outputs.  Output [o] of the function is the
    OR of the cubes whose output mask has bit [o] set. *)

type t = private { ninputs : int; noutputs : int; cubes : Cube.t list }

(** @raise Invalid_argument when a cube's arity mismatches or
    [noutputs > 62]. *)
val make : ninputs:int -> noutputs:int -> Cube.t list -> t

val empty : ninputs:int -> noutputs:int -> t

(** [of_on_sets ~ninputs rows] builds a cover from string rows
    ["01-" , "10"] (input part, output part).  Output parts use '1' for
    driven outputs. *)
val of_rows : ninputs:int -> noutputs:int -> (string * string) list -> t

(** [of_function ~ninputs ~noutputs f] tabulates [f] over all minterms
    (exponential; [ninputs <= 20]). *)
val of_function :
  ninputs:int -> noutputs:int -> (bool array -> bool array) -> t

val add : t -> Cube.t -> t

val term_count : t -> int

(** Total number of non-Dash literals, the AND-plane contact count. *)
val literal_count : t -> int

(** OR-plane contact count: sum of output-mask popcounts. *)
val output_count : t -> int

val eval : t -> bool array -> bool array

(** [restrict_output t o] keeps cubes driving output [o], as a
    single-output view (masks collapsed to 1). *)
val restrict_output : t -> int -> t

(** [cofactor t cube] is the Shannon cofactor of the cover with respect to
    a cube's input part (output masks preserved). *)
val cofactor : t -> Cube.t -> t

(** Single-output tautology: does the cover (whose cubes are taken as an
    OR regardless of masks) cover the whole input space? *)
val tautology : t -> bool

(** [cube_covered cube t] — is every (input minterm, output) pair of [cube]
    covered by [t]?  Decided per output bit by cofactor tautology, without
    enumerating minterms. *)
val cube_covered : Cube.t -> t -> bool

(** [covered_by a b] — every cube of [a] is functionally covered by [b]. *)
val covered_by : t -> t -> bool

(** Semantic equivalence, by tautology-based mutual covering (no minterm
    enumeration, any arity). *)
val equivalent : t -> t -> bool

(** [union a b]
    @raise Invalid_argument on arity mismatch. *)
val union : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
