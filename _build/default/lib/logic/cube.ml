type lit = Zero | One | Dash

type t = { lits : lit array; outputs : int }

let make lits outputs =
  if outputs <= 0 then invalid_arg "Cube.make: empty or negative output mask";
  { lits = Array.copy lits; outputs }

let of_string s outputs =
  let lit_of_char = function
    | '0' -> Zero
    | '1' -> One
    | '-' | 'x' | 'X' -> Dash
    | c -> invalid_arg (Printf.sprintf "Cube.of_string: bad character %c" c)
  in
  make (Array.init (String.length s) (fun i -> lit_of_char s.[i])) outputs

let minterm bits outputs =
  make (Array.map (fun b -> if b then One else Zero) bits) outputs

let num_inputs c = Array.length c.lits

let free_count c =
  Array.fold_left (fun n l -> if l = Dash then n + 1 else n) 0 c.lits

let covers_input c bits =
  let n = Array.length c.lits in
  assert (Array.length bits = n);
  let rec go i =
    i >= n
    ||
    match c.lits.(i) with
    | Dash -> go (i + 1)
    | One -> bits.(i) && go (i + 1)
    | Zero -> (not bits.(i)) && go (i + 1)
  in
  go 0

let input_covers c c' =
  let n = Array.length c.lits in
  let rec go i =
    i >= n
    ||
    match (c.lits.(i), c'.lits.(i)) with
    | Dash, _ -> go (i + 1)
    | One, One | Zero, Zero -> go (i + 1)
    | _ -> false
  in
  go 0

let covers c c' = c.outputs land c'.outputs = c'.outputs && input_covers c c'

let inter c c' =
  let outputs = c.outputs land c'.outputs in
  if outputs = 0 then None
  else
    let n = Array.length c.lits in
    let lits = Array.make n Dash in
    let rec go i =
      if i >= n then Some (make lits outputs)
      else
        match (c.lits.(i), c'.lits.(i)) with
        | Zero, One | One, Zero -> None
        | Dash, l | l, Dash ->
          lits.(i) <- l;
          go (i + 1)
        | l, _ ->
          lits.(i) <- l;
          go (i + 1)
    in
    go 0

let distance c c' =
  let d = ref 0 in
  Array.iteri
    (fun i l ->
      match (l, c'.lits.(i)) with
      | Zero, One | One, Zero -> incr d
      | _ -> ())
    c.lits;
  !d

let merge c c' =
  if c.outputs land c'.outputs = 0 then None
  else if distance c c' <> 1 then None
  else begin
    (* the input parts must agree everywhere else, including Dashes *)
    let n = Array.length c.lits in
    let rec same_elsewhere i =
      i >= n
      ||
      match (c.lits.(i), c'.lits.(i)) with
      | Zero, One | One, Zero -> same_elsewhere (i + 1)
      | a, b -> a = b && same_elsewhere (i + 1)
    in
    if not (same_elsewhere 0) then None
    else
      let lits =
        Array.mapi
          (fun i l ->
            match (l, c'.lits.(i)) with
            | Zero, One | One, Zero -> Dash
            | a, _ -> a)
          c.lits
      in
      Some (make lits (c.outputs land c'.outputs))
  end

let raise_lit c i =
  let lits = Array.copy c.lits in
  lits.(i) <- Dash;
  { c with lits }

let cofactor_lit c i v =
  match (c.lits.(i), v) with
  | Zero, true | One, false -> None
  | _ -> Some (raise_lit c i)

let restrict_outputs c mask =
  let outputs = c.outputs land mask in
  if outputs = 0 then None else Some { c with outputs }

let equal a b = a.outputs = b.outputs && a.lits = b.lits

let compare a b =
  let c = Stdlib.compare a.lits b.lits in
  if c <> 0 then c else Int.compare a.outputs b.outputs

let to_string c =
  let buf = Buffer.create (num_inputs c + 8) in
  Array.iter
    (fun l ->
      Buffer.add_char buf (match l with Zero -> '0' | One -> '1' | Dash -> '-'))
    c.lits;
  Buffer.add_string buf (Printf.sprintf "#%x" c.outputs);
  Buffer.contents buf

let pp ppf c = Format.pp_print_string ppf (to_string c)
