type t = { ninputs : int; noutputs : int; cubes : Cube.t list }

let max_outputs = 62

let make ~ninputs ~noutputs cubes =
  if noutputs < 1 || noutputs > max_outputs then
    invalid_arg "Cover.make: noutputs out of range";
  if ninputs < 0 then invalid_arg "Cover.make: negative ninputs";
  List.iter
    (fun c ->
      if Cube.num_inputs c <> ninputs then
        invalid_arg "Cover.make: cube arity mismatch";
      if c.Cube.outputs lsr noutputs <> 0 then
        invalid_arg "Cover.make: output mask out of range")
    cubes;
  { ninputs; noutputs; cubes }

let empty ~ninputs ~noutputs = make ~ninputs ~noutputs []

let mask_of_string s =
  let m = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> m := !m lor (1 lsl i)
      | '0' | '-' -> ()
      | c -> invalid_arg (Printf.sprintf "Cover.of_rows: bad output char %c" c))
    s;
  !m

let of_rows ~ninputs ~noutputs rows =
  let cube_of (inp, out) =
    if String.length inp <> ninputs then
      invalid_arg "Cover.of_rows: input width mismatch";
    if String.length out <> noutputs then
      invalid_arg "Cover.of_rows: output width mismatch";
    let mask = mask_of_string out in
    if mask = 0 then None else Some (Cube.of_string inp mask)
  in
  make ~ninputs ~noutputs (List.filter_map cube_of rows)

let of_function ~ninputs ~noutputs f =
  if ninputs > 20 then invalid_arg "Cover.of_function: too many inputs";
  let cubes = ref [] in
  for v = 0 to (1 lsl ninputs) - 1 do
    let bits = Array.init ninputs (fun i -> v land (1 lsl i) <> 0) in
    let out = f bits in
    if Array.length out <> noutputs then
      invalid_arg "Cover.of_function: output width mismatch";
    let mask = ref 0 in
    Array.iteri (fun o b -> if b then mask := !mask lor (1 lsl o)) out;
    if !mask <> 0 then cubes := Cube.minterm bits !mask :: !cubes
  done;
  make ~ninputs ~noutputs (List.rev !cubes)

let add t c =
  if Cube.num_inputs c <> t.ninputs then invalid_arg "Cover.add: arity mismatch";
  { t with cubes = c :: t.cubes }

let term_count t = List.length t.cubes

let literal_count t =
  List.fold_left
    (fun acc c -> acc + (t.ninputs - Cube.free_count c))
    0 t.cubes

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let output_count t =
  List.fold_left (fun acc c -> acc + popcount c.Cube.outputs) 0 t.cubes

let eval t bits =
  let out = Array.make t.noutputs false in
  List.iter
    (fun c ->
      if Cube.covers_input c bits then
        for o = 0 to t.noutputs - 1 do
          if c.Cube.outputs land (1 lsl o) <> 0 then out.(o) <- true
        done)
    t.cubes;
  out

let restrict_output t o =
  let cubes =
    List.filter_map
      (fun c ->
        if c.Cube.outputs land (1 lsl o) <> 0 then
          Some (Cube.make c.Cube.lits 1)
        else None)
      t.cubes
  in
  make ~ninputs:t.ninputs ~noutputs:1 cubes

let cofactor t cube =
  let cofactor_cube c =
    (* c cofactored by every bound literal of [cube] *)
    let n = t.ninputs in
    let rec go i c =
      if i >= n then Some c
      else
        match cube.Cube.lits.(i) with
        | Cube.Dash -> go (i + 1) c
        | Cube.Zero -> (
          match Cube.cofactor_lit c i false with
          | Some c' -> go (i + 1) c'
          | None -> None)
        | Cube.One -> (
          match Cube.cofactor_lit c i true with
          | Some c' -> go (i + 1) c'
          | None -> None)
    in
    go 0 c
  in
  { t with cubes = List.filter_map cofactor_cube t.cubes }

(* Tautology by Shannon expansion on the most-bound variable, with the two
   classic shortcuts: a cube of all Dashes is a tautology; an empty cover is
   not.  Single-output view: masks ignored. *)
let tautology t =
  let rec taut cubes =
    match cubes with
    | [] -> false
    | _ when List.exists (fun c -> Cube.free_count c = Cube.num_inputs c) cubes
      -> true
    | _ ->
      (* pick the variable bound in the most cubes *)
      let n = t.ninputs in
      let counts = Array.make n 0 in
      List.iter
        (fun c ->
          Array.iteri
            (fun i l -> if l <> Cube.Dash then counts.(i) <- counts.(i) + 1)
            c.Cube.lits)
        cubes;
      let var = ref (-1) and best = ref 0 in
      Array.iteri
        (fun i k ->
          if k > !best then begin
            best := k;
            var := i
          end)
        counts;
      if !var < 0 then false
      else
        let cof v =
          List.filter_map (fun c -> Cube.cofactor_lit c !var v) cubes
        in
        taut (cof false) && taut (cof true)
  in
  taut t.cubes

let cube_covered cube t =
  let rec check o =
    if o >= t.noutputs then true
    else if cube.Cube.outputs land (1 lsl o) = 0 then check (o + 1)
    else
      let view = restrict_output t o in
      let cof = cofactor view cube in
      tautology cof && check (o + 1)
  in
  check 0

let union a b =
  if a.ninputs <> b.ninputs || a.noutputs <> b.noutputs then
    invalid_arg "Cover.union: arity mismatch";
  { a with cubes = a.cubes @ b.cubes }

let covered_by a b = List.for_all (fun c -> cube_covered c b) a.cubes

let equivalent a b =
  a.ninputs = b.ninputs && a.noutputs = b.noutputs && covered_by a b
  && covered_by b a

let pp ppf t =
  Format.fprintf ppf "@[<v>.i %d .o %d .p %d@," t.ninputs t.noutputs
    (term_count t);
  List.iter (fun c -> Format.fprintf ppf "%a@," Cube.pp c) t.cubes;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
