type t =
  | Var of int
  | Const of bool
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let var i = Var i
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let not_ a = Not a
let xor a b = Xor (a, b)

let rec eval env = function
  | Var i -> env i
  | Const b -> b
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b

let rec num_vars = function
  | Var i -> i + 1
  | Const _ -> 0
  | Not e -> num_vars e
  | And es | Or es -> List.fold_left (fun m e -> max m (num_vars e)) 0 es
  | Xor (a, b) -> max (num_vars a) (num_vars b)

(* Symbolic SOP of an expression: a list of (positive mask, negative mask)
   int-pair cubes.  Negation normal form first; Xor is expanded. *)
type scube = { pos : int; neg : int }

let scube_inter a b =
  let pos = a.pos lor b.pos and neg = a.neg lor b.neg in
  if pos land neg <> 0 then None else Some { pos; neg }

let rec sop ~polarity e =
  match (e, polarity) with
  | Const b, true -> if b then [ { pos = 0; neg = 0 } ] else []
  | Const b, false -> if b then [] else [ { pos = 0; neg = 0 } ]
  | Var i, true -> [ { pos = 1 lsl i; neg = 0 } ]
  | Var i, false -> [ { pos = 0; neg = 1 lsl i } ]
  | Not e, pol -> sop ~polarity:(not pol) e
  | And es, true -> product (List.map (sop ~polarity:true) es)
  | And es, false -> List.concat_map (sop ~polarity:false) es
  | Or es, true -> List.concat_map (sop ~polarity:true) es
  | Or es, false -> product (List.map (sop ~polarity:false) es)
  | Xor (a, b), true ->
    product [ sop ~polarity:true a; sop ~polarity:false b ]
    @ product [ sop ~polarity:false a; sop ~polarity:true b ]
  | Xor (a, b), false ->
    product [ sop ~polarity:true a; sop ~polarity:true b ]
    @ product [ sop ~polarity:false a; sop ~polarity:false b ]

and product = function
  | [] -> [ { pos = 0; neg = 0 } ]
  | first :: rest ->
    let tail = product rest in
    List.concat_map
      (fun a -> List.filter_map (fun b -> scube_inter a b) tail)
      first

let to_cover ~ninputs outputs =
  let noutputs = List.length outputs in
  (* gather product terms, sharing identical input parts across outputs *)
  let shared : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun o e ->
      if num_vars e > ninputs then
        invalid_arg "Expr.to_cover: variable out of range";
      List.iter
        (fun sc ->
          match Hashtbl.find_opt shared (sc.pos, sc.neg) with
          | Some mask -> mask := !mask lor (1 lsl o)
          | None -> Hashtbl.add shared (sc.pos, sc.neg) (ref (1 lsl o)))
        (sop ~polarity:true e))
    outputs;
  let cubes =
    Hashtbl.fold
      (fun (pos, neg) mask acc ->
        let lits =
          Array.init ninputs (fun i ->
              if pos land (1 lsl i) <> 0 then Cube.One
              else if neg land (1 lsl i) <> 0 then Cube.Zero
              else Cube.Dash)
        in
        Cube.make lits !mask :: acc)
      shared []
  in
  Cover.make ~ninputs ~noutputs cubes

let rec pp ppf = function
  | Var i -> Format.fprintf ppf "x%d" i
  | Const b -> Format.fprintf ppf "%b" b
  | Not e -> Format.fprintf ppf "!%a" pp_atom e
  | And es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         pp)
      es
  | Or es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp)
      es
  | Xor (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b

and pp_atom ppf e =
  match e with
  | Var _ | Const _ -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e

let to_string e = Format.asprintf "%a" pp e
