(** Boolean expressions.

    The front-ends (behavioral compiler, PLA programming) describe logic as
    expressions; [to_cover] turns a vector of expressions into a
    multi-output SOP cover by structural translation (negation-normal form,
    then distribution), with identical product terms shared between
    outputs — exactly how a PLA shares AND-plane rows. *)

type t =
  | Var of int
  | Const of bool
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

val var : int -> t

val ( &&& ) : t -> t -> t

val ( ||| ) : t -> t -> t

val not_ : t -> t

val xor : t -> t -> t

val eval : (int -> bool) -> t -> bool

(** Largest variable index + 1, 0 for a constant expression. *)
val num_vars : t -> int

(** [to_cover ~ninputs outputs] builds the multi-output cover whose output
    [o] equals [List.nth outputs o].

    @raise Invalid_argument if an expression mentions a variable
    [>= ninputs]. *)
val to_cover : ninputs:int -> t list -> Cover.t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
