(** Two-level minimization.

    Two engines stand behind {!minimize}:

    - an exact multi-output Quine–McCluskey (minterm expansion, prime
      generation by level merging, essential-prime extraction, then greedy
      completion of the covering table) for small input counts;
    - an espresso-style heuristic (EXPAND each cube by raising literals
      while the enlarged cube stays inside the function, then an
      IRREDUNDANT pass) whose validity checks are cofactor-tautology
      based, so no minterm enumeration is ever needed.

    The paper's C2 claim — PLAs programmed for specific functions — is
    measured in E3 with and without this pass. *)

(** [minimize ?dontcare ?exact cover] returns an equivalent (on the care
    set) cover with fewer or equal product terms.  Default engine: exact
    when [ninputs <= 10], heuristic otherwise. *)
val minimize : ?dontcare:Cover.t -> ?exact:bool -> Cover.t -> Cover.t

(** The heuristic engine directly, regardless of size. *)
val heuristic : ?dontcare:Cover.t -> Cover.t -> Cover.t

(** All multi-output prime implicants (exact; exponential in inputs).
    @raise Invalid_argument when [ninputs > 16]. *)
val primes : ?dontcare:Cover.t -> Cover.t -> Cube.t list

(** [verify ?dontcare ~original ~minimized ()] — equivalence on the care
    set. *)
val verify :
  ?dontcare:Cover.t -> original:Cover.t -> minimized:Cover.t -> unit -> bool
