(* --- exact engine: multi-output Quine-McCluskey --- *)

let minterm_map cover =
  (* value -> output mask over ON u DC *)
  let n = cover.Cover.ninputs in
  let tbl = Hashtbl.create 256 in
  for v = 0 to (1 lsl n) - 1 do
    let bits = Array.init n (fun i -> v land (1 lsl i) <> 0) in
    let mask =
      List.fold_left
        (fun m c -> if Cube.covers_input c bits then m lor c.Cube.outputs else m)
        0 cover.Cover.cubes
    in
    if mask <> 0 then Hashtbl.replace tbl v mask
  done;
  tbl

let primes ?dontcare cover =
  let n = cover.Cover.ninputs in
  if n > 16 then invalid_arg "Minimize.primes: too many inputs";
  let full =
    match dontcare with Some dc -> Cover.union cover dc | None -> cover
  in
  let tbl = minterm_map full in
  let level0 =
    Hashtbl.fold
      (fun v mask acc ->
        Cube.minterm (Array.init n (fun i -> v land (1 lsl i) <> 0)) mask :: acc)
      tbl []
  in
  let primes = ref [] in
  let ones_count (c : Cube.t) =
    Array.fold_left
      (fun acc l -> if l = Cube.One then acc + 1 else acc)
      0 c.Cube.lits
  in
  (* classic QM: only cubes whose One-counts differ by exactly 1 can merge,
     so bucket each level by popcount and compare adjacent buckets *)
  let rec round cubes =
    if cubes = [] then ()
    else begin
      let arr = Array.of_list cubes in
      let m = Array.length arr in
      let checked = Array.make m false in
      let next = Hashtbl.create 64 in
      let buckets = Hashtbl.create 16 in
      Array.iteri
        (fun i c ->
          let k = ones_count c in
          let cur = try Hashtbl.find buckets k with Not_found -> [] in
          Hashtbl.replace buckets k (i :: cur))
        arr;
      let try_merge i j =
        match Cube.merge arr.(i) arr.(j) with
        | Some merged ->
          (* a parent is fully absorbed when its whole tag survives *)
          if merged.Cube.outputs = arr.(i).Cube.outputs then checked.(i) <- true;
          if merged.Cube.outputs = arr.(j).Cube.outputs then checked.(j) <- true;
          let key = Cube.to_string merged in
          (match Hashtbl.find_opt next key with
          | Some existing ->
            (* same input part: keep the union of output tags *)
            Hashtbl.replace next key
              (Cube.make merged.Cube.lits
                 (existing.Cube.outputs lor merged.Cube.outputs))
          | None -> Hashtbl.replace next key merged)
        | None -> ()
      in
      Hashtbl.iter
        (fun k lo ->
          match Hashtbl.find_opt buckets (k + 1) with
          | Some hi -> List.iter (fun i -> List.iter (try_merge i) hi) lo
          | None -> ())
        buckets;
      Array.iteri
        (fun i c -> if not checked.(i) then primes := c :: !primes)
        arr;
      round (Hashtbl.fold (fun _ c acc -> c :: acc) next [])
    end
  in
  round level0;
  (* remove primes dominated by another prime *)
  let ps = !primes in
  if List.length ps > 4000 then ps
  else
    List.filter
      (fun p ->
        not
          (List.exists (fun q -> (not (Cube.equal p q)) && Cube.covers q p) ps))
      ps

let exact ?dontcare cover =
  let n = cover.Cover.ninputs in
  let ps = Array.of_list (primes ?dontcare cover) in
  (* covering rows: (minterm value, output bit) of the ON-set only *)
  let on = minterm_map cover in
  let rows = ref [] in
  Hashtbl.iter
    (fun v mask ->
      for o = 0 to cover.Cover.noutputs - 1 do
        if mask land (1 lsl o) <> 0 then rows := (v, o) :: !rows
      done)
    on;
  let rows = Array.of_list !rows in
  let nrows = Array.length rows in
  let covers_row p (v, o) =
    p.Cube.outputs land (1 lsl o) <> 0
    && Cube.covers_input p (Array.init n (fun i -> v land (1 lsl i) <> 0))
  in
  (* precompute the covering table once: prime -> row indices *)
  let prime_rows =
    Array.map
      (fun p ->
        let acc = ref [] in
        Array.iteri (fun r row -> if covers_row p row then acc := r :: !acc) rows;
        !acc)
      ps
  in
  let row_primes = Array.make nrows [] in
  Array.iteri
    (fun j rs -> List.iter (fun r -> row_primes.(r) <- j :: row_primes.(r)) rs)
    prime_rows;
  let covered = Array.make nrows false in
  let uncovered = ref nrows in
  let chosen = ref [] in
  let pick j =
    chosen := ps.(j) :: !chosen;
    List.iter
      (fun r ->
        if not covered.(r) then begin
          covered.(r) <- true;
          decr uncovered
        end)
      prime_rows.(j)
  in
  (* essential primes: rows covered by exactly one prime *)
  let essentials = Hashtbl.create 16 in
  Array.iter
    (fun js -> match js with [ j ] -> Hashtbl.replace essentials j () | _ -> ())
    row_primes;
  Hashtbl.iter (fun j () -> pick j) essentials;
  (* greedy completion on the precomputed table *)
  while !uncovered > 0 do
    let best = ref (-1) and best_count = ref 0 in
    Array.iteri
      (fun j rs ->
        let k =
          List.fold_left (fun a r -> if covered.(r) then a else a + 1) 0 rs
        in
        if k > !best_count then begin
          best := j;
          best_count := k
        end)
      prime_rows;
    if !best < 0 then
      (* cannot happen: every ON row is covered by some prime *)
      assert false;
    pick !best
  done;
  Cover.make ~ninputs:n ~noutputs:cover.Cover.noutputs !chosen

(* --- heuristic engine: espresso-style EXPAND / IRREDUNDANT --- *)

let expand_cube reference cube =
  let n = Cube.num_inputs cube in
  let rec go i c =
    if i >= n then c
    else if c.Cube.lits.(i) = Cube.Dash then go (i + 1) c
    else
      let raised = Cube.raise_lit c i in
      if Cover.cube_covered raised reference then go (i + 1) raised
      else go (i + 1) c
  in
  go 0 cube

let dedup_contained cubes =
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      if
        List.exists (fun q -> Cube.covers q c) acc
        || List.exists (fun q -> Cube.covers q c) rest
      then keep acc rest
      else keep (c :: acc) rest
  in
  keep [] cubes

let irredundant ?dontcare cover =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let others =
        Cover.make ~ninputs:cover.Cover.ninputs ~noutputs:cover.Cover.noutputs
          (List.rev_append kept rest)
      in
      let others =
        match dontcare with Some dc -> Cover.union others dc | None -> others
      in
      if Cover.cube_covered c others then go kept rest else go (c :: kept) rest
  in
  Cover.make ~ninputs:cover.Cover.ninputs ~noutputs:cover.Cover.noutputs
    (go [] cover.Cover.cubes)

let heuristic ?dontcare cover =
  let reference =
    match dontcare with Some dc -> Cover.union cover dc | None -> cover
  in
  let pass cv =
    let expanded = List.map (expand_cube reference) cv.Cover.cubes in
    let cv =
      Cover.make ~ninputs:cover.Cover.ninputs ~noutputs:cover.Cover.noutputs
        (dedup_contained expanded)
    in
    irredundant ?dontcare cv
  in
  let once = pass cover in
  let twice = pass once in
  if Cover.term_count twice < Cover.term_count once then twice else once

let minimize ?dontcare ?exact:(want_exact = false) cover =
  if cover.Cover.cubes = [] then cover
  else begin
    let candidate =
      if want_exact || cover.Cover.ninputs <= 10 then
        (* greedy covering-table completion can overshoot; an irredundant
           pass trims it *)
        irredundant ?dontcare (exact ?dontcare cover)
      else heuristic ?dontcare cover
    in
    (* never return a worse cover than a deduplicated original *)
    let baseline =
      Cover.make ~ninputs:cover.Cover.ninputs ~noutputs:cover.Cover.noutputs
        (dedup_contained cover.Cover.cubes)
    in
    if Cover.term_count candidate <= Cover.term_count baseline then candidate
    else baseline
  end

let verify ?dontcare ~original ~minimized () =
  let widen c =
    match dontcare with Some dc -> Cover.union c dc | None -> c
  in
  Cover.covered_by original (widen minimized)
  && Cover.covered_by minimized (widen original)
