lib/logic/expr.mli: Cover Format
