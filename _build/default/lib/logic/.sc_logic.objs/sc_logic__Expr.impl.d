lib/logic/expr.ml: Array Cover Cube Format Hashtbl List
