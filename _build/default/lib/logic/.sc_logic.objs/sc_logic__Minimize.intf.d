lib/logic/minimize.mli: Cover Cube
