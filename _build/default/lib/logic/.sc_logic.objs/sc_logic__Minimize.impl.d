lib/logic/minimize.ml: Array Cover Cube Hashtbl List
