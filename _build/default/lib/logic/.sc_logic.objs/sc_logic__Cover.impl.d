lib/logic/cover.ml: Array Cube Format List Printf String
