lib/logic/cube.ml: Array Buffer Format Int Printf Stdlib String
