(** Composition combinators.

    These combinators are the layout-language core the paper's session
    demonstrates: structured layouts built by placing cells beside, above,
    abutted port-to-port, or replicated into arrays.  Every combinator
    returns a new cell whose ports are the sub-cells' ports, qualified by
    instance name so composed cells remain routable. *)

open Sc_geom

(** [beside ~name ?sep a b] places [b] to the right of [a], lower edges
    aligned, with [sep] lambda of separation (default 0).  Ports are
    re-exported as "i0.<p>" / "i1.<p>"; use [expose] to rename them. *)
val beside : name:string -> ?sep:int -> Cell.t -> Cell.t -> Cell.t

(** [above ~name ?sep a b] stacks [b] on top of [a], left edges aligned. *)
val above : name:string -> ?sep:int -> Cell.t -> Cell.t -> Cell.t

(** [row ~name ?sep cells] chains [beside]. *)
val row : name:string -> ?sep:int -> Cell.t list -> Cell.t

(** [col ~name ?sep cells] chains [above]. *)
val col : name:string -> ?sep:int -> Cell.t list -> Cell.t

(** [array ~name ~nx ~ny ?dx ?dy cell] replicates [cell] into an [nx] by
    [ny] array with pitches [dx], [dy] (defaulting to the cell's width and
    height, i.e. pure abutment — the regular-structure idiom for memories
    and PLAs).  Element ports are exported as "r<j>c<i>.<p>". *)
val array : name:string -> nx:int -> ny:int -> ?dx:int -> ?dy:int -> Cell.t -> Cell.t

(** [abut ~name a pa b pb] translates [b] so that port [pb] of [b]
    coincides with port [pa] of [a] (centre on centre).

    @raise Not_found if a port is missing. *)
val abut : name:string -> Cell.t -> string -> Cell.t -> string -> Cell.t

(** [place ~name placements] builds a cell from explicit placements. *)
val place : name:string -> (Cell.t * Transform.t) list -> Cell.t

(** [expose cell renames] re-exports selected ports under new flat names;
    [renames] maps "inst.port" to the exported name. *)
val expose : Cell.t -> (string * string) list -> Cell.t
