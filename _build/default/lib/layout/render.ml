open Sc_geom
open Sc_tech

(* conventional colours; contacts/buried drawn opaque and last *)
let style = function
  | Layer.Diffusion -> ("#2e8b57", 0.55, 1)
  | Layer.Implant -> ("#e6d800", 0.35, 0)
  | Layer.Poly -> ("#d0312d", 0.55, 2)
  | Layer.Metal -> ("#3a6ea5", 0.45, 3)
  | Layer.Buried -> ("#6b3e26", 0.9, 4)
  | Layer.Contact -> ("#111111", 0.9, 5)
  | Layer.Glass -> ("#aaaaaa", 0.5, 6)

let to_svg ?(scale = 3) cell =
  let flat = Flatten.run cell in
  let bbox = Cell.bbox_or_zero cell in
  let margin = 4 in
  let ox = bbox.Rect.xmin - margin and oy = bbox.Rect.ymax + margin in
  let w = (Rect.width bbox + (2 * margin)) * scale in
  let h = (Rect.height bbox + (2 * margin)) * scale in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"%d\" height=\"%d\" \
        fill=\"#f8f6f0\"/>\n"
       w h w h w h);
  (* y flips: lambda y grows upward, SVG y downward *)
  let boxes =
    List.sort
      (fun (a : Flatten.flat_box) b ->
        let _, _, za = style a.layer and _, _, zb = style b.layer in
        Int.compare za zb)
      flat
  in
  List.iter
    (fun (fb : Flatten.flat_box) ->
      let color, opacity, _ = style fb.layer in
      let r = fb.rect in
      if not (Rect.is_empty r) then
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
              fill=\"%s\" fill-opacity=\"%.2f\"/>\n"
             ((r.Rect.xmin - ox) * scale)
             ((oy - r.Rect.ymax) * scale)
             (Rect.width r * scale) (Rect.height r * scale) color opacity))
    boxes;
  (* port markers *)
  List.iter
    (fun (p : Cell.port) ->
      let c = Rect.center p.Cell.rect in
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"none\" \
            stroke=\"#000\" stroke-width=\"1\"/>\n\
            <text x=\"%d\" y=\"%d\" font-size=\"%d\" \
            font-family=\"monospace\">%s</text>\n"
           ((c.Point.x - ox) * scale)
           ((oy - c.Point.y) * scale)
           (2 * scale)
           (((c.Point.x - ox) * scale) + (2 * scale))
           ((oy - c.Point.y) * scale)
           (3 * scale) p.Cell.pname))
    cell.Cell.ports;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg ?scale path cell =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_svg ?scale cell))
