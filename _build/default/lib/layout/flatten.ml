open Sc_geom
open Sc_tech

type flat_box = { layer : Layer.t; rect : Rect.t }

let element_boxes trans e acc =
  match e with
  | Cell.Box (l, r) -> { layer = l; rect = Transform.apply_rect trans r } :: acc
  | Cell.Wire (l, p) ->
    List.fold_left
      (fun acc r -> { layer = l; rect = r } :: acc)
      acc
      (Path.to_rects (Path.transform trans p))

let run root =
  let rec go trans (c : Cell.t) acc =
    let acc = List.fold_left (fun acc e -> element_boxes trans e acc) acc c.elements in
    List.fold_left
      (fun acc (i : Cell.inst) -> go (Transform.compose trans i.trans) i.cell acc)
      acc c.instances
  in
  go Transform.identity root []

let run_layer root l =
  List.filter_map
    (fun fb -> if Layer.equal fb.layer l then Some fb.rect else None)
    (run root)

let ports root =
  let rec go prefix trans (c : Cell.t) acc =
    let acc =
      List.fold_left
        (fun acc (p : Cell.port) ->
          { p with
            Cell.pname = (if prefix = "" then p.pname else prefix ^ "." ^ p.pname)
          ; rect = Transform.apply_rect trans p.rect
          }
          :: acc)
        acc c.ports
    in
    List.fold_left
      (fun acc (i : Cell.inst) ->
        let prefix' =
          if prefix = "" then i.inst_name else prefix ^ "." ^ i.inst_name
        in
        go prefix' (Transform.compose trans i.trans) i.cell acc)
      acc c.instances
  in
  go "" Transform.identity root []

let layer_areas root =
  let areas = Array.make Layer.count 0 in
  List.iter
    (fun fb ->
      let i = Layer.index fb.layer in
      areas.(i) <- areas.(i) + Rect.area fb.rect)
    (run root);
  areas
