(** Layout statistics.

    The paper's comparisons (compiled vs. manual design, E1/E2) are made in
    terms of area and device count; this module measures both from the
    geometry itself, so the numbers do not depend on how a layout was
    produced. *)

open Sc_tech

type t =
  { cell_name : string
  ; bbox_area : int  (** bounding-box area, square lambda *)
  ; width : int
  ; height : int
  ; layer_area : int array  (** drawn area per layer, by [Layer.index] *)
  ; transistors : int  (** poly-diffusion crossings in the flat layout *)
  ; rects : int  (** flattened rectangle count *)
  ; cells : int  (** distinct cells in the hierarchy *)
  ; instances : int  (** total instantiations, transitively *)
  }

val measure : Cell.t -> t

(** [transistor_count c] counts distinct poly-over-diffusion overlap
    regions in the flattened layout; overlapping poly rectangles over one
    diffusion strip are merged so a gate drawn as two abutting boxes counts
    once. *)
val transistor_count : Cell.t -> int

val layer_area : t -> Layer.t -> int

val pp : Format.formatter -> t -> unit
