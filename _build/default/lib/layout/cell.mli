(** Hierarchical layout cells.

    A cell (a CIF "symbol") owns flat geometry — boxes and wires on mask
    layers — plus transformed instances of other cells and named ports.
    Cells are immutable and form a DAG: instantiating a cell shares its
    definition, which is what makes regular structures (the paper's
    memories and PLAs) cheap to describe.

    The bounding box is computed eagerly at construction, so deep
    hierarchies pay no repeated traversal cost. *)

open Sc_geom
open Sc_tech

type element =
  | Box of Layer.t * Rect.t
  | Wire of Layer.t * Path.t

(** A port is a named, layered rectangle on the cell boundary (or interior)
    through which composition and routing connect to the cell. *)
type port = { pname : string; layer : Layer.t; rect : Rect.t }

type t = private
  { name : string
  ; elements : element list
  ; instances : inst list
  ; ports : port list
  ; bbox : Rect.t option  (** [None] for a completely empty cell *)
  ; id : int  (** unique per constructed cell; identity for traversals *)
  }

and inst = { inst_name : string; cell : t; trans : Transform.t }

(** [make ~name ?ports ?instances elements] builds a cell.  Port names and
    instance names must be unique within the cell.

    @raise Invalid_argument on duplicate port or instance names. *)
val make :
  name:string -> ?ports:port list -> ?instances:inst list -> element list -> t

val empty : string -> t

(** Convenience constructors. *)

val box : Layer.t -> Rect.t -> element

val wire : Layer.t -> width:int -> Point.t list -> element

val port : string -> Layer.t -> Rect.t -> port

val instantiate : ?name:string -> ?trans:Transform.t -> t -> inst

(** [add c es] returns a copy of [c] with extra elements. *)
val add : t -> element list -> t

val add_instances : t -> inst list -> t

val add_ports : t -> port list -> t

val rename : string -> t -> t

(** [find_port c name] looks the port up.
    @raise Not_found when absent. *)
val find_port : t -> string -> port

val find_port_opt : t -> string -> port option

(** [port_in_parent inst p] is [p]'s rectangle seen through the instance
    transform. *)
val port_in_parent : inst -> port -> port

(** Bounding box including all instances; [None] when empty. *)
val bbox : t -> Rect.t option

(** Bounding box or a zero rect at the origin. *)
val bbox_or_zero : t -> Rect.t

val width : t -> int

val height : t -> int

(** Area of the bounding box in square lambda. *)
val area : t -> int

(** [translate_to_origin c] shifts all content so the bbox lower-left
    corner lands on the origin. *)
val translate_to_origin : t -> t

(** All cells reachable from [c] (including [c]), each exactly once,
    children before parents (a reverse topological order suitable for CIF
    symbol definitions). *)
val all_cells : t -> t list

(** Number of element rectangles in the fully expanded (flattened) cell. *)
val flat_rect_count : t -> int

val element_bbox : element -> Rect.t option

val pp : Format.formatter -> t -> unit
