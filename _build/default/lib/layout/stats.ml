open Sc_geom
open Sc_tech

type t =
  { cell_name : string
  ; bbox_area : int
  ; width : int
  ; height : int
  ; layer_area : int array
  ; transistors : int
  ; rects : int
  ; cells : int
  ; instances : int
  }

(* Gate regions = connected groups of poly/diffusion intersection
   rectangles.  A sweep over x-sorted rectangles keeps the pair scan close
   to linear for real layouts; the union-find merges intersections that
   touch, so a gate drawn in several boxes is counted once. *)
let overlap_regions polys diffs =
  let inters = ref [] in
  let diffs = List.sort (fun a b -> Int.compare a.Rect.xmin b.Rect.xmin) diffs in
  List.iter
    (fun p ->
      List.iter
        (fun d ->
          if d.Rect.xmin < p.Rect.xmax && p.Rect.xmin < d.Rect.xmax then
            match Rect.inter p d with
            | Some r when not (Rect.is_empty r) -> inters := r :: !inters
            | _ -> ())
        diffs)
    polys;
  let rects = Array.of_list !inters in
  let n = Array.length rects in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rect.touches_or_overlaps rects.(i) rects.(j) then union i j
    done
  done;
  let roots = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    Hashtbl.replace roots (find i) ()
  done;
  Hashtbl.length roots

let transistor_count c =
  let flat = Flatten.run c in
  let layer l =
    List.filter_map
      (fun (fb : Flatten.flat_box) ->
        if Layer.equal fb.layer l then Some fb.rect else None)
      flat
  in
  overlap_regions (layer Layer.Poly) (layer Layer.Diffusion)

let count_instances root =
  let memo = Hashtbl.create 64 in
  let rec go (c : Cell.t) =
    match Hashtbl.find_opt memo c.id with
    | Some n -> n
    | None ->
      let n =
        List.fold_left
          (fun acc (i : Cell.inst) -> acc + 1 + go i.cell)
          0 c.instances
      in
      Hashtbl.add memo c.id n;
      n
  in
  go root

let measure c =
  { cell_name = c.Cell.name
  ; bbox_area = Cell.area c
  ; width = Cell.width c
  ; height = Cell.height c
  ; layer_area = Flatten.layer_areas c
  ; transistors = transistor_count c
  ; rects = Cell.flat_rect_count c
  ; cells = List.length (Cell.all_cells c)
  ; instances = count_instances c
  }

let layer_area t l = t.layer_area.(Layer.index l)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cell %s: %dx%d lambda (area %d)@ transistors %d, rects %d, cells %d, insts %d@]"
    t.cell_name t.width t.height t.bbox_area t.transistors t.rects t.cells
    t.instances
