open Sc_geom
open Sc_tech

type element =
  | Box of Layer.t * Rect.t
  | Wire of Layer.t * Path.t

type port = { pname : string; layer : Layer.t; rect : Rect.t }

type t =
  { name : string
  ; elements : element list
  ; instances : inst list
  ; ports : port list
  ; bbox : Rect.t option
  ; id : int
  }

and inst = { inst_name : string; cell : t; trans : Transform.t }

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let element_bbox = function
  | Box (_, r) -> Some r
  | Wire (_, p) -> Path.bbox p

let union_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some r1, Some r2 -> Some (Rect.union_bbox r1 r2)

let inst_bbox i =
  match i.cell.bbox with
  | None -> None
  | Some r -> Some (Transform.apply_rect i.trans r)

let compute_bbox elements instances =
  let eb =
    List.fold_left (fun acc e -> union_opt acc (element_bbox e)) None elements
  in
  List.fold_left (fun acc i -> union_opt acc (inst_bbox i)) eb instances

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then
        invalid_arg (Printf.sprintf "Cell.make: duplicate %s %S" what n);
      Hashtbl.add tbl n ())
    names

let make ~name ?(ports = []) ?(instances = []) elements =
  check_unique "port" (List.map (fun p -> p.pname) ports);
  check_unique "instance" (List.map (fun i -> i.inst_name) instances);
  { name
  ; elements
  ; instances
  ; ports
  ; bbox = compute_bbox elements instances
  ; id = next_id ()
  }

let empty name = make ~name []

let box l r = Box (l, r)
let wire l ~width pts = Wire (l, Path.make ~width pts)
let port pname layer rect = { pname; layer; rect }

let inst_counter = ref 0

let instantiate ?name ?(trans = Transform.identity) cell =
  let inst_name =
    match name with
    | Some n -> n
    | None ->
      incr inst_counter;
      Printf.sprintf "%s_%d" cell.name !inst_counter
  in
  { inst_name; cell; trans }

let add c es =
  make ~name:c.name ~ports:c.ports ~instances:c.instances (c.elements @ es)

let add_instances c is =
  make ~name:c.name ~ports:c.ports ~instances:(c.instances @ is) c.elements

let add_ports c ps =
  make ~name:c.name ~ports:(c.ports @ ps) ~instances:c.instances c.elements

let rename name c = { c with name }

let find_port_opt c n = List.find_opt (fun p -> String.equal p.pname n) c.ports

let find_port c n =
  match find_port_opt c n with
  | Some p -> p
  | None -> raise Not_found

let port_in_parent i p = { p with rect = Transform.apply_rect i.trans p.rect }

let bbox c = c.bbox

let bbox_or_zero c =
  match c.bbox with Some r -> r | None -> Rect.make 0 0 0 0

let width c = Rect.width (bbox_or_zero c)
let height c = Rect.height (bbox_or_zero c)
let area c = Rect.area (bbox_or_zero c)

let translate_elements d es =
  let move = function
    | Box (l, r) -> Box (l, Rect.translate d r)
    | Wire (l, p) -> Wire (l, Path.translate d p)
  in
  List.map move es

let translate_to_origin c =
  match c.bbox with
  | None -> c
  | Some r ->
    let lo, _ = Rect.corners r in
    let d = Point.neg lo in
    if Point.equal d Point.origin then c
    else
      make ~name:c.name
        ~ports:(List.map (fun p -> { p with rect = Rect.translate d p.rect }) c.ports)
        ~instances:
          (List.map
             (fun i ->
               { i with trans = Transform.compose (Transform.make d) i.trans })
             c.instances)
        (translate_elements d c.elements)

let all_cells root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit c =
    if not (Hashtbl.mem seen c.id) then begin
      Hashtbl.add seen c.id ();
      List.iter (fun i -> visit i.cell) c.instances;
      acc := c :: !acc
    end
  in
  visit root;
  List.rev !acc

let flat_rect_count root =
  let memo = Hashtbl.create 64 in
  let rec count c =
    match Hashtbl.find_opt memo c.id with
    | Some n -> n
    | None ->
      let own =
        List.fold_left
          (fun acc e ->
            match e with
            | Box _ -> acc + 1
            | Wire (_, p) -> acc + max 1 (List.length p.Path.points - 1))
          0 c.elements
      in
      let n =
        List.fold_left (fun acc i -> acc + count i.cell) own c.instances
      in
      Hashtbl.add memo c.id n;
      n
  in
  count root

let pp ppf c =
  Format.fprintf ppf "cell %s: %d elems, %d insts, %d ports, bbox %a" c.name
    (List.length c.elements) (List.length c.instances) (List.length c.ports)
    (Format.pp_print_option Rect.pp)
    c.bbox
