open Sc_geom

(* All combinators funnel through [of_instances]: build the instance list,
   then export each sub-port under "instname.portname". *)
let of_instances ~name insts =
  let ports =
    List.concat_map
      (fun (i : Cell.inst) ->
        List.map
          (fun (p : Cell.port) ->
            let q = Cell.port_in_parent i p in
            { q with Cell.pname = i.inst_name ^ "." ^ p.pname })
          i.cell.ports)
      insts
  in
  Cell.make ~name ~ports ~instances:insts []

let lower_left c =
  let lo, _ = Rect.corners (Cell.bbox_or_zero c) in
  lo

let beside ~name ?(sep = 0) a b =
  let la = lower_left a and lb = lower_left b in
  let shift =
    Point.make (la.Point.x + Cell.width a + sep - lb.Point.x) (la.Point.y - lb.Point.y)
  in
  of_instances ~name
    [ Cell.instantiate ~name:"i0" a
    ; Cell.instantiate ~name:"i1" ~trans:(Transform.make shift) b
    ]

let above ~name ?(sep = 0) a b =
  let la = lower_left a and lb = lower_left b in
  let shift =
    Point.make (la.Point.x - lb.Point.x) (la.Point.y + Cell.height a + sep - lb.Point.y)
  in
  of_instances ~name
    [ Cell.instantiate ~name:"i0" a
    ; Cell.instantiate ~name:"i1" ~trans:(Transform.make shift) b
    ]

let chain ~name ~step cells =
  match cells with
  | [] -> Cell.empty name
  | first :: _ ->
    let origin = lower_left first in
    let insts, _ =
      List.fold_left
        (fun (insts, offset) c ->
          let lc = lower_left c in
          let shift = Point.sub offset lc in
          let i =
            Cell.instantiate
              ~name:(Printf.sprintf "i%d" (List.length insts))
              ~trans:(Transform.make shift) c
          in
          (i :: insts, step offset c))
        ([], origin) cells
    in
    of_instances ~name (List.rev insts)

let row ~name ?(sep = 0) cells =
  chain ~name
    ~step:(fun off c -> Point.add off (Point.make (Cell.width c + sep) 0))
    cells

let col ~name ?(sep = 0) cells =
  chain ~name
    ~step:(fun off c -> Point.add off (Point.make 0 (Cell.height c + sep)))
    cells

let array ~name ~nx ~ny ?dx ?dy cell =
  if nx <= 0 || ny <= 0 then invalid_arg "Compose.array: nx and ny must be positive";
  let dx = match dx with Some d -> d | None -> Cell.width cell in
  let dy = match dy with Some d -> d | None -> Cell.height cell in
  let insts = ref [] in
  for j = ny - 1 downto 0 do
    for i = nx - 1 downto 0 do
      let t = Transform.translation (i * dx) (j * dy) in
      insts :=
        Cell.instantiate ~name:(Printf.sprintf "r%dc%d" j i) ~trans:t cell
        :: !insts
    done
  done;
  of_instances ~name !insts

let abut ~name a pa b pb =
  let port_a = Cell.find_port a pa in
  let port_b = Cell.find_port b pb in
  let ca = Rect.center port_a.Cell.rect in
  let cb = Rect.center port_b.Cell.rect in
  let shift = Point.sub ca cb in
  of_instances ~name
    [ Cell.instantiate ~name:"i0" a
    ; Cell.instantiate ~name:"i1" ~trans:(Transform.make shift) b
    ]

let place ~name placements =
  of_instances ~name
    (List.mapi
       (fun k (c, t) -> Cell.instantiate ~name:(Printf.sprintf "p%d" k) ~trans:t c)
       placements)

let expose cell renames =
  let all = Flatten.ports cell in
  let extra =
    List.map
      (fun (qualified, fresh) ->
        match
          List.find_opt (fun (p : Cell.port) -> String.equal p.pname qualified) all
        with
        | Some p -> { p with Cell.pname = fresh }
        | None ->
          invalid_arg (Printf.sprintf "Compose.expose: no port %S" qualified))
      renames
  in
  Cell.add_ports cell extra
