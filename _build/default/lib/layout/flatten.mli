(** Flattening a cell hierarchy to mask geometry.

    Flattening expands every instance transitively and returns plain
    layer/rectangle pairs in the root coordinate system — the form needed
    by design-rule checking and by area/transistor statistics.  Wires are
    converted to their covering rectangles. *)

open Sc_geom
open Sc_tech

type flat_box = { layer : Layer.t; rect : Rect.t }

(** [run c] flattens the whole hierarchy under [c]. *)
val run : Cell.t -> flat_box list

(** [run_layer c l] keeps only layer [l]. *)
val run_layer : Cell.t -> Layer.t -> Rect.t list

(** [ports c] returns every port of every instance, transitively, in root
    coordinates, with instance-path-qualified names ("a.b.port"). *)
val ports : Cell.t -> Cell.port list

(** Total rectangle area per layer (double-counting overlaps), indexed by
    [Layer.index]. *)
val layer_areas : Cell.t -> int array
