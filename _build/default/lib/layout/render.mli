(** Rendering layouts for human inspection.

    Mask artwork in the conventional Mead–Conway colours, as SVG: one
    translucent rectangle per flattened box, layers stacked in a fixed
    order (diffusion under poly under metal), contacts solid.  The
    output opens in any browser — the closest thing this repository has
    to the colour pen plots of 1979. *)

(** [to_svg ?scale cell] — [scale] is pixels per lambda (default 3). *)
val to_svg : ?scale:int -> Cell.t -> string

(** [write_svg path cell] writes the rendering to a file. *)
val write_svg : ?scale:int -> string -> Cell.t -> unit
