lib/layout/flatten.mli: Cell Layer Rect Sc_geom Sc_tech
