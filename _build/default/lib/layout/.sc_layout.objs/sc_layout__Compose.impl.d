lib/layout/compose.ml: Cell Flatten List Point Printf Rect Sc_geom String Transform
