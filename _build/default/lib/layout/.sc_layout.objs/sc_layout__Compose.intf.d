lib/layout/compose.mli: Cell Sc_geom Transform
