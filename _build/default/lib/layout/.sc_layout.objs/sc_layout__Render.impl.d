lib/layout/render.ml: Buffer Cell Flatten Fun Int Layer List Point Printf Rect Sc_geom Sc_tech
