lib/layout/cell.mli: Format Layer Path Point Rect Sc_geom Sc_tech Transform
