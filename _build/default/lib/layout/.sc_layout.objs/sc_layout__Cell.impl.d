lib/layout/cell.ml: Format Hashtbl Layer List Path Point Printf Rect Sc_geom Sc_tech String Transform
