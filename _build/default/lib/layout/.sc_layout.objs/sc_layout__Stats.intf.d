lib/layout/stats.mli: Cell Format Layer Sc_tech
