lib/layout/render.mli: Cell
