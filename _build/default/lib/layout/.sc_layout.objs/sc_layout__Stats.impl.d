lib/layout/stats.ml: Array Cell Flatten Format Hashtbl Int Layer List Rect Sc_geom Sc_tech
