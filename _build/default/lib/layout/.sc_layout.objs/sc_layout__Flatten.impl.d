lib/layout/flatten.ml: Array Cell Layer List Path Rect Sc_geom Sc_tech Transform
