lib/sim/engine.ml: Array Buffer Circuit Gate Hashtbl List Queue Sc_netlist String Value
