lib/sim/engine.mli: Circuit Sc_netlist Value
