lib/sim/value.mli: Format Sc_netlist
