lib/sim/value.ml: Array Format Gate Sc_netlist
