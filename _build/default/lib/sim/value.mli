(** Three-valued logic for simulation: 0, 1 and unknown.

    The X value gives honest answers about uninitialized state: a
    flip-flop that was never loaded reads X, and X is contagious except
    through controlling inputs (0 AND X = 0, 1 OR X = 1). *)

type t = V0 | V1 | VX

val of_bool : bool -> t

val to_bool : t -> bool option

val is_known : t -> bool

val inv : t -> t

val and_ : t -> t -> t

val or_ : t -> t -> t

val xor : t -> t -> t

(** [mux a0 a1 sel]: X select resolves only when both ways agree. *)
val mux : t -> t -> t -> t

(** [eval_gate kind ins] — the 3-valued semantics of a combinational gate.
    @raise Invalid_argument on sequential kinds. *)
val eval_gate : Sc_netlist.Gate.kind -> t array -> t

val equal : t -> t -> bool

val to_char : t -> char

val pp : Format.formatter -> t -> unit
