open Sc_netlist

type t = V0 | V1 | VX

let of_bool b = if b then V1 else V0
let to_bool = function V0 -> Some false | V1 -> Some true | VX -> None
let is_known v = v <> VX

let inv = function V0 -> V1 | V1 -> V0 | VX -> VX

let and_ a b =
  match (a, b) with
  | V0, _ | _, V0 -> V0
  | V1, V1 -> V1
  | _ -> VX

let or_ a b =
  match (a, b) with
  | V1, _ | _, V1 -> V1
  | V0, V0 -> V0
  | _ -> VX

let xor a b =
  match (a, b) with
  | VX, _ | _, VX -> VX
  | _ -> if a = b then V0 else V1

let mux a0 a1 sel =
  match sel with
  | V0 -> a0
  | V1 -> a1
  | VX -> if a0 = a1 && a0 <> VX then a0 else VX

let eval_gate kind ins =
  match (kind : Gate.kind) with
  | Gate.Inv -> inv ins.(0)
  | Gate.Buf -> ins.(0)
  | Gate.Nand2 -> inv (and_ ins.(0) ins.(1))
  | Gate.Nand3 -> inv (and_ ins.(0) (and_ ins.(1) ins.(2)))
  | Gate.Nor2 -> inv (or_ ins.(0) ins.(1))
  | Gate.Nor3 -> inv (or_ ins.(0) (or_ ins.(1) ins.(2)))
  | Gate.And2 -> and_ ins.(0) ins.(1)
  | Gate.Or2 -> or_ ins.(0) ins.(1)
  | Gate.Xor2 -> xor ins.(0) ins.(1)
  | Gate.Xnor2 -> inv (xor ins.(0) ins.(1))
  | Gate.Mux2 -> mux ins.(0) ins.(1) ins.(2)
  | Gate.Const0 -> V0
  | Gate.Const1 -> V1
  | Gate.Dff | Gate.Dffe -> invalid_arg "Value.eval_gate: sequential gate"

let equal (a : t) b = a = b
let to_char = function V0 -> '0' | V1 -> '1' | VX -> 'x'
let pp ppf v = Format.pp_print_char ppf (to_char v)
