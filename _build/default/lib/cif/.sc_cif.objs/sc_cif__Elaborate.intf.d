lib/cif/elaborate.mli: Ast Sc_layout
