lib/cif/emit.ml: Ast Cell Format Fun Hashtbl Layer List Path Point Printf Rect Rules Sc_geom Sc_layout Sc_tech String Transform
