lib/cif/ast.ml: Format Hashtbl List
