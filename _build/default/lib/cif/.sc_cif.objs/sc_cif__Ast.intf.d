lib/cif/ast.mli: Format
