lib/cif/parse.mli: Ast
