lib/cif/emit.mli: Ast Sc_layout
