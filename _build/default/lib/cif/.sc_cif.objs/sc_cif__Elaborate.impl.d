lib/cif/elaborate.ml: Ast Cell Emit Flatten Hashtbl Layer List Parse Path Point Printf Rect Rules Sc_geom Sc_layout Sc_tech String Transform
