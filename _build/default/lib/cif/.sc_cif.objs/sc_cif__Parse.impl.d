lib/cif/parse.ml: Ast Char Format Fun List String
