(** Parsing CIF 2.0 text into the AST.

    The parser accepts the command subset of {!Ast}: DS/DF/DD, L, B (with
    optional axis-parallel direction), P, W, C with T/M/R transformations,
    comments, user extensions and E.  CIF's liberal separator rule is
    honoured: any run of characters that is not a digit, an upper-case
    command letter, '-', '(' or ';' separates tokens. *)

val parse : string -> (Ast.file, string) result

(** [parse_file path] reads and parses a CIF file from disk. *)
val parse_file : string -> (Ast.file, string) result
