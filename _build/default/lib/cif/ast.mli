(** Abstract syntax of the Caltech Intermediate Form, version 2.0.

    CIF is the layout interchange format of Sproull & Lyon (1979), the
    paper's reference [8] and its concrete notion of "manufacturing data".
    A CIF file is a sequence of commands; geometry appears inside symbol
    definitions, and an optional top level calls the root symbol. *)

type trans_op =
  | Translate of int * int
  | Mirror_x  (** negate x *)
  | Mirror_y  (** negate y *)
  | Rotate of int * int  (** direction vector the +x axis is rotated to *)

type command =
  | Def_start of int * int * int  (** symbol number, scale numerator a, denominator b *)
  | Def_finish
  | Def_delete of int
  | Layer of string
  | Box of { length : int; width : int; cx : int; cy : int }
  | Polygon of (int * int) list
  | Wire of { width : int; points : (int * int) list }
  | Call of int * trans_op list
  | Comment of string
  | User of int * string  (** user extension: leading digit and raw text *)
  | End

type file = command list

(** Well-formedness: definitions properly bracketed, no nested DS, no
    geometry outside a definition except calls after all definitions, file
    terminated by [End].  Returns the list of violations (empty = ok). *)
val check : file -> string list

val pp_command : Format.formatter -> command -> unit

val pp : Format.formatter -> file -> unit
