type trans_op =
  | Translate of int * int
  | Mirror_x
  | Mirror_y
  | Rotate of int * int

type command =
  | Def_start of int * int * int
  | Def_finish
  | Def_delete of int
  | Layer of string
  | Box of { length : int; width : int; cx : int; cy : int }
  | Polygon of (int * int) list
  | Wire of { width : int; points : (int * int) list }
  | Call of int * trans_op list
  | Comment of string
  | User of int * string
  | End

type file = command list

let check file =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let in_def = ref None in
  let ended = ref false in
  let defined = Hashtbl.create 16 in
  List.iter
    (fun cmd ->
      if !ended then err "command after E";
      match cmd with
      | Def_start (n, _, b) ->
        if b = 0 then err "DS %d: zero scale denominator" n;
        (match !in_def with
        | Some m -> err "DS %d nested inside DS %d" n m
        | None -> in_def := Some n);
        if Hashtbl.mem defined n then err "symbol %d defined twice" n;
        Hashtbl.replace defined n ()
      | Def_finish -> (
        match !in_def with
        | Some _ -> in_def := None
        | None -> err "DF without matching DS")
      | Def_delete _ -> ()
      | Layer _ | Box _ | Polygon _ | Wire _ ->
        if !in_def = None then err "geometry outside a symbol definition"
      | Call (n, _) ->
        if (not (Hashtbl.mem defined n)) && !in_def = None then
          err "call of undefined symbol %d" n
      | Comment _ | User _ -> ()
      | End ->
        if !in_def <> None then err "E inside a symbol definition";
        ended := true)
    file;
  if not !ended then err "missing E command";
  (match !in_def with Some n -> err "unterminated DS %d" n | None -> ());
  List.rev !errs

let pp_trans ppf = function
  | Translate (x, y) -> Format.fprintf ppf "T %d %d" x y
  | Mirror_x -> Format.fprintf ppf "M X"
  | Mirror_y -> Format.fprintf ppf "M Y"
  | Rotate (a, b) -> Format.fprintf ppf "R %d %d" a b

let pp_points ppf pts =
  List.iter (fun (x, y) -> Format.fprintf ppf " %d %d" x y) pts

let pp_command ppf = function
  | Def_start (n, a, b) -> Format.fprintf ppf "DS %d %d %d;" n a b
  | Def_finish -> Format.fprintf ppf "DF;"
  | Def_delete n -> Format.fprintf ppf "DD %d;" n
  | Layer l -> Format.fprintf ppf "L %s;" l
  | Box b -> Format.fprintf ppf "B %d %d %d %d;" b.length b.width b.cx b.cy
  | Polygon pts -> Format.fprintf ppf "P%a;" pp_points pts
  | Wire w -> Format.fprintf ppf "W %d%a;" w.width pp_points w.points
  | Call (n, ops) ->
    Format.fprintf ppf "C %d" n;
    List.iter (fun op -> Format.fprintf ppf " %a" pp_trans op) ops;
    Format.fprintf ppf ";"
  | Comment s -> Format.fprintf ppf "(%s);" s
  | User (d, s) ->
    if s = "" then Format.fprintf ppf "%d;" d else Format.fprintf ppf "%d %s;" d s
  | End -> Format.fprintf ppf "E"

let pp ppf file =
  List.iter (fun c -> Format.fprintf ppf "%a@\n" pp_command c) file
