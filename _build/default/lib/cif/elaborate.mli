(** Elaborating parsed CIF back into a layout hierarchy.

    The elaborator rebuilds {!Sc_layout.Cell.t} values from a CIF file:
    symbol definitions become cells, calls become instances, boxes and
    wires become elements, and the "9"/"94" user extensions restore cell
    names and ports.  All coordinates are converted to the lambda grid
    using each symbol's DS scale and {!Sc_tech.Rules.centimicrons_per_lambda};
    geometry that does not land on the lambda grid is an error, as are
    unknown layers, non-rectangular polygons and non-Manhattan transforms. *)

type error =
  | Syntax of string
  | Off_grid of string  (** coordinate not on the lambda grid *)
  | Unknown_layer of string
  | Undefined_symbol of int
  | Unsupported of string
  | Structure of string  (** ill-formed DS/DF bracketing etc. *)

val error_to_string : error -> string

(** [cell_of_file file] rebuilds the root cell: the target of the last
    top-level call, or the last symbol defined when there is none. *)
val cell_of_file : Ast.file -> (Sc_layout.Cell.t, error) result

val of_string : string -> (Sc_layout.Cell.t, error) result

(** Emission followed by elaboration is the identity on flattened
    geometry; this helper runs the roundtrip and reports whether the flat
    boxes match exactly. *)
val roundtrip_ok : Sc_layout.Cell.t -> bool
