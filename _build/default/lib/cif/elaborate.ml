open Sc_geom
open Sc_tech
open Sc_layout

type error =
  | Syntax of string
  | Off_grid of string
  | Unknown_layer of string
  | Undefined_symbol of int
  | Unsupported of string
  | Structure of string

let error_to_string = function
  | Syntax s -> "syntax: " ^ s
  | Off_grid s -> "off-grid: " ^ s
  | Unknown_layer s -> "unknown layer: " ^ s
  | Undefined_symbol n -> Printf.sprintf "undefined symbol %d" n
  | Unsupported s -> "unsupported: " ^ s
  | Structure s -> "structure: " ^ s

exception Err of error

let fail e = raise (Err e)

(* Convert a doubled symbol-unit coordinate to lambda.  A value [v] in
   symbol units scaled by a/b lands at v*a/b centimicrons; doubled
   coordinates carry an extra factor of two. *)
let to_lambda ~a ~b ~doubled v =
  let num = v * a in
  let den = b * Rules.centimicrons_per_lambda * if doubled then 2 else 1 in
  if num mod den <> 0 then
    fail (Off_grid (Printf.sprintf "%d * %d / %d" v a den))
  else num / den

let layer_of_name name =
  match Layer.of_cif_name name with
  | Some l -> l
  | None -> fail (Unknown_layer name)

(* A box arrives as doubled corners so odd sizes stay on grid. *)
let rect_of_box ~a ~b (box : int * int * int * int) =
  let length, width, cx, cy = box in
  let x0 = to_lambda ~a ~b ~doubled:true ((2 * cx) - length) in
  let x1 = to_lambda ~a ~b ~doubled:true ((2 * cx) + length) in
  let y0 = to_lambda ~a ~b ~doubled:true ((2 * cy) - width) in
  let y1 = to_lambda ~a ~b ~doubled:true ((2 * cy) + width) in
  Rect.make x0 y0 x1 y1

let rect_of_polygon ~a ~b pts =
  match pts with
  | [ (x0, y0); (x1, y1); (x2, y2); (x3, y3) ]
    when (x0 = x1 && y1 = y2 && x2 = x3 && y3 = y0)
         || (y0 = y1 && x1 = x2 && y2 = y3 && x3 = x0) ->
    let c v = to_lambda ~a ~b ~doubled:false v in
    Rect.make (c (min (min x0 x1) (min x2 x3))) (c (min (min y0 y1) (min y2 y3)))
      (c (max (max x0 x1) (max x2 x3)))
      (c (max (max y0 y1) (max y2 y3)))
  | _ -> fail (Unsupported "non-rectangular polygon")

let transform_of_ops ~a ~b ops =
  List.fold_left
    (fun acc op ->
      let t =
        match op with
        | Ast.Translate (x, y) ->
          Transform.translation
            (to_lambda ~a ~b ~doubled:false x)
            (to_lambda ~a ~b ~doubled:false y)
        | Ast.Mirror_x -> Transform.make ~orient:Transform.MY Point.origin
        | Ast.Mirror_y -> Transform.make ~orient:Transform.MX Point.origin
        | Ast.Rotate (1, 0) -> Transform.identity
        | Ast.Rotate (0, 1) -> Transform.make ~orient:Transform.R90 Point.origin
        | Ast.Rotate (-1, 0) -> Transform.make ~orient:Transform.R180 Point.origin
        | Ast.Rotate (0, -1) -> Transform.make ~orient:Transform.R270 Point.origin
        | Ast.Rotate (x, y) ->
          fail (Unsupported (Printf.sprintf "non-Manhattan rotation %d %d" x y))
      in
      Transform.compose t acc)
    Transform.identity ops

type builder =
  { number : int
  ; scale_a : int
  ; scale_b : int
  ; mutable name : string option
  ; mutable elements : Cell.element list
  ; mutable ports : Cell.port list
  ; mutable instances : Cell.inst list
  ; mutable layer : Layer.t
  }

let parse_port_extension text =
  match String.split_on_char ' ' (String.trim text) with
  | [ name; sx; sy; layer ] -> (
    match (int_of_string_opt sx, int_of_string_opt sy) with
    | Some x, Some y -> Some (name, x, y, layer)
    | _ -> None)
  | _ -> None

let cell_of_file file =
  let table : (int, Cell.t) Hashtbl.t = Hashtbl.create 32 in
  let current = ref None in
  let last_defined = ref None in
  let top_call = ref None in
  let finish (b : builder) =
    let name =
      match b.name with Some n -> n | None -> Printf.sprintf "sym%d" b.number
    in
    let cell =
      Cell.make ~name ~ports:(List.rev b.ports) ~instances:(List.rev b.instances)
        (List.rev b.elements)
    in
    Hashtbl.replace table b.number cell;
    last_defined := Some cell
  in
  let lookup n =
    match Hashtbl.find_opt table n with
    | Some c -> c
    | None -> fail (Undefined_symbol n)
  in
  let handle cmd =
    match (cmd, !current) with
    | Ast.Def_start (n, a, b), None ->
      if b = 0 then fail (Structure "zero scale denominator");
      current :=
        Some
          { number = n
          ; scale_a = a
          ; scale_b = b
          ; name = None
          ; elements = []
          ; ports = []
          ; instances = []
          ; layer = Layer.Diffusion
          }
    | Ast.Def_start (n, _, _), Some _ ->
      fail (Structure (Printf.sprintf "nested DS %d" n))
    | Ast.Def_finish, Some b ->
      finish b;
      current := None
    | Ast.Def_finish, None -> fail (Structure "DF without DS")
    | Ast.Def_delete n, _ -> Hashtbl.remove table n
    | Ast.Layer l, Some b -> b.layer <- layer_of_name l
    | Ast.Layer _, None -> fail (Structure "L outside definition")
    | Ast.Box { length; width; cx; cy }, Some b ->
      let r = rect_of_box ~a:b.scale_a ~b:b.scale_b (length, width, cx, cy) in
      b.elements <- Cell.Box (b.layer, r) :: b.elements
    | Ast.Box _, None -> fail (Structure "B outside definition")
    | Ast.Polygon pts, Some b ->
      let r = rect_of_polygon ~a:b.scale_a ~b:b.scale_b pts in
      b.elements <- Cell.Box (b.layer, r) :: b.elements
    | Ast.Polygon _, None -> fail (Structure "P outside definition")
    | Ast.Wire { width; points }, Some b ->
      let w = to_lambda ~a:b.scale_a ~b:b.scale_b ~doubled:false width in
      let pts =
        List.map
          (fun (x, y) ->
            Point.make
              (to_lambda ~a:b.scale_a ~b:b.scale_b ~doubled:false x)
              (to_lambda ~a:b.scale_a ~b:b.scale_b ~doubled:false y))
          points
      in
      b.elements <- Cell.Wire (b.layer, Path.make ~width:w pts) :: b.elements
    | Ast.Wire _, None -> fail (Structure "W outside definition")
    | Ast.Call (n, ops), Some b ->
      let t = transform_of_ops ~a:b.scale_a ~b:b.scale_b ops in
      b.instances <- Cell.instantiate ~trans:t (lookup n) :: b.instances
    | Ast.Call (n, ops), None ->
      (* Top-level call: coordinates are raw centimicrons. *)
      let t = transform_of_ops ~a:1 ~b:1 ops in
      top_call := Some (lookup n, t)
    | Ast.User (9, text), Some b
      when not (String.length text >= 2 && String.sub text 0 2 = "4 ") ->
      b.name <- Some (String.trim text)
    | Ast.User (9, text), Some b -> (
      let text = String.sub text 2 (String.length text - 2) in
      match parse_port_extension text with
      | Some (name, sx, sy, layer) ->
        (* The port centre may sit on the half-lambda grid; rebuild a rect
           of width 0 or 1 whose doubled centre matches exactly. *)
        let dx = to_lambda ~a:(2 * b.scale_a) ~b:b.scale_b ~doubled:false sx in
        let dy = to_lambda ~a:(2 * b.scale_a) ~b:b.scale_b ~doubled:false sy in
        let lo v = if v >= 0 then v / 2 else (v - 1) / 2 in
        let px0 = lo dx and py0 = lo dy in
        b.ports <-
          { Cell.pname = name
          ; layer = layer_of_name layer
          ; rect = Rect.make px0 py0 (dx - px0) (dy - py0)
          }
          :: b.ports
      | None -> fail (Syntax ("bad 94 extension: " ^ text)))
    | Ast.User _, _ -> ()
    | Ast.Comment _, _ -> ()
    | Ast.End, Some _ -> fail (Structure "E inside definition")
    | Ast.End, None -> ()
  in
  match List.iter handle file with
  | () -> (
    match (!top_call, !last_defined) with
    | Some (cell, t), _ when Transform.equal t Transform.identity -> Ok cell
    | Some (cell, t), _ ->
      Ok (Cell.make ~name:(cell.Cell.name ^ "_top") ~instances:[ Cell.instantiate ~trans:t cell ] [])
    | None, Some cell -> Ok cell
    | None, None -> Error (Structure "no symbol defined")
  )
  | exception Err e -> Error e

let of_string text =
  match Parse.parse text with
  | Ok file -> cell_of_file file
  | Error msg -> Error (Syntax msg)

let flat_signature cell =
  List.sort compare
    (List.map
       (fun (fb : Flatten.flat_box) ->
         ( Layer.index fb.layer
         , fb.rect.Rect.xmin
         , fb.rect.Rect.ymin
         , fb.rect.Rect.xmax
         , fb.rect.Rect.ymax ))
       (Flatten.run cell))

let roundtrip_ok cell =
  match of_string (Emit.to_string cell) with
  | Ok cell' -> flat_signature cell = flat_signature cell'
  | Error _ -> false
