exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* A tiny cursor over the input string.  CIF separators are generous: any
   character that cannot start a token separates tokens, so the scanner
   mostly skips until it sees something meaningful. *)
type cursor = { text : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'

(* Comments nest and may appear between any two tokens. *)
let rec skip_comment cur depth =
  match peek cur with
  | None -> fail "unterminated comment"
  | Some '(' ->
    advance cur;
    skip_comment cur (depth + 1)
  | Some ')' ->
    advance cur;
    if depth > 1 then skip_comment cur (depth - 1)
  | Some _ ->
    advance cur;
    skip_comment cur depth

let rec skip_separators cur =
  match peek cur with
  | Some c when (not (is_digit c)) && (not (is_upper c)) && c <> '-' && c <> '(' && c <> ';' ->
    advance cur;
    skip_separators cur
  | Some '(' ->
    advance cur;
    skip_comment cur 1;
    skip_separators cur
  | _ -> ()

let read_int cur =
  skip_separators cur;
  let neg =
    match peek cur with
    | Some '-' ->
      advance cur;
      true
    | _ -> false
  in
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some c when is_digit c ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  if cur.pos = start then fail "expected integer at position %d" start;
  let v = int_of_string (String.sub cur.text start (cur.pos - start)) in
  if neg then -v else v

let read_int_opt cur =
  skip_separators cur;
  match peek cur with
  | Some c when is_digit c || c = '-' -> Some (read_int cur)
  | _ -> None

(* Semicolon terminates every command. *)
let expect_semi cur =
  skip_separators cur;
  match peek cur with
  | Some ';' -> advance cur
  | Some c -> fail "expected ';', found %c at %d" c cur.pos
  | None -> fail "expected ';', found end of input"

let read_ints_until_semi cur =
  let rec loop acc =
    match read_int_opt cur with
    | Some v -> loop (v :: acc)
    | None -> List.rev acc
  in
  let vs = loop [] in
  expect_semi cur;
  vs

let pair_up cmd vs =
  let rec go = function
    | x :: y :: rest -> (x, y) :: go rest
    | [] -> []
    | [ _ ] -> fail "%s: odd number of coordinates" cmd
  in
  go vs

(* Layer names and user-extension text run to the semicolon. *)
let read_until_semi cur =
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some ';' -> ()
    | Some _ ->
      advance cur;
      loop ()
    | None -> fail "unterminated command"
  in
  loop ();
  let s = String.sub cur.text start (cur.pos - start) in
  advance cur;
  String.trim s

let read_layer_name cur =
  skip_separators cur;
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some c when is_upper c || is_digit c ->
      advance cur;
      loop ()
    | _ -> ()
  in
  loop ();
  if cur.pos = start then fail "L: missing layer name";
  let name = String.sub cur.text start (cur.pos - start) in
  expect_semi cur;
  name

let read_trans_ops cur =
  let rec loop acc =
    skip_separators cur;
    match peek cur with
    | Some 'T' ->
      advance cur;
      let x = read_int cur in
      let y = read_int cur in
      loop (Ast.Translate (x, y) :: acc)
    | Some 'M' ->
      advance cur;
      skip_separators cur;
      (match peek cur with
      | Some 'X' ->
        advance cur;
        loop (Ast.Mirror_x :: acc)
      | Some 'Y' ->
        advance cur;
        loop (Ast.Mirror_y :: acc)
      | _ -> fail "M must be followed by X or Y")
    | Some 'R' ->
      advance cur;
      let a = read_int cur in
      let b = read_int cur in
      loop (Ast.Rotate (a, b) :: acc)
    | _ -> List.rev acc
  in
  let ops = loop [] in
  expect_semi cur;
  ops

let rec parse_command cur : Ast.command option =
  skip_separators cur;
  match peek cur with
  | None -> None
  | Some ';' ->
    (* blank command *)
    advance cur;
    parse_command_again cur
  | Some 'D' ->
    advance cur;
    skip_separators cur;
    (match peek cur with
    | Some 'S' ->
      advance cur;
      let n = read_int cur in
      let a = match read_int_opt cur with Some v -> v | None -> 1 in
      let b = match read_int_opt cur with Some v -> v | None -> 1 in
      expect_semi cur;
      Some (Ast.Def_start (n, a, b))
    | Some 'F' ->
      advance cur;
      expect_semi cur;
      Some Ast.Def_finish
    | Some 'D' ->
      advance cur;
      let n = read_int cur in
      expect_semi cur;
      Some (Ast.Def_delete n)
    | _ -> fail "D must be followed by S, F or D")
  | Some 'L' ->
    advance cur;
    Some (Ast.Layer (read_layer_name cur))
  | Some 'B' ->
    advance cur;
    (match read_ints_until_semi cur with
    | [ l; w; cx; cy ] -> Some (Ast.Box { length = l; width = w; cx; cy })
    | [ l; w; cx; cy; dx; dy ] ->
      (* Only axis-parallel directions are representable in our geometry. *)
      if dy = 0 && dx <> 0 then Some (Ast.Box { length = l; width = w; cx; cy })
      else if dx = 0 && dy <> 0 then
        Some (Ast.Box { length = w; width = l; cx; cy })
      else fail "B: non-Manhattan box direction %d %d" dx dy
    | vs -> fail "B: expected 4 or 6 integers, got %d" (List.length vs))
  | Some 'P' ->
    advance cur;
    Some (Ast.Polygon (pair_up "P" (read_ints_until_semi cur)))
  | Some 'W' ->
    advance cur;
    (match read_ints_until_semi cur with
    | w :: rest -> Some (Ast.Wire { width = w; points = pair_up "W" rest })
    | [] -> fail "W: missing width")
  | Some 'C' ->
    advance cur;
    let n = read_int cur in
    Some (Ast.Call (n, read_trans_ops cur))
  | Some 'E' ->
    advance cur;
    Some Ast.End
  | Some c when is_digit c ->
    advance cur;
    Some (Ast.User (Char.code c - Char.code '0', read_until_semi cur))
  | Some c -> fail "unexpected character %c at %d" c cur.pos

and parse_command_again cur = parse_command cur

let parse text =
  let cur = { text; pos = 0 } in
  let rec loop acc =
    match parse_command cur with
    | Some (Ast.End as cmd) -> List.rev (cmd :: acc)
    | Some cmd -> loop (cmd :: acc)
    | None -> List.rev acc
  in
  match loop [] with
  | file -> Ok file
  | exception Error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text
