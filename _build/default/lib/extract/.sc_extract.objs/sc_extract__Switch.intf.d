lib/extract/switch.mli: Extractor Sc_layout
