lib/extract/extractor.ml: Array Cell Flatten Format Hashtbl Int Layer List Rect Sc_geom Sc_layout Sc_tech
