lib/extract/switch.ml: Array Extractor List
