lib/extract/extractor.mli: Format Sc_layout
