(** Circuit extraction from mask geometry.

    The inverse of the compiler: given artwork, recover the transistor
    netlist it implements.  This closes the loop the paper's final
    paragraph asks for — verification by simulation — at the strongest
    level: the *artwork itself* is simulated (see {!Switch}), not the
    netlist it was generated from.

    The electrical model is scalable NMOS:

    - conductors are connected regions of metal, poly, and diffusion
      (diffusion is first severed wherever poly crosses it — those
      crossings are the transistor channels);
    - contact cuts join metal to the poly or diffusion under them;
      buried contacts join poly to diffusion directly;
    - every poly-over-diffusion crossing is a transistor: gate = the poly
      region, source/drain = the two severed diffusion regions flanking
      the channel; an implant over the channel marks depletion mode.

    Extraction warns (rather than fails) on analog oddities: a channel
    with fewer or more than two flanking diffusion regions, or a device
    none of whose terminals reach a named port. *)

type device =
  { gate : int  (** node id *)
  ; terminals : int list  (** distinct source/drain node ids (normally 2) *)
  ; depletion : bool
  }

type netlist =
  { node_count : int
  ; devices : device list
  ; named : (string * int) list  (** port name -> node id *)
  ; warnings : string list
  }

(** [extract cell] flattens and extracts. *)
val extract : Sc_layout.Cell.t -> netlist

(** [node_of t name] — node of a named port.
    @raise Not_found when absent. *)
val node_of : netlist -> string -> int

val pp : Format.formatter -> netlist -> unit
