(** Switch-level simulation of extracted NMOS netlists.

    The ratioed-NMOS value model: a node connected to GND through a path
    of conducting transistors is 0 (pulldowns always win); a node
    connected only to VDD (usually through its depletion load) is 1;
    a node whose only ground path runs through an X-gated switch is X.
    Enhancement devices conduct when their gate is 1; depletion devices
    always conduct (they are the loads).  Rails and driven inputs are
    fixed and block conduction paths (they are low-impedance sources).

    Evaluation iterates to a fixpoint, since node values gate other
    devices. *)

type value = V0 | V1 | VX

(** [simulate net ~vdd ~gnd ~inputs] — node values at the fixpoint.
    [inputs] fixes nodes (usually the poly gate ports). *)
val simulate :
  Extractor.netlist -> vdd:int -> gnd:int -> inputs:(int * value) list ->
  value array

(** [verify_logic cell ~inputs ~outputs spec] — exhaustively drive the
    named input ports of [cell]'s extracted netlist and check that every
    named output matches [spec bits] (bit i = input i).  This is
    layout-versus-specification: the artwork itself computes.
    Requires ports named "vdd" and "gnd".
    @raise Not_found if a port is missing. *)
val verify_logic :
  Sc_layout.Cell.t ->
  inputs:string list ->
  outputs:string list ->
  (bool array -> bool array) ->
  bool
