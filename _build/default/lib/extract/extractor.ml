open Sc_geom
open Sc_tech
open Sc_layout

type device =
  { gate : int
  ; terminals : int list
  ; depletion : bool
  }

type netlist =
  { node_count : int
  ; devices : device list
  ; named : (string * int) list
  ; warnings : string list
  }

(* --- small union-find --- *)

type uf = { parent : int array }

let uf_create n = { parent = Array.init n (fun i -> i) }

let rec uf_find u i = if u.parent.(i) = i then i else uf_find u u.parent.(i)

let uf_union u a b =
  let ra = uf_find u a and rb = uf_find u b in
  if ra <> rb then u.parent.(ra) <- rb

(* [subtract r cuts] returns the parts of [r] not covered by any cut. *)
let subtract r cuts =
  let rec go pieces = function
    | [] -> pieces
    | cut :: rest ->
      let pieces =
        List.concat_map
          (fun p ->
            match Rect.inter p cut with
            | None -> [ p ]
            | Some _ ->
              let frags = ref [] in
              let push x0 y0 x1 y1 =
                if x0 < x1 && y0 < y1 then frags := Rect.make x0 y0 x1 y1 :: !frags
              in
              push p.Rect.xmin p.Rect.ymin
                (min p.Rect.xmax cut.Rect.xmin)
                p.Rect.ymax;
              push (max p.Rect.xmin cut.Rect.xmax) p.Rect.ymin p.Rect.xmax
                p.Rect.ymax;
              let mx0 = max p.Rect.xmin cut.Rect.xmin
              and mx1 = min p.Rect.xmax cut.Rect.xmax in
              push mx0 p.Rect.ymin mx1 (min p.Rect.ymax cut.Rect.ymin);
              push mx0 (max p.Rect.ymin cut.Rect.ymax) mx1 p.Rect.ymax;
              !frags)
          pieces
      in
      go pieces rest
  in
  go [ r ] cuts

(* group rectangles into touch-connected regions; returns (region index per
   rect, region count) *)
let regions rects =
  let arr = Array.of_list rects in
  let n = Array.length arr in
  let u = uf_create n in
  (* sort an index array by xmin for a bounded scan *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare arr.(a).Rect.xmin arr.(b).Rect.xmin) order;
  for oi = 0 to n - 1 do
    let i = order.(oi) in
    let j = ref (oi + 1) in
    while !j < n && arr.(order.(!j)).Rect.xmin <= arr.(i).Rect.xmax do
      if Rect.touches_or_overlaps arr.(i) arr.(order.(!j)) then
        uf_union u i order.(!j);
      incr j
    done
  done;
  let region_of = Array.init n (fun i -> uf_find u i) in
  (arr, region_of)

let extract cell =
  let flat = Flatten.run cell in
  let layer l =
    List.filter_map
      (fun (fb : Flatten.flat_box) ->
        if Layer.equal fb.layer l && not (Rect.is_empty fb.rect) then
          Some fb.rect
        else None)
      flat
  in
  let polys = layer Layer.Poly in
  let diffs = layer Layer.Diffusion in
  let metals = layer Layer.Metal in
  let contacts = layer Layer.Contact in
  let burieds = layer Layer.Buried in
  let implants = layer Layer.Implant in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  (* 1. channels: poly-over-diffusion intersections, merged when touching.
     Regions under a buried contact are direct poly-diffusion connections,
     not channels — subtract them first. *)
  let raw_gates =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun d ->
            match Rect.inter p d with
            | Some g when not (Rect.is_empty g) ->
              List.filter (fun piece -> not (Rect.is_empty piece))
                (subtract g burieds)
            | _ -> [])
          diffs)
      polys
  in
  let gate_arr, gate_region = regions raw_gates in
  let gate_groups = Hashtbl.create 16 in
  Array.iteri
    (fun i r ->
      let key = gate_region.(i) in
      let cur = try Hashtbl.find gate_groups key with Not_found -> [] in
      Hashtbl.replace gate_groups key (r :: cur))
    gate_arr;
  (* 2. sever diffusion at the channels *)
  let gate_rects = Array.to_list gate_arr in
  let diff_pieces = List.concat_map (fun d -> subtract d gate_rects) diffs in
  (* 3. conductor regions per layer *)
  let poly_arr, poly_region = regions polys in
  let diff_arr, diff_region = regions diff_pieces in
  let metal_arr, metal_region = regions metals in
  (* 4. one node space: poly regions, then diff, then metal *)
  let np = Array.length poly_arr
  and nd = Array.length diff_arr
  and nm = Array.length metal_arr in
  let nodes = uf_create (np + nd + nm) in
  let poly_node i = poly_region.(i) in
  let diff_node i = np + diff_region.(i) in
  let metal_node i = np + nd + metal_region.(i) in
  let overlapping arr pred r =
    let acc = ref [] in
    Array.iteri (fun i a -> if Rect.overlaps a r then acc := pred i :: !acc) arr;
    !acc
  in
  List.iter
    (fun cut ->
      let ms = overlapping metal_arr metal_node cut in
      let ps = overlapping poly_arr poly_node cut in
      let ds = overlapping diff_arr diff_node cut in
      (match ms with
      | [] -> warn "contact at %s has no metal" (Rect.to_string cut)
      | _ -> ());
      (match (ps, ds) with
      | [], [] -> warn "contact at %s reaches nothing" (Rect.to_string cut)
      | _ -> ());
      match ms @ ps @ ds with
      | first :: rest -> List.iter (uf_union nodes first) rest
      | [] -> ())
    contacts;
  List.iter
    (fun b ->
      let ps = overlapping poly_arr poly_node b in
      let ds = overlapping diff_arr diff_node b in
      match (ps, ds) with
      | p :: _, d :: _ -> uf_union nodes p d
      | _ -> warn "buried contact at %s joins nothing" (Rect.to_string b))
    burieds;
  (* 5. devices *)
  let devices =
    Hashtbl.fold
      (fun _key rects acc ->
        (* gate terminal: the poly region of a poly rect overlapping the
           channel *)
        let sample = List.hd rects in
        let gate_nodes = overlapping poly_arr poly_node sample in
        let gate =
          match gate_nodes with
          | g :: _ -> uf_find nodes g
          | [] ->
            warn "channel at %s has no poly region" (Rect.to_string sample);
            -1
        in
        (* source/drain: diffusion pieces touching any channel rect *)
        let terms = ref [] in
        Array.iteri
          (fun i piece ->
            if List.exists (fun g -> Rect.touches_or_overlaps piece g) rects
            then begin
              let node = uf_find nodes (diff_node i) in
              if not (List.mem node !terms) then terms := node :: !terms
            end)
          diff_arr;
        (match List.length !terms with
        | 2 -> ()
        | k ->
          warn "channel at %s has %d terminals" (Rect.to_string sample) k);
        let depletion =
          List.exists
            (fun g -> List.exists (fun imp -> Rect.overlaps imp g) implants)
            rects
        in
        { gate; terminals = !terms; depletion } :: acc)
      gate_groups []
  in
  (* 6. named nodes from ports *)
  let named =
    List.filter_map
      (fun (p : Cell.port) ->
        let find arr node_of =
          let acc = ref None in
          Array.iteri
            (fun i a ->
              if !acc = None && Rect.touches_or_overlaps a p.rect then
                acc := Some (uf_find nodes (node_of i)))
            arr;
          !acc
        in
        let node =
          match p.layer with
          | Layer.Poly -> find poly_arr poly_node
          | Layer.Diffusion -> find diff_arr diff_node
          | Layer.Metal -> find metal_arr metal_node
          | _ -> None
        in
        match node with
        | Some n -> Some (p.pname, n)
        | None ->
          warn "port %s touches no conductor" p.pname;
          None)
      cell.Cell.ports
  in
  (* canonicalize node numbers densely *)
  let canon = Hashtbl.create 32 in
  let next = ref 0 in
  let id n =
    let r = uf_find nodes n in
    match Hashtbl.find_opt canon r with
    | Some v -> v
    | None ->
      let v = !next in
      incr next;
      Hashtbl.replace canon r v;
      v
  in
  let devices =
    List.map
      (fun d ->
        { d with
          gate = (if d.gate >= 0 then id d.gate else -1)
        ; terminals = List.map id d.terminals
        })
      devices
  in
  let named = List.map (fun (n, node) -> (n, id node)) named in
  { node_count = !next; devices; named; warnings = List.rev !warnings }

let node_of t name =
  match List.assoc_opt name t.named with
  | Some n -> n
  | None -> raise Not_found

let pp ppf t =
  Format.fprintf ppf "extracted: %d nodes, %d devices (%d depletion)"
    t.node_count (List.length t.devices)
    (List.length (List.filter (fun d -> d.depletion) t.devices));
  if t.warnings <> [] then
    Format.fprintf ppf ", %d warnings" (List.length t.warnings)
